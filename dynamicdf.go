// Package dynamicdf is a library for building and executing dynamic
// dataflows — continuous dataflow applications whose processing elements
// (PEs) carry alternate implementations with different value/cost
// trade-offs — on simulated elastic IaaS clouds, together with the
// deployment and runtime-adaptation heuristics of
//
//	A. Kumbhare, Y. Simmhan, V. K. Prasanna.
//	"Exploiting Application Dynamism and Cloud Elasticity for Continuous
//	Dataflows". SC'13. DOI 10.1145/2503210.2503240.
//
// The package re-exports the library's stable surface:
//
//   - dataflow construction (NewGraph, Builder, Alternate, Selection),
//   - the cloud infrastructure model (Class, Menu, AWS2013Classes),
//   - performance-variability traces (Ideal and Replayed providers),
//   - input rate profiles (Constant, Wave, RandomWalk, Spike),
//   - the discrete-interval simulator (Config, Engine, View, Actions),
//   - the paper's policies (Heuristic with local/global strategies,
//     BruteForce) and objective (Objective, PaperSigma),
//   - experiment runners that regenerate each figure of the paper's
//     evaluation (see the Fig* functions).
//
// Quickstart:
//
//	g := dynamicdf.Fig1Graph()
//	obj, _ := dynamicdf.PaperSigma(g, 5, 10)
//	h, _ := dynamicdf.NewHeuristic(dynamicdf.Options{
//		Strategy: dynamicdf.Global, Dynamic: true, Adaptive: true, Objective: obj,
//	})
//	prof, _ := dynamicdf.NewConstant(5)
//	cfg := dynamicdf.Config{
//		Graph:      g,
//		Menu:       dynamicdf.MustMenu(dynamicdf.AWS2013Classes()),
//		Inputs:     map[int]dynamicdf.Profile{0: prof},
//		HorizonSec: 10 * 3600,
//	}
//	e, _ := dynamicdf.NewEngine(cfg)
//	summary, _ := e.Run(h)
//	fmt.Println(summary, "theta:", obj.Theta(summary.MeanGamma, summary.TotalCostUSD))
package dynamicdf

import (
	"io"

	"dynamicdf/internal/calibration"
	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/experiments"
	"dynamicdf/internal/floe"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/resilient"
	"dynamicdf/internal/scenario"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/state"
	"dynamicdf/internal/sweep"
	"dynamicdf/internal/sweep/fabric"
	"dynamicdf/internal/trace"
	"dynamicdf/internal/workload"
)

// Dataflow model (paper §3).
type (
	// Graph is a dynamic dataflow: a DAG of PEs with alternates.
	Graph = dataflow.Graph
	// PE is a processing element.
	PE = dataflow.PE
	// Alternate is one implementation choice of a PE with value, cost and
	// selectivity.
	Alternate = dataflow.Alternate
	// Edge is a directed dataflow edge between PE indices.
	Edge = dataflow.Edge
	// Builder assembles a Graph by PE name.
	Builder = dataflow.Builder
	// Selection maps each PE to its active alternate.
	Selection = dataflow.Selection
	// InputRates maps input PE indices to external message rates.
	InputRates = dataflow.InputRates
	// ChoiceGroup declares choice semantics on an output port — the basis
	// of dynamic paths (§9 future work).
	ChoiceGroup = dataflow.ChoiceGroup
	// Routing selects the active target of every choice group.
	Routing = dataflow.Routing
)

// NewGraph constructs and validates a dataflow graph.
func NewGraph(pes []*PE, edges []Edge) (*Graph, error) { return dataflow.NewGraph(pes, edges) }

// NewBuilder returns an empty dataflow builder.
func NewBuilder() *Builder { return dataflow.NewBuilder() }

// Alt is shorthand for an Alternate literal.
func Alt(name string, value, cost, selectivity float64) Alternate {
	return dataflow.Alt(name, value, cost, selectivity)
}

// Fig1Graph builds the paper's Fig. 1 abstract dataflow.
func Fig1Graph() *Graph { return dataflow.Fig1Graph() }

// ReadGraphJSON parses and validates a graph from its canonical JSON form
// (Graph also implements json.Marshaler/Unmarshaler and WriteJSON).
func ReadGraphJSON(r io.Reader) (*Graph, error) { return dataflow.ReadJSON(r) }

// EvalGraph builds the §8 evaluation dataflow with alternate ladders.
func EvalGraph() *Graph { return dataflow.EvalGraph() }

// Cloud infrastructure model (paper §4).
type (
	// Class is a VM resource class (cores, rated speed, bandwidth, price).
	Class = cloud.Class
	// Menu is the set of acquirable VM classes.
	Menu = cloud.Menu
	// VM is one acquired instance with hour-boundary billing.
	VM = cloud.VM
	// Fleet tracks all instances and their accumulated cost.
	Fleet = cloud.Fleet
)

// AWS2013Classes returns the 2013 AWS on-demand menu the evaluation uses.
func AWS2013Classes() []*Class { return cloud.AWS2013Classes() }

// WithSpotMarket adds a preemptible twin of every class at the price
// fraction (use with Config.Preemption and Options.UseSpot).
func WithSpotMarket(classes []*Class, priceFraction float64) []*Class {
	return cloud.WithSpotMarket(classes, priceFraction)
}

// NewMenu validates classes into a menu.
func NewMenu(classes []*Class) (*Menu, error) { return cloud.NewMenu(classes) }

// MustMenu is NewMenu that panics on error.
func MustMenu(classes []*Class) *Menu { return cloud.MustMenu(classes) }

// Input rate profiles (paper §8.1).
type (
	// Profile yields an input PE's external message rate over time.
	Profile = rates.Profile
	// Constant is a fixed-rate profile.
	Constant = rates.Constant
	// Wave is the periodic-wave profile.
	Wave = rates.Wave
	// RandomWalk wanders around a mean rate.
	RandomWalk = rates.RandomWalk
	// Spike overlays bursts on a base profile.
	Spike = rates.Spike
)

// NewConstant returns a constant-rate profile.
func NewConstant(r float64) (*Constant, error) { return rates.NewConstant(r) }

// NewWave returns a periodic wave profile.
func NewWave(mean, amplitude float64, periodSec int64) (*Wave, error) {
	return rates.NewWave(mean, amplitude, periodSec)
}

// NewRandomWalk returns a mean-reverting random-walk profile.
func NewRandomWalk(mean, step float64, stepSec, seed int64) (*RandomWalk, error) {
	return rates.NewRandomWalk(mean, step, stepSec, seed)
}

// NewSpike overlays periodic bursts on a base profile.
func NewSpike(base Profile, factor float64, intervalSec, durationSec int64) (*Spike, error) {
	return rates.NewSpike(base, factor, intervalSec, durationSec)
}

// Infrastructure performance variability (paper §2.5, Figs. 2-3).
type (
	// PerfProvider supplies runtime CPU/network behaviour to the simulator.
	PerfProvider = trace.Provider
	// IdealCloud is a perfectly stable provider.
	IdealCloud = trace.Ideal
	// ReplayedCloud replays synthetic (or loaded) variability traces.
	ReplayedCloud = trace.Replayed
	// ReplayedConfig parameterizes trace-pool generation.
	ReplayedConfig = trace.ReplayedConfig
	// TraceSeries is a sampled coefficient/measurement series.
	TraceSeries = trace.Series
	// TraceGenConfig parameterizes synthetic trace generation.
	TraceGenConfig = trace.GenConfig
)

// NewIdealCloud returns a provider with rated, stable performance.
func NewIdealCloud() *IdealCloud { return trace.NewIdeal() }

// NewReplayedCloud generates trace pools and returns the replaying provider.
func NewReplayedCloud(cfg ReplayedConfig) (*ReplayedCloud, error) { return trace.NewReplayed(cfg) }

// NewReplayedCloudFromSeries builds a provider replaying loaded (real)
// traces; nil pools fall back to generated defaults.
func NewReplayedCloudFromSeries(cpu, lat, bw []*TraceSeries, seed int64) (*ReplayedCloud, error) {
	return trace.NewReplayedFromSeries(cpu, lat, bw, seed)
}

// LoadTraceDir reads every .csv under dir as one trace series per file.
func LoadTraceDir(dir string) ([]*TraceSeries, error) { return trace.LoadDir(dir) }

// Simulator (paper §8.1's IaaS simulator).
type (
	// Config assembles a simulation scenario.
	Config = sim.Config
	// Engine executes a scenario.
	Engine = sim.Engine
	// View is the monitored state a scheduler observes.
	View = sim.View
	// Actions is the engine's own control surface.
	Actions = sim.Actions
	// Control is the control-surface interface schedulers act through;
	// middleware (see the Resilient* types) wraps one Control in another.
	Control = sim.Control
	// Scheduler drives deployment and adaptation.
	Scheduler = sim.Scheduler
	// AuditEntry is one recorded control action.
	AuditEntry = sim.AuditEntry
	// Summary aggregates a run's per-interval metrics.
	Summary = metrics.Summary
	// MetricPoint is one interval's measurements.
	MetricPoint = metrics.Point
)

// NewEngine validates a scenario and returns its engine.
func NewEngine(cfg Config) (*Engine, error) { return sim.NewEngine(cfg) }

// ErrCanceled is the typed error RunContext wraps when its context is
// canceled mid-horizon (test with errors.Is).
var ErrCanceled = sim.ErrCanceled

// NewView builds a read-only monitoring view over an engine, for inspecting
// state outside a scheduler callback.
func NewView(e *Engine) *View { return sim.NewView(e) }

// Checkpoint / restore: the engine's complete mutable state as a canonical,
// digest-verified document (encoding state/v1; see internal/state and
// DESIGN.md, "Canonical engine state").
type (
	// Snapshot is everything a run needs to continue byte-identically:
	// clock, fleet, placements, queues, monitor states, accumulators,
	// metrics, audit log, and an opaque scheduler blob. Produced by
	// Engine.Checkpoint between intervals; consumed by Restore.
	Snapshot = state.Snapshot
	// StatefulScheduler is a Scheduler whose internal state rides along in
	// snapshots, so a restored run resumes the policy mid-thought rather
	// than amnesiac. Stateless schedulers simply don't implement it.
	StatefulScheduler = sim.StatefulScheduler
)

// SnapshotVersion names the snapshot encoding embedded in (and required
// of) every state document.
const SnapshotVersion = state.Version

// Restore builds a fresh engine that continues a checkpointed run
// bit-identically. The config must agree with the snapshot on the
// deterministic world (graph size, interval, seed); observer wiring may
// differ. One snapshot can seed any number of engines.
func Restore(snap *Snapshot, cfg Config) (*Engine, error) { return sim.Restore(snap, cfg) }

// EncodeSnapshot serializes a snapshot as canonical state/v1 JSON with a
// sha256 integrity digest.
func EncodeSnapshot(s *Snapshot) ([]byte, error) { return state.Encode(s) }

// DecodeSnapshot parses a state/v1 document, rejecting unknown fields,
// version mismatches, and any corruption the digest catches.
func DecodeSnapshot(data []byte) (*Snapshot, error) { return state.Decode(data) }

// Runtime invariant checking (the simulation correctness harness).
type (
	// InvariantChecker asserts conservation-style laws over engine state at
	// the end of every simulated interval (attach via Config.Checker).
	InvariantChecker = invariant.Checker
	// InvariantViolation is the typed error a strict checker aborts a run
	// with: the broken law, the sim-second, and a state snapshot.
	InvariantViolation = invariant.Violation
	// InvariantLaw is one named invariant over an engine-state snapshot.
	InvariantLaw = invariant.Law
	// InvariantState is the plain-data engine snapshot laws assert over.
	InvariantState = invariant.State
)

// NewInvariantChecker returns a lenient checker with the default law set:
// violations are recorded and counted but the run continues.
func NewInvariantChecker() *InvariantChecker { return invariant.New() }

// NewStrictInvariantChecker returns a checker that aborts the run at the
// first violation with a typed *InvariantViolation.
func NewStrictInvariantChecker() *InvariantChecker { return invariant.NewStrict() }

// AsInvariantViolation extracts the typed violation from a run error.
func AsInvariantViolation(err error) (*InvariantViolation, bool) { return invariant.As(err) }

// DefaultInvariantLaws returns a copy of the default law catalog (see
// DESIGN.md, "Invariant catalog").
func DefaultInvariantLaws() []InvariantLaw { return invariant.DefaultLaws() }

// Failure injection (§9 fault-tolerance extension).
type (
	// FailureModel decides when acquired VMs crash.
	FailureModel = sim.FailureModel
	// ExponentialFailures draws VM lifetimes from an exponential
	// distribution (deterministic per VM).
	ExponentialFailures = sim.ExponentialFailures
	// NoFailures disables crashes (the default).
	NoFailures = sim.NoFailures
)

// Control-plane fault injection and the resilience middleware.
type (
	// ControlFaults makes the simulated cloud control plane unreliable:
	// provisioning delays, transient acquisition failures, degraded
	// monitoring (see Config.ControlFaults).
	ControlFaults = sim.ControlFaults
	// ProvisioningFaults delays VM boot.
	ProvisioningFaults = sim.ProvisioningFaults
	// AcquisitionFaults makes AcquireVM fail transiently.
	AcquisitionFaults = sim.AcquisitionFaults
	// MonitoringFaults makes probes stale or noisy.
	MonitoringFaults = sim.MonitoringFaults
	// CapacityError is the transient "insufficient capacity" acquisition
	// error.
	CapacityError = sim.CapacityError
	// ResilientConfig tunes the resilience middleware.
	ResilientConfig = resilient.Config
	// ResilientScheduler wraps a policy with retries, circuit breaking,
	// class fallback and graceful degradation.
	ResilientScheduler = resilient.Scheduler
)

// IsCapacityError reports whether err is (or wraps) a CapacityError — the
// retryable class of acquisition failures.
func IsCapacityError(err error) bool { return sim.IsCapacityError(err) }

// WrapResilient builds the resilience middleware around an inner policy.
func WrapResilient(inner Scheduler, cfg ResilientConfig) *ResilientScheduler {
	return resilient.Wrap(inner, cfg)
}

// Policies and objective (paper §6-§7).
type (
	// Objective is the constrained utility formulation (OmegaHat, Epsilon,
	// Sigma).
	Objective = core.Objective
	// Options configures a Heuristic.
	Options = core.Options
	// Heuristic is the paper's deployment + adaptation policy.
	Heuristic = core.Heuristic
	// BruteForce is the exhaustive static baseline.
	BruteForce = core.BruteForce
	// Strategy selects local or global decision making.
	Strategy = core.Strategy
)

// Strategies.
const (
	// Local uses only per-PE information (Table 1).
	Local = core.Local
	// Global accounts for downstream impact and repacks across classes.
	Global = core.Global
)

// NewHeuristic validates options and returns the policy.
func NewHeuristic(opts Options) (*Heuristic, error) { return core.NewHeuristic(opts) }

// NewBruteForce returns the exhaustive static baseline.
func NewBruteForce(obj Objective, horizonHours float64) (*BruteForce, error) {
	return core.NewBruteForce(obj, horizonHours)
}

// PaperSigma derives the evaluation's objective for a data rate and horizon
// (§8.2's cost calibration: $4/hour at 2 msg/s to $100/hour at 50 msg/s).
func PaperSigma(g *Graph, dataRate, hours float64) (Objective, error) {
	return core.PaperSigma(g, dataRate, hours)
}

// SigmaFromExpectations derives sigma from user-acceptable costs (§6).
func SigmaFromExpectations(g *Graph, costAtMaxUSD, costAtMinUSD float64) (float64, error) {
	return core.SigmaFromExpectations(g, costAtMaxUSD, costAtMinUSD)
}

// Multi-tenant fleets: several dataflows, each with its own graph, rate,
// Ω floor and priority, share one VM fleet; a per-tenant policy stack is
// arbitrated by a fairness layer that defends Ω floors under scarcity.
type (
	// Tenant declares one dataflow's slice of a multi-tenant run: its PE
	// and choice-group ranges in the composite graph, its Ω floor, and its
	// arbitration priority (see Config.Tenants).
	Tenant = sim.Tenant
	// TenantSummary is one tenant's slice of a run Summary.
	TenantSummary = metrics.TenantSummary
	// MultiTenantPolicy runs one inner policy per tenant over the shared
	// fleet, arbitrating scale-up contention.
	MultiTenantPolicy = core.MultiTenant
	// FairShareArbiter is the fairness policy governing scale-up under
	// scarcity: Ω floors first, priority second.
	FairShareArbiter = core.Arbiter
	// AcquisitionDenied is the typed error a tenant's AcquireVM returns
	// when the arbiter rules against it (test with errors.As).
	AcquisitionDenied = core.DeniedError
	// ScenarioTenantSpec declares one tenant in the scenario schema's
	// tenants block.
	ScenarioTenantSpec = scenario.TenantSpec
)

// NewMultiTenantPolicy builds the multi-tenant policy: inner[i] drives
// tenant i of the run's Config.Tenants.
func NewMultiTenantPolicy(inner []Scheduler, arb FairShareArbiter) (*MultiTenantPolicy, error) {
	return core.NewMultiTenant(inner, arb)
}

// Session-based workload library (internal/workload): open/closed session
// populations with MMPP bursts, diurnal cycles and flash crowds, usable
// anywhere a rate Profile is (and as scenario rate kind "sessions").
type (
	// WorkloadSpec parameterizes a session generator.
	WorkloadSpec = workload.Spec
	// SessionsProfile is the session-population rate profile.
	SessionsProfile = workload.Sessions
	// WorkloadModel selects how sessions enter: OpenSessions arrive from an
	// unbounded population, ClosedSessions cycle a fixed one.
	WorkloadModel = workload.Model
)

// Session-population models.
const (
	OpenSessions   = workload.Open
	ClosedSessions = workload.Closed
)

// NewSessions validates a workload spec and returns its profile.
func NewSessions(spec WorkloadSpec) (*SessionsProfile, error) { return workload.New(spec) }

// FanProfile splits one profile across k input PEs by weight (uniform when
// weights is nil), preserving the total rate.
func FanProfile(p Profile, weights []float64, k int) ([]Profile, error) {
	return workload.Fan(p, weights, k)
}

// Experiments (paper §8).
type (
	// ExperimentConfig holds the evaluation sweep settings.
	ExperimentConfig = experiments.Config
	// ExperimentResult is one (policy, rate, variability) run row.
	ExperimentResult = experiments.RunResult
	// Variability selects a §8 dynamism scenario.
	Variability = experiments.Variability
	// PolicyKind enumerates the evaluation's policies.
	PolicyKind = experiments.PolicyKind
)

// Experiment scenario and policy enums.
const (
	NoVariability    = experiments.NoVariability
	DataVariability  = experiments.DataVariability
	InfraVariability = experiments.InfraVariability
	BothVariability  = experiments.BothVariability

	LocalAdaptive       = experiments.LocalAdaptive
	GlobalAdaptive      = experiments.GlobalAdaptive
	LocalAdaptiveNoDyn  = experiments.LocalAdaptiveNoDyn
	GlobalAdaptiveNoDyn = experiments.GlobalAdaptiveNoDyn
	LocalStatic         = experiments.LocalStatic
	GlobalStatic        = experiments.GlobalStatic
	BruteForceStatic    = experiments.BruteForceStatic
)

// DefaultExperiments returns the paper's full evaluation configuration.
func DefaultExperiments() ExperimentConfig { return experiments.Default() }

// QuickExperiments returns a reduced sweep for smoke runs.
func QuickExperiments() ExperimentConfig { return experiments.Quick() }

// Sweep campaigns (parallel, cached, resumable simulation grids; served
// over HTTP by cmd/dfserve and run locally by dfbench -sweep).
type (
	// SweepSpec declares a campaign: a base scenario crossed with parameter
	// axes (RFC 7386 merge patches) and seed replicas.
	SweepSpec = sweep.Spec
	// SweepAxis is one swept dimension.
	SweepAxis = sweep.Axis
	// SweepAxisValue is one labeled point on an axis.
	SweepAxisValue = sweep.AxisValue
	// SweepWarmStart configures prefix sharing: jobs differing only along
	// warm (prefix-neutral) axes fork one checkpointed prefix run.
	SweepWarmStart = sweep.WarmStartSpec
	// SweepJob is one expanded (scenario, seed) cell with its cache key.
	SweepJob = sweep.Job
	// SweepEngine executes expanded jobs on a bounded worker pool.
	SweepEngine = sweep.Engine
	// SweepJournal is the append-only completion log enabling crash-safe
	// resume and cross-run caching.
	SweepJournal = sweep.Journal
	// SweepResult is one job's outcome (metrics or error).
	SweepResult = sweep.Result
	// SweepProgress is a point-in-time campaign progress snapshot.
	SweepProgress = sweep.Progress
	// SweepReport is the full campaign outcome with aggregated rows.
	SweepReport = sweep.Report
	// SweepRow aggregates a group's replicas into mean/P50/P95 metrics.
	SweepRow = sweep.AggRow
	// SweepServer hosts campaigns behind the dfserve HTTP API.
	SweepServer = sweep.Server
	// SweepServerConfig tunes a SweepServer.
	SweepServerConfig = sweep.ServerConfig
	// Distribution summarizes replica samples (N, mean, P50, P95).
	Distribution = metrics.Distribution
)

// ErrSweepDrained marks a campaign stopped by a drain request with jobs
// still queued; journaled work is kept and a resume finishes the rest.
var ErrSweepDrained = sweep.ErrDrained

// ParseSweepSpec decodes and validates a sweep spec from JSON.
func ParseSweepSpec(data []byte) (*SweepSpec, error) { return sweep.ParseSpec(data) }

// OpenSweepJournal opens (or creates) a campaign journal and replays the
// completions already on record.
func OpenSweepJournal(path string) (*SweepJournal, error) { return sweep.OpenJournal(path) }

// NewSweepServer builds the HTTP campaign service (see Handler/Submit).
func NewSweepServer(cfg SweepServerConfig) *SweepServer { return sweep.NewServer(cfg) }

// Distributed sweep fabric: a lease-based coordinator that executes
// campaigns on attached worker processes with heartbeat-renewed job
// leases, capped-backoff requeues, poison-job quarantine, warm-start
// prefix affinity, and idempotent result acks — campaign output stays
// byte-identical to a single-pool run regardless of worker crashes or
// duplicate deliveries (see internal/sweep/fabric and dfserve -fabric /
// -worker).
type (
	// FabricConfig tunes the coordinator's lease state machine.
	FabricConfig = fabric.Config
	// FabricHub is the coordinator: it implements the sweep server's
	// CampaignRunner and serves the worker API under /fabric/.
	FabricHub = fabric.Hub
	// FabricWorker leases jobs from a coordinator and executes them with
	// pool-identical semantics.
	FabricWorker = fabric.Worker
	// FabricWorkerConfig tunes one worker.
	FabricWorkerConfig = fabric.WorkerConfig
	// FabricClient is a worker's HTTP view of the coordinator.
	FabricClient = fabric.Client
	// FabricLease is one granted job lease.
	FabricLease = fabric.Lease
	// FabricFaults injects deterministic, seeded fabric failures (worker
	// crashes, hangs, dropped/duplicated deliveries, heartbeat loss) for
	// chaos testing.
	FabricFaults = fabric.Faults
	// FabricMetrics is the coordinator's fabric_* metric family.
	FabricMetrics = obs.FabricMetrics
)

// ErrFabricWorkerCrashed is returned by FabricWorker.Run when an injected
// crash fault killed the worker.
var ErrFabricWorkerCrashed = fabric.ErrCrashed

// NewFabricHub builds a coordinator (wire it as SweepServerConfig.Runner
// and mount Handler at /fabric/).
func NewFabricHub(cfg FabricConfig) *FabricHub { return fabric.NewHub(cfg) }

// NewFabricWorker builds a worker; Run leases and executes jobs until its
// context is cancelled.
func NewFabricWorker(cfg FabricWorkerConfig) *FabricWorker { return fabric.NewWorker(cfg) }

// NewFabricClient returns a client for the coordinator at base.
func NewFabricClient(base string) *FabricClient { return fabric.NewClient(base) }

// NewFabricMetrics registers the fabric_* series on reg.
func NewFabricMetrics(reg *MetricsRegistry) *FabricMetrics { return obs.NewFabricMetrics(reg) }

// Observability: structured event tracing, a Prometheus-style metrics
// registry with text exposition, and trace inspection (see internal/obs,
// cmd/dfsim -trace and cmd/dftrace).
type (
	// TraceEvent is one structured, sim-timestamped trace record
	// (schema obs/v1).
	TraceEvent = obs.Event
	// Tracer streams trace events as NDJSON; attach with Engine.SetTracer
	// or Config.Tracer. A nil *Tracer is a no-op.
	Tracer = obs.Tracer
	// MetricsRegistry holds counters/gauges/histograms and serves them in
	// Prometheus text exposition format (Handler, WriteText).
	MetricsRegistry = obs.Registry
	// RunGauges is the live per-run gauge set a sim engine updates.
	RunGauges = obs.RunGauges
	// PoolMetrics instruments a sweep worker pool.
	PoolMetrics = obs.PoolMetrics
	// StageProfiler records per-stage wall time and allocation deltas for
	// the engine's step pipeline; attach with Config.Profiler or
	// Engine.SetProfiler. A nil *StageProfiler is a no-op.
	StageProfiler = obs.StageProfiler
	// Decision is the structured provenance payload of "decision" trace
	// events: inputs, candidates with scores, and rejection reasons.
	Decision = obs.Decision
	// DecisionOption is one candidate a Decision weighed.
	DecisionOption = obs.DecisionOption
)

// NewTracer returns a tracer writing NDJSON events to w (Flush before
// reading the sink).
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// ReadTraceEvents parses an NDJSON event stream captured by a Tracer.
func ReadTraceEvents(r io.Reader) ([]TraceEvent, error) { return obs.ReadEvents(r) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewRunGauges registers the sim_* gauge set on a registry.
func NewRunGauges(reg *MetricsRegistry) *RunGauges { return obs.NewRunGauges(reg) }

// TraceTimeline renders a run's decision timeline, one deterministic line
// per event (all includes step/run spans and init snapshots).
func TraceTimeline(events []TraceEvent, all bool) string { return obs.Timeline(events, all) }

// TraceOccupancy summarizes how long each PE spent on each alternate.
func TraceOccupancy(events []TraceEvent) string { return obs.Occupancy(events) }

// DiffTraceDecisions compares two runs' adaptation decisions; identical
// streams return true.
func DiffTraceDecisions(a, b []TraceEvent) (string, bool) { return obs.DiffDecisions(a, b) }

// NewStageProfiler returns a stage profiler; a non-nil registry also
// publishes sim_stage_seconds / sim_stage_allocs histograms.
func NewStageProfiler(reg *MetricsRegistry) *StageProfiler { return obs.NewStageProfiler(reg) }

// StitchTimeline merges a fabric campaign's coordinator and worker
// captures into one causally ordered event sequence.
func StitchTimeline(streams ...[]TraceEvent) []TraceEvent { return obs.StitchTimeline(streams...) }

// ExplainDecisions reconstructs the causal chain behind the elasticity
// decisions taken at one simulation second.
func ExplainDecisions(events []TraceEvent, sec int64) string { return obs.Explain(events, sec) }

// Calibration: fit the simulator to an observed system — generator
// parameters from performance traces, the input-rate profile from run
// metrics, VM prices from billing counters — and validate the fitted
// scenario as a digital twin (see internal/calibration and cmd/dfcalib).
type (
	// Scenario is the declarative JSON description of one simulation run
	// (the schema dfsim, sweeps, and calibration share; see
	// internal/scenario). Parse with ParseScenario, execute with Build.
	Scenario = scenario.Scenario
	// ScenarioRateSpec selects and parameterizes an input-rate profile in
	// the scenario schema.
	ScenarioRateSpec = scenario.RateSpec
	// ScenarioGenSpec mirrors TraceGenConfig in the scenario schema: the
	// slot fitted generator parameters are written into (Infra.CPU et al.).
	ScenarioGenSpec = scenario.GenSpec
	// GenCalibration is the result of fitting the trace generator to an
	// observed series pool: the recovered config plus diagnostics.
	GenCalibration = calibration.GenFit
	// CalibrationReport is the deterministic validation verdict: per-metric
	// residuals against tolerances plus the overall pass flag. Render with
	// JSON or Table.
	CalibrationReport = calibration.Report
	// CalibrationTolerances bounds the acceptable relative error per
	// compared metric.
	CalibrationTolerances = calibration.Tolerances
	// CostObservation is one billing reading (hours per class, total spend)
	// for the cost-model fit.
	CostObservation = calibration.CostObservation
	// MetricsExposition is a parsed Prometheus text exposition (the format
	// MetricsRegistry.WriteText emits); the importer round-trips it
	// byte-exactly.
	MetricsExposition = calibration.Exposition
)

// ParseScenario decodes and validates a scenario JSON document.
func ParseScenario(r io.Reader) (*Scenario, error) { return scenario.Parse(r) }

// ScenarioGenSpecFrom converts generator parameters to their scenario form.
func ScenarioGenSpecFrom(c TraceGenConfig) *ScenarioGenSpec { return scenario.GenSpecFrom(c) }

// Calibrate recovers trace-generator parameters (OU mean/reversion/
// variance, regime shifts, diurnal swing) from a pool of observed series by
// method of moments; the template supplies the bounds the data cannot
// identify.
func Calibrate(pool []*TraceSeries, template TraceGenConfig) (GenCalibration, error) {
	return calibration.FitGen(pool, template)
}

// FitRateProfile recovers an input-rate profile (constant or wave) from
// observed per-interval metrics.
func FitRateProfile(points []MetricPoint) (ScenarioRateSpec, error) {
	return calibration.FitRate(points)
}

// FitCostModel least-squares fits per-class hourly prices from billing
// observations.
func FitCostModel(observations []CostObservation) (map[string]float64, error) {
	return calibration.FitCost(observations)
}

// CostObservationFromFleet snapshots a fleet's billing counters at time now.
func CostObservationFromFleet(f *Fleet, now int64) CostObservation {
	return calibration.CostObservationFromFleet(f, now)
}

// Validate runs the (typically fitted) scenario through the engine and
// compares predicted against observed metrics under the tolerances.
func Validate(sc *Scenario, observed []MetricPoint, tol CalibrationTolerances) (*CalibrationReport, error) {
	return calibration.Validate(sc, observed, tol)
}

// DefaultCalibrationTolerances returns the validation defaults: tight on
// omega/gamma, looser on resource and cost aggregates.
func DefaultCalibrationTolerances() CalibrationTolerances { return calibration.DefaultTolerances() }

// ParsePrometheusText parses a Prometheus text-format exposition (0.0.4),
// e.g. a saved /metrics scrape.
func ParsePrometheusText(r io.Reader) (*MetricsExposition, error) {
	return calibration.ParsePrometheus(r)
}

// In-process execution runtime (the FTOC/Floe role in §5): the same graph
// description that is simulated for planning can be executed for real,
// with hot alternate swaps and data-parallel worker pools.
type (
	// Runtime executes a dynamic dataflow in-process.
	Runtime = floe.Runtime
	// RuntimeConfig assembles a Runtime.
	RuntimeConfig = floe.Config
	// Operator is one alternate's executable implementation.
	Operator = floe.Operator
	// OperatorFunc adapts a function to Operator.
	OperatorFunc = floe.OperatorFunc
	// Impl binds an alternate name to its implementation factory.
	Impl = floe.Impl
	// RuntimeMessage is one data item flowing through the runtime.
	RuntimeMessage = floe.Message
	// Controller is the live feedback controller over a Runtime.
	Controller = floe.Controller
	// ControllerConfig tunes the control loop.
	ControllerConfig = floe.ControllerConfig
)

// NewRuntime validates the configuration and builds a Runtime.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return floe.New(cfg) }

// NewController builds a live controller over a running Runtime: it scales
// worker pools with queue pressure and (when Dynamic) switches alternates
// once a pool saturates — the paper's two control knobs, applied to real
// message flow instead of the simulator.
func NewController(rt *Runtime, cfg ControllerConfig) (*Controller, error) {
	return floe.NewController(rt, cfg)
}
