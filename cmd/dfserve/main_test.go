package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynamicdf/internal/sweep"
)

// TestServiceObservabilityEndpoints asserts the composed dfserve handler
// serves the sweep API, the Prometheus exposition, and pprof side by side.
func TestServiceObservabilityEndpoints(t *testing.T) {
	srv, handler := newService(sweep.ServerConfig{Workers: 1}, nil)
	ts := httptest.NewServer(handler)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		return resp, string(body)
	}

	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz: status %d body %q", resp.StatusCode, body)
	}

	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type %q", ct)
	}
	// The healthz request above must already be counted.
	if !strings.Contains(body, "# TYPE dfserve_http_requests_total counter") ||
		!strings.Contains(body, `dfserve_http_requests_total{method="GET",code="200"}`) {
		t.Fatalf("/metrics missing instrumented request counter:\n%s", body)
	}

	resp, body = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: status %d", resp.StatusCode)
	}
	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: status %d", resp.StatusCode)
	}
}
