// Command dfserve exposes the sweep campaign engine as an HTTP service:
// submit a sweep spec (a base scenario crossed with parameter axes and
// seeds), poll or stream its progress, and fetch the aggregated
// mean/P50/P95 results. Completions are journaled per campaign, so
// restarting the service (or resubmitting a spec) re-runs only the jobs
// that are not already on record.
//
// Usage:
//
//	dfserve [-addr HOST:PORT] [-workers N] [-journal DIR]
//	dfserve -fabric [-lease-ttl D] ...      coordinator: execute on attached workers
//	dfserve -worker -coordinator URL [-worker-id ID] [-worker-slots N] [-worker-addr HOST:PORT]
//
// A worker serves its own /metrics and /debug/pprof/ on -worker-addr
// (default an ephemeral loopback port, logged at startup): the jobs run on
// the workers, so that is where the run gauges and profiles live.
//
//	dfserve -selftest
//
// Endpoints:
//
//	POST   /sweeps              submit a sweep spec (JSON)
//	GET    /sweeps              list campaigns
//	GET    /sweeps/{id}         poll status
//	GET    /sweeps/{id}/watch   stream NDJSON progress until done
//	GET    /sweeps/{id}/results aggregated CSV (?format=json for the report)
//	DELETE /sweeps/{id}         cancel
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text exposition
//	GET    /debug/pprof/        runtime profiling (pprof)
//
// With -fabric the service also mounts the coordinator API under /fabric/
// (register, lease, heartbeat, results) and executes campaigns on attached
// workers instead of an in-process pool: jobs are leased with a TTL,
// renewed by worker heartbeats, requeued with backoff when a lease dies,
// and quarantined after repeated failures. Start any number of workers
// with `dfserve -worker -coordinator URL`; results aggregate exactly once
// regardless of worker crashes or duplicate deliveries.
//
// Every request is counted and timed into the dfserve_http_* metric
// families; the sweep worker pool and the live sim run state export as
// sweep_jobs_* and sim_* series, and -fabric adds the fabric_* lease
// telemetry.
//
// SIGINT/SIGTERM shut down gracefully: in-flight jobs finish and are
// journaled, queued jobs are left for the next run.
//
// -selftest starts the service on a loopback port, submits a 4-job
// warm-start sweep over real HTTP, asserts the aggregated output and the
// prefix fork count, then repeats the same campaign through a fabric
// coordinator with one attached worker and asserts the CSV is
// byte-identical, shuts down gracefully, and exits non-zero on any
// failure (used by ci.sh as a smoke test).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynamicdf/internal/obs"
	"dynamicdf/internal/sweep"
	"dynamicdf/internal/sweep/fabric"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dfserve: ")
	addr := flag.String("addr", "127.0.0.1:8350", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "worker pool size per campaign (0 = GOMAXPROCS)")
	journalDir := flag.String("journal", "", "journal directory for crash-safe resume (empty = in-memory only)")
	fabricMode := flag.Bool("fabric", false, "coordinator mode: execute campaigns on attached -worker processes")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "fabric job lease TTL (with -fabric)")
	workerMode := flag.Bool("worker", false, "worker mode: lease jobs from a -fabric coordinator")
	coordinator := flag.String("coordinator", "", "coordinator base URL (with -worker), e.g. http://127.0.0.1:8350")
	workerID := flag.String("worker-id", "", "worker id (default hostname.pid)")
	workerSlots := flag.Int("worker-slots", 0, "concurrent job slots per worker (0 = GOMAXPROCS)")
	workerAddr := flag.String("worker-addr", "127.0.0.1:0", "worker introspection listen address (/metrics, /debug/pprof; with -worker)")
	selftest := flag.Bool("selftest", false, "start, submit a 2-job sweep, assert results, shut down")
	flag.Parse()

	if *selftest {
		if err := runSelftest(*workers); err != nil {
			log.Fatalf("selftest: %v", err)
		}
		fmt.Println("dfserve: selftest ok")
		return
	}
	if *workerMode {
		if err := runWorker(*coordinator, *workerID, *workerAddr, *workerSlots); err != nil &&
			!errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		return
	}

	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	var fabricCfg *fabric.Config
	if *fabricMode {
		fabricCfg = &fabric.Config{LeaseTTL: *leaseTTL}
	}
	srv, handler := newService(sweep.ServerConfig{Workers: *workers, JournalDir: *journalDir}, fabricCfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := newHTTPServer(handler)
	mode := "pool"
	if *fabricMode {
		mode = "fabric coordinator"
	}
	fmt.Printf("dfserve: %s listening on http://%s\n", mode, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down: draining workers")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("sweep shutdown: %v", err)
	}
	log.Print("bye")
}

// newHTTPServer hardens a server against slow or stuck clients: bounded
// header reads and idle keep-alives. Read and write deadlines are
// deliberately NOT set — /sweeps/{id}/watch and /fabric/results are
// long-lived NDJSON streams that a blanket WriteTimeout/ReadTimeout would
// sever mid-campaign; the header timeout still closes connections that
// never produce a request.
func newHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// newService wires the sweep server into the full dfserve handler: the
// sweep API (instrumented with request metrics) at the root, the metrics
// registry's text exposition at /metrics, and pprof at /debug/pprof/.
// A non-nil fabricCfg switches campaign execution from the in-process
// pool to a lease coordinator and mounts its API under /fabric/.
func newService(cfg sweep.ServerConfig, fabricCfg *fabric.Config) (*sweep.Server, http.Handler) {
	reg := obs.NewRegistry()
	cfg.Metrics = reg

	api := http.NewServeMux()
	if fabricCfg != nil {
		fabricCfg.Metrics = obs.NewFabricMetrics(reg)
		hub := fabric.NewHub(*fabricCfg)
		cfg.Runner = hub
		api.Handle("/fabric/", hub.Handler())
	}
	srv := sweep.NewServer(cfg)
	api.Handle("/", srv.Handler())

	mux := http.NewServeMux()
	mux.Handle("/", obs.InstrumentHandler(reg, "dfserve_http", api))
	mountIntrospection(mux, reg)
	return srv, mux
}

// mountIntrospection adds the observability surface every dfserve mode
// shares: the registry's Prometheus text exposition at /metrics and pprof
// under /debug/pprof/.
func mountIntrospection(mux *http.ServeMux, reg *obs.Registry) {
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// newWorkerService builds a fabric worker's own observability surface: a
// private registry whose run gauge set is driven by every job the worker
// executes, exposed through the same /metrics and /debug/pprof handlers
// (and the same server hardening) the coordinator modes use. Workers are
// where the simulations actually run, so they must be just as inspectable.
func newWorkerService() (*obs.RunGauges, http.Handler) {
	reg := obs.NewRegistry()
	gauges := obs.NewRunGauges(reg)
	mux := http.NewServeMux()
	mountIntrospection(mux, reg)
	return gauges, mux
}

// runWorker leases jobs from a fabric coordinator until SIGINT/SIGTERM,
// serving its own /metrics and /debug/pprof on addr so a worker process is
// as inspectable as the coordinator it attaches to.
func runWorker(coordinator, id, addr string, slots int) error {
	if coordinator == "" {
		return fmt.Errorf("-worker requires -coordinator URL")
	}
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	gauges, handler := newWorkerService()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(handler)
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	w := fabric.NewWorker(fabric.WorkerConfig{
		ID:     id,
		Client: fabric.NewClient(coordinator),
		Slots:  slots,
		Gauges: gauges,
		Logf:   log.Printf,
	})
	log.Printf("worker %s attaching to %s (introspection on http://%s)", id, coordinator, ln.Addr())
	return w.Run(ctx)
}

// selftestSpec is a 4-job campaign (2 grid points x 2 seeds) small enough
// to finish in well under a second. The faults axis is warm: its patches
// only matter after the 120 s fault-free lead-in, so jobs differing only
// along it fork one checkpointed 120 s prefix instead of simulating from
// zero — the selftest asserts the service reports those forks.
const selftestSpec = `{
  "name": "selftest",
  "base": {
    "graph": {
      "pes": [
        {"name": "src", "alternates": [{"name": "e", "value": 1, "cost": 0.2, "selectivity": 1}]},
        {"name": "work", "alternates": [
          {"name": "full", "value": 1.0, "cost": 1.0, "selectivity": 1},
          {"name": "lite", "value": 0.8, "cost": 0.5, "selectivity": 1}
        ]}
      ],
      "edges": [["src", "work"]]
    },
    "rate": {"kind": "constant", "mean": 5},
    "horizonHours": 0.1,
    "seed": 1,
    "check": {"enabled": true, "strict": true}
  },
  "axes": [
    {"name": "policy", "values": [
      {"label": "global", "patch": {"policy": {"kind": "global", "resilient": true}}}
    ]},
    {"name": "faults", "warm": true, "values": [
      {"label": "off", "patch": {"control": {"faultFreeSec": 120}}},
      {"label": "on",  "patch": {"control": {"acquireFailProb": 0.5, "faultFreeSec": 120}}}
    ]}
  ],
  "warmStart": {"prefixSec": 120},
  "seeds": [1, 2]
}`

// runSelftest exercises the full service lifecycle over loopback HTTP,
// twice: once on the in-process pool, once through a fabric coordinator
// with one attached worker — and asserts both paths emit byte-identical
// aggregate CSVs.
func runSelftest(workers int) error {
	poolCSV, err := selftestRound(workers, nil, nil)
	if err != nil {
		return fmt.Errorf("pool round: %w", err)
	}
	fabricCSV, err := selftestRound(workers, &fabric.Config{}, []string{
		"# TYPE fabric_leases_total counter",
		"# TYPE fabric_workers_live gauge",
	})
	if err != nil {
		return fmt.Errorf("fabric round: %w", err)
	}
	if !bytes.Equal(poolCSV, fabricCSV) {
		return fmt.Errorf("fabric CSV diverged from pool CSV:\n--- pool ---\n%s--- fabric ---\n%s", poolCSV, fabricCSV)
	}
	return nil
}

// selftestRound runs the selftest campaign once and returns its aggregate
// CSV. A non-nil fabricCfg runs it through a coordinator with one attached
// worker; extraMetrics lists exposition lines that must appear.
func selftestRound(workers int, fabricCfg *fabric.Config, extraMetrics []string) ([]byte, error) {
	srv, handler := newService(sweep.ServerConfig{Workers: workers}, fabricCfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := newHTTPServer(handler)
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	var workerBase string
	if fabricCfg != nil {
		gauges, workerHandler := newWorkerService()
		workerLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		workerHTTP := newHTTPServer(workerHandler)
		go func() { _ = workerHTTP.Serve(workerLn) }()
		defer workerHTTP.Close()
		workerBase = "http://" + workerLn.Addr().String()
		w := fabric.NewWorker(fabric.WorkerConfig{
			ID:           "selftest-worker",
			Client:       fabric.NewClient(base),
			Slots:        2,
			PollInterval: 10 * time.Millisecond,
			Gauges:       gauges,
		})
		go func() { _ = w.Run(workerCtx) }()
	}

	resp, err := http.Post(base+"/sweeps", "application/json", strings.NewReader(selftestSpec))
	if err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return nil, fmt.Errorf("submit decode: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		return nil, fmt.Errorf("submit: status %d, id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("sweep %s did not finish in time", sub.ID)
		}
		resp, err := http.Get(base + "/sweeps/" + sub.ID)
		if err != nil {
			return nil, fmt.Errorf("poll: %w", err)
		}
		var st struct {
			State    string `json:"state"`
			Error    string `json:"error"`
			Progress struct {
				Done, Total, Errors int
				ForkHits            int `json:"forkHits"`
			} `json:"progress"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return nil, fmt.Errorf("poll decode: %w", err)
		}
		resp.Body.Close()
		if st.State == "done" {
			if st.Progress.Done != 4 || st.Progress.Errors != 0 {
				return nil, fmt.Errorf("unexpected progress: %+v", st.Progress)
			}
			if st.Progress.ForkHits < 1 {
				return nil, fmt.Errorf("no warm-start fork hits: %+v", st.Progress)
			}
			break
		}
		if st.State != "running" {
			return nil, fmt.Errorf("sweep ended in state %q: %s", st.State, st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err = http.Get(base + "/sweeps/" + sub.ID + "/results")
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("results: status %d", resp.StatusCode)
	}
	csv, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("results read: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(csv))
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 3 {
		return nil, fmt.Errorf("aggregated csv has %d lines, want header + 2 rows: %q", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "group,seeds") {
		return nil, fmt.Errorf("bad header %q", lines[0])
	}
	if !strings.HasSuffix(lines[0], ",violations") {
		return nil, fmt.Errorf("header %q lacks the violations column", lines[0])
	}
	for i, group := range []string{"policy=global/faults=off", "policy=global/faults=on"} {
		row := lines[1+i]
		if !strings.HasPrefix(row, group+",2,0,0,") {
			return nil, fmt.Errorf("bad aggregated row %q, want group %s with 2 clean seeds", row, group)
		}
		// The selftest campaign runs strict-checked; any invariant violation
		// would have failed the jobs, and the summed column must stay 0.
		if !strings.HasSuffix(row, ",0") {
			return nil, fmt.Errorf("aggregated row %q reports invariant violations", row)
		}
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	expo, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("metrics read: %w", err)
	}
	want := []string{
		"# TYPE sweep_jobs_done_total counter",
		"# TYPE dfserve_http_requests_total counter",
		"# TYPE sim_omega gauge",
	}
	want = append(want, extraMetrics...)
	for _, line := range want {
		if !strings.Contains(string(expo), line) {
			return nil, fmt.Errorf("metrics output missing %q:\n%s", line, expo)
		}
	}

	if workerBase != "" {
		// The worker ran the jobs, so its own introspection surface must
		// show the run gauges its engines drove.
		resp, err := http.Get(workerBase + "/metrics")
		if err != nil {
			return nil, fmt.Errorf("worker metrics: %w", err)
		}
		wexpo, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("worker metrics read: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("worker metrics: status %d", resp.StatusCode)
		}
		if !strings.Contains(string(wexpo), "# TYPE sim_omega gauge") {
			return nil, fmt.Errorf("worker metrics output missing sim_omega:\n%s", wexpo)
		}
	}

	stopWorker()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return nil, fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return nil, fmt.Errorf("sweep shutdown: %w", err)
	}
	return csv, nil
}
