// Command dfserve exposes the sweep campaign engine as an HTTP service:
// submit a sweep spec (a base scenario crossed with parameter axes and
// seeds), poll or stream its progress, and fetch the aggregated
// mean/P50/P95 results. Completions are journaled per campaign, so
// restarting the service (or resubmitting a spec) re-runs only the jobs
// that are not already on record.
//
// Usage:
//
//	dfserve [-addr HOST:PORT] [-workers N] [-journal DIR]
//	dfserve -selftest
//
// Endpoints:
//
//	POST   /sweeps              submit a sweep spec (JSON)
//	GET    /sweeps              list campaigns
//	GET    /sweeps/{id}         poll status
//	GET    /sweeps/{id}/watch   stream NDJSON progress until done
//	GET    /sweeps/{id}/results aggregated CSV (?format=json for the report)
//	DELETE /sweeps/{id}         cancel
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text exposition
//	GET    /debug/pprof/        runtime profiling (pprof)
//
// Every request is counted and timed into the dfserve_http_* metric
// families; the sweep worker pool and the live sim run state export as
// sweep_jobs_* and sim_* series.
//
// SIGINT/SIGTERM shut down gracefully: in-flight jobs finish and are
// journaled, queued jobs are left for the next run.
//
// -selftest starts the service on a loopback port, submits a 4-job
// warm-start sweep over real HTTP, asserts the aggregated output and the
// prefix fork count, shuts down gracefully, and exits non-zero on any
// failure (used by ci.sh as a smoke test).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynamicdf/internal/obs"
	"dynamicdf/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dfserve: ")
	addr := flag.String("addr", "127.0.0.1:8350", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "worker pool size per campaign (0 = GOMAXPROCS)")
	journalDir := flag.String("journal", "", "journal directory for crash-safe resume (empty = in-memory only)")
	selftest := flag.Bool("selftest", false, "start, submit a 2-job sweep, assert results, shut down")
	flag.Parse()

	if *selftest {
		if err := runSelftest(*workers); err != nil {
			log.Fatalf("selftest: %v", err)
		}
		fmt.Println("dfserve: selftest ok")
		return
	}

	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	srv, handler := newService(sweep.ServerConfig{Workers: *workers, JournalDir: *journalDir})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: handler}
	fmt.Printf("dfserve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down: draining workers")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("sweep shutdown: %v", err)
	}
	log.Print("bye")
}

// newService wires the sweep server into the full dfserve handler: the
// sweep API (instrumented with request metrics) at the root, the metrics
// registry's text exposition at /metrics, and pprof at /debug/pprof/.
func newService(cfg sweep.ServerConfig) (*sweep.Server, http.Handler) {
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	srv := sweep.NewServer(cfg)

	mux := http.NewServeMux()
	mux.Handle("/", obs.InstrumentHandler(reg, "dfserve_http", srv.Handler()))
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return srv, mux
}

// selftestSpec is a 4-job campaign (2 grid points x 2 seeds) small enough
// to finish in well under a second. The faults axis is warm: its patches
// only matter after the 120 s fault-free lead-in, so jobs differing only
// along it fork one checkpointed 120 s prefix instead of simulating from
// zero — the selftest asserts the service reports those forks.
const selftestSpec = `{
  "name": "selftest",
  "base": {
    "graph": {
      "pes": [
        {"name": "src", "alternates": [{"name": "e", "value": 1, "cost": 0.2, "selectivity": 1}]},
        {"name": "work", "alternates": [
          {"name": "full", "value": 1.0, "cost": 1.0, "selectivity": 1},
          {"name": "lite", "value": 0.8, "cost": 0.5, "selectivity": 1}
        ]}
      ],
      "edges": [["src", "work"]]
    },
    "rate": {"kind": "constant", "mean": 5},
    "horizonHours": 0.1,
    "seed": 1,
    "check": {"enabled": true, "strict": true}
  },
  "axes": [
    {"name": "policy", "values": [
      {"label": "global", "patch": {"policy": {"kind": "global", "resilient": true}}}
    ]},
    {"name": "faults", "warm": true, "values": [
      {"label": "off", "patch": {"control": {"faultFreeSec": 120}}},
      {"label": "on",  "patch": {"control": {"acquireFailProb": 0.5, "faultFreeSec": 120}}}
    ]}
  ],
  "warmStart": {"prefixSec": 120},
  "seeds": [1, 2]
}`

// runSelftest exercises the full service lifecycle over loopback HTTP.
func runSelftest(workers int) error {
	srv, handler := newService(sweep.ServerConfig{Workers: workers})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/sweeps", "application/json", strings.NewReader(selftestSpec))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return fmt.Errorf("submit decode: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		return fmt.Errorf("submit: status %d, id %q", resp.StatusCode, sub.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("sweep %s did not finish in time", sub.ID)
		}
		resp, err := http.Get(base + "/sweeps/" + sub.ID)
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		var st struct {
			State    string `json:"state"`
			Error    string `json:"error"`
			Progress struct {
				Done, Total, Errors int
				ForkHits            int `json:"forkHits"`
			} `json:"progress"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return fmt.Errorf("poll decode: %w", err)
		}
		resp.Body.Close()
		if st.State == "done" {
			if st.Progress.Done != 4 || st.Progress.Errors != 0 {
				return fmt.Errorf("unexpected progress: %+v", st.Progress)
			}
			if st.Progress.ForkHits < 1 {
				return fmt.Errorf("no warm-start fork hits: %+v", st.Progress)
			}
			break
		}
		if st.State != "running" {
			return fmt.Errorf("sweep ended in state %q: %s", st.State, st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err = http.Get(base + "/sweeps/" + sub.ID + "/results")
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("results: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 3 {
		return fmt.Errorf("aggregated csv has %d lines, want header + 2 rows: %q", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "group,seeds") {
		return fmt.Errorf("bad header %q", lines[0])
	}
	if !strings.HasSuffix(lines[0], ",violations") {
		return fmt.Errorf("header %q lacks the violations column", lines[0])
	}
	for i, group := range []string{"policy=global/faults=off", "policy=global/faults=on"} {
		row := lines[1+i]
		if !strings.HasPrefix(row, group+",2,0,0,") {
			return fmt.Errorf("bad aggregated row %q, want group %s with 2 clean seeds", row, group)
		}
		// The selftest campaign runs strict-checked; any invariant violation
		// would have failed the jobs, and the summed column must stay 0.
		if !strings.HasSuffix(row, ",0") {
			return fmt.Errorf("aggregated row %q reports invariant violations", row)
		}
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	expo, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("metrics read: %w", err)
	}
	for _, want := range []string{
		"# TYPE sweep_jobs_done_total counter",
		"# TYPE dfserve_http_requests_total counter",
		"# TYPE sim_omega gauge",
	} {
		if !strings.Contains(string(expo), want) {
			return fmt.Errorf("metrics output missing %q:\n%s", want, expo)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("sweep shutdown: %w", err)
	}
	return nil
}
