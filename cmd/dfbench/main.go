// Command dfbench regenerates every table and figure of the paper's
// evaluation section and prints the rows/series the paper reports.
//
// Usage:
//
//	dfbench [-quick] [-seed N] [-horizon HOURS]
//	dfbench -sweep {fig5|fig67|faults|SPEC.json} [-sweep-replicas N] [-workers N] [-journal FILE]
//	dfbench -sweep ... -coordinator URL
//
// -quick runs a reduced sweep (shorter horizon, fewer rates) for smoke
// testing; the default reproduces the full 10-hour evaluation.
//
// -sweep switches dfbench from the serial figure runners to the campaign
// engine (internal/sweep): the named grids re-express the figures as
// policy x rate x seed campaigns executed on a bounded worker pool, or a
// sweep spec JSON file runs as-is. With -journal, completed jobs are
// cached and a re-run only executes what is missing.
//
// -coordinator submits the campaign to a running dfserve instead of
// executing locally: progress streams back over the watch channel and the
// aggregated report is fetched when the campaign finishes. Point it at a
// `dfserve -fabric` coordinator to run the grid on attached workers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"dynamicdf/internal/experiments"
	"dynamicdf/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dfbench: ")
	quick := flag.Bool("quick", false, "reduced sweep for smoke runs")
	seed := flag.Int64("seed", 42, "seed for traces and profiles")
	horizon := flag.Float64("horizon", 0, "override horizon in hours (0 = config default)")
	only := flag.String("only", "", "run a single figure: 2,3,4,5,6,7,8,9, ft (fault tolerance), latency, spot, scalability, ablations or vmtable")
	csvDir := flag.String("csvdir", "", "also write plot-ready CSVs for every figure into this directory")
	check := flag.Bool("check", false, "verify the paper's qualitative claims and print a reproduction scorecard")
	sweepArg := flag.String("sweep", "", "run a campaign instead of the serial figures: a named grid (fig5, fig67, faults) or a sweep spec JSON file")
	sweepReplicas := flag.Int("sweep-replicas", 3, "seed replicas per grid cell for named grids")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	journal := flag.String("journal", "", "sweep journal file for cached, resumable campaigns")
	coordinator := flag.String("coordinator", "", "submit the sweep to a running dfserve at this base URL instead of executing locally")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *horizon > 0 {
		cfg.HorizonSec = int64(*horizon * 3600)
	}

	if *sweepArg != "" {
		if err := runSweep(cfg, *sweepArg, *sweepReplicas, *workers, *journal, *coordinator); err != nil {
			log.Fatal(err)
		}
		return
	}

	runAll := *only == ""
	out := os.Stdout

	if *check {
		sc, err := experiments.CheckClaims(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, sc.Table())
		if sc.Passed() != len(sc.Claims) {
			os.Exit(1)
		}
		return
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		err := experiments.WriteAllCSVs(cfg, func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*csvDir, name+".csv"))
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote per-figure CSVs to %s\n", *csvDir)
	}

	if runAll || *only == "vmtable" {
		fmt.Fprintln(out, experiments.VMClassTable())
	}
	if runAll || *only == "2" {
		r, err := experiments.RunFig2(cfg.Seed, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "3" {
		r, err := experiments.RunFig3(cfg.Seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "4" {
		r, err := experiments.RunFig4(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "5" {
		r, err := experiments.RunFig5(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "6" {
		r, err := experiments.RunFig6(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "7" {
		r, err := experiments.RunFig7(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "scalability" {
		r, err := experiments.RunScalability(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "ablations" {
		r, err := experiments.RunAblations(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "latency" {
		r, err := experiments.RunLatencyQoS(cfg, 15)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "spot" {
		r, err := experiments.RunSpotMarket(cfg, 20, 0.3, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "ft" {
		r, err := experiments.RunFaultTolerance(cfg, 20, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "8" || *only == "9" {
		f8, err := experiments.RunFig8(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if runAll || *only == "8" {
			fmt.Fprintln(out, f8.Table())
		}
		f9, err := experiments.DeriveFig9(f8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, f9.Table())
	}
}

// runSweep resolves arg as a named grid or a sweep spec file and executes
// it on the campaign engine — or, with a coordinator URL, submits it to a
// running dfserve. SIGINT cancels the run; with a journal the next
// invocation resumes from whatever completed.
func runSweep(cfg experiments.Config, arg string, replicas, workers int, journalPath, coordinator string) error {
	var spec *sweep.Spec
	if data, err := os.ReadFile(arg); err == nil {
		spec, err = sweep.ParseSpec(data)
		if err != nil {
			return fmt.Errorf("sweep spec %s: %w", arg, err)
		}
	} else if os.IsNotExist(err) {
		spec, err = experiments.NamedGrid(arg, cfg, replicas)
		if err != nil {
			return err
		}
	} else {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if coordinator != "" {
		return submitSweep(ctx, coordinator, spec)
	}

	eng := &sweep.Engine{Workers: workers}
	if journalPath != "" {
		j, err := sweep.OpenJournal(journalPath)
		if err != nil {
			return err
		}
		defer j.Close()
		eng.Journal = j
	}
	eng.OnProgress = func(p sweep.Progress) {
		fmt.Fprintf(os.Stderr, "\rsweep %s: %d/%d done (%d cached, %d errors)",
			spec.Name, p.Done, p.Total, p.CacheHits, p.Errors)
		if p.Done == p.Total {
			fmt.Fprintln(os.Stderr)
		}
	}

	rep, err := eng.Run(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	return nil
}

// submitSweep runs the campaign on a remote dfserve: submit the spec,
// stream progress over the watch channel, then fetch the aggregated
// report. The remote journals completions, so a resubmitted spec only
// executes what is missing there.
func submitSweep(ctx context.Context, coordinator string, spec *sweep.Spec) error {
	base := strings.TrimRight(coordinator, "/")
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/sweeps", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("submit to %s: %w", base, err)
	}
	var sub struct {
		ID      string `json:"id"`
		Created bool   `json:"created"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("submit decode: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	fmt.Fprintf(os.Stderr, "sweep %s: campaign %s (created=%v) on %s\n", spec.Name, sub.ID, sub.Created, base)

	// Stream progress until the campaign leaves the running state.
	watchReq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/sweeps/"+sub.ID+"/watch", nil)
	if err != nil {
		return err
	}
	watchResp, err := http.DefaultClient.Do(watchReq)
	if err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	defer watchResp.Body.Close()
	var last struct {
		State    string         `json:"state"`
		Error    string         `json:"error"`
		Progress sweep.Progress `json:"progress"`
	}
	dec := json.NewDecoder(watchResp.Body)
	for dec.More() {
		if err := dec.Decode(&last); err != nil {
			return fmt.Errorf("watch decode: %w", err)
		}
		p := last.Progress
		fmt.Fprintf(os.Stderr, "\rsweep %s: %d/%d done (%d cached, %d errors, %d requeued, %d workers)",
			spec.Name, p.Done, p.Total, p.CacheHits, p.Errors, p.Requeues, p.Workers)
	}
	fmt.Fprintln(os.Stderr)
	if last.State != "done" {
		return fmt.Errorf("sweep ended in state %q: %s", last.State, last.Error)
	}

	resp, err = http.Get(base + "/sweeps/" + sub.ID + "/results?format=json")
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("results: status %d: %s", resp.StatusCode, msg)
	}
	var rep sweep.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("results decode: %w", err)
	}
	fmt.Println(rep.Table())
	return nil
}
