// Command dfbench regenerates every table and figure of the paper's
// evaluation section and prints the rows/series the paper reports.
//
// Usage:
//
//	dfbench [-quick] [-seed N] [-horizon HOURS]
//	dfbench -sweep {fig5|fig67|faults|SPEC.json} [-sweep-replicas N] [-workers N] [-journal FILE]
//
// -quick runs a reduced sweep (shorter horizon, fewer rates) for smoke
// testing; the default reproduces the full 10-hour evaluation.
//
// -sweep switches dfbench from the serial figure runners to the campaign
// engine (internal/sweep): the named grids re-express the figures as
// policy x rate x seed campaigns executed on a bounded worker pool, or a
// sweep spec JSON file runs as-is. With -journal, completed jobs are
// cached and a re-run only executes what is missing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"dynamicdf/internal/experiments"
	"dynamicdf/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dfbench: ")
	quick := flag.Bool("quick", false, "reduced sweep for smoke runs")
	seed := flag.Int64("seed", 42, "seed for traces and profiles")
	horizon := flag.Float64("horizon", 0, "override horizon in hours (0 = config default)")
	only := flag.String("only", "", "run a single figure: 2,3,4,5,6,7,8,9, ft (fault tolerance), latency, spot, scalability, ablations or vmtable")
	csvDir := flag.String("csvdir", "", "also write plot-ready CSVs for every figure into this directory")
	check := flag.Bool("check", false, "verify the paper's qualitative claims and print a reproduction scorecard")
	sweepArg := flag.String("sweep", "", "run a campaign instead of the serial figures: a named grid (fig5, fig67, faults) or a sweep spec JSON file")
	sweepReplicas := flag.Int("sweep-replicas", 3, "seed replicas per grid cell for named grids")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	journal := flag.String("journal", "", "sweep journal file for cached, resumable campaigns")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *horizon > 0 {
		cfg.HorizonSec = int64(*horizon * 3600)
	}

	if *sweepArg != "" {
		if err := runSweep(cfg, *sweepArg, *sweepReplicas, *workers, *journal); err != nil {
			log.Fatal(err)
		}
		return
	}

	runAll := *only == ""
	out := os.Stdout

	if *check {
		sc, err := experiments.CheckClaims(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, sc.Table())
		if sc.Passed() != len(sc.Claims) {
			os.Exit(1)
		}
		return
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		err := experiments.WriteAllCSVs(cfg, func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*csvDir, name+".csv"))
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote per-figure CSVs to %s\n", *csvDir)
	}

	if runAll || *only == "vmtable" {
		fmt.Fprintln(out, experiments.VMClassTable())
	}
	if runAll || *only == "2" {
		r, err := experiments.RunFig2(cfg.Seed, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "3" {
		r, err := experiments.RunFig3(cfg.Seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "4" {
		r, err := experiments.RunFig4(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "5" {
		r, err := experiments.RunFig5(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "6" {
		r, err := experiments.RunFig6(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "7" {
		r, err := experiments.RunFig7(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "scalability" {
		r, err := experiments.RunScalability(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "ablations" {
		r, err := experiments.RunAblations(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "latency" {
		r, err := experiments.RunLatencyQoS(cfg, 15)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "spot" {
		r, err := experiments.RunSpotMarket(cfg, 20, 0.3, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "ft" {
		r, err := experiments.RunFaultTolerance(cfg, 20, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, r.Table())
	}
	if runAll || *only == "8" || *only == "9" {
		f8, err := experiments.RunFig8(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if runAll || *only == "8" {
			fmt.Fprintln(out, f8.Table())
		}
		f9, err := experiments.DeriveFig9(f8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, f9.Table())
	}
}

// runSweep resolves arg as a named grid or a sweep spec file and executes
// it on the campaign engine. SIGINT cancels the run; with a journal the
// next invocation resumes from whatever completed.
func runSweep(cfg experiments.Config, arg string, replicas, workers int, journalPath string) error {
	var spec *sweep.Spec
	if data, err := os.ReadFile(arg); err == nil {
		spec, err = sweep.ParseSpec(data)
		if err != nil {
			return fmt.Errorf("sweep spec %s: %w", arg, err)
		}
	} else if os.IsNotExist(err) {
		spec, err = experiments.NamedGrid(arg, cfg, replicas)
		if err != nil {
			return err
		}
	} else {
		return err
	}

	eng := &sweep.Engine{Workers: workers}
	if journalPath != "" {
		j, err := sweep.OpenJournal(journalPath)
		if err != nil {
			return err
		}
		defer j.Close()
		eng.Journal = j
	}
	eng.OnProgress = func(p sweep.Progress) {
		fmt.Fprintf(os.Stderr, "\rsweep %s: %d/%d done (%d cached, %d errors)",
			spec.Name, p.Done, p.Total, p.CacheHits, p.Errors)
		if p.Done == p.Total {
			fmt.Fprintln(os.Stderr)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := eng.Run(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println(rep.Table())
	return nil
}
