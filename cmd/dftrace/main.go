// Command dftrace inspects structured event streams (schema obs/v1)
// captured with dfsim -trace or a sweep engine's tracer. It renders a
// deterministic decision timeline, summarizes how long each PE spent on
// each alternate, and diffs the adaptation decisions of two runs.
//
// Usage:
//
//	dftrace [-all] events.ndjson            timeline + occupancy summary
//	dftrace timeline [-all] events.ndjson   decision timeline only
//	dftrace occupancy events.ndjson         per-PE alternate occupancy only
//	dftrace diff a.ndjson b.ndjson          decision diff (exit 1 if they differ)
//
// All output is derived from simulation timestamps, so the same capture
// always renders to the same bytes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dynamicdf/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dftrace: ")

	args := os.Args[1:]
	cmd := "both"
	switch {
	case len(args) > 0 && args[0] == "timeline":
		cmd, args = "timeline", args[1:]
	case len(args) > 0 && args[0] == "occupancy":
		cmd, args = "occupancy", args[1:]
	case len(args) > 0 && args[0] == "diff":
		cmd, args = "diff", args[1:]
	}

	fs := flag.NewFlagSet("dftrace", flag.ExitOnError)
	all := fs.Bool("all", false, "include bookkeeping events (step/run spans, init snapshots)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dftrace [timeline|occupancy|diff] [-all] events.ndjson [b.ndjson]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	args = fs.Args()

	switch cmd {
	case "diff":
		if len(args) != 2 {
			log.Fatal("diff needs exactly two event files")
		}
		a, b := readFile(args[0]), readFile(args[1])
		report, same := obs.DiffDecisions(a, b)
		fmt.Print(report)
		if !same {
			os.Exit(1)
		}
	case "timeline":
		fmt.Print(obs.Timeline(readFile(oneArg(args)), *all))
	case "occupancy":
		fmt.Print(obs.Occupancy(readFile(oneArg(args))))
	default:
		events := readFile(oneArg(args))
		fmt.Print(obs.Timeline(events, *all))
		fmt.Println("-- occupancy --")
		fmt.Print(obs.Occupancy(events))
	}
}

func oneArg(args []string) string {
	if len(args) != 1 {
		log.Fatal("need exactly one event file (see -h)")
	}
	return args[0]
}

func readFile(path string) []obs.Event {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return events
}
