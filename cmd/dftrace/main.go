// Command dftrace inspects structured event streams (schema obs/v1)
// captured with dfsim -trace or a sweep engine's tracer. It renders a
// deterministic decision timeline, summarizes how long each PE spent on
// each alternate, diffs the adaptation decisions of two runs, stitches a
// fabric campaign's coordinator and worker captures into one causally
// ordered timeline, profiles a scenario's per-stage step cost, and
// explains the provenance of an adaptation decision.
//
// Usage:
//
//	dftrace [-all] events.ndjson              timeline + occupancy summary
//	dftrace timeline [-all] a.ndjson [b...]   decision timeline; several captures
//	                                          (coordinator + workers) are stitched
//	                                          into one causal campaign timeline
//	dftrace occupancy events.ndjson           per-PE alternate occupancy only
//	dftrace diff a.ndjson b.ndjson            decision diff (exit 1 if they differ)
//	dftrace profile scenario.json             run the scenario with the stage
//	                                          profiler and print the per-stage
//	                                          cost table + step breakdown
//	dftrace explain <sec> events.ndjson       reconstruct the causal chain behind
//	                                          the adaptation decisions at <sec>
//
// Timeline, occupancy, diff, and explain output is derived from simulation
// timestamps, so the same capture always renders to the same bytes;
// profile reports wall-clock cost and is the one deliberately
// non-deterministic rendering.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"dynamicdf/internal/obs"
	"dynamicdf/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dftrace: ")

	args := os.Args[1:]
	cmd := "both"
	switch {
	case len(args) > 0 && args[0] == "timeline":
		cmd, args = "timeline", args[1:]
	case len(args) > 0 && args[0] == "occupancy":
		cmd, args = "occupancy", args[1:]
	case len(args) > 0 && args[0] == "diff":
		cmd, args = "diff", args[1:]
	case len(args) > 0 && args[0] == "profile":
		cmd, args = "profile", args[1:]
	case len(args) > 0 && args[0] == "explain":
		cmd, args = "explain", args[1:]
	}

	fs := flag.NewFlagSet("dftrace", flag.ExitOnError)
	all := fs.Bool("all", false, "include bookkeeping events (step/run spans, init snapshots)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dftrace [timeline|occupancy|diff|profile|explain] [-all] args...")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	args = fs.Args()

	switch cmd {
	case "diff":
		if len(args) != 2 {
			log.Fatal("diff needs exactly two event files")
		}
		a, b := readFile(args[0]), readFile(args[1])
		report, same := obs.DiffDecisions(a, b)
		fmt.Print(report)
		if !same {
			os.Exit(1)
		}
	case "timeline":
		fmt.Print(obs.Timeline(readAll(args), *all))
	case "occupancy":
		fmt.Print(obs.Occupancy(readFile(oneArg(args))))
	case "profile":
		profile(oneArg(args))
	case "explain":
		if len(args) < 2 {
			log.Fatal("explain needs a sim-second and at least one event file")
		}
		sec, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			log.Fatalf("explain: bad sim-second %q: %v", args[0], err)
		}
		fmt.Print(obs.Explain(readAll(args[1:]), sec))
	default:
		events := readFile(oneArg(args))
		fmt.Print(obs.Timeline(events, *all))
		fmt.Println("-- occupancy --")
		fmt.Print(obs.Occupancy(events))
	}
}

// profile runs the scenario in-process with a stage profiler attached and
// prints where each engine step's cost went.
func profile(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := scenario.Parse(f)
	_ = f.Close()
	if err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	built, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	prof := obs.NewStageProfiler(nil)
	built.Engine.SetProfiler(prof)
	sum, err := built.Engine.Run(built.Scheduler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s (policy=%s, %d intervals)\n", path, built.Scheduler.Name(), sum.Intervals)
	fmt.Print(prof.Report())
}

func oneArg(args []string) string {
	if len(args) != 1 {
		log.Fatal("need exactly one argument (see -h)")
	}
	return args[0]
}

// readAll reads one capture, or stitches several (a coordinator's plus its
// workers') into one causally ordered campaign stream.
func readAll(args []string) []obs.Event {
	if len(args) == 0 {
		log.Fatal("need at least one event file (see -h)")
	}
	if len(args) == 1 {
		return readFile(args[0])
	}
	streams := make([][]obs.Event, len(args))
	for i, path := range args {
		streams[i] = readFile(path)
	}
	return obs.StitchTimeline(streams...)
}

func readFile(path string) []obs.Event {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return events
}
