package main

import (
	"os"
	"testing"

	"dynamicdf/internal/obs"
)

// TestGoldenTimeline replays the checked-in fixture (captured with
// dfsim -trace) and asserts the default dftrace rendering is byte-identical
// to the golden output. Regenerate both with:
//
//	dfsim -config <scenario> -trace testdata/golden.ndjson
//	dftrace testdata/golden.ndjson > testdata/golden.txt
func TestGoldenTimeline(t *testing.T) {
	f, err := os.Open("testdata/golden.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("golden fixture is empty")
	}
	got := obs.Timeline(events, false) + "-- occupancy --\n" + obs.Occupancy(events)
	want, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("rendering diverged from golden output\n-- got --\n%s-- want --\n%s", got, want)
	}
}

// TestGoldenDiffSelf asserts a capture diffed against itself reports no
// divergence.
func TestGoldenDiffSelf(t *testing.T) {
	f, err := os.Open("testdata/golden.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	report, same := obs.DiffDecisions(events, events)
	if !same {
		t.Fatalf("self-diff reports divergence:\n%s", report)
	}
}
