package main

import (
	"os"
	"testing"

	"dynamicdf/internal/obs"
)

// TestGoldenTimeline replays the checked-in fixture (captured with
// dfsim -trace) and asserts the default dftrace rendering is byte-identical
// to the golden output. Regenerate both with:
//
//	dfsim -config <scenario> -trace testdata/golden.ndjson
//	dftrace testdata/golden.ndjson > testdata/golden.txt
func TestGoldenTimeline(t *testing.T) {
	f, err := os.Open("testdata/golden.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("golden fixture is empty")
	}
	got := obs.Timeline(events, false) + "-- occupancy --\n" + obs.Occupancy(events)
	want, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("rendering diverged from golden output\n-- got --\n%s-- want --\n%s", got, want)
	}
}

// TestGoldenStitch stitches the checked-in fabric campaign fixture — one
// coordinator capture plus two worker captures — and asserts the merged
// timeline is byte-identical to the golden output. The fixture's events all
// share wall-clock-free timestamps (coordinator events at t=0), so the
// golden pins the causal ordering rules: a lease precedes its span's
// worker events, a result ack follows the span's job-end, ties break by
// argument order. Regenerate with:
//
//	dftrace timeline -all testdata/stitch_coord.ndjson \
//	    testdata/stitch_w1.ndjson testdata/stitch_w2.ndjson > testdata/stitch_golden.txt
func TestGoldenStitch(t *testing.T) {
	read := func(path string) []obs.Event {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		events, err := obs.ReadEvents(f)
		if err != nil {
			t.Fatal(err)
		}
		return events
	}
	coord := read("testdata/stitch_coord.ndjson")
	w1 := read("testdata/stitch_w1.ndjson")
	w2 := read("testdata/stitch_w2.ndjson")

	stitched := obs.StitchTimeline(coord, w1, w2)
	if len(stitched) != len(coord)+len(w1)+len(w2) {
		t.Fatalf("stitch dropped events: %d in, %d out", len(coord)+len(w1)+len(w2), len(stitched))
	}
	got := obs.Timeline(stitched, true)
	want, err := os.ReadFile("testdata/stitch_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("stitched timeline diverged from golden output\n-- got --\n%s-- want --\n%s", got, want)
	}
	// Stitching is deterministic: a second pass over the same captures
	// yields the same bytes.
	again := obs.Timeline(obs.StitchTimeline(coord, w1, w2), true)
	if again != got {
		t.Fatal("stitching the same captures twice diverged")
	}
}

// TestGoldenDiffSelf asserts a capture diffed against itself reports no
// divergence.
func TestGoldenDiffSelf(t *testing.T) {
	f, err := os.Open("testdata/golden.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	report, same := obs.DiffDecisions(events, events)
	if !same {
		t.Fatalf("self-diff reports divergence:\n%s", report)
	}
}
