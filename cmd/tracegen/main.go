// Command tracegen emits synthetic IaaS performance-variability traces —
// the CPU coefficient, pairwise latency and pairwise bandwidth series the
// simulator replays — as CSV, and prints their characterization (the
// statistics Figs. 2-3 of the paper report for the FutureGrid traces).
//
// Usage:
//
//	tracegen -kind cpu -samples 5760 -seed 1 -out cpu.csv
//	tracegen -kind bandwidth -stats
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"dynamicdf/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	kind := flag.String("kind", "cpu", "trace kind: cpu | latency | bandwidth")
	samples := flag.Int("samples", trace.FourDays, "number of samples (one per period)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output CSV path (default stdout)")
	statsOnly := flag.Bool("stats", false, "print characterization only, no CSV")
	flag.Parse()

	var cfg trace.GenConfig
	switch *kind {
	case "cpu":
		cfg = trace.DefaultCPUConfig()
	case "latency":
		cfg = trace.DefaultLatencyConfig()
	case "bandwidth":
		cfg = trace.DefaultBandwidthConfig()
	default:
		log.Fatalf("unknown kind %q (want cpu, latency or bandwidth)", *kind)
	}

	s, err := cfg.Generate(rand.New(rand.NewSource(*seed)), *samples)
	if err != nil {
		log.Fatal(err)
	}
	st := trace.Characterize(s)
	fmt.Fprintf(os.Stderr, "%s trace: %s\n", *kind, st)

	if *statsOnly {
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := s.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d samples to %s\n", len(s.Samples), *out)
	}
}
