// Command dfgraph validates and describes a dynamic dataflow written in
// the canonical graph JSON format, and can emit the built-in reference
// graphs as starting points.
//
// Usage:
//
//	dfgraph -validate mygraph.json
//	dfgraph -emit fig1 > fig1.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dynamicdf"
	"dynamicdf/internal/dataflow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dfgraph: ")
	validate := flag.String("validate", "", "graph JSON file to validate and describe")
	emit := flag.String("emit", "", "emit a reference graph: fig1 | eval | layered")
	rate := flag.Float64("rate", 10, "input rate (msg/s) used for the demand summary")
	flag.Parse()

	switch {
	case *emit != "":
		var g *dynamicdf.Graph
		switch *emit {
		case "fig1":
			g = dynamicdf.Fig1Graph()
		case "eval":
			g = dynamicdf.EvalGraph()
		case "layered":
			g = dataflow.LayeredGraph(4, 2, 5)
		default:
			log.Fatalf("unknown reference graph %q", *emit)
		}
		if err := g.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case *validate != "":
		f, err := os.Open(*validate)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err := dynamicdf.ReadGraphJSON(f)
		if err != nil {
			log.Fatalf("INVALID: %v", err)
		}
		describe(g, *rate)
	default:
		log.Fatal("need -validate FILE or -emit NAME")
	}
}

func describe(g *dynamicdf.Graph, rate float64) {
	fmt.Println("VALID:", g)
	order, err := g.TopoOrder()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("topological order: ")
	for i, pe := range order {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(g.PEs[pe].Name)
	}
	fmt.Println()
	ins, outs := g.Inputs(), g.Outputs()
	fmt.Printf("inputs: %d, outputs: %d, choice groups: %d\n", len(ins), len(outs), len(g.Choices))
	fmt.Printf("application value range: [%.3f, %.3f]\n",
		dataflow.MinValue(g), dataflow.MaxValue(g))

	// Demand summary at the given rate, default alternates.
	sel := dataflow.DefaultSelection(g)
	in := dataflow.InputRates{}
	for _, pe := range ins {
		in[pe] = rate / float64(len(ins))
	}
	demand, err := dataflow.CoreDemand(g, sel, in)
	if err != nil {
		log.Fatal(err)
	}
	total := 0.0
	fmt.Printf("standard-core demand at %.0f msg/s (default alternates):\n", rate)
	for pe, d := range demand {
		fmt.Printf("  %-16s %6.2f cores\n", g.PEs[pe].Name, d)
		total += d
	}
	fmt.Printf("  %-16s %6.2f cores (~%.2f m1.xlarge)\n", "TOTAL", total, total/8)
}
