// Command dfsim runs one dynamic-dataflow simulation scenario described by
// a JSON file (see internal/scenario for the schema) and prints the period
// summary, optionally writing the per-interval metric series as CSV and
// the scheduler action log as JSON lines.
//
// Usage:
//
//	dfsim -config scenario.json [-csv metrics.csv] [-audit actions.jsonl] [-trace events.ndjson] [-check] [-profile]
//	dfsim -config scenario.json -checkpoint snap.json -checkpoint-sec 1800
//	dfsim -config scenario.json -restore snap.json
//	dfsim -example > scenario.json
//
// -trace streams the run's structured event log (schema obs/v1) as NDJSON:
// run/step spans, every scheduler action, VM lifecycle transitions, and QoS
// violations, all stamped with simulation time. Inspect the stream with
// dftrace; for a fixed scenario and seed the bytes are deterministic.
//
// -check runs the scenario with the invariant checker in strict mode
// (overriding the scenario's own check block): the run aborts at the first
// violated conservation law, naming the law and sim-second.
//
// -checkpoint pauses the run at -checkpoint-sec simulated seconds, writes
// the engine's canonical snapshot (schema state/v1, digest-protected JSON)
// to the given path, and continues to the horizon. -restore starts from
// such a snapshot instead of from zero: the resumed run — metrics, audit,
// trace events, summary — is byte-identical to the uninterrupted one from
// the restore point on. The scenario file must describe the same world the
// snapshot was taken from (same graph size, interval, and seed).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"dynamicdf/internal/invariant"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/resilient"
	"dynamicdf/internal/scenario"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/state"
)

const exampleScenario = `{
  "graph": {
    "pes": [
      {"name": "ingest", "alternates": [{"name": "only", "value": 1, "cost": 0.25, "selectivity": 1}]},
      {"name": "analyze", "alternates": [
        {"name": "deep", "value": 1.0, "cost": 1.4, "selectivity": 1},
        {"name": "fast", "value": 0.8, "cost": 0.9, "selectivity": 1}
      ]},
      {"name": "sink", "alternates": [{"name": "only", "value": 1, "cost": 0.35, "selectivity": 1}]}
    ],
    "edges": [["ingest", "analyze"], ["analyze", "sink"]]
  },
  "rate": {"kind": "wave", "mean": 10, "amplitude": 4, "periodSec": 1800},
  "infra": {"kind": "replayed", "seed": 42},
  "policy": {"kind": "global", "dynamic": true, "resilient": false},
  "control": {
    "meanBootSec": 0,
    "acquireFailProb": 0,
    "burstEverySec": 0,
    "faultFreeSec": 0,
    "monitorStaleProb": 0,
    "monitorNoiseFrac": 0
  },
  "horizonHours": 4,
  "omegaHat": 0.7,
  "epsilon": 0.05
}`

func main() {
	log.SetFlags(0)
	log.SetPrefix("dfsim: ")
	configPath := flag.String("config", "", "path to a scenario JSON file")
	csvPath := flag.String("csv", "", "write per-interval metrics CSV here")
	auditPath := flag.String("audit", "", "write the scheduler action log (JSON lines) here")
	tracePath := flag.String("trace", "", "write the structured event stream (NDJSON, schema obs/v1) here")
	resilientFlag := flag.Bool("resilient", false, "wrap the policy in the resilient control-plane middleware")
	degradeOmega := flag.Float64("degrade-omega", 0, "arm the middleware's degradation hook below this Omega (with -resilient)")
	check := flag.Bool("check", false, "verify the run against the invariant catalog (strict: abort on the first violated law)")
	profileFlag := flag.Bool("profile", false, "profile the engine's per-stage step cost and print the breakdown after the run")
	checkpointPath := flag.String("checkpoint", "", "write a state/v1 snapshot here at -checkpoint-sec, then continue")
	checkpointSec := flag.Int64("checkpoint-sec", 0, "simulated second to checkpoint at (an interval boundary; with -checkpoint)")
	restorePath := flag.String("restore", "", "resume from a state/v1 snapshot instead of starting at t=0")
	flowWorkers := flag.Int("flow-workers", 0, "shard the engine's flow stage across this many workers (0 = serial; results are byte-identical either way)")
	example := flag.Bool("example", false, "print an example scenario and exit")
	flag.Parse()

	if *example {
		fmt.Println(exampleScenario)
		return
	}
	if *configPath == "" {
		log.Fatal("need -config (or -example for a template)")
	}
	f, err := os.Open(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := scenario.Parse(f)
	_ = f.Close()
	if err != nil {
		log.Fatalf("parse %s: %v", *configPath, err)
	}
	sc.Audit = sc.Audit || *auditPath != ""
	sc.Policy.Resilient = sc.Policy.Resilient || *resilientFlag
	if *degradeOmega > 0 {
		sc.Policy.DegradeOmega = *degradeOmega
	}
	if *check {
		sc.Check = &scenario.CheckSpec{Enabled: true, Strict: true}
	}
	if *flowWorkers > 0 {
		sc.FlowWorkers = *flowWorkers
	}

	built, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	if *restorePath != "" {
		data, err := os.ReadFile(*restorePath)
		if err != nil {
			log.Fatal(err)
		}
		snap, err := state.Decode(data)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := sim.Restore(snap, built.Config)
		if err != nil {
			log.Fatal(err)
		}
		built.Engine = eng
		fmt.Printf("restored: %s (t=%ds)\n", *restorePath, snap.ClockSec)
	}
	var prof *obs.StageProfiler
	if *profileFlag {
		prof = obs.NewStageProfiler(nil)
		built.Engine.SetProfiler(prof)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		out, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		tracer = obs.NewTracer(out)
		built.Engine.SetTracer(tracer)
	}
	if *checkpointPath != "" {
		if *checkpointSec <= 0 {
			log.Fatal("-checkpoint needs a positive -checkpoint-sec")
		}
		if err := built.Engine.RunUntil(context.Background(), built.Scheduler, *checkpointSec); err != nil {
			log.Fatal(err)
		}
		snap, err := built.Engine.Checkpoint()
		if err != nil {
			log.Fatal(err)
		}
		blob, err := state.Encode(snap)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*checkpointPath, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint: %s (t=%ds, %d bytes, digest %.12s)\n",
			*checkpointPath, snap.ClockSec, len(blob), snap.Digest)
	}
	sum, err := built.Engine.Run(built.Scheduler)
	if err != nil {
		if v, ok := invariant.As(err); ok {
			log.Fatalf("%v\n  snapshot: omega=%.4f gamma=%.4f cost=$%.2f backlog=%.0f vms=%d",
				v, v.Snapshot.Omega, v.Snapshot.Gamma, v.Snapshot.CostUSD,
				v.Snapshot.Backlog, v.Snapshot.VMs)
		}
		log.Fatal(err)
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("event trace: %s (%d events)\n", *tracePath, tracer.Count())
	}

	obj := built.Objective
	met := "MET"
	if !obj.MeetsConstraint(sum.MeanOmega) {
		met = "MISSED"
	}
	fmt.Printf("policy=%s %s\n", built.Scheduler.Name(), sum)
	fmt.Printf("constraint omega>=%.2f (eps %.2f): %s; theta=%.4f (sigma=%.5f)\n",
		obj.OmegaHat, obj.Epsilon, met, obj.Theta(sum.MeanGamma, sum.TotalCostUSD), obj.Sigma)
	if obj.LatencyHatSec > 0 {
		latMet := "MET"
		if !obj.MeetsLatency(sum.MeanLatencySec) {
			latMet = "MISSED"
		}
		fmt.Printf("latency bound %.0fs: %s (mean %.1fs)\n", obj.LatencyHatSec, latMet, sum.MeanLatencySec)
	}
	for i, ts := range sum.Tenants {
		to := obj
		if i < len(built.TenantObjectives) {
			to = built.TenantObjectives[i]
		}
		tenMet := "MET"
		if !to.MeetsConstraint(ts.MeanOmega) {
			tenMet = "MISSED"
		}
		floor := built.Config.Tenants[i].OmegaFloor
		fmt.Printf("tenant %-16s omega=%.3f [min %.3f] floor %.2f: %s; gamma=%.3f spend=$%.2f theta=%+.4f\n",
			ts.Name, ts.MeanOmega, ts.MinOmega, floor, tenMet,
			ts.MeanGamma, ts.SpendUSD, to.Theta(ts.MeanGamma, ts.SpendUSD))
	}
	if built.Engine.Crashes() > 0 {
		fmt.Printf("crashes: %d (%d preemptions), lost messages: %.0f\n",
			built.Engine.Crashes(), built.Engine.Preemptions(), built.Engine.LostMessages())
	}
	if built.Engine.AcquireFailures() > 0 || built.Engine.StaleProbes() > 0 {
		fmt.Printf("control plane: %d failed acquisitions, %d stale probes\n",
			built.Engine.AcquireFailures(), built.Engine.StaleProbes())
	}
	if built.Checker != nil {
		fmt.Printf("invariants: %d laws over %d intervals, %d violations\n",
			len(invariant.DefaultLaws()), sum.Intervals, built.Checker.Count())
	}
	if rs, ok := built.Scheduler.(*resilient.Scheduler); ok {
		fmt.Printf("resilience: %d retries, %d fallbacks, %d breaker trips, %d degrade rounds\n",
			rs.Retries(), rs.Fallbacks(), rs.BreakerTrips(), rs.Degrades())
	}

	if prof != nil {
		fmt.Print(prof.Report())
	}
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := built.Engine.Collector().WriteCSV(out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("per-interval metrics: %s (%d rows)\n", *csvPath, built.Engine.Collector().Len())
	}
	if *auditPath != "" {
		out, err := os.Create(*auditPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := built.Engine.WriteAuditJSONL(out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("action log: %s (%d entries)\n", *auditPath, len(built.Engine.AuditLog()))
	}
}
