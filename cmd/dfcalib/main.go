// Command dfcalib fits the simulator to an observed system and validates
// the result as a digital twin.
//
// The calibration loop (see DESIGN.md, "Calibration loop"):
//
//  1. Capture: run the real (or simulated) system, keeping its per-interval
//     metrics CSV (dfsim -csv), per-VM performance trace CSVs, and/or a
//     directory of /metrics scrapes saved as <sec>.prom files.
//  2. Fit: recover generator parameters (OU mean/reversion/variance, regime
//     shifts, diurnal swing), the input-rate profile, and VM prices from
//     those artifacts, writing them into a scenario file.
//  3. Validate: run the fitted scenario through the engine and compare the
//     predicted summary against the observed run, metric by metric, under
//     per-metric relative tolerances.
//
// Usage:
//
//	dfcalib fit -base scenario.json [-traces dir] [-metrics run.csv | -scrapes dir] [-o fitted.json]
//	dfcalib validate -config fitted.json (-metrics run.csv | -scrapes dir) [-json report.json] [-quiet]
//	dfcalib report report.json
//	dfcalib -selftest
//
// fit reads the base scenario as a template, replaces what the data can
// identify (infra CPU generator from -traces, input rate from -metrics or
// -scrapes), and prints the fitted scenario JSON. validate runs the fitted
// scenario and reports per-metric residuals; its exit status is 0 only when
// every metric is within tolerance. report re-renders a saved validation
// report. -selftest runs the loopback acceptance suite: generate with known
// parameters, fit, and require recovery within tolerance (OU mean 2%,
// stddev/regime 10%), then validate a fitted twin end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strings"

	"dynamicdf/internal/calibration"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/scenario"
	"dynamicdf/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dfcalib: ")

	args := os.Args[1:]
	cmd := ""
	if len(args) > 0 {
		switch args[0] {
		case "fit", "validate", "report":
			cmd, args = args[0], args[1:]
		}
	}

	fs := flag.NewFlagSet("dfcalib", flag.ExitOnError)
	base := fs.String("base", "", "template scenario JSON the fit starts from (fit)")
	config := fs.String("config", "", "fitted scenario JSON to validate (validate)")
	traces := fs.String("traces", "", "directory of per-VM performance trace CSVs")
	metricsCSV := fs.String("metrics", "", "observed per-interval metrics CSV (dfsim -csv output)")
	scrapes := fs.String("scrapes", "", "directory of /metrics snapshots saved as <sec>.prom")
	out := fs.String("o", "", "write the fitted scenario here (fit; default stdout)")
	jsonOut := fs.String("json", "", "write the validation report JSON here (validate)")
	quiet := fs.Bool("quiet", false, "suppress the report table (validate)")
	selftest := fs.Bool("selftest", false, "run the calibration loopback acceptance suite and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dfcalib [fit|validate|report] [flags] | dfcalib -selftest")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	if *selftest {
		runSelftest()
		return
	}
	switch cmd {
	case "fit":
		runFit(*base, *traces, *metricsCSV, *scrapes, *out)
	case "validate":
		runValidate(*config, *metricsCSV, *scrapes, *jsonOut, *quiet)
	case "report":
		runReport(fs.Args())
	default:
		fs.Usage()
		os.Exit(2)
	}
}

func loadScenario(path string) *scenario.Scenario {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sc, err := scenario.Parse(f)
	if err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	return sc
}

// loadObserved reads the observed per-interval points from a metrics CSV or
// a scrape directory (exactly one must be given).
func loadObserved(metricsCSV, scrapes string) []metrics.Point {
	switch {
	case metricsCSV != "" && scrapes != "":
		log.Fatal("give either -metrics or -scrapes, not both")
	case metricsCSV != "":
		pts, err := calibration.LoadPointsCSV(metricsCSV)
		if err != nil {
			log.Fatal(err)
		}
		return pts
	case scrapes != "":
		scr, err := calibration.LoadScrapeDir(scrapes)
		if err != nil {
			log.Fatal(err)
		}
		pts, err := calibration.PointsFromScrapes(scr)
		if err != nil {
			log.Fatal(err)
		}
		return pts
	}
	log.Fatal("need observed data: -metrics run.csv or -scrapes dir")
	return nil
}

func runFit(base, traces, metricsCSV, scrapes, out string) {
	if base == "" {
		log.Fatal("fit needs -base scenario.json")
	}
	if traces == "" && metricsCSV == "" && scrapes == "" {
		log.Fatal("fit needs data: -traces dir, -metrics run.csv, and/or -scrapes dir")
	}
	sc := loadScenario(base)

	if traces != "" {
		pool, err := calibration.LoadTraceDir(traces)
		if err != nil {
			log.Fatal(err)
		}
		template := trace.GenConfig{}
		if sc.Infra.CPU != nil {
			template = sc.Infra.CPU.GenConfig()
		}
		fit, err := calibration.FitGen(pool, template)
		if err != nil {
			log.Fatal(err)
		}
		sc.Infra.Kind = "replayed"
		sc.Infra.Dir = ""
		sc.Infra.CPU = scenario.GenSpecFrom(fit.Config)
		fmt.Fprintf(os.Stderr,
			"fitted cpu generator from %d series (%d samples): mean=%.4f theta=%.5f sigma=%.5f regimeProb=%.5f regimeAmp=%.4f diurnalAmp=%.4f\n",
			fit.Series, fit.Samples, fit.Config.Mean, fit.Config.Theta, fit.Config.Sigma,
			fit.Config.RegimeProb, fit.Config.RegimeAmp, fit.Config.DiurnalAmp)
	}

	if metricsCSV != "" || scrapes != "" {
		pts := loadObserved(metricsCSV, scrapes)
		spec, err := calibration.FitRate(pts)
		if err != nil {
			log.Fatal(err)
		}
		sc.Rate = spec
		fmt.Fprintf(os.Stderr, "fitted input rate from %d points: kind=%s mean=%.3f amplitude=%.3f periodSec=%d\n",
			len(pts), spec.Kind, spec.Mean, spec.Amplitude, spec.PeriodSec)
	}

	if _, err := sc.Build(); err != nil {
		log.Fatalf("fitted scenario does not build: %v", err)
	}
	blob, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fitted scenario: %s\n", out)
}

func runValidate(config, metricsCSV, scrapes, jsonOut string, quiet bool) {
	if config == "" {
		log.Fatal("validate needs -config fitted.json")
	}
	sc := loadScenario(config)
	observed := loadObserved(metricsCSV, scrapes)
	rep, err := calibration.Validate(sc, observed, calibration.DefaultTolerances())
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut != "" {
		blob, err := rep.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, blob, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if !quiet {
		fmt.Print(rep.Table())
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

func runReport(args []string) {
	if len(args) != 1 {
		log.Fatal("report needs exactly one report JSON file")
	}
	blob, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	var rep calibration.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		log.Fatalf("%s: %v", args[0], err)
	}
	fmt.Print(rep.Table())
	if !rep.Pass {
		os.Exit(1)
	}
}

// -------------------------------------------------------------------------
// Selftest: the loopback acceptance suite.

const selftestScenario = `{
  "graph": {
    "pes": [
      {"name": "ingest", "alternates": [{"name": "only", "value": 1, "cost": 0.25, "selectivity": 1}]},
      {"name": "analyze", "alternates": [
        {"name": "deep", "value": 1.0, "cost": 1.4, "selectivity": 1},
        {"name": "fast", "value": 0.8, "cost": 0.9, "selectivity": 1}
      ]},
      {"name": "sink", "alternates": [{"name": "only", "value": 1, "cost": 0.35, "selectivity": 1}]}
    ],
    "edges": [["ingest", "analyze"], ["analyze", "sink"]]
  },
  "rate": {"kind": "wave", "mean": 10, "amplitude": 4, "periodSec": 1800},
  "infra": {"kind": "replayed", "seed": 42},
  "horizonHours": 4
}`

func runSelftest() {
	failures := 0
	check := func(name string, ok bool, detail string) {
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
			failures++
		}
		fmt.Printf("selftest %-28s %s  %s\n", name, verdict, detail)
	}
	relDiff := func(got, want float64) float64 {
		if want == 0 {
			return math.Abs(got)
		}
		return math.Abs(got-want) / math.Abs(want)
	}

	// 1. Generator loopback: generate with known parameters, fit, and
	// require recovery within the acceptance tolerances.
	truth := trace.GenConfig{
		Mean: 0.8, Theta: 0.004, Sigma: 0.0045,
		RegimeProb: 0.003, RegimeAmp: 0.25, DiurnalAmp: 0.04,
		Min: 0, Max: 2, PeriodSec: 60,
	}
	pool := make([]*trace.Series, 16)
	for i := range pool {
		s, err := truth.Generate(rand.New(rand.NewSource(int64(i)+1)), 30000)
		if err != nil {
			log.Fatal(err)
		}
		pool[i] = s
	}
	fit, err := calibration.FitGen(pool, truth)
	if err != nil {
		log.Fatal(err)
	}
	c := fit.Config
	check("gen-fit mean<=2%", relDiff(c.Mean, truth.Mean) <= 0.02,
		fmt.Sprintf("mean %.4f vs %.4f (%.2f%%)", c.Mean, truth.Mean, 100*relDiff(c.Mean, truth.Mean)))
	check("gen-fit sigma<=10%", relDiff(c.Sigma, truth.Sigma) <= 0.10,
		fmt.Sprintf("sigma %.5f vs %.5f (%.2f%%)", c.Sigma, truth.Sigma, 100*relDiff(c.Sigma, truth.Sigma)))
	check("gen-fit regimeProb<=10%", relDiff(c.RegimeProb, truth.RegimeProb) <= 0.10,
		fmt.Sprintf("p %.5f vs %.5f (%.2f%%)", c.RegimeProb, truth.RegimeProb, 100*relDiff(c.RegimeProb, truth.RegimeProb)))
	check("gen-fit regimeAmp<=10%", relDiff(c.RegimeAmp, truth.RegimeAmp) <= 0.10,
		fmt.Sprintf("amp %.4f vs %.4f (%.2f%%)", c.RegimeAmp, truth.RegimeAmp, 100*relDiff(c.RegimeAmp, truth.RegimeAmp)))

	// 2. Prometheus importer loopback: a rendered registry must re-parse
	// and re-render to identical bytes.
	check("prometheus round-trip", prometheusRoundTrips(), "render -> parse -> render byte-equal")

	// 3. Rate-profile loopback.
	ratePts := make([]metrics.Point, 240)
	for i := range ratePts {
		sec := int64(i) * 60
		ratePts[i] = metrics.Point{Sec: sec, InputRate: 10 + 4*math.Sin(2*math.Pi*float64(sec)/1800)}
	}
	rspec, err := calibration.FitRate(ratePts)
	if err != nil {
		log.Fatal(err)
	}
	check("rate fit", rspec.Kind == "wave" && rspec.PeriodSec == 1800 &&
		relDiff(rspec.Mean, 10) <= 0.02 && relDiff(rspec.Amplitude, 4) <= 0.05,
		fmt.Sprintf("%s mean=%.3f amp=%.3f period=%d", rspec.Kind, rspec.Mean, rspec.Amplitude, rspec.PeriodSec))

	// 4. Cost-model loopback: synthetic bills at known prices.
	priceTruth := map[string]float64{"m1.small": 0.06, "m1.large": 0.24}
	costObs := []calibration.CostObservation{
		{HoursByClass: map[string]float64{"m1.small": 5, "m1.large": 2}},
		{HoursByClass: map[string]float64{"m1.small": 1, "m1.large": 4}},
	}
	for i := range costObs {
		for cl, h := range costObs[i].HoursByClass {
			costObs[i].TotalUSD += h * priceTruth[cl]
		}
	}
	prices, err := calibration.FitCost(costObs)
	if err != nil {
		log.Fatal(err)
	}
	costOK := true
	for cl, want := range priceTruth {
		if relDiff(prices[cl], want) > 1e-9 {
			costOK = false
		}
	}
	check("cost fit", costOK, fmt.Sprintf("small=$%.2f large=$%.2f", prices["m1.small"], prices["m1.large"]))

	// 5. Digital-twin loopback: run a scenario, fit the rate profile and a
	// CPU generator from its artifacts, and validate the fitted scenario
	// against the observed run — every metric must land within tolerance.
	obsScenario, err := scenario.Parse(strings.NewReader(selftestScenario))
	if err != nil {
		log.Fatal(err)
	}
	built, err := obsScenario.Build()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := built.Engine.Run(built.Scheduler); err != nil {
		log.Fatal(err)
	}
	observed := built.Engine.Collector().Points()

	fitted, err := scenario.Parse(strings.NewReader(selftestScenario))
	if err != nil {
		log.Fatal(err)
	}
	fittedRate, err := calibration.FitRate(observed)
	if err != nil {
		log.Fatal(err)
	}
	fitted.Rate = fittedRate
	cpuTruth := trace.DefaultCPUConfig()
	cpuPool := make([]*trace.Series, 8)
	for i := range cpuPool {
		s, err := cpuTruth.Generate(rand.New(rand.NewSource(int64(i)+100)), 20000)
		if err != nil {
			log.Fatal(err)
		}
		cpuPool[i] = s
	}
	cpuFit, err := calibration.FitGen(cpuPool, cpuTruth)
	if err != nil {
		log.Fatal(err)
	}
	fitted.Infra.CPU = scenario.GenSpecFrom(cpuFit.Config)
	rep, err := calibration.Validate(fitted, observed, calibration.DefaultTolerances())
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for _, m := range rep.Metrics {
		if m.RelErr > worst {
			worst = m.RelErr
		}
	}
	check("twin validate", rep.Pass, fmt.Sprintf("%d metrics, worst relerr %.2f%%", len(rep.Metrics), worst*100))
	if !rep.Pass {
		fmt.Print(rep.Table())
	}

	// 6. Report determinism: the same validation renders identical bytes.
	rep2, err := calibration.Validate(fitted, observed, calibration.DefaultTolerances())
	if err != nil {
		log.Fatal(err)
	}
	j1, err1 := rep.JSON()
	j2, err2 := rep2.JSON()
	if err1 != nil || err2 != nil {
		log.Fatal(err1, err2)
	}
	check("report determinism", string(j1) == string(j2), fmt.Sprintf("%d bytes", len(j1)))

	if failures > 0 {
		log.Fatalf("%d selftest check(s) failed", failures)
	}
	fmt.Println("selftest PASS")
}

func prometheusRoundTrips() bool {
	reg := obs.NewRegistry()
	gauges := obs.NewRunGauges(reg)
	gauges.Omega.Set(0.9337215947412415)
	gauges.CostUSD.Set(12.48)
	var once strings.Builder
	if err := reg.WriteText(&once); err != nil {
		return false
	}
	exp, err := calibration.ParsePrometheus(strings.NewReader(once.String()))
	if err != nil {
		return false
	}
	var twice strings.Builder
	if err := exp.WriteText(&twice); err != nil {
		return false
	}
	if once.String() != twice.String() {
		return false
	}
	v, ok := exp.Gauge("sim_omega")
	return ok && v == 0.9337215947412415
}
