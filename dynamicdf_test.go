package dynamicdf_test

import (
	"fmt"
	"testing"

	"dynamicdf"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g := dynamicdf.Fig1Graph()
	obj, err := dynamicdf.PaperSigma(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := dynamicdf.NewHeuristic(dynamicdf.Options{
		Strategy:  dynamicdf.Global,
		Dynamic:   true,
		Adaptive:  true,
		Objective: obj,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := dynamicdf.NewConstant(5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph:      g,
		Menu:       dynamicdf.MustMenu(dynamicdf.AWS2013Classes()),
		Inputs:     map[int]dynamicdf.Profile{0: prof},
		HorizonSec: 2 * 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.MeetsConstraint(sum.MeanOmega) {
		t.Fatalf("omega %.3f misses constraint", sum.MeanOmega)
	}
	if sum.TotalCostUSD <= 0 {
		t.Fatal("no cost accrued")
	}
}

func TestPublicAPICustomGraph(t *testing.T) {
	g, err := dynamicdf.NewBuilder().
		AddPE("ingest", dynamicdf.Alt("only", 1, 0.2, 1)).
		AddPE("detect",
			dynamicdf.Alt("cnn", 1.0, 2.0, 0.5),
			dynamicdf.Alt("haar", 0.7, 0.6, 0.5)).
		AddPE("alert", dynamicdf.Alt("only", 1, 0.1, 1)).
		Chain("ingest", "detect", "alert").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dynamicdf.PaperSigma(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := dynamicdf.NewBruteForce(obj, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := dynamicdf.NewWave(10, 3, 1200)
	if err != nil {
		t.Fatal(err)
	}
	perf, err := dynamicdf.NewReplayedCloud(dynamicdf.ReplayedConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := dynamicdf.NewEngine(dynamicdf.Config{
		Graph:      g,
		Menu:       dynamicdf.MustMenu(dynamicdf.AWS2013Classes()),
		Perf:       perf,
		Inputs:     map[int]dynamicdf.Profile{0: w},
		HorizonSec: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(bf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Intervals != 60 {
		t.Fatalf("intervals = %d", sum.Intervals)
	}
}

func TestExperimentFacade(t *testing.T) {
	cfg := dynamicdf.QuickExperiments()
	cfg.HorizonSec = 3600
	r, err := cfg.Run(dynamicdf.GlobalAdaptive, 10, dynamicdf.BothVariability)
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy != "global" {
		t.Fatalf("policy = %q", r.Policy)
	}
	if !r.MeetsOmega {
		t.Fatalf("omega %.3f", r.Summary.MeanOmega)
	}
}

// ExampleNewBuilder demonstrates constructing and running a small dynamic
// dataflow through the public API.
func ExampleNewBuilder() {
	g := dynamicdf.NewBuilder().
		AddPE("src", dynamicdf.Alt("only", 1, 0.1, 1)).
		AddPE("work",
			dynamicdf.Alt("precise", 1.0, 1.0, 1),
			dynamicdf.Alt("fast", 0.8, 0.4, 1)).
		Chain("src", "work").
		MustBuild()
	fmt.Println(g.N(), "PEs,", len(g.PEs[1].Alternates), "alternates on work")
	// Output: 2 PEs, 2 alternates on work
}
