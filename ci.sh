#!/bin/sh
# Repository gate: vet, build, the full test suite under the race detector
# plus a shuffled re-run, a dfserve end-to-end smoke (start the service,
# submit a 2-job sweep over HTTP, assert the aggregated output incl.
# /metrics, shut down), a dftrace smoke over the golden fixture, and the
# zero-alloc guarantee for the disabled-tracer hot path.
# Run from the repo root.
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -race -count=1 ./internal/obs
go test -shuffle=on -count=1 ./...
go run ./cmd/dfserve -selftest

# dftrace smoke: the golden capture must replay, render, and self-diff clean.
go run ./cmd/dftrace cmd/dftrace/testdata/golden.ndjson > /dev/null
go run ./cmd/dftrace diff cmd/dftrace/testdata/golden.ndjson cmd/dftrace/testdata/golden.ndjson > /dev/null

# The trace hook must cost 0 allocs/op while tracing is disabled.
bench=$(go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStep/hook/disabled' -benchtime 100x -benchmem)
echo "$bench"
echo "$bench" | grep -q ' 0 allocs/op' || {
    echo "disabled tracer hook allocates on the engine hot path" >&2
    exit 1
}
