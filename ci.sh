#!/bin/sh
# Repository gate: vet, build, the full test suite under the race detector
# plus a shuffled re-run, a dfserve end-to-end smoke (start the service,
# submit a 2-job sweep over HTTP, assert the aggregated output incl.
# /metrics, shut down), a dftrace smoke over the golden fixture, and the
# invariant-conservation fuzz pass, and the zero-alloc guarantees for the
# disabled-tracer and disabled-checker hot paths.
# Run from the repo root.
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -race -count=1 ./internal/obs
go test -shuffle=on -count=1 ./...
go run ./cmd/dfserve -selftest

# dftrace smoke: the golden capture must replay, render, and self-diff clean.
go run ./cmd/dftrace cmd/dftrace/testdata/golden.ndjson > /dev/null
go run ./cmd/dftrace diff cmd/dftrace/testdata/golden.ndjson cmd/dftrace/testdata/golden.ndjson > /dev/null

# Conservation fuzzing: arbitrary scenario JSON through parse/build/run
# with the strict invariant checker; any violated law is a crasher.
go test ./internal/invariant -run '^$' -fuzz 'FuzzCheckerConservation' -fuzztime 10s

# The trace hook must cost 0 allocs/op while tracing is disabled.
bench=$(go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStep/hook/disabled' -benchtime 100x -benchmem)
echo "$bench"
echo "$bench" | grep -q ' 0 allocs/op' || {
    echo "disabled tracer hook allocates on the engine hot path" >&2
    exit 1
}

# Same guarantee for the invariant-checker hook while no checker is attached.
bench=$(go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStepChecker/hook/disabled' -benchtime 100x -benchmem)
echo "$bench"
echo "$bench" | grep -q ' 0 allocs/op' || {
    echo "disabled invariant-checker hook allocates on the engine hot path" >&2
    exit 1
}
