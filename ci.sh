#!/bin/sh
# Repository gate: vet, build, and the full test suite under the race
# detector. Run from the repo root.
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
