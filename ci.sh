#!/bin/sh
# Repository gate: vet, build, the full test suite under the race detector
# plus a shuffled re-run, a race-enabled fabric chaos smoke (coordinator +
# three crash-prone workers, seeded faults, aggregate CSV byte-equal to the
# single-pool baseline), a dfserve end-to-end smoke (start the service,
# submit a 4-job warm-start sweep over HTTP, assert the aggregated output
# incl. /metrics and the prefix fork count, then repeat it through a fabric
# coordinator with one worker and assert CSV byte-equality, shut down), a
# dftrace smoke over the golden fixture, a checkpoint/restore
# byte-determinism smoke, a single-tenant golden diff against the committed
# pre-refactor fixture (the multi-tenant refactor must stay byte-invisible
# to single-tenant runs), a multi-tenant example smoke, the dfcalib
# calibration loopback (parameter recovery + digital-twin validation), the
# invariant-conservation, snapshot-decoder and Prometheus-importer fuzz
# passes, the zero-alloc guarantees for the disabled-tracer,
# disabled-checker, and detached stage-profiler hot paths plus the
# steady-state large-DAG and 8-tenant steps themselves, an
# attached-profiler overhead-ratio guard, and an engine-step benchmark
# snapshot written to BENCH_step.json. The flow-stage differential battery
# (TestFlowParallelByteIdentical) and the parallel-flow race stress test
# ride the `go test -race ./...` pass above. Run from the repo root.
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -race -count=1 ./internal/obs
go test -shuffle=on -count=1 ./...
go test -race -count=1 -run 'TestFabricChaos' ./internal/sweep/fabric
go run ./cmd/dfserve -selftest

# Calibration loopback: generate with known parameters, fit, require
# recovery within tolerance (OU mean 2%, stddev/regime 10%), and validate a
# fitted digital twin end to end.
go run ./cmd/dfcalib -selftest

# dftrace smoke: the golden capture must replay, render, and self-diff clean.
go run ./cmd/dftrace cmd/dftrace/testdata/golden.ndjson > /dev/null
go run ./cmd/dftrace diff cmd/dftrace/testdata/golden.ndjson cmd/dftrace/testdata/golden.ndjson > /dev/null

# Checkpoint determinism smoke: a run restored from a mid-run state/v1
# snapshot must continue byte-identically to the uninterrupted run — same
# metrics CSV, same audit log, and a trace that is exactly the byte tail of
# the cold run's. The checkpointing run itself must not be perturbed: its
# audit (with -audit on, so the snapshot carries the prefix entries) equals
# the cold run's too.
ckpt=$(mktemp -d)
go run ./cmd/dfsim -example > "$ckpt/sc.json"
go run ./cmd/dfsim -config "$ckpt/sc.json" \
    -csv "$ckpt/cold.csv" -audit "$ckpt/cold.jsonl" -trace "$ckpt/cold.ndjson" > /dev/null
go run ./cmd/dfsim -config "$ckpt/sc.json" \
    -audit "$ckpt/chk.jsonl" -checkpoint "$ckpt/snap.json" -checkpoint-sec 3600 > /dev/null
go run ./cmd/dfsim -config "$ckpt/sc.json" -restore "$ckpt/snap.json" \
    -csv "$ckpt/warm.csv" -audit "$ckpt/warm.jsonl" -trace "$ckpt/warm.ndjson" > /dev/null
cmp "$ckpt/cold.csv" "$ckpt/warm.csv" || { echo "restored metrics CSV diverged" >&2; exit 1; }
cmp "$ckpt/chk.jsonl" "$ckpt/cold.jsonl" || { echo "checkpointing perturbed the audit log" >&2; exit 1; }
cmp "$ckpt/cold.jsonl" "$ckpt/warm.jsonl" || { echo "restored audit log diverged" >&2; exit 1; }
tail -n "$(wc -l < "$ckpt/warm.ndjson")" "$ckpt/cold.ndjson" | cmp - "$ckpt/warm.ndjson" || {
    echo "restored trace is not a byte tail of the cold trace" >&2
    exit 1
}
rm -rf "$ckpt"

# Single-tenant golden diff: a restore from the committed pre-refactor
# state/v1 snapshot must reproduce the committed CSV, audit log, and trace
# byte-for-byte — the tenant dimension added to the engine must be
# invisible to single-tenant runs.
gold=testdata/prerefactor
gtmp=$(mktemp -d)
go run ./cmd/dfsim -config "$gold/scenario.json" -restore "$gold/snap.json" \
    -csv "$gtmp/warm.csv" -audit "$gtmp/warm.jsonl" -trace "$gtmp/warm.ndjson" > /dev/null
for f in warm.csv warm.jsonl warm.ndjson; do
    cmp "$gold/$f" "$gtmp/$f" || { echo "single-tenant output diverged from pre-refactor golden $f" >&2; exit 1; }
done
rm -rf "$gtmp"

# Multi-tenant smoke: three tenants (one session-driven) on one fleet with
# fair-share arbitration must build, run, and keep every Ω floor.
mt=$(go run ./examples/multitenant)
echo "$mt"
if echo "$mt" | grep -q 'MISSED'; then
    echo "multitenant example missed an omega floor" >&2
    exit 1
fi
echo "$mt" | grep -q 'fair-share rulings' || { echo "multitenant example reported no arbitration line" >&2; exit 1; }

# Conservation fuzzing: arbitrary scenario JSON through parse/build/run
# with the strict invariant checker; any violated law is a crasher.
go test ./internal/invariant -run '^$' -fuzz 'FuzzCheckerConservation' -fuzztime 10s

# Snapshot fuzzing: arbitrary bytes through the state/v1 decoder must be
# rejected with an error — never a panic — and anything accepted must
# re-encode canonically.
go test ./internal/state -run '^$' -fuzz 'FuzzDecode' -fuzztime 10s

# Prometheus-importer fuzzing: arbitrary bytes must never panic the parser,
# and anything accepted must be a render fixed point.
go test ./internal/calibration -run '^$' -fuzz 'FuzzParsePrometheus' -fuzztime 10s

# The trace hook must cost 0 allocs/op while tracing is disabled.
bench=$(go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStep/hook/disabled' -benchtime 100x -benchmem)
echo "$bench"
echo "$bench" | grep -q ' 0 allocs/op' || {
    echo "disabled tracer hook allocates on the engine hot path" >&2
    exit 1
}

# Same guarantee for the invariant-checker hook while no checker is attached.
bench=$(go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStepChecker/hook/disabled' -benchtime 100x -benchmem)
echo "$bench"
echo "$bench" | grep -q ' 0 allocs/op' || {
    echo "disabled invariant-checker hook allocates on the engine hot path" >&2
    exit 1
}

# Same guarantee for the stage-profiler hook while no profiler is attached.
bench=$(go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStepProfiler/hook/disabled' -benchtime 100x -benchmem)
echo "$bench"
echo "$bench" | grep -q ' 0 allocs/op' || {
    echo "detached stage-profiler hook allocates on the engine hot path" >&2
    exit 1
}

# The arena-backed engine must step a 1000-PE DAG with zero steady-state
# heap allocations — the core guarantee of the hot-path flattening.
bench=$(go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStepLargeDAG/steady' -benchtime 100x -benchmem)
echo "$bench"
echo "$bench" | grep -q ' 0 allocs/op' || {
    echo "steady-state engine step allocates on the large-DAG hot path" >&2
    exit 1
}

# The same 0-alloc guarantee must hold with the tenant dimension hot:
# 8 tenants x 125 PEs with per-tenant Ω/Γ/spend folds every interval.
bench=$(go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStepMultiTenant' -benchtime 100x -benchmem)
echo "$bench"
echo "$bench" | grep -q ' 0 allocs/op' || {
    echo "multi-tenant engine step allocates on the hot path" >&2
    exit 1
}

# An attached stage profiler must stay cheap: with allocation sampling it
# reads the heap counter on ~1/33rd of calls, so a profiled run may cost at
# most 8x an unprofiled one (observed ~4x; the pre-sampling regression was
# well past this). Both sides come from one invocation so machine noise
# largely cancels.
bench=$(go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStepProfiler/run' -benchtime 200x)
echo "$bench"
echo "$bench" | awk '
    /profiler=off/ { off = $3 }
    /profiler=on/  { on = $3 }
    END {
        if (off == "" || on == "") { print "profiler ratio guard: benchmarks missing" > "/dev/stderr"; exit 1 }
        ratio = on / off
        printf "profiler overhead ratio: %.2fx\n", ratio
        if (ratio > 8.0) {
            printf "attached stage profiler costs %.2fx the unprofiled step (limit 8.0x)\n", ratio > "/dev/stderr"
            exit 1
        }
    }'

# Benchmark snapshot: run the engine-step benchmark suite with -benchmem and
# record ns/op, B/op, allocs/op per benchmark as BENCH_step.json, so perf
# regressions show up in review diffs. The numbers are machine-dependent;
# the file is a tracked observation, not a gate.
go test ./internal/sim -run '^$' -bench 'BenchmarkEngineStep' -benchtime 100x -benchmem |
    awk 'BEGIN { print "[" }
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            if (n++) printf ",\n"
            printf "  {\"name\": \"%s\", \"nsPerOp\": %s, \"bytesPerOp\": %s, \"allocsPerOp\": %s}", name, $3, $5, $7
        }
        END { print "\n]" }' > BENCH_step.json
cat BENCH_step.json
