#!/bin/sh
# Repository gate: vet, build, the full test suite under the race detector
# plus a shuffled re-run, and a dfserve end-to-end smoke (start the service,
# submit a 2-job sweep over HTTP, assert the aggregated output, shut down).
# Run from the repo root.
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -shuffle=on -count=1 ./...
go run ./cmd/dfserve -selftest
