package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dynamicdf/internal/trace"
)

func TestGenSpecConversionRoundTrip(t *testing.T) {
	cfg := trace.DefaultCPUConfig()
	spec := GenSpecFrom(cfg)
	if got := spec.GenConfig(); !reflect.DeepEqual(got, cfg) {
		t.Fatalf("GenSpec round trip: %+v != %+v", got, cfg)
	}
}

func TestInfraGenSpecOverridesProvider(t *testing.T) {
	sc, err := Parse(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	sc.Infra.Kind = "replayed"
	// A degenerate constant generator: every coefficient is exactly 0.5.
	sc.Infra.CPU = &GenSpec{Mean: 0.5, Min: 0.5, Max: 0.5, PeriodSec: 60}
	perf, err := sc.perf()
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 8; id++ {
		if got := perf.CPUCoeff(id, 3600); got != 0.5 {
			t.Fatalf("overridden CPUCoeff = %v, want 0.5", got)
		}
	}
	// Latency left nil still uses package defaults (nonzero, plausible).
	if l := perf.LatencySec(1, 2, 0); l <= 0 || l > 0.1 {
		t.Fatalf("default latency = %v", l)
	}

	// An invalid override surfaces the generator's validation error.
	sc.Infra.CPU = &GenSpec{Mean: 2, Min: 0, Max: 1, PeriodSec: 60}
	if _, err := sc.perf(); err == nil || !strings.Contains(err.Error(), "infra cpu") {
		t.Fatalf("invalid cpu override error = %v", err)
	}
	sc.Infra.CPU = nil
	sc.Infra.Bandwidth = &GenSpec{Mean: 50, Min: 60, Max: 40, PeriodSec: 60}
	if _, err := sc.perf(); err == nil || !strings.Contains(err.Error(), "infra bandwidth") {
		t.Fatalf("invalid bandwidth override error = %v", err)
	}
}

// Scenarios that do not use the new infra override fields must keep their
// canonical JSON byte-identical to before the fields existed — the sweep
// journal cache keys hash that JSON.
func TestInfraGenSpecCanonicalStability(t *testing.T) {
	sc, err := Parse(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	can, err := sc.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, leaked := range []string{"cpu", "latency", "bandwidth", "regimeProb"} {
		if bytes.Contains(can, []byte(`"`+leaked+`"`)) {
			t.Fatalf("canonical JSON of a plain scenario mentions %q:\n%s", leaked, can)
		}
	}

	// With an override set, the canonical form re-parses losslessly and is a
	// fixed point.
	sc.Infra.Kind = "replayed"
	sc.Infra.CPU = GenSpecFrom(trace.DefaultCPUConfig())
	can, err = sc.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := ParseBytes(can)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	if !reflect.DeepEqual(sc2.Infra, sc.Infra) {
		t.Fatalf("infra after round-trip = %+v, want %+v", sc2.Infra, sc.Infra)
	}
	can2, err := sc2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(can, can2) {
		t.Fatal("canonical JSON is not a fixed point")
	}
}
