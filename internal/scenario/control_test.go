package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// controlBlock is the full control spec exercised by the round-trip tests.
const controlBlock = `{
  "meanBootSec": 120,
  "maxBootSec": 600,
  "acquireFailProb": 0.2,
  "perClassFailProb": {"m1.small": 0.5},
  "burstEverySec": 3600,
  "burstLenSec": 300,
  "burstFailProb": 0.9,
  "faultFreeSec": 60,
  "monitorStaleProb": 0.3,
  "monitorNoiseFrac": 0.2,
  "seed": 99
}`

// withControl splices a control block into the minimal scenario.
func withControl(t *testing.T, control string) string {
	t.Helper()
	return strings.TrimSuffix(strings.TrimSpace(minimal), "}") +
		`, "control": ` + control + "}"
}

func TestControlSpecRoundTrip(t *testing.T) {
	sc, err := Parse(strings.NewReader(withControl(t, controlBlock)))
	if err != nil {
		t.Fatal(err)
	}
	want := ControlSpec{
		MeanBootSec:      120,
		MaxBootSec:       600,
		AcquireFailProb:  0.2,
		PerClassFailProb: map[string]float64{"m1.small": 0.5},
		BurstEverySec:    3600,
		BurstLenSec:      300,
		BurstFailProb:    0.9,
		FaultFreeSec:     60,
		MonitorStaleProb: 0.3,
		MonitorNoiseFrac: 0.2,
		Seed:             99,
	}
	if !reflect.DeepEqual(sc.Control, want) {
		t.Fatalf("parsed control = %+v, want %+v", sc.Control, want)
	}

	// The canonical form re-parses to the same spec (the sweep cache key
	// depends on this being lossless).
	can, err := sc.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := ParseBytes(can)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	if !reflect.DeepEqual(sc2.Control, want) {
		t.Fatalf("control after canonical round-trip = %+v", sc2.Control)
	}
	can2, err := sc2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(can, can2) {
		t.Fatal("canonical JSON is not a fixed point")
	}

	// The sim-side fault model carries every knob across.
	cf := sc.Control.faults(sc.Seed)
	if cf == nil {
		t.Fatal("faults() = nil for a fully populated block")
	}
	if cf.Seed != 99 {
		t.Fatalf("explicit seed not kept: %d", cf.Seed)
	}
	if cf.Provisioning == nil || cf.Provisioning.MeanBootSec != 120 || cf.Provisioning.MaxBootSec != 600 {
		t.Fatalf("provisioning = %+v", cf.Provisioning)
	}
	if cf.Acquisition == nil || cf.Acquisition.FailProb != 0.2 || cf.Acquisition.AfterSec != 60 ||
		cf.Acquisition.BurstEverySec != 3600 || cf.Acquisition.PerClass["m1.small"] != 0.5 {
		t.Fatalf("acquisition = %+v", cf.Acquisition)
	}
	if cf.Monitoring == nil || cf.Monitoring.StaleProb != 0.3 || cf.Monitoring.NoiseFrac != 0.2 {
		t.Fatalf("monitoring = %+v", cf.Monitoring)
	}
}

func TestControlSpecSeedFallsBackToScenarioSeed(t *testing.T) {
	sc, err := Parse(strings.NewReader(withControl(t, `{"meanBootSec": 60}`)))
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 42
	cf := sc.Control.faults(sc.Seed)
	if cf == nil || cf.Seed != 42 {
		t.Fatalf("faults = %+v, want scenario-seed fallback 42", cf)
	}
	// Only the provisioning class is armed.
	if cf.Provisioning == nil || cf.Acquisition != nil || cf.Monitoring != nil {
		t.Fatalf("unexpected fault classes: %+v", cf)
	}
}

func TestControlSpecZeroMeansIdeal(t *testing.T) {
	sc, err := Parse(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if cf := sc.Control.faults(sc.Seed); cf != nil {
		t.Fatalf("zero control block armed faults: %+v", cf)
	}
	// An explicit empty object is the same as omitting the block.
	sc, err = Parse(strings.NewReader(withControl(t, `{}`)))
	if err != nil {
		t.Fatal(err)
	}
	if cf := sc.Control.faults(sc.Seed); cf != nil {
		t.Fatalf("empty control block armed faults: %+v", cf)
	}
}

func TestControlSpecMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"meanBootSeconds": 120}`,
		"wrong type":    `{"meanBootSec": "soon"}`,
		"truncated":     `{"meanBootSec": 120`,
	}
	for name, control := range cases {
		if _, err := Parse(strings.NewReader(withControl(t, control))); err == nil {
			t.Errorf("%s accepted: %s", name, control)
		}
	}
}

// TestControlSpecFaultsReachEngine builds and runs a faulty scenario and
// checks the engine actually observed control-plane misbehaviour.
func TestControlSpecFaultsReachEngine(t *testing.T) {
	sc, err := Parse(strings.NewReader(withControl(t,
		`{"acquireFailProb": 0.5, "monitorStaleProb": 0.5, "faultFreeSec": 300}`)))
	if err != nil {
		t.Fatal(err)
	}
	sc.Rate = RateSpec{Kind: "wave", Mean: 8, Amplitude: 6, PeriodSec: 900}
	built, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.Engine.Run(built.Scheduler); err != nil {
		t.Fatal(err)
	}
	if built.Engine.StaleProbes() == 0 {
		t.Fatal("no stale probes recorded; control block not wired into engine")
	}
}
