package scenario

import (
	"strings"
	"testing"
)

const twoTenant = `{
  "tenants": [
    {
      "name": "analytics",
      "graph": {
        "pes": [
          {"name": "src", "alternates": [{"name": "x", "value": 1, "cost": 0.2, "selectivity": 1}]},
          {"name": "agg", "alternates": [
            {"name": "full", "value": 1, "cost": 1.0, "selectivity": 1},
            {"name": "lite", "value": 0.8, "cost": 0.5, "selectivity": 1}
          ]}
        ],
        "edges": [["src", "agg"]]
      },
      "rate": {"kind": "constant", "mean": 5},
      "omegaFloor": 0.8,
      "priority": 1
    },
    {
      "name": "alerts",
      "graph": {
        "pes": [
          {"name": "src", "alternates": [{"name": "x", "value": 1, "cost": 0.2, "selectivity": 1}]},
          {"name": "match", "alternates": [{"name": "x", "value": 1, "cost": 0.6, "selectivity": 1}]}
        ],
        "edges": [["src", "match"]]
      },
      "rate": {"kind": "constant", "mean": 3}
    }
  ],
  "horizonHours": 1
}`

func TestBuildTwoTenants(t *testing.T) {
	sc, err := Parse(strings.NewReader(twoTenant))
	if err != nil {
		t.Fatal(err)
	}
	built, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.Graph.N() != 4 {
		t.Fatalf("composite N = %d", built.Graph.N())
	}
	if built.Graph.PEs[0].Name != "analytics/src" || built.Graph.PEs[2].Name != "alerts/src" {
		t.Fatalf("prefixed names = %v, %v", built.Graph.PEs[0].Name, built.Graph.PEs[2].Name)
	}
	if built.Scheduler.Name() != "multi-tenant[2]" {
		t.Fatalf("scheduler = %q", built.Scheduler.Name())
	}
	tens := built.Config.Tenants
	if len(tens) != 2 || tens[0].LoPE != 0 || tens[0].HiPE != 2 || tens[1].LoPE != 2 || tens[1].HiPE != 4 {
		t.Fatalf("tenant ranges = %+v", tens)
	}
	if tens[0].OmegaFloor != 0.8 || tens[0].Priority != 1 {
		t.Fatalf("tenant 0 floor/priority = %v/%d", tens[0].OmegaFloor, tens[0].Priority)
	}
	// Unset floor defaults to the tenant's own objective OmegaHat.
	if tens[1].OmegaFloor != built.TenantObjectives[1].OmegaHat {
		t.Fatalf("tenant 1 floor = %v, objective = %v", tens[1].OmegaFloor, built.TenantObjectives[1].OmegaHat)
	}
	if len(built.TenantNames) != 2 || built.TenantNames[0] != "analytics" || built.TenantNames[1] != "alerts" {
		t.Fatalf("tenant names = %v", built.TenantNames)
	}
	sum, err := built.Engine.Run(built.Scheduler)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Tenants) != 2 {
		t.Fatalf("tenant summaries = %+v", sum.Tenants)
	}
	for i, ts := range sum.Tenants {
		if ts.Name != built.TenantNames[i] {
			t.Fatalf("summary %d name = %q", i, ts.Name)
		}
		if !built.TenantObjectives[i].MeetsConstraint(ts.MeanOmega) {
			t.Fatalf("tenant %s omega %v misses its objective %+v", ts.Name, ts.MeanOmega, built.TenantObjectives[i])
		}
	}
}

func TestTenantBuildErrors(t *testing.T) {
	mutate := func(mut func(*Scenario)) error {
		sc, err := Parse(strings.NewReader(twoTenant))
		if err != nil {
			t.Fatal(err)
		}
		mut(sc)
		_, err = sc.Build()
		return err
	}
	if err := mutate(func(s *Scenario) {
		s.Graph.PEs = []PESpec{{Name: "x", Alternates: []AltSpec{{Name: "x", Value: 1, Cost: 1, Selectivity: 1}}}}
	}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("graph+tenants accepted: %v", err)
	}
	if err := mutate(func(s *Scenario) { s.Tenants[0].Name = "" }); err == nil {
		t.Fatal("unnamed tenant accepted")
	}
	if err := mutate(func(s *Scenario) { s.Tenants[1].Name = "analytics" }); err == nil {
		t.Fatal("duplicate tenant name accepted")
	}
	if err := mutate(func(s *Scenario) { s.Policy.Kind = "bruteforce" }); err == nil || !strings.Contains(err.Error(), "single-tenant") {
		t.Fatalf("bruteforce accepted for tenants: %v", err)
	}
	if err := mutate(func(s *Scenario) {
		s.Tenants[0].Policy = &PolicySpec{Kind: "global", Resilient: true}
	}); err == nil || !strings.Contains(err.Error(), "resilient") {
		t.Fatalf("per-tenant resilient accepted: %v", err)
	}
	if err := mutate(func(s *Scenario) { s.Tenants[0].Rate.Kind = "ghost" }); err == nil {
		t.Fatal("bad tenant rate kind accepted")
	}
	if err := mutate(func(s *Scenario) { s.Tenants[0].InputWeights = []float64{1, 2} }); err == nil {
		t.Fatal("input weight count mismatch accepted")
	}
}

// TestTenantPolicyOverride: a per-tenant policy block replaces the
// scenario-level one, and scenario-level resilience wraps the whole
// arbitrated policy rather than each inner heuristic.
func TestTenantPolicyOverride(t *testing.T) {
	sc, err := Parse(strings.NewReader(twoTenant))
	if err != nil {
		t.Fatal(err)
	}
	sc.Policy.Resilient = true
	sc.Tenants[0].Policy = &PolicySpec{Kind: "local"}
	built, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(built.Scheduler.Name(), "resilient") {
		t.Fatalf("scheduler = %q, want resilient wrapper", built.Scheduler.Name())
	}
}

const sessionsTenant = `{
  "tenants": [
    {
      "name": "app",
      "graph": {
        "pes": [
          {"name": "in", "alternates": [{"name": "x", "value": 1, "cost": 0.2, "selectivity": 1}]},
          {"name": "out", "alternates": [{"name": "x", "value": 1, "cost": 0.5, "selectivity": 1}]}
        ],
        "edges": [["in", "out"]]
      },
      "rate": {
        "kind": "sessions",
        "seed": 11,
        "sessions": {
          "model": "open",
          "arrivalPerSec": 0.05,
          "meanSessionSec": 300,
          "msgPerSessionSec": 0.4,
          "diurnal": 0.3
        }
      }
    }
  ],
  "horizonHours": 1
}`

// TestTenantSessionsRate: rate kind "sessions" parses inside a tenant block
// and drives the tenant's inputs from the session-population generator.
func TestTenantSessionsRate(t *testing.T) {
	sc, err := Parse(strings.NewReader(sessionsTenant))
	if err != nil {
		t.Fatal(err)
	}
	built, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := built.Config.Inputs[0]
	if !ok {
		t.Fatalf("no input profile at PE 0: %v", built.Config.Inputs)
	}
	if !strings.Contains(prof.Name(), "sessions") {
		t.Fatalf("profile = %q, want a sessions generator", prof.Name())
	}
	if prof.Mean() <= 0 {
		t.Fatalf("sessions mean = %v", prof.Mean())
	}
	// Missing sessions block is an error.
	sc2, err := Parse(strings.NewReader(sessionsTenant))
	if err != nil {
		t.Fatal(err)
	}
	sc2.Tenants[0].Rate.Sessions = nil
	if _, err := sc2.Build(); err == nil {
		t.Fatal("sessions kind without sessions block accepted")
	}
}
