// Package scenario defines the JSON scenario format shared by the
// command-line tools (cmd/dfsim): a complete description of one simulation
// — the dataflow (with choice groups), the input-rate profile, the
// infrastructure behaviour (ideal, replayed, real CSV traces, failures,
// spot market), the policy, and the objective — and builds a ready-to-run
// engine + scheduler pair from it.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/resilient"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
	"dynamicdf/internal/workload"
)

// Scenario is the top-level schema.
type Scenario struct {
	Graph   GraphSpec   `json:"graph"`
	Rate    RateSpec    `json:"rate"`
	Infra   InfraSpec   `json:"infra"`
	Policy  PolicySpec  `json:"policy"`
	Spot    SpotSpec    `json:"spot"`
	Control ControlSpec `json:"control"`

	HorizonHours   float64      `json:"horizonHours"`
	IntervalSec    int64        `json:"intervalSec"`
	OmegaHat       float64      `json:"omegaHat"`
	Epsilon        float64      `json:"epsilon"`
	LatencyHatSec  float64      `json:"latencyHatSec"`
	Seed           int64        `json:"seed"`
	MaxVMs         int          `json:"maxVMs"`
	FailureMTBFHrs float64      `json:"failureMTBFHours"`
	Choices        []ChoiceSpec `json:"choices"`
	Audit          bool         `json:"audit"`
	// Check enables the runtime invariant checker. A pointer with omitempty
	// keeps the canonical JSON of scenarios that do not use it unchanged, so
	// existing sweep-journal cache keys stay valid.
	Check *CheckSpec `json:"check,omitempty"`
	// FlowWorkers shards the engine's flow stage across a worker pool
	// (sim.Config.FlowWorkers). 0 — and hence the canonical JSON of existing
	// scenarios — runs it serially; any value produces byte-identical output.
	FlowWorkers int `json:"flowWorkers,omitempty"`
	// Tenants declares a multi-tenant run: N dataflows, each with its own
	// graph, rate, Ω floor and priority, sharing one fleet under a fairness
	// arbiter (see tenants.go). Mutually exclusive with the top-level graph
	// block; omitempty keeps single-tenant canonical JSON unchanged.
	Tenants []TenantSpec `json:"tenants,omitempty"`
}

// GraphSpec mirrors the canonical dataflow JSON inline.
type GraphSpec struct {
	DefaultMsgBytes int         `json:"defaultMsgBytes"`
	PEs             []PESpec    `json:"pes"`
	Edges           [][2]string `json:"edges"`
}

// PESpec declares one PE.
type PESpec struct {
	Name       string    `json:"name"`
	MsgBytes   int       `json:"msgBytes"`
	Alternates []AltSpec `json:"alternates"`
}

// AltSpec declares one alternate.
type AltSpec struct {
	Name        string  `json:"name"`
	Value       float64 `json:"value"`
	Cost        float64 `json:"cost"`
	Selectivity float64 `json:"selectivity"`
}

// ChoiceSpec declares a choice group by PE names.
type ChoiceSpec struct {
	Name    string   `json:"name"`
	From    string   `json:"from"`
	Targets []string `json:"targets"`
}

// RateSpec selects the input profile. Kind "wavewalk" superimposes the
// paper's periodic wave on a random walk (the §8.1 data-variability
// workload): the two profiles are averaged so the mean stays at Mean. Kind
// "sessions" drives the rate from a session-population generator
// (internal/workload): open/closed user models with diurnal, burst and
// flash-crowd modulation.
type RateSpec struct {
	Kind      string  `json:"kind"` // constant | wave | randomwalk | wavewalk | sessions
	Mean      float64 `json:"mean"`
	Amplitude float64 `json:"amplitude"`
	PeriodSec int64   `json:"periodSec"`
	StepFrac  float64 `json:"stepFrac"`
	Seed      int64   `json:"seed"`
	// Sessions parameterizes kind "sessions". Its Seed falls back to the
	// rate's Seed when zero.
	Sessions *workload.Spec `json:"sessions,omitempty"`
}

// InfraSpec selects the performance provider.
type InfraSpec struct {
	Kind string `json:"kind"` // ideal | replayed | csvdir
	Seed int64  `json:"seed"`
	Dir  string `json:"dir"`
	// CPU, Latency and Bandwidth override the replayed provider's generator
	// parameters (kind "replayed" only; nil keeps the package defaults).
	// Pointers with omitempty keep the canonical JSON of scenarios that do
	// not use them unchanged, so existing sweep-journal cache keys stay
	// valid. This is the slot calibration writes fitted parameters into.
	CPU       *GenSpec `json:"cpu,omitempty"`
	Latency   *GenSpec `json:"latency,omitempty"`
	Bandwidth *GenSpec `json:"bandwidth,omitempty"`
}

// GenSpec mirrors trace.GenConfig in the scenario schema: the OU/regime/
// diurnal generator parameters for one performance dimension.
type GenSpec struct {
	Mean       float64 `json:"mean"`
	Theta      float64 `json:"theta"`
	Sigma      float64 `json:"sigma"`
	RegimeProb float64 `json:"regimeProb"`
	RegimeAmp  float64 `json:"regimeAmp"`
	DiurnalAmp float64 `json:"diurnalAmp"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	PeriodSec  int64   `json:"periodSec"`
}

// GenConfig converts the spec to the generator's config type.
func (g *GenSpec) GenConfig() trace.GenConfig {
	return trace.GenConfig{
		Mean: g.Mean, Theta: g.Theta, Sigma: g.Sigma,
		RegimeProb: g.RegimeProb, RegimeAmp: g.RegimeAmp,
		DiurnalAmp: g.DiurnalAmp, Min: g.Min, Max: g.Max,
		PeriodSec: g.PeriodSec,
	}
}

// GenSpecFrom converts a generator config into its scenario representation.
func GenSpecFrom(c trace.GenConfig) *GenSpec {
	return &GenSpec{
		Mean: c.Mean, Theta: c.Theta, Sigma: c.Sigma,
		RegimeProb: c.RegimeProb, RegimeAmp: c.RegimeAmp,
		DiurnalAmp: c.DiurnalAmp, Min: c.Min, Max: c.Max,
		PeriodSec: c.PeriodSec,
	}
}

// PolicySpec selects the scheduler.
type PolicySpec struct {
	Kind    string `json:"kind"` // local | global | bruteforce
	Dynamic *bool  `json:"dynamic"`
	Static  bool   `json:"static"`
	UseSpot bool   `json:"useSpot"`
	// Resilient wraps the policy in the resilient middleware (retries,
	// per-class circuit breaking, class fallback); see internal/resilient.
	Resilient bool `json:"resilient"`
	// DegradeOmega arms the middleware's degradation hook (cheapest
	// alternates while capacity is pending or broken and Omega sits below
	// this floor). Only meaningful with Resilient.
	DegradeOmega float64 `json:"degradeOmega"`
}

// ControlSpec injects control-plane faults (see sim.ControlFaults): VM boot
// delays, transient acquisition failures (optionally bursty or per-class),
// and monitoring degradation. The zero value leaves the control plane ideal.
type ControlSpec struct {
	// MeanBootSec > 0 enables provisioning delays; MaxBootSec caps them
	// (default 4x the mean).
	MeanBootSec int64 `json:"meanBootSec"`
	MaxBootSec  int64 `json:"maxBootSec"`
	// AcquireFailProb is the baseline per-attempt capacity-error
	// probability; PerClassFailProb overrides it per VM class name.
	AcquireFailProb  float64            `json:"acquireFailProb"`
	PerClassFailProb map[string]float64 `json:"perClassFailProb"`
	// BurstEverySec > 0 adds one error burst per window of BurstLenSec
	// during which attempts fail with BurstFailProb (default 0.95).
	BurstEverySec int64   `json:"burstEverySec"`
	BurstLenSec   int64   `json:"burstLenSec"`
	BurstFailProb float64 `json:"burstFailProb"`
	// FaultFreeSec keeps acquisition reliable before this time, so initial
	// deployment is unaffected.
	FaultFreeSec int64 `json:"faultFreeSec"`
	// MonitorStaleProb drops each probe with this probability (the EWMA
	// keeps its last-known-good value); MonitorNoiseFrac perturbs surviving
	// probes multiplicatively within [1-f, 1+f).
	MonitorStaleProb float64 `json:"monitorStaleProb"`
	MonitorNoiseFrac float64 `json:"monitorNoiseFrac"`
	// Seed decorrelates the fault draws from the scenario seed (defaults to
	// the scenario seed).
	Seed int64 `json:"seed"`
}

// faults converts the spec to the simulator's fault model, or nil when every
// knob is zero.
func (cs ControlSpec) faults(fallbackSeed int64) *sim.ControlFaults {
	cf := &sim.ControlFaults{Seed: cs.Seed}
	if cf.Seed == 0 {
		cf.Seed = fallbackSeed
	}
	any := false
	if cs.MeanBootSec > 0 {
		cf.Provisioning = &sim.ProvisioningFaults{MeanBootSec: cs.MeanBootSec, MaxBootSec: cs.MaxBootSec}
		any = true
	}
	if cs.AcquireFailProb > 0 || len(cs.PerClassFailProb) > 0 || cs.BurstEverySec > 0 {
		cf.Acquisition = &sim.AcquisitionFaults{
			FailProb:      cs.AcquireFailProb,
			PerClass:      cs.PerClassFailProb,
			BurstEverySec: cs.BurstEverySec,
			BurstLenSec:   cs.BurstLenSec,
			BurstFailProb: cs.BurstFailProb,
			AfterSec:      cs.FaultFreeSec,
		}
		any = true
	}
	if cs.MonitorStaleProb > 0 || cs.MonitorNoiseFrac > 0 {
		cf.Monitoring = &sim.MonitoringFaults{StaleProb: cs.MonitorStaleProb, NoiseFrac: cs.MonitorNoiseFrac}
		any = true
	}
	if !any {
		return nil
	}
	return cf
}

// CheckSpec configures the per-step invariant checker (internal/invariant):
// conservation-style laws asserted over engine state at the end of every
// interval.
type CheckSpec struct {
	// Enabled attaches the checker to the engine.
	Enabled bool `json:"enabled"`
	// Strict aborts the run at the first violation with a typed
	// *invariant.Violation; lenient runs record and count violations.
	Strict bool `json:"strict"`
	// Epsilon overrides the conservation tolerance (<= 0 means
	// invariant.DefaultEpsilon).
	Epsilon float64 `json:"epsilon"`
}

// checker builds the configured checker, or nil when checking is off.
func (cs *CheckSpec) checker() *invariant.Checker {
	if cs == nil || !cs.Enabled {
		return nil
	}
	return &invariant.Checker{Epsilon: cs.Epsilon, Strict: cs.Strict}
}

// SpotSpec adds a preemptible market.
type SpotSpec struct {
	PriceFraction    float64 `json:"priceFraction"`
	PreemptMTBFHours float64 `json:"preemptMTBFHours"`
}

// Parse decodes a scenario from JSON.
func Parse(r io.Reader) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &sc, nil
}

// Built holds everything needed to run the scenario.
type Built struct {
	Engine    *sim.Engine
	Scheduler sim.Scheduler
	Objective core.Objective
	Graph     *dataflow.Graph
	// Checker is the invariant checker attached to Engine (nil unless the
	// scenario's check block enabled it).
	Checker *invariant.Checker
	// Config is the exact sim.Config the Engine was built from, so callers
	// can restore a checkpoint of an identical scenario onto it
	// (sim.Restore) instead of stepping Engine from zero.
	Config sim.Config
	// TenantNames and TenantObjectives describe the tenants of a
	// multi-tenant scenario in declaration order (nil for single-tenant
	// runs). TenantObjectives[i] carries tenant i's own Θ calibration.
	TenantNames      []string
	TenantObjectives []core.Objective
}

// Build validates the scenario and constructs the engine and scheduler.
func (sc *Scenario) Build() (*Built, error) {
	if len(sc.Tenants) > 0 {
		if len(sc.Graph.PEs) > 0 {
			return nil, fmt.Errorf("scenario: graph and tenants blocks are mutually exclusive")
		}
		return sc.buildTenants()
	}
	g, err := buildGraph(sc.Graph, sc.Choices)
	if err != nil {
		return nil, err
	}

	prof, err := sc.profile()
	if err != nil {
		return nil, err
	}
	perf, err := sc.perf()
	if err != nil {
		return nil, err
	}

	hours := sc.HorizonHours
	if hours == 0 {
		hours = 4
	}
	obj, err := sc.objective(g, prof.Mean(), hours)
	if err != nil {
		return nil, err
	}

	sched, err := sc.scheduler(obj, hours)
	if err != nil {
		return nil, err
	}

	menu, failures, preemption, err := sc.platform()
	if err != nil {
		return nil, err
	}
	interval := sc.IntervalSec
	if interval == 0 {
		interval = 60
	}
	checker := sc.Check.checker()
	cfg := sim.Config{
		Graph:         g,
		Menu:          menu,
		Perf:          perf,
		Inputs:        map[int]rates.Profile{g.Inputs()[0]: prof},
		IntervalSec:   interval,
		HorizonSec:    int64(hours * 3600),
		Seed:          sc.Seed,
		MaxVMs:        sc.MaxVMs,
		Failures:      failures,
		Preemption:    preemption,
		ControlFaults: sc.Control.faults(sc.Seed),
		Audit:         sc.Audit,
		OmegaFloor:    obj.OmegaHat,
		Checker:       checker,
		FlowWorkers:   sc.FlowWorkers,
	}
	engine, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Built{Engine: engine, Scheduler: sched, Objective: obj, Graph: g, Checker: checker, Config: cfg}, nil
}

// buildGraph constructs one dataflow graph from its spec form.
func buildGraph(gs GraphSpec, choices []ChoiceSpec) (*dataflow.Graph, error) {
	b := dataflow.NewBuilder()
	if gs.DefaultMsgBytes > 0 {
		b.DefaultMsgBytes(gs.DefaultMsgBytes)
	}
	addGraphSpec(b, gs, choices, "")
	return b.Build()
}

// addGraphSpec lowers one graph spec onto a (possibly shared) builder. With
// a non-empty prefix every PE and choice name is namespaced "prefix<name>"
// and the spec's DefaultMsgBytes is applied per PE, so multiple tenants'
// graphs compose onto one builder without collisions.
func addGraphSpec(b *dataflow.Builder, gs GraphSpec, choices []ChoiceSpec, prefix string) {
	for _, pe := range gs.PEs {
		alts := make([]dataflow.Alternate, 0, len(pe.Alternates))
		for _, a := range pe.Alternates {
			alts = append(alts, dataflow.Alt(a.Name, a.Value, a.Cost, a.Selectivity))
		}
		b.AddPE(prefix+pe.Name, alts...)
		mb := pe.MsgBytes
		if mb == 0 && prefix != "" {
			mb = gs.DefaultMsgBytes
		}
		if mb > 0 {
			b.SetMsgBytes(prefix+pe.Name, mb)
		}
	}
	for _, e := range gs.Edges {
		b.Connect(prefix+e[0], prefix+e[1])
	}
	for _, ch := range choices {
		targets := make([]string, len(ch.Targets))
		for i, t := range ch.Targets {
			targets[i] = prefix + t
		}
		b.AddChoice(prefix+ch.Name, prefix+ch.From, targets...)
	}
}

// platform assembles the VM menu and failure models shared by the single-
// and multi-tenant build paths.
func (sc *Scenario) platform() (*cloud.Menu, sim.FailureModel, sim.FailureModel, error) {
	classes := cloud.AWS2013Classes()
	var preemption sim.FailureModel
	if sc.Spot.PriceFraction > 0 {
		if sc.Spot.PriceFraction >= 1 {
			return nil, nil, nil, fmt.Errorf("scenario: spot price fraction %v must be in (0,1)", sc.Spot.PriceFraction)
		}
		classes = cloud.WithSpotMarket(classes, sc.Spot.PriceFraction)
		mtbf := sc.Spot.PreemptMTBFHours
		if mtbf == 0 {
			mtbf = 1
		}
		preemption = sim.ExponentialFailures{MTBFSec: int64(mtbf * 3600), Seed: sc.Seed + 1}
	}
	var failures sim.FailureModel
	if sc.FailureMTBFHrs > 0 {
		failures = sim.ExponentialFailures{MTBFSec: int64(sc.FailureMTBFHrs * 3600), Seed: sc.Seed}
	}
	return cloud.MustMenu(classes), failures, preemption, nil
}

func (sc *Scenario) profile() (rates.Profile, error) {
	return sc.Rate.profile(sc.IntervalSec)
}

// profile builds the rate spec's input profile. intervalSec is the
// scenario's adaptation interval (0 means the 60s default); the wavewalk
// kind steps its random walk at that cadence.
func (r RateSpec) profile(intervalSec int64) (rates.Profile, error) {
	switch r.Kind {
	case "constant", "":
		return rates.NewConstant(r.Mean)
	case "wave":
		period := r.PeriodSec
		if period == 0 {
			period = 1800
		}
		return rates.NewWave(r.Mean, r.Amplitude, period)
	case "randomwalk":
		step := r.StepFrac
		if step == 0 {
			step = 0.1
		}
		return rates.NewRandomWalk(r.Mean, step, 60, r.Seed)
	case "wavewalk":
		period := r.PeriodSec
		if period == 0 {
			period = 1800
		}
		amp := r.Amplitude
		if amp == 0 {
			amp = 0.4 * r.Mean
		}
		w, err := rates.NewWave(r.Mean, amp, period)
		if err != nil {
			return nil, err
		}
		// Start at the trough so a static deployment provisions below the
		// rates that arrive later (as in the experiments package).
		w.PhaseSec = 3 * period / 4
		step := r.StepFrac
		if step == 0 {
			step = 0.08
		}
		interval := intervalSec
		if interval == 0 {
			interval = 60
		}
		rw, err := rates.NewRandomWalk(r.Mean, step, interval, r.Seed)
		if err != nil {
			return nil, err
		}
		return &wavewalk{a: w, b: rw}, nil
	case "sessions":
		if r.Sessions == nil {
			return nil, fmt.Errorf("scenario: rate kind sessions needs a sessions block")
		}
		spec := *r.Sessions
		if spec.Seed == 0 {
			spec.Seed = r.Seed
		}
		return workload.New(spec)
	default:
		return nil, fmt.Errorf("scenario: unknown rate kind %q", r.Kind)
	}
}

// wavewalk averages a wave and a random walk so periodic and stochastic
// variation are both present while the mean stays put.
type wavewalk struct{ a, b rates.Profile }

func (m *wavewalk) Rate(sec int64) float64 { return (m.a.Rate(sec) + m.b.Rate(sec)) / 2 }
func (m *wavewalk) Mean() float64          { return (m.a.Mean() + m.b.Mean()) / 2 }
func (m *wavewalk) Name() string           { return "wave+walk" }

func (sc *Scenario) perf() (trace.Provider, error) {
	switch sc.Infra.Kind {
	case "ideal", "":
		return trace.NewIdeal(), nil
	case "replayed":
		cfg := trace.ReplayedConfig{Seed: sc.Infra.Seed}
		if sc.Infra.CPU != nil {
			cfg.CPU = sc.Infra.CPU.GenConfig()
			if err := cfg.CPU.Validate(); err != nil {
				return nil, fmt.Errorf("scenario: infra cpu: %w", err)
			}
		}
		if sc.Infra.Latency != nil {
			cfg.Latency = sc.Infra.Latency.GenConfig()
			if err := cfg.Latency.Validate(); err != nil {
				return nil, fmt.Errorf("scenario: infra latency: %w", err)
			}
		}
		if sc.Infra.Bandwidth != nil {
			cfg.Bandwidth = sc.Infra.Bandwidth.GenConfig()
			if err := cfg.Bandwidth.Validate(); err != nil {
				return nil, fmt.Errorf("scenario: infra bandwidth: %w", err)
			}
		}
		return trace.NewReplayed(cfg)
	case "csvdir":
		pool, err := trace.LoadDir(sc.Infra.Dir)
		if err != nil {
			return nil, err
		}
		return trace.NewReplayedFromSeries(pool, nil, nil, sc.Infra.Seed)
	default:
		return nil, fmt.Errorf("scenario: unknown infra kind %q", sc.Infra.Kind)
	}
}

func (sc *Scenario) scheduler(obj core.Objective, hours float64) (sim.Scheduler, error) {
	dynamic := true
	if sc.Policy.Dynamic != nil {
		dynamic = *sc.Policy.Dynamic
	}
	var sched sim.Scheduler
	var err error
	switch sc.Policy.Kind {
	case "local":
		sched, err = core.NewHeuristic(core.Options{
			Strategy: core.Local, Dynamic: dynamic, Adaptive: !sc.Policy.Static,
			Objective: obj, UseSpot: sc.Policy.UseSpot})
	case "global", "":
		sched, err = core.NewHeuristic(core.Options{
			Strategy: core.Global, Dynamic: dynamic, Adaptive: !sc.Policy.Static,
			Objective: obj, UseSpot: sc.Policy.UseSpot})
	case "bruteforce":
		sched, err = core.NewBruteForce(obj, hours)
	default:
		return nil, fmt.Errorf("scenario: unknown policy kind %q", sc.Policy.Kind)
	}
	if err != nil {
		return nil, err
	}
	if sc.Policy.Resilient {
		sched = resilient.Wrap(sched, resilient.Config{
			Seed: sc.Seed, DegradeOmega: sc.Policy.DegradeOmega})
	}
	return sched, nil
}
