package scenario

import (
	"strings"
	"testing"

	"dynamicdf/internal/rates"
	"dynamicdf/internal/workload"
)

const minimal = `{
  "graph": {
    "pes": [
      {"name": "a", "alternates": [{"name": "x", "value": 1, "cost": 0.2, "selectivity": 1}]},
      {"name": "b", "alternates": [
        {"name": "full", "value": 1, "cost": 1.0, "selectivity": 1},
        {"name": "lite", "value": 0.8, "cost": 0.5, "selectivity": 1}
      ]}
    ],
    "edges": [["a", "b"]]
  },
  "rate": {"kind": "constant", "mean": 5},
  "horizonHours": 1
}`

func TestParseAndBuildMinimal(t *testing.T) {
	sc, err := Parse(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	built, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.Graph.N() != 2 {
		t.Fatalf("N = %d", built.Graph.N())
	}
	if built.Scheduler.Name() != "global" {
		t.Fatalf("default policy = %q", built.Scheduler.Name())
	}
	if built.Objective.OmegaHat != 0.7 {
		t.Fatalf("default omega-hat = %v", built.Objective.OmegaHat)
	}
	sum, err := built.Engine.Run(built.Scheduler)
	if err != nil {
		t.Fatal(err)
	}
	if !built.Objective.MeetsConstraint(sum.MeanOmega) {
		t.Fatalf("omega %.3f", sum.MeanOmega)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	in := `{"graph": {"pes": [], "edges": []}, "typoField": 1}`
	if _, err := Parse(strings.NewReader(in)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	mutate := func(mut func(*Scenario)) error {
		sc, err := Parse(strings.NewReader(minimal))
		if err != nil {
			t.Fatal(err)
		}
		mut(sc)
		_, err = sc.Build()
		return err
	}
	if err := mutate(func(s *Scenario) { s.Rate.Kind = "ghost" }); err == nil {
		t.Fatal("bad rate kind accepted")
	}
	if err := mutate(func(s *Scenario) { s.Infra.Kind = "ghost" }); err == nil {
		t.Fatal("bad infra kind accepted")
	}
	if err := mutate(func(s *Scenario) { s.Policy.Kind = "ghost" }); err == nil {
		t.Fatal("bad policy kind accepted")
	}
	if err := mutate(func(s *Scenario) { s.Spot.PriceFraction = 2 }); err == nil {
		t.Fatal("spot fraction >= 1 accepted")
	}
	if err := mutate(func(s *Scenario) { s.Graph.Edges = append(s.Graph.Edges, [2]string{"a", "ghost"}) }); err == nil {
		t.Fatal("bad edge accepted")
	}
	if err := mutate(func(s *Scenario) { s.OmegaHat = 2 }); err == nil {
		t.Fatal("omega-hat > 1 accepted")
	}
	if err := mutate(func(s *Scenario) { s.Infra = InfraSpec{Kind: "csvdir", Dir: "/nonexistent"} }); err == nil {
		t.Fatal("missing trace dir accepted")
	}
}

func TestBuildVariants(t *testing.T) {
	variants := []func(*Scenario){
		func(s *Scenario) { s.Rate = RateSpec{Kind: "wave", Mean: 5, Amplitude: 2} },
		func(s *Scenario) { s.Rate = RateSpec{Kind: "randomwalk", Mean: 5} },
		func(s *Scenario) { s.Rate = RateSpec{Kind: "wavewalk", Mean: 5} },
		func(s *Scenario) { s.Infra = InfraSpec{Kind: "replayed", Seed: 3} },
		func(s *Scenario) { s.Policy = PolicySpec{Kind: "local"} },
		func(s *Scenario) { s.Policy = PolicySpec{Kind: "bruteforce"} },
		func(s *Scenario) { s.Policy.Static = true },
		func(s *Scenario) {
			s.Spot = SpotSpec{PriceFraction: 0.3}
			s.Policy.UseSpot = true
		},
		func(s *Scenario) { s.FailureMTBFHrs = 2 },
		func(s *Scenario) { s.LatencyHatSec = 60 },
		func(s *Scenario) { s.Audit = true },
	}
	for i, mut := range variants {
		sc, err := Parse(strings.NewReader(minimal))
		if err != nil {
			t.Fatal(err)
		}
		mut(sc)
		built, err := sc.Build()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if _, err := built.Engine.Run(built.Scheduler); err != nil {
			t.Fatalf("variant %d run: %v", i, err)
		}
	}
}

func TestBuildWithChoices(t *testing.T) {
	in := `{
	  "graph": {
	    "pes": [
	      {"name": "in", "alternates": [{"name": "x", "value": 1, "cost": 0.1, "selectivity": 1}]},
	      {"name": "p1", "alternates": [{"name": "x", "value": 1, "cost": 0.5, "selectivity": 1}]},
	      {"name": "p2", "alternates": [{"name": "x", "value": 0.7, "cost": 0.2, "selectivity": 1}]},
	      {"name": "out", "alternates": [{"name": "x", "value": 1, "cost": 0.1, "selectivity": 1}]}
	    ],
	    "edges": [["p1", "out"], ["p2", "out"]]
	  },
	  "choices": [{"name": "route", "from": "in", "targets": ["p1", "p2"]}],
	  "rate": {"kind": "constant", "mean": 4},
	  "horizonHours": 1
	}`
	sc, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	built, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Graph.Choices) != 1 {
		t.Fatalf("choices = %d", len(built.Graph.Choices))
	}
	if _, err := built.Engine.Run(built.Scheduler); err != nil {
		t.Fatal(err)
	}
}

// TestRateSpecWavewalkDefaults pins the wavewalk lowering: zero amplitude
// defaults to 0.4x the mean, zero step fraction to 0.08, the wave starts at
// its trough, and the walk steps at the adaptation interval.
func TestRateSpecWavewalkDefaults(t *testing.T) {
	r := RateSpec{Kind: "wavewalk", Mean: 10, Seed: 3}
	p, err := r.profile(0)
	if err != nil {
		t.Fatal(err)
	}
	ww, ok := p.(*wavewalk)
	if !ok {
		t.Fatalf("profile = %T", p)
	}
	w, ok := ww.a.(*rates.Wave)
	if !ok {
		t.Fatalf("wave half = %T", ww.a)
	}
	if w.Amplitude != 4 || w.PeriodSec != 1800 || w.PhaseSec != 3*1800/4 {
		t.Fatalf("wave defaults = %+v", w)
	}
	rw, ok := ww.b.(*rates.RandomWalk)
	if !ok {
		t.Fatalf("walk half = %T", ww.b)
	}
	if rw.Step != 0.08 || rw.StepSec != 60 || rw.Seed != 3 {
		t.Fatalf("walk defaults = %+v", rw)
	}
	// A custom adaptation interval re-paces the walk.
	p2, err := r.profile(120)
	if err != nil {
		t.Fatal(err)
	}
	if rw2 := p2.(*wavewalk).b.(*rates.RandomWalk); rw2.StepSec != 120 {
		t.Fatalf("walk step period = %d, want 120", rw2.StepSec)
	}
}

// TestRateSpecSessionsSeedFallback: a sessions block without its own seed
// inherits the rate's, producing the identical stream.
func TestRateSpecSessionsSeedFallback(t *testing.T) {
	spec := workload.Spec{
		Model: workload.Open, ArrivalPerSec: 0.05,
		MeanSessionSec: 300, MsgPerSessionSec: 0.4,
	}
	inherit := RateSpec{Kind: "sessions", Seed: 9, Sessions: &spec}
	explicit := spec
	explicit.Seed = 9
	direct := RateSpec{Kind: "sessions", Sessions: &explicit}
	p1, err := inherit.profile(60)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := direct.profile(60)
	if err != nil {
		t.Fatal(err)
	}
	for sec := int64(0); sec <= 3600; sec += 300 {
		if a, b := p1.Rate(sec), p2.Rate(sec); a != b {
			t.Fatalf("Rate(%d): inherited %v != explicit %v", sec, a, b)
		}
	}
	// The fallback must not mutate the caller's spec.
	if spec.Seed != 0 {
		t.Fatalf("sessions spec mutated: seed = %d", spec.Seed)
	}
}
