package scenario

import (
	"fmt"

	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/resilient"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/workload"
)

// TenantSpec declares one tenant of a multi-tenant scenario: its own
// dataflow (graph + choices), input rate, Ω floor and priority. Tenants are
// lowered in declaration order onto one composite graph and one shared
// fleet; each tenant's PEs occupy a contiguous index range and are
// namespaced "<name>/<pe>".
type TenantSpec struct {
	Name    string       `json:"name"`
	Graph   GraphSpec    `json:"graph"`
	Choices []ChoiceSpec `json:"choices,omitempty"`
	Rate    RateSpec     `json:"rate"`
	// OmegaFloor is the tenant's guaranteed relative-throughput floor the
	// fairness arbiter defends under scarcity. 0 defaults to the tenant's
	// own objective OmegaHat.
	OmegaFloor float64 `json:"omegaFloor,omitempty"`
	// Priority ranks tenants when scarce capacity must be arbitrated among
	// the starving (higher wins; equal priorities tie-break by declaration
	// order).
	Priority int `json:"priority,omitempty"`
	// InputWeights fan the tenant's rate profile across its input PEs in
	// graph order (uniform split when omitted).
	InputWeights []float64 `json:"inputWeights,omitempty"`
	// Policy overrides the scenario-level policy block for this tenant.
	Policy *PolicySpec `json:"policy,omitempty"`
}

// buildTenants is Build for scenarios with a tenants block: every tenant's
// graph is lowered onto one composite dataflow, its rate fanned across its
// input PEs, its own Θ objective calibrated, and one core.MultiTenant
// scheduler arbitrates the per-tenant heuristics over the shared fleet.
func (sc *Scenario) buildTenants() (*Built, error) {
	hours := sc.HorizonHours
	if hours == 0 {
		hours = 4
	}
	interval := sc.IntervalSec
	if interval == 0 {
		interval = 60
	}

	comp := dataflow.NewBuilder()
	tenants := make([]sim.Tenant, 0, len(sc.Tenants))
	names := make([]string, 0, len(sc.Tenants))
	objs := make([]core.Objective, 0, len(sc.Tenants))
	inner := make([]sim.Scheduler, 0, len(sc.Tenants))
	inputs := map[int]rates.Profile{}
	meanSum := 0.0
	lo, loCh := 0, 0
	for i, t := range sc.Tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("scenario: tenant %d has no name", i)
		}
		tg, err := buildGraph(t.Graph, t.Choices)
		if err != nil {
			return nil, fmt.Errorf("scenario: tenant %q: %w", t.Name, err)
		}
		addGraphSpec(comp, t.Graph, t.Choices, t.Name+"/")

		prof, err := t.Rate.profile(sc.IntervalSec)
		if err != nil {
			return nil, fmt.Errorf("scenario: tenant %q: %w", t.Name, err)
		}
		meanSum += prof.Mean()

		obj, err := sc.objective(tg, prof.Mean(), hours)
		if err != nil {
			return nil, fmt.Errorf("scenario: tenant %q: %w", t.Name, err)
		}
		floor := t.OmegaFloor
		if floor == 0 {
			floor = obj.OmegaHat
		}

		ins := tg.Inputs()
		fanned, err := workload.Fan(prof, t.InputWeights, len(ins))
		if err != nil {
			return nil, fmt.Errorf("scenario: tenant %q: %w", t.Name, err)
		}
		for k, pe := range ins {
			inputs[lo+pe] = fanned[k]
		}

		ps := sc.Policy
		// Scenario-level resilience wraps the arbitrated policy as a whole,
		// not each inner heuristic.
		ps.Resilient, ps.DegradeOmega = false, 0
		if t.Policy != nil {
			ps = *t.Policy
		}
		policy, err := tenantHeuristic(ps, obj)
		if err != nil {
			return nil, fmt.Errorf("scenario: tenant %q: %w", t.Name, err)
		}

		tenants = append(tenants, sim.Tenant{
			Name: t.Name, LoPE: lo, HiPE: lo + tg.N(),
			LoChoice: loCh, HiChoice: loCh + len(tg.Choices),
			OmegaFloor: floor, Priority: t.Priority, Graph: tg,
		})
		names = append(names, t.Name)
		objs = append(objs, obj)
		inner = append(inner, policy)
		lo += tg.N()
		loCh += len(tg.Choices)
	}
	g, err := comp.Build()
	if err != nil {
		return nil, fmt.Errorf("scenario: composite graph: %w", err)
	}

	// The global objective spans the composite graph at the summed mean
	// rate; it prices the shared fleet's spend in the run-level Θ.
	obj, err := sc.objective(g, meanSum, hours)
	if err != nil {
		return nil, err
	}

	mt, err := core.NewMultiTenant(inner, core.Arbiter{})
	if err != nil {
		return nil, err
	}
	var sched sim.Scheduler = mt
	if sc.Policy.Resilient {
		sched = resilient.Wrap(mt, resilient.Config{
			Seed: sc.Seed, DegradeOmega: sc.Policy.DegradeOmega})
	}

	perf, err := sc.perf()
	if err != nil {
		return nil, err
	}
	menu, failures, preemption, err := sc.platform()
	if err != nil {
		return nil, err
	}
	checker := sc.Check.checker()
	cfg := sim.Config{
		Graph:         g,
		Menu:          menu,
		Perf:          perf,
		Inputs:        inputs,
		IntervalSec:   interval,
		HorizonSec:    int64(hours * 3600),
		Seed:          sc.Seed,
		MaxVMs:        sc.MaxVMs,
		Failures:      failures,
		Preemption:    preemption,
		ControlFaults: sc.Control.faults(sc.Seed),
		Audit:         sc.Audit,
		OmegaFloor:    obj.OmegaHat,
		Checker:       checker,
		FlowWorkers:   sc.FlowWorkers,
		Tenants:       tenants,
	}
	engine, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Built{
		Engine: engine, Scheduler: sched, Objective: obj, Graph: g,
		Checker: checker, Config: cfg,
		TenantNames: names, TenantObjectives: objs,
	}, nil
}

// objective calibrates one Θ objective (PaperSigma at the given graph and
// mean rate) and applies the scenario's overrides.
func (sc *Scenario) objective(g *dataflow.Graph, meanRate, hours float64) (core.Objective, error) {
	obj, err := core.PaperSigma(g, meanRate, hours)
	if err != nil {
		return core.Objective{}, err
	}
	if sc.OmegaHat != 0 {
		obj.OmegaHat = sc.OmegaHat
	}
	if sc.Epsilon != 0 {
		obj.Epsilon = sc.Epsilon
	}
	obj.LatencyHatSec = sc.LatencyHatSec
	if err := obj.Validate(); err != nil {
		return core.Objective{}, err
	}
	return obj, nil
}

// tenantHeuristic builds one tenant's inner policy. Bruteforce plans the
// whole fleet for one dataflow and cannot be arbitrated, so it stays
// single-tenant only; per-tenant resilience is likewise rejected — set the
// scenario-level flag to wrap the arbitrated policy as a whole.
func tenantHeuristic(ps PolicySpec, obj core.Objective) (sim.Scheduler, error) {
	if ps.Resilient {
		return nil, fmt.Errorf("scenario: per-tenant resilient policy unsupported; set the scenario-level policy.resilient")
	}
	dynamic := true
	if ps.Dynamic != nil {
		dynamic = *ps.Dynamic
	}
	switch ps.Kind {
	case "local":
		return core.NewHeuristic(core.Options{
			Strategy: core.Local, Dynamic: dynamic, Adaptive: !ps.Static,
			Objective: obj, UseSpot: ps.UseSpot})
	case "global", "":
		return core.NewHeuristic(core.Options{
			Strategy: core.Global, Dynamic: dynamic, Adaptive: !ps.Static,
			Objective: obj, UseSpot: ps.UseSpot})
	case "bruteforce":
		return nil, fmt.Errorf("scenario: policy kind bruteforce is single-tenant only")
	default:
		return nil, fmt.Errorf("scenario: unknown policy kind %q", ps.Kind)
	}
}
