package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"dynamicdf/internal/dataflow"
)

// CanonicalJSON serializes the scenario in its canonical form: compact,
// struct-field order fixed by the schema, map keys sorted by encoding/json.
// Two scenarios that build identical engines marshal to identical bytes, so
// the output is a stable cache identity (see sweep.JobKey).
func (sc *Scenario) CanonicalJSON() ([]byte, error) {
	b, err := json.Marshal(sc)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalize: %w", err)
	}
	return b, nil
}

// ParseBytes is Parse over an in-memory document.
func ParseBytes(data []byte) (*Scenario, error) {
	return Parse(bytes.NewReader(data))
}

// FromGraph converts a built dataflow graph back into its scenario spec
// form, so programmatic graphs (dataflow.EvalGraph, LayeredGraph) can be
// embedded in scenario and sweep documents.
func FromGraph(g *dataflow.Graph) (GraphSpec, []ChoiceSpec) {
	gs := GraphSpec{DefaultMsgBytes: g.DefaultMsgBytes}
	for _, pe := range g.PEs {
		ps := PESpec{Name: pe.Name, MsgBytes: pe.OutMsgBytes}
		for _, a := range pe.Alternates {
			ps.Alternates = append(ps.Alternates, AltSpec{
				Name: a.Name, Value: a.Value, Cost: a.Cost, Selectivity: a.Selectivity,
			})
		}
		gs.PEs = append(gs.PEs, ps)
	}
	for _, e := range g.Edges {
		gs.Edges = append(gs.Edges, [2]string{g.PEs[e.From].Name, g.PEs[e.To].Name})
	}
	var choices []ChoiceSpec
	for _, ch := range g.Choices {
		cs := ChoiceSpec{Name: ch.Name, From: g.PEs[ch.From].Name}
		for _, t := range ch.Targets {
			cs.Targets = append(cs.Targets, g.PEs[t].Name)
		}
		choices = append(choices, cs)
	}
	return gs, choices
}
