package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Stats summarizes a Series the way Figs. 2-3 characterize the FutureGrid
// traces: central tendency, spread, and the distribution of relative
// deviation from the mean.
type Stats struct {
	N             int
	Mean          float64
	Stddev        float64
	CoV           float64 // coefficient of variation: Stddev / Mean
	Min, Max      float64
	P5, P50, P95  float64
	MaxAbsRelDev  float64 // max |x - mean| / mean
	MeanAbsRelDev float64 // mean |x - mean| / mean
}

// Characterize computes Stats for the series.
func Characterize(s *Series) Stats {
	n := len(s.Samples)
	st := Stats{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range s.Samples {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(n)
	ss := 0.0
	absDev := 0.0
	for _, v := range s.Samples {
		d := v - st.Mean
		ss += d * d
		ad := math.Abs(d)
		absDev += ad
		if st.Mean != 0 {
			rel := ad / math.Abs(st.Mean)
			if rel > st.MaxAbsRelDev {
				st.MaxAbsRelDev = rel
			}
		}
	}
	if n > 1 {
		st.Stddev = math.Sqrt(ss / float64(n-1))
	}
	if st.Mean != 0 {
		st.CoV = st.Stddev / math.Abs(st.Mean)
		st.MeanAbsRelDev = absDev / float64(n) / math.Abs(st.Mean)
	}
	sorted := append([]float64(nil), s.Samples...)
	sort.Float64s(sorted)
	st.P5 = percentile(sorted, 0.05)
	st.P50 = percentile(sorted, 0.50)
	st.P95 = percentile(sorted, 0.95)
	return st
}

// percentile reads the p-quantile (0..1) from an ascending-sorted slice
// using linear interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RelativeDeviation returns the series (x - mean)/mean, the quantity Fig. 2's
// lower panel plots.
func RelativeDeviation(s *Series) *Series {
	st := Characterize(s)
	out := make([]float64, len(s.Samples))
	for i, v := range s.Samples {
		if st.Mean != 0 {
			out[i] = (v - st.Mean) / st.Mean
		}
	}
	return &Series{PeriodSec: s.PeriodSec, Samples: out}
}

// String renders the stats as a single log-friendly line.
func (st Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f cov=%.3f min=%.4f p5=%.4f p50=%.4f p95=%.4f max=%.4f maxRelDev=%.1f%%",
		st.N, st.Mean, st.Stddev, st.CoV, st.Min, st.P5, st.P50, st.P95, st.Max, st.MaxAbsRelDev*100)
}

// WriteCSV streams the series as (sec,value) rows.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sec", "value"}); err != nil {
		return err
	}
	for i, v := range s.Samples {
		rec := []string{
			strconv.FormatInt(int64(i)*s.PeriodSec, 10),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series written by WriteCSV (or any two-column CSV with a
// header, monotone uniformly spaced seconds, and float values).
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, errors.New("trace: csv needs a header and at least one row")
	}
	var samples []float64
	var times []int64
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, fmt.Errorf("trace: csv row %d has %d fields", i+2, len(row))
		}
		sec, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+2, err)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv row %d: %w", i+2, err)
		}
		times = append(times, sec)
		samples = append(samples, v)
	}
	period := int64(60)
	if len(times) > 1 {
		period = times[1] - times[0]
		if period <= 0 {
			return nil, errors.New("trace: csv times must increase")
		}
		for i := 2; i < len(times); i++ {
			if times[i]-times[i-1] != period {
				return nil, fmt.Errorf("trace: csv not uniformly spaced at row %d", i+2)
			}
		}
	}
	return NewSeries(period, samples)
}
