package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Stats summarizes a Series the way Figs. 2-3 characterize the FutureGrid
// traces: central tendency, spread, and the distribution of relative
// deviation from the mean.
type Stats struct {
	N             int
	Mean          float64
	Stddev        float64
	CoV           float64 // coefficient of variation: Stddev / Mean
	Min, Max      float64
	P5, P50, P95  float64
	MaxAbsRelDev  float64 // max |x - mean| / mean
	MeanAbsRelDev float64 // mean |x - mean| / mean

	// Temporal structure (what the calibration fitters consume; see
	// Autocorrelation and DecomposeAC).

	// Lag1Corr is the sample lag-1 autocorrelation.
	Lag1Corr float64
	// MeanReversionPerSec estimates the OU reversion rate theta implied by
	// the fast autocorrelation component: (1 - FastDecay) / PeriodSec.
	MeanReversionPerSec float64
	// RegimeDwellSec estimates the mean dwell time of the slow (regime)
	// component: PeriodSec / (1 - SlowDecay). Zero when no slow component
	// is detected.
	RegimeDwellSec float64
}

// statsMaxLag caps the autocorrelation depth Characterize computes, keeping
// its cost linear-ish for multi-day minute-sampled traces.
const statsMaxLag = 1440

// Characterize computes Stats for the series.
func Characterize(s *Series) Stats {
	n := len(s.Samples)
	st := Stats{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range s.Samples {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(n)
	ss := 0.0
	absDev := 0.0
	for _, v := range s.Samples {
		d := v - st.Mean
		ss += d * d
		ad := math.Abs(d)
		absDev += ad
		if st.Mean != 0 {
			rel := ad / math.Abs(st.Mean)
			if rel > st.MaxAbsRelDev {
				st.MaxAbsRelDev = rel
			}
		}
	}
	if n > 1 {
		st.Stddev = math.Sqrt(ss / float64(n-1))
	}
	if st.Mean != 0 {
		st.CoV = st.Stddev / math.Abs(st.Mean)
		st.MeanAbsRelDev = absDev / float64(n) / math.Abs(st.Mean)
	}
	sorted := append([]float64(nil), s.Samples...)
	sort.Float64s(sorted)
	st.P5 = percentile(sorted, 0.05)
	st.P50 = percentile(sorted, 0.50)
	st.P95 = percentile(sorted, 0.95)
	if n >= 8 && st.Stddev > 0 {
		maxLag := n / 4
		if maxLag > statsMaxLag {
			maxLag = statsMaxLag
		}
		rho := Autocorrelation(s, maxLag)
		st.Lag1Corr = rho[1]
		d := DecomposeAC(rho)
		st.MeanReversionPerSec = (1 - d.FastDecay) / float64(s.PeriodSec)
		if d.SlowWeight > 0 && d.SlowDecay < 1 {
			st.RegimeDwellSec = float64(s.PeriodSec) / (1 - d.SlowDecay)
		}
	}
	return st
}

// percentile reads the p-quantile (0..1) from an ascending-sorted slice
// using linear interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RelativeDeviation returns the series (x - mean)/mean, the quantity Fig. 2's
// lower panel plots.
func RelativeDeviation(s *Series) *Series {
	st := Characterize(s)
	out := make([]float64, len(s.Samples))
	for i, v := range s.Samples {
		if st.Mean != 0 {
			out[i] = (v - st.Mean) / st.Mean
		}
	}
	return &Series{PeriodSec: s.PeriodSec, Samples: out}
}

// String renders the stats as a single log-friendly line.
func (st Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f cov=%.3f min=%.4f p5=%.4f p50=%.4f p95=%.4f max=%.4f maxRelDev=%.1f%%",
		st.N, st.Mean, st.Stddev, st.CoV, st.Min, st.P5, st.P50, st.P95, st.Max, st.MaxAbsRelDev*100)
}

// WriteCSV streams the series as (sec,value) rows.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sec", "value"}); err != nil {
		return err
	}
	for i, v := range s.Samples {
		rec := []string{
			strconv.FormatInt(int64(i)*s.PeriodSec, 10),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Typed CSV-loading errors, so importers (internal/calibration) can
// distinguish structural problems from I/O failures with errors.Is/As.
var (
	// ErrShortCSV marks input without a header plus at least one data row
	// (this includes empty files).
	ErrShortCSV = errors.New("trace: csv needs a header and at least one row")
	// ErrNotUniform marks sample times that do not increase by a constant
	// period.
	ErrNotUniform = errors.New("trace: csv not uniformly spaced")
)

// RowError locates a malformed CSV data row (1-based; the header is row 1).
type RowError struct {
	Row int
	Err error
}

func (e *RowError) Error() string { return fmt.Sprintf("trace: csv row %d: %v", e.Row, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RowError) Unwrap() error { return e.Err }

// ReadCSV parses a series written by WriteCSV (or any two-column CSV with a
// header, monotone uniformly spaced seconds, and finite float values).
// Malformed rows surface as *RowError; structural problems as ErrShortCSV or
// ErrNotUniform.
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // field-count errors become typed RowErrors below
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, ErrShortCSV
	}
	var samples []float64
	var times []int64
	for i, row := range rows[1:] {
		if len(row) != 2 {
			return nil, &RowError{Row: i + 2, Err: fmt.Errorf("%d fields, want 2", len(row))}
		}
		sec, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, &RowError{Row: i + 2, Err: err}
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, &RowError{Row: i + 2, Err: err}
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, &RowError{Row: i + 2, Err: fmt.Errorf("non-finite value %v", v)}
		}
		times = append(times, sec)
		samples = append(samples, v)
	}
	period := int64(60)
	if len(times) > 1 {
		period = times[1] - times[0]
		if period <= 0 {
			return nil, fmt.Errorf("%w: times must increase (row 3 step %d)", ErrNotUniform, period)
		}
		for i := 2; i < len(times); i++ {
			if times[i]-times[i-1] != period {
				return nil, fmt.Errorf("%w: row %d step %d, want %d",
					ErrNotUniform, i+2, times[i]-times[i-1], period)
			}
		}
	}
	return NewSeries(period, samples)
}
