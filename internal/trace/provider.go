package trace

import (
	"math/rand"
)

// Provider exposes the runtime infrastructure behaviour the monitoring
// framework observes (§4): per-VM normalized CPU coefficients and pairwise
// network latency/bandwidth. VMs are identified by the opaque trace ids the
// simulator assigns at acquisition.
type Provider interface {
	// CPUCoeff returns the multiplicative coefficient applied to a VM's
	// rated core speed at time sec: pi_runtime = coeff * pi_rated.
	CPUCoeff(vmTraceID int64, sec int64) float64
	// LatencySec returns the one-way network latency between two VMs in
	// seconds at time sec.
	LatencySec(aTraceID, bTraceID int64, sec int64) float64
	// BandwidthMbps returns the achievable bandwidth between two VMs in
	// megabits per second at time sec.
	BandwidthMbps(aTraceID, bTraceID int64, sec int64) float64
}

// Ideal is a Provider for a perfectly stable cloud: every VM delivers its
// rated performance, links deliver ratedMbps with fixed small latency. It is
// the "no infrastructure variability" scenario of Fig. 4.
type Ideal struct {
	// RatedMbps is the pairwise bandwidth (default 100, the paper's
	// deployment-time assumption).
	RatedMbps float64
	// FixedLatencySec is the constant pairwise latency (default 0.5 ms).
	FixedLatencySec float64
}

// NewIdeal returns an Ideal provider with the paper's defaults.
func NewIdeal() *Ideal {
	return &Ideal{RatedMbps: 100, FixedLatencySec: 0.0005}
}

// CPUCoeff implements Provider: always 1.
func (p *Ideal) CPUCoeff(int64, int64) float64 { return 1 }

// LatencySec implements Provider.
func (p *Ideal) LatencySec(int64, int64, int64) float64 { return p.FixedLatencySec }

// BandwidthMbps implements Provider.
func (p *Ideal) BandwidthMbps(int64, int64, int64) float64 { return p.RatedMbps }

// Replayed is a Provider that replays generated (or loaded) traces. A pool
// of base traces is generated once; each VM trace id deterministically maps
// to a (trace, window offset) pair, and each unordered VM pair maps to
// latency/bandwidth traces the same way. This mirrors §8.1: "we assign a
// random time period from the traces for each active VM to replay".
type Replayed struct {
	cpu []*Series
	lat []*Series
	bw  []*Series
	// seed decorrelates window assignment between Replayed instances.
	seed int64
}

// ReplayedConfig controls trace-pool construction.
type ReplayedConfig struct {
	// Pool sizes: how many distinct base traces to generate per kind.
	CPUTraces, NetTraces int
	// Samples per generated trace.
	Samples int
	// Generation parameters; zero values take the package defaults.
	CPU, Latency, Bandwidth GenConfig
	// Seed makes the whole provider deterministic.
	Seed int64
}

// NewReplayed generates the trace pools and returns the provider.
func NewReplayed(cfg ReplayedConfig) (*Replayed, error) {
	if cfg.CPUTraces <= 0 {
		cfg.CPUTraces = 8
	}
	if cfg.NetTraces <= 0 {
		cfg.NetTraces = 8
	}
	if cfg.Samples <= 0 {
		cfg.Samples = FourDays
	}
	if cfg.CPU.PeriodSec == 0 {
		cfg.CPU = DefaultCPUConfig()
	}
	if cfg.Latency.PeriodSec == 0 {
		cfg.Latency = DefaultLatencyConfig()
	}
	if cfg.Bandwidth.PeriodSec == 0 {
		cfg.Bandwidth = DefaultBandwidthConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Replayed{seed: cfg.Seed}
	for i := 0; i < cfg.CPUTraces; i++ {
		s, err := cfg.CPU.Generate(rng, cfg.Samples)
		if err != nil {
			return nil, err
		}
		p.cpu = append(p.cpu, s)
	}
	for i := 0; i < cfg.NetTraces; i++ {
		s, err := cfg.Latency.Generate(rng, cfg.Samples)
		if err != nil {
			return nil, err
		}
		p.lat = append(p.lat, s)
		b, err := cfg.Bandwidth.Generate(rng, cfg.Samples)
		if err != nil {
			return nil, err
		}
		p.bw = append(p.bw, b)
	}
	return p, nil
}

// MustReplayed is NewReplayed that panics on error.
func MustReplayed(cfg ReplayedConfig) *Replayed {
	p, err := NewReplayed(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// splitmix64 hashes an id into a well-mixed 64-bit value; used to map trace
// ids onto pool indices and window offsets deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pickAt maps the id to its (trace, window offset) pair and reads the window
// at time sec, without materializing a Window value — the replay path sits on
// the simulator's per-interval probe loops, which must not allocate.
func (p *Replayed) pickAt(id int64, pool []*Series, sec int64) float64 {
	h := splitmix64(uint64(id) ^ uint64(p.seed)*0x9e3779b97f4a7c15)
	s := pool[int(h%uint64(len(pool)))]
	offset := int64((h >> 20) % uint64(s.Duration()))
	return s.At(sec + offset)
}

func pairID(a, b int64) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(splitmix64(uint64(a)*0x100000001b3 ^ uint64(b)))
}

// CPUCoeff implements Provider.
func (p *Replayed) CPUCoeff(vmTraceID int64, sec int64) float64 {
	return p.pickAt(vmTraceID, p.cpu, sec)
}

// LatencySec implements Provider. Colocation shortcuts (lambda -> 0 for PEs
// on the same VM) are the simulator's job; the provider always reports the
// network path.
func (p *Replayed) LatencySec(a, b int64, sec int64) float64 {
	return p.pickAt(pairID(a, b), p.lat, sec)
}

// BandwidthMbps implements Provider.
func (p *Replayed) BandwidthMbps(a, b int64, sec int64) float64 {
	return p.pickAt(pairID(a, b), p.bw, sec)
}

// Scaled wraps a Provider and scales its CPU coefficient, for ablations
// (e.g. uniformly slower clouds). Latency/bandwidth pass through.
type Scaled struct {
	Base  Provider
	Scale float64
}

// CPUCoeff implements Provider.
func (s *Scaled) CPUCoeff(id int64, sec int64) float64 {
	return s.Base.CPUCoeff(id, sec) * s.Scale
}

// LatencySec implements Provider.
func (s *Scaled) LatencySec(a, b int64, sec int64) float64 {
	return s.Base.LatencySec(a, b, sec)
}

// BandwidthMbps implements Provider.
func (s *Scaled) BandwidthMbps(a, b int64, sec int64) float64 {
	return s.Base.BandwidthMbps(a, b, sec)
}
