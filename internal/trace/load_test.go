package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTraceCSV(t *testing.T, path string, samples []float64) {
	t.Helper()
	s, err := NewSeries(60, samples)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := s.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeTraceCSV(t, filepath.Join(dir, "vm_b.csv"), []float64{0.8, 0.9})
	writeTraceCSV(t, filepath.Join(dir, "vm_a.csv"), []float64{0.7, 0.6, 0.5})
	// Non-CSV files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	pool, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 2 {
		t.Fatalf("pool = %d", len(pool))
	}
	// Sorted by filename: vm_a first.
	if len(pool[0].Samples) != 3 || pool[0].Samples[0] != 0.7 {
		t.Fatalf("first = %+v", pool[0])
	}
	if pool[1].Samples[1] != 0.9 {
		t.Fatalf("second = %+v", pool[1])
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("/nonexistent/nowhere"); err == nil {
		t.Fatal("missing dir accepted")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Fatal("empty dir accepted")
	}
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "bad.csv"), []byte("not,a\ntrace,x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(bad); err == nil {
		t.Fatal("malformed csv accepted")
	}
}

func TestNewReplayedFromSeries(t *testing.T) {
	cpu, _ := NewSeries(60, []float64{0.5, 0.5, 0.5})
	p, err := NewReplayedFromSeries([]*Series{cpu}, nil, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every VM replays the single constant-0.5 CPU trace.
	for id := int64(0); id < 8; id++ {
		if got := p.CPUCoeff(id, 120); got != 0.5 {
			t.Fatalf("coeff = %v", got)
		}
	}
	// Latency/bandwidth fall back to generated pools.
	if p.BandwidthMbps(1, 2, 0) <= 0 {
		t.Fatal("fallback bandwidth missing")
	}
	// Validation errors.
	if _, err := NewReplayedFromSeries([]*Series{nil}, nil, nil, 3); err == nil {
		t.Fatal("nil series accepted")
	}
	neg, _ := NewSeries(60, []float64{1})
	neg.Samples[0] = -1
	if _, err := NewReplayedFromSeries([]*Series{neg}, nil, nil, 3); err == nil {
		t.Fatal("negative sample accepted")
	}
	zero := &Series{PeriodSec: 0, Samples: []float64{1}}
	if _, err := NewReplayedFromSeries(nil, []*Series{zero}, nil, 3); err == nil {
		t.Fatal("zero period accepted")
	}
	empty := &Series{PeriodSec: 60}
	if _, err := NewReplayedFromSeries(nil, nil, []*Series{empty}, 3); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestLoadedTracesDriveProvider(t *testing.T) {
	dir := t.TempDir()
	writeTraceCSV(t, filepath.Join(dir, "a.csv"), []float64{0.4, 0.4})
	pool, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewReplayedFromSeries(pool, nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CPUCoeff(5, 0); got != 0.4 {
		t.Fatalf("loaded coeff = %v", got)
	}
}
