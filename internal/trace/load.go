package trace

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// NewReplayedFromSeries builds a Replayed provider from already-loaded
// trace pools — the path for replaying *real* cloud measurements instead
// of the synthetic defaults. Any pool left nil falls back to generated
// traces with the package defaults (seeded by seed), so partial real data
// (e.g. CPU only) is usable.
func NewReplayedFromSeries(cpu, lat, bw []*Series, seed int64) (*Replayed, error) {
	base, err := NewReplayed(ReplayedConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	if len(cpu) > 0 {
		if err := validatePool("cpu", cpu); err != nil {
			return nil, err
		}
		base.cpu = cpu
	}
	if len(lat) > 0 {
		if err := validatePool("latency", lat); err != nil {
			return nil, err
		}
		base.lat = lat
	}
	if len(bw) > 0 {
		if err := validatePool("bandwidth", bw); err != nil {
			return nil, err
		}
		base.bw = bw
	}
	return base, nil
}

func validatePool(kind string, pool []*Series) error {
	for i, s := range pool {
		if s == nil || len(s.Samples) == 0 {
			return fmt.Errorf("trace: %s pool entry %d is empty", kind, i)
		}
		if s.PeriodSec <= 0 {
			return fmt.Errorf("trace: %s pool entry %d has period %d", kind, i, s.PeriodSec)
		}
		for j, v := range s.Samples {
			if v < 0 {
				return fmt.Errorf("trace: %s pool entry %d sample %d negative (%v)", kind, i, j, v)
			}
		}
	}
	return nil
}

// ErrNoCSVFiles marks a trace directory without any *.csv file.
var ErrNoCSVFiles = errors.New("trace: no .csv files")

// LoadDir reads every *.csv file under dir (sorted by name, so pools are
// deterministic) as one Series per file — the layout `tracegen -out`
// produces and the natural dump format for per-VM monitoring logs. Parse
// failures keep their typed cause (*RowError, ErrShortCSV, ErrNotUniform)
// wrapped under the offending file name.
func LoadDir(dir string) ([]*Series, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoCSVFiles, dir)
	}
	sort.Strings(names)
	pool := make([]*Series, 0, len(names))
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		s, err := ReadCSV(f)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", name, err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		pool = append(pool, s)
	}
	return pool, nil
}
