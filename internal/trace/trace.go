// Package trace models the performance variability of virtualized IaaS
// clouds (paper §2.5, §4, Figs. 2-3). The paper replays CPU and network
// traces collected from ~50 VMs on the FutureGrid private cloud over four
// days; those traces are not published, so this package generates synthetic
// equivalents — mean-reverting (Ornstein-Uhlenbeck) coefficient series with
// occasional regime shifts and a diurnal component — whose mean, deviation
// range and autocorrelation structure match the behaviour the paper reports.
// Real traces can be loaded from CSV instead; the consumers only see the
// Series type.
//
// Replay follows §8.1: each active VM is assigned a random window into a
// trace, and the coefficient multiplies the VM's rated performance to give
// its instantaneous runtime performance.
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Series is a periodically sampled coefficient or measurement series.
// Lookups past the end wrap around, so a finite trace replays indefinitely.
type Series struct {
	// PeriodSec is the sampling period in seconds (> 0).
	PeriodSec int64
	// Samples holds the sampled values.
	Samples []float64
}

// NewSeries validates and wraps the samples.
func NewSeries(periodSec int64, samples []float64) (*Series, error) {
	if periodSec <= 0 {
		return nil, fmt.Errorf("trace: period %d <= 0", periodSec)
	}
	if len(samples) == 0 {
		return nil, errors.New("trace: empty series")
	}
	return &Series{PeriodSec: periodSec, Samples: samples}, nil
}

// At returns the sample covering time sec (sample-and-hold), wrapping past
// the end of the trace. Negative times map to the first cycle.
func (s *Series) At(sec int64) float64 {
	idx := sec / s.PeriodSec
	if sec < 0 && sec%s.PeriodSec != 0 {
		idx-- // floor division so negative times map into the prior cycle
	}
	n := int64(len(s.Samples))
	idx %= n
	if idx < 0 {
		idx += n
	}
	return s.Samples[idx]
}

// Duration returns the trace's covered timespan in seconds.
func (s *Series) Duration() int64 {
	return s.PeriodSec * int64(len(s.Samples))
}

// Window returns a view of the series shifted by offset seconds: reading
// the window at t reads the underlying series at t+offset. Replaying
// different windows of one trace on different VMs (as §8.1 does) decorrelates
// their behaviour without generating new data.
func (s *Series) Window(offsetSec int64) *Window {
	return &Window{series: s, offset: offsetSec}
}

// Window is a shifted view into a Series.
type Window struct {
	series *Series
	offset int64
}

// At reads the windowed series at time sec.
func (w *Window) At(sec int64) float64 { return w.series.At(sec + w.offset) }

// GenConfig parameterizes synthetic coefficient generation. The process is
//
//	x(t+dt) = x(t) + theta*(mean - x(t))*dt + sigma*sqrt(dt)*N(0,1)
//
// with probability RegimeProb per sample of jumping to a new regime level
// (multi-tenant neighbours arriving/leaving, patch roll-outs — the causes
// §2.5 lists), plus a sinusoidal diurnal term, clamped to [Min, Max].
type GenConfig struct {
	// Mean is the long-run level the process reverts to.
	Mean float64
	// Theta is the mean-reversion rate per second.
	Theta float64
	// Sigma is the diffusion magnitude per sqrt(second).
	Sigma float64
	// RegimeProb is the per-sample probability of a regime shift.
	RegimeProb float64
	// RegimeAmp bounds the regime offset: shifts draw uniformly from
	// [-RegimeAmp, +RegimeAmp] around Mean.
	RegimeAmp float64
	// DiurnalAmp is the amplitude of a 24-hour sinusoidal component.
	DiurnalAmp float64
	// Min and Max clamp the output.
	Min, Max float64
	// PeriodSec is the sampling period of the generated series.
	PeriodSec int64
}

// Validate reports whether the configuration is self-consistent.
func (c GenConfig) Validate() error {
	if c.PeriodSec <= 0 {
		return fmt.Errorf("trace: gen period %d <= 0", c.PeriodSec)
	}
	if c.Min > c.Max {
		return fmt.Errorf("trace: gen min %v > max %v", c.Min, c.Max)
	}
	if c.Mean < c.Min || c.Mean > c.Max {
		return fmt.Errorf("trace: gen mean %v outside [%v, %v]", c.Mean, c.Min, c.Max)
	}
	if c.Theta < 0 || c.Sigma < 0 || c.RegimeProb < 0 || c.RegimeProb > 1 {
		return errors.New("trace: gen rates must be non-negative (regime prob in [0,1])")
	}
	return nil
}

// Generate produces n samples from the config using the given RNG.
func (c GenConfig) Generate(rng *rand.Rand, n int) (*Series, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: generate %d samples", n)
	}
	dt := float64(c.PeriodSec)
	sqrtDt := math.Sqrt(dt)
	x := c.Mean
	regime := 0.0
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if c.RegimeProb > 0 && rng.Float64() < c.RegimeProb {
			regime = (rng.Float64()*2 - 1) * c.RegimeAmp
		}
		target := c.Mean + regime
		x += c.Theta*(target-x)*dt + c.Sigma*sqrtDt*rng.NormFloat64()
		v := x
		if c.DiurnalAmp != 0 {
			t := float64(int64(i) * c.PeriodSec)
			v += c.DiurnalAmp * math.Sin(2*math.Pi*t/86400)
		}
		if v < c.Min {
			v = c.Min
		}
		if v > c.Max {
			v = c.Max
		}
		out[i] = v
	}
	return &Series{PeriodSec: c.PeriodSec, Samples: out}, nil
}

// DefaultCPUConfig returns generation parameters calibrated to Fig. 2: a CPU
// performance coefficient fluctuating around ~0.9 of rated with relative
// deviations up to roughly +-20% of its mean over multi-day horizons,
// sampled every minute.
func DefaultCPUConfig() GenConfig {
	return GenConfig{
		Mean:       0.82,
		Theta:      0.004,
		Sigma:      0.0045,
		RegimeProb: 0.003,
		RegimeAmp:  0.25,
		DiurnalAmp: 0.04,
		Min:        0.45,
		Max:        1.00,
		PeriodSec:  60,
	}
}

// DefaultLatencyConfig returns generation parameters for pairwise network
// latency in seconds, matching Fig. 3's millisecond-scale fluctuation with
// spikes: mean ~0.8 ms, excursions to several ms.
func DefaultLatencyConfig() GenConfig {
	return GenConfig{
		Mean:       0.0008,
		Theta:      0.01,
		Sigma:      0.00006,
		RegimeProb: 0.004,
		RegimeAmp:  0.002,
		DiurnalAmp: 0.0001,
		Min:        0.0002,
		Max:        0.01,
		PeriodSec:  60,
	}
}

// DefaultBandwidthConfig returns generation parameters for pairwise
// bandwidth in Mbps: rated 100 Mbps links whose achievable throughput
// fluctuates and occasionally collapses under data-center cross-traffic.
func DefaultBandwidthConfig() GenConfig {
	return GenConfig{
		Mean:       90,
		Theta:      0.005,
		Sigma:      0.35,
		RegimeProb: 0.003,
		RegimeAmp:  35,
		DiurnalAmp: 4,
		Min:        20,
		Max:        100,
		PeriodSec:  60,
	}
}

// FourDays is the number of one-minute samples in the paper's four-day
// trace window.
const FourDays = 4 * 24 * 60
