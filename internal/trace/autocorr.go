package trace

import "math"

// Autocovariance returns the sample autocovariance gamma(k) of the series
// for k = 0..maxLag, using the biased 1/n normalization (the convention that
// keeps the estimated sequence positive semi-definite). maxLag is clamped to
// len(Samples)-1.
func Autocovariance(s *Series, maxLag int) []float64 {
	n := len(s.Samples)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	mean := 0.0
	for _, v := range s.Samples {
		mean += v
	}
	mean /= float64(n)
	out := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		acc := 0.0
		for i := 0; i+k < n; i++ {
			acc += (s.Samples[i] - mean) * (s.Samples[i+k] - mean)
		}
		out[k] = acc / float64(n)
	}
	return out
}

// Autocorrelation returns the sample autocorrelation rho(k) = gamma(k)/gamma(0)
// for k = 0..maxLag. A constant series (gamma(0) == 0) yields all zeros past
// lag 0 (and rho(0) = 1 by convention).
func Autocorrelation(s *Series, maxLag int) []float64 {
	g := Autocovariance(s, maxLag)
	out := make([]float64, len(g))
	out[0] = 1
	if g[0] == 0 {
		return out
	}
	for k := 1; k < len(g); k++ {
		out[k] = g[k] / g[0]
	}
	return out
}

// ACDecomposition splits an autocorrelation function into a fast and a slow
// exponentially decaying component,
//
//	rho(k) ~= FastWeight*FastDecay^k + SlowWeight*SlowDecay^k,
//
// the signature of the package's generator: an Ornstein-Uhlenbeck diffusion
// (fast, per-sample decay 1-Theta*dt) riding on occasional regime shifts
// (slow, per-sample decay 1-RegimeProb). Weights are fractions of the total
// variance. SlowWeight == 0 means no slow component was detected.
//
// Identification assumes the two time scales are separated: a slow OU and
// persistent regimes are indistinguishable from second-order statistics
// alone. A fit that collapses onto a single exponential is reported in the
// fast slot (the more parsimonious generator — regimes without diffusion do
// not occur).
type ACDecomposition struct {
	FastWeight, FastDecay float64
	SlowWeight, SlowDecay float64
	// SSE is the sum of squared residuals of the fit over the lag sample.
	SSE float64
}

// DecomposeAC fits the two-component model to a sampled autocorrelation
// function (rho[0] must be 1; use Autocorrelation) by least squares over a
// deterministic coarse-to-fine grid of decay-rate pairs, solving the two
// component weights in closed form at each grid point. The lag axis is
// subsampled (dense early, sparse late) and truncated where the sample AC
// sinks into finite-sample noise, so the cost stays negligible for multi-day
// traces.
func DecomposeAC(rho []float64) ACDecomposition {
	d := ACDecomposition{FastWeight: 1}
	if len(rho) < 3 {
		if len(rho) == 2 {
			d.FastDecay = clamp01(rho[1])
		}
		return d
	}
	lags, vals := subsampleAC(rho)

	// Coarse grids: fast decay linear in [0, 0.99]; slow decay 1-q with q
	// log-spaced so multi-hour dwells are resolvable.
	fast := make([]float64, 0, 100)
	for f := 0.0; f < 0.995; f += 0.01 {
		fast = append(fast, f)
	}
	slow := decayGrid(1e-5, 0.5, 60)
	best := fitACGrid(lags, vals, fast, slow, ACDecomposition{SSE: math.Inf(1)})

	// Refine around the winner.
	fast = fast[:0]
	for f := best.FastDecay - 0.012; f <= best.FastDecay+0.012; f += 0.001 {
		if f >= 0 && f < 0.9995 {
			fast = append(fast, f)
		}
	}
	q := 1 - best.SlowDecay
	if q <= 0 || q > 1 {
		q = 0.01
	}
	slow = decayGrid(q/2.5, math.Min(q*2.5, 0.9), 40)
	best = fitACGrid(lags, vals, fast, slow, best)

	// Components whose timescales are not separated (within a factor ~3)
	// are one process that the fit split across two neighboring grid
	// points; merge them so a pure OU never reports a phantom regime.
	if best.SlowWeight > 0 && (1-best.SlowDecay) > (1-best.FastDecay)/3 {
		w := best.FastWeight + best.SlowWeight
		if w > 0 {
			best.FastDecay = (best.FastWeight*best.FastDecay + best.SlowWeight*best.SlowDecay) / w
		}
		best.FastWeight = w
		best.SlowWeight, best.SlowDecay = 0, 0
	}
	// A fit with a negligible fast share is a single exponential that
	// landed in the slow slot (e.g. a slow pure OU); report it as pure OU —
	// the identifiability caveat above.
	if best.SlowWeight > 0 && best.FastWeight < 0.05*best.SlowWeight {
		best.FastDecay = best.SlowDecay
		best.FastWeight = best.FastWeight + best.SlowWeight
		best.SlowWeight, best.SlowDecay = 0, 0
	}
	// A vanishing slow weight is no slow component at all.
	if best.SlowWeight < 1e-6 {
		best.SlowWeight, best.SlowDecay = 0, 0
	}
	return best
}

// subsampleAC picks the lag sample the fit runs on: every lag up to 32, then
// geometrically sparser, stopping once the AC has sunk below noise level for
// good (the deep tail of a sample ACF is bias-dominated and would drag the
// slow component down).
func subsampleAC(rho []float64) (lags []int, vals []float64) {
	l := len(rho) - 1
	// Find the last lag worth fitting: the first k from which rho stays
	// below 0.01 (never to return above 0.05).
	stop := l
	for k := 1; k <= l; k++ {
		if rho[k] < 0.01 {
			rest := rho[k:]
			high := false
			for _, v := range rest {
				if v > 0.05 {
					high = true
					break
				}
			}
			if !high {
				stop = k
				break
			}
		}
	}
	step := 1
	for k := 0; k <= stop; k += step {
		lags = append(lags, k)
		vals = append(vals, rho[k])
		switch {
		case k >= 256:
			step = 16
		case k >= 64:
			step = 4
		case k >= 32:
			step = 2
		}
	}
	return lags, vals
}

// decayGrid returns decays 1-q for nGrid values of q log-spaced in
// [qMin, qMax], slowest (largest decay) first.
func decayGrid(qMin, qMax float64, nGrid int) []float64 {
	if qMin <= 0 {
		qMin = 1e-6
	}
	if qMax <= qMin {
		qMax = qMin * 10
	}
	out := make([]float64, 0, nGrid)
	ratio := math.Pow(qMax/qMin, 1/float64(nGrid-1))
	q := qMin
	for i := 0; i < nGrid; i++ {
		out = append(out, 1-q)
		q *= ratio
	}
	return out
}

// fitACGrid scans every (fast, slow) decay pair with fast < slow, solving
// the non-negative component weights in closed form, and returns the best
// fit found (seeded with prior so refinement never regresses).
func fitACGrid(lags []int, vals []float64, fast, slow []float64, prior ACDecomposition) ACDecomposition {
	best := prior
	var yy float64
	for _, v := range vals {
		yy += v * v
	}
	for _, ps := range slow {
		for _, pf := range fast {
			if pf >= ps {
				continue
			}
			var sff, sss, sfs, sfy, ssy float64
			for i, k := range lags {
				fk := math.Pow(pf, float64(k))
				sk := math.Pow(ps, float64(k))
				sff += fk * fk
				sss += sk * sk
				sfs += fk * sk
				sfy += fk * vals[i]
				ssy += sk * vals[i]
			}
			a, b := solveWeights(sff, sss, sfs, sfy, ssy)
			sse := yy - 2*(a*sfy+b*ssy) + a*a*sff + b*b*sss + 2*a*b*sfs
			if sse < best.SSE {
				best = ACDecomposition{
					FastWeight: a, FastDecay: pf,
					SlowWeight: b, SlowDecay: ps,
					SSE: sse,
				}
			}
		}
	}
	return best
}

// solveWeights solves the 2x2 least-squares system for non-negative
// component weights, falling back to single-component fits when the
// unconstrained solution leaves the feasible region.
func solveWeights(sff, sss, sfs, sfy, ssy float64) (a, b float64) {
	det := sff*sss - sfs*sfs
	if det > 1e-12*sff*sss {
		a = (sfy*sss - ssy*sfs) / det
		b = (ssy*sff - sfy*sfs) / det
		if a >= 0 && b >= 0 {
			return a, b
		}
	}
	// Constrained edges: one of the components is absent.
	a, b = 0, 0
	if sff > 0 {
		a = math.Max(sfy/sff, 0)
	}
	if sss > 0 {
		b = math.Max(ssy/sss, 0)
	}
	// Pick the edge with the lower residual (larger explained sum).
	if a*sfy >= b*ssy {
		return a, 0
	}
	return 0, b
}

func clamp01(v float64) float64 { return clamp(v, 0, 1) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
