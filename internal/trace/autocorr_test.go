package trace

import (
	"math"
	"math/rand"
	"testing"
)

func TestAutocovarianceEdgeCases(t *testing.T) {
	// Constant series: gamma(0)=0, rho degenerates to [1, 0, 0, ...].
	s := &Series{PeriodSec: 60, Samples: []float64{3, 3, 3, 3, 3}}
	g := Autocovariance(s, 3)
	for k, v := range g {
		if v != 0 {
			t.Fatalf("gamma(%d) = %v for constant series, want 0", k, v)
		}
	}
	rho := Autocorrelation(s, 3)
	if rho[0] != 1 || rho[1] != 0 || rho[2] != 0 {
		t.Fatalf("rho = %v for constant series, want [1 0 0 0]", rho)
	}

	// maxLag clamps to n-1.
	s2 := &Series{PeriodSec: 60, Samples: []float64{1, 2}}
	if got := len(Autocovariance(s2, 99)); got != 2 {
		t.Fatalf("len(gamma) = %d with maxLag clamped, want 2", got)
	}
	if got := len(Autocovariance(s2, -1)); got != 1 {
		t.Fatalf("len(gamma) = %d with negative maxLag, want 1", got)
	}
}

// An AR(1) process x[t+1] = phi*x[t] + eps has rho(k) = phi^k; the sample
// autocorrelation of a long realization should track that closely at small
// lags.
func TestAutocorrelationAR1(t *testing.T) {
	const phi = 0.9
	rng := rand.New(rand.NewSource(42))
	n := 200000
	samples := make([]float64, n)
	x := 0.0
	for i := range samples {
		x = phi*x + rng.NormFloat64()
		samples[i] = x
	}
	s := &Series{PeriodSec: 60, Samples: samples}
	rho := Autocorrelation(s, 20)
	for k := 1; k <= 10; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(rho[k]-want) > 0.02 {
			t.Fatalf("rho(%d) = %.4f, want %.4f +- 0.02", k, rho[k], want)
		}
	}
}

// DecomposeAC on a noiseless two-exponential curve recovers both components
// to grid resolution.
func TestDecomposeACExact(t *testing.T) {
	const (
		aW, aD = 0.25, 0.70
		bW, bD = 0.75, 0.995
	)
	rho := make([]float64, 4000)
	for k := range rho {
		rho[k] = aW*math.Pow(aD, float64(k)) + bW*math.Pow(bD, float64(k))
	}
	d := DecomposeAC(rho)
	if d.SlowWeight == 0 {
		t.Fatalf("no slow component detected: %+v", d)
	}
	if math.Abs(d.FastDecay-aD) > 0.01 {
		t.Errorf("FastDecay = %.4f, want %.2f +- 0.01", d.FastDecay, aD)
	}
	if math.Abs(d.FastWeight-aW) > 0.05 {
		t.Errorf("FastWeight = %.4f, want %.2f +- 0.05", d.FastWeight, aW)
	}
	q, wantQ := 1-d.SlowDecay, 1-bD
	if q < wantQ*0.8 || q > wantQ*1.25 {
		t.Errorf("slow decay rate = %.5f, want %.5f within 25%%", q, wantQ)
	}
	if math.Abs(d.SlowWeight-bW) > 0.05 {
		t.Errorf("SlowWeight = %.4f, want %.2f +- 0.05", d.SlowWeight, bW)
	}
}

// A single exponential must not grow a phantom slow component.
func TestDecomposeACSingleExponential(t *testing.T) {
	for _, decay := range []float64{0.5, 0.9, 0.995} {
		rho := make([]float64, 3000)
		for k := range rho {
			rho[k] = math.Pow(decay, float64(k))
		}
		d := DecomposeAC(rho)
		if d.SlowWeight != 0 {
			t.Errorf("decay %.3f: phantom slow component %+v", decay, d)
		}
		if math.Abs(d.FastDecay-decay) > 0.01 {
			t.Errorf("decay %.3f: FastDecay = %.4f", decay, d.FastDecay)
		}
		if math.Abs(d.FastWeight-1) > 0.05 {
			t.Errorf("decay %.3f: FastWeight = %.4f, want ~1", decay, d.FastWeight)
		}
	}
}

func TestDecomposeACDegenerate(t *testing.T) {
	if d := DecomposeAC(nil); d.FastWeight != 1 || d.FastDecay != 0 {
		t.Errorf("nil rho: %+v", d)
	}
	if d := DecomposeAC([]float64{1}); d.FastWeight != 1 {
		t.Errorf("lag-0 only: %+v", d)
	}
	if d := DecomposeAC([]float64{1, 0.7}); math.Abs(d.FastDecay-0.7) > 1e-9 {
		t.Errorf("two-lag rho: %+v", d)
	}
}

// Characterize's temporal fields on generated series of known parameters.
// These are estimates from a single realization, so tolerances are looser
// than the pooled calibration fit (see internal/calibration).
func TestCharacterizeTemporal(t *testing.T) {
	// Pure OU: reversion recovered well, no regime dwell reported.
	ou := GenConfig{Mean: 0.8, Theta: 0.004, Sigma: 0.0045, Min: 0, Max: 2, PeriodSec: 60}
	s, err := ou.Generate(rand.New(rand.NewSource(3)), 40000)
	if err != nil {
		t.Fatal(err)
	}
	st := Characterize(s)
	if st.Lag1Corr < 0.7 || st.Lag1Corr > 0.82 {
		t.Errorf("pure OU Lag1Corr = %.4f, want ~0.76", st.Lag1Corr)
	}
	if st.MeanReversionPerSec < 0.004*0.7 || st.MeanReversionPerSec > 0.004*1.3 {
		t.Errorf("pure OU MeanReversionPerSec = %.5f, want 0.004 +- 30%%", st.MeanReversionPerSec)
	}
	if st.RegimeDwellSec != 0 {
		t.Errorf("pure OU RegimeDwellSec = %.0f, want 0", st.RegimeDwellSec)
	}

	// OU + regimes: dwell estimate lands within a factor ~2 of the true
	// 1/RegimeProb dwell.
	reg := ou
	reg.RegimeProb = 0.01
	reg.RegimeAmp = 0.2
	s, err = reg.Generate(rand.New(rand.NewSource(3)), 40000)
	if err != nil {
		t.Fatal(err)
	}
	st = Characterize(s)
	if st.RegimeDwellSec == 0 {
		t.Fatalf("regime series: no dwell detected (stats %+v)", st)
	}
	trueDwell := 60.0 / reg.RegimeProb
	if st.RegimeDwellSec < trueDwell/2.5 || st.RegimeDwellSec > trueDwell*2.5 {
		t.Errorf("RegimeDwellSec = %.0f, want %.0f within factor 2.5", st.RegimeDwellSec, trueDwell)
	}

	// Short or flat series leave the temporal fields zero without panicking.
	flat := &Series{PeriodSec: 60, Samples: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}}
	st = Characterize(flat)
	if st.Lag1Corr != 0 || st.MeanReversionPerSec != 0 || st.RegimeDwellSec != 0 {
		t.Errorf("flat series temporal stats nonzero: %+v", st)
	}
}
