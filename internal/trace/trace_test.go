package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAtWraps(t *testing.T) {
	s, err := NewSeries(60, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sec  int64
		want float64
	}{
		{0, 1}, {59, 1}, {60, 2}, {119, 2}, {120, 3}, {179, 3},
		{180, 1},  // wrap
		{360, 1},  // two full cycles
		{-1, 3},   // negative wraps backwards
		{-60, 3},  // still in last sample going back
		{-61, 2},  //
		{-180, 1}, // exactly one cycle back
	}
	for _, c := range cases {
		if got := s.At(c.sec); got != c.want {
			t.Fatalf("At(%d) = %v, want %v", c.sec, got, c.want)
		}
	}
	if s.Duration() != 180 {
		t.Fatalf("Duration = %d", s.Duration())
	}
}

func TestNewSeriesRejectsBadInput(t *testing.T) {
	if _, err := NewSeries(0, []float64{1}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewSeries(60, nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestWindowShifts(t *testing.T) {
	s, _ := NewSeries(10, []float64{1, 2, 3, 4})
	w := s.Window(20)
	if got := w.At(0); got != 3 {
		t.Fatalf("window At(0) = %v", got)
	}
	if got := w.At(10); got != 4 {
		t.Fatalf("window At(10) = %v", got)
	}
	if got := w.At(20); got != 1 { // wraps
		t.Fatalf("window At(20) = %v", got)
	}
}

func TestGenConfigValidate(t *testing.T) {
	good := DefaultCPUConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.PeriodSec = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero period accepted")
	}
	bad = good
	bad.Min, bad.Max = 1, 0
	if err := bad.Validate(); err == nil {
		t.Fatal("min > max accepted")
	}
	bad = good
	bad.Mean = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("mean outside bounds accepted")
	}
	bad = good
	bad.RegimeProb = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("regime prob > 1 accepted")
	}
}

func TestGenerateRespectssBounds(t *testing.T) {
	for name, cfg := range map[string]GenConfig{
		"cpu":       DefaultCPUConfig(),
		"latency":   DefaultLatencyConfig(),
		"bandwidth": DefaultBandwidthConfig(),
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			s, err := cfg.Generate(rng, FourDays)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Samples) != FourDays {
				t.Fatalf("n = %d", len(s.Samples))
			}
			for i, v := range s.Samples {
				if v < cfg.Min-1e-12 || v > cfg.Max+1e-12 {
					t.Fatalf("sample %d = %v outside [%v, %v]", i, v, cfg.Min, cfg.Max)
				}
			}
		})
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := DefaultCPUConfig()
	a, _ := cfg.Generate(rand.New(rand.NewSource(42)), 1000)
	b, _ := cfg.Generate(rand.New(rand.NewSource(42)), 1000)
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	c, _ := cfg.Generate(rand.New(rand.NewSource(43)), 1000)
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateProducesVariability(t *testing.T) {
	// The synthetic CPU trace must actually vary (the whole point of the
	// paper) — CoV well above zero but mean near the configured level.
	cfg := DefaultCPUConfig()
	s, _ := cfg.Generate(rand.New(rand.NewSource(1)), FourDays)
	st := Characterize(s)
	if math.Abs(st.Mean-cfg.Mean) > 0.08 {
		t.Fatalf("mean %v drifted from %v", st.Mean, cfg.Mean)
	}
	if st.CoV < 0.01 {
		t.Fatalf("CoV %v too small — no variability", st.CoV)
	}
	if st.MaxAbsRelDev < 0.05 {
		t.Fatalf("max relative deviation %v too small", st.MaxAbsRelDev)
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := DefaultCPUConfig()
	if _, err := cfg.Generate(rand.New(rand.NewSource(1)), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	cfg.PeriodSec = -1
	if _, err := cfg.Generate(rand.New(rand.NewSource(1)), 10); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCharacterizeKnownSeries(t *testing.T) {
	s, _ := NewSeries(1, []float64{1, 2, 3, 4, 5})
	st := Characterize(s)
	if st.Mean != 3 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if math.Abs(st.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("sd = %v", st.Stddev)
	}
	if st.Min != 1 || st.Max != 5 || st.P50 != 3 {
		t.Fatalf("min/max/med = %v/%v/%v", st.Min, st.Max, st.P50)
	}
	// Max deviation = |5-3|/3.
	if math.Abs(st.MaxAbsRelDev-2.0/3.0) > 1e-12 {
		t.Fatalf("maxRelDev = %v", st.MaxAbsRelDev)
	}
	if !strings.Contains(st.String(), "mean=3.0000") {
		t.Fatalf("String() = %q", st.String())
	}
}

func TestRelativeDeviationZeroMean(t *testing.T) {
	s, _ := NewSeries(1, []float64{2, 4})
	rd := RelativeDeviation(s)
	if math.Abs(rd.Samples[0]-(-1.0/3.0)) > 1e-12 || math.Abs(rd.Samples[1]-1.0/3.0) > 1e-12 {
		t.Fatalf("rel dev = %v", rd.Samples)
	}
}

func TestIdealProvider(t *testing.T) {
	p := NewIdeal()
	if p.CPUCoeff(1, 999) != 1 {
		t.Fatal("ideal CPU coeff != 1")
	}
	if p.BandwidthMbps(1, 2, 0) != 100 {
		t.Fatal("ideal bandwidth != 100")
	}
	if p.LatencySec(1, 2, 0) != 0.0005 {
		t.Fatal("ideal latency != 0.5ms")
	}
}

func TestReplayedDeterministicPerID(t *testing.T) {
	p := MustReplayed(ReplayedConfig{Seed: 5, Samples: 2000})
	a1 := p.CPUCoeff(17, 120)
	a2 := p.CPUCoeff(17, 120)
	if a1 != a2 {
		t.Fatal("same id+time gave different coefficients")
	}
	// A second provider with the same seed agrees.
	q := MustReplayed(ReplayedConfig{Seed: 5, Samples: 2000})
	if q.CPUCoeff(17, 120) != a1 {
		t.Fatal("same seed, different provider disagreed")
	}
	// Different seed (usually) disagrees somewhere.
	r := MustReplayed(ReplayedConfig{Seed: 6, Samples: 2000})
	diff := false
	for id := int64(0); id < 20 && !diff; id++ {
		if r.CPUCoeff(id, 120) != p.CPUCoeff(id, 120) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds never disagreed")
	}
}

func TestReplayedPairSymmetric(t *testing.T) {
	p := MustReplayed(ReplayedConfig{Seed: 9, Samples: 2000})
	for sec := int64(0); sec < 600; sec += 60 {
		if p.LatencySec(3, 8, sec) != p.LatencySec(8, 3, sec) {
			t.Fatal("latency not symmetric in VM pair")
		}
		if p.BandwidthMbps(3, 8, sec) != p.BandwidthMbps(8, 3, sec) {
			t.Fatal("bandwidth not symmetric in VM pair")
		}
	}
}

func TestReplayedBounds(t *testing.T) {
	p := MustReplayed(ReplayedConfig{Seed: 11, Samples: 3000})
	cpuCfg := DefaultCPUConfig()
	bwCfg := DefaultBandwidthConfig()
	latCfg := DefaultLatencyConfig()
	for id := int64(0); id < 10; id++ {
		for sec := int64(0); sec < 7200; sec += 600 {
			c := p.CPUCoeff(id, sec)
			if c < cpuCfg.Min || c > cpuCfg.Max {
				t.Fatalf("cpu coeff %v out of bounds", c)
			}
			b := p.BandwidthMbps(id, id+1, sec)
			if b < bwCfg.Min || b > bwCfg.Max {
				t.Fatalf("bw %v out of bounds", b)
			}
			l := p.LatencySec(id, id+1, sec)
			if l < latCfg.Min || l > latCfg.Max {
				t.Fatalf("lat %v out of bounds", l)
			}
		}
	}
}

func TestScaledProvider(t *testing.T) {
	s := &Scaled{Base: NewIdeal(), Scale: 0.5}
	if s.CPUCoeff(1, 0) != 0.5 {
		t.Fatal("scale not applied")
	}
	if s.BandwidthMbps(1, 2, 0) != 100 || s.LatencySec(1, 2, 0) != 0.0005 {
		t.Fatal("net should pass through")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s, _ := NewSeries(60, []float64{0.9, 0.85, 0.95, 1.0})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PeriodSec != 60 || len(got.Samples) != 4 {
		t.Fatalf("round trip: period %d n %d", got.PeriodSec, len(got.Samples))
	}
	for i := range s.Samples {
		if got.Samples[i] != s.Samples[i] {
			t.Fatalf("sample %d: %v != %v", i, got.Samples[i], s.Samples[i])
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if p := percentile(sorted, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := percentile(sorted, 1); p != 4 {
		t.Fatalf("p100 = %v", p)
	}
	if p := percentile(sorted, 0.5); p != 2.5 {
		t.Fatalf("p50 = %v", p)
	}
	if p := percentile([]float64{7}, 0.5); p != 7 {
		t.Fatalf("singleton = %v", p)
	}
	if !math.IsNaN(percentile(nil, 0.5)) {
		t.Fatal("empty should be NaN")
	}
}

func TestPropertySeriesAtAlwaysInSamples(t *testing.T) {
	f := func(seed int64, probe int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		samples := make([]float64, n)
		set := make(map[float64]bool, n)
		for i := range samples {
			samples[i] = rng.Float64()
			set[samples[i]] = true
		}
		s, err := NewSeries(1+int64(rng.Intn(100)), samples)
		if err != nil {
			return false
		}
		return set[s.At(probe)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCharacterizeBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Float64()*10 - 5
		}
		s, _ := NewSeries(1, samples)
		st := Characterize(s)
		if st.Min > st.P5+1e-9 || st.P5 > st.P50+1e-9 || st.P50 > st.P95+1e-9 || st.P95 > st.Max+1e-9 {
			return false
		}
		return st.Mean >= st.Min-1e-9 && st.Mean <= st.Max+1e-9 && st.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
