package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the trace parser never panics on arbitrary input and
// that accepted inputs round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("sec,value\n0,0.9\n60,0.8\n")
	f.Add("sec,value\n")
	f.Add("")
	f.Add("sec,value\n0,nan\n")
	f.Add("sec,value\n0,1\n0,1\n")
	f.Add("garbage")
	f.Add("sec,value\n-60,1\n0,2\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must produce a usable series.
		if s.PeriodSec <= 0 || len(s.Samples) == 0 {
			t.Fatalf("accepted series invalid: %+v", s)
		}
		_ = s.At(0)
		_ = s.At(-1)
		_ = s.At(s.Duration() * 3)
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back.Samples) != len(s.Samples) {
			t.Fatalf("round trip changed length %d -> %d", len(s.Samples), len(back.Samples))
		}
	})
}
