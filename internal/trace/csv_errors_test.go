package trace

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Table-driven coverage of every typed failure mode the CSV loader exposes
// to importers (internal/calibration keys on these with errors.Is/As).
func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		is    error // expected errors.Is target, nil to skip
		row   int   // expected *RowError row, 0 if none
	}{
		{name: "empty file", input: "", is: ErrShortCSV},
		{name: "header only", input: "sec,value\n", is: ErrShortCSV},
		{name: "too few fields", input: "sec,value\n60\n", row: 2},
		{name: "too many fields", input: "sec,value\n0,1,2\n", row: 2},
		{name: "bad sec", input: "sec,value\nxx,0.5\n", row: 2},
		{name: "bad value", input: "sec,value\n0,zz\n", row: 2},
		{name: "nan value", input: "sec,value\n0,nan\n", row: 2},
		{name: "inf value", input: "sec,value\n0,+Inf\n", row: 2},
		{name: "bad row deep", input: "sec,value\n0,0.5\n60,0.6\n120,oops\n", row: 4},
		{name: "times decrease", input: "sec,value\n60,0.5\n0,0.6\n", is: ErrNotUniform},
		{name: "times repeat", input: "sec,value\n60,0.5\n60,0.6\n", is: ErrNotUniform},
		{name: "mismatched period", input: "sec,value\n0,0.5\n60,0.6\n180,0.7\n", is: ErrNotUniform},
		{name: "ok", input: "sec,value\n0,0.5\n60,0.6\n120,0.7\n"},
		{name: "ok single row", input: "sec,value\n0,0.5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ReadCSV(strings.NewReader(tc.input))
			if tc.is == nil && tc.row == 0 {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if s == nil || len(s.Samples) == 0 {
					t.Fatalf("no series parsed")
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted malformed input %q", tc.input)
			}
			if tc.is != nil && !errors.Is(err, tc.is) {
				t.Errorf("error %v, want errors.Is(%v)", err, tc.is)
			}
			if tc.row != 0 {
				var re *RowError
				if !errors.As(err, &re) {
					t.Fatalf("error %v, want *RowError", err)
				}
				if re.Row != tc.row {
					t.Errorf("RowError.Row = %d, want %d", re.Row, tc.row)
				}
			}
		})
	}
}

func TestReadCSVPeriodAndValues(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("sec,value\n0,0.25\n30,0.5\n60,0.75\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.PeriodSec != 30 {
		t.Fatalf("PeriodSec = %d, want 30", s.PeriodSec)
	}
	want := []float64{0.25, 0.5, 0.75}
	for i, v := range want {
		if s.Samples[i] != v {
			t.Fatalf("Samples[%d] = %v, want %v", i, s.Samples[i], v)
		}
	}
	// Single data row falls back to the default 60s period.
	s, err = ReadCSV(strings.NewReader("sec,value\n0,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.PeriodSec != 60 {
		t.Fatalf("single-row PeriodSec = %d, want 60", s.PeriodSec)
	}
}

func TestLoadDirTypedErrors(t *testing.T) {
	// Empty directory surfaces ErrNoCSVFiles.
	empty := t.TempDir()
	_, err := LoadDir(empty)
	if !errors.Is(err, ErrNoCSVFiles) {
		t.Errorf("empty dir error = %v, want ErrNoCSVFiles", err)
	}

	// A malformed file keeps its typed cause and names the file.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "vm0.csv"), []byte("sec,value\n0,bogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadDir(bad)
	var re *RowError
	if !errors.As(err, &re) || re.Row != 2 {
		t.Errorf("malformed file error = %v, want *RowError row 2", err)
	}
	if err == nil || !strings.Contains(err.Error(), "vm0.csv") {
		t.Errorf("error %v does not name the file", err)
	}

	// An empty file surfaces ErrShortCSV.
	short := t.TempDir()
	if err := os.WriteFile(filepath.Join(short, "vm0.csv"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(short); !errors.Is(err, ErrShortCSV) {
		t.Errorf("empty file error = %v, want ErrShortCSV", err)
	}

	// Mismatched period surfaces ErrNotUniform.
	skew := t.TempDir()
	if err := os.WriteFile(filepath.Join(skew, "vm0.csv"), []byte("sec,value\n0,1\n60,1\n300,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(skew); !errors.Is(err, ErrNotUniform) {
		t.Errorf("skewed file error = %v, want ErrNotUniform", err)
	}
}
