package binpack

import (
	"math"
	"math/rand"
	"testing"
)

func TestExactTrivial(t *testing.T) {
	classes := awsClasses()
	bins, exact, err := Exact(nil, classes, 0)
	if err != nil || !exact || len(bins) != 0 {
		t.Fatalf("empty: %v %v %v", bins, exact, err)
	}
	bins, exact, err = Exact(items(0.5), classes, 0)
	if err != nil || !exact {
		t.Fatal(err)
	}
	if math.Abs(TotalCost(bins)-0.06) > 1e-12 {
		t.Fatalf("single small item cost = %v", TotalCost(bins))
	}
}

func TestExactBeatsGreedyCase(t *testing.T) {
	// Six items of size 1.9: BFD opens medium bins (one each, $0.12 x6 =
	// $0.72)? Optimal: xlarge holds 4 of them (7.6 <= 8) + medium... exact
	// must find cost <= every heuristic.
	classes := awsClasses()
	its := items(1.9, 1.9, 1.9, 1.9, 1.9, 1.9)
	exactBins, ok, err := Exact(its, classes, 0)
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if err := Validate(exactBins, its); err != nil {
		t.Fatal(err)
	}
	global, _ := PackGlobal(its, classes)
	bfd, _ := BestFitDecreasing(its, classes)
	if TotalCost(exactBins) > TotalCost(global)+1e-9 {
		t.Fatalf("exact %v worse than global %v", TotalCost(exactBins), TotalCost(global))
	}
	if TotalCost(exactBins) > TotalCost(bfd)+1e-9 {
		t.Fatalf("exact %v worse than BFD %v", TotalCost(exactBins), TotalCost(bfd))
	}
}

func TestExactOptimalOnKnownInstance(t *testing.T) {
	// Two items of 4.0: one xlarge ($0.48) beats two larges ($0.48)? Equal.
	// Use 4.0 + 3.9 + 0.1: xlarge (8.0) holds all -> $0.48 optimal.
	classes := awsClasses()
	its := items(4.0, 3.9, 0.1)
	bins, ok, err := Exact(its, classes, 0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if math.Abs(TotalCost(bins)-0.48) > 1e-9 {
		t.Fatalf("cost = %v, want 0.48", TotalCost(bins))
	}
}

func TestExactRejectsOversize(t *testing.T) {
	if _, _, err := Exact(items(9), awsClasses(), 0); err == nil {
		t.Fatal("oversize accepted")
	}
	if _, _, err := Exact(items(-1), awsClasses(), 0); err == nil {
		t.Fatal("negative accepted")
	}
	if _, _, err := Exact(items(1), nil, 0); err == nil {
		t.Fatal("no classes accepted")
	}
}

func TestExactBudgetExhaustionStillValid(t *testing.T) {
	classes := awsClasses()
	rng := rand.New(rand.NewSource(5))
	its := make([]Item, 14)
	for i := range its {
		its[i] = Item{ID: i, Size: 0.3 + rng.Float64()*3}
	}
	bins, exact, err := Exact(its, classes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("tiny budget claimed exact")
	}
	if err := Validate(bins, its); err != nil {
		t.Fatal(err)
	}
}

func TestExactNeverWorseThanGlobalProperty(t *testing.T) {
	classes := awsClasses()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		its := make([]Item, n)
		for i := range its {
			its[i] = Item{ID: i, Size: 0.1 + rng.Float64()*7.8}
		}
		exactBins, _, err := Exact(its, classes, 200000)
		if err != nil {
			t.Fatal(err)
		}
		global, err := PackGlobal(its, classes)
		if err != nil {
			t.Fatal(err)
		}
		if TotalCost(exactBins) > TotalCost(global)+1e-9 {
			t.Fatalf("trial %d: exact %v > global %v", trial, TotalCost(exactBins), TotalCost(global))
		}
		if err := Validate(exactBins, its); err != nil {
			t.Fatal(err)
		}
	}
}
