package binpack

import (
	"errors"
	"fmt"
	"sort"
)

// Exact solves variable-sized bin packing to optimality by branch and bound:
// items are placed largest-first into every open bin or a fresh bin of every
// class, pruning branches whose cost cannot beat the incumbent (lower bound:
// current cost + remaining size priced at the best capacity-per-dollar
// class). It is exponential in the worst case and intended for the paper's
// "static brute-force optimal deployment for small graphs" only; nodeBudget
// bounds the search (0 means DefaultExactBudget) and the best solution found
// within budget is returned with exact=false when the budget was exhausted.
func Exact(items []Item, classes []*BinClass, nodeBudget int) (bins []*Bin, exact bool, err error) {
	if err := validateClasses(classes); err != nil {
		return nil, false, err
	}
	maxCap := maxCapacity(classes)
	total := 0.0
	for _, it := range items {
		if it.Size < 0 {
			return nil, false, fmt.Errorf("binpack: item %d has negative size", it.ID)
		}
		if it.Size > maxCap {
			return nil, false, fmt.Errorf("binpack: item %d (size %v) exceeds largest class %v", it.ID, it.Size, maxCap)
		}
		total += it.Size
	}
	if nodeBudget <= 0 {
		nodeBudget = DefaultExactBudget
	}
	if len(items) == 0 {
		return nil, true, nil
	}

	sorted := append([]Item(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Size > sorted[j].Size })

	// Seed the incumbent with the global heuristic so pruning bites early.
	seed, err := PackGlobal(sorted, classes)
	if err != nil {
		return nil, false, err
	}
	best := cloneBins(seed)
	bestCost := TotalCost(best)

	// bestRatio: capacity per dollar, for the LP lower bound.
	bestRatio := 0.0
	for _, c := range classes {
		if r := c.Capacity / c.Cost; r > bestRatio {
			bestRatio = r
		}
	}

	// Distinct classes sorted by cost ascending: cheaper bins first tends
	// to find good incumbents sooner.
	order := append([]*BinClass(nil), classes...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Cost < order[j].Cost })

	remaining := make([]float64, len(sorted)+1)
	for i := len(sorted) - 1; i >= 0; i-- {
		remaining[i] = remaining[i+1] + sorted[i].Size
	}

	nodes := 0
	exhausted := false
	var cur []*Bin
	var curCost float64

	var place func(idx int)
	place = func(idx int) {
		if nodes >= nodeBudget {
			exhausted = true
			return
		}
		nodes++
		if curCost+remaining[idx]/bestRatio >= bestCost-1e-12 {
			return // cannot beat the incumbent
		}
		if idx == len(sorted) {
			best = cloneBins(cur)
			bestCost = curCost
			return
		}
		it := sorted[idx]
		// Try existing bins; skip symmetric duplicates (same class, same
		// free space).
		type key struct {
			name string
			free float64
		}
		tried := map[key]bool{}
		for _, b := range cur {
			k := key{b.Class.Name, b.Free()}
			if b.Free() < it.Size || tried[k] {
				continue
			}
			tried[k] = true
			b.add(it)
			place(idx + 1)
			b.remove(len(b.Items) - 1)
			if exhausted {
				return
			}
		}
		// Try opening one new bin per class that fits.
		for _, c := range order {
			if c.Capacity < it.Size {
				continue
			}
			nb := &Bin{Class: c}
			nb.add(it)
			cur = append(cur, nb)
			curCost += c.Cost
			place(idx + 1)
			curCost -= c.Cost
			cur = cur[:len(cur)-1]
			if exhausted {
				return
			}
		}
	}
	place(0)
	if err := Validate(best, items); err != nil {
		return nil, false, fmt.Errorf("binpack: exact produced invalid packing: %w", err)
	}
	return best, !exhausted, nil
}

// DefaultExactBudget bounds Exact's search when the caller passes 0.
const DefaultExactBudget = 2_000_000

func cloneBins(bins []*Bin) []*Bin {
	out := make([]*Bin, len(bins))
	for i, b := range bins {
		nb := &Bin{Class: b.Class, used: b.used}
		nb.Items = append([]Item(nil), b.Items...)
		out[i] = nb
	}
	return out
}

// ErrInfeasible reports an instance no packing can satisfy.
var ErrInfeasible = errors.New("binpack: infeasible")
