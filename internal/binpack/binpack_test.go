package binpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func awsClasses() []*BinClass {
	return []*BinClass{
		{Name: "small", Capacity: 1, Cost: 0.06},
		{Name: "medium", Capacity: 2, Cost: 0.12},
		{Name: "large", Capacity: 4, Cost: 0.24},
		{Name: "xlarge", Capacity: 8, Cost: 0.48},
	}
}

func items(sizes ...float64) []Item {
	out := make([]Item, len(sizes))
	for i, s := range sizes {
		out[i] = Item{ID: i, Size: s}
	}
	return out
}

func TestFirstFitDecreasingLargest(t *testing.T) {
	its := items(5, 4, 3, 2, 1)
	bins, err := FirstFitDecreasingLargest(its, awsClasses())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(bins, its); err != nil {
		t.Fatal(err)
	}
	for _, b := range bins {
		if b.Class.Name != "xlarge" {
			t.Fatalf("FFD-largest opened a %q bin", b.Class.Name)
		}
	}
	// 15 units into 8-unit bins: at least 2 bins; FFD gives 5+3 / 4+2+1 = 2.
	if len(bins) != 2 {
		t.Fatalf("bins = %d, want 2", len(bins))
	}
}

func TestFirstFitRejectsOversize(t *testing.T) {
	if _, err := FirstFitDecreasingLargest(items(9), awsClasses()); err == nil {
		t.Fatal("oversize item accepted")
	}
	if _, err := FirstFitDecreasingLargest(items(-1), awsClasses()); err == nil {
		t.Fatal("negative item accepted")
	}
	if _, err := FirstFitDecreasingLargest(items(1), nil); err == nil {
		t.Fatal("no classes accepted")
	}
}

func TestBestFitDecreasing(t *testing.T) {
	its := items(0.6, 0.5, 1.5)
	bins, err := BestFitDecreasing(its, awsClasses())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(bins, its); err != nil {
		t.Fatal(err)
	}
	// 1.5 opens a medium (cheapest fitting); 0.6 could fit in the
	// medium's remaining 0.5? No (0.6 > 0.5) so it opens a small (cap 1);
	// 0.5 best-fits into the medium's 0.5 free.
	if TotalCost(bins) > 0.12+0.06+1e-9 {
		t.Fatalf("cost = %v", TotalCost(bins))
	}
}

func TestBestFitErrors(t *testing.T) {
	if _, err := BestFitDecreasing(items(100), awsClasses()); err == nil {
		t.Fatal("oversize accepted")
	}
	if _, err := BestFitDecreasing(items(-0.1), awsClasses()); err == nil {
		t.Fatal("negative accepted")
	}
	bad := []*BinClass{{Name: "zero", Capacity: 0, Cost: 1}}
	if _, err := BestFitDecreasing(items(0.5), bad); err == nil {
		t.Fatal("zero-capacity class accepted")
	}
}

func TestDowngradeBins(t *testing.T) {
	classes := awsClasses()
	its := items(0.7)
	bins, _ := FirstFitDecreasingLargest(its, classes) // opens an xlarge
	if bins[0].Class.Name != "xlarge" {
		t.Fatal("setup: expected xlarge")
	}
	if err := DowngradeBins(bins, classes); err != nil {
		t.Fatal(err)
	}
	if bins[0].Class.Name != "small" {
		t.Fatalf("downgraded to %q, want small", bins[0].Class.Name)
	}
	if err := Validate(bins, its); err != nil {
		t.Fatal(err)
	}
}

func TestDowngradeNeverUpgradesCost(t *testing.T) {
	classes := awsClasses()
	its := items(3.5, 2.2, 0.9, 0.4, 1.1)
	bins, _ := FirstFitDecreasingLargest(its, classes)
	before := TotalCost(bins)
	if err := DowngradeBins(bins, classes); err != nil {
		t.Fatal(err)
	}
	if TotalCost(bins) > before+1e-12 {
		t.Fatalf("downgrade increased cost: %v -> %v", before, TotalCost(bins))
	}
}

func TestIterativeRepackDropsEmptyableBin(t *testing.T) {
	classes := awsClasses()
	// Three xlarge bins: two half full, one with a small item that fits in
	// either — repack must eliminate at least one bin.
	b1 := &Bin{Class: classes[3]}
	b1.add(Item{ID: 0, Size: 4})
	b2 := &Bin{Class: classes[3]}
	b2.add(Item{ID: 1, Size: 4})
	b3 := &Bin{Class: classes[3]}
	b3.add(Item{ID: 2, Size: 2})
	bins := IterativeRepack([]*Bin{b1, b2, b3})
	if len(bins) != 2 {
		t.Fatalf("bins after repack = %d, want 2", len(bins))
	}
	if err := Validate(bins, items(4, 4, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestIterativeRepackKeepsTightPacking(t *testing.T) {
	classes := awsClasses()
	b1 := &Bin{Class: classes[3]}
	b1.add(Item{ID: 0, Size: 8})
	b2 := &Bin{Class: classes[3]}
	b2.add(Item{ID: 1, Size: 8})
	bins := IterativeRepack([]*Bin{b1, b2})
	if len(bins) != 2 {
		t.Fatalf("tight packing changed: %d bins", len(bins))
	}
}

func TestPackGlobalBeatsOrMatchesFFD(t *testing.T) {
	classes := awsClasses()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		its := make([]Item, n)
		for i := range its {
			its[i] = Item{ID: i, Size: 0.1 + rng.Float64()*7.9}
		}
		ffd, err := FirstFitDecreasingLargest(its, classes)
		if err != nil {
			t.Fatal(err)
		}
		global, err := PackGlobal(its, classes)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(global, its); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if TotalCost(global) > TotalCost(ffd)+1e-9 {
			t.Fatalf("trial %d: global %v costlier than FFD %v", trial, TotalCost(global), TotalCost(ffd))
		}
	}
}

func TestTotalWaste(t *testing.T) {
	classes := awsClasses()
	b := &Bin{Class: classes[3]}
	b.add(Item{ID: 0, Size: 3})
	if w := TotalWaste([]*Bin{b}); w != 5 {
		t.Fatalf("waste = %v", w)
	}
}

func TestValidateCatchesOverflowAndLoss(t *testing.T) {
	classes := awsClasses()
	b := &Bin{Class: classes[0]} // cap 1
	b.Items = []Item{{ID: 0, Size: 2}}
	b.used = 2
	if err := Validate([]*Bin{b}, items(2)); err == nil {
		t.Fatal("overflow not caught")
	}
	ok := &Bin{Class: classes[3]}
	ok.add(Item{ID: 0, Size: 1})
	if err := Validate([]*Bin{ok}, items(1, 1)); err == nil {
		t.Fatal("missing item not caught")
	}
	if err := Validate([]*Bin{ok}, nil); err == nil {
		t.Fatal("extra item not caught")
	}
}

func TestPropertyPackingsAreValid(t *testing.T) {
	classes := awsClasses()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25)
		its := make([]Item, n)
		for i := range its {
			its[i] = Item{ID: i, Size: 0.05 + rng.Float64()*7.9}
		}
		for _, pack := range []func([]Item, []*BinClass) ([]*Bin, error){
			FirstFitDecreasingLargest, BestFitDecreasing, PackGlobal,
		} {
			bins, err := pack(its, classes)
			if err != nil {
				return false
			}
			if err := Validate(bins, its); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCostLowerBound(t *testing.T) {
	// Any valid packing must cost at least the LP bound: total size divided
	// by the best capacity-per-cost ratio.
	classes := awsClasses()
	bestRatio := 0.0 // capacity per dollar
	for _, c := range classes {
		if r := c.Capacity / c.Cost; r > bestRatio {
			bestRatio = r
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		its := make([]Item, n)
		total := 0.0
		for i := range its {
			its[i] = Item{ID: i, Size: 0.05 + rng.Float64()*7.9}
			total += its[i].Size
		}
		bins, err := PackGlobal(its, classes)
		if err != nil {
			return false
		}
		return TotalCost(bins)+1e-9 >= total/bestRatio
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
