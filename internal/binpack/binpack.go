// Package binpack implements variable-sized bin packing (VBP) heuristics.
// The paper (§7) reduces its resource-allocation subproblem to VBP — given
// objects (PE core demands) and an infinite supply of bins of different
// sizes and prices (VM classes), minimize the total cost of bins used — and
// builds its deployment heuristics on top of a generic VBP procedure plus
// "iterative repacking" (its reference [21]). This package provides those
// building blocks in a reusable, independently tested form.
package binpack

import (
	"errors"
	"fmt"
	"sort"
)

// Item is an object to pack.
type Item struct {
	// ID identifies the item to the caller (e.g. a PE instance).
	ID int
	// Size is the item's demand in the same unit as bin capacity
	// (standard-core-seconds per second for PE packing).
	Size float64
}

// BinClass is a bin size with a price — a VM class viewed by capacity.
type BinClass struct {
	Name     string
	Capacity float64
	Cost     float64
}

// Bin is an opened bin of some class holding items.
type Bin struct {
	Class *BinClass
	Items []Item
	used  float64
}

// Used returns the occupied capacity.
func (b *Bin) Used() float64 { return b.used }

// Free returns the remaining capacity.
func (b *Bin) Free() float64 { return b.Class.Capacity - b.used }

// add places the item, which must fit.
func (b *Bin) add(it Item) {
	b.Items = append(b.Items, it)
	b.used += it.Size
}

// remove deletes the item at index i.
func (b *Bin) remove(i int) Item {
	it := b.Items[i]
	b.used -= it.Size
	b.Items = append(b.Items[:i], b.Items[i+1:]...)
	return it
}

// TotalCost sums the cost of all opened bins.
func TotalCost(bins []*Bin) float64 {
	c := 0.0
	for _, b := range bins {
		c += b.Class.Cost
	}
	return c
}

// TotalWaste sums the free capacity across bins — the quantity iterative
// repacking minimizes.
func TotalWaste(bins []*Bin) float64 {
	w := 0.0
	for _, b := range bins {
		w += b.Free()
	}
	return w
}

// Validate checks a packing: items fit their bins and the multiset of item
// IDs equals want (each packed exactly once).
func Validate(bins []*Bin, want []Item) error {
	const eps = 1e-9
	seen := map[int]int{}
	for _, b := range bins {
		sum := 0.0
		for _, it := range b.Items {
			sum += it.Size
			seen[it.ID]++
		}
		if sum > b.Class.Capacity+eps {
			return fmt.Errorf("binpack: bin %q overflows: %v > %v", b.Class.Name, sum, b.Class.Capacity)
		}
	}
	wantCount := map[int]int{}
	for _, it := range want {
		wantCount[it.ID]++
	}
	for id, n := range wantCount {
		if seen[id] != n {
			return fmt.Errorf("binpack: item %d packed %d times, want %d", id, seen[id], n)
		}
	}
	for id, n := range seen {
		if wantCount[id] != n {
			return fmt.Errorf("binpack: unexpected item %d packed %d times", id, n)
		}
	}
	return nil
}

func validateClasses(classes []*BinClass) error {
	if len(classes) == 0 {
		return errors.New("binpack: no bin classes")
	}
	for _, c := range classes {
		if c.Capacity <= 0 || c.Cost <= 0 {
			return fmt.Errorf("binpack: class %q capacity/cost must be positive", c.Name)
		}
	}
	return nil
}

func maxCapacity(classes []*BinClass) float64 {
	m := 0.0
	for _, c := range classes {
		if c.Capacity > m {
			m = c.Capacity
		}
	}
	return m
}

// FirstFitDecreasingLargest packs all items into bins of the single largest
// class using first-fit decreasing. This is Alg. 1's base step: "allocate it
// to the largest VM resource class, either available or newly instantiated".
// Items larger than the largest class are rejected.
func FirstFitDecreasingLargest(items []Item, classes []*BinClass) ([]*Bin, error) {
	if err := validateClasses(classes); err != nil {
		return nil, err
	}
	largest := classes[0]
	for _, c := range classes[1:] {
		if c.Capacity > largest.Capacity ||
			(c.Capacity == largest.Capacity && c.Cost < largest.Cost) {
			largest = c
		}
	}
	sorted := append([]Item(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Size > sorted[j].Size })
	var bins []*Bin
	for _, it := range sorted {
		if it.Size < 0 {
			return nil, fmt.Errorf("binpack: item %d has negative size", it.ID)
		}
		if it.Size > largest.Capacity {
			return nil, fmt.Errorf("binpack: item %d (size %v) exceeds largest class %v", it.ID, it.Size, largest.Capacity)
		}
		placed := false
		for _, b := range bins {
			if b.Free() >= it.Size {
				b.add(it)
				placed = true
				break
			}
		}
		if !placed {
			nb := &Bin{Class: largest}
			nb.add(it)
			bins = append(bins, nb)
		}
	}
	return bins, nil
}

// BestFitDecreasing packs items across all classes: each item (in
// decreasing size order) goes to the open bin with the least sufficient
// free space; when none fits, a new bin of the cheapest class that holds
// the item is opened.
func BestFitDecreasing(items []Item, classes []*BinClass) ([]*Bin, error) {
	if err := validateClasses(classes); err != nil {
		return nil, err
	}
	maxCap := maxCapacity(classes)
	sorted := append([]Item(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Size > sorted[j].Size })
	var bins []*Bin
	for _, it := range sorted {
		if it.Size < 0 {
			return nil, fmt.Errorf("binpack: item %d has negative size", it.ID)
		}
		if it.Size > maxCap {
			return nil, fmt.Errorf("binpack: item %d (size %v) exceeds largest class %v", it.ID, it.Size, maxCap)
		}
		var best *Bin
		for _, b := range bins {
			if b.Free() >= it.Size && (best == nil || b.Free() < best.Free()) {
				best = b
			}
		}
		if best != nil {
			best.add(it)
			continue
		}
		var cheapest *BinClass
		for _, c := range classes {
			if c.Capacity >= it.Size && (cheapest == nil || c.Cost < cheapest.Cost) {
				cheapest = c
			}
		}
		nb := &Bin{Class: cheapest}
		nb.add(it)
		bins = append(bins, nb)
	}
	return bins, nil
}

// DowngradeBins replaces each bin's class with the cheapest class whose
// capacity covers the bin's load — the RepackPE move of the global strategy
// (move to the "smallest VM big enough for required core-secs"). Item
// placement is untouched.
func DowngradeBins(bins []*Bin, classes []*BinClass) error {
	if err := validateClasses(classes); err != nil {
		return err
	}
	for _, b := range bins {
		var best *BinClass
		for _, c := range classes {
			if c.Capacity+1e-12 >= b.used && (best == nil || c.Cost < best.Cost ||
				(c.Cost == best.Cost && c.Capacity < best.Capacity)) {
				best = c
			}
		}
		if best == nil {
			return fmt.Errorf("binpack: no class holds load %v", b.used)
		}
		if best.Cost < b.Class.Cost {
			b.Class = best
		}
	}
	return nil
}

// IterativeRepack repeatedly tries to empty the least-utilized bin by
// redistributing its items into the free space of the other bins
// (largest-item-first, best-fit); a bin that empties is dropped. The loop
// ends when no bin can be emptied. This is the paper's RepackFreeVMs step.
// It returns the improved packing; the input slice is consumed.
func IterativeRepack(bins []*Bin) []*Bin {
	for {
		// Pick the non-empty bin with the lowest utilization.
		victim := -1
		for i, b := range bins {
			if len(b.Items) == 0 {
				continue
			}
			if victim < 0 || b.used/b.Class.Capacity < bins[victim].used/bins[victim].Class.Capacity {
				victim = i
			}
		}
		if victim < 0 {
			break
		}
		v := bins[victim]
		// Check feasibility: can every item fit somewhere else?
		moves, ok := planEvacuation(v, bins, victim)
		if !ok {
			// Try the next-least-utilized victims before giving up.
			improved := false
			order := binsByUtilization(bins)
			for _, idx := range order {
				if idx == victim || len(bins[idx].Items) == 0 {
					continue
				}
				if mv, ok2 := planEvacuation(bins[idx], bins, idx); ok2 {
					applyEvacuation(bins[idx], mv)
					bins = append(bins[:idx], bins[idx+1:]...)
					improved = true
					break
				}
			}
			if !improved {
				break
			}
			continue
		}
		applyEvacuation(v, moves)
		bins = append(bins[:victim], bins[victim+1:]...)
	}
	return bins
}

// binsByUtilization returns bin indices sorted by ascending utilization.
func binsByUtilization(bins []*Bin) []int {
	idx := make([]int, len(bins))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ba, bb := bins[idx[a]], bins[idx[b]]
		return ba.used/ba.Class.Capacity < bb.used/bb.Class.Capacity
	})
	return idx
}

// planEvacuation decides, without mutating anything, destination bins for
// every item of victim using best-fit on the other bins' free space.
func planEvacuation(victim *Bin, bins []*Bin, victimIdx int) (map[int]*Bin, bool) {
	free := make(map[*Bin]float64, len(bins))
	for i, b := range bins {
		if i == victimIdx {
			continue
		}
		free[b] = b.Free()
	}
	items := append([]Item(nil), victim.Items...)
	sort.SliceStable(items, func(i, j int) bool { return items[i].Size > items[j].Size })
	moves := make(map[int]*Bin, len(items))
	for _, it := range items {
		var best *Bin
		for b, f := range free {
			if f >= it.Size && (best == nil || f < free[best]) {
				best = b
			}
		}
		if best == nil {
			return nil, false
		}
		free[best] -= it.Size
		moves[it.ID] = best
	}
	return moves, true
}

// applyEvacuation moves every item of victim to its planned destination.
func applyEvacuation(victim *Bin, moves map[int]*Bin) {
	for len(victim.Items) > 0 {
		it := victim.remove(len(victim.Items) - 1)
		moves[it.ID].add(it)
	}
}

// PackGlobal runs the paper's full global packing pipeline: first-fit
// decreasing into largest-class bins, downgrade each bin to its best fit,
// then iterative repacking, then a final downgrade pass (repacking may have
// freed capacity).
func PackGlobal(items []Item, classes []*BinClass) ([]*Bin, error) {
	bins, err := FirstFitDecreasingLargest(items, classes)
	if err != nil {
		return nil, err
	}
	if err := DowngradeBins(bins, classes); err != nil {
		return nil, err
	}
	bins = IterativeRepack(bins)
	if err := DowngradeBins(bins, classes); err != nil {
		return nil, err
	}
	return bins, nil
}
