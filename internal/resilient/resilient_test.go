package resilient

import (
	"strings"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
)

var _ sim.Scheduler = (*Scheduler)(nil)

// scripted adapts bare functions to sim.Scheduler for middleware tests.
type scripted struct {
	deploy func(v *sim.View, act sim.Control) error
	adapt  func(v *sim.View, act sim.Control) error
}

func (s *scripted) Name() string { return "scripted" }
func (s *scripted) Deploy(v *sim.View, act sim.Control) error {
	if s.deploy == nil {
		return nil
	}
	return s.deploy(v, act)
}
func (s *scripted) Adapt(v *sim.View, act sim.Control) error {
	if s.adapt == nil {
		return nil
	}
	return s.adapt(v, act)
}

func smallEngine(t *testing.T, cf *sim.ControlFaults, horizon int64) *sim.Engine {
	t.Helper()
	g := dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("only", 1, 0.1, 1)).
		AddPE("work",
			dataflow.Alt("deep", 1.0, 1.4, 1),
			dataflow.Alt("fast", 0.8, 0.9, 1)).
		Connect("src", "work").
		MustBuild()
	prof, err := rates.NewConstant(2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Graph:         g,
		Menu:          cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:        map[int]rates.Profile{0: prof},
		HorizonSec:    horizon,
		ControlFaults: cf,
		Audit:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBreakerOpensThenFailsFast(t *testing.T) {
	cf := &sim.ControlFaults{Acquisition: &sim.AcquisitionFaults{FailProb: 1}, Seed: 2}
	e := smallEngine(t, cf, 3600)
	nClasses := len(cloud.AWS2013Classes())
	var rs *Scheduler
	var firstErr, secondErr error
	var attemptsAfterFirst int
	inner := &scripted{deploy: func(v *sim.View, act sim.Control) error {
		_, firstErr = act.AcquireVM("m1.small")
		attemptsAfterFirst = e.AcquireFailures()
		_, secondErr = act.AcquireVM("m1.small")
		return nil
	}}
	rs = Wrap(inner, Config{BreakerThreshold: 3, MaxRetries: 3})
	if _, err := e.Run(rs); err != nil {
		t.Fatal(err)
	}
	if !sim.IsCapacityError(firstErr) {
		t.Fatalf("first acquire error = %v, want CapacityError", firstErr)
	}
	// Every class was tried 3 times (the breaker threshold, reached before
	// the retry budget), then its breaker opened.
	if attemptsAfterFirst != 3*nClasses {
		t.Fatalf("attempts after first call = %d, want %d", attemptsAfterFirst, 3*nClasses)
	}
	if rs.BreakerTrips() != nClasses {
		t.Fatalf("breaker trips = %d, want %d", rs.BreakerTrips(), nClasses)
	}
	// The second call finds every breaker open and fails fast: not one more
	// doomed request hits the control plane.
	if !sim.IsCapacityError(secondErr) {
		t.Fatalf("second acquire error = %v, want CapacityError", secondErr)
	}
	if e.AcquireFailures() != attemptsAfterFirst {
		t.Fatalf("fail-fast still issued requests: %d -> %d", attemptsAfterFirst, e.AcquireFailures())
	}
	opens := 0
	for _, a := range e.AuditLog() {
		if a.Action == "breaker-open" {
			opens++
		}
	}
	if opens != nClasses {
		t.Fatalf("audit has %d breaker-open entries, want %d", opens, nClasses)
	}
}

func TestFallbackToNextCheapestClass(t *testing.T) {
	// m1.large is out of capacity; the middleware must land on m1.medium —
	// the next-cheapest on-demand class — and log the substitution.
	cf := &sim.ControlFaults{Acquisition: &sim.AcquisitionFaults{
		PerClass: map[string]float64{"m1.large": 1},
	}, Seed: 5}
	e := smallEngine(t, cf, 3600)
	var got int
	inner := &scripted{deploy: func(v *sim.View, act sim.Control) error {
		id, err := act.AcquireVM("m1.large")
		if err != nil {
			return err
		}
		got = id
		return nil
	}}
	rs := Wrap(inner, Config{})
	if _, err := e.Run(rs); err != nil {
		t.Fatal(err)
	}
	vm, err := e.Fleet().Get(got)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Class.Name != "m1.medium" {
		t.Fatalf("fallback landed on %s, want m1.medium", vm.Class.Name)
	}
	if rs.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", rs.Fallbacks())
	}
	var sawLog bool
	for _, a := range e.AuditLog() {
		if a.Action == "fallback-acquire" && strings.Contains(a.Detail, "m1.medium") {
			sawLog = true
		}
	}
	if !sawLog {
		t.Fatal("no fallback-acquire audit entry")
	}
}

func TestRetryRidesOutTransientErrors(t *testing.T) {
	// At 60% failure probability, four attempts nearly always find capacity;
	// the inner policy should never see an error across many acquisitions.
	cf := &sim.ControlFaults{Acquisition: &sim.AcquisitionFaults{FailProb: 0.6}, Seed: 8}
	e := smallEngine(t, cf, 3600)
	acquired := 0
	inner := &scripted{deploy: func(v *sim.View, act sim.Control) error {
		for i := 0; i < 10; i++ {
			if _, err := act.AcquireVM("m1.small"); err != nil {
				return err
			}
			acquired++
		}
		return nil
	}}
	rs := Wrap(inner, Config{MaxRetries: 8, BreakerThreshold: 9})
	if _, err := e.Run(rs); err != nil {
		t.Fatalf("middleware leaked a transient error: %v", err)
	}
	if acquired != 10 {
		t.Fatalf("acquired %d of 10", acquired)
	}
	if rs.Retries() == 0 {
		t.Fatal("no retries at 60% failure probability — faults not firing")
	}
	if e.AcquireFailures() == 0 {
		t.Fatal("engine recorded no failed attempts")
	}
}

func TestNonCapacityErrorsPassThroughUnretried(t *testing.T) {
	e := smallEngine(t, nil, 3600)
	inner := &scripted{deploy: func(v *sim.View, act sim.Control) error {
		if _, err := act.AcquireVM("no-such-class"); err == nil {
			t.Fatal("unknown class accepted")
		}
		// Exhaust the quota, then confirm the quota error is not retried or
		// remapped to another class.
		for {
			if _, err := act.AcquireVM("m1.small"); err != nil {
				if sim.IsCapacityError(err) {
					t.Fatalf("quota error disguised as capacity error: %v", err)
				}
				break
			}
		}
		return nil
	}}
	rs := Wrap(inner, Config{})
	if _, err := e.Run(rs); err != nil {
		t.Fatal(err)
	}
	if rs.Retries() != 0 || rs.Fallbacks() != 0 {
		t.Fatalf("middleware retried non-capacity errors: %d retries, %d fallbacks",
			rs.Retries(), rs.Fallbacks())
	}
}

func TestDegradeSwitchesToCheapestAlternates(t *testing.T) {
	// Deploy leaves the dataflow starved (omega 0); the first Adapt acquires
	// a VM that comes up pending. The degradation hook must then flip the
	// work PE from its default alternate (deep, cost 1.4) to the cheapest
	// (fast, cost 0.9).
	cf := &sim.ControlFaults{Provisioning: &sim.ProvisioningFaults{MeanBootSec: 600}, Seed: 1}
	e := smallEngine(t, cf, 1800)
	acquired := false
	inner := &scripted{adapt: func(v *sim.View, act sim.Control) error {
		if acquired {
			return nil
		}
		acquired = true
		_, err := act.AcquireVM("m1.small")
		return err
	}}
	rs := Wrap(inner, Config{DegradeOmega: 0.9, Seed: 1})
	if _, err := e.Run(rs); err != nil {
		t.Fatal(err)
	}
	if rs.Degrades() == 0 {
		t.Fatal("degradation hook never fired")
	}
	if sel := sim.NewView(e).Selection(); sel[1] != 1 {
		t.Fatalf("work PE alternate = %d, want 1 (cheapest)", sel[1])
	}
	var sawLog bool
	for _, a := range e.AuditLog() {
		if a.Action == "degrade" {
			sawLog = true
		}
	}
	if !sawLog {
		t.Fatal("no degrade audit entry")
	}
}

func TestWrapNameAndDefaults(t *testing.T) {
	rs := Wrap(&scripted{}, Config{})
	if rs.Name() != "resilient+scripted" {
		t.Fatalf("name = %q", rs.Name())
	}
	cfg := Config{}.withDefaults()
	if cfg.MaxRetries != 3 || cfg.BreakerThreshold != 3 || cfg.CooldownSec != 300 || cfg.MaxCooldownSec != 3600 {
		t.Fatalf("defaults = %+v", cfg)
	}
	// Cooldown doubles per consecutive trip up to the cap, plus a bounded
	// deterministic jitter.
	for trip := 0; trip < 8; trip++ {
		c := rs.cooldownSec("m1.small", trip)
		if c != rs.cooldownSec("m1.small", trip) {
			t.Fatal("cooldown not deterministic")
		}
		base := cfg.CooldownSec << trip
		if base > cfg.MaxCooldownSec {
			base = cfg.MaxCooldownSec
		}
		if c < base || c >= base+cfg.CooldownSec/4 {
			t.Fatalf("trip %d: cooldown %d outside [%d, %d)", trip, c, base, base+cfg.CooldownSec/4)
		}
	}
}

// chaosFaults is the acceptance scenario's control plane: short boot delays,
// the provider effectively out of every class the global heuristic prefers
// (only m1.small remains reliably available), and degraded monitoring. The
// fault-free deploy window keeps the initial placement comparable.
func chaosFaults() *sim.ControlFaults {
	return &sim.ControlFaults{
		Provisioning: &sim.ProvisioningFaults{MeanBootSec: 45},
		Acquisition: &sim.AcquisitionFaults{
			PerClass: map[string]float64{
				"m1.medium": 0.97, "m1.large": 0.97, "m1.xlarge": 0.97,
				"m1.small": 0.05,
			},
			AfterSec: 900,
		},
		Monitoring: &sim.MonitoringFaults{StaleProb: 0.2, NoiseFrac: 0.1},
		Seed:       3,
	}
}

func runChaos(t *testing.T, sched sim.Scheduler, cf *sim.ControlFaults) (metrics.Summary, *sim.Engine) {
	t.Helper()
	g := dataflow.EvalGraph()
	prof, err := rates.NewConstant(20)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Graph:         g,
		Menu:          cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:        map[int]rates.Profile{g.Inputs()[0]: prof},
		HorizonSec:    4 * 3600,
		Seed:          7,
		Failures:      sim.ExponentialFailures{MTBFSec: 1500, Seed: 7},
		ControlFaults: cf,
		Audit:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	return sum, e
}

func chaosHeuristic(t *testing.T, obj core.Objective) *core.Heuristic {
	t.Helper()
	h, err := core.NewHeuristic(core.Options{
		Strategy: core.Global, Dynamic: true, Adaptive: true, Objective: obj,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestResilienceRestoresConstraintUnderControlFaults(t *testing.T) {
	// The PR's acceptance scenario: under VM crashes plus an unreliable
	// control plane, the plain global heuristic misses the throughput
	// constraint; the same policy wrapped in the middleware — same seeds —
	// restores it, at an objective value close to the fault-free run.
	g := dataflow.EvalGraph()
	obj, err := core.PaperSigma(g, 20, 4)
	if err != nil {
		t.Fatal(err)
	}

	faultFree, _ := runChaos(t, chaosHeuristic(t, obj), nil)
	if !obj.MeetsConstraint(faultFree.MeanOmega) {
		t.Fatalf("fault-free run misses the constraint: omega %.3f", faultFree.MeanOmega)
	}

	plain, pe := runChaos(t, chaosHeuristic(t, obj), chaosFaults())
	if plain.MeanOmega >= obj.OmegaHat {
		t.Fatalf("control faults did not hurt the plain policy: omega %.3f >= %.2f",
			plain.MeanOmega, obj.OmegaHat)
	}
	if pe.AcquireFailures() == 0 {
		t.Fatal("plain run saw no acquisition failures")
	}

	rs := Wrap(chaosHeuristic(t, obj), Config{Seed: 7})
	res, re := runChaos(t, rs, chaosFaults())
	if !obj.MeetsConstraint(res.MeanOmega) {
		t.Fatalf("resilient run misses the constraint: omega %.3f (plain %.3f, fault-free %.3f)",
			res.MeanOmega, plain.MeanOmega, faultFree.MeanOmega)
	}
	if rs.Retries() == 0 && rs.Fallbacks() == 0 {
		t.Fatal("middleware never intervened — separation is vacuous")
	}
	if re.Crashes() == 0 {
		t.Fatal("no crashes in the chaos scenario")
	}

	thetaFree := obj.Theta(faultFree.MeanGamma, faultFree.TotalCostUSD)
	thetaRes := obj.Theta(res.MeanGamma, res.TotalCostUSD)
	lost := thetaFree - thetaRes
	if lost < 0 {
		lost = -lost
	}
	if bound := 0.15 * abs(thetaFree); lost > bound {
		t.Fatalf("resilient theta %.4f strays %.4f from fault-free %.4f (bound %.4f)",
			thetaRes, lost, thetaFree, bound)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
