package resilient

import (
	"bytes"
	"testing"

	"dynamicdf/internal/sim"
)

// statelessPolicy is a minimal inner policy without checkpoint support.
type statelessPolicy struct{}

func (statelessPolicy) Name() string                        { return "stateless" }
func (statelessPolicy) Deploy(*sim.View, sim.Control) error { return nil }
func (statelessPolicy) Adapt(*sim.View, sim.Control) error  { return nil }

// statefulPolicy carries one counter, to prove inner blobs compose.
type statefulPolicy struct {
	statelessPolicy
	n int
}

func (p *statefulPolicy) CheckpointState() ([]byte, error) {
	return []byte{byte('0' + p.n)}, nil
}
func (p *statefulPolicy) RestoreState(b []byte) error {
	p.n = int(b[0] - '0')
	return nil
}

func TestSchedulerStateRoundTrip(t *testing.T) {
	s := Wrap(statelessPolicy{}, Config{})
	s.retries, s.fallbacks, s.trips, s.degrades = 4, 3, 2, 1
	s.breakers["m1.small"] = &breaker{consecFails: 2, trips: 1, openUntil: 900}
	s.breakers["m1.large"] = &breaker{consecFails: 1}

	blob, err := s.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := s.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("state blob not deterministic:\n%s\n%s", blob, blob2)
	}

	r := Wrap(statelessPolicy{}, Config{})
	if err := r.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if r.retries != 4 || r.fallbacks != 3 || r.trips != 2 || r.degrades != 1 {
		t.Fatalf("tallies lost: %+v", r)
	}
	b := r.breakers["m1.small"]
	if b == nil || b.consecFails != 2 || b.trips != 1 || b.openUntil != 900 {
		t.Fatalf("breaker lost: %+v", b)
	}
	restored, err := r.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, blob) {
		t.Fatalf("round trip changed blob:\n%s\n%s", blob, restored)
	}
	if err := r.RestoreState([]byte(`garbage`)); err == nil {
		t.Fatal("accepted garbage state")
	}
}

func TestSchedulerStateComposesInnerBlob(t *testing.T) {
	inner := &statefulPolicy{n: 7}
	s := Wrap(inner, Config{})
	blob, err := s.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	inner2 := &statefulPolicy{}
	r := Wrap(inner2, Config{})
	if err := r.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if inner2.n != 7 {
		t.Fatalf("inner state not restored: n=%d", inner2.n)
	}
	// A checkpoint from a stateless stack restores cleanly onto a stateful
	// one (the inner keeps its as-built state).
	plain, err := Wrap(statelessPolicy{}, Config{}).CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	inner3 := &statefulPolicy{n: 5}
	r2 := Wrap(inner3, Config{})
	if err := r2.RestoreState(plain); err != nil {
		t.Fatal(err)
	}
	if inner3.n != 5 {
		t.Fatalf("absent inner blob clobbered inner state: n=%d", inner3.n)
	}
}
