// Package resilient hardens a scheduling policy against an unreliable cloud
// control plane. The paper's heuristics (§5) assume every acquisition request
// is honored instantly; real IaaS APIs return transient "insufficient
// capacity" errors, take minutes to boot VMs, and degrade under load. This
// package wraps a sim.Scheduler so that every control action flows through a
// middleware layer adding:
//
//   - bounded in-call retries of failed acquisitions (simulation time does
//     not advance during a scheduler callback, so retries are immediate; the
//     backoff between rounds materializes as breaker cooldown),
//   - a per-class circuit breaker: after N consecutive capacity errors the
//     class is shunned for a cooldown that doubles on every consecutive trip
//     (capped, with deterministic jitter so runs stay reproducible),
//   - class fallback: while a class's breaker is open — or once retries are
//     exhausted — the acquisition falls through to the next-cheapest class of
//     the same market (on-demand or spot),
//   - a graceful-degradation hook: while capacity is pending or broken and
//     observed throughput is below a floor, PEs are switched to their
//     cheapest alternates so the surviving cores stretch further.
//
// The wrapped policy notices none of this: it sees a sim.Control that mostly
// succeeds. Every middleware decision is written to the engine's audit log
// (breaker-open, fallback-acquire, degrade) so decision traces stay complete.
package resilient

import (
	"fmt"
	"sort"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/sim"
)

// Config tunes the middleware. The zero value enables retries, breaking and
// fallback with the defaults below; the degradation hook stays off until
// DegradeOmega is set.
type Config struct {
	// MaxRetries is how many extra in-call attempts follow a failed
	// acquisition before giving up on the class (default 3).
	MaxRetries int
	// BreakerThreshold is the number of consecutive capacity errors for one
	// class that opens its circuit breaker (default 3).
	BreakerThreshold int
	// CooldownSec is the base breaker cooldown in simulated seconds (default
	// 300). Each consecutive trip doubles it, up to MaxCooldownSec.
	CooldownSec int64
	// MaxCooldownSec caps the exponential cooldown (default 3600).
	MaxCooldownSec int64
	// Seed decorrelates the deterministic cooldown jitter between runs.
	Seed int64
	// NoFallback disables trying other classes; acquisitions then fail fast
	// whenever the requested class is broken or exhausted its retries.
	NoFallback bool
	// DegradeOmega, when positive, arms the degradation hook: while any VM is
	// still provisioning or any breaker is open AND the last observed Omega
	// is below this floor, every PE is switched to its cheapest alternate.
	DegradeOmega float64
}

func (c Config) withDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.CooldownSec <= 0 {
		c.CooldownSec = 300
	}
	if c.MaxCooldownSec <= 0 {
		c.MaxCooldownSec = 3600
	}
	if c.MaxCooldownSec < c.CooldownSec {
		c.MaxCooldownSec = c.CooldownSec
	}
	return c
}

// breaker is the circuit state for one VM class.
type breaker struct {
	consecFails int   // capacity errors since the last success
	trips       int   // consecutive opens (resets on success)
	openUntil   int64 // sim time the circuit closes again
}

// Scheduler wraps an inner policy with the resilience middleware. It
// satisfies sim.Scheduler itself, so engines run it like any other policy.
type Scheduler struct {
	inner sim.Scheduler
	cfg   Config

	breakers map[string]*breaker

	retries   int
	fallbacks int
	trips     int
	degrades  int
}

var _ sim.Scheduler = (*Scheduler)(nil)

// Wrap builds the middleware around an inner policy.
func Wrap(inner sim.Scheduler, cfg Config) *Scheduler {
	return &Scheduler{inner: inner, cfg: cfg.withDefaults(), breakers: map[string]*breaker{}}
}

// Name labels the wrapped policy in experiment output.
func (s *Scheduler) Name() string {
	if n, ok := s.inner.(interface{ Name() string }); ok {
		return "resilient+" + n.Name()
	}
	return "resilient"
}

// Retries reports in-call acquisition retries performed so far.
func (s *Scheduler) Retries() int { return s.retries }

// Fallbacks reports acquisitions satisfied by a substitute class.
func (s *Scheduler) Fallbacks() int { return s.fallbacks }

// BreakerTrips reports how many times any class breaker opened.
func (s *Scheduler) BreakerTrips() int { return s.trips }

// Degrades reports how many rounds the degradation hook fired.
func (s *Scheduler) Degrades() int { return s.degrades }

// Deploy implements sim.Scheduler: the inner policy deploys through the
// resilient control surface.
func (s *Scheduler) Deploy(v *sim.View, act sim.Control) error {
	return s.inner.Deploy(v, &Actions{s: s, v: v, inner: act})
}

// Adapt implements sim.Scheduler: the inner policy adapts through the
// resilient control surface, then the degradation hook runs on the outcome.
func (s *Scheduler) Adapt(v *sim.View, act sim.Control) error {
	ra := &Actions{s: s, v: v, inner: act}
	if err := s.inner.Adapt(v, ra); err != nil {
		return err
	}
	return s.maybeDegrade(v, ra)
}

// anyBreakerOpen reports whether some class is currently shunned.
func (s *Scheduler) anyBreakerOpen(now int64) bool {
	for _, b := range s.breakers {
		if now < b.openUntil {
			return true
		}
	}
	return false
}

// maybeDegrade switches every PE to its cheapest alternate while capacity is
// impaired (VMs pending or a breaker open) and throughput sits below the
// configured floor. The inner policy's own alternate stage restores richer
// alternates once capacity recovers.
func (s *Scheduler) maybeDegrade(v *sim.View, act sim.Control) error {
	if s.cfg.DegradeOmega <= 0 {
		return nil
	}
	now := v.Now()
	impaired := len(v.PendingVMs()) > 0 || s.anyBreakerOpen(now)
	if !impaired || v.Omega() >= s.cfg.DegradeOmega {
		return nil
	}
	g := v.Graph()
	sel := v.Selection()
	changed := false
	for pe := 0; pe < g.N(); pe++ {
		alts := g.PEs[pe].Alternates
		if len(alts) < 2 {
			continue
		}
		cheapest := 0
		for i := range alts {
			if alts[i].Cost < alts[cheapest].Cost {
				cheapest = i
			}
		}
		if sel[pe] != cheapest {
			if err := act.SelectAlternate(pe, cheapest); err != nil {
				return err
			}
			changed = true
		}
	}
	if changed {
		s.degrades++
		act.Log("degrade", fmt.Sprintf("cheapest alternates while capacity impaired (omega %.2f)", v.Omega()))
	}
	return nil
}

// breakerFor returns (creating if needed) the class's circuit state.
func (s *Scheduler) breakerFor(class string) *breaker {
	b, ok := s.breakers[class]
	if !ok {
		b = &breaker{}
		s.breakers[class] = b
	}
	return b
}

// cooldownSec computes the breaker-open duration for a class's n-th
// consecutive trip: base * 2^n capped at the maximum, plus a deterministic
// jitter in [0, base/4) derived from the seed, the class name and the trip
// count — no two classes thunder back in the same second.
func (s *Scheduler) cooldownSec(class string, trip int) int64 {
	cool := s.cfg.CooldownSec
	for i := 0; i < trip && cool < s.cfg.MaxCooldownSec; i++ {
		cool *= 2
	}
	if cool > s.cfg.MaxCooldownSec {
		cool = s.cfg.MaxCooldownSec
	}
	if span := s.cfg.CooldownSec / 4; span > 0 {
		h := uint64(s.cfg.Seed) ^ 0x9e3779b97f4a7c15
		for _, r := range class {
			h = (h ^ uint64(r)) * 0x100000001b3
		}
		h ^= uint64(trip) * 0xbf58476d1ce4e5b9
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		cool += int64(h % uint64(span))
	}
	return cool
}

// Actions is the resilient control surface handed to the inner policy for
// one callback. Everything except AcquireVM passes straight through.
type Actions struct {
	s     *Scheduler
	v     *sim.View
	inner sim.Control
}

var _ sim.Control = (*Actions)(nil)

// SelectAlternate passes through.
func (a *Actions) SelectAlternate(pe, alt int) error { return a.inner.SelectAlternate(pe, alt) }

// SelectRoute passes through.
func (a *Actions) SelectRoute(group, target int) error { return a.inner.SelectRoute(group, target) }

// ReleaseVM passes through.
func (a *Actions) ReleaseVM(vmID int) error { return a.inner.ReleaseVM(vmID) }

// AssignCores passes through.
func (a *Actions) AssignCores(pe, vmID, n int) error { return a.inner.AssignCores(pe, vmID, n) }

// UnassignCores passes through.
func (a *Actions) UnassignCores(pe, vmID, n int) error { return a.inner.UnassignCores(pe, vmID, n) }

// MovePE passes through.
func (a *Actions) MovePE(pe, fromVM, toVM, n int) error { return a.inner.MovePE(pe, fromVM, toVM, n) }

// Menu passes through.
func (a *Actions) Menu() *cloud.Menu { return a.inner.Menu() }

// Log passes through.
func (a *Actions) Log(action, detail string) { a.inner.Log(action, detail) }

var _ sim.DecisionSink = (*Actions)(nil)

// Decide forwards decision provenance to the inner sink, annotating it with
// the middleware's view of the world: every currently open circuit breaker
// lands in the decision's notes (sorted by class, so the record stays
// deterministic). No-op when the inner surface has no sink.
func (a *Actions) Decide(d obs.Decision) {
	ds, ok := a.inner.(sim.DecisionSink)
	if !ok {
		return
	}
	now := a.v.Now()
	var open []string
	for class, b := range a.s.breakers {
		if now < b.openUntil {
			open = append(open, fmt.Sprintf("breaker open: %s until t=%ds", class, b.openUntil))
		}
	}
	sort.Strings(open)
	d.Notes = append(d.Notes, open...)
	ds.Decide(d)
}

// DecisionsObserved forwards to the inner sink.
func (a *Actions) DecisionsObserved() bool {
	ds, ok := a.inner.(sim.DecisionSink)
	return ok && ds.DecisionsObserved()
}

// AcquireVM acquires a VM of the named class, riding out transient capacity
// errors: bounded retries against the requested class, then — unless
// fallback is disabled — the same treatment for each substitute class in
// fallback order. Classes whose breaker is open are skipped without a single
// request. Returns the last CapacityError when every avenue fails.
func (a *Actions) AcquireVM(className string) (int, error) {
	requested, ok := a.inner.Menu().ByName(className)
	if !ok {
		// Unknown class: let the engine produce its canonical error.
		return a.inner.AcquireVM(className)
	}
	now := a.v.Now()
	var lastErr error
	// Assemble fallback provenance only when somebody observes it.
	var dec *obs.Decision
	if ds, ok := a.inner.(sim.DecisionSink); ok && ds.DecisionsObserved() {
		dec = &obs.Decision{Kind: "fallback", PE: -1,
			Inputs: map[string]float64{"requestedPricePerHour": requested.PricePerHour}}
	}
	for _, class := range a.s.ladder(a.inner.Menu(), requested) {
		br := a.s.breakerFor(class.Name)
		if now < br.openUntil {
			if dec != nil {
				dec.Options = append(dec.Options, obs.DecisionOption{
					Name: class.Name, Score: class.PricePerHour,
					Rejected: fmt.Sprintf("breaker open until t=%ds", br.openUntil)})
			}
			continue // circuit open: shun the class until cooldown expires
		}
		id, err := a.acquireWithRetry(class.Name, now)
		if err == nil {
			if class.Name != className {
				a.s.fallbacks++
				a.inner.Log("fallback-acquire", fmt.Sprintf("%s in place of %s", class.Name, className))
				if dec != nil {
					dec.Options = append(dec.Options, obs.DecisionOption{
						Name: class.Name, Score: class.PricePerHour})
					dec.Chosen = fmt.Sprintf("acquire %s in place of %s", class.Name, className)
					dec.Reason = "requested class unavailable; next rung of the same-market price ladder"
					a.Decide(*dec)
				}
			}
			return id, nil
		}
		if !sim.IsCapacityError(err) {
			return 0, err // fleet cap etc.: not retryable, not our business
		}
		if dec != nil {
			dec.Options = append(dec.Options, obs.DecisionOption{
				Name: class.Name, Score: class.PricePerHour,
				Rejected: "capacity error after retries"})
		}
		lastErr = err
		if a.s.cfg.NoFallback {
			break
		}
	}
	if lastErr == nil {
		// Every candidate was behind an open breaker: fail fast without
		// issuing a single doomed request.
		lastErr = &sim.CapacityError{Class: className, Sec: now}
	}
	if dec != nil {
		dec.Reason = fmt.Sprintf("every rung of the ladder failed or was shunned acquiring %s", className)
		a.Decide(*dec)
	}
	return 0, lastErr
}

// acquireWithRetry tries one class up to 1+MaxRetries times, maintaining its
// breaker: a success closes the circuit, the threshold-th consecutive
// capacity error opens it with exponential cooldown.
func (a *Actions) acquireWithRetry(class string, now int64) (int, error) {
	br := a.s.breakerFor(class)
	var lastErr error
	for attempt := 0; attempt <= a.s.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			a.s.retries++
		}
		id, err := a.inner.AcquireVM(class)
		if err == nil {
			br.consecFails, br.trips = 0, 0
			return id, nil
		}
		if !sim.IsCapacityError(err) {
			return 0, err
		}
		lastErr = err
		br.consecFails++
		if br.consecFails >= a.s.cfg.BreakerThreshold {
			cool := a.s.cooldownSec(class, br.trips)
			br.openUntil = now + cool
			br.trips++
			br.consecFails = 0
			a.s.trips++
			a.inner.Log("breaker-open", fmt.Sprintf("%s for %ds", class, cool))
			break
		}
	}
	return 0, lastErr
}

// ladder orders the acquisition candidates: the requested class first, then
// — same market only, so a constraint-critical on-demand request never lands
// on reclaimable spot capacity — the classes cheaper than it by descending
// price (next-cheapest first), then the pricier ones by ascending price.
func (s *Scheduler) ladder(menu *cloud.Menu, requested *cloud.Class) []*cloud.Class {
	out := []*cloud.Class{requested}
	if s.cfg.NoFallback {
		return out
	}
	var cheaper, pricier []*cloud.Class
	for _, c := range menu.Classes() {
		if c.Name == requested.Name || c.Preemptible != requested.Preemptible {
			continue
		}
		if c.PricePerHour <= requested.PricePerHour {
			cheaper = append(cheaper, c)
		} else {
			pricier = append(pricier, c)
		}
	}
	sort.SliceStable(cheaper, func(i, j int) bool {
		return cheaper[i].PricePerHour > cheaper[j].PricePerHour
	})
	sort.SliceStable(pricier, func(i, j int) bool {
		return pricier[i].PricePerHour < pricier[j].PricePerHour
	})
	out = append(out, cheaper...)
	return append(out, pricier...)
}
