package resilient

import (
	"encoding/json"
	"fmt"

	"dynamicdf/internal/sim"
)

// breakerState is one class's serialized circuit state.
type breakerState struct {
	ConsecFails int   `json:"consecFails,omitempty"`
	Trips       int   `json:"trips,omitempty"`
	OpenUntil   int64 `json:"openUntil,omitempty"`
}

// schedulerState is the middleware's mutable state: the per-class breakers,
// the decision tallies, and — when the wrapped policy is itself stateful —
// its opaque blob, so checkpointing composes through the middleware stack.
// Breakers marshal as a map; encoding/json sorts map keys, keeping the blob
// deterministic.
type schedulerState struct {
	Breakers  map[string]breakerState `json:"breakers,omitempty"`
	Retries   int                     `json:"retries,omitempty"`
	Fallbacks int                     `json:"fallbacks,omitempty"`
	Trips     int                     `json:"trips,omitempty"`
	Degrades  int                     `json:"degrades,omitempty"`
	Inner     json.RawMessage         `json:"inner,omitempty"`
}

// CheckpointState implements sim.StatefulScheduler.
func (s *Scheduler) CheckpointState() ([]byte, error) {
	st := schedulerState{
		Retries:   s.retries,
		Fallbacks: s.fallbacks,
		Trips:     s.trips,
		Degrades:  s.degrades,
	}
	if len(s.breakers) > 0 {
		st.Breakers = make(map[string]breakerState, len(s.breakers))
		for class, b := range s.breakers {
			st.Breakers[class] = breakerState{
				ConsecFails: b.consecFails,
				Trips:       b.trips,
				OpenUntil:   b.openUntil,
			}
		}
	}
	if inner, ok := s.inner.(sim.StatefulScheduler); ok {
		blob, err := inner.CheckpointState()
		if err != nil {
			return nil, fmt.Errorf("resilient: checkpoint inner policy: %w", err)
		}
		st.Inner = blob
	}
	return json.Marshal(st)
}

// RestoreState implements sim.StatefulScheduler.
func (s *Scheduler) RestoreState(blob []byte) error {
	var st schedulerState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("resilient: restore state: %w", err)
	}
	s.breakers = map[string]*breaker{}
	for class, b := range st.Breakers {
		s.breakers[class] = &breaker{
			consecFails: b.ConsecFails,
			trips:       b.Trips,
			openUntil:   b.OpenUntil,
		}
	}
	s.retries = st.Retries
	s.fallbacks = st.Fallbacks
	s.trips = st.Trips
	s.degrades = st.Degrades
	if inner, ok := s.inner.(sim.StatefulScheduler); ok {
		// A stateful inner policy restores from its blob; an absent blob
		// (checkpoint taken with a stateless inner) leaves it as built.
		if st.Inner != nil {
			if err := inner.RestoreState(st.Inner); err != nil {
				return fmt.Errorf("resilient: restore inner policy: %w", err)
			}
		}
	}
	return nil
}

var _ sim.StatefulScheduler = (*Scheduler)(nil)
