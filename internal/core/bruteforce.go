package core

import (
	"fmt"
	"math"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/sim"
)

// BruteForce is the paper's "static brute-force optimal deployment for
// small graphs (that assumes no variations)": it enumerates every alternate
// combination, prices the cheapest VM fleet covering each combination's
// core demand, and deploys the combination maximizing the objective
// Theta = Gamma - sigma * cost over the optimization period. It never
// adapts at runtime. The search is exponential in the number of PEs with
// alternates, which is exactly why the paper reports it "takes
// prohibitively long to find a solution for higher data rates" on larger
// instances; MaxCombos bounds the enumeration.
type BruteForce struct {
	// Objective supplies OmegaHat and Sigma.
	Objective Objective
	// HorizonHours prices fleets over the optimization period.
	HorizonHours float64
	// MaxCombos bounds the enumeration (default 1<<20).
	MaxCombos int
}

// NewBruteForce validates and returns the policy.
func NewBruteForce(obj Objective, horizonHours float64) (*BruteForce, error) {
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	if horizonHours <= 0 {
		return nil, fmt.Errorf("core: brute force horizon %v <= 0", horizonHours)
	}
	return &BruteForce{Objective: obj, HorizonHours: horizonHours, MaxCombos: 1 << 20}, nil
}

// Name implements sim.Scheduler.
func (b *BruteForce) Name() string { return "bruteforce-static" }

// Adapt implements sim.Scheduler: a static deployment never adapts.
func (b *BruteForce) Adapt(*sim.View, sim.Control) error { return nil }

// Deploy implements sim.Scheduler.
func (b *BruteForce) Deploy(v *sim.View, act sim.Control) error {
	g := v.Graph()
	// A static deployment cannot replace preempted capacity: on-demand only.
	menu := v.Menu().OnDemand()
	est := v.EstimatedInputRates()
	// Like Alg. 1, provision for the constraint itself under assumed-rated
	// performance; the brute force explicitly "assumes no variations".
	target := b.Objective.OmegaHat

	combos := 1
	for _, pe := range g.PEs {
		combos *= len(pe.Alternates)
		if b.MaxCombos > 0 && combos > b.MaxCombos {
			return fmt.Errorf("core: brute force: %d combinations exceed budget %d", combos, b.MaxCombos)
		}
	}
	routeCombos := 1
	for _, c := range g.Choices {
		routeCombos *= len(c.Targets)
		if b.MaxCombos > 0 && combos*routeCombos > b.MaxCombos {
			return fmt.Errorf("core: brute force: %d combinations exceed budget %d", combos*routeCombos, b.MaxCombos)
		}
	}

	sel := dataflow.DefaultSelection(g)
	routing := dataflow.DefaultRouting(g)
	bestTheta := math.Inf(-1)
	var bestSel dataflow.Selection
	var bestRouting dataflow.Routing
	var bestPlan *Plan
	for rc := 0; rc < routeCombos; rc++ {
		rrem := rc
		for gi := range g.Choices {
			n := len(g.Choices[gi].Targets)
			routing[gi] = rrem % n
			rrem /= n
		}
		for c := 0; c < combos; c++ {
			// Decode combination c into a selection.
			rem := c
			for pe := range g.PEs {
				n := len(g.PEs[pe].Alternates)
				sel[pe] = rem % n
				rem /= n
			}
			inRate, _, err := dataflow.PropagateRatesRouted(g, sel, routing, est)
			if err != nil {
				return err
			}
			demand := make([]float64, g.N())
			for pe := range demand {
				demand[pe] = inRate[pe] * sel.Alt(g, pe).Cost * target
			}
			plan, err := minCostPlan(menu, demand)
			if err != nil {
				return err
			}
			val, err := dataflow.RoutedValue(g, sel, routing)
			if err != nil {
				return err
			}
			theta := b.Objective.Theta(val, plan.HourlyCost()*b.HorizonHours)
			if theta > bestTheta {
				bestTheta = theta
				bestSel = sel.Clone()
				bestRouting = routing.Clone()
				bestPlan = plan
			}
		}
	}
	if bestPlan == nil {
		return fmt.Errorf("core: brute force found no feasible deployment")
	}
	for pe, alt := range bestSel {
		if err := act.SelectAlternate(pe, alt); err != nil {
			return err
		}
	}
	for gi, t := range bestRouting {
		if err := act.SelectRoute(gi, t); err != nil {
			return err
		}
	}
	return bestPlan.Materialize(act)
}

// minCostPlan builds the cheapest fleet covering per-PE ECU demands. Cores
// are fungible across PEs only within a VM, but PEs may span VMs, so the
// packing decomposes per PE: each PE independently takes whole cores of the
// classes with the best price per ECU, topping the remainder with the
// cheapest class that covers it; cores of the same class are then packed
// into as few VMs as possible (a PE always needs at least one core). For
// linearly priced menus with single-core classes at every speed — such as
// the 2013 AWS menu — this is cost-optimal; for other menus it is an upper
// bound, which suffices for a baseline that assumes no variability.
func minCostPlan(menu *cloud.Menu, demand []float64) (*Plan, error) {
	// Best price-per-ECU class for bulk cores, cheapest class for scraps.
	classes := menu.Classes()
	bulk := classes[0]
	for _, c := range classes[1:] {
		if c.CostPerECUHour() < bulk.CostPerECUHour()-1e-12 ||
			(math.Abs(c.CostPerECUHour()-bulk.CostPerECUHour()) < 1e-12 && c.Cores > bulk.Cores) {
			bulk = c
		}
	}
	plan := NewPlan(menu)
	// coresWanted[class] accumulates whole cores to pack per class.
	type want struct {
		pe    int
		cores int
	}
	wants := map[*cloud.Class][]want{}
	for pe, d := range demand {
		if d <= 0 {
			// Liveness: every PE needs one core; use the cheapest class.
			cheap := cheapestClass(menu)
			wants[cheap] = append(wants[cheap], want{pe: pe, cores: 1})
			continue
		}
		full := int(d / bulk.CoreSpeed)
		rem := d - float64(full)*bulk.CoreSpeed
		if full > 0 {
			wants[bulk] = append(wants[bulk], want{pe: pe, cores: full})
		}
		if rem > 1e-9 {
			// Cheapest single core covering the remainder.
			var best *cloud.Class
			for _, c := range classes {
				if c.CoreSpeed+1e-12 < rem {
					continue
				}
				perCore := c.PricePerHour / float64(c.Cores)
				if best == nil || perCore < best.PricePerHour/float64(best.Cores) {
					best = c
				}
			}
			if best == nil {
				best = bulk
				// Remainder exceeds every class's core speed (impossible
				// with rem < bulk speed, but stay safe).
			}
			wants[best] = append(wants[best], want{pe: pe, cores: 1})
		} else if full == 0 {
			wants[bulk] = append(wants[bulk], want{pe: pe, cores: 1})
		}
	}
	// Pack per class, filling VMs core by core. Iterate the menu order so
	// the plan is deterministic (map iteration is not).
	for _, class := range classes {
		ws, ok := wants[class]
		if !ok {
			continue
		}
		var open *PlanVM
		for _, w := range ws {
			for i := 0; i < w.cores; i++ {
				if open == nil || open.FreeCores() == 0 {
					open = &PlanVM{Class: class, Cores: map[int]int{}}
					plan.VMs = append(plan.VMs, open)
				}
				open.Cores[w.pe]++
			}
		}
	}
	return plan, nil
}

func cheapestClass(menu *cloud.Menu) *cloud.Class {
	classes := menu.Classes()
	best := classes[0]
	for _, c := range classes[1:] {
		if c.PricePerHour < best.PricePerHour {
			best = c
		}
	}
	return best
}
