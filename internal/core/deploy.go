package core

import (
	"fmt"
	"math"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
)

// Strategy selects between the paper's two heuristic variants (Table 1).
type Strategy int

const (
	// Local decisions use only per-PE information: an alternate's cost is
	// its own processing cost, and no repacking is performed.
	Local Strategy = iota
	// Global decisions account for downstream impact: an alternate's cost
	// includes the selectivity-weighted cost of all downstream PEs, and
	// the resource allocation is repacked across VM classes.
	Global
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == Global {
		return "global"
	}
	return "local"
}

// SelectAlternates performs Alg. 1's alternate-selection stage: for every
// PE choose the alternate with the highest value-to-cost ratio, where cost
// is strategy-dependent (Table 1's GetCostOfAlternate). The global cost is
// computed by dynamic programming over the graph in reverse topological
// order, so each PE's choice already reflects its successors' choices.
func SelectAlternates(g *dataflow.Graph, strategy Strategy) (dataflow.Selection, error) {
	sel := dataflow.DefaultSelection(g)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// nodeCost[i]: per-message cost entering PE i with its chosen
	// alternate, including downstream (only used by Global).
	nodeCost := make([]float64, g.N())
	for k := len(order) - 1; k >= 0; k-- {
		pe := order[k]
		down := 0.0
		for _, s := range g.Successors(pe) {
			down += nodeCost[s]
		}
		bestRatio := math.Inf(-1)
		for j, a := range g.PEs[pe].Alternates {
			cost := a.Cost
			if strategy == Global {
				cost = a.Cost + a.Selectivity*down
			}
			if ratio := a.Value / cost; ratio > bestRatio {
				bestRatio = ratio
				sel[pe] = j
			}
		}
		chosen := g.PEs[pe].Alternates[sel[pe]]
		nodeCost[pe] = chosen.Cost + chosen.Selectivity*down
	}
	return sel, nil
}

// PlanAllocation performs Alg. 1's resource-allocation stage: give every PE
// one core in forward-BFS order (collocating neighbours), then repeatedly
// grow the bottleneck PE — the one with the lowest predicted relative
// throughput — until the predicted application throughput reaches target.
// The global strategy then repacks (RepackPE + iterative repacking +
// downgrade). Rates are the estimated input rates; VM performance is
// assumed rated, as the paper does at deployment time.
func PlanAllocation(g *dataflow.Graph, menu *cloud.Menu, sel dataflow.Selection,
	routing dataflow.Routing, est dataflow.InputRates, target float64, strategy Strategy) (*Plan, error) {
	if target <= 0 || target > 1 {
		return nil, fmt.Errorf("core: allocation target %v outside (0,1]", target)
	}
	plan := NewPlan(menu)
	for _, pe := range g.ForwardBFS() {
		plan.AddCore(pe)
	}
	// Incremental bottleneck-driven growth (INCREMENTAL_ALLOCATION).
	inRate, _, err := dataflow.PropagateRatesRouted(g, sel, routing, est)
	if err != nil {
		return nil, err
	}
	maxCores := 64 * g.N() * (1 + int(totalRate(est)))
	for iter := 0; ; iter++ {
		caps := plan.Capacities(g, sel)
		omega, err := dataflow.PredictOmegaRouted(g, sel, routing, est, caps)
		if err != nil {
			return nil, err
		}
		if omega >= target-1e-9 {
			break
		}
		if iter > maxCores {
			return nil, fmt.Errorf("core: allocation did not converge after %d cores (omega %.3f < %.3f)", iter, omega, target)
		}
		th, err := dataflow.PEThroughputsRouted(g, sel, routing, est, caps)
		if err != nil {
			return nil, err
		}
		bottleneck := -1
		worst := math.Inf(1)
		for pe := 0; pe < g.N(); pe++ {
			if inRate[pe] <= 0 {
				continue
			}
			if th[pe] < worst {
				worst = th[pe]
				bottleneck = pe
			}
		}
		if bottleneck < 0 {
			break // nothing carries load; one core each suffices
		}
		plan.AddCore(bottleneck)
	}
	if strategy == Global {
		demand := make([]float64, g.N())
		for pe := 0; pe < g.N(); pe++ {
			demand[pe] = inRate[pe] * sel.Alt(g, pe).Cost * target
		}
		plan.RepackPE(demand)
		plan.IterativeRepack()
		plan.Downgrade()
		// Repacking may round capacities down; restore the target if the
		// integral-core conversions cost throughput.
		for iter := 0; iter <= maxCores; iter++ {
			caps := plan.Capacities(g, sel)
			omega, err := dataflow.PredictOmegaRouted(g, sel, routing, est, caps)
			if err != nil {
				return nil, err
			}
			if omega >= target-1e-9 {
				break
			}
			th, _ := dataflow.PEThroughputsRouted(g, sel, routing, est, caps)
			bottleneck, worst := -1, math.Inf(1)
			for pe := 0; pe < g.N(); pe++ {
				if inRate[pe] > 0 && th[pe] < worst {
					worst = th[pe]
					bottleneck = pe
				}
			}
			if bottleneck < 0 {
				break
			}
			plan.AddCore(bottleneck)
		}
	}
	return plan, nil
}

func totalRate(in dataflow.InputRates) float64 {
	t := 0.0
	for _, r := range in {
		t += r
	}
	return t
}
