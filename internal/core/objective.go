// Package core implements the paper's primary contribution: the constrained
// utility-maximization formulation for dynamic dataflows on elastic clouds
// (§6) and the deployment and runtime-adaptation heuristics that
// approximately solve it (§7, Algs. 1-2, Table 1). The heuristics run
// against the internal/sim engine through its View/Actions surface, so they
// see exactly what the paper's monitoring framework exposes.
package core

import (
	"fmt"

	"dynamicdf/internal/dataflow"
)

// Objective captures the user-specified optimization problem of §6:
// maximize Theta = Gamma-bar - sigma * mu subject to the average relative
// throughput constraint Omega-bar >= OmegaHat (within tolerance Epsilon).
type Objective struct {
	// OmegaHat is the relative-throughput constraint (the paper's
	// evaluation fixes 0.7).
	OmegaHat float64
	// Epsilon is the constraint tolerance (the paper uses <= 0.05).
	Epsilon float64
	// Sigma is the user's cost/value equivalence factor in value per
	// dollar.
	Sigma float64
	// LatencyHatSec optionally bounds the mean queueing latency (the other
	// QoS dimension §1/§6 name: "the penalty of high processing
	// latencies"). Zero leaves latency unconstrained, as in the paper's
	// evaluation.
	LatencyHatSec float64
}

// Validate reports whether the objective is well-formed.
func (o Objective) Validate() error {
	if !(o.OmegaHat > 0 && o.OmegaHat <= 1) {
		return fmt.Errorf("core: omega-hat %v outside (0,1]", o.OmegaHat)
	}
	if o.Epsilon < 0 || o.Epsilon >= o.OmegaHat {
		return fmt.Errorf("core: epsilon %v outside [0, omega-hat)", o.Epsilon)
	}
	if o.Sigma < 0 {
		return fmt.Errorf("core: sigma %v < 0", o.Sigma)
	}
	if o.LatencyHatSec < 0 {
		return fmt.Errorf("core: latency bound %v < 0", o.LatencyHatSec)
	}
	return nil
}

// MeetsLatency reports whether an observed mean latency satisfies the
// bound; always true when unconstrained.
func (o Objective) MeetsLatency(meanLatencySec float64) bool {
	return o.LatencyHatSec == 0 || meanLatencySec <= o.LatencyHatSec
}

// Theta computes the profit objective for a completed period.
func (o Objective) Theta(meanGamma, totalCostUSD float64) float64 {
	return meanGamma - o.Sigma*totalCostUSD
}

// MeetsConstraint reports whether an observed average throughput satisfies
// the constraint within tolerance.
func (o Objective) MeetsConstraint(meanOmega float64) bool {
	return meanOmega >= o.OmegaHat-o.Epsilon
}

// SigmaFromExpectations derives sigma per §6:
//
//	sigma = (MaxApplicationValue - MinApplicationValue) /
//	        (AcceptableCost@MaxVal - AcceptableCost@MinVal)
//
// Max/min application values come from the dataflow's alternates; the user
// supplies the two acceptable costs. When the graph has a single alternate
// configuration (max == min value) the value spread is zero; sigma falls
// back to MaxValue / cost@max so cost still trades off against value.
func SigmaFromExpectations(g *dataflow.Graph, costAtMaxUSD, costAtMinUSD float64) (float64, error) {
	if costAtMaxUSD <= costAtMinUSD {
		return 0, fmt.Errorf("core: acceptable cost at max value (%v) must exceed cost at min value (%v)",
			costAtMaxUSD, costAtMinUSD)
	}
	spread := dataflow.MaxValue(g) - dataflow.MinValue(g)
	if spread <= 0 {
		return dataflow.MaxValue(g) / costAtMaxUSD, nil
	}
	return spread / (costAtMaxUSD - costAtMinUSD), nil
}

// PaperSigma reproduces the evaluation's calibration (§8.2): the acceptable
// cost at maximum application value is $4/hour at 2 msg/s scaling linearly
// to $100/hour at 50 msg/s, over a period of hours hours; the acceptable
// cost at minimum value is taken as 25% of that (the paper observes the
// static-deployment cost to anchor these numbers).
func PaperSigma(g *dataflow.Graph, dataRate float64, hours float64) (Objective, error) {
	if dataRate <= 0 || hours <= 0 {
		return Objective{}, fmt.Errorf("core: paper sigma needs positive rate (%v) and hours (%v)", dataRate, hours)
	}
	perHour := 4 + (100-4)*(dataRate-2)/(50-2)
	if perHour < 1 {
		perHour = 1
	}
	costAtMax := perHour * hours
	costAtMin := 0.25 * costAtMax
	sigma, err := SigmaFromExpectations(g, costAtMax, costAtMin)
	if err != nil {
		return Objective{}, err
	}
	o := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: sigma}
	if err := o.Validate(); err != nil {
		return Objective{}, err
	}
	return o, nil
}
