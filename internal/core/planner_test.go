package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
)

// checkPlanInvariants verifies the structural invariants every plan must
// keep: no VM core oversubscription, only positive chunks, non-empty VMs.
func checkPlanInvariants(t *testing.T, p *Plan) {
	t.Helper()
	for _, vm := range p.VMs {
		if vm.UsedCores() == 0 {
			t.Fatal("plan kept an empty VM")
		}
		if vm.UsedCores() > vm.Class.Cores {
			t.Fatalf("VM %s oversubscribed: %d/%d", vm.Class.Name, vm.UsedCores(), vm.Class.Cores)
		}
		for pe, n := range vm.Cores {
			if n <= 0 {
				t.Fatalf("non-positive chunk for PE %d", pe)
			}
		}
	}
}

func TestPropertyPlanNeverOversubscribes(t *testing.T) {
	menu := awsMenu()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dataflow.EvalGraph()
		sel := dataflow.DefaultSelection(g)
		for i := range sel {
			sel[i] = rng.Intn(len(g.PEs[i].Alternates))
		}
		rate := 1 + rng.Float64()*49
		plan, err := PlanAllocation(g, menu, sel, dataflow.DefaultRouting(g),
			dataflow.InputRates{0: rate}, 0.7, Strategy(rng.Intn(2)))
		if err != nil {
			return false
		}
		for _, vm := range plan.VMs {
			if vm.UsedCores() > vm.Class.Cores || vm.UsedCores() == 0 {
				return false
			}
		}
		// Predicted throughput meets the target.
		omega, err := dataflow.PredictOmega(g, sel, dataflow.InputRates{0: rate}, plan.Capacities(g, sel))
		if err != nil || omega < 0.7-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRepackPreservesCapacity(t *testing.T) {
	// IterativeRepack and Downgrade must never reduce any PE's rated
	// capacity (they convert cores at ceil(n*s/s')).
	menu := awsMenu()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPlan(menu)
		nPEs := 2 + rng.Intn(5)
		for pe := 0; pe < nPEs; pe++ {
			cores := 1 + rng.Intn(6)
			for i := 0; i < cores; i++ {
				p.AddCore(pe)
			}
		}
		before := p.ECUs(nPEs)
		p.IterativeRepack()
		p.Downgrade()
		after := p.ECUs(nPEs)
		for pe := range before {
			if after[pe] < before[pe]-1e-9 {
				return false
			}
		}
		for _, vm := range p.VMs {
			if vm.UsedCores() > vm.Class.Cores {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRepackNeverIncreasesCost(t *testing.T) {
	menu := awsMenu()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPlan(menu)
		nPEs := 2 + rng.Intn(5)
		for pe := 0; pe < nPEs; pe++ {
			for i := 0; i < 1+rng.Intn(5); i++ {
				p.AddCore(pe)
			}
		}
		before := p.HourlyCost()
		p.IterativeRepack()
		p.Downgrade()
		return p.HourlyCost() <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	// Materializing a plan through the engine reproduces exactly the
	// planned per-PE ECUs and hourly burn rate.
	g := dataflow.EvalGraph()
	sel, err := SelectAlternates(g, Global)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g),
		dataflow.InputRates{0: 15}, 0.7, Global)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, plan)
	prof, _ := rates.NewConstant(15)
	e, err := sim.NewEngine(sim.Config{
		Graph:      g,
		Menu:       awsMenu(),
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	mat := &materializer{plan: plan, sel: sel}
	if _, err := e.Run(mat); err != nil {
		t.Fatal(err)
	}
	v := sim.NewView(e)
	wantECU := plan.ECUs(g.N())
	for pe := 0; pe < g.N(); pe++ {
		got := 0.0
		for _, a := range v.Assignments(pe) {
			vm, _ := v.VM(a.VMID)
			got += float64(a.Cores) * vm.Class.CoreSpeed
		}
		if diff := got - wantECU[pe]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("PE %d: materialized %v ECU, planned %v", pe, got, wantECU[pe])
		}
	}
	if diff := v.HourlyBurnRate() - plan.HourlyCost(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("burn rate %v != planned %v", v.HourlyBurnRate(), plan.HourlyCost())
	}
}

type materializer struct {
	plan *Plan
	sel  dataflow.Selection
}

func (m *materializer) Name() string { return "materializer" }
func (m *materializer) Deploy(v *sim.View, act sim.Control) error {
	for pe, alt := range m.sel {
		if err := act.SelectAlternate(pe, alt); err != nil {
			return err
		}
	}
	return m.plan.Materialize(act)
}
func (m *materializer) Adapt(*sim.View, sim.Control) error { return nil }

func TestMenuWithoutMediumStillPlans(t *testing.T) {
	// A menu missing 1-core classes exercises the ceil conversions.
	menu := cloud.MustMenu([]*cloud.Class{
		{Name: "large", Cores: 2, CoreSpeed: 2, NetMbps: 100, PricePerHour: 0.24},
		{Name: "xlarge", Cores: 4, CoreSpeed: 2, NetMbps: 100, PricePerHour: 0.48},
	})
	g := dataflow.Fig1Graph()
	sel := dataflow.DefaultSelection(g)
	plan, err := PlanAllocation(g, menu, sel, dataflow.DefaultRouting(g),
		dataflow.InputRates{0: 8}, 0.7, Global)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, plan)
	omega, err := dataflow.PredictOmega(g, sel, dataflow.InputRates{0: 8}, plan.Capacities(g, sel))
	if err != nil || omega < 0.7-1e-9 {
		t.Fatalf("omega %v err %v", omega, err)
	}
}
