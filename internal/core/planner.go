package core

import (
	"fmt"
	"math"
	"sort"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/sim"
)

// PlanVM is a virtual VM used while planning the initial deployment. The
// planner packs cores onto virtual VMs, repacks freely (nothing is billed
// yet), and only then materializes the plan through sim.Actions.
type PlanVM struct {
	Class *cloud.Class
	// Cores maps PE index -> cores of this VM assigned to it.
	Cores map[int]int
}

// UsedCores sums the assigned cores.
func (pv *PlanVM) UsedCores() int {
	n := 0
	for _, c := range pv.Cores {
		n += c
	}
	return n
}

// FreeCores returns the unassigned cores.
func (pv *PlanVM) FreeCores() int { return pv.Class.Cores - pv.UsedCores() }

// ECUFor returns the rated capacity (standard-core-sec/s) this VM provides
// to the PE.
func (pv *PlanVM) ECUFor(pe int) float64 {
	return float64(pv.Cores[pe]) * pv.Class.CoreSpeed
}

// Plan is a full virtual deployment.
type Plan struct {
	menu *cloud.Menu
	VMs  []*PlanVM
	// lastVM remembers where each PE's most recent core went — the paper's
	// RepackPE moves a PE's "last instance".
	lastVM map[int]*PlanVM
}

// NewPlan returns an empty plan over the menu.
func NewPlan(menu *cloud.Menu) *Plan {
	return &Plan{menu: menu, lastVM: map[int]*PlanVM{}}
}

// HourlyCost prices the planned fleet.
func (p *Plan) HourlyCost() float64 {
	c := 0.0
	for _, vm := range p.VMs {
		c += vm.Class.PricePerHour
	}
	return c
}

// ECUs returns the planned rated capacity per PE in standard cores.
func (p *Plan) ECUs(n int) []float64 {
	out := make([]float64, n)
	for _, vm := range p.VMs {
		for pe, cores := range vm.Cores {
			out[pe] += float64(cores) * vm.Class.CoreSpeed
		}
	}
	return out
}

// Capacities converts planned ECUs into msg/s per PE under the selection.
func (p *Plan) Capacities(g *dataflow.Graph, sel dataflow.Selection) []float64 {
	ecus := p.ECUs(g.N())
	caps := make([]float64, g.N())
	for i := range caps {
		caps[i] = ecus[i] / sel.Alt(g, i).Cost
	}
	return caps
}

// AddCore gives PE pe one more core following Alg. 1's placement rule: a
// free core on the VM that last received this PE (collocating instances of
// a PE), then any open largest-class VM with a free core (collocating
// neighbouring PEs), then a newly instantiated VM of the largest class.
func (p *Plan) AddCore(pe int) {
	if vm := p.lastVM[pe]; vm != nil && vm.FreeCores() > 0 {
		vm.Cores[pe]++
		return
	}
	largest := p.menu.Largest()
	for _, vm := range p.VMs {
		if vm.Class == largest && vm.FreeCores() > 0 {
			vm.Cores[pe]++
			p.lastVM[pe] = vm
			return
		}
	}
	vm := &PlanVM{Class: largest, Cores: map[int]int{pe: 1}}
	p.VMs = append(p.VMs, vm)
	p.lastVM[pe] = vm
}

// coresNeeded converts an ECU amount into cores of a class (ceiling).
func coresNeeded(ecu float64, class *cloud.Class) int {
	if ecu <= 0 {
		return 0
	}
	return int(math.Ceil(ecu/class.CoreSpeed - 1e-9))
}

// RepackPE implements the global strategy's per-PE repack (Table 1): for
// every over-provisioned PE, move its cores on its last VM to the smallest
// class large enough for the work they actually carry. demandECU gives each
// PE's required rated capacity.
func (p *Plan) RepackPE(demandECU []float64) {
	pes := make([]int, 0, len(p.lastVM))
	for pe := range p.lastVM {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		last := p.lastVM[pe]
		if last == nil || last.Cores[pe] == 0 {
			continue
		}
		totalECU := 0.0
		for _, vm := range p.VMs {
			totalECU += vm.ECUFor(pe)
		}
		if pe >= len(demandECU) || totalECU <= demandECU[pe]+1e-9 {
			continue // not over-provisioned
		}
		otherECU := totalECU - last.ECUFor(pe)
		residual := demandECU[pe] - otherECU
		if residual <= 0 {
			// The last instance is entirely redundant beyond rounding;
			// keep a single smallest core for liveness.
			residual = 1e-9
		}
		smallest := p.menu.SmallestFitting(residual)
		if smallest == nil || smallest.PricePerHour >= last.Class.PricePerHour {
			continue
		}
		cores := coresNeeded(residual, smallest)
		if cores == 0 {
			cores = 1
		}
		if cores > smallest.Cores {
			continue
		}
		// Move: strip from the last VM, open a dedicated small VM.
		delete(last.Cores, pe)
		nv := &PlanVM{Class: smallest, Cores: map[int]int{pe: cores}}
		p.VMs = append(p.VMs, nv)
		p.lastVM[pe] = nv
	}
	p.dropEmpty()
}

// IterativeRepack empties lightly used VMs by relocating their core chunks
// into free cores elsewhere (the global strategy's RepackFreeVMs). A chunk
// of n cores at speed s needs ceil(n*s/s') cores at the destination so the
// PE keeps its rated capacity.
func (p *Plan) IterativeRepack() {
	for {
		sort.SliceStable(p.VMs, func(i, j int) bool {
			ui := float64(p.VMs[i].UsedCores()) / float64(p.VMs[i].Class.Cores)
			uj := float64(p.VMs[j].UsedCores()) / float64(p.VMs[j].Class.Cores)
			return ui < uj
		})
		moved := false
		for vi, victim := range p.VMs {
			if victim.UsedCores() == 0 {
				continue
			}
			if plan, ok := p.planEvacuation(vi); ok {
				p.applyEvacuation(vi, plan)
				moved = true
				break
			}
		}
		if !moved {
			break
		}
		p.dropEmpty()
	}
	p.dropEmpty()
}

type coreMove struct {
	pe    int
	dst   *PlanVM
	cores int
}

func (p *Plan) planEvacuation(victimIdx int) ([]coreMove, bool) {
	victim := p.VMs[victimIdx]
	free := map[*PlanVM]int{}
	var candidates []*PlanVM
	for i, vm := range p.VMs {
		if i == victimIdx {
			continue
		}
		free[vm] = vm.FreeCores()
		candidates = append(candidates, vm)
	}
	// Iterate victims' PEs and candidate VMs in stable order so the plan
	// is deterministic.
	pes := make([]int, 0, len(victim.Cores))
	for pe := range victim.Cores {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	var moves []coreMove
	for _, pe := range pes {
		n := victim.Cores[pe]
		ecu := float64(n) * victim.Class.CoreSpeed
		placed := false
		// Best fit: destination with the least sufficient free capacity.
		var bestVM *PlanVM
		bestNeed := 0
		for _, vm := range candidates {
			f := free[vm]
			need := coresNeeded(ecu, vm.Class)
			if need == 0 {
				need = 1
			}
			if need <= f {
				if bestVM == nil || f-need < free[bestVM]-bestNeed {
					bestVM = vm
					bestNeed = need
				}
			}
		}
		if bestVM != nil {
			free[bestVM] -= bestNeed
			moves = append(moves, coreMove{pe: pe, dst: bestVM, cores: bestNeed})
			placed = true
		}
		if !placed {
			return nil, false
		}
	}
	return moves, true
}

func (p *Plan) applyEvacuation(victimIdx int, moves []coreMove) {
	victim := p.VMs[victimIdx]
	for _, m := range moves {
		m.dst.Cores[m.pe] += m.cores
		if p.lastVM[m.pe] == victim {
			p.lastVM[m.pe] = m.dst
		}
	}
	victim.Cores = map[int]int{}
}

// Downgrade replaces every planned VM's class with the cheapest class that
// still hosts its chunks at no capacity loss.
func (p *Plan) Downgrade() {
	for _, vm := range p.VMs {
		if vm.UsedCores() == 0 {
			continue
		}
		var best *cloud.Class
		var bestCores map[int]int
		for _, c := range p.menu.Classes() {
			if c.PricePerHour >= vm.Class.PricePerHour {
				continue
			}
			need := map[int]int{}
			total := 0
			ok := true
			for pe, n := range vm.Cores {
				cn := coresNeeded(float64(n)*vm.Class.CoreSpeed, c)
				if cn == 0 {
					cn = 1
				}
				need[pe] = cn
				total += cn
			}
			if total > c.Cores {
				ok = false
			}
			if ok && (best == nil || c.PricePerHour < best.PricePerHour) {
				best = c
				bestCores = need
			}
		}
		if best != nil {
			vm.Class = best
			vm.Cores = bestCores
		}
	}
	p.dropEmpty()
}

func (p *Plan) dropEmpty() {
	out := p.VMs[:0]
	for _, vm := range p.VMs {
		if vm.UsedCores() > 0 {
			out = append(out, vm)
		}
	}
	p.VMs = out
}

// Workers returns the planned data-parallel width per PE: the total cores
// across all planned VMs. The floe runtime applies this directly as
// SetParallelism — planning in the simulator, executing for real.
func (p *Plan) Workers(n int) []int {
	out := make([]int, n)
	for _, vm := range p.VMs {
		for pe, cores := range vm.Cores {
			if pe >= 0 && pe < n {
				out[pe] += cores
			}
		}
	}
	return out
}

// Materialize acquires the planned VMs and assigns cores through the
// simulator's action surface, in deterministic order.
func (p *Plan) Materialize(act sim.Control) error {
	for _, vm := range p.VMs {
		id, err := act.AcquireVM(vm.Class.Name)
		if err != nil {
			return fmt.Errorf("core: materialize: %w", err)
		}
		pes := make([]int, 0, len(vm.Cores))
		for pe := range vm.Cores {
			pes = append(pes, pe)
		}
		sort.Ints(pes)
		for _, pe := range pes {
			if err := act.AssignCores(pe, id, vm.Cores[pe]); err != nil {
				return fmt.Errorf("core: materialize: %w", err)
			}
		}
	}
	return nil
}
