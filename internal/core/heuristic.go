package core

import (
	"fmt"
	"sort"

	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/sim"
)

// Options configures a heuristic policy. The zero value is not valid; use
// NewHeuristic which applies the paper's defaults.
type Options struct {
	// Strategy picks local or global decision making (Table 1).
	Strategy Strategy
	// Dynamic enables the alternate-selection stage ("application
	// dynamism"); disabled it reproduces the paper's ablation that always
	// runs the default (best-value) alternates.
	Dynamic bool
	// Adaptive enables runtime adaptation; disabled the policy is a static
	// deployment (deploy once, never touch).
	Adaptive bool
	// Objective supplies OmegaHat/Epsilon/Sigma.
	Objective Objective
	// AlternatePeriod is how many intervals between alternate-selection
	// runs (Alg. 2 runs the two stages at different cadences). Default 5.
	AlternatePeriod int
	// ResourcePeriod is how many intervals between resource-redeployment
	// runs. Default 1.
	ResourcePeriod int
	// Margin is the headroom above OmegaHat the controller targets.
	// Default 0.05.
	Margin float64
	// Hysteresis is the extra headroom required before scaling down, to
	// damp oscillation. Default 0.10.
	Hysteresis float64
	// ReleaseWindowSec releases an empty VM only within this many seconds
	// of its paid hour boundary (an already-paid VM is free spare
	// capacity). Default 2 intervals at runtime.
	ReleaseWindowSec int64
	// MaxGrowPerInterval bounds cores added per adaptation step. Default
	// 64.
	MaxGrowPerInterval int
	// NoConsolidate disables the global strategy's runtime consolidation
	// (ablation knob; the paper's global heuristic consolidates).
	NoConsolidate bool
	// UseSpot lets the resource stage place capacity BEYOND a PE's base
	// requirement on preemptible (spot) VMs when the menu offers them: the
	// constraint-critical base stays on on-demand capacity, the headroom
	// rides the cheap market and is re-provisioned when reclaimed. An
	// extension beyond the paper's on-demand-only model.
	UseSpot bool
}

// Heuristic is the paper's deployment + runtime-adaptation policy. It
// implements sim.Scheduler.
type Heuristic struct {
	opts  Options
	ticks int
}

// NewHeuristic validates options, applies defaults, and returns the policy.
func NewHeuristic(opts Options) (*Heuristic, error) {
	if err := opts.Objective.Validate(); err != nil {
		return nil, err
	}
	if opts.AlternatePeriod == 0 {
		opts.AlternatePeriod = 5
	}
	if opts.ResourcePeriod == 0 {
		opts.ResourcePeriod = 1
	}
	if opts.AlternatePeriod < 1 || opts.ResourcePeriod < 1 {
		return nil, fmt.Errorf("core: stage periods must be >= 1 (got %d, %d)", opts.AlternatePeriod, opts.ResourcePeriod)
	}
	if opts.Margin == 0 {
		opts.Margin = 0.05
	}
	if opts.Margin < 0 || opts.Margin > 1-opts.Objective.OmegaHat+0.3 {
		return nil, fmt.Errorf("core: margin %v out of range", opts.Margin)
	}
	if opts.Hysteresis == 0 {
		opts.Hysteresis = 0.10
	}
	if opts.Hysteresis < 0 {
		return nil, fmt.Errorf("core: hysteresis %v < 0", opts.Hysteresis)
	}
	if opts.MaxGrowPerInterval == 0 {
		opts.MaxGrowPerInterval = 64
	}
	if opts.MaxGrowPerInterval < 1 {
		return nil, fmt.Errorf("core: max grow %d < 1", opts.MaxGrowPerInterval)
	}
	return &Heuristic{opts: opts}, nil
}

// MustHeuristic is NewHeuristic that panics on error.
func MustHeuristic(opts Options) *Heuristic {
	h, err := NewHeuristic(opts)
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements sim.Scheduler.
func (h *Heuristic) Name() string {
	name := h.opts.Strategy.String()
	if !h.opts.Adaptive {
		name += "-static"
	}
	if !h.opts.Dynamic {
		name += "-nodyn"
	}
	return name
}

// targetOmega returns the throughput level the controller provisions for:
// the constraint plus margin, boosted while the period average has slipped
// below the constraint so the average is pulled back up.
func (h *Heuristic) targetOmega(meanOmega float64) float64 {
	t := h.opts.Objective.OmegaHat + h.opts.Margin
	if meanOmega < h.opts.Objective.OmegaHat {
		t += 2 * (h.opts.Objective.OmegaHat - meanOmega)
	}
	if t > 1 {
		t = 1
	}
	return t
}

// Deploy implements Alg. 1.
func (h *Heuristic) Deploy(v *sim.View, act sim.Control) error {
	g := v.Graph()
	sel := dataflow.DefaultSelection(g)
	if h.opts.Dynamic {
		var err error
		sel, err = SelectAlternates(g, h.opts.Strategy)
		if err != nil {
			return err
		}
	}
	for pe, alt := range sel {
		if err := act.SelectAlternate(pe, alt); err != nil {
			return err
		}
	}
	// Alg. 1 allocates "until the throughput constraint is met": the
	// deployment targets OmegaHat itself, assuming rated VM performance and
	// the estimated rates. Adaptive variants add their margin at runtime;
	// static variants live (or die) with this estimate, which is exactly
	// the fragility Figs. 4-5 demonstrate.
	// Deployment always plans on-demand: the base allocation carries the
	// constraint and must not vanish with a spot reclamation.
	plan, err := PlanAllocation(g, v.Menu().OnDemand(), sel, v.Routing(), v.EstimatedInputRates(), h.opts.Objective.OmegaHat, h.opts.Strategy)
	if err != nil {
		return err
	}
	return plan.Materialize(act)
}

// Adapt implements Alg. 2: the alternate-selection stage every
// AlternatePeriod intervals and the resource stage every ResourcePeriod
// intervals, never in the same tick ordering ambiguity — alternates first,
// then resources see the new selection.
func (h *Heuristic) Adapt(v *sim.View, act sim.Control) error {
	if !h.opts.Adaptive {
		return nil
	}
	h.ticks++
	if h.opts.Dynamic && h.ticks%h.opts.AlternatePeriod == 0 {
		if err := h.pathStage(v, act); err != nil {
			return err
		}
		if err := h.alternateStage(v, act); err != nil {
			return err
		}
	}
	if h.ticks%h.opts.ResourcePeriod == 0 {
		if err := h.resourceStage(v, act); err != nil {
			return err
		}
	}
	return nil
}

// demandECU estimates each PE's required rated capacity (standard cores).
// The global strategy propagates monitored external input rates through the
// whole graph; the local strategy trusts only each PE's own observed
// arrivals — which underestimates true demand when an upstream PE is
// throttled, the exact cascading weakness §7.2 attributes to local
// decisions.
func (h *Heuristic) demandECU(v *sim.View, sel dataflow.Selection) ([]float64, error) {
	g := v.Graph()
	demand := make([]float64, g.N())
	if h.opts.Strategy == Global {
		inRate, _, err := dataflow.PropagateRatesRouted(g, sel, v.Routing(), v.EstimatedInputRates())
		if err != nil {
			return nil, err
		}
		for pe := range demand {
			demand[pe] = inRate[pe] * sel.Alt(g, pe).Cost
		}
		return demand, nil
	}
	est := v.EstimatedInputRates()
	for pe := range demand {
		arr := v.ObservedArrivalRate(pe)
		if r, ok := est[pe]; ok && r > arr {
			arr = r // input PEs know their external rate directly
		}
		demand[pe] = arr * sel.Alt(g, pe).Cost
	}
	return demand, nil
}

// effectiveECU returns each PE's allocated capacity in standard cores,
// scaled by the monitored per-VM CPU coefficients.
func effectiveECU(v *sim.View) []float64 {
	g := v.Graph()
	out := make([]float64, g.N())
	for pe := 0; pe < g.N(); pe++ {
		for _, a := range v.Assignments(pe) {
			vm, ok := v.VM(a.VMID)
			if !ok {
				continue
			}
			out[pe] += float64(a.Cores) * vm.Class.CoreSpeed * vm.CPUCoeff
		}
	}
	return out
}

// alternateStage is Alg. 2's ALTERNATE_REDEPLOY: build the feasible set per
// PE from the throughput band, rank by value/cost (strategy-dependent
// cost), and switch to the first alternate that fits the PE's currently
// available resources.
func (h *Heuristic) alternateStage(v *sim.View, act sim.Control) error {
	g := v.Graph()
	sel := v.Selection()
	obj := h.opts.Objective
	omega := v.MeanOmega()
	under := omega <= obj.OmegaHat-obj.Epsilon
	over := omega >= obj.OmegaHat+obj.Epsilon
	if !under && !over {
		return nil
	}
	sink := decisionSink(act)
	demand, err := h.demandECU(v, sel)
	if err != nil {
		return err
	}
	available := effectiveECU(v)
	var downCosts [][]float64
	if h.opts.Strategy == Global {
		downCosts, err = dataflow.DownstreamCostsRouted(g, sel, v.Routing())
		if err != nil {
			return err
		}
	}
	for pe := 0; pe < g.N(); pe++ {
		alts := g.PEs[pe].Alternates
		if len(alts) < 2 {
			continue
		}
		active := sel[pe]
		activeCost := alts[active].Cost
		// Arrival rate implied by the demand estimate.
		arrival := 0.0
		if activeCost > 0 {
			arrival = demand[pe] / activeCost
		}
		type cand struct {
			idx   int
			need  float64 // ECU this alternate requires at the arrival rate
			ratio float64 // value / strategy cost
		}
		var feasible []cand
		for j, a := range alts {
			if j == active {
				continue
			}
			need := arrival * a.Cost
			if under && a.Cost > activeCost {
				continue // need cheaper processing
			}
			if over && a.Cost < activeCost {
				continue // room to buy value back
			}
			cost := a.Cost
			if h.opts.Strategy == Global {
				cost = downCosts[pe][j]
			}
			feasible = append(feasible, cand{idx: j, need: need, ratio: a.Value / cost})
		}
		if len(feasible) == 0 {
			continue
		}
		sort.SliceStable(feasible, func(i, j int) bool { return feasible[i].ratio > feasible[j].ratio })
		chosen := -1
		for _, c := range feasible {
			if c.need <= available[pe]+1e-9 {
				chosen = c.idx
				break
			}
		}
		lightest := chosen < 0 && under
		if lightest {
			// Nothing fits the degraded capacity: take the lightest
			// alternate to relieve pressure fastest.
			best := feasible[0]
			for _, c := range feasible[1:] {
				if c.need < best.need {
					best = c
				}
			}
			chosen = best.idx
		}
		if chosen >= 0 && chosen != active {
			if err := act.SelectAlternate(pe, chosen); err != nil {
				return err
			}
			sel[pe] = chosen
			if sink != nil {
				dec := obs.Decision{
					Kind: "alternate", PE: pe,
					Chosen: fmt.Sprintf("select-alternate %s", alts[chosen].Name),
					Inputs: map[string]float64{
						"meanOmega":    omega,
						"omegaHat":     obj.OmegaHat,
						"epsilon":      obj.Epsilon,
						"arrivalRate":  arrival,
						"availableEcu": available[pe],
					},
				}
				if lightest {
					dec.Reason = "no feasible alternate fits the degraded capacity; lightest taken to relieve pressure"
				} else if under {
					dec.Reason = "period omega under the constraint band; cheaper processing"
				} else {
					dec.Reason = "period omega above the constraint band; buy value back"
				}
				seenChosen := false
				for _, c := range feasible {
					opt := obs.DecisionOption{Name: alts[c.idx].Name, Score: c.ratio}
					switch {
					case c.idx == chosen:
						seenChosen = true
					case !seenChosen:
						opt.Rejected = fmt.Sprintf("needs %.2f ECU, only %.2f available", c.need, available[pe])
					default:
						opt.Rejected = "lower value/cost rank"
					}
					dec.Options = append(dec.Options, opt)
				}
				sink.Decide(dec)
			}
		}
	}
	return nil
}
