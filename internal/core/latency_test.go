package core

import (
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
)

func TestMeetsLatency(t *testing.T) {
	o := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0.01}
	if !o.MeetsLatency(1e9) {
		t.Fatal("unconstrained objective rejected a latency")
	}
	o.LatencyHatSec = 30
	if !o.MeetsLatency(30) || o.MeetsLatency(31) {
		t.Fatal("bound comparison wrong")
	}
	o.LatencyHatSec = -1
	if err := o.Validate(); err == nil {
		t.Fatal("negative bound accepted")
	}
}

func runLatencyScenario(t *testing.T, bound float64) (float64, float64) {
	t.Helper()
	g := dataflow.EvalGraph()
	obj, err := PaperSigma(g, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	obj.LatencyHatSec = bound
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	// Spiky load builds backlogs that pure-throughput control tolerates.
	base, err := rates.NewConstant(15)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := rates.NewSpike(base, 3, 1800, 300)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Perf:       trace.NewIdeal(),
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: 4 * 3600,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	peak := e.Collector().Quantile(0.95, func(p metrics.Point) float64 { return p.LatencySec })
	return sum.MeanLatencySec, peak
}

func TestLatencyBoundTightensControl(t *testing.T) {
	unboundedMean, unboundedPeak := runLatencyScenario(t, 0)
	boundedMean, boundedPeak := runLatencyScenario(t, 30)
	if boundedMean > unboundedMean {
		t.Fatalf("latency bound raised mean latency: %v vs %v", boundedMean, unboundedMean)
	}
	if boundedPeak >= unboundedPeak {
		t.Fatalf("latency bound did not cut the latency tail: p95 %v vs %v", boundedPeak, unboundedPeak)
	}
}
