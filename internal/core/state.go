package core

import (
	"encoding/json"
	"fmt"

	"dynamicdf/internal/sim"
)

// heuristicState is the Heuristic's mutable state: just the adaptation tick
// counter, which phases the alternate/resource stage periods. Options are
// configuration, re-supplied at construction, not state.
type heuristicState struct {
	Ticks int `json:"ticks"`
}

// CheckpointState implements sim.StatefulScheduler.
func (h *Heuristic) CheckpointState() ([]byte, error) {
	return json.Marshal(heuristicState{Ticks: h.ticks})
}

// RestoreState implements sim.StatefulScheduler.
func (h *Heuristic) RestoreState(blob []byte) error {
	var st heuristicState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("core: restore heuristic state: %w", err)
	}
	if st.Ticks < 0 {
		return fmt.Errorf("core: restore heuristic state: negative ticks %d", st.Ticks)
	}
	h.ticks = st.Ticks
	return nil
}

var _ sim.StatefulScheduler = (*Heuristic)(nil)
