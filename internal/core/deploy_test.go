package core

import (
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
)

func awsMenu() *cloud.Menu { return cloud.MustMenu(cloud.AWS2013Classes()) }

func TestSelectAlternatesLocalPicksBestRatio(t *testing.T) {
	g := dataflow.Fig1Graph()
	sel, err := SelectAlternates(g, Local)
	if err != nil {
		t.Fatal(err)
	}
	// E2: e1 ratio 1/1.2=0.83, e2 ratio 0.9/0.6=1.5 -> e2.
	// E3: e1 ratio 1/1.5=0.67, e2 ratio 0.8/0.5=1.6 -> e2.
	if sel[1] != 1 || sel[2] != 1 {
		t.Fatalf("selection = %v, want e2 for E2 and E3 (as Fig. 1b)", sel)
	}
}

func TestSelectAlternatesGlobalWeighsDownstream(t *testing.T) {
	// Two alternates for "head": equal value; alt 0 cheap but selectivity 3
	// (floods downstream), alt 1 pricier locally but selectivity 1. An
	// expensive downstream PE makes global prefer alt 1 while local picks
	// alt 0.
	g := dataflow.NewBuilder().
		AddPE("head",
			dataflow.Alt("flood", 1.0, 0.2, 3.0),
			dataflow.Alt("tame", 1.0, 0.4, 1.0)).
		AddPE("tail", dataflow.Alt("only", 1.0, 5.0, 1.0)).
		Connect("head", "tail").
		MustBuild()
	local, err := SelectAlternates(g, Local)
	if err != nil {
		t.Fatal(err)
	}
	if local[0] != 0 {
		t.Fatalf("local selection = %v, want flood (cheapest own cost)", local)
	}
	global, err := SelectAlternates(g, Global)
	if err != nil {
		t.Fatal(err)
	}
	// Global cost flood: 0.2 + 3*5 = 15.2; tame: 0.4 + 1*5 = 5.4.
	if global[0] != 1 {
		t.Fatalf("global selection = %v, want tame", global)
	}
}

func TestPlanAllocationMeetsTarget(t *testing.T) {
	g := dataflow.Fig1Graph()
	sel, _ := SelectAlternates(g, Local)
	est := dataflow.InputRates{0: 10}
	for _, strat := range []Strategy{Local, Global} {
		plan, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), est, 0.75, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		caps := plan.Capacities(g, sel)
		omega, err := dataflow.PredictOmega(g, sel, est, caps)
		if err != nil {
			t.Fatal(err)
		}
		if omega < 0.75-1e-9 {
			t.Fatalf("%v: predicted omega %v below target", strat, omega)
		}
		// Every PE must own at least one core.
		ecus := plan.ECUs(g.N())
		for pe, e := range ecus {
			if e <= 0 {
				t.Fatalf("%v: PE %d has no capacity", strat, pe)
			}
		}
	}
}

func TestPlanAllocationGlobalNoCostlier(t *testing.T) {
	g := dataflow.EvalGraph()
	sel, _ := SelectAlternates(g, Global)
	for _, rate := range []float64{2, 5, 10, 20, 50} {
		est := dataflow.InputRates{0: rate}
		local, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), est, 0.75, Local)
		if err != nil {
			t.Fatal(err)
		}
		global, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), est, 0.75, Global)
		if err != nil {
			t.Fatal(err)
		}
		if global.HourlyCost() > local.HourlyCost()+1e-9 {
			t.Fatalf("rate %v: global $%.2f/h costlier than local $%.2f/h",
				rate, global.HourlyCost(), local.HourlyCost())
		}
	}
}

func TestPlanAllocationLocalUsesLargestClassOnly(t *testing.T) {
	g := dataflow.Fig1Graph()
	sel := dataflow.DefaultSelection(g)
	plan, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), dataflow.InputRates{0: 5}, 0.75, Local)
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range plan.VMs {
		if vm.Class.Name != "m1.xlarge" {
			t.Fatalf("local opened a %s", vm.Class.Name)
		}
	}
}

func TestPlanAllocationGlobalDowngradesAtLowRate(t *testing.T) {
	// At 2 msg/s the whole dataflow needs ~2 ECU; global should not keep a
	// whole xlarge fleet.
	g := dataflow.Fig1Graph()
	sel, _ := SelectAlternates(g, Global)
	plan, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), dataflow.InputRates{0: 2}, 0.75, Global)
	if err != nil {
		t.Fatal(err)
	}
	sawSmaller := false
	for _, vm := range plan.VMs {
		if vm.Class.Name != "m1.xlarge" {
			sawSmaller = true
		}
	}
	if !sawSmaller {
		t.Fatalf("global never downgraded: cost $%.2f/h with %d VMs", plan.HourlyCost(), len(plan.VMs))
	}
}

func TestPlanAllocationRejectsBadTarget(t *testing.T) {
	g := dataflow.Fig1Graph()
	sel := dataflow.DefaultSelection(g)
	if _, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), dataflow.InputRates{0: 5}, 0, Local); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), dataflow.InputRates{0: 5}, 1.5, Local); err == nil {
		t.Fatal("target 1.5 accepted")
	}
}

func TestPlanAllocationZeroRate(t *testing.T) {
	g := dataflow.Fig1Graph()
	sel := dataflow.DefaultSelection(g)
	plan, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), dataflow.InputRates{0: 0}, 0.75, Global)
	if err != nil {
		t.Fatal(err)
	}
	// One core per PE minimum, nothing more.
	ecus := plan.ECUs(g.N())
	for pe, e := range ecus {
		if e <= 0 {
			t.Fatalf("PE %d has no core", pe)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if Local.String() != "local" || Global.String() != "global" {
		t.Fatal("strategy names wrong")
	}
}

func TestPlanECUsAndCost(t *testing.T) {
	menu := awsMenu()
	p := NewPlan(menu)
	p.AddCore(0)
	p.AddCore(0)
	p.AddCore(1)
	if len(p.VMs) != 1 {
		t.Fatalf("VMs = %d, want 1 (xlarge shared)", len(p.VMs))
	}
	ecus := p.ECUs(2)
	if ecus[0] != 4 || ecus[1] != 2 {
		t.Fatalf("ecus = %v", ecus)
	}
	if p.HourlyCost() != 0.48 {
		t.Fatalf("cost = %v", p.HourlyCost())
	}
	// Fill the xlarge, force a second VM.
	p.AddCore(1)
	p.AddCore(2)
	if len(p.VMs) != 2 {
		t.Fatalf("VMs = %d, want 2", len(p.VMs))
	}
}

func TestPlanIterativeRepackMerges(t *testing.T) {
	menu := awsMenu()
	p := NewPlan(menu)
	// Two xlarges, each hosting 1 core — mergeable into one.
	vm1 := &PlanVM{Class: menu.Largest(), Cores: map[int]int{0: 1}}
	vm2 := &PlanVM{Class: menu.Largest(), Cores: map[int]int{1: 1}}
	p.VMs = []*PlanVM{vm1, vm2}
	p.IterativeRepack()
	if len(p.VMs) != 1 {
		t.Fatalf("VMs after repack = %d", len(p.VMs))
	}
	if p.VMs[0].UsedCores() != 2 {
		t.Fatalf("merged cores = %d", p.VMs[0].UsedCores())
	}
}

func TestPlanDowngrade(t *testing.T) {
	menu := awsMenu()
	p := NewPlan(menu)
	p.VMs = []*PlanVM{{Class: menu.Largest(), Cores: map[int]int{0: 1}}}
	p.Downgrade()
	// 1 core at speed 2 (2 ECU) fits an m1.medium (1 core x 2 ECU).
	if p.VMs[0].Class.Name != "m1.medium" {
		t.Fatalf("downgraded to %s", p.VMs[0].Class.Name)
	}
	// Capacity must not drop.
	if got := p.ECUs(1)[0]; got < 2 {
		t.Fatalf("ECU after downgrade = %v", got)
	}
}
