package core

import (
	"errors"
	"strings"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
)

// tenantChain is the standalone graph every test tenant runs: src -> work.
func tenantChain() *dataflow.Graph {
	return dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("work", dataflow.Alt("e", 1, 0.5, 1)).
		Connect("src", "work").
		MustBuild()
}

// mtConfig composes two chain tenants "a" and "b" onto one fleet.
func mtConfig(t *testing.T, rateA, rateB float64, horizon int64) sim.Config {
	t.Helper()
	b := dataflow.NewBuilder()
	for _, p := range []string{"a", "b"} {
		b.AddPE(p+"/src", dataflow.Alt("e", 1, 0.1, 1))
		b.AddPE(p+"/work", dataflow.Alt("e", 1, 0.5, 1))
		b.Connect(p+"/src", p+"/work")
	}
	return sim.Config{
		Graph:  b.MustBuild(),
		Menu:   cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs: map[int]rates.Profile{0: constProfile(t, rateA), 2: constProfile(t, rateB)},
		Seed:   7, HorizonSec: horizon,
		Tenants: []sim.Tenant{
			{Name: "a", LoPE: 0, HiPE: 2, OmegaFloor: 0.7, Graph: tenantChain()},
			{Name: "b", LoPE: 2, HiPE: 4, OmegaFloor: 0.7, Priority: 1, Graph: tenantChain()},
		},
	}
}

// scripted is a scheduler whose deploy/adapt hooks are supplied inline.
type scripted struct {
	name   string
	deploy func(*sim.View, sim.Control) error
	adapt  func(*sim.View, sim.Control) error
}

func (s *scripted) Name() string { return s.name }
func (s *scripted) Deploy(v *sim.View, act sim.Control) error {
	if s.deploy == nil {
		return nil
	}
	return s.deploy(v, act)
}
func (s *scripted) Adapt(v *sim.View, act sim.Control) error {
	if s.adapt == nil {
		return nil
	}
	return s.adapt(v, act)
}

func TestNewMultiTenantValidation(t *testing.T) {
	if _, err := NewMultiTenant(nil, Arbiter{}); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := NewMultiTenant([]sim.Scheduler{&scripted{}, nil}, Arbiter{}); err == nil {
		t.Fatal("nil inner policy accepted")
	}
	if _, err := NewMultiTenant([]sim.Scheduler{&scripted{}}, Arbiter{ScarceFrac: -0.1}); err == nil {
		t.Fatal("negative scarce fraction accepted")
	}
	if _, err := NewMultiTenant([]sim.Scheduler{&scripted{}}, Arbiter{ScarceFrac: 1}); err == nil {
		t.Fatal("scarce fraction 1 accepted")
	}
	m, err := NewMultiTenant([]sim.Scheduler{&scripted{}, &scripted{}}, Arbiter{})
	if err != nil {
		t.Fatal(err)
	}
	if m.arb.ScarceFrac != 0.125 {
		t.Fatalf("default scarce fraction = %v", m.arb.ScarceFrac)
	}
	if m.Name() != "multi-tenant[2]" {
		t.Fatalf("name = %q", m.Name())
	}
}

// TestMultiTenantHeuristics drives two unmodified Heuristics, one per
// tenant, over the shared fleet: both dataflows must converge to their
// throughput bands without either policy knowing the composite exists.
func TestMultiTenantHeuristics(t *testing.T) {
	cfg := mtConfig(t, 5, 5, 4*3600)
	inner := make([]sim.Scheduler, 2)
	for i := range inner {
		h, err := NewHeuristic(Options{
			Strategy:  Global,
			Objective: testObjective(t, tenantChain(), 5, 4),
		})
		if err != nil {
			t.Fatal(err)
		}
		inner[i] = h
	}
	m, err := NewMultiTenant(inner, Arbiter{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Tenants) != 2 {
		t.Fatalf("tenant summaries = %+v", sum.Tenants)
	}
	for _, ts := range sum.Tenants {
		if ts.MeanOmega < 0.7 {
			t.Fatalf("tenant %s mean omega = %v, want >= floor", ts.Name, ts.MeanOmega)
		}
	}
}

// TestArbiterDeniesHealthyTenantUnderScarcity pins the fairness rule: once
// the fleet is scarce and some tenant is below its floor, a healthy tenant's
// scale-up is denied — and the ruling lands in the audit log as a
// "fair-share" decision.
func TestArbiterDeniesHealthyTenantUnderScarcity(t *testing.T) {
	cfg := mtConfig(t, 5, 5, 600)
	cfg.MaxVMs = 1
	cfg.Audit = true

	var acquireErr error
	tried := false
	// Tenant a deploys the fleet's only VM and keeps trying to grow; tenant
	// b never deploys, so it starves below its floor.
	a := &scripted{
		name: "a",
		deploy: func(v *sim.View, act sim.Control) error {
			id, err := act.AcquireVM("m1.large")
			if err != nil {
				return err
			}
			if err := act.AssignCores(0, id, 1); err != nil {
				return err
			}
			return act.AssignCores(1, id, 1)
		},
		adapt: func(v *sim.View, act sim.Control) error {
			if !tried && v.Now() > 120 {
				tried = true
				_, acquireErr = act.AcquireVM("m1.large")
			}
			return nil
		},
	}
	b := &scripted{name: "b"}
	m, err := NewMultiTenant([]sim.Scheduler{a, b}, Arbiter{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(m); err != nil {
		t.Fatal(err)
	}
	if !tried {
		t.Fatal("scripted adapt never ran")
	}
	var denied *DeniedError
	if !errors.As(acquireErr, &denied) {
		t.Fatalf("acquire error = %v, want *DeniedError", acquireErr)
	}
	if denied.Tenant != "a" {
		t.Fatalf("denied tenant = %q", denied.Tenant)
	}
	found := false
	for _, entry := range e.AuditLog() {
		d := entry.Decision
		if d == nil || d.Kind != "fair-share" {
			continue
		}
		if d.Tenant != "a" || !strings.HasPrefix(d.Chosen, "deny") {
			t.Fatalf("fair-share ruling = %+v", d)
		}
		if len(d.Options) != 2 {
			t.Fatalf("fair-share options = %+v", d.Options)
		}
		found = true
	}
	if !found {
		t.Fatal("no fair-share decision in audit log")
	}
}

// TestMultiTenantDeployOrder: higher-priority tenants deploy first so they
// claim quota before contention can arise.
func TestMultiTenantDeployOrder(t *testing.T) {
	cfg := mtConfig(t, 5, 5, 120)
	var order []string
	mk := func(name string) *scripted {
		return &scripted{name: name, deploy: func(v *sim.View, act sim.Control) error {
			order = append(order, name)
			return nil
		}}
	}
	// Tenant b carries priority 1 in mtConfig, a carries 0.
	m, err := NewMultiTenant([]sim.Scheduler{mk("a"), mk("b")}, Arbiter{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(m); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("deploy order = %v, want [b a]", order)
	}
}

// TestMultiTenantCheckpointState: the composite blob round-trips the inner
// policies' states in tenant order, null for stateless tenants.
func TestMultiTenantCheckpointState(t *testing.T) {
	h, err := NewHeuristic(Options{Objective: testObjective(t, tenantChain(), 5, 4)})
	if err != nil {
		t.Fatal(err)
	}
	h.ticks = 3
	m, err := NewMultiTenant([]sim.Scheduler{h, &scripted{name: "stateless"}}, Arbiter{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHeuristic(Options{Objective: testObjective(t, tenantChain(), 5, 4)})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMultiTenant([]sim.Scheduler{h2, &scripted{name: "stateless"}}, Arbiter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if h2.ticks != 3 {
		t.Fatalf("restored ticks = %d, want 3", h2.ticks)
	}
	// Tenant-count mismatch must refuse to restore.
	m3, err := NewMultiTenant([]sim.Scheduler{h2}, Arbiter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.RestoreState(blob); err == nil {
		t.Fatal("mismatched tenant count restored")
	}
	// A non-null blob for a stateless tenant must refuse to restore.
	if err := m2.RestoreState([]byte(`[{"ticks":1},{"ticks":1}]`)); err == nil {
		t.Fatal("stateless tenant accepted a state blob")
	}
}
