package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/sim"
)

// Arbiter is the fairness policy that governs scale-up contention on a
// shared fleet. While free quota is plentiful every tenant's policy acts
// independently; once the fleet runs scarce the arbiter decides who may
// still acquire VMs, enforcing per-tenant Ω floors first and priority
// second. Every scarcity-path ruling — grant and deny alike — is emitted as
// a "fair-share" obs.Decision so `dftrace explain` can reconstruct why a
// tenant was throttled.
type Arbiter struct {
	// ScarceFrac is the free-quota fraction at or below which the fleet
	// counts as scarce: free slots (MaxVMs − active − pending) ≤
	// ScarceFrac·MaxVMs triggers arbitration. Default 0.125.
	ScarceFrac float64
}

// DeniedError is returned from AcquireVM when the arbiter rules against the
// requesting tenant. The heuristic's addCore treats any acquisition error as
// graceful degradation, so a denial simply defers the tenant's growth to a
// later interval.
type DeniedError struct {
	Tenant string
	Reason string
}

func (e *DeniedError) Error() string {
	return fmt.Sprintf("core: acquisition denied to tenant %q: %s", e.Tenant, e.Reason)
}

// arbitrate rules on tenant ten's request for one more VM. It returns nil
// on grant and a *DeniedError on deny, emitting provenance for every ruling
// taken on the scarcity path.
func (a Arbiter) arbitrate(v *sim.View, ten int, sink sim.DecisionSink) error {
	maxVMs := v.MaxVMs()
	free := maxVMs - len(v.ActiveVMs()) - len(v.PendingVMs())
	if float64(free) > a.ScarceFrac*float64(maxVMs) {
		return nil // abundance: no arbitration, no provenance noise
	}
	n := v.TenantCount()
	req := v.TenantInfo(ten)
	starving := make([]bool, n)
	for i := 0; i < n; i++ {
		starving[i] = v.TenantMeanOmega(i) < v.TenantInfo(i).OmegaFloor
	}
	anyOtherStarving := false
	blocker := -1 // starving tenant strictly outranking the requester
	for i := 0; i < n; i++ {
		if i == ten || !starving[i] {
			continue
		}
		anyOtherStarving = true
		t := v.TenantInfo(i)
		if t.Priority > req.Priority && (blocker < 0 || t.Priority > v.TenantInfo(blocker).Priority) {
			blocker = i
		}
	}

	grant := true
	var reason string
	switch {
	case !starving[ten] && anyOtherStarving:
		grant = false
		reason = "fleet is scarce and another tenant is below its omega floor"
	case starving[ten] && blocker >= 0:
		grant = false
		reason = fmt.Sprintf("starving tenant %q holds strictly higher priority", v.TenantInfo(blocker).Name)
	case starving[ten]:
		reason = "requester is below its omega floor; scarce capacity goes to the starving"
	default:
		reason = "no tenant is below its floor; scarce capacity granted first-come"
	}

	if sink != nil {
		dec := obs.Decision{
			Kind:   "fair-share",
			Tenant: req.Name,
			Reason: reason,
			Inputs: map[string]float64{
				"meanOmega": v.TenantMeanOmega(ten),
				"floor":     req.OmegaFloor,
				"priority":  float64(req.Priority),
				"freeSlots": float64(free),
				"maxVMs":    float64(maxVMs),
			},
		}
		if grant {
			dec.Chosen = fmt.Sprintf("grant acquisition to %q", req.Name)
		} else {
			dec.Chosen = fmt.Sprintf("deny acquisition to %q", req.Name)
		}
		for i := 0; i < n; i++ {
			t := v.TenantInfo(i)
			opt := obs.DecisionOption{
				Name: t.Name,
				// Score is the floor margin: negative means starving.
				Score: v.TenantMeanOmega(i) - t.OmegaFloor,
			}
			switch {
			case i == ten && !grant:
				opt.Rejected = reason
			case i == ten:
				// the granted requester
			case i == blocker:
				opt.Rejected = "" // the implied winner of the scarce slot
			case starving[i]:
				opt.Rejected = "starving but not outranking the requester"
			default:
				opt.Rejected = "above its omega floor"
			}
			dec.Options = append(dec.Options, opt)
		}
		sink.Decide(dec)
	}
	if !grant {
		return &DeniedError{Tenant: req.Name, Reason: reason}
	}
	return nil
}

// MultiTenant runs one policy per tenant over the shared fleet, arbitrating
// scale-up contention through an Arbiter. Each inner policy sees only its
// tenant's scoped View and a translated Control, so an unmodified Heuristic
// works per-tenant without knowing the composite graph exists. It implements
// sim.Scheduler and sim.StatefulScheduler.
type MultiTenant struct {
	inner []sim.Scheduler
	arb   Arbiter
}

// NewMultiTenant builds the multi-tenant policy: inner[i] drives tenant i.
func NewMultiTenant(inner []sim.Scheduler, arb Arbiter) (*MultiTenant, error) {
	if len(inner) == 0 {
		return nil, fmt.Errorf("core: multi-tenant policy needs at least one tenant")
	}
	for i, s := range inner {
		if s == nil {
			return nil, fmt.Errorf("core: tenant %d policy is nil", i)
		}
	}
	if arb.ScarceFrac == 0 {
		arb.ScarceFrac = 0.125
	}
	if arb.ScarceFrac < 0 || arb.ScarceFrac >= 1 {
		return nil, fmt.Errorf("core: scarce fraction %v outside (0,1)", arb.ScarceFrac)
	}
	return &MultiTenant{inner: inner, arb: arb}, nil
}

// Name implements sim.Scheduler.
func (m *MultiTenant) Name() string { return fmt.Sprintf("multi-tenant[%d]", len(m.inner)) }

// order ranks tenants for a scheduling pass: starving tenants first (when
// ranking by starvation), then priority descending, then index for
// determinism.
func (m *MultiTenant) order(v *sim.View, starvingFirst bool) []int {
	idx := make([]int, len(m.inner))
	starv := make([]bool, len(m.inner))
	for i := range idx {
		idx[i] = i
		if starvingFirst {
			starv[i] = v.TenantMeanOmega(i) < v.TenantInfo(i).OmegaFloor
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if starv[i] != starv[j] {
			return starv[i]
		}
		pi, pj := v.TenantInfo(i).Priority, v.TenantInfo(j).Priority
		if pi != pj {
			return pi > pj
		}
		return i < j
	})
	return idx
}

// Deploy implements sim.Scheduler: each tenant's policy deploys its own
// dataflow, higher-priority tenants first so they claim fleet quota before
// contention can arise.
func (m *MultiTenant) Deploy(v *sim.View, act sim.Control) error {
	if v.TenantCount() != len(m.inner) {
		return fmt.Errorf("core: multi-tenant policy drives %d tenants, run has %d", len(m.inner), v.TenantCount())
	}
	for _, i := range m.order(v, false) {
		if err := m.inner[i].Deploy(v.Tenant(i), m.control(v, act, i)); err != nil {
			return fmt.Errorf("core: tenant %q deploy: %w", v.TenantInfo(i).Name, err)
		}
	}
	return nil
}

// Adapt implements sim.Scheduler: starving tenants adapt first (they get
// first call on whatever scarce quota the arbiter will still grant), then
// priority order.
func (m *MultiTenant) Adapt(v *sim.View, act sim.Control) error {
	for _, i := range m.order(v, true) {
		if err := m.inner[i].Adapt(v.Tenant(i), m.control(v, act, i)); err != nil {
			return fmt.Errorf("core: tenant %q adapt: %w", v.TenantInfo(i).Name, err)
		}
	}
	return nil
}

// control wraps the engine's control surface for one tenant: PE and choice
// indices translate from tenant-local to composite numbering, VM
// acquisition passes through the arbiter, and forwarded decisions are
// stamped with the tenant's name.
func (m *MultiTenant) control(v *sim.View, act sim.Control, i int) *tenantControl {
	return &tenantControl{act: act, v: v, m: m, ten: i, t: v.TenantInfo(i)}
}

type tenantControl struct {
	act sim.Control
	v   *sim.View
	m   *MultiTenant
	ten int
	t   sim.Tenant
}

var (
	_ sim.Control      = (*tenantControl)(nil)
	_ sim.DecisionSink = (*tenantControl)(nil)
)

func (c *tenantControl) SelectAlternate(pe, alt int) error {
	return c.act.SelectAlternate(pe+c.t.LoPE, alt)
}

func (c *tenantControl) SelectRoute(group, target int) error {
	return c.act.SelectRoute(group+c.t.LoChoice, target)
}

// AcquireVM consults the arbiter before touching the shared fleet. A denial
// surfaces as an error, which the heuristic's addCore treats as graceful
// degradation (retry next interval).
func (c *tenantControl) AcquireVM(className string) (int, error) {
	if err := c.m.arb.arbitrate(c.v, c.ten, decisionSink(c.act)); err != nil {
		return 0, err
	}
	return c.act.AcquireVM(className)
}

func (c *tenantControl) ReleaseVM(vmID int) error { return c.act.ReleaseVM(vmID) }

func (c *tenantControl) AssignCores(pe, vmID, n int) error {
	return c.act.AssignCores(pe+c.t.LoPE, vmID, n)
}

func (c *tenantControl) UnassignCores(pe, vmID, n int) error {
	return c.act.UnassignCores(pe+c.t.LoPE, vmID, n)
}

func (c *tenantControl) MovePE(pe, fromVM, toVM, n int) error {
	return c.act.MovePE(pe+c.t.LoPE, fromVM, toVM, n)
}

func (c *tenantControl) Menu() *cloud.Menu { return c.act.Menu() }

func (c *tenantControl) Log(action, detail string) { c.act.Log(action, detail) }

// Decide forwards the inner policy's provenance, translating the decision's
// PE to composite numbering (only the kinds that carry one) and stamping the
// tenant name so `dftrace explain` attributes it.
func (c *tenantControl) Decide(d obs.Decision) {
	sink := decisionSink(c.act)
	if sink == nil {
		return
	}
	switch d.Kind {
	case "alternate", "scale-up", "scale-down":
		if d.PE >= 0 {
			d.PE += c.t.LoPE
		}
	}
	if d.Tenant == "" {
		d.Tenant = c.t.Name
	}
	sink.Decide(d)
}

func (c *tenantControl) DecisionsObserved() bool { return decisionSink(c.act) != nil }

var _ sim.StatefulScheduler = (*MultiTenant)(nil)

// CheckpointState implements sim.StatefulScheduler: a JSON array of the
// inner policies' blobs, in tenant order. A stateless inner policy
// serializes as null.
func (m *MultiTenant) CheckpointState() ([]byte, error) {
	blobs := make([]json.RawMessage, len(m.inner))
	for i, s := range m.inner {
		ss, ok := s.(sim.StatefulScheduler)
		if !ok {
			blobs[i] = json.RawMessage("null")
			continue
		}
		b, err := ss.CheckpointState()
		if err != nil {
			return nil, fmt.Errorf("core: tenant %d checkpoint: %w", i, err)
		}
		blobs[i] = b
	}
	return json.Marshal(blobs)
}

// RestoreState implements sim.StatefulScheduler.
func (m *MultiTenant) RestoreState(blob []byte) error {
	var blobs []json.RawMessage
	if err := json.Unmarshal(blob, &blobs); err != nil {
		return fmt.Errorf("core: restore multi-tenant state: %w", err)
	}
	if len(blobs) != len(m.inner) {
		return fmt.Errorf("core: snapshot carries %d tenant policies, config has %d", len(blobs), len(m.inner))
	}
	for i, b := range blobs {
		if string(b) == "null" {
			continue
		}
		ss, ok := m.inner[i].(sim.StatefulScheduler)
		if !ok {
			return fmt.Errorf("core: tenant %d policy %q cannot restore state", i, m.inner[i].Name())
		}
		if err := ss.RestoreState(b); err != nil {
			return fmt.Errorf("core: tenant %d restore: %w", i, err)
		}
	}
	return nil
}
