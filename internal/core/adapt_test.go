package core

import (
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
)

func TestTargetOmegaBoostsWhenSlipping(t *testing.T) {
	obj := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0.01}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	// Comfortable: target is the constraint plus margin.
	if got := h.targetOmega(0.9); got != 0.75 {
		t.Fatalf("comfortable target = %v", got)
	}
	// Slipping: boost proportional to the deficit, capped at 1.
	if got := h.targetOmega(0.6); got != 0.95 {
		t.Fatalf("slipping target = %v", got)
	}
	if got := h.targetOmega(0.2); got != 1.0 {
		t.Fatalf("deep-slip target = %v", got)
	}
}

// alternateBandGraph has a single interior PE whose value/cost ratios rank
// lean > mid > rich, so Alg. 1 deploys lean and upgrades are available.
func alternateBandGraph() *dataflow.Graph {
	return dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("work",
			dataflow.Alt("rich", 1.0, 1.0, 1),
			dataflow.Alt("mid", 0.9, 0.6, 1),
			dataflow.Alt("lean", 0.7, 0.3, 1)).
		AddPE("sink", dataflow.Alt("e", 1, 0.1, 1)).
		Chain("src", "work", "sink").
		MustBuild()
}

// richFirstGraph ranks rich > mid > lean by value/cost, so Alg. 1 deploys
// rich and downgrades are available under pressure.
func richFirstGraph() *dataflow.Graph {
	return dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("work",
			dataflow.Alt("rich", 1.0, 0.8, 1),
			dataflow.Alt("mid", 0.8, 0.7, 1),
			dataflow.Alt("lean", 0.55, 0.6, 1)).
		AddPE("sink", dataflow.Alt("e", 1, 0.1, 1)).
		Chain("src", "work", "sink").
		MustBuild()
}

func TestAlternateStageDowngradesWhenUnderProvisioned(t *testing.T) {
	// Degraded cloud + fleet cap: the run sits under the throughput band;
	// after a few alternate stages, "work" must run a cheaper alternate
	// than the deployment choice.
	g := richFirstGraph()
	obj, err := PaperSigma(g, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	prof, _ := rates.NewConstant(20)
	e, err := sim.NewEngine(sim.Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Perf:       &trace.Scaled{Base: trace.NewIdeal(), Scale: 0.45},
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: 2 * 3600,
		MaxVMs:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(h); err != nil {
		t.Fatal(err)
	}
	deploySel, _ := SelectAlternates(g, Global)
	finalSel := e.Selection()
	deployCost := g.PEs[1].Alternates[deploySel[1]].Cost
	finalCost := g.PEs[1].Alternates[finalSel[1]].Cost
	if finalCost >= deployCost {
		t.Fatalf("no downgrade: deploy cost %v, final %v", deployCost, finalCost)
	}
}

func TestAlternateStageUpgradesWhenOverProvisioned(t *testing.T) {
	// Ideal cloud, trivial load: the run sits above the band and the
	// stage buys value back up to the richest alternate that fits.
	g := alternateBandGraph()
	obj, err := PaperSigma(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Local strategy: xlarge-only allocation leaves slack ECU on work's
	// core, so an upgrade fits the available resources.
	h := MustHeuristic(Options{Strategy: Local, Dynamic: true, Adaptive: true, Objective: obj})
	prof, _ := rates.NewConstant(2)
	e, err := sim.NewEngine(sim.Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Perf:       trace.NewIdeal(),
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: 2 * 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(h); err != nil {
		t.Fatal(err)
	}
	// Deployment picks the best ratio (lean: 0.7/0.3 = 2.33); with ample
	// headroom the stage upgrades toward rich.
	finalSel := e.Selection()
	deploySel, _ := SelectAlternates(g, Global)
	finalVal := g.PEs[1].Alternates[finalSel[1]].Value
	deployVal := g.PEs[1].Alternates[deploySel[1]].Value
	if finalVal <= deployVal {
		t.Fatalf("no upgrade: deploy value %v, final %v", deployVal, finalVal)
	}
}

func TestReleaseIdleHonoursBoundaryWindow(t *testing.T) {
	g := alternateBandGraph()
	obj := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0.01}
	prof, _ := rates.NewConstant(2)
	cfg := sim.Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: 3600,
	}
	e, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: false, Adaptive: true, Objective: obj})
	v := sim.NewView(e)
	act := sim.NewActions(e)
	// Acquire an idle VM at t=0; far from its boundary it must survive
	// the release pass.
	id, err := act.AcquireVM("m1.small")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.releaseIdle(v, act); err != nil {
		t.Fatal(err)
	}
	if _, ok := v.VM(id); !ok {
		t.Fatal("idle VM released far from its hour boundary")
	}
	// With a window covering the whole hour it goes immediately.
	h2 := MustHeuristic(Options{Strategy: Global, Dynamic: false, Adaptive: true,
		Objective: obj, ReleaseWindowSec: 3600})
	if err := h2.releaseIdle(v, act); err != nil {
		t.Fatal(err)
	}
	if _, ok := v.VM(id); ok {
		t.Fatal("idle VM survived a whole-hour release window")
	}
}

func TestConsolidateMergesLightVMs(t *testing.T) {
	g := alternateBandGraph()
	obj := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0.01}
	prof, _ := rates.NewConstant(2)
	e, err := sim.NewEngine(sim.Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := sim.NewView(e)
	act := sim.NewActions(e)
	// Two xlarges, one core each: consolidation should empty one.
	a, _ := act.AcquireVM("m1.xlarge")
	b, _ := act.AcquireVM("m1.xlarge")
	if err := act.AssignCores(0, a, 1); err != nil {
		t.Fatal(err)
	}
	if err := act.AssignCores(1, b, 1); err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: false, Adaptive: true, Objective: obj})
	if err := h.consolidate(v, act); err != nil {
		t.Fatal(err)
	}
	empty := 0
	for _, vm := range v.ActiveVMs() {
		if vm.UsedCores == 0 {
			empty++
		}
	}
	if empty != 1 {
		t.Fatalf("consolidation emptied %d VMs, want 1", empty)
	}
	// Both PEs still have their core.
	if v.AssignedCores(0) != 1 || v.AssignedCores(1) != 1 {
		t.Fatalf("cores lost: %d / %d", v.AssignedCores(0), v.AssignedCores(1))
	}
}
