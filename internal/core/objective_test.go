package core

import (
	"math"
	"testing"

	"dynamicdf/internal/dataflow"
)

func TestObjectiveValidate(t *testing.T) {
	good := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Objective{
		{OmegaHat: 0, Epsilon: 0.05, Sigma: 1},
		{OmegaHat: 1.2, Epsilon: 0.05, Sigma: 1},
		{OmegaHat: 0.7, Epsilon: -0.1, Sigma: 1},
		{OmegaHat: 0.7, Epsilon: 0.8, Sigma: 1},
		{OmegaHat: 0.7, Epsilon: 0.05, Sigma: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("bad objective %d accepted", i)
		}
	}
}

func TestTheta(t *testing.T) {
	o := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0.02}
	if got := o.Theta(0.9, 10); math.Abs(got-(0.9-0.2)) > 1e-12 {
		t.Fatalf("theta = %v", got)
	}
}

func TestMeetsConstraint(t *testing.T) {
	o := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0}
	if !o.MeetsConstraint(0.7) || !o.MeetsConstraint(0.66) {
		t.Fatal("within tolerance rejected")
	}
	if o.MeetsConstraint(0.64) {
		t.Fatal("below tolerance accepted")
	}
}

func TestSigmaFromExpectations(t *testing.T) {
	g := dataflow.Fig1Graph()
	// Spread = 1 - 0.925 = 0.075 over $40-$10.
	sigma, err := SigmaFromExpectations(g, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := (dataflow.MaxValue(g) - dataflow.MinValue(g)) / 30
	if math.Abs(sigma-want) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", sigma, want)
	}
	if _, err := SigmaFromExpectations(g, 10, 40); err == nil {
		t.Fatal("inverted costs accepted")
	}
}

func TestSigmaSingleAlternateFallback(t *testing.T) {
	g := dataflow.NewBuilder().
		AddPE("a", dataflow.Alt("x", 1, 1, 1)).
		AddPE("b", dataflow.Alt("x", 1, 1, 1)).
		Connect("a", "b").
		MustBuild()
	sigma, err := SigmaFromExpectations(g, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sigma-1.0/50) > 1e-12 {
		t.Fatalf("fallback sigma = %v", sigma)
	}
}

func TestPaperSigma(t *testing.T) {
	g := dataflow.EvalGraph()
	// At 2 msg/s: $4/hour at max value.
	o, err := PaperSigma(g, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if o.OmegaHat != 0.7 || o.Epsilon != 0.05 {
		t.Fatalf("constraint = %+v", o)
	}
	if o.Sigma <= 0 {
		t.Fatalf("sigma = %v", o.Sigma)
	}
	// At 50 msg/s: $100/hour — sigma shrinks as acceptable cost grows.
	o50, err := PaperSigma(g, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if o50.Sigma >= o.Sigma {
		t.Fatalf("sigma should fall with rate: %v -> %v", o.Sigma, o50.Sigma)
	}
	if _, err := PaperSigma(g, 0, 10); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := PaperSigma(g, 5, 0); err == nil {
		t.Fatal("zero hours accepted")
	}
}
