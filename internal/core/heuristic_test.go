package core

import (
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
)

// Compile-time checks: every policy satisfies sim.Scheduler.
var (
	_ sim.Scheduler = (*Heuristic)(nil)
	_ sim.Scheduler = (*BruteForce)(nil)
)

func testObjective(t *testing.T, g *dataflow.Graph, rate float64, hours float64) Objective {
	t.Helper()
	o, err := PaperSigma(g, rate, hours)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func runPolicy(t *testing.T, g *dataflow.Graph, p rates.Profile, perf trace.Provider, horizon int64, s sim.Scheduler) (metrics.Summary, *sim.Engine) {
	t.Helper()
	cfg := sim.Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Perf:       perf,
		Inputs:     map[int]rates.Profile{g.Inputs()[0]: p},
		HorizonSec: horizon,
		Seed:       7,
	}
	e, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return sum, e
}

func constProfile(t *testing.T, r float64) rates.Profile {
	t.Helper()
	p, err := rates.NewConstant(r)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewHeuristicValidation(t *testing.T) {
	obj := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0.01}
	if _, err := NewHeuristic(Options{Objective: Objective{}}); err == nil {
		t.Fatal("zero objective accepted")
	}
	if _, err := NewHeuristic(Options{Objective: obj, AlternatePeriod: -1}); err == nil {
		t.Fatal("negative period accepted")
	}
	if _, err := NewHeuristic(Options{Objective: obj, Hysteresis: -1}); err == nil {
		t.Fatal("negative hysteresis accepted")
	}
	if _, err := NewHeuristic(Options{Objective: obj, MaxGrowPerInterval: -2}); err == nil {
		t.Fatal("negative grow accepted")
	}
	h, err := NewHeuristic(Options{Objective: obj})
	if err != nil {
		t.Fatal(err)
	}
	if h.opts.AlternatePeriod != 5 || h.opts.ResourcePeriod != 1 {
		t.Fatalf("defaults = %+v", h.opts)
	}
}

func TestHeuristicNames(t *testing.T) {
	obj := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0.01}
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Strategy: Local, Dynamic: true, Adaptive: true, Objective: obj}, "local"},
		{Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj}, "global"},
		{Options{Strategy: Local, Dynamic: true, Adaptive: false, Objective: obj}, "local-static"},
		{Options{Strategy: Global, Dynamic: false, Adaptive: true, Objective: obj}, "global-nodyn"},
		{Options{Strategy: Local, Dynamic: false, Adaptive: false, Objective: obj}, "local-static-nodyn"},
	}
	for _, c := range cases {
		if got := MustHeuristic(c.opts).Name(); got != c.want {
			t.Fatalf("name = %q, want %q", got, c.want)
		}
	}
}

func TestStaticDeployMeetsConstraintWithoutVariability(t *testing.T) {
	g := dataflow.EvalGraph()
	obj := testObjective(t, g, 5, 2)
	for _, strat := range []Strategy{Local, Global} {
		h := MustHeuristic(Options{Strategy: strat, Dynamic: true, Adaptive: false, Objective: obj})
		sum, _ := runPolicy(t, g, constProfile(t, 5), trace.NewIdeal(), 2*3600, h)
		if !obj.MeetsConstraint(sum.MeanOmega) {
			t.Fatalf("%v static: omega %.3f misses constraint on ideal cloud", strat, sum.MeanOmega)
		}
	}
}

func TestStaticDeployFailsUnderInfraVariability(t *testing.T) {
	g := dataflow.EvalGraph()
	obj := testObjective(t, g, 20, 4)
	perf := trace.MustReplayed(trace.ReplayedConfig{Seed: 5})
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: false, Objective: obj})
	sum, _ := runPolicy(t, g, constProfile(t, 20), perf, 4*3600, h)
	if sum.MeanOmega >= obj.OmegaHat+obj.Epsilon {
		t.Fatalf("static omega %.3f unaffected by infrastructure variability", sum.MeanOmega)
	}
}

func TestAdaptiveMeetsConstraintUnderInfraVariability(t *testing.T) {
	g := dataflow.EvalGraph()
	obj := testObjective(t, g, 20, 4)
	perf := trace.MustReplayed(trace.ReplayedConfig{Seed: 5})
	for _, strat := range []Strategy{Local, Global} {
		h := MustHeuristic(Options{Strategy: strat, Dynamic: true, Adaptive: true, Objective: obj})
		sum, _ := runPolicy(t, g, constProfile(t, 20), perf, 4*3600, h)
		if !obj.MeetsConstraint(sum.MeanOmega) {
			t.Fatalf("%v adaptive: omega %.3f misses constraint under infra variability", strat, sum.MeanOmega)
		}
	}
}

func TestAdaptiveMeetsConstraintUnderDataVariability(t *testing.T) {
	g := dataflow.EvalGraph()
	obj := testObjective(t, g, 10, 4)
	w, err := rates.NewWave(10, 4, 1200)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Local, Global} {
		h := MustHeuristic(Options{Strategy: strat, Dynamic: true, Adaptive: true, Objective: obj})
		sum, _ := runPolicy(t, g, w, trace.NewIdeal(), 4*3600, h)
		if !obj.MeetsConstraint(sum.MeanOmega) {
			t.Fatalf("%v adaptive: omega %.3f misses constraint under wave load", strat, sum.MeanOmega)
		}
	}
}

func TestDynamismReducesCost(t *testing.T) {
	// The paper's headline: with application dynamism the heuristics pick
	// cheaper alternates under pressure, cutting dollars (~15% for global).
	g := dataflow.EvalGraph()
	obj := testObjective(t, g, 20, 10)
	perf := trace.MustReplayed(trace.ReplayedConfig{Seed: 9})
	w, err := rates.NewWave(20, 8, 1800)
	if err != nil {
		t.Fatal(err)
	}
	dyn := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	nodyn := MustHeuristic(Options{Strategy: Global, Dynamic: false, Adaptive: true, Objective: obj})
	sumDyn, _ := runPolicy(t, g, w, perf, 10*3600, dyn)
	sumNo, _ := runPolicy(t, g, w, perf, 10*3600, nodyn)
	if !obj.MeetsConstraint(sumDyn.MeanOmega) || !obj.MeetsConstraint(sumNo.MeanOmega) {
		t.Fatalf("constraint missed: dyn %.3f nodyn %.3f", sumDyn.MeanOmega, sumNo.MeanOmega)
	}
	if sumDyn.TotalCostUSD >= sumNo.TotalCostUSD {
		t.Fatalf("dynamism did not save: dyn $%.2f vs nodyn $%.2f", sumDyn.TotalCostUSD, sumNo.TotalCostUSD)
	}
}

func TestAdaptiveScalesDownAfterLoadDrop(t *testing.T) {
	// Spike then trough: the fleet must shrink once the spike passes.
	g := dataflow.EvalGraph()
	obj := testObjective(t, g, 10, 6)
	base := constProfile(t, 30)
	spike, err := rates.NewSpike(base, 1, 100000, 1) // effectively constant 30
	if err != nil {
		t.Fatal(err)
	}
	_ = spike
	// Use a wave that spends hours high then low.
	w, err := rates.NewWave(20, 15, 4*3600)
	if err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	_, e := runPolicy(t, g, w, trace.NewIdeal(), 6*3600, h)
	pts := e.Collector().Points()
	peak, trough := 0, 1<<30
	for _, p := range pts {
		if p.ActiveVMs > peak {
			peak = p.ActiveVMs
		}
	}
	for _, p := range pts[len(pts)/2:] {
		if p.ActiveVMs < trough {
			trough = p.ActiveVMs
		}
	}
	if trough >= peak {
		t.Fatalf("fleet never shrank: peak %d, later trough %d", peak, trough)
	}
}

func TestBruteForceDeploysAndMeetsConstraint(t *testing.T) {
	g := dataflow.Fig1Graph()
	obj := testObjective(t, g, 5, 2)
	bf, err := NewBruteForce(obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := runPolicy(t, g, constProfile(t, 5), trace.NewIdeal(), 2*3600, bf)
	if !obj.MeetsConstraint(sum.MeanOmega) {
		t.Fatalf("brute force omega %.3f misses constraint", sum.MeanOmega)
	}
	if sum.TotalCostUSD <= 0 {
		t.Fatal("brute force deployed nothing")
	}
}

func TestBruteForceBestThetaAmongStatic(t *testing.T) {
	// On an ideal cloud at constant rate, brute force is the optimal
	// static deployment: its objective value Theta must be at least every
	// static heuristic's (it enumerates their alternate choices too, with
	// a packing at least as cheap).
	g := dataflow.Fig1Graph()
	obj := testObjective(t, g, 10, 2)
	bf, _ := NewBruteForce(obj, 2)
	sumBF, _ := runPolicy(t, g, constProfile(t, 10), trace.NewIdeal(), 2*3600, bf)
	thetaBF := obj.Theta(sumBF.MeanGamma, sumBF.TotalCostUSD)
	for _, strat := range []Strategy{Local, Global} {
		h := MustHeuristic(Options{Strategy: strat, Dynamic: true, Adaptive: false, Objective: obj})
		sum, _ := runPolicy(t, g, constProfile(t, 10), trace.NewIdeal(), 2*3600, h)
		theta := obj.Theta(sum.MeanGamma, sum.TotalCostUSD)
		if thetaBF < theta-1e-9 {
			t.Fatalf("brute force theta %.4f below %v-static %.4f", thetaBF, strat, theta)
		}
	}
	if !obj.MeetsConstraint(sumBF.MeanOmega) {
		t.Fatalf("brute force omega %.3f", sumBF.MeanOmega)
	}
}

func TestBruteForceComboBudget(t *testing.T) {
	g := dataflow.EvalGraph()
	obj := testObjective(t, g, 5, 1)
	bf, _ := NewBruteForce(obj, 1)
	bf.MaxCombos = 2 // 25 combos in EvalGraph exceed this
	cfg := sim.Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:     map[int]rates.Profile{0: constProfile(t, 5)},
		HorizonSec: 3600,
	}
	e, _ := sim.NewEngine(cfg)
	if _, err := e.Run(bf); err == nil {
		t.Fatal("combo budget not enforced")
	}
}

func TestNewBruteForceValidation(t *testing.T) {
	if _, err := NewBruteForce(Objective{}, 1); err == nil {
		t.Fatal("bad objective accepted")
	}
	good := Objective{OmegaHat: 0.7, Epsilon: 0.05, Sigma: 0.01}
	if _, err := NewBruteForce(good, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestGlobalCheaperThanLocalNoDynAtHighRate(t *testing.T) {
	// Fig. 8's extreme comparison: global (dynamic, repacked) vs local
	// without dynamism (largest VMs, best-value alternates).
	g := dataflow.EvalGraph()
	obj := testObjective(t, g, 35, 6)
	perf := trace.MustReplayed(trace.ReplayedConfig{Seed: 13})
	w, err := rates.NewWave(35, 14, 1800)
	if err != nil {
		t.Fatal(err)
	}
	global := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	localNo := MustHeuristic(Options{Strategy: Local, Dynamic: false, Adaptive: true, Objective: obj})
	sumG, _ := runPolicy(t, g, w, perf, 6*3600, global)
	sumL, _ := runPolicy(t, g, w, perf, 6*3600, localNo)
	if sumG.TotalCostUSD >= sumL.TotalCostUSD {
		t.Fatalf("global $%.2f not cheaper than local-nodyn $%.2f", sumG.TotalCostUSD, sumL.TotalCostUSD)
	}
}
