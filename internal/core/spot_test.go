package core

import (
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
)

func spotMenu() *cloud.Menu {
	return cloud.MustMenu(cloud.WithSpotMarket(cloud.AWS2013Classes(), 0.3))
}

func TestDeploymentStaysOnDemandWithSpotOnMenu(t *testing.T) {
	// Even with UseSpot, the initial deployment (the constraint-critical
	// base) must not touch preemptible classes.
	g := dataflow.EvalGraph()
	obj, err := PaperSigma(g, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: false,
		Objective: obj, UseSpot: true})
	prof, _ := rates.NewConstant(20)
	e, err := sim.NewEngine(sim.Config{
		Graph:      g,
		Menu:       spotMenu(),
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(h); err != nil {
		t.Fatal(err)
	}
	for _, vm := range e.Fleet().All() {
		if vm.Class.Preemptible {
			t.Fatalf("deployment acquired preemptible %s", vm.Class.Name)
		}
	}
}

func TestSpillAcquiresSpotOnlyBeyondBase(t *testing.T) {
	// Degrade the cloud so runtime adaptation needs extra capacity: the
	// base top-up stays on-demand, the headroom beyond demand*OmegaHat
	// lands on spot classes.
	g := dataflow.EvalGraph()
	obj, err := PaperSigma(g, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: false, Adaptive: true,
		Objective: obj, UseSpot: true})
	prof, _ := rates.NewConstant(20)
	e, err := sim.NewEngine(sim.Config{
		Graph:      g,
		Menu:       spotMenu(),
		Perf:       &trace.Scaled{Base: trace.NewIdeal(), Scale: 0.7},
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: 2 * 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	spotCount := 0
	for _, vm := range e.Fleet().All() {
		if vm.Class.Preemptible {
			spotCount++
		}
	}
	if spotCount == 0 {
		t.Fatal("no spot VM acquired despite UseSpot under pressure")
	}
	if !obj.MeetsConstraint(sum.MeanOmega) {
		t.Fatalf("omega %.3f", sum.MeanOmega)
	}
}

func TestNoSpotWithoutOptIn(t *testing.T) {
	// Same scenario without UseSpot: the fleet never touches the market
	// even though spot classes are the cheapest on the menu.
	g := dataflow.EvalGraph()
	obj, err := PaperSigma(g, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	prof, _ := rates.NewConstant(20)
	e, err := sim.NewEngine(sim.Config{
		Graph:      g,
		Menu:       spotMenu(),
		Perf:       &trace.Scaled{Base: trace.NewIdeal(), Scale: 0.7},
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: 2 * 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(h); err != nil {
		t.Fatal(err)
	}
	for _, vm := range e.Fleet().All() {
		if vm.Class.Preemptible {
			t.Fatalf("acquired %s without UseSpot", vm.Class.Name)
		}
	}
}

func TestRouteFitsRespectsQuotaAndCoefficients(t *testing.T) {
	g := pathGraph()
	obj, err := PaperSigma(g, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	prof, _ := rates.NewConstant(20)
	mk := func(maxVMs int, scale float64) bool {
		e, err := sim.NewEngine(sim.Config{
			Graph:      g,
			Menu:       awsMenu(),
			Perf:       &trace.Scaled{Base: trace.NewIdeal(), Scale: scale},
			Inputs:     map[int]rates.Profile{0: prof},
			HorizonSec: 600,
			MaxVMs:     maxVMs,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Deploy so the monitored coefficients prime, then probe routeFits
		// for the expensive precision route.
		if _, err := e.Run(h); err != nil {
			t.Fatal(err)
		}
		v := sim.NewView(e)
		return h.routeFits(v, v.Selection(), dataflow.Routing{0})
	}
	// Huge quota on a healthy cloud: the precision route fits.
	if !mk(512, 1.0) {
		t.Fatal("precision route should fit with a large quota on a healthy cloud")
	}
	// Tight quota on a badly degraded cloud: it cannot (the quota covers
	// the deployment but not the 3x expansion the coefficients call for).
	if mk(9, 0.3) {
		t.Fatal("precision route should not fit a 9-VM quota at 30% performance")
	}
}
