package core

import (
	"testing"

	"dynamicdf/internal/dataflow"
)

func TestHeuristicStateRoundTrip(t *testing.T) {
	g := dataflow.Fig1Graph()
	obj, err := PaperSigma(g, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeuristic(Options{Objective: obj, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	h.ticks = 17
	blob, err := h.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `{"ticks":17}` {
		t.Fatalf("non-canonical state blob: %s", blob)
	}
	h2, err := NewHeuristic(Options{Objective: obj, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if h2.ticks != 17 {
		t.Fatalf("restored ticks %d, want 17", h2.ticks)
	}
	if err := h2.RestoreState([]byte(`{"ticks":-1}`)); err == nil {
		t.Fatal("accepted negative ticks")
	}
	if err := h2.RestoreState([]byte(`not json`)); err == nil {
		t.Fatal("accepted garbage state")
	}
}
