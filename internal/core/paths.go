package core

import (
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/sim"
)

// pathStage extends Alg. 2's alternate selection to dynamic paths (§9): for
// every choice group, rank the candidate routes by routed application value
// per unit of per-message route cost, and — inside the same throughput
// band logic as alternates — switch to a cheaper route when the constraint
// is slipping or a richer route when there is headroom. A no-op for graphs
// without choice groups.
func (h *Heuristic) pathStage(v *sim.View, act sim.Control) error {
	g := v.Graph()
	if len(g.Choices) == 0 {
		return nil
	}
	sel := v.Selection()
	routing := v.Routing()
	obj := h.opts.Objective
	omega := v.MeanOmega()
	under := omega <= obj.OmegaHat-obj.Epsilon
	over := omega >= obj.OmegaHat+obj.Epsilon
	if !under && !over {
		return nil
	}
	for gi := range g.Choices {
		costs, err := dataflow.RouteCosts(g, sel, routing, gi)
		if err != nil {
			return err
		}
		active := routing[gi]
		type cand struct {
			idx   int
			cost  float64
			ratio float64
		}
		var feasible []cand
		for ti := range g.Choices[gi].Targets {
			if ti == active {
				continue
			}
			if under && costs[ti] >= costs[active] {
				continue // need a cheaper path
			}
			if over && costs[ti] <= costs[active] {
				continue // room to route through a richer path
			}
			trial := routing.Clone()
			trial[gi] = ti
			if over && !h.routeFits(v, sel, trial) {
				// The richer path would demand more than the fleet can
				// sustain (monitored performance, acquisition quota):
				// upgrading would just collapse throughput again.
				continue
			}
			val, err := dataflow.RoutedValue(g, sel, trial)
			if err != nil {
				return err
			}
			feasible = append(feasible, cand{idx: ti, cost: costs[ti], ratio: val / costs[ti]})
		}
		best := -1
		bestRatio := 0.0
		for _, c := range feasible {
			if best < 0 || c.ratio > bestRatio {
				best = c.idx
				bestRatio = c.ratio
			}
		}
		if best >= 0 {
			if err := act.SelectRoute(gi, best); err != nil {
				return err
			}
			routing[gi] = best
		}
	}
	return nil
}

// routeFits estimates whether the fleet — as it currently performs, plus
// whatever the acquisition quota still allows, discounted by the monitored
// fleet-average coefficient — can sustain the demand the trial routing
// implies.
func (h *Heuristic) routeFits(v *sim.View, sel dataflow.Selection, trial dataflow.Routing) bool {
	g := v.Graph()
	inRate, _, err := dataflow.PropagateRatesRouted(g, sel, trial, v.EstimatedInputRates())
	if err != nil {
		return false
	}
	target := h.opts.Objective.OmegaHat + h.opts.Margin
	demand := 0.0
	for pe := range g.PEs {
		demand += inRate[pe] * sel.Alt(g, pe).Cost * target
	}
	vms := v.ActiveVMs()
	current := 0.0
	coeffSum := 0.0
	for _, vm := range vms {
		current += float64(vm.Class.Cores) * vm.Class.CoreSpeed * vm.CPUCoeff
		coeffSum += vm.CPUCoeff
	}
	meanCoeff := 1.0
	if len(vms) > 0 {
		meanCoeff = coeffSum / float64(len(vms))
	}
	headroomVMs := v.MaxVMs() - len(vms)
	if headroomVMs < 0 {
		headroomVMs = 0
	}
	potential := current + float64(headroomVMs)*v.Menu().Largest().Capacity()*meanCoeff
	return demand <= potential
}
