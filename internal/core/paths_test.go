package core

import (
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
)

// pathGraph offers a precision path (two heavy stages, full value) and an
// economy path (one light stage, reduced value) behind a choice port.
func pathGraph() *dataflow.Graph {
	return dataflow.NewBuilder().
		AddPE("in", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("heavyA", dataflow.Alt("e", 1.0, 1.6, 1)).
		AddPE("heavyB", dataflow.Alt("e", 1.0, 1.2, 1)).
		AddPE("light", dataflow.Alt("e", 0.7, 0.5, 1)).
		AddPE("out", dataflow.Alt("e", 1, 0.1, 1)).
		AddChoice("path", "in", "heavyA", "light").
		Connect("heavyA", "heavyB").
		Connect("heavyB", "out").
		Connect("light", "out").
		MustBuild()
}

func runPathScenario(t *testing.T, sched sim.Scheduler, rate float64, horizon int64, perf trace.Provider, maxVMs int) (*sim.Engine, error) {
	t.Helper()
	prof, err := rates.NewConstant(rate)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Graph:      pathGraph(),
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Perf:       perf,
		Inputs:     map[int]rates.Profile{0: prof},
		HorizonSec: horizon,
		Seed:       3,
		MaxVMs:     maxVMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(sched)
	return e, err
}

func TestHeuristicSwitchesToEconomyPathUnderPressure(t *testing.T) {
	// A degraded cloud halves every VM's throughput AND the fleet cap
	// blocks further scale-out: elasticity is exhausted, so the only
	// remaining control is application dynamism — the path stage must
	// reroute to the economy path (cost 0.6 vs 2.9 per message), restoring
	// throughput with the surviving capacity (the §9 fault-tolerance
	// story at path granularity).
	g := pathGraph()
	obj, err := PaperSigma(g, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	perf := &trace.Scaled{Base: trace.NewIdeal(), Scale: 0.5}
	// Deployment at rated performance needs ~8 xlarges; cap just above so
	// the 2x expansion the degraded cloud calls for is impossible.
	e, err := runPathScenario(t, h, 20, 4*3600, perf, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The engine's routing must have left the default (precision) path.
	v := engineView(e)
	routing := v.Routing()
	if routing[0] != 1 {
		t.Fatalf("routing = %v, want economy path (1)", routing)
	}
	sum := e.Collector().Summarize()
	if !obj.MeetsConstraint(sum.MeanOmega) {
		t.Fatalf("omega %.3f misses constraint despite path switch", sum.MeanOmega)
	}
	// Gamma reflects the economy path's reduced value.
	pts := e.Collector().Points()
	if last := pts[len(pts)-1]; last.Gamma >= 1 {
		t.Fatalf("gamma = %v after economy switch", last.Gamma)
	}
}

func TestHeuristicKeepsPrecisionPathWhenComfortable(t *testing.T) {
	g := pathGraph()
	obj, err := PaperSigma(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := MustHeuristic(Options{Strategy: Global, Dynamic: true, Adaptive: true, Objective: obj})
	e, err := runPathScenario(t, h, 5, 2*3600, trace.NewIdeal(), 0)
	if err != nil {
		t.Fatal(err)
	}
	v := engineView(e)
	if v.Routing()[0] != 0 {
		t.Fatalf("routing = %v, precision path should be kept on an ideal cloud", v.Routing())
	}
	sum := e.Collector().Summarize()
	if sum.MeanGamma != 1 {
		t.Fatalf("gamma = %v on precision path", sum.MeanGamma)
	}
}

func TestBruteForcePicksRouteByTheta(t *testing.T) {
	g := pathGraph()
	obj, err := PaperSigma(g, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := NewBruteForce(obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := runPathScenario(t, bf, 10, 2*3600, trace.NewIdeal(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := e.Collector().Summarize()
	if !obj.MeetsConstraint(sum.MeanOmega) {
		t.Fatalf("omega %.3f", sum.MeanOmega)
	}
	// With the paper's sigma, value dominates: the precision route wins.
	if v := engineView(e); v.Routing()[0] != 0 {
		t.Fatalf("brute force routing = %v", v.Routing())
	}
}

// engineView builds a read view over a finished engine (test helper).
func engineView(e *sim.Engine) *sim.View { return sim.NewView(e) }
