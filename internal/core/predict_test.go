package core

import (
	"math"
	"testing"

	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
)

// TestPredictedOmegaMatchesMeasured cross-validates the planner against the
// engine: for a static deployment at constant rate on an ideal cloud, the
// relative throughput dataflow.PredictOmega computes from the plan must be
// what the simulator actually measures — the model and the simulation are
// two views of the same fluid system.
func TestPredictedOmegaMatchesMeasured(t *testing.T) {
	for _, tc := range []struct {
		graph  *dataflow.Graph
		rate   float64
		target float64
	}{
		{dataflow.Fig1Graph(), 5, 0.7},
		{dataflow.Fig1Graph(), 20, 0.8},
		{dataflow.EvalGraph(), 10, 0.7},
		{dataflow.EvalGraph(), 35, 0.75},
		{dataflow.DiamondGraph(), 8, 0.9},
	} {
		g := tc.graph
		sel, err := SelectAlternates(g, Global)
		if err != nil {
			t.Fatal(err)
		}
		est := dataflow.InputRates{}
		for _, pe := range g.Inputs() {
			est[pe] = tc.rate / float64(len(g.Inputs()))
		}
		plan, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), est, tc.target, Global)
		if err != nil {
			t.Fatal(err)
		}
		predicted, err := dataflow.PredictOmega(g, sel, est, plan.Capacities(g, sel))
		if err != nil {
			t.Fatal(err)
		}

		profiles := map[int]rates.Profile{}
		for pe, r := range est {
			c, err := rates.NewConstant(r)
			if err != nil {
				t.Fatal(err)
			}
			profiles[pe] = c
		}
		e, err := sim.NewEngine(sim.Config{
			Graph:      g,
			Menu:       awsMenu(),
			Perf:       trace.NewIdeal(),
			Inputs:     profiles,
			HorizonSec: 3600,
		})
		if err != nil {
			t.Fatal(err)
		}
		mat := &materializer{plan: plan, sel: sel}
		sum, err := e.Run(mat)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(sum.MeanOmega - predicted); diff > 0.02 {
			t.Fatalf("%s @ %.0f msg/s: predicted omega %.4f, measured %.4f (diff %.4f)",
				g, tc.rate, predicted, sum.MeanOmega, diff)
		}
	}
}
