package core

import (
	"fmt"
	"sort"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/sim"
)

// decisionSink returns the provenance side-channel of the control surface,
// or nil when none is attached (or nothing observes it) — the nil check
// keeps untraced runs free of provenance assembly.
func decisionSink(act sim.Control) sim.DecisionSink {
	if ds, ok := act.(sim.DecisionSink); ok && ds.DecisionsObserved() {
		return ds
	}
	return nil
}

// resourceStage is Alg. 2's resource re-deployment: grow bottleneck PEs
// while the required capacity is not met, shrink over-provisioned PEs when
// there is comfortable headroom, consolidate (global only), and release
// idle VMs as they approach their paid hour boundary.
func (h *Heuristic) resourceStage(v *sim.View, act sim.Control) error {
	sink := decisionSink(act)
	g := v.Graph()
	sel := v.Selection()
	demand, err := h.demandECU(v, sel)
	if err != nil {
		return err
	}
	target := h.targetOmega(v.MeanOmega())
	eff := effectiveECU(v)

	required := make([]float64, g.N())
	for pe := range required {
		required[pe] = demand[pe] * target
	}

	// Latency QoS: when a mean-latency bound is set, size each PE to also
	// drain its current backlog within the bound — capacity beyond the
	// arrival-rate requirement, proportional to the queue.
	if bound := h.opts.Objective.LatencyHatSec; bound > 0 && v.EstimatedLatencySec() > bound/2 {
		for pe := range required {
			if backlog := v.Backlog(pe); backlog > 0 {
				required[pe] += backlog / bound * sel.Alt(g, pe).Cost
			}
		}
	}

	// Scale up: repeatedly grow the PE with the worst capacity ratio.
	// With UseSpot, capacity beyond the PE's constraint-critical base
	// (demand * OmegaHat, on-demand) spills onto the spot market.
	grown := 0
	for grown < h.opts.MaxGrowPerInterval {
		bottleneck, worst := -1, 1e18
		for pe := range required {
			if required[pe] <= 1e-12 {
				continue
			}
			r := eff[pe] / required[pe]
			if r < 1-1e-9 && r < worst {
				worst = r
				bottleneck = pe
			}
		}
		if bottleneck < 0 {
			break
		}
		spill := h.opts.UseSpot &&
			eff[bottleneck] >= demand[bottleneck]*h.opts.Objective.OmegaHat
		var dec *obs.Decision
		if sink != nil {
			spillF := 0.0
			if spill {
				spillF = 1
			}
			dec = &obs.Decision{
				Kind: "scale-up", PE: bottleneck,
				Inputs: map[string]float64{
					"meanOmega":    v.MeanOmega(),
					"targetOmega":  target,
					"demandEcu":    demand[bottleneck],
					"requiredEcu":  required[bottleneck],
					"effectiveEcu": eff[bottleneck],
					"spill":        spillF,
				},
			}
		}
		added, err := h.addCore(v, act, bottleneck, required[bottleneck]-eff[bottleneck], spill, dec)
		if err != nil {
			return err
		}
		if dec != nil {
			sink.Decide(*dec)
		}
		if added <= 0 {
			break // could not add (fleet cap); stop rather than spin
		}
		eff[bottleneck] += added
		grown++
	}

	// Scale down: only with hysteresis headroom, and never below one core.
	for pe := range required {
		relax := required[pe] + demand[pe]*h.opts.Hysteresis
		for eff[pe] > relax {
			var dec *obs.Decision
			if sink != nil {
				dec = &obs.Decision{
					Kind: "scale-down", PE: pe,
					Inputs: map[string]float64{
						"meanOmega":    v.MeanOmega(),
						"demandEcu":    demand[pe],
						"requiredEcu":  required[pe],
						"relaxEcu":     relax,
						"effectiveEcu": eff[pe],
						"hysteresis":   h.opts.Hysteresis,
					},
				}
			}
			removed, err := h.removeCore(v, act, pe, eff[pe]-relax, dec)
			if err != nil {
				return err
			}
			// A stuck shrink would re-emit an identical no-action decision
			// every interval; only record shrinks that moved a core.
			if dec != nil && removed > 0 {
				sink.Decide(*dec)
			}
			if removed <= 0 {
				break
			}
			eff[pe] -= removed
		}
	}

	if h.opts.Strategy == Global && !h.opts.NoConsolidate {
		if err := h.consolidate(v, act); err != nil {
			return err
		}
	}
	return h.releaseIdle(v, act)
}

// addCore gives the PE one more core: a free core on a VM already hosting
// it, then the best free core anywhere (already paid for — effectively
// free), then a newly acquired VM — largest class under the local strategy,
// the smallest class covering the remaining deficit under global (best
// fit); with spill set and a spot market on the menu, the new VM is the
// cheapest preemptible class instead. It returns the effective ECU added
// (0 when the fleet cap blocks). A non-nil dec is filled with the
// candidates weighed, their scores, and why the losers lost.
func (h *Heuristic) addCore(v *sim.View, act sim.Control, pe int, deficitECU float64, spill bool, dec *obs.Decision) (float64, error) {
	hosting := map[int]bool{}
	for _, a := range v.Assignments(pe) {
		hosting[a.VMID] = true
	}
	var best sim.VMInfo
	found := false
	bestScore := -1.0
	for _, vm := range v.ActiveVMs() {
		if vm.FreeCores <= 0 {
			continue
		}
		score := vm.Class.CoreSpeed * vm.CPUCoeff
		if hosting[vm.ID] {
			score *= 4 // strongly prefer collocating with the PE's instances
		}
		if dec != nil {
			dec.Options = append(dec.Options, obs.DecisionOption{
				Name: fmt.Sprintf("free core on vm-%d (%s)", vm.ID, vm.Class.Name), Score: score})
		}
		if score > bestScore {
			bestScore = score
			best = vm
			found = true
		}
	}
	if found {
		if err := act.AssignCores(pe, best.ID, 1); err != nil {
			return 0, err
		}
		if dec != nil {
			chosen := fmt.Sprintf("free core on vm-%d (%s)", best.ID, best.Class.Name)
			for i := range dec.Options {
				if dec.Options[i].Name != chosen {
					dec.Options[i].Rejected = "outscored"
				}
			}
			dec.Chosen = fmt.Sprintf("assign-cores vm-%d", best.ID)
			dec.Reason = "already-paid free core available"
		}
		return best.Class.CoreSpeed * best.CPUCoeff, nil
	}
	// Capacity that is still provisioning counts against the deficit:
	// acquiring again while a boot is in flight double-provisions. Reserve a
	// core on the pending VM for this PE so it starts working the moment it
	// boots, and report no effective capacity added — the grow loop then
	// waits for the boot instead of stacking further acquisitions.
	for _, p := range v.PendingVMs() {
		if p.UsedCores >= p.Class.Cores {
			continue
		}
		if err := act.AssignCores(pe, p.ID, 1); err != nil {
			return 0, err
		}
		if dec != nil {
			dec.Chosen = fmt.Sprintf("reserve core on pending vm-%d (%s)", p.ID, p.Class.Name)
			dec.Reason = "capacity already provisioning; wait for the boot instead of stacking acquisitions"
		}
		return 0, nil
	}
	// Acquire a new VM. Policies plan on the on-demand view; spot classes
	// are only touched through the explicit spill path.
	menu := v.Menu()
	onDemand := menu.OnDemand()
	class := onDemand.Largest()
	if h.opts.Strategy == Global {
		if deficitECU < class.CoreSpeed {
			deficitECU = class.CoreSpeed
		}
		if c := onDemand.SmallestFitting(deficitECU); c != nil {
			class = c
		}
	}
	if spill {
		need := deficitECU
		if need < class.CoreSpeed {
			need = class.CoreSpeed
		}
		if c := menu.CheapestPreemptibleFitting(need); c != nil {
			class = c
		}
	}
	if dec != nil {
		considered := menu.Classes()
		if !spill {
			considered = onDemand.Classes()
		}
		for _, c := range considered {
			opt := obs.DecisionOption{Name: c.Name, Score: c.CoreSpeed}
			switch {
			case c.Name == class.Name:
				// chosen
			case spill && !c.Preemptible:
				opt.Rejected = "spill targets the spot market"
			case c.CoreSpeed < deficitECU:
				opt.Rejected = "below the remaining deficit"
			default:
				opt.Rejected = "not the best fit"
			}
			dec.Options = append(dec.Options, opt)
		}
	}
	id, err := act.AcquireVM(class.Name)
	if err != nil {
		// Fleet cap reached: degrade gracefully, the next interval retries.
		if dec != nil {
			dec.Reason = fmt.Sprintf("acquire %s failed (%v); retry next interval", class.Name, err)
		}
		return 0, nil
	}
	if err := act.AssignCores(pe, id, 1); err != nil {
		return 0, err
	}
	if dec != nil {
		dec.Chosen = fmt.Sprintf("acquire %s (vm-%d)", class.Name, id)
		if spill {
			dec.Reason = "beyond the constraint-critical base; spill onto the spot market"
		} else if h.opts.Strategy == Global {
			dec.Reason = "smallest on-demand class covering the deficit"
		} else {
			dec.Reason = "largest on-demand class (local strategy)"
		}
	}
	return class.CoreSpeed, nil
}

// removeCore takes one core away from the PE, preferring the emptiest
// hosting VM so that instances consolidate and whole VMs free up. It never
// removes the PE's last core, and never removes a core whose effective
// contribution exceeds maxRemove (that would undershoot the requirement).
// It returns the effective ECU removed (0 when nothing is safely
// removable). A non-nil dec is filled with the shed candidates in order
// and why the skipped ones were kept.
func (h *Heuristic) removeCore(v *sim.View, act sim.Control, pe int, maxRemove float64, dec *obs.Decision) (float64, error) {
	as := v.Assignments(pe)
	totalCores := 0
	for _, a := range as {
		totalCores += a.Cores
	}
	if totalCores <= 1 {
		if dec != nil {
			dec.Reason = "last core protected"
		}
		return 0, nil
	}
	type option struct {
		vmID     int
		contrib  float64
		usedOnVM int
		spot     bool
	}
	var opts []option
	for _, a := range as {
		vm, ok := v.VM(a.VMID)
		if !ok {
			continue
		}
		opts = append(opts, option{
			vmID:     a.VMID,
			contrib:  vm.Class.CoreSpeed * vm.CPUCoeff,
			usedOnVM: vm.UsedCores,
			spot:     vm.Class.Preemptible,
		})
	}
	sort.SliceStable(opts, func(i, j int) bool {
		// Shed spot headroom before on-demand capacity, then prefer
		// emptying the emptiest VM, then the weakest core.
		if opts[i].spot != opts[j].spot {
			return opts[i].spot
		}
		if opts[i].usedOnVM != opts[j].usedOnVM {
			return opts[i].usedOnVM < opts[j].usedOnVM
		}
		return opts[i].contrib < opts[j].contrib
	})
	for i, o := range opts {
		if o.contrib > maxRemove+1e-9 {
			if dec != nil {
				dec.Options = append(dec.Options, obs.DecisionOption{
					Name:     fmt.Sprintf("core on vm-%d", o.vmID),
					Score:    o.contrib,
					Rejected: "contribution exceeds removable headroom",
				})
			}
			continue
		}
		if err := act.UnassignCores(pe, o.vmID, 1); err != nil {
			return 0, err
		}
		if dec != nil {
			dec.Options = append(dec.Options, obs.DecisionOption{
				Name: fmt.Sprintf("core on vm-%d", o.vmID), Score: o.contrib})
			for _, rest := range opts[i+1:] {
				dec.Options = append(dec.Options, obs.DecisionOption{
					Name:     fmt.Sprintf("core on vm-%d", rest.vmID),
					Score:    rest.contrib,
					Rejected: "later in the shed order (spot first, emptiest VM, weakest core)",
				})
			}
			dec.Chosen = fmt.Sprintf("unassign-cores vm-%d", o.vmID)
			dec.Reason = "hysteresis headroom above the requirement"
		}
		return o.contrib, nil
	}
	if dec != nil {
		dec.Reason = "every candidate core contributes more than the removable headroom"
	}
	return 0, nil
}

// consolidate (global strategy) empties at most one lightly used VM per
// stage by moving its core chunks into free cores elsewhere, so the idle VM
// can be released at its hour boundary. Chunk conversion preserves rated
// capacity: n cores at speed s need ceil(n*s/s') cores at speed s'.
func (h *Heuristic) consolidate(v *sim.View, act sim.Control) error {
	vms := v.ActiveVMs()
	sort.SliceStable(vms, func(i, j int) bool {
		ui := float64(vms[i].UsedCores) / float64(vms[i].Class.Cores)
		uj := float64(vms[j].UsedCores) / float64(vms[j].Class.Cores)
		return ui < uj
	})
	g := v.Graph()
	for _, victim := range vms {
		if victim.UsedCores == 0 {
			continue
		}
		// Gather the victim's chunks.
		type chunk struct{ pe, cores int }
		var chunks []chunk
		for pe := 0; pe < g.N(); pe++ {
			for _, a := range v.Assignments(pe) {
				if a.VMID == victim.ID {
					chunks = append(chunks, chunk{pe: pe, cores: a.Cores})
				}
			}
		}
		// Plan destinations using a free-core snapshot; iterate candidate
		// VMs in id order so tie-breaking is deterministic.
		free := map[int]int{}
		var dstIDs []int
		for _, vm := range vms {
			if vm.ID == victim.ID {
				continue
			}
			free[vm.ID] = vm.FreeCores
			dstIDs = append(dstIDs, vm.ID)
		}
		sort.Ints(dstIDs)
		type move struct{ pe, dst, cores int }
		var moves []move
		ok := true
		for _, c := range chunks {
			ecu := float64(c.cores) * victim.Class.CoreSpeed
			bestDst, bestNeed := -1, 0
			for _, dst := range dstIDs {
				dstClass := classOf(vms, dst)
				// Never consolidate on-demand capacity onto spot VMs: the
				// constraint-critical base must survive reclamations.
				if dstClass.Preemptible && !victim.Class.Preemptible {
					continue
				}
				f := free[dst]
				need := coresNeeded(ecu, dstClass)
				if need == 0 {
					need = 1
				}
				if need <= f && (bestDst < 0 || f-need < free[bestDst]-bestNeed) {
					bestDst, bestNeed = dst, need
				}
			}
			if bestDst < 0 {
				ok = false
				break
			}
			free[bestDst] -= bestNeed
			moves = append(moves, move{pe: c.pe, dst: bestDst, cores: bestNeed})
		}
		if !ok {
			continue
		}
		for i, m := range moves {
			if err := act.AssignCores(m.pe, m.dst, m.cores); err != nil {
				return err
			}
			if err := act.UnassignCores(chunks[i].pe, victim.ID, chunks[i].cores); err != nil {
				return err
			}
		}
		return nil // one consolidation per stage damps churn
	}
	return nil
}

func classOf(vms []sim.VMInfo, id int) *cloud.Class {
	for _, vm := range vms {
		if vm.ID == id {
			return vm.Class
		}
	}
	return nil
}

// releaseIdle releases empty VMs approaching their paid hour boundary; an
// empty VM far from the boundary is kept as already-paid spare capacity.
func (h *Heuristic) releaseIdle(v *sim.View, act sim.Control) error {
	sink := decisionSink(act)
	window := h.opts.ReleaseWindowSec
	if window == 0 {
		window = 2 * v.IntervalSec()
	}
	for _, vm := range v.ActiveVMs() {
		if vm.UsedCores != 0 {
			continue
		}
		if vm.SecsToHourBoundary <= window {
			if err := act.ReleaseVM(vm.ID); err != nil {
				return err
			}
			if sink != nil {
				sink.Decide(obs.Decision{
					Kind:   "release",
					Chosen: fmt.Sprintf("release-vm vm-%d (%s)", vm.ID, vm.Class.Name),
					Reason: "idle and approaching its paid hour boundary",
					Inputs: map[string]float64{
						"secsToHourBoundary": float64(vm.SecsToHourBoundary),
						"windowSec":          float64(window),
					},
				})
			}
		}
	}
	return nil
}
