package core

import (
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
)

// multiInputGraph joins two independent streams (sensor readings and
// control events) — the multi-merge case with more than one external
// source, which the paper's Def. 1 allows (I is a set).
func multiInputGraph() *dataflow.Graph {
	return dataflow.NewBuilder().
		AddPE("sensors", dataflow.Alt("e", 1, 0.15, 1)).
		AddPE("events", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("join",
			dataflow.Alt("full", 1.0, 0.9, 1),
			dataflow.Alt("lite", 0.8, 0.5, 1)).
		AddPE("out", dataflow.Alt("e", 1, 0.1, 1)).
		Connect("sensors", "join").
		Connect("events", "join").
		Connect("join", "out").
		MustBuild()
}

func TestMultiInputDeploymentAndAdaptation(t *testing.T) {
	g := multiInputGraph()
	ins := g.Inputs()
	if len(ins) != 2 {
		t.Fatalf("inputs = %d", len(ins))
	}
	obj, err := PaperSigma(g, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Local, Global} {
		h := MustHeuristic(Options{Strategy: strat, Dynamic: true, Adaptive: true, Objective: obj})
		sensors, _ := rates.NewWave(20, 8, 1800)
		events, _ := rates.NewRandomWalk(10, 0.1, 60, 5)
		e, err := sim.NewEngine(sim.Config{
			Graph: g,
			Menu:  cloud.MustMenu(cloud.AWS2013Classes()),
			Perf:  trace.MustReplayed(trace.ReplayedConfig{Seed: 8}),
			Inputs: map[int]rates.Profile{
				ins[0]: sensors,
				ins[1]: events,
			},
			HorizonSec: 3 * 3600,
			Seed:       6,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := e.Run(h)
		if err != nil {
			t.Fatal(err)
		}
		if !obj.MeetsConstraint(sum.MeanOmega) {
			t.Fatalf("%v: omega %.3f with two inputs", strat, sum.MeanOmega)
		}
	}
}

func TestMultiInputRatePropagationSumsAtJoin(t *testing.T) {
	g := multiInputGraph()
	sel := dataflow.DefaultSelection(g)
	in := dataflow.InputRates{0: 20, 1: 10}
	inRate, _, err := dataflow.PropagateRates(g, sel, in)
	if err != nil {
		t.Fatal(err)
	}
	if inRate[2] != 30 {
		t.Fatalf("join arrival = %v, want 30 (multi-merge)", inRate[2])
	}
}

func TestMultiInputPlanCoversBothSources(t *testing.T) {
	g := multiInputGraph()
	sel := dataflow.DefaultSelection(g)
	est := dataflow.InputRates{0: 20, 1: 10}
	plan, err := PlanAllocation(g, awsMenu(), sel, dataflow.DefaultRouting(g), est, 0.7, Global)
	if err != nil {
		t.Fatal(err)
	}
	omega, err := dataflow.PredictOmega(g, sel, est, plan.Capacities(g, sel))
	if err != nil {
		t.Fatal(err)
	}
	if omega < 0.7-1e-9 {
		t.Fatalf("omega = %v", omega)
	}
}
