package calibration

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynamicdf/internal/obs"
)

// exerciseRegistry builds a registry spanning every feature the obs
// exposition renderer has: plain and labeled counters/gauges, histograms,
// label values needing escaping, and the special float spellings.
func exerciseRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("jobs_total", "Jobs processed.").Add(42)
	g := reg.Gauge("sim_omega", "Relative application throughput over the last interval.")
	g.Set(0.9337215947412415)
	reg.Gauge("weird_values", "Special float spellings.").Set(math.Inf(1))
	cv := reg.CounterVec("http_requests_total", "Requests by method and code.", "method", "code")
	cv.With("GET", "200").Add(17)
	cv.With("POST", "500").Inc()
	gv := reg.GaugeVec("escaped", `Help with backslash \ and
newline.`, "path")
	gv.With(`C:\temp\"quoted"` + "\nnext").Set(-1.5e-9)
	h := reg.Histogram("latency_seconds", "Request latency.", obs.DefBuckets)
	for _, v := range []float64{0.0004, 0.003, 0.02, 0.07, 0.3, 2, 10} {
		h.Observe(v)
	}
	hv := reg.HistogramVec("stage_seconds", "Stage latency.", []float64{0.1, 1}, "stage")
	hv.With("fit").Observe(0.05)
	hv.With("validate").Observe(3)
	return reg
}

// The importer must reproduce obs.WriteText output byte for byte:
// parse(render(registry)) re-renders to identical bytes, and every sample
// value survives.
func TestParsePrometheusRoundTripsObs(t *testing.T) {
	var orig bytes.Buffer
	if err := exerciseRegistry().WriteText(&orig); err != nil {
		t.Fatal(err)
	}
	exp, err := ParsePrometheus(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatalf("parse obs output: %v", err)
	}
	var rendered bytes.Buffer
	if err := exp.WriteText(&rendered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), rendered.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n--- obs ---\n%s\n--- reparsed ---\n%s",
			orig.String(), rendered.String())
	}

	// Spot-check value extraction.
	if v, ok := exp.Gauge("sim_omega"); !ok || v != 0.9337215947412415 {
		t.Fatalf("sim_omega = %v, %v", v, ok)
	}
	if v, ok := exp.Value("http_requests_total", map[string]string{"method": "GET", "code": "200"}); !ok || v != 17 {
		t.Fatalf("labeled counter = %v, %v", v, ok)
	}
	if v, ok := exp.Value("latency_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 7 {
		t.Fatalf("histogram +Inf bucket = %v, %v", v, ok)
	}
	if v, ok := exp.Gauge("weird_values"); !ok || !math.IsInf(v, 1) {
		t.Fatalf("inf gauge = %v, %v", v, ok)
	}
	if _, ok := exp.Gauge("missing_metric"); ok {
		t.Fatal("phantom metric found")
	}
}

// The golden fixture pins the exposition dialect: if either the obs
// renderer or this parser drifts, the byte comparison breaks.
func TestParsePrometheusGoldenFixture(t *testing.T) {
	golden := filepath.Join("testdata", "golden.prom")
	var gen bytes.Buffer
	if err := exerciseRegistry().WriteText(&gen); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, gen.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gen.Bytes(), want) {
		t.Fatalf("obs.WriteText no longer matches testdata/golden.prom; regenerate the fixture if the format change is intentional")
	}
	exp, err := ParsePrometheus(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	var rendered bytes.Buffer
	if err := exp.WriteText(&rendered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rendered.Bytes(), want) {
		t.Fatal("golden fixture does not round-trip byte-for-byte")
	}
}

func TestParsePrometheusMalformed(t *testing.T) {
	cases := map[string]string{
		"bad type kind":      "# TYPE foo widget\n",
		"type missing kind":  "# TYPE foo\n",
		"bad name in help":   "# HELP 1foo x\n",
		"bad name in type":   "# TYPE 1foo gauge\n",
		"missing value":      "foo\n",
		"bad value":          "foo bar\n",
		"trailing garbage":   "foo 1 2 3\n",
		"bad timestamp":      "foo 1 nope\n",
		"unterminated label": "foo{a=\"x\n",
		"bad escape":         "foo{a=\"\\x\"} 1\n",
		"dangling escape":    "foo{a=\"\\\n",
		"missing label name": "foo{=\"x\"} 1\n",
		"missing quote":      "foo{a=x} 1\n",
		"no comma":           "foo{a=\"x\"b=\"y\"} 1\n",
		"value only":         "{} 1\n",
	}
	for name, in := range cases {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParsePrometheusLenient(t *testing.T) {
	// Things the format allows that obs never emits: free comments, blank
	// lines, samples without headers, timestamps, empty label sets.
	in := "# just a comment\n\nfree_metric 3\nstamped 1 1700000000\nempty{} 2\n"
	exp, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Gauge("free_metric"); !ok || v != 3 {
		t.Fatalf("free_metric = %v, %v", v, ok)
	}
	if v, ok := exp.Gauge("stamped"); !ok || v != 1 {
		t.Fatalf("stamped = %v, %v", v, ok)
	}
	if v, ok := exp.Gauge("empty"); !ok || v != 2 {
		t.Fatalf("empty = %v, %v", v, ok)
	}
}
