package calibration

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParsePrometheus asserts the importer never panics on arbitrary input
// and that anything it accepts is a fixed point: render(parse(x)) itself
// re-parses and re-renders to identical bytes.
func FuzzParsePrometheus(f *testing.F) {
	seeds := []string{
		"",
		"# HELP m h\n# TYPE m gauge\nm 1\n",
		"# TYPE m counter\nm{a=\"b\"} 2\n",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n",
		"m{p=\"C:\\\\x\\\"q\\\"\\ny\"} -1.5e-09\n",
		"v +Inf\nw -Inf\nx NaN\n",
		"m 1 1700000000\n",
		"# just a comment\n\nm 3\n",
		"m{", "m{a=\"", "m{a=\"\\", "# TYPE m widget\n", "m\n", "m 1 2 3\n",
		"\x00\xff", strings.Repeat("a", 300) + " 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		exp, err := ParsePrometheus(bytes.NewReader(data))
		if err != nil {
			return // rejected without panicking: fine
		}
		var once bytes.Buffer
		if err := exp.WriteText(&once); err != nil {
			t.Fatalf("render accepted input: %v", err)
		}
		exp2, err := ParsePrometheus(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("own rendering does not re-parse: %v\n%s", err, once.String())
		}
		var twice bytes.Buffer
		if err := exp2.WriteText(&twice); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("render is not a fixed point:\n--- once ---\n%s\n--- twice ---\n%s",
				once.String(), twice.String())
		}
	})
}
