package calibration

import (
	"fmt"
	"math"

	"dynamicdf/internal/metrics"
	"dynamicdf/internal/scenario"
)

// Tolerances bounds the acceptable relative error per compared metric when
// judging the fitted simulator as a digital twin. Relative error is
// |predicted - observed| / max(|observed|, floor); a metric passes when its
// relative error is <= its tolerance.
type Tolerances struct {
	MeanOmega     float64
	MeanGamma     float64
	Theta         float64
	TotalCostUSD  float64
	MeanUsedCores float64
	MeanVMs       float64
}

// DefaultTolerances returns the validation defaults: tight on the
// dimensionless ratios the controller tracks (omega, gamma), looser on the
// resource/cost aggregates that compound stochastic scheduling differences.
func DefaultTolerances() Tolerances {
	return Tolerances{
		MeanOmega:     0.05,
		MeanGamma:     0.10,
		Theta:         0.15,
		TotalCostUSD:  0.15,
		MeanUsedCores: 0.15,
		MeanVMs:       0.15,
	}
}

// relErrFloor keeps relative error finite for observed values at zero.
const relErrFloor = 1e-9

// Validate runs the (typically fitted) scenario through the real engine and
// compares its predicted summary against the observed run, metric by
// metric. The returned report is deterministic: same scenario bytes and
// observed points give identical output.
func Validate(sc *scenario.Scenario, observed []metrics.Point, tol Tolerances) (*Report, error) {
	if len(observed) == 0 {
		return nil, fmt.Errorf("calibration: no observed points to validate against")
	}
	built, err := sc.Build()
	if err != nil {
		return nil, fmt.Errorf("calibration: %w", err)
	}
	predicted, err := built.Engine.Run(built.Scheduler)
	if err != nil {
		return nil, fmt.Errorf("calibration: predicted run: %w", err)
	}
	obsSum := metrics.SummarizePoints(observed)

	rep := &Report{
		Intervals: ReportIntervals{Observed: obsSum.Intervals, Predicted: predicted.Intervals},
	}
	add := func(name string, obs, pred, tolerance float64) {
		rep.add(name, obs, pred, tolerance)
	}
	add("mean_omega", obsSum.MeanOmega, predicted.MeanOmega, tol.MeanOmega)
	add("mean_gamma", obsSum.MeanGamma, predicted.MeanGamma, tol.MeanGamma)
	add("theta",
		built.Objective.Theta(obsSum.MeanGamma, obsSum.TotalCostUSD),
		built.Objective.Theta(predicted.MeanGamma, predicted.TotalCostUSD),
		tol.Theta)
	add("total_cost_usd", obsSum.TotalCostUSD, predicted.TotalCostUSD, tol.TotalCostUSD)
	add("mean_used_cores", obsSum.MeanUsedCores, predicted.MeanUsedCores, tol.MeanUsedCores)
	add("mean_vms", obsSum.MeanVMs, predicted.MeanVMs, tol.MeanVMs)
	rep.finalize()
	return rep, nil
}

// relErr computes |p-o| / max(|o|, floor).
func relErr(obs, pred float64) float64 {
	den := math.Abs(obs)
	if den < relErrFloor {
		den = relErrFloor
	}
	return math.Abs(pred-obs) / den
}
