package calibration

import (
	"fmt"
	"math"

	"dynamicdf/internal/metrics"
	"dynamicdf/internal/scenario"
)

// ratePeriods is the deterministic grid of candidate wave periods (seconds)
// FitRate scans — the spans continuous dataflows actually cycle on, from
// ten minutes to a day.
var ratePeriods = []int64{600, 900, 1200, 1800, 2400, 3600, 5400, 7200, 10800, 14400, 21600, 43200, 86400}

// FitRate recovers a scenario rate profile from the observed per-interval
// input rates: the mean, plus a sinusoid when one candidate period explains
// a dominant variance share (>= 30%). The fit is phase-blind — RateSpec
// carries no phase, so only mean/amplitude/period transfer; validation
// therefore compares period-level aggregates, not instantaneous rates.
func FitRate(points []metrics.Point) (scenario.RateSpec, error) {
	if len(points) < 4 {
		return scenario.RateSpec{}, fmt.Errorf("calibration: need >= 4 points to fit a rate profile, have %d", len(points))
	}
	mean := 0.0
	for _, p := range points {
		if p.InputRate < 0 {
			return scenario.RateSpec{}, fmt.Errorf("calibration: negative input rate %v at %d", p.InputRate, p.Sec)
		}
		mean += p.InputRate
	}
	mean /= float64(len(points))

	variance := 0.0
	for _, p := range points {
		d := p.InputRate - mean
		variance += d * d
	}
	variance /= float64(len(points))
	if variance == 0 || mean == 0 {
		return scenario.RateSpec{Kind: "constant", Mean: mean}, nil
	}

	duration := points[len(points)-1].Sec - points[0].Sec
	bestExplained, bestAmp := 0.0, 0.0
	var bestPeriod int64
	for _, period := range ratePeriods {
		if period > duration {
			continue
		}
		// Least-squares b*sin + c*cos at this period.
		var sbb, scc, sbc, sby, scy float64
		for _, p := range points {
			w := 2 * math.Pi * float64(p.Sec) / float64(period)
			sb, cb := math.Sin(w), math.Cos(w)
			y := p.InputRate - mean
			sbb += sb * sb
			scc += cb * cb
			sbc += sb * cb
			sby += sb * y
			scy += cb * y
		}
		det := sbb*scc - sbc*sbc
		if det <= 1e-9*(sbb*scc+1) {
			continue
		}
		b := (sby*scc - scy*sbc) / det
		c := (scy*sbb - sby*sbc) / det
		explained := (b*sby + c*scy) / float64(len(points)) / variance
		if explained > bestExplained {
			bestExplained = explained
			bestPeriod = period
			bestAmp = math.Hypot(b, c)
		}
	}
	if bestExplained >= 0.3 && bestAmp > 0 {
		amp := bestAmp
		if amp > mean {
			amp = mean // the wave profile requires amplitude <= mean
		}
		return scenario.RateSpec{Kind: "wave", Mean: mean, Amplitude: amp, PeriodSec: bestPeriod}, nil
	}
	return scenario.RateSpec{Kind: "constant", Mean: mean}, nil
}
