package calibration

import (
	"math"
	"math/rand"
	"testing"

	"dynamicdf/internal/trace"
)

// genPool generates nSeries independent realizations of cfg.
func genPool(t *testing.T, cfg trace.GenConfig, nSeries, n int) []*trace.Series {
	t.Helper()
	pool := make([]*trace.Series, nSeries)
	for i := range pool {
		s, err := cfg.Generate(rand.New(rand.NewSource(int64(i)+1)), n)
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = s
	}
	return pool
}

func relDiff(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// The acceptance-grade parameter-recovery loop: generate with known
// parameters, fit, and require the OU mean within 2% and the stddev/regime
// parameters within 10%.
func TestFitGenRecoversKnownParameters(t *testing.T) {
	truth := trace.GenConfig{
		Mean: 0.8, Theta: 0.004, Sigma: 0.0045,
		RegimeProb: 0.003, RegimeAmp: 0.25, DiurnalAmp: 0.04,
		Min: 0, Max: 2, PeriodSec: 60,
	}
	pool := genPool(t, truth, 16, 30000)
	fit, err := FitGen(pool, truth)
	if err != nil {
		t.Fatal(err)
	}
	c := fit.Config
	if d := relDiff(c.Mean, truth.Mean); d > 0.02 {
		t.Errorf("Mean = %.4f, want %.4f within 2%% (off %.1f%%)", c.Mean, truth.Mean, d*100)
	}
	if d := relDiff(c.Sigma, truth.Sigma); d > 0.10 {
		t.Errorf("Sigma = %.5f, want %.5f within 10%% (off %.1f%%)", c.Sigma, truth.Sigma, d*100)
	}
	if c.RegimeProb == 0 {
		t.Fatalf("regime component not detected: %+v", fit.Decomp)
	}
	if d := relDiff(c.RegimeProb, truth.RegimeProb); d > 0.10 {
		t.Errorf("RegimeProb = %.5f, want %.5f within 10%% (off %.1f%%)", c.RegimeProb, truth.RegimeProb, d*100)
	}
	if d := relDiff(c.RegimeAmp, truth.RegimeAmp); d > 0.10 {
		t.Errorf("RegimeAmp = %.4f, want %.4f within 10%% (off %.1f%%)", c.RegimeAmp, truth.RegimeAmp, d*100)
	}
	if d := relDiff(c.DiurnalAmp, truth.DiurnalAmp); d > 0.25 {
		t.Errorf("DiurnalAmp = %.4f, want %.4f within 25%% (off %.1f%%)", c.DiurnalAmp, truth.DiurnalAmp, d*100)
	}
	// Theta is the hardest to identify next to a regime component; it is
	// reported as an estimate, and must land in the right decade.
	if d := relDiff(c.Theta, truth.Theta); d > 0.5 {
		t.Errorf("Theta = %.5f, want %.5f within 50%% (off %.1f%%)", c.Theta, truth.Theta, d*100)
	}
	// Bounds come from the template.
	if c.Min != truth.Min || c.Max != truth.Max || c.PeriodSec != truth.PeriodSec {
		t.Errorf("bounds/period not carried: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("fitted config invalid: %v", err)
	}
}

// A pure OU (no regimes, no diurnal) must fit cleanly: no phantom regime,
// tight theta and sigma.
func TestFitGenPureOU(t *testing.T) {
	truth := trace.GenConfig{
		Mean: 0.8, Theta: 0.004, Sigma: 0.0045,
		Min: 0, Max: 2, PeriodSec: 60,
	}
	pool := genPool(t, truth, 6, 20000)
	fit, err := FitGen(pool, truth)
	if err != nil {
		t.Fatal(err)
	}
	c := fit.Config
	if c.RegimeProb != 0 || c.RegimeAmp != 0 {
		t.Errorf("phantom regime: prob %.5f amp %.4f (%+v)", c.RegimeProb, c.RegimeAmp, fit.Decomp)
	}
	if d := relDiff(c.Theta, truth.Theta); d > 0.10 {
		t.Errorf("Theta = %.5f, want %.5f within 10%%", c.Theta, truth.Theta)
	}
	if d := relDiff(c.Sigma, truth.Sigma); d > 0.10 {
		t.Errorf("Sigma = %.5f, want %.5f within 10%%", c.Sigma, truth.Sigma)
	}
	if c.DiurnalAmp != 0 {
		t.Errorf("phantom diurnal %.4f", c.DiurnalAmp)
	}
}

func TestFitGenDeterministic(t *testing.T) {
	truth := trace.DefaultCPUConfig()
	pool := genPool(t, truth, 3, 4000)
	a, err := FitGen(pool, truth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitGen(pool, truth)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fit not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestFitGenErrors(t *testing.T) {
	if _, err := FitGen(nil, trace.GenConfig{}); err == nil {
		t.Error("empty pool accepted")
	}
	short := &trace.Series{PeriodSec: 60, Samples: []float64{1, 2, 3}}
	if _, err := FitGen([]*trace.Series{short}, trace.GenConfig{}); err == nil {
		t.Error("short series accepted")
	}
	a := &trace.Series{PeriodSec: 60, Samples: make([]float64, 100)}
	b := &trace.Series{PeriodSec: 30, Samples: make([]float64, 100)}
	if _, err := FitGen([]*trace.Series{a, b}, trace.GenConfig{}); err == nil {
		t.Error("mixed periods accepted")
	}
	if _, err := FitGen([]*trace.Series{a, nil}, trace.GenConfig{}); err == nil {
		t.Error("nil series accepted")
	}
}

// A constant pool fits to a degenerate config without dividing by zero,
// and an empty template takes bounds from the observed range.
func TestFitGenConstantAndObservedBounds(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 0.5
	}
	s := &trace.Series{PeriodSec: 60, Samples: samples}
	fit, err := FitGen([]*trace.Series{s}, trace.GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c := fit.Config
	if c.Mean != 0.5 || c.Sigma != 0 || c.Theta != 0 || c.RegimeProb != 0 {
		t.Fatalf("constant fit = %+v", c)
	}
	if c.Min > 0.5 || c.Max < 0.5 {
		t.Fatalf("observed bounds do not cover the data: %+v", c)
	}
}
