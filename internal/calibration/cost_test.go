package calibration

import (
	"testing"

	"dynamicdf/internal/cloud"
)

func TestFitCostRecoversKnownPrices(t *testing.T) {
	truth := map[string]float64{"m1.small": 0.06, "m1.large": 0.24, "m1.xlarge": 0.48}
	mixes := []map[string]float64{
		{"m1.small": 5, "m1.large": 2},
		{"m1.small": 1, "m1.xlarge": 3},
		{"m1.large": 4, "m1.xlarge": 1},
		{"m1.small": 7},
		{"m1.small": 2, "m1.large": 2, "m1.xlarge": 2},
	}
	var observations []CostObservation
	for _, mix := range mixes {
		o := CostObservation{HoursByClass: mix}
		for c, h := range mix {
			o.TotalUSD += h * truth[c]
		}
		observations = append(observations, o)
	}
	prices, err := FitCost(observations)
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) != len(truth) {
		t.Fatalf("prices = %v", prices)
	}
	for c, want := range truth {
		if relDiff(prices[c], want) > 1e-9 {
			t.Errorf("price[%s] = %v, want %v", c, prices[c], want)
		}
	}
}

func TestFitCostErrors(t *testing.T) {
	// Fewer observations than classes.
	two := []CostObservation{{HoursByClass: map[string]float64{"a": 1, "b": 2}, TotalUSD: 3}}
	if _, err := FitCost(two); err == nil {
		t.Error("under-determined system accepted")
	}
	// No billed hours at all.
	if _, err := FitCost([]CostObservation{{HoursByClass: map[string]float64{}}}); err == nil {
		t.Error("empty observations accepted")
	}
	// Negative hours.
	neg := []CostObservation{{HoursByClass: map[string]float64{"a": -1}, TotalUSD: 1}}
	if _, err := FitCost(neg); err == nil {
		t.Error("negative hours accepted")
	}
	// Singular mix: two classes always billed in lockstep cannot be separated.
	sing := []CostObservation{
		{HoursByClass: map[string]float64{"a": 1, "b": 1}, TotalUSD: 2},
		{HoursByClass: map[string]float64{"a": 2, "b": 2}, TotalUSD: 4},
		{HoursByClass: map[string]float64{"a": 3, "b": 3}, TotalUSD: 6},
	}
	if _, err := FitCost(sing); err == nil {
		t.Error("singular class mix accepted")
	}
}

// CostObservationFromFleet must reproduce the fleet's own hour-boundary
// billing, so fitting snapshots of a live fleet recovers the menu prices.
func TestCostObservationFromFleet(t *testing.T) {
	menu, err := cloud.NewMenu(cloud.AWS2013Classes())
	if err != nil {
		t.Fatal(err)
	}
	small, _ := menu.ByName("m1.small")
	large, _ := menu.ByName("m1.large")
	fleet := cloud.NewFleet(menu)
	if _, err := fleet.Acquire(small, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Acquire(large, 1800); err != nil {
		t.Fatal(err)
	}
	v, err := fleet.Acquire(small, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Release(v.ID, 3601); err != nil { // 1 second used, billed a full hour
		t.Fatal(err)
	}

	now := int64(2 * 3600)
	obs := CostObservationFromFleet(fleet, now)
	// small#0: 7200s -> 2h; small#2: 1s -> 1h round-up; large#1: 5400s -> 2h.
	if got, want := obs.HoursByClass["m1.small"], 3.0; got != want {
		t.Errorf("small hours = %v, want %v", got, want)
	}
	if got, want := obs.HoursByClass["m1.large"], 2.0; got != want {
		t.Errorf("large hours = %v, want %v", got, want)
	}
	if relDiff(obs.TotalUSD, fleet.TotalCost(now)) > 1e-12 {
		t.Errorf("TotalUSD = %v, fleet says %v", obs.TotalUSD, fleet.TotalCost(now))
	}

	// Two snapshots at different times give enough mix diversity to fit.
	observations := []CostObservation{
		CostObservationFromFleet(fleet, 3599),
		obs,
	}
	prices, err := FitCost(observations)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(prices["m1.small"], small.PricePerHour) > 1e-9 {
		t.Errorf("fitted small price = %v, want %v", prices["m1.small"], small.PricePerHour)
	}
	if relDiff(prices["m1.large"], large.PricePerHour) > 1e-9 {
		t.Errorf("fitted large price = %v, want %v", prices["m1.large"], large.PricePerHour)
	}
}
