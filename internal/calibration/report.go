package calibration

import (
	"encoding/json"
	"fmt"
	"strings"
)

// MetricResult compares one metric between the observed system and the
// fitted simulator.
type MetricResult struct {
	Name      string  `json:"name"`
	Observed  float64 `json:"observed"`
	Predicted float64 `json:"predicted"`
	RelErr    float64 `json:"relErr"`
	Tolerance float64 `json:"tolerance"`
	Pass      bool    `json:"pass"`
}

// ReportIntervals records how many intervals each side aggregated.
type ReportIntervals struct {
	Observed  int `json:"observed"`
	Predicted int `json:"predicted"`
}

// Report is the deterministic validation verdict: per-metric residuals in a
// fixed order plus the overall pass flag (every metric within tolerance).
type Report struct {
	Intervals ReportIntervals `json:"intervals"`
	Metrics   []MetricResult  `json:"metrics"`
	Pass      bool            `json:"pass"`
}

func (r *Report) add(name string, obs, pred, tolerance float64) {
	e := relErr(obs, pred)
	r.Metrics = append(r.Metrics, MetricResult{
		Name: name, Observed: obs, Predicted: pred,
		RelErr: e, Tolerance: tolerance, Pass: e <= tolerance,
	})
}

func (r *Report) finalize() {
	r.Pass = true
	for _, m := range r.Metrics {
		if !m.Pass {
			r.Pass = false
			return
		}
	}
}

// JSON renders the report as indented JSON. Field order is fixed by the
// struct definitions and float formatting by encoding/json, so equal
// reports marshal to identical bytes.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Table renders the report as a fixed-width human-readable table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s %9s %6s  %s\n",
		"metric", "observed", "predicted", "relerr", "tol", "verdict")
	for _, m := range r.Metrics {
		verdict := "PASS"
		if !m.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-16s %14.6g %14.6g %8.2f%% %5.0f%%  %s\n",
			m.Name, m.Observed, m.Predicted, m.RelErr*100, m.Tolerance*100, verdict)
	}
	fmt.Fprintf(&b, "intervals: observed=%d predicted=%d\n", r.Intervals.Observed, r.Intervals.Predicted)
	if r.Pass {
		b.WriteString("verdict: PASS — the fitted simulator tracks the observed system within tolerance\n")
	} else {
		b.WriteString("verdict: FAIL — at least one metric exceeds its tolerance\n")
	}
	return b.String()
}
