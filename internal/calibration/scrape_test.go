package calibration

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dynamicdf/internal/obs"
)

// writeScrape renders one sim_* gauge snapshot to <sec>.prom in dir.
func writeScrape(t *testing.T, dir string, sec int64, set func(*obs.RunGauges)) {
	t.Helper()
	reg := obs.NewRegistry()
	g := obs.NewRunGauges(reg)
	set(g)
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%d.prom", sec)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := reg.WriteText(f); err != nil {
		t.Fatal(err)
	}
}

func TestLoadScrapeDirAndSeries(t *testing.T) {
	dir := t.TempDir()
	vals := []float64{0.9, 0.8, 0.95, 1.0}
	// Written out of order on purpose: the loader must sort by time.
	for _, i := range []int{2, 0, 3, 1} {
		i := i
		writeScrape(t, dir, int64(i)*60, func(g *obs.RunGauges) {
			g.Omega.Set(vals[i])
			g.Gamma.Set(vals[i] / 2)
			g.InputRate.Set(100 + float64(i))
			g.CostUSD.Set(float64(i) * 0.06)
			g.ActiveVMs.Set(float64(1 + i))
			g.UsedCores.Set(float64(2 * i))
		})
	}
	// A non-prom file is ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	scrapes, err := LoadScrapeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(scrapes) != 4 {
		t.Fatalf("loaded %d scrapes", len(scrapes))
	}
	for i, sc := range scrapes {
		if sc.Sec != int64(i)*60 {
			t.Fatalf("scrape %d at sec %d, not sorted", i, sc.Sec)
		}
	}

	s, err := SeriesFromScrapes(scrapes, "sim_omega")
	if err != nil {
		t.Fatal(err)
	}
	if s.PeriodSec != 60 || len(s.Samples) != 4 {
		t.Fatalf("series = %+v", s)
	}
	for i, v := range vals {
		if s.Samples[i] != v {
			t.Errorf("sample %d = %v, want %v", i, s.Samples[i], v)
		}
	}

	pts, err := PointsFromScrapes(scrapes)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	p := pts[2]
	if p.Sec != 120 || p.Omega != 0.95 || p.Gamma != 0.475 || p.InputRate != 102 ||
		p.ActiveVMs != 3 || p.UsedCores != 4 || relDiff(p.CostUSD, 0.12) > 1e-12 {
		t.Fatalf("point = %+v", p)
	}
}

func TestLoadScrapeDirErrors(t *testing.T) {
	empty := t.TempDir()
	if _, err := LoadScrapeDir(empty); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := LoadScrapeDir(filepath.Join(empty, "missing")); err == nil {
		t.Error("missing dir accepted")
	}

	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "notatime.prom"), []byte("m 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScrapeDir(bad); err == nil {
		t.Error("non-integer stem accepted")
	}

	malformed := t.TempDir()
	if err := os.WriteFile(filepath.Join(malformed, "0.prom"), []byte("m{a=\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScrapeDir(malformed); err == nil {
		t.Error("malformed exposition accepted")
	}
}

func TestSeriesFromScrapesErrors(t *testing.T) {
	dir := t.TempDir()
	writeScrape(t, dir, 0, func(g *obs.RunGauges) { g.Omega.Set(1) })
	writeScrape(t, dir, 60, func(g *obs.RunGauges) { g.Omega.Set(1) })
	writeScrape(t, dir, 180, func(g *obs.RunGauges) { g.Omega.Set(1) }) // gap: 120 missing
	scrapes, err := LoadScrapeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SeriesFromScrapes(scrapes, "sim_omega"); err == nil {
		t.Error("non-uniform spacing accepted")
	}
	if _, err := SeriesFromScrapes(scrapes[:1], "sim_omega"); err == nil {
		t.Error("single scrape accepted")
	}
	if _, err := SeriesFromScrapes(scrapes[:2], "no_such_metric"); err == nil {
		t.Error("missing metric accepted")
	}
	if _, err := PointsFromScrapes(nil); err == nil {
		t.Error("empty scrape list accepted")
	}
}
