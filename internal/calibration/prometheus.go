// Package calibration fits the simulator to observed systems and validates
// it as a digital twin (ROADMAP item 3). It closes the loop the paper could
// not publish data for: import measurements (Prometheus expositions the obs
// package serves, metrics CSVs, trace CSV pools), recover the synthetic
// generator and cost-model parameters from them, re-run the simulator with
// the fitted scenario, and report predicted-vs-observed agreement with
// per-metric tolerances.
//
// Everything is stdlib-only and deterministic: the same inputs produce
// byte-identical reports.
package calibration

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Sample is one exposition line: a metric name (histogram children keep
// their _bucket/_sum/_count suffix), its labels in input order, and the
// value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Family groups the samples under one # HELP/# TYPE header. Samples that
// appear without a header form an implicit family of kind "untyped" with no
// help text.
type Family struct {
	Name, Help, Kind string
	Samples          []Sample
	// header records whether HELP/TYPE lines introduced the family (and so
	// must be re-emitted on WriteText).
	header bool
}

// Exposition is one parsed scrape: families in input order.
type Exposition struct {
	Families []*Family
	byName   map[string]*Family
}

// promKinds are the metric kinds the 0.0.4 text format defines.
var promKinds = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// ParsePrometheus parses Prometheus text exposition format (version 0.0.4)
// — the exact dialect internal/obs.WriteText emits, including +Inf/-Inf/NaN
// values and label escaping. Malformed input returns an error naming the
// line; the parser never panics (see FuzzParsePrometheus).
func ParsePrometheus(r io.Reader) (*Exposition, error) {
	e := &Exposition{byName: make(map[string]*Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var current *Family
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fam, err := e.parseComment(line, lineNo)
			if err != nil {
				return nil, err
			}
			if fam != nil {
				current = fam
			}
			continue
		}
		if err := e.parseSample(line, lineNo, &current); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("calibration: prometheus: %w", err)
	}
	return e, nil
}

// parseComment handles "# HELP", "# TYPE" and free-form comments. It returns
// the family a HELP/TYPE line introduces (nil for plain comments).
func (e *Exposition) parseComment(line string, lineNo int) (*Family, error) {
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimPrefix(rest, " ")
	switch {
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(rest[len("HELP "):], " ", 2)
		name := fields[0]
		if !validMetricName(name) {
			return nil, fmt.Errorf("calibration: prometheus line %d: bad metric name %q in HELP", lineNo, name)
		}
		fam := e.family(name)
		fam.header = true
		if len(fields) == 2 {
			fam.Help = unescapeHelp(fields[1])
		}
		return fam, nil
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest[len("TYPE "):])
		if len(fields) != 2 {
			return nil, fmt.Errorf("calibration: prometheus line %d: TYPE wants \"name kind\"", lineNo)
		}
		name, kind := fields[0], fields[1]
		if !validMetricName(name) {
			return nil, fmt.Errorf("calibration: prometheus line %d: bad metric name %q in TYPE", lineNo, name)
		}
		if !promKinds[kind] {
			return nil, fmt.Errorf("calibration: prometheus line %d: unknown metric kind %q", lineNo, kind)
		}
		fam := e.family(name)
		fam.header = true
		fam.Kind = kind
		return fam, nil
	default:
		// Free-form comment: legal, carries no structure.
		return nil, nil
	}
}

// parseSample parses one sample line and appends it to the owning family.
func (e *Exposition) parseSample(line string, lineNo int, current **Family) error {
	s, err := parseSampleLine(line)
	if err != nil {
		return fmt.Errorf("calibration: prometheus line %d: %w", lineNo, err)
	}
	fam := *current
	if fam == nil || !sampleBelongs(fam, s.Name) {
		fam = e.family(baseName(s.Name))
		*current = fam
	}
	fam.Samples = append(fam.Samples, s)
	return nil
}

// family returns (creating if needed, preserving order) the family for name.
func (e *Exposition) family(name string) *Family {
	if f, ok := e.byName[name]; ok {
		return f
	}
	f := &Family{Name: name, Kind: "untyped"}
	e.byName[name] = f
	e.Families = append(e.Families, f)
	return f
}

// sampleBelongs reports whether a sample named n belongs to family f —
// either the name matches, or it is a histogram/summary child series.
func sampleBelongs(f *Family, n string) bool {
	if n == f.Name {
		return true
	}
	if f.Kind == "histogram" || f.Kind == "summary" {
		return n == f.Name+"_bucket" || n == f.Name+"_sum" || n == f.Name+"_count"
	}
	return false
}

// baseName maps an isolated child sample name back to a plausible family
// name. Without a TYPE header there is no histogram context, so the name is
// its own family.
func baseName(n string) string { return n }

// parseSampleLine parses `name[{labels}] value [timestamp]`. The optional
// timestamp is accepted and discarded (obs never writes one).
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("missing metric name")
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" {
		return s, fmt.Errorf("missing value")
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("missing value")
	}
	if len(fields) > 2 {
		return s, fmt.Errorf("trailing garbage after value")
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `{name="value",...}` returning the remaining tail.
func parseLabels(in string) ([]Label, string, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if in[i] == '}' {
			return labels, in[i+1:], nil
		}
		if len(labels) > 0 {
			if in[i] != ',' {
				return nil, "", fmt.Errorf("expected ',' between labels")
			}
			i++
		}
		start := i
		for i < len(in) && isNameChar(in[i], i == start) {
			i++
		}
		if i == start {
			return nil, "", fmt.Errorf("missing label name")
		}
		name := in[start:i]
		if !strings.HasPrefix(in[i:], `="`) {
			return nil, "", fmt.Errorf("label %s: expected =\"", name)
		}
		i += 2
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(in) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case 'n':
					val.WriteByte('\n')
				case '"':
					val.WriteByte('"')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
	}
}

// parsePromValue parses a sample value, accepting the exposition spellings
// +Inf, -Inf and NaN (Go's ParseFloat accepts them too, along with the
// case variants Prometheus tolerates).
func parsePromValue(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

// WriteText re-renders the exposition in the obs package's dialect: HELP
// then TYPE per family, samples in order, shortest round-trip float
// formatting. Parsing obs.WriteText output and re-rendering reproduces the
// input byte for byte.
func (e *Exposition) WriteText(w io.Writer) error {
	for _, f := range e.Families {
		if len(f.Samples) == 0 && !f.header {
			continue
		}
		if f.header {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				f.Name, escapeHelp(f.Help), f.Name, f.Kind); err != nil {
				return err
			}
		}
		for _, s := range f.Samples {
			var b strings.Builder
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Value returns the sample with the given name whose labels match want
// exactly (order-insensitive). The second return is false when absent.
func (e *Exposition) Value(name string, want map[string]string) (float64, bool) {
	for _, f := range e.Families {
		for _, s := range f.Samples {
			if s.Name != name || len(s.Labels) != len(want) {
				continue
			}
			match := true
			for _, l := range s.Labels {
				if want[l.Name] != l.Value {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// Gauge returns the value of an unlabeled single-sample metric.
func (e *Exposition) Gauge(name string) (float64, bool) {
	return e.Value(name, nil)
}

// formatValue mirrors obs: Inf/NaN spellings plus shortest-round-trip floats.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
