package calibration

import (
	"fmt"
	"math"
	"sort"

	"dynamicdf/internal/cloud"
)

// CostObservation is one billing reading: whole hours billed per VM class
// and the total spend at that moment — the counters a cloud bill (or the
// simulator's fleet) exposes.
type CostObservation struct {
	HoursByClass map[string]float64
	TotalUSD     float64
}

// CostObservationFromFleet snapshots a fleet's billing state, with
// hour-boundary round-up billing exactly as the cloud package charges it.
func CostObservationFromFleet(f *cloud.Fleet, now int64) CostObservation {
	obs := CostObservation{HoursByClass: make(map[string]float64)}
	for _, vm := range f.All() {
		h := float64(vm.BilledHours(now))
		if h == 0 {
			continue
		}
		obs.HoursByClass[vm.Class.Name] += h
		obs.TotalUSD += vm.AccruedCost(now)
	}
	return obs
}

// FitCost least-squares fits per-class hourly prices from billing
// observations: solve min over p of sum_i (sum_c hours_ic * p_c - total_i)^2
// via the normal equations. It needs at least as many observations as
// distinct classes, with enough class-mix diversity that the system is not
// singular. Classes never observed are absent from the result.
func FitCost(observations []CostObservation) (map[string]float64, error) {
	classSet := map[string]bool{}
	for _, o := range observations {
		for c, h := range o.HoursByClass {
			if h < 0 {
				return nil, fmt.Errorf("calibration: negative billed hours %v for class %s", h, c)
			}
			if h > 0 {
				classSet[c] = true
			}
		}
	}
	if len(classSet) == 0 {
		return nil, fmt.Errorf("calibration: no billed hours in any observation")
	}
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	n := len(classes)
	if len(observations) < n {
		return nil, fmt.Errorf("calibration: %d observations cannot identify %d class prices", len(observations), n)
	}
	idx := make(map[string]int, n)
	for i, c := range classes {
		idx[c] = i
	}

	// Normal equations: ata = A^T A, aty = A^T y.
	ata := make([][]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	aty := make([]float64, n)
	for _, o := range observations {
		row := make([]float64, n)
		for c, h := range o.HoursByClass {
			row[idx[c]] = h
		}
		for i := 0; i < n; i++ {
			if row[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * o.TotalUSD
		}
	}
	prices, err := solveLinear(ata, aty)
	if err != nil {
		return nil, fmt.Errorf("calibration: cost fit: %w", err)
	}
	out := make(map[string]float64, n)
	for i, c := range classes {
		out[c] = prices[i]
	}
	return out, nil
}

// solveLinear solves a*x = y by Gaussian elimination with partial pivoting.
// The inputs are mutated.
func solveLinear(a [][]float64, y []float64) ([]float64, error) {
	n := len(y)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system (insufficient class-mix diversity)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		y[col], y[pivot] = y[pivot], y[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			y[r] -= f * y[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		acc := y[r]
		for c := r + 1; c < n; c++ {
			acc -= a[r][c] * x[c]
		}
		x[r] = acc / a[r][r]
	}
	return x, nil
}
