package calibration

import (
	"math"
	"testing"

	"dynamicdf/internal/metrics"
)

func wavePoints(mean, amp float64, periodSec, intervalSec, n int64) []metrics.Point {
	pts := make([]metrics.Point, 0, n)
	for i := int64(0); i < n; i++ {
		sec := i * intervalSec
		pts = append(pts, metrics.Point{
			Sec:       sec,
			InputRate: mean + amp*math.Sin(2*math.Pi*float64(sec)/float64(periodSec)),
		})
	}
	return pts
}

func TestFitRateWave(t *testing.T) {
	pts := wavePoints(100, 30, 1800, 60, 240) // 4 hours of a 30-minute wave
	spec, err := FitRate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "wave" {
		t.Fatalf("kind = %q, want wave (%+v)", spec.Kind, spec)
	}
	if spec.PeriodSec != 1800 {
		t.Errorf("period = %d, want 1800", spec.PeriodSec)
	}
	if relDiff(spec.Mean, 100) > 0.01 {
		t.Errorf("mean = %v, want 100", spec.Mean)
	}
	if relDiff(spec.Amplitude, 30) > 0.05 {
		t.Errorf("amplitude = %v, want 30", spec.Amplitude)
	}
}

func TestFitRateConstant(t *testing.T) {
	pts := make([]metrics.Point, 120)
	for i := range pts {
		// Uncorrelated deterministic jitter, no periodic structure.
		pts[i] = metrics.Point{Sec: int64(i) * 60, InputRate: 50 + 3*math.Sin(float64(i*i))}
	}
	spec, err := FitRate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "constant" {
		t.Fatalf("kind = %q, want constant (%+v)", spec.Kind, spec)
	}
	if relDiff(spec.Mean, 50) > 0.05 {
		t.Errorf("mean = %v, want ~50", spec.Mean)
	}

	// A perfectly flat series is constant too (zero-variance path).
	flat := make([]metrics.Point, 10)
	for i := range flat {
		flat[i] = metrics.Point{Sec: int64(i) * 60, InputRate: 7}
	}
	spec, err = FitRate(flat)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "constant" || spec.Mean != 7 {
		t.Fatalf("flat fit = %+v", spec)
	}
}

func TestFitRateErrors(t *testing.T) {
	if _, err := FitRate(nil); err == nil {
		t.Error("empty points accepted")
	}
	bad := []metrics.Point{{Sec: 0, InputRate: 1}, {Sec: 60, InputRate: -2}, {Sec: 120}, {Sec: 180}}
	if _, err := FitRate(bad); err == nil {
		t.Error("negative rate accepted")
	}
}

// Amplitude is capped at the mean so the fitted profile stays valid for
// rates.NewWave.
func TestFitRateAmplitudeCap(t *testing.T) {
	pts := make([]metrics.Point, 240)
	for i := range pts {
		sec := int64(i) * 60
		v := 10 + 40*math.Sin(2*math.Pi*float64(sec)/1800)
		if v < 0 {
			v = 0 // observed rates cannot be negative; the wave clips
		}
		pts[i] = metrics.Point{Sec: sec, InputRate: v}
	}
	spec, err := FitRate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind == "wave" && spec.Amplitude > spec.Mean {
		t.Fatalf("amplitude %v exceeds mean %v", spec.Amplitude, spec.Mean)
	}
}
