package calibration

import (
	"fmt"
	"math"

	"dynamicdf/internal/trace"
)

// GenFit is the result of fitting the trace generator to an observed series
// pool: the recovered config plus the diagnostics behind it.
type GenFit struct {
	// Config is the fitted generator parameterization.
	Config trace.GenConfig
	// Decomp is the autocorrelation decomposition the OU/regime parameters
	// derive from.
	Decomp trace.ACDecomposition
	// Variance is the pooled sample variance (after diurnal removal).
	Variance float64
	// DiurnalAmp is the fitted 24-hour sinusoid amplitude before the
	// significance cut (Config.DiurnalAmp is zero when insignificant).
	DiurnalAmp float64
	// Series and Samples count the pooled input.
	Series, Samples int
}

// FitGen recovers trace.GenConfig parameters from a pool of observed series
// by method of moments:
//
//	Mean       = pooled sample mean
//	phi        = 1 + 2*corr(dx_t, dx_t+1)   dx = successive differences
//	Theta      = (1 - phi) / dt
//	Sigma      = sqrt(E[dx^2] * (1+phi) / (2*dt))
//	RegimeProb = 1 - psi                    psi = slow AC decay per sample
//	RegimeAmp  = sqrt(3 * ws * g0)          ws  = slow variance fraction
//
// The OU parameters come from difference statistics: for an AR(1) with
// per-sample decay phi, successive differences have lag-1 correlation
// (phi-1)/2 and mean square 2*gamma_fast*(1-phi) = sigma^2*dt*2/(1+phi).
// Differencing annihilates the slowly-varying regime level, so these
// estimators stay accurate when regimes carry most of the variance. The
// regime parameters come from the pooled autocovariance decomposition
// (trace.DecomposeAC): a uniform regime offset on [-A, +A] has variance
// A^2/3, and the level's per-sample survival probability 1-RegimeProb gives
// the slow exponential. A 24-hour sinusoid is fitted and removed first; its
// amplitude becomes DiurnalAmp when it explains a non-negligible variance
// share. Min/Max/PeriodSec come from the template config (the prior for
// bounds the data cannot identify); a zero-valued template takes the
// observed range.
//
// Identification caveat: a slow pure OU and persistent regimes are
// indistinguishable from second-order statistics — timescale separation
// (regime dwell >> OU relaxation) is assumed, as in the generator defaults.
//
// All series must share one sampling period. Pooling independent series
// (e.g. many VMs) sharpens the estimate roughly like sqrt(count).
func FitGen(pool []*trace.Series, template trace.GenConfig) (GenFit, error) {
	var fit GenFit
	if len(pool) == 0 {
		return fit, fmt.Errorf("calibration: empty series pool")
	}
	period := pool[0].PeriodSec
	minLen := len(pool[0].Samples)
	total := 0
	for i, s := range pool {
		if s == nil || len(s.Samples) == 0 {
			return fit, fmt.Errorf("calibration: series %d is empty", i)
		}
		if s.PeriodSec != period {
			return fit, fmt.Errorf("calibration: series %d period %d != %d", i, s.PeriodSec, period)
		}
		if len(s.Samples) < minLen {
			minLen = len(s.Samples)
		}
		total += len(s.Samples)
	}
	if minLen < 16 {
		return fit, fmt.Errorf("calibration: series too short (%d samples, want >= 16)", minLen)
	}
	fit.Series, fit.Samples = len(pool), total

	// Pooled mean and observed range.
	mean, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
	for _, s := range pool {
		for _, v := range s.Samples {
			mean += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	mean /= float64(total)

	// Diurnal component: one shared-phase 24h sinusoid across the pool
	// (the generator applies it on absolute time, so series are aligned).
	dAmp, dPhaseB, dPhaseC := fitDiurnal(pool, mean)
	fit.DiurnalAmp = dAmp

	// Remove the fitted diurnal before second-order analysis, so it does
	// not masquerade as an extremely slow AC component.
	flat := make([]*trace.Series, len(pool))
	for i, s := range pool {
		out := make([]float64, len(s.Samples))
		for j, v := range s.Samples {
			t := float64(int64(j) * s.PeriodSec)
			w := 2 * math.Pi * t / 86400
			out[j] = v - dPhaseB*math.Sin(w) - dPhaseC*math.Cos(w)
		}
		flat[i] = &trace.Series{PeriodSec: s.PeriodSec, Samples: out}
	}

	// Pooled autocovariance, averaged across series.
	maxLag := minLen / 4
	if maxLag > 4096 {
		maxLag = 4096
	}
	pooled := make([]float64, maxLag+1)
	for _, s := range flat {
		g := trace.Autocovariance(s, maxLag)
		for k, v := range g {
			pooled[k] += v / float64(len(flat))
		}
	}
	g0 := pooled[0]
	if g0 <= 0 {
		// A constant pool: pure mean, no dynamics.
		fit.Config = configFromMoments(mean, 0, 0, 0, 0, 0, lo, hi, period, template)
		return fit, nil
	}
	fit.Variance = g0
	rho := make([]float64, len(pooled))
	rho[0] = 1
	for k := 1; k < len(pooled); k++ {
		rho[k] = pooled[k] / g0
	}
	d := trace.DecomposeAC(rho)
	fit.Decomp = d

	// OU reversion and diffusion from pooled difference statistics.
	var sumD2, sumD1 float64
	var nD2, nD1 int
	for _, s := range flat {
		for j := 0; j+1 < len(s.Samples); j++ {
			dx := s.Samples[j+1] - s.Samples[j]
			sumD2 += dx * dx
			nD2++
			if j+2 < len(s.Samples) {
				sumD1 += dx * (s.Samples[j+2] - s.Samples[j+1])
				nD1++
			}
		}
	}
	dt := float64(period)
	e2 := sumD2 / float64(nD2)
	phi := 0.0
	if e2 > 0 && nD1 > 0 {
		corr := (sumD1 / float64(nD1)) / e2
		phi = clampUnit(1 + 2*corr)
	}
	theta := (1 - phi) / dt
	sigma := math.Sqrt(e2 * (1 + phi) / (2 * dt))
	regProb, regAmp := 0.0, 0.0
	if d.SlowWeight > 0 {
		regProb = 1 - clampUnit(d.SlowDecay)
		regAmp = math.Sqrt(3 * d.SlowWeight * g0)
	}
	diurnal := dAmp
	// Keep a diurnal term only when it explains a visible variance share;
	// an amplitude below ~7% of the residual stddev is fit noise.
	if dAmp*dAmp/2 < 0.005*g0 {
		diurnal = 0
	}
	fit.Config = configFromMoments(mean, theta, sigma, regProb, regAmp, diurnal, lo, hi, period, template)
	if err := fit.Config.Validate(); err != nil {
		return fit, fmt.Errorf("calibration: fitted config invalid: %w", err)
	}
	return fit, nil
}

// configFromMoments assembles the fitted config, taking bounds from the
// template when it has them and the observed range (slightly padded)
// otherwise.
func configFromMoments(mean, theta, sigma, regProb, regAmp, diurnal, lo, hi float64, period int64, template trace.GenConfig) trace.GenConfig {
	c := trace.GenConfig{
		Mean: mean, Theta: theta, Sigma: sigma,
		RegimeProb: regProb, RegimeAmp: regAmp, DiurnalAmp: diurnal,
		Min: template.Min, Max: template.Max, PeriodSec: period,
	}
	if template.Min == 0 && template.Max == 0 {
		span := hi - lo
		pad := 0.05 * span
		if span == 0 {
			pad = math.Abs(mean) * 0.05
		}
		c.Min, c.Max = lo-pad, hi+pad
	}
	if c.Mean < c.Min {
		c.Mean = c.Min
	}
	if c.Mean > c.Max {
		c.Mean = c.Max
	}
	return c
}

// fitDiurnal least-squares fits b*sin(wt) + c*cos(wt) (w = 2*pi/24h) to the
// mean-removed pool and returns the amplitude and the two phase components.
// Pools shorter than a day cannot identify the component and fit zero.
func fitDiurnal(pool []*trace.Series, mean float64) (amp, b, c float64) {
	var sbb, scc, sbc, sby, scy float64
	covered := int64(0)
	for _, s := range pool {
		if d := s.Duration(); d > covered {
			covered = d
		}
		for j, v := range s.Samples {
			t := float64(int64(j) * s.PeriodSec)
			w := 2 * math.Pi * t / 86400
			sb, cb := math.Sin(w), math.Cos(w)
			y := v - mean
			sbb += sb * sb
			scc += cb * cb
			sbc += sb * cb
			sby += sb * y
			scy += cb * y
		}
	}
	if covered < 86400 {
		return 0, 0, 0
	}
	det := sbb*scc - sbc*sbc
	if det <= 1e-9*(sbb*scc+1) {
		return 0, 0, 0
	}
	b = (sby*scc - scy*sbc) / det
	c = (scy*sbb - sby*sbc) / det
	return math.Hypot(b, c), b, c
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
