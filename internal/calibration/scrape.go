package calibration

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dynamicdf/internal/metrics"
	"dynamicdf/internal/trace"
)

// Scrape is one exposition snapshot taken at a known simulation/wall time.
type Scrape struct {
	Sec int64
	Exp *Exposition
}

// LoadScrapeDir reads a directory of exposition snapshots named
// "<sec>.prom" (e.g. 0.prom, 60.prom, ... — the natural dump format for a
// loop scraping /metrics) and returns them sorted by time. Files with other
// extensions are ignored; a .prom file whose stem is not an integer is an
// error, as is an empty directory.
func LoadScrapeDir(dir string) ([]Scrape, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("calibration: %w", err)
	}
	var out []Scrape
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(strings.ToLower(name), ".prom") {
			continue
		}
		stem := name[:len(name)-len(".prom")]
		sec, err := strconv.ParseInt(stem, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("calibration: scrape file %s: name must be <sec>.prom", name)
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("calibration: %w", err)
		}
		exp, err := ParsePrometheus(f)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("calibration: scrape file %s: %w", name, err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		out = append(out, Scrape{Sec: sec, Exp: exp})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("calibration: no .prom files in %s", dir)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sec < out[j].Sec })
	return out, nil
}

// SeriesFromScrapes assembles the time series of one gauge across uniformly
// spaced scrapes — the bridge from a /metrics scrape log to a calibration
// target series.
func SeriesFromScrapes(scrapes []Scrape, metric string) (*trace.Series, error) {
	if len(scrapes) < 2 {
		return nil, fmt.Errorf("calibration: need at least 2 scrapes for %s, have %d", metric, len(scrapes))
	}
	period := scrapes[1].Sec - scrapes[0].Sec
	if period <= 0 {
		return nil, fmt.Errorf("calibration: scrape times must increase (step %d)", period)
	}
	samples := make([]float64, 0, len(scrapes))
	for i, sc := range scrapes {
		if i > 0 {
			if step := sc.Sec - scrapes[i-1].Sec; step != period {
				return nil, fmt.Errorf("calibration: scrapes not uniformly spaced: step %d at %d, want %d",
					step, sc.Sec, period)
			}
		}
		v, ok := sc.Exp.Gauge(metric)
		if !ok {
			return nil, fmt.Errorf("calibration: metric %s missing from scrape at %d", metric, sc.Sec)
		}
		samples = append(samples, v)
	}
	return trace.NewSeries(period, samples)
}

// PointsFromScrapes reconstructs per-interval metrics points from the sim_*
// gauge set each scrape carries — enough of a run record to validate
// against when no metrics CSV was kept.
func PointsFromScrapes(scrapes []Scrape) ([]metrics.Point, error) {
	if len(scrapes) == 0 {
		return nil, fmt.Errorf("calibration: no scrapes")
	}
	pts := make([]metrics.Point, 0, len(scrapes))
	for _, sc := range scrapes {
		p := metrics.Point{Sec: sc.Sec}
		grab := func(name string, dst *float64) bool {
			v, ok := sc.Exp.Gauge(name)
			if ok {
				*dst = v
			}
			return ok
		}
		if !grab("sim_omega", &p.Omega) {
			return nil, fmt.Errorf("calibration: sim_omega missing from scrape at %d", sc.Sec)
		}
		grab("sim_gamma", &p.Gamma)
		grab("sim_cost_usd", &p.CostUSD)
		grab("sim_input_rate", &p.InputRate)
		grab("sim_backlog_messages", &p.Backlog)
		var f float64
		if grab("sim_active_vms", &f) {
			p.ActiveVMs = int(f)
		}
		if grab("sim_pending_vms", &f) {
			p.PendingVMs = int(f)
		}
		if grab("sim_used_cores", &f) {
			p.UsedCores = int(f)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// LoadPointsCSV reads a metrics CSV (the dfsim -csv output) as observed
// points.
func LoadPointsCSV(path string) ([]metrics.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("calibration: %w", err)
	}
	defer f.Close()
	return metrics.ReadCSV(f)
}

// LoadTraceDir loads a directory of per-VM trace CSVs as calibration target
// series (see trace.LoadDir for the typed errors it surfaces).
func LoadTraceDir(dir string) ([]*trace.Series, error) {
	return trace.LoadDir(dir)
}
