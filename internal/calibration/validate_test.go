package calibration

import (
	"bytes"
	"strings"
	"testing"

	"dynamicdf/internal/scenario"
)

const minimalScenario = `{
  "graph": {
    "pes": [
      {"name": "a", "alternates": [{"name": "x", "value": 1, "cost": 0.2, "selectivity": 1}]},
      {"name": "b", "alternates": [
        {"name": "full", "value": 1, "cost": 1.0, "selectivity": 1},
        {"name": "lite", "value": 0.8, "cost": 0.5, "selectivity": 1}
      ]}
    ],
    "edges": [["a", "b"]]
  },
  "rate": {"kind": "constant", "mean": 5},
  "horizonHours": 1
}`

func parseScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Parse(strings.NewReader(minimalScenario))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// The loopback identity: validating a deterministic scenario against its own
// run must pass with zero residual on every metric.
func TestValidateSelfLoopback(t *testing.T) {
	sc := parseScenario(t)
	built, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.Engine.Run(built.Scheduler); err != nil {
		t.Fatal(err)
	}
	observed := built.Engine.Collector().Points()

	rep, err := Validate(parseScenario(t), observed, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("self-loopback failed:\n%s", rep.Table())
	}
	if len(rep.Metrics) != 6 {
		t.Fatalf("%d metrics, want 6", len(rep.Metrics))
	}
	for _, m := range rep.Metrics {
		if m.RelErr != 0 {
			t.Errorf("%s: relErr = %v, want 0 (obs %v pred %v)", m.Name, m.RelErr, m.Observed, m.Predicted)
		}
	}
	if rep.Intervals.Observed != rep.Intervals.Predicted {
		t.Errorf("intervals %+v", rep.Intervals)
	}
}

// Perturbing the observed series past tolerance must flip the verdict, and
// the failing metric must be identifiable in the report.
func TestValidateDetectsDivergence(t *testing.T) {
	sc := parseScenario(t)
	built, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.Engine.Run(built.Scheduler); err != nil {
		t.Fatal(err)
	}
	observed := built.Engine.Collector().Points()
	for i := range observed {
		observed[i].Omega *= 1.5
	}

	rep, err := Validate(parseScenario(t), observed, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("divergent run passed:\n%s", rep.Table())
	}
	failed := map[string]bool{}
	for _, m := range rep.Metrics {
		if !m.Pass {
			failed[m.Name] = true
		}
	}
	if !failed["mean_omega"] {
		t.Errorf("mean_omega did not fail: %+v", rep.Metrics)
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := Validate(parseScenario(t), nil, DefaultTolerances()); err == nil {
		t.Error("empty observations accepted")
	}
	bad := parseScenario(t)
	bad.Rate.Kind = "ghost"
	built, err := parseScenario(t).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built.Engine.Run(built.Scheduler); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(bad, built.Engine.Collector().Points(), DefaultTolerances()); err == nil {
		t.Error("unbuildable scenario accepted")
	}
}

// Reports must be byte-deterministic: same inputs, identical JSON and table.
func TestReportDeterministic(t *testing.T) {
	run := func() ([]byte, string) {
		sc := parseScenario(t)
		built, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := built.Engine.Run(built.Scheduler); err != nil {
			t.Fatal(err)
		}
		rep, err := Validate(parseScenario(t), built.Engine.Collector().Points(), DefaultTolerances())
		if err != nil {
			t.Fatal(err)
		}
		j, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j, rep.Table()
	}
	j1, t1 := run()
	j2, t2 := run()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSON not deterministic:\n%s\n---\n%s", j1, j2)
	}
	if t1 != t2 {
		t.Fatalf("table not deterministic:\n%s\n---\n%s", t1, t2)
	}
	// The JSON must parse-roundtrip structurally: spot-check shape markers.
	if !bytes.Contains(j1, []byte(`"mean_omega"`)) || !bytes.Contains(j1, []byte(`"pass"`)) {
		t.Fatalf("unexpected JSON shape:\n%s", j1)
	}
}
