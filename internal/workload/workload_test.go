package workload

import (
	"math"
	"testing"
)

func openSpec() Spec {
	return Spec{
		Model:            Open,
		ArrivalPerSec:    2,
		MeanSessionSec:   300,
		MsgPerSessionSec: 0.5,
		Seed:             7,
	}
}

func TestOpenMeanMatchesLittlesLaw(t *testing.T) {
	s := MustNew(openSpec())
	want := 2 * 300 * 0.5 // λ·E[S]·m
	if got := s.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean() = %v, want %v", got, want)
	}
	// The simulated path should settle near the analytic mean.
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += s.Rate(int64(i) * 60)
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("simulated mean %v too far from analytic %v", got, want)
	}
}

func TestClosedMeanAndBound(t *testing.T) {
	s := MustNew(Spec{
		Model:            Closed,
		Population:       1000,
		ThinkSec:         600,
		MeanSessionSec:   300,
		MsgPerSessionSec: 1,
		Seed:             3,
	})
	want := 1000.0 * 300 / (300 + 600)
	if got := s.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Mean() = %v, want %v", got, want)
	}
	for sec := int64(0); sec < 86400; sec += 60 {
		if a := s.ActiveSessions(sec); a < 0 || a > 1000 {
			t.Fatalf("active sessions %v outside [0, population] at t=%d", a, sec)
		}
	}
}

func TestDeterministicAndQueryOrderIndependent(t *testing.T) {
	a := MustNew(openSpec())
	b := MustNew(openSpec())
	// Query b backwards and out of order; values must match a's forward scan.
	if got, want := b.Rate(500000), a.Rate(500000); got != want {
		t.Fatalf("far query mismatch: %v vs %v", got, want)
	}
	for sec := int64(100000); sec >= 0; sec -= 7777 {
		if got, want := b.Rate(sec), a.Rate(sec); got != want {
			t.Fatalf("Rate(%d) order-dependent: %v vs %v", sec, got, want)
		}
	}
}

func TestSeedZeroFallsBack(t *testing.T) {
	sp := openSpec()
	sp.Seed = 0
	s := MustNew(sp)
	if s.Spec().Seed != 1 {
		t.Fatalf("seed 0 should fall back to 1, got %d", s.Spec().Seed)
	}
	sp.Seed = 1
	ref := MustNew(sp)
	if s.Rate(3600) != ref.Rate(3600) {
		t.Fatal("seed-0 generator should match seed-1")
	}
}

func TestDiurnalModulatesAroundMean(t *testing.T) {
	sp := openSpec()
	sp.Diurnal = 0.5
	sp.Seed = 11
	s := MustNew(sp)
	// Peak-window average must exceed trough-window average.
	day := int64(86400)
	avg := func(lo, hi int64) float64 {
		var sum float64
		var n int
		// Skip the first day so the population has warmed up.
		for t := day + lo; t < day+hi; t += 60 {
			sum += s.Rate(t)
			n++
		}
		return sum / float64(n)
	}
	peak := avg(day/8, 3*day/8)     // around sin peak at day/4
	trough := avg(5*day/8, 7*day/8) // around sin trough at 3day/4
	if peak <= trough {
		t.Fatalf("diurnal peak %v not above trough %v", peak, trough)
	}
}

func TestBurstRaisesMean(t *testing.T) {
	sp := openSpec()
	sp.BurstFactor = 3
	sp.CalmResidencySec = 1800
	sp.BurstResidencySec = 1800
	s := MustNew(sp)
	base := MustNew(openSpec())
	// Equal residencies: λ̄ = λ·(1+3)/2 = 2λ.
	if got, want := s.Mean(), 2*base.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MMPP mean %v, want %v", got, want)
	}
}

func TestFlashCrowdSpikes(t *testing.T) {
	sp := openSpec()
	sp.FlashProb = 0.02
	sp.FlashFactor = 10
	sp.FlashSec = 1200
	s := MustNew(sp)
	base := MustNew(openSpec())
	var peak, basePeak float64
	for sec := int64(0); sec < 7*86400; sec += 60 {
		if r := s.Rate(sec); r > peak {
			peak = r
		}
		if r := base.Rate(sec); r > basePeak {
			basePeak = r
		}
	}
	if peak < 2*basePeak {
		t.Fatalf("flash-crowd peak %v not clearly above baseline peak %v", peak, basePeak)
	}
}

func TestValidation(t *testing.T) {
	bad := []Spec{
		{}, // open without arrivals
		{Model: "weird", ArrivalPerSec: 1, MeanSessionSec: 1, MsgPerSessionSec: 1},
		{Model: Open, ArrivalPerSec: 1, MeanSessionSec: 0, MsgPerSessionSec: 1},
		{Model: Open, ArrivalPerSec: 1, MeanSessionSec: 1, MsgPerSessionSec: 0},
		{Model: Closed, ThinkSec: 1, MeanSessionSec: 1, MsgPerSessionSec: 1},   // no population
		{Model: Closed, Population: 5, MeanSessionSec: 1, MsgPerSessionSec: 1}, // no think
		{Model: Open, ArrivalPerSec: 1, MeanSessionSec: 1, MsgPerSessionSec: 1, Diurnal: 1.5},
		{Model: Open, ArrivalPerSec: 1, MeanSessionSec: 1, MsgPerSessionSec: 1, BurstFactor: 0.5},
		{Model: Open, ArrivalPerSec: 1, MeanSessionSec: 1, MsgPerSessionSec: 1, FlashProb: 2},
	}
	for i, sp := range bad {
		if _, err := New(sp); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
}

func TestFan(t *testing.T) {
	s := MustNew(openSpec())
	parts, err := Fan(s, []float64{3, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	at := int64(3600)
	total := parts[0].Rate(at) + parts[1].Rate(at)
	if math.Abs(total-s.Rate(at)) > 1e-9 {
		t.Fatalf("fan parts sum %v != original %v", total, s.Rate(at))
	}
	if parts[0].Rate(at) != 3*parts[1].Rate(at) {
		t.Fatalf("fan weights not respected: %v vs %v", parts[0].Rate(at), parts[1].Rate(at))
	}
	if _, err := Fan(s, []float64{1}, 2); err == nil {
		t.Fatal("mismatched weights should fail")
	}
	if _, err := Fan(s, []float64{-1, 1}, 2); err == nil {
		t.Fatal("negative weight should fail")
	}
	uniform, err := Fan(s, nil, 4)
	if err != nil || len(uniform) != 4 {
		t.Fatalf("uniform fan: %v, %d parts", err, len(uniform))
	}
	if uniform[0].Rate(at) != uniform[3].Rate(at) {
		t.Fatal("uniform fan should split equally")
	}
}
