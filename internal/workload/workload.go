// Package workload provides session-based input generators for
// million-user continuous-dataflow scenarios. Where internal/rates models
// one anonymous message stream, this package models a *population of
// users*: sessions arrive (open model: Poisson or 2-state MMPP arrivals;
// closed model: a fixed population cycling through think/active states),
// stay active for an exponentially distributed duration, and each active
// session emits messages at a fixed per-session rate. Arrivals can be
// modulated by a diurnal cycle and punctuated by flash crowds.
//
// A Sessions generator implements rates.Profile, so tenants can mix
// session workloads and legacy rate profiles freely. Like
// rates.RandomWalk, the generator is a deterministic function of
// (Spec, Seed): the active-session path is cached and always regenerated
// from step zero in order, so Rate(sec) is independent of query order and
// byte-reproducible across runs.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"dynamicdf/internal/rates"
)

// Model selects how sessions enter the system.
type Model string

const (
	// Open: sessions arrive from an unbounded population at rate
	// ArrivalPerSec (optionally MMPP-modulated) and depart after a mean
	// MeanSessionSec — the classic open queueing-network workload.
	Open Model = "open"
	// Closed: a fixed Population of users alternates between thinking
	// (mean ThinkSec) and running a session (mean MeanSessionSec), so
	// load is self-limiting — the classic closed-loop workload.
	Closed Model = "closed"
)

// Spec parameterizes a session generator. The zero value is not valid;
// use New to validate and apply defaults.
type Spec struct {
	// Model is "open" (default) or "closed".
	Model Model `json:"model,omitempty"`

	// ArrivalPerSec is the open model's mean session arrival rate λ.
	ArrivalPerSec float64 `json:"arrivalPerSec,omitempty"`
	// MeanSessionSec is the mean session duration E[S] (both models).
	MeanSessionSec float64 `json:"meanSessionSec"`
	// MsgPerSessionSec is the message rate one active session feeds into
	// the dataflow. Rate(t) = activeSessions(t) × MsgPerSessionSec.
	MsgPerSessionSec float64 `json:"msgPerSessionSec"`

	// Population and ThinkSec drive the closed model: Population users,
	// each thinking for a mean ThinkSec between sessions.
	Population int     `json:"population,omitempty"`
	ThinkSec   float64 `json:"thinkSec,omitempty"`

	// Diurnal modulates arrivals by 1 + Diurnal·sin(2πt/DiurnalPeriodSec):
	// 0 disables, 0.5 means a ±50% day/night swing. DiurnalPeriodSec
	// defaults to 86400 (one day).
	Diurnal          float64 `json:"diurnal,omitempty"`
	DiurnalPeriodSec int64   `json:"diurnalPeriodSec,omitempty"`

	// BurstFactor > 1 enables a 2-state MMPP: arrivals run at λ in the
	// calm state and λ·BurstFactor in the burst state, with exponential
	// state residencies (means CalmResidencySec / BurstResidencySec).
	BurstFactor       float64 `json:"burstFactor,omitempty"`
	CalmResidencySec  float64 `json:"calmResidencySec,omitempty"`
	BurstResidencySec float64 `json:"burstResidencySec,omitempty"`

	// FlashProb is the per-step hazard of a flash crowd: arrivals multiply
	// by FlashFactor for FlashSec seconds.
	FlashProb   float64 `json:"flashProb,omitempty"`
	FlashFactor float64 `json:"flashFactor,omitempty"`
	FlashSec    float64 `json:"flashSec,omitempty"`

	// StepSec is the generator's internal step (default 60s). Seed feeds
	// the deterministic sampler; 0 falls back to 1 like rates.RandomWalk.
	StepSec int64 `json:"stepSec,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
}

// Sessions is a deterministic session-population generator implementing
// rates.Profile. Safe for concurrent Rate calls.
type Sessions struct {
	spec Spec

	mu      sync.Mutex
	active  []float64 // cached active-session counts per step
	cachedN int
}

var _ rates.Profile = (*Sessions)(nil)

// New validates spec, applies defaults, and returns a generator.
func New(spec Spec) (*Sessions, error) {
	if spec.Model == "" {
		spec.Model = Open
	}
	switch spec.Model {
	case Open:
		if spec.ArrivalPerSec <= 0 {
			return nil, fmt.Errorf("workload: open model needs arrivalPerSec > 0 (got %v)", spec.ArrivalPerSec)
		}
	case Closed:
		if spec.Population <= 0 {
			return nil, fmt.Errorf("workload: closed model needs population > 0 (got %d)", spec.Population)
		}
		if spec.ThinkSec <= 0 {
			return nil, fmt.Errorf("workload: closed model needs thinkSec > 0 (got %v)", spec.ThinkSec)
		}
	default:
		return nil, fmt.Errorf("workload: unknown model %q (want open or closed)", spec.Model)
	}
	if spec.MeanSessionSec <= 0 {
		return nil, fmt.Errorf("workload: meanSessionSec %v <= 0", spec.MeanSessionSec)
	}
	if spec.MsgPerSessionSec <= 0 {
		return nil, fmt.Errorf("workload: msgPerSessionSec %v <= 0", spec.MsgPerSessionSec)
	}
	if spec.Diurnal < 0 || spec.Diurnal >= 1 {
		return nil, fmt.Errorf("workload: diurnal %v outside [0, 1)", spec.Diurnal)
	}
	if spec.DiurnalPeriodSec == 0 {
		spec.DiurnalPeriodSec = 86400
	}
	if spec.DiurnalPeriodSec < 0 {
		return nil, fmt.Errorf("workload: diurnalPeriodSec %d < 0", spec.DiurnalPeriodSec)
	}
	if spec.BurstFactor != 0 && spec.BurstFactor < 1 {
		return nil, fmt.Errorf("workload: burstFactor %v < 1", spec.BurstFactor)
	}
	if spec.BurstFactor > 1 {
		if spec.CalmResidencySec <= 0 {
			spec.CalmResidencySec = 3600
		}
		if spec.BurstResidencySec <= 0 {
			spec.BurstResidencySec = 600
		}
	}
	if spec.FlashProb < 0 || spec.FlashProb > 1 {
		return nil, fmt.Errorf("workload: flashProb %v outside [0, 1]", spec.FlashProb)
	}
	if spec.FlashProb > 0 {
		if spec.FlashFactor <= 1 {
			spec.FlashFactor = 4
		}
		if spec.FlashSec <= 0 {
			spec.FlashSec = 900
		}
	}
	if spec.StepSec <= 0 {
		spec.StepSec = 60
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	return &Sessions{spec: spec}, nil
}

// MustNew is New or panic, for tests and literals.
func MustNew(spec Spec) *Sessions {
	s, err := New(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// Spec returns the validated spec (defaults applied).
func (s *Sessions) Spec() Spec { return s.spec }

// Rate implements rates.Profile: active sessions at sec times the
// per-session message rate.
func (s *Sessions) Rate(sec int64) float64 {
	if sec < 0 {
		sec = 0
	}
	idx := int(sec / s.spec.StepSec)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensure(idx + 1)
	return s.active[idx] * s.spec.MsgPerSessionSec
}

// ActiveSessions reports the modeled number of concurrently active
// sessions at sec — the population the rate derives from.
func (s *Sessions) ActiveSessions(sec int64) float64 {
	if sec < 0 {
		sec = 0
	}
	idx := int(sec / s.spec.StepSec)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensure(idx + 1)
	return s.active[idx]
}

// Mean implements rates.Profile with the analytic long-run average:
// Little's law for the open model (λ̄·E[S] sessions, MMPP-weighted λ̄),
// the think-time cycle for the closed model (N·S/(S+Z) sessions). The
// diurnal sinusoid averages out; flash crowds are rare excursions and are
// excluded, so Mean is the baseline the objective σ should be sized from.
func (s *Sessions) Mean() float64 {
	sp := s.spec
	var sessions float64
	switch sp.Model {
	case Closed:
		sessions = float64(sp.Population) * sp.MeanSessionSec / (sp.MeanSessionSec + sp.ThinkSec)
	default:
		lambda := sp.ArrivalPerSec
		if sp.BurstFactor > 1 {
			tot := sp.CalmResidencySec + sp.BurstResidencySec
			lambda *= (sp.CalmResidencySec + sp.BurstResidencySec*sp.BurstFactor) / tot
		}
		sessions = lambda * sp.MeanSessionSec
	}
	return sessions * sp.MsgPerSessionSec
}

// Name implements rates.Profile.
func (s *Sessions) Name() string { return "sessions(" + string(s.spec.Model) + ")" }

// ensure extends the cached active-session path to at least n steps.
// Like rates.RandomWalk, the path is always regenerated from step zero
// with a fresh seeded source, so the values at any step are independent
// of the order Rate was called in.
func (s *Sessions) ensure(n int) {
	if n <= s.cachedN {
		return
	}
	if n < 1024 {
		n = 1024
	}
	sp := s.spec
	rng := rand.New(rand.NewSource(sp.Seed))
	active := make([]float64, n)
	dt := float64(sp.StepSec)
	depart := 1 - math.Exp(-dt/sp.MeanSessionSec)
	var think float64
	if sp.Model == Closed {
		think = 1 - math.Exp(-dt/sp.ThinkSec)
	}
	x := 0.0
	burst := false
	flashLeft := 0.0
	for i := 0; i < n; i++ {
		t := int64(i) * sp.StepSec
		mod := 1.0
		if sp.Diurnal > 0 {
			mod *= 1 + sp.Diurnal*math.Sin(2*math.Pi*float64(t)/float64(sp.DiurnalPeriodSec))
		}
		if sp.BurstFactor > 1 {
			if burst {
				mod *= sp.BurstFactor
				if rng.Float64() < 1-math.Exp(-dt/sp.BurstResidencySec) {
					burst = false
				}
			} else if rng.Float64() < 1-math.Exp(-dt/sp.CalmResidencySec) {
				burst = true
			}
		}
		if sp.FlashProb > 0 {
			if flashLeft > 0 {
				mod *= sp.FlashFactor
				flashLeft -= dt
			} else if rng.Float64() < sp.FlashProb {
				flashLeft = sp.FlashSec
			}
		}

		switch sp.Model {
		case Closed:
			// Fixed population: thinkers start sessions, active ones end.
			thinkers := float64(sp.Population) - x
			if thinkers < 0 {
				thinkers = 0
			}
			x += thinkers*think*mod - x*depart
			if x > float64(sp.Population) {
				x = float64(sp.Population)
			}
		default:
			// Open: Poisson arrivals over the step, fluid departures.
			x += poisson(rng, sp.ArrivalPerSec*dt*mod) - x*depart
		}
		if x < 0 {
			x = 0
		}
		active[i] = x
	}
	s.active = active
	s.cachedN = n
}

// poisson draws a Poisson(mean) sample: Knuth's product method for small
// means, a normal approximation (clamped at zero) for large ones.
func poisson(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		x := mean + math.Sqrt(mean)*rng.NormFloat64()
		if x < 0 {
			return 0
		}
		return math.Round(x)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
	}
}

// Fan splits one profile across k input PEs with the given weights
// (uniform when weights is nil), modeling user flows that enter the
// dataflow at multiple source PEs. The returned profiles sum to the
// original at every instant.
func Fan(p rates.Profile, weights []float64, k int) ([]rates.Profile, error) {
	if k <= 0 {
		return nil, fmt.Errorf("workload: fan into %d inputs", k)
	}
	if weights == nil {
		weights = make([]float64, k)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != k {
		return nil, fmt.Errorf("workload: %d fan weights for %d inputs", len(weights), k)
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("workload: fan weight[%d] = %v < 0", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: fan weights sum to %v", total)
	}
	out := make([]rates.Profile, k)
	for i, w := range weights {
		out[i] = &rates.Scaled{Base: p, Factor: w / total}
	}
	return out, nil
}
