// Package rates provides input data-rate profiles for continuous dataflows.
// The paper's evaluation (§8.1) drives the dataflow with three profiles —
// constant rate, periodic waves, and a random walk around a mean — at rates
// between 2 and 50 msg/s. Profiles are deterministic functions of time (the
// random walk derives its path from a seed), so simulations are repeatable.
package rates

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Profile yields the external message rate (msg/s) entering an input PE at
// a given simulation time.
type Profile interface {
	// Rate returns the message rate at time sec. Implementations must
	// return non-negative values.
	Rate(sec int64) float64
	// Mean returns the profile's long-run average rate, which the paper's
	// experiments use as the x-axis "data rate".
	Mean() float64
	// Name identifies the profile kind in experiment output.
	Name() string
}

// Constant is a fixed-rate profile.
type Constant struct {
	R float64
}

// NewConstant returns a constant profile at r msg/s.
func NewConstant(r float64) (*Constant, error) {
	if r < 0 {
		return nil, fmt.Errorf("rates: constant rate %v < 0", r)
	}
	return &Constant{R: r}, nil
}

// Rate implements Profile.
func (c *Constant) Rate(int64) float64 { return c.R }

// Mean implements Profile.
func (c *Constant) Mean() float64 { return c.R }

// Name implements Profile.
func (c *Constant) Name() string { return "constant" }

// Wave is a periodic (sinusoidal) profile around a mean — the paper's
// "periodic waves" workload.
type Wave struct {
	MeanRate  float64
	Amplitude float64
	PeriodSec int64
	PhaseSec  int64
}

// NewWave builds a periodic profile. amplitude must not exceed mean so the
// rate stays non-negative.
func NewWave(mean, amplitude float64, periodSec int64) (*Wave, error) {
	if mean < 0 {
		return nil, fmt.Errorf("rates: wave mean %v < 0", mean)
	}
	if amplitude < 0 || amplitude > mean {
		return nil, fmt.Errorf("rates: wave amplitude %v outside [0, mean=%v]", amplitude, mean)
	}
	if periodSec <= 0 {
		return nil, fmt.Errorf("rates: wave period %d <= 0", periodSec)
	}
	return &Wave{MeanRate: mean, Amplitude: amplitude, PeriodSec: periodSec}, nil
}

// Rate implements Profile.
func (w *Wave) Rate(sec int64) float64 {
	t := float64(sec+w.PhaseSec) / float64(w.PeriodSec)
	return w.MeanRate + w.Amplitude*math.Sin(2*math.Pi*t)
}

// Mean implements Profile.
func (w *Wave) Mean() float64 { return w.MeanRate }

// Name implements Profile.
func (w *Wave) Name() string { return "wave" }

// RandomWalk wanders around a mean with bounded steps — the paper's "random
// walk around a mean" workload. The walk is mean-reverting so the long-run
// average stays near Mean, and it is precomputed lazily per step interval so
// Rate(sec) is a pure function of (seed, sec).
type RandomWalk struct {
	MeanRate float64
	// Step is the maximum relative step per StepSec interval (e.g. 0.1
	// allows +-10% of mean per step).
	Step float64
	// StepSec is how often the walk moves.
	StepSec int64
	// Lo and Hi clamp the rate (both relative to mean, e.g. 0.5 and 1.5).
	Lo, Hi float64
	Seed   int64

	cache   []float64
	cachedN int
}

// NewRandomWalk builds a mean-reverting random walk profile.
func NewRandomWalk(mean, step float64, stepSec int64, seed int64) (*RandomWalk, error) {
	if mean < 0 {
		return nil, fmt.Errorf("rates: walk mean %v < 0", mean)
	}
	if step < 0 || step > 1 {
		return nil, fmt.Errorf("rates: walk step %v outside [0,1]", step)
	}
	if stepSec <= 0 {
		return nil, fmt.Errorf("rates: walk step period %d <= 0", stepSec)
	}
	return &RandomWalk{
		MeanRate: mean, Step: step, StepSec: stepSec,
		Lo: 0.4, Hi: 1.6, Seed: seed,
	}, nil
}

// ensure extends the cached walk to cover step index n.
func (rw *RandomWalk) ensure(n int) {
	if rw.cachedN > n {
		return
	}
	rng := rand.New(rand.NewSource(rw.Seed))
	// Regenerate from scratch so Rate is history-independent: the RNG
	// stream is consumed in step order regardless of query order.
	total := n + 1
	if total < 1024 {
		total = 1024
	}
	walk := make([]float64, total)
	x := rw.MeanRate
	for i := 0; i < total; i++ {
		// Mean reversion plus a bounded uniform step.
		x += 0.1*(rw.MeanRate-x) + (rng.Float64()*2-1)*rw.Step*rw.MeanRate
		lo, hi := rw.Lo*rw.MeanRate, rw.Hi*rw.MeanRate
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		walk[i] = x
	}
	rw.cache = walk
	rw.cachedN = total
}

// Rate implements Profile.
func (rw *RandomWalk) Rate(sec int64) float64 {
	if sec < 0 {
		sec = 0
	}
	n := int(sec / rw.StepSec)
	rw.ensure(n)
	return rw.cache[n]
}

// Mean implements Profile.
func (rw *RandomWalk) Mean() float64 { return rw.MeanRate }

// Name implements Profile.
func (rw *RandomWalk) Name() string { return "randomwalk" }

// Spike overlays burst spikes onto a base profile: every IntervalSec, the
// rate multiplies by Factor for DurationSec. It models flash-crowd arrivals
// beyond the paper's three profiles and is used in robustness tests.
type Spike struct {
	Base        Profile
	Factor      float64
	IntervalSec int64
	DurationSec int64
}

// NewSpike wraps base with periodic multiplicative bursts.
func NewSpike(base Profile, factor float64, intervalSec, durationSec int64) (*Spike, error) {
	if base == nil {
		return nil, errors.New("rates: spike needs a base profile")
	}
	if factor < 1 {
		return nil, fmt.Errorf("rates: spike factor %v < 1", factor)
	}
	if intervalSec <= 0 || durationSec <= 0 || durationSec > intervalSec {
		return nil, fmt.Errorf("rates: spike interval %d / duration %d invalid", intervalSec, durationSec)
	}
	return &Spike{Base: base, Factor: factor, IntervalSec: intervalSec, DurationSec: durationSec}, nil
}

// Rate implements Profile.
func (s *Spike) Rate(sec int64) float64 {
	r := s.Base.Rate(sec)
	phase := sec % s.IntervalSec
	if phase < 0 {
		phase += s.IntervalSec
	}
	if phase < s.DurationSec {
		return r * s.Factor
	}
	return r
}

// Mean implements Profile.
func (s *Spike) Mean() float64 {
	frac := float64(s.DurationSec) / float64(s.IntervalSec)
	return s.Base.Mean() * (1 + frac*(s.Factor-1))
}

// Name implements Profile.
func (s *Spike) Name() string { return "spike(" + s.Base.Name() + ")" }

// Scaled multiplies a profile by a constant factor, used to derive per-input
// rates from a single experiment-level data rate.
type Scaled struct {
	Base   Profile
	Factor float64
}

// Rate implements Profile.
func (s *Scaled) Rate(sec int64) float64 { return s.Base.Rate(sec) * s.Factor }

// Mean implements Profile.
func (s *Scaled) Mean() float64 { return s.Base.Mean() * s.Factor }

// Name implements Profile.
func (s *Scaled) Name() string { return s.Base.Name() }

// PaperProfiles returns the three §8.1 workload profiles at the given mean
// data rate: constant, periodic wave (amplitude 40% of mean, 20 min period)
// and random walk (10% steps each minute). Seed controls the walk.
func PaperProfiles(mean float64, seed int64) (map[string]Profile, error) {
	c, err := NewConstant(mean)
	if err != nil {
		return nil, err
	}
	w, err := NewWave(mean, 0.4*mean, 1200)
	if err != nil {
		return nil, err
	}
	rw, err := NewRandomWalk(mean, 0.1, 60, seed)
	if err != nil {
		return nil, err
	}
	return map[string]Profile{
		"constant":   c,
		"wave":       w,
		"randomwalk": rw,
	}, nil
}

// PaperDataRates lists the mean data rates (msg/s) the evaluation sweeps
// (§8.1: "2 msgs/sec to 50 msgs/sec").
func PaperDataRates() []float64 { return []float64{2, 5, 10, 20, 35, 50} }
