package rates

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c, err := NewConstant(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range []int64{0, 100, 1e6} {
		if c.Rate(sec) != 5 {
			t.Fatalf("Rate(%d) = %v", sec, c.Rate(sec))
		}
	}
	if c.Mean() != 5 || c.Name() != "constant" {
		t.Fatal("metadata wrong")
	}
	if _, err := NewConstant(-1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestWaveOscillatesAroundMean(t *testing.T) {
	w, err := NewWave(10, 4, 1200)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	minV, maxV := math.Inf(1), math.Inf(-1)
	for sec := int64(0); sec < 1200; sec++ {
		r := w.Rate(sec)
		if r < 0 {
			t.Fatalf("negative rate %v at %d", r, sec)
		}
		sum += r
		n++
		minV = math.Min(minV, r)
		maxV = math.Max(maxV, r)
	}
	if math.Abs(sum/float64(n)-10) > 0.05 {
		t.Fatalf("mean over period = %v", sum/float64(n))
	}
	if maxV < 13.9 || minV > 6.1 {
		t.Fatalf("amplitude not realized: [%v, %v]", minV, maxV)
	}
	if w.Mean() != 10 || w.Name() != "wave" {
		t.Fatal("metadata wrong")
	}
}

func TestWaveValidation(t *testing.T) {
	if _, err := NewWave(-1, 0, 60); err == nil {
		t.Fatal("negative mean accepted")
	}
	if _, err := NewWave(10, 11, 60); err == nil {
		t.Fatal("amplitude > mean accepted")
	}
	if _, err := NewWave(10, 5, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestRandomWalkDeterministicAndBounded(t *testing.T) {
	a, err := NewRandomWalk(10, 0.1, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRandomWalk(10, 0.1, 60, 42)
	for sec := int64(0); sec < 86400; sec += 60 {
		ra, rb := a.Rate(sec), b.Rate(sec)
		if ra != rb {
			t.Fatalf("walks with same seed diverge at %d: %v vs %v", sec, ra, rb)
		}
		if ra < 0.4*10-1e-9 || ra > 1.6*10+1e-9 {
			t.Fatalf("walk escaped bounds: %v", ra)
		}
	}
}

func TestRandomWalkQueryOrderIndependent(t *testing.T) {
	a, _ := NewRandomWalk(10, 0.1, 60, 7)
	b, _ := NewRandomWalk(10, 0.1, 60, 7)
	// Query a forwards and b backwards; values must agree.
	var fw []float64
	for sec := int64(0); sec <= 6000; sec += 60 {
		fw = append(fw, a.Rate(sec))
	}
	i := len(fw) - 1
	for sec := int64(6000); sec >= 0; sec -= 60 {
		if got := b.Rate(sec); got != fw[i] {
			t.Fatalf("order-dependent at %d: %v vs %v", sec, got, fw[i])
		}
		i--
	}
}

func TestRandomWalkStaysNearMean(t *testing.T) {
	rw, _ := NewRandomWalk(20, 0.1, 60, 3)
	sum, n := 0.0, 0
	for sec := int64(0); sec < 10*86400; sec += 60 {
		sum += rw.Rate(sec)
		n++
	}
	avg := sum / float64(n)
	if math.Abs(avg-20) > 2.5 {
		t.Fatalf("long-run average %v strays from mean 20", avg)
	}
	if rw.Rate(-100) != rw.Rate(0) {
		t.Fatal("negative time should clamp to 0")
	}
}

func TestRandomWalkValidation(t *testing.T) {
	if _, err := NewRandomWalk(-1, 0.1, 60, 0); err == nil {
		t.Fatal("negative mean accepted")
	}
	if _, err := NewRandomWalk(10, 1.5, 60, 0); err == nil {
		t.Fatal("step > 1 accepted")
	}
	if _, err := NewRandomWalk(10, 0.1, 0, 0); err == nil {
		t.Fatal("zero step period accepted")
	}
}

func TestSpike(t *testing.T) {
	base, _ := NewConstant(10)
	s, err := NewSpike(base, 3, 600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Rate(30); got != 30 {
		t.Fatalf("in-burst rate = %v", got)
	}
	if got := s.Rate(120); got != 10 {
		t.Fatalf("off-burst rate = %v", got)
	}
	if got := s.Rate(630); got != 30 {
		t.Fatalf("second burst rate = %v", got)
	}
	wantMean := 10 * (1 + 0.1*2)
	if math.Abs(s.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", s.Mean(), wantMean)
	}
	if s.Name() != "spike(constant)" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestSpikeValidation(t *testing.T) {
	base, _ := NewConstant(10)
	if _, err := NewSpike(nil, 2, 600, 60); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, err := NewSpike(base, 0.5, 600, 60); err == nil {
		t.Fatal("factor < 1 accepted")
	}
	if _, err := NewSpike(base, 2, 60, 600); err == nil {
		t.Fatal("duration > interval accepted")
	}
}

func TestScaled(t *testing.T) {
	base, _ := NewWave(10, 4, 1200)
	s := &Scaled{Base: base, Factor: 0.5}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Rate(0) != base.Rate(0)*0.5 {
		t.Fatal("scale not applied")
	}
	if s.Name() != "wave" {
		t.Fatal("name should pass through")
	}
}

func TestPaperProfiles(t *testing.T) {
	ps, err := PaperProfiles(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("%d profiles", len(ps))
	}
	for name, p := range ps {
		if p.Mean() != 10 {
			t.Fatalf("%s mean = %v", name, p.Mean())
		}
		if p.Rate(0) < 0 {
			t.Fatalf("%s negative at 0", name)
		}
	}
	if _, err := PaperProfiles(-5, 1); err == nil {
		t.Fatal("negative mean accepted")
	}
}

func TestPaperDataRatesSpanPaperRange(t *testing.T) {
	rs := PaperDataRates()
	if rs[0] != 2 || rs[len(rs)-1] != 50 {
		t.Fatalf("rates = %v", rs)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i] <= rs[i-1] {
			t.Fatalf("rates not increasing: %v", rs)
		}
	}
}

func TestPropertyProfilesNonNegative(t *testing.T) {
	f := func(seed int64, secRaw uint32, meanRaw uint16) bool {
		mean := 1 + float64(meanRaw%100)
		sec := int64(secRaw % 864000)
		ps, err := PaperProfiles(mean, seed)
		if err != nil {
			return false
		}
		for _, p := range ps {
			if p.Rate(sec) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWalkWithinClamp(t *testing.T) {
	f := func(seed int64, secRaw uint32) bool {
		rw, err := NewRandomWalk(10, 0.2, 60, seed)
		if err != nil {
			return false
		}
		r := rw.Rate(int64(secRaw % 864000))
		return r >= 4-1e-9 && r <= 16+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWaveZeroAmplitude: a zero-amplitude wave degenerates to a constant at
// the mean for every instant.
func TestWaveZeroAmplitude(t *testing.T) {
	w, err := NewWave(7, 0, 1800)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range []int64{0, 450, 900, 86400} {
		if r := w.Rate(sec); r != 7 {
			t.Fatalf("Rate(%d) = %v, want 7", sec, r)
		}
	}
}

// TestRandomWalkZeroStep: with a zero step the walk never leaves the mean —
// mean reversion over a zero deficit contributes nothing.
func TestRandomWalkZeroStep(t *testing.T) {
	rw, err := NewRandomWalk(10, 0, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range []int64{0, 59, 60, 3600, 864000} {
		if r := rw.Rate(sec); math.Abs(r-10) > 1e-12 {
			t.Fatalf("Rate(%d) = %v, want 10", sec, r)
		}
	}
}

// TestRandomWalkSeedStability: Rate is a pure function of (seed, sec) —
// query order must not matter, equal seeds (including 0) must agree, and
// distinct seeds must diverge.
func TestRandomWalkSeedStability(t *testing.T) {
	for _, seed := range []int64{0, 1, 99} {
		fwd, err := NewRandomWalk(10, 0.2, 60, seed)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := NewRandomWalk(10, 0.2, 60, seed)
		if err != nil {
			t.Fatal(err)
		}
		secs := []int64{0, 600, 60000, 864000}
		got := make([]float64, len(secs))
		for i, sec := range secs {
			got[i] = fwd.Rate(sec)
		}
		// Reverse query order: the cache must regenerate identically.
		for i := len(secs) - 1; i >= 0; i-- {
			if r := rev.Rate(secs[i]); r != got[i] {
				t.Fatalf("seed %d: Rate(%d) = %v forward, %v reverse", seed, secs[i], r, got[i])
			}
		}
	}
	a, err := NewRandomWalk(10, 0.2, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomWalk(10, 0.2, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for sec := int64(0); sec < 100*60 && same; sec += 60 {
		same = a.Rate(sec) == b.Rate(sec)
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical walks")
	}
}
