package sim

import (
	"math"
	"testing"

	"dynamicdf/internal/dataflow"
)

func choiceGraphSim() *dataflow.Graph {
	return dataflow.NewBuilder().
		AddPE("in", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("rich", dataflow.Alt("e", 1.0, 0.5, 1)).
		AddPE("cheap", dataflow.Alt("e", 0.6, 0.2, 1)).
		AddPE("out", dataflow.Alt("e", 1, 0.1, 1)).
		AddChoice("route", "in", "rich", "cheap").
		Connect("rich", "out").
		Connect("cheap", "out").
		MustBuild()
}

func TestEngineRoutedFlowAndGamma(t *testing.T) {
	g := choiceGraphSim()
	cfg := baseConfig(g, 5, 3600)
	e, _ := NewEngine(cfg)
	switched := false
	_, err := e.Run(&fixed{
		deploy: func(v *View, act Control) error {
			for pe := 0; pe < g.N(); pe++ {
				id, err := act.AcquireVM("m1.large")
				if err != nil {
					return err
				}
				if err := act.AssignCores(pe, id, 2); err != nil {
					return err
				}
			}
			return nil
		},
		adapt: func(v *View, act Control) error {
			if v.Now() >= 1800 && !switched {
				switched = true
				return act.SelectRoute(0, 1)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Collector().Points()
	first, last := pts[5], pts[len(pts)-1]
	// Before the switch all four PEs are live: gamma = 1 excludes cheap
	// (unreachable) -> (1+1+1)/3 = 1.
	if first.Gamma != 1 {
		t.Fatalf("gamma before switch = %v", first.Gamma)
	}
	// After: in, cheap, out live -> (1+0.6+1)/3.
	want := (1 + 0.6 + 1) / 3.0
	if math.Abs(last.Gamma-want) > 1e-12 {
		t.Fatalf("gamma after switch = %v, want %v", last.Gamma, want)
	}
	// Throughput unaffected (both routes amply provisioned).
	if last.Omega < 0.999 {
		t.Fatalf("omega after switch = %v", last.Omega)
	}
	// View reflects the routing.
	if v := NewView(e); v.Routing()[0] != 1 {
		t.Fatalf("routing = %v", v.Routing())
	}
}

func TestSelectRouteValidationInEngine(t *testing.T) {
	g := choiceGraphSim()
	cfg := baseConfig(g, 5, 600)
	e, _ := NewEngine(cfg)
	act := NewActions(e)
	if err := act.SelectRoute(2, 0); err == nil {
		t.Fatal("bad group accepted")
	}
	if err := act.SelectRoute(0, 5); err == nil {
		t.Fatal("bad target accepted")
	}
	if err := act.SelectRoute(0, 1); err != nil {
		t.Fatal(err)
	}
	v := NewView(e)
	if v.Routing()[0] != 1 {
		t.Fatal("route not applied")
	}
	if v.IntervalSec() != 60 {
		t.Fatalf("interval = %d", v.IntervalSec())
	}
	if v.Menu() == nil || act.Menu() == nil {
		t.Fatal("menu accessors broken")
	}
	if len(v.Selection()) != g.N() {
		t.Fatal("selection accessor broken")
	}
}
