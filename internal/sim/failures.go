package sim

import (
	"fmt"
	"math"
)

// FailureModel decides when acquired VMs crash. The paper's future work
// (§9) proposes using dynamic tasks for "enhanced fault tolerance and
// recovery mechanisms in continuous dataflow"; this model lets the
// simulator exercise that scenario: a crashed VM disappears from the fleet,
// its buffered messages are lost, and policies must re-provision (and may
// switch to cheaper alternates to restore throughput fast with surviving
// capacity).
type FailureModel interface {
	// DeathAgeSec returns how many seconds after acquisition the VM with
	// the given trace id crashes, or a negative value for an immortal VM.
	DeathAgeSec(vmTraceID int64) int64
}

// NoFailures is the default: VMs never crash.
type NoFailures struct{}

// DeathAgeSec implements FailureModel.
func (NoFailures) DeathAgeSec(int64) int64 { return -1 }

// ExponentialFailures draws each VM's lifetime from an exponential
// distribution with the given mean time between failures, deterministically
// per VM trace id, so runs remain reproducible.
type ExponentialFailures struct {
	// MTBFSec is the mean VM lifetime in seconds (> 0).
	MTBFSec int64
	// Seed decorrelates lifetimes between models.
	Seed int64
}

// DeathAgeSec implements FailureModel.
func (f ExponentialFailures) DeathAgeSec(vmTraceID int64) int64 {
	if f.MTBFSec <= 0 {
		return -1
	}
	h := splitmix64(uint64(vmTraceID) ^ uint64(f.Seed)*0x9e3779b97f4a7c15)
	// Map the hash to (0,1) and invert the exponential CDF.
	u := (float64(h>>11) + 0.5) / (1 << 53)
	age := -math.Log(u) * float64(f.MTBFSec)
	if age < 1 {
		age = 1
	}
	return int64(age)
}

// splitmix64 mixes an id into a well-distributed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// crashDueVMs kills every running VM whose lifetime expired by time sec:
// cores are unassigned, buffered messages at the VM are lost (counted), the
// VM is released (billing still rounds up to the hour — the cloud does not
// refund a crashed tenant in this model), and monitors forget it. A VM that
// crashes while still provisioning simply never comes up (and is never
// billed). Each crash is recorded in the audit log with its lost-message
// count, so replays show why throughput dipped.
func (e *Engine) crashDueVMs(sec int64) error {
	if e.cfg.Failures == nil && e.cfg.Preemption == nil {
		return nil
	}
	for _, vm := range e.fleet.All() {
		if vm.Stopped() {
			continue
		}
		age := int64(-1)
		if e.cfg.Failures != nil {
			age = e.cfg.Failures.DeathAgeSec(e.vmTraceID(vm.ID))
		}
		if e.cfg.Preemption != nil && vm.Class.Preemptible {
			// Spot reclamation: a second, usually much shorter clock.
			if p := e.cfg.Preemption.DeathAgeSec(e.vmTraceID(vm.ID) ^ 0x5bd1e995); p >= 0 && (age < 0 || p < age) {
				age = p
			}
		}
		if age < 0 || sec-vm.StartSec < age {
			continue
		}
		action := "crash"
		if vm.Class.Preemptible {
			e.preemptions++
			action = "preempt"
		}
		lost := 0.0
		for pe := range e.pes {
			p := &e.pes[pe]
			s := p.slotOf(vm.ID)
			if s < 0 {
				continue
			}
			if n := p.cores[s]; n > 0 {
				if err := e.fleet.UnassignCores(vm.ID, n); err != nil {
					return fmt.Errorf("sim: crash cleanup: %w", err)
				}
				p.cores[s] = 0
			}
			// A zero-valued queue entry survives the crash (the map engine
			// only deleted entries with q > 0).
			if q := p.queue[s]; q > 0 {
				lost += q
				p.queue[s] = 0
				p.hasQ[s] = false
			}
		}
		e.lostMessages += lost
		wasPending := vm.Pending()
		if err := e.fleet.Release(vm.ID, sec); err != nil {
			return fmt.Errorf("sim: crash release: %w", err)
		}
		e.crashCount++
		e.vmMon.Forget(vm.ID)
		e.netMon.ForgetVM(vm.ID)
		detail := vm.Class.Name
		if wasPending {
			detail += " (pending)"
		}
		e.audit(AuditEntry{Action: action, VM: vm.ID, Lost: lost, Detail: detail})
	}
	return nil
}

// Crashes reports how many VMs have failed so far (including preemptions).
func (e *Engine) Crashes() int { return e.crashCount }

// Preemptions reports how many of the crashes were spot reclamations.
func (e *Engine) Preemptions() int { return e.preemptions }

// LostMessages reports messages destroyed by VM crashes.
func (e *Engine) LostMessages() float64 { return e.lostMessages }
