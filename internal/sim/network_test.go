package sim

import (
	"math/rand"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/trace"
)

// slowLinks reports a tiny fixed bandwidth between distinct VMs.
type slowLinks struct {
	mbps float64
}

func (s slowLinks) CPUCoeff(int64, int64) float64          { return 1 }
func (s slowLinks) LatencySec(int64, int64, int64) float64 { return 0.001 }
func (s slowLinks) BandwidthMbps(a, b int64, sec int64) float64 {
	return s.mbps
}

func TestBandwidthCapsCrossVMDelivery(t *testing.T) {
	// src and work on DIFFERENT VMs, 100 KB messages, 1 Mbps link:
	// the link carries ~1.25 msg/s of the 10 msg/s stream.
	g := chainGraph(0.1)
	cfg := baseConfig(g, 10, 1800)
	cfg.Perf = slowLinks{mbps: 1}
	e, _ := NewEngine(cfg)
	s, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
		a, err := act.AcquireVM("m1.large")
		if err != nil {
			return err
		}
		if err := act.AssignCores(0, a, 2); err != nil {
			return err
		}
		b, err := act.AcquireVM("m1.large")
		if err != nil {
			return err
		}
		return act.AssignCores(1, b, 2)
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Link capacity: 1e6/8 bytes/s / 102400 bytes/msg = ~1.22 msg/s of 10.
	if s.MeanOmega > 0.25 {
		t.Fatalf("omega = %v, expected bandwidth-throttled (~0.12)", s.MeanOmega)
	}
}

func TestColocationBypassesBandwidth(t *testing.T) {
	// Same scenario but both PEs on ONE VM: colocation means in-memory
	// transfer (lambda -> 0, beta -> infinity per §4), full throughput.
	g := chainGraph(0.1)
	cfg := baseConfig(g, 10, 1800)
	cfg.Perf = slowLinks{mbps: 1}
	e, _ := NewEngine(cfg)
	s, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
		a, err := act.AcquireVM("m1.large")
		if err != nil {
			return err
		}
		if err := act.AssignCores(0, a, 1); err != nil {
			return err
		}
		return act.AssignCores(1, a, 1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanOmega < 0.999 {
		t.Fatalf("colocated omega = %v, want ~1", s.MeanOmega)
	}
}

func TestMessageSizeDrivesNetworkLoad(t *testing.T) {
	// Small (1 KB) messages fit the slow link easily; the same rate at
	// 100 KB does not.
	build := func(msgBytes int) float64 {
		g := dataflow.NewBuilder().
			DefaultMsgBytes(msgBytes).
			AddPE("src", dataflow.Alt("e", 1, 0.1, 1)).
			AddPE("work", dataflow.Alt("e", 1, 0.1, 1)).
			Connect("src", "work").
			MustBuild()
		cfg := baseConfig(g, 10, 1800)
		cfg.Perf = slowLinks{mbps: 1}
		e, _ := NewEngine(cfg)
		s, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
			a, err := act.AcquireVM("m1.large")
			if err != nil {
				return err
			}
			if err := act.AssignCores(0, a, 2); err != nil {
				return err
			}
			b, err := act.AcquireVM("m1.large")
			if err != nil {
				return err
			}
			return act.AssignCores(1, b, 2)
		}})
		if err != nil {
			t.Fatal(err)
		}
		return s.MeanOmega
	}
	small := build(1024)
	big := build(100 * 1024)
	if small < 0.999 {
		t.Fatalf("1KB messages throttled: omega %v", small)
	}
	if big > 0.3 {
		t.Fatalf("100KB messages not throttled: omega %v", big)
	}
}

func TestLatencyMetricGrowsWithBacklog(t *testing.T) {
	g := chainGraph(2)
	cfg := baseConfig(g, 10, 3600)
	e, _ := NewEngine(cfg)
	_, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
		a, err := act.AcquireVM("m1.small")
		if err != nil {
			return err
		}
		if err := act.AssignCores(0, a, 1); err != nil {
			return err
		}
		b, err := act.AcquireVM("m1.small")
		if err != nil {
			return err
		}
		return act.AssignCores(1, b, 1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Collector().Points()
	early, late := pts[2], pts[len(pts)-1]
	if late.LatencySec <= early.LatencySec {
		t.Fatalf("latency did not grow with backlog: %v -> %v", early.LatencySec, late.LatencySec)
	}
	if late.Backlog <= early.Backlog {
		t.Fatalf("backlog did not grow: %v -> %v", early.Backlog, late.Backlog)
	}
}

// TestActionSequenceInvariants drives the engine with random valid action
// sequences and checks the allocation ledger never goes inconsistent.
func TestActionSequenceInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := dataflow.Fig1Graph()
		c, _ := rates.NewConstant(5)
		cfg := Config{
			Graph:      g,
			Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
			Perf:       trace.MustReplayed(trace.ReplayedConfig{Seed: seed}),
			Inputs:     map[int]rates.Profile{0: c},
			HorizonSec: 1800,
			MaxVMs:     16,
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		chaos := &fixed{
			deploy: deployEven,
			adapt: func(v *View, act Control) error {
				for i := 0; i < 4; i++ {
					switch rng.Intn(5) {
					case 0:
						_, _ = act.AcquireVM("m1.medium")
					case 1:
						pe := rng.Intn(g.N())
						vms := v.ActiveVMs()
						if len(vms) > 0 {
							vm := vms[rng.Intn(len(vms))]
							if vm.FreeCores > 0 {
								_ = act.AssignCores(pe, vm.ID, 1)
							}
						}
					case 2:
						pe := rng.Intn(g.N())
						as := v.Assignments(pe)
						if len(as) > 0 {
							a := as[rng.Intn(len(as))]
							_ = act.UnassignCores(pe, a.VMID, 1)
						}
					case 3:
						for _, vm := range v.ActiveVMs() {
							if vm.UsedCores == 0 {
								_ = act.ReleaseVM(vm.ID)
								break
							}
						}
					case 4:
						pe := rng.Intn(g.N())
						_ = act.SelectAlternate(pe, rng.Intn(len(g.PEs[pe].Alternates)))
					}
				}
				// Invariants after every adaptation round.
				for _, vm := range v.ActiveVMs() {
					if vm.UsedCores < 0 || vm.UsedCores > vm.Class.Cores {
						t.Fatalf("seed %d: VM %d cores inconsistent: %d/%d",
							seed, vm.ID, vm.UsedCores, vm.Class.Cores)
					}
				}
				total := 0
				for pe := 0; pe < g.N(); pe++ {
					for _, a := range v.Assignments(pe) {
						if a.Cores <= 0 {
							t.Fatalf("seed %d: non-positive assignment", seed)
						}
						total += a.Cores
					}
					if v.Backlog(pe) < 0 {
						t.Fatalf("seed %d: negative backlog", seed)
					}
				}
				used := 0
				for _, vm := range v.ActiveVMs() {
					used += vm.UsedCores
				}
				if total != used {
					t.Fatalf("seed %d: assignment total %d != fleet used %d", seed, total, used)
				}
				return nil
			},
		}
		if _, err := e.Run(chaos); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Cost is monotone across the run.
		pts := e.Collector().Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].CostUSD < pts[i-1].CostUSD-1e-9 {
				t.Fatalf("seed %d: cost decreased %v -> %v", seed, pts[i-1].CostUSD, pts[i].CostUSD)
			}
			if pts[i].Omega < 0 || pts[i].Omega > 1 {
				t.Fatalf("seed %d: omega out of range: %v", seed, pts[i].Omega)
			}
		}
	}
}
