package sim

import (
	"testing"
	"testing/quick"
)

func TestNoFailuresIsImmortal(t *testing.T) {
	if (NoFailures{}).DeathAgeSec(42) >= 0 {
		t.Fatal("NoFailures produced a death age")
	}
}

func TestExponentialFailuresDeterministic(t *testing.T) {
	f := ExponentialFailures{MTBFSec: 3600, Seed: 1}
	if f.DeathAgeSec(7) != f.DeathAgeSec(7) {
		t.Fatal("same id gave different lifetimes")
	}
	g := ExponentialFailures{MTBFSec: 3600, Seed: 2}
	diff := false
	for id := int64(0); id < 32 && !diff; id++ {
		if f.DeathAgeSec(id) != g.DeathAgeSec(id) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds never disagreed")
	}
	if (ExponentialFailures{MTBFSec: 0}).DeathAgeSec(1) >= 0 {
		t.Fatal("zero MTBF should disable failures")
	}
}

func TestExponentialFailuresMeanRoughlyMTBF(t *testing.T) {
	f := ExponentialFailures{MTBFSec: 7200, Seed: 5}
	sum := 0.0
	const n = 5000
	for id := int64(0); id < n; id++ {
		age := f.DeathAgeSec(id)
		if age < 1 {
			t.Fatalf("lifetime %d < 1", age)
		}
		sum += float64(age)
	}
	mean := sum / n
	if mean < 0.85*7200 || mean > 1.15*7200 {
		t.Fatalf("empirical mean %v far from MTBF 7200", mean)
	}
}

func TestPropertyLifetimesPositive(t *testing.T) {
	f := func(id, seed int64, mtbfRaw uint16) bool {
		mtbf := int64(mtbfRaw) + 1
		age := ExponentialFailures{MTBFSec: mtbf, Seed: seed}.DeathAgeSec(id)
		return age >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRemovesVMAndLosesBuffers(t *testing.T) {
	// An overloaded work PE builds a queue; its VM crashes after ~30 min;
	// with a static policy nothing re-provisions, so throughput collapses
	// and the lost messages are counted.
	g := chainGraph(4) // heavy: queues guaranteed
	cfg := baseConfig(g, 2, 3600)
	cfg.Failures = fixedDeath{age: 1800}
	e, _ := NewEngine(cfg)
	_, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
		a, err := act.AcquireVM("m1.small")
		if err != nil {
			return err
		}
		if err := act.AssignCores(0, a, 1); err != nil {
			return err
		}
		b, err := act.AcquireVM("m1.small")
		if err != nil {
			return err
		}
		return act.AssignCores(1, b, 1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Crashes() != 2 {
		t.Fatalf("crashes = %d, want 2", e.Crashes())
	}
	if e.LostMessages() <= 0 {
		t.Fatal("no messages lost despite queued crash")
	}
	if e.Fleet().ActiveCount() != 0 {
		t.Fatalf("active VMs = %d after crashes", e.Fleet().ActiveCount())
	}
	pts := e.Collector().Points()
	if last := pts[len(pts)-1]; last.Omega != 0 {
		t.Fatalf("omega = %v with the whole fleet dead", last.Omega)
	}
}

// fixedDeath kills every VM at the same age.
type fixedDeath struct{ age int64 }

func (f fixedDeath) DeathAgeSec(int64) int64 { return f.age }

func TestAdaptivePolicyCanRecoverFromCrash(t *testing.T) {
	// A reactive scheduler re-acquires capacity after the crash; omega
	// recovers by the end of the run.
	g := chainGraph(0.5)
	cfg := baseConfig(g, 5, 2*3600)
	cfg.Failures = fixedDeath{age: 1800}
	e, _ := NewEngine(cfg)
	_, err := e.Run(&fixed{
		deploy: deployEven,
		adapt: func(v *View, act Control) error {
			// Naive repair loop: ensure each PE keeps 2 cores somewhere.
			for pe := 0; pe < v.Graph().N(); pe++ {
				have := v.AssignedCores(pe)
				for have < 2 {
					id, err := act.AcquireVM("m1.large")
					if err != nil {
						return err
					}
					if err := act.AssignCores(pe, id, 2-have); err != nil {
						return err
					}
					have = v.AssignedCores(pe)
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Crashes() == 0 {
		t.Fatal("no crash injected")
	}
	pts := e.Collector().Points()
	if last := pts[len(pts)-1]; last.Omega < 0.99 {
		t.Fatalf("final omega = %v — did not recover", last.Omega)
	}
}
