package sim

import (
	"context"
	"fmt"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
)

// largeLayeredDAG builds a levels x width layered graph (level 0 PEs are the
// inputs). Each PE in level L>0 reads from the same column of level L-1, and
// every other PE also reads a neighbouring column, so levels are wide (good
// for sharding) while PEs still have mixed fan-in.
func largeLayeredDAG(levels, width int) *dataflow.Graph {
	b := dataflow.NewBuilder()
	name := func(level, col int) string { return fmt.Sprintf("pe_%d_%d", level, col) }
	for level := 0; level < levels; level++ {
		for col := 0; col < width; col++ {
			b.AddPE(name(level, col), dataflow.Alt("only", 1, 0.05, 1))
		}
	}
	for level := 1; level < levels; level++ {
		for col := 0; col < width; col++ {
			b.Connect(name(level-1, col), name(level, col))
			if col%2 == 0 {
				b.Connect(name(level-1, (col+1)%width), name(level, col))
			}
		}
	}
	return b.MustBuild()
}

// largeDAGConfig wires a 1000-PE layered DAG with a constant trickle on every
// input and a practically unbounded horizon so benchmarks can step freely.
func largeDAGConfig(levels, width int) Config {
	g := largeLayeredDAG(levels, width)
	inputs := make(map[int]rates.Profile, width)
	for _, pe := range g.Inputs() {
		c, err := rates.NewConstant(1)
		if err != nil {
			panic(err)
		}
		inputs[pe] = c
	}
	return Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:     inputs,
		HorizonSec: 60 << 32,
	}
}

// deployLargeDAG packs PEs four per m1.xlarge, one dedicated core each.
func deployLargeDAG(v *View, act Control) error {
	n := v.Graph().N()
	vmID := -1
	for pe := 0; pe < n; pe++ {
		if pe%4 == 0 {
			id, err := act.AcquireVM("m1.xlarge")
			if err != nil {
				return err
			}
			vmID = id
		}
		if err := act.AssignCores(pe, vmID, 1); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkEngineStepLargeDAG measures steady-state stepping on a 1000-PE
// layered DAG (50 levels x 20 columns, 250 VMs): the workload ISSUE 9 targets
// with the arena refactor and the level-sharded flow stage.
func BenchmarkEngineStepLargeDAG(b *testing.B) {
	bench := func(b *testing.B, cfg Config) {
		e, err := NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Deploy only (untilSec == clock), then warm the monitors so the
		// benchmark loop measures pure steady-state stepping.
		if err := e.RunUntil(context.Background(), &fixed{deploy: deployLargeDAG}, 0); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := e.step(); err != nil {
				b.Fatal(err)
			}
		}
		e.Collector().Reserve(b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.step(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("steady", func(b *testing.B) {
		bench(b, largeDAGConfig(50, 20))
	})
	// The benchmark drives e.step() directly (bypassing RunUntil, which owns
	// the pool lifecycle), so the workers subcases attach a pool by hand.
	for _, workers := range []int{4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := largeDAGConfig(50, 20)
			cfg.FlowWorkers = workers
			e, err := NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.RunUntil(context.Background(), &fixed{deploy: deployLargeDAG}, 0); err != nil {
				b.Fatal(err)
			}
			pool := newFlowPool(e, workers)
			e.flowPool = pool
			defer func() { pool.close(); e.flowPool = nil }()
			for i := 0; i < 3; i++ {
				if err := e.step(); err != nil {
					b.Fatal(err)
				}
			}
			e.Collector().Reserve(b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
