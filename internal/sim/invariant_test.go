package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dynamicdf/internal/invariant"
	"dynamicdf/internal/obs"
)

// strictConfig is baseConfig plus a strict checker.
func strictConfig(workCost, rate float64, horizon int64) Config {
	cfg := baseConfig(chainGraph(workCost), rate, horizon)
	cfg.Checker = invariant.NewStrict()
	return cfg
}

func TestCheckerCleanRunRecordsNothing(t *testing.T) {
	e, err := NewEngine(strictConfig(1, 4, 3600))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
		t.Fatalf("strict-checked run failed: %v", err)
	}
	if n := e.InvariantViolations(); n != 0 {
		t.Fatalf("clean run recorded %d violations: %v", n, e.Checker().Violations())
	}
}

// TestCorruptedStateTripsChecker deliberately corrupts engine state from an
// Adapt callback and asserts the run aborts with a typed
// *invariant.Violation naming the broken law and the sim-second of the
// interval that observed it.
func TestCorruptedStateTripsChecker(t *testing.T) {
	const interval = int64(60)
	cases := []struct {
		name    string
		law     string
		corrupt func(e *Engine)
	}{
		{"oversubscribed-cores", invariant.LawFleet, func(e *Engine) {
			// Reserve a core on the fleet without a matching placement.
			vm, err := e.fleet.Get(0)
			if err != nil {
				panic(err)
			}
			vm.UsedCores++
		}},
		{"phantom-crashes", invariant.LawAudit, func(e *Engine) {
			e.crashCount = 3
		}},
		{"negative-lost-tally", invariant.LawQueues, func(e *Engine) {
			e.lostMessages = -1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEngine(strictConfig(1, 4, 3600))
			if err != nil {
				t.Fatal(err)
			}
			corrupted := int64(-1)
			sched := &fixed{deploy: deployEven, adapt: func(v *View, act Control) error {
				if corrupted < 0 && e.Now() >= 5*interval {
					tc.corrupt(e)
					corrupted = e.Now()
				}
				return nil
			}}
			_, err = e.Run(sched)
			if err == nil {
				t.Fatal("corrupted run completed without a violation")
			}
			v, ok := invariant.As(err)
			if !ok {
				t.Fatalf("error %v is not an invariant.Violation", err)
			}
			if v.Law != tc.law {
				t.Fatalf("violated %q (%s), want %q", v.Law, v.Msg, tc.law)
			}
			// The corruption lands before interval [corrupted, corrupted+dt)
			// executes; the checker sees it at that interval's end.
			if want := corrupted + interval; v.Sec != want {
				t.Fatalf("violation at t=%ds, want %ds", v.Sec, want)
			}
			if !strings.Contains(err.Error(), v.Law) {
				t.Fatalf("error %q does not name the law", err)
			}
		})
	}
}

// TestLenientCheckerRecordsAndContinues: the same corruption under a lenient
// checker finishes the run, counts a violation per interval, streams an
// invariant-violation trace event, and mirrors the count into the gauges.
func TestLenientCheckerRecordsAndContinues(t *testing.T) {
	cfg := baseConfig(chainGraph(1), 4, 10*60)
	cfg.Checker = invariant.New()
	reg := obs.NewRegistry()
	cfg.Gauges = obs.NewRunGauges(reg)
	var sink bytes.Buffer
	cfg.Tracer = obs.NewTracer(&sink)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	_, err = e.Run(&fixed{deploy: deployEven, adapt: func(v *View, act Control) error {
		if !corrupted {
			e.lostMessages = -1
			corrupted = true
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("lenient run aborted: %v", err)
	}
	// Corrupted before the 2nd of 10 intervals: every remaining interval
	// re-observes the broken tally.
	if n := e.InvariantViolations(); n != 9 {
		t.Fatalf("recorded %d violations, want 9", n)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sink.String(), obs.EventInvariantViolation) {
		t.Fatal("no invariant-violation event in the trace stream")
	}
	if got := cfg.Gauges.Violations.Value(); got != 9 {
		t.Fatalf("violations gauge = %v, want 9", got)
	}
	var expo bytes.Buffer
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), "sim_invariant_violations 9") {
		t.Fatalf("exposition lacks the violation count:\n%s", expo.String())
	}
}

// TestCheckerRunsUnderFaults: chaos (crashes, preemptions, control-plane
// faults) must not trip any law — lost messages, released VMs and audit
// tallies are all part of the conservation bookkeeping.
func TestCheckerRunsUnderFaults(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Checker = invariant.NewStrict()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&fixed{deploy: chaosRepair, adapt: chaosRepair}); err != nil {
		t.Fatalf("strict-checked chaos run failed: %v", err)
	}
	if e.Crashes() == 0 {
		t.Fatal("chaos config produced no crashes; test exercises nothing")
	}
	if n := e.InvariantViolations(); n != 0 {
		t.Fatalf("chaos run recorded %d violations", n)
	}
}

// TestDisabledCheckerZeroAlloc guards the hot path: with no checker
// attached, the per-step hook must not allocate (mirroring the disabled
// tracer guarantee).
func TestDisabledCheckerZeroAlloc(t *testing.T) {
	e, err := NewEngine(baseConfig(chainGraph(1), 4, 3600))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := e.checkStep(0.5, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled checker hook allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkEngineStepChecker measures the per-step invariant hook. The
// hook/disabled case must report 0 allocs/op — enforced by ci.sh alongside
// the disabled-tracer guarantee.
func BenchmarkEngineStepChecker(b *testing.B) {
	b.Run("hook/disabled", func(b *testing.B) {
		e, err := NewEngine(baseConfig(chainGraph(1), 4, 3600))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.checkStep(0.5, 1, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, checked := range []bool{false, true} {
		name := "run/checker=off"
		if checked {
			name = "run/checker=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := baseConfig(chainGraph(1), 4, 3600)
				if checked {
					cfg.Checker = invariant.NewStrict()
				}
				e, err := NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestViolationSurvivesErrorsIs ensures a strict abort is distinguishable
// from cancellation.
func TestViolationSurvivesErrorsIs(t *testing.T) {
	e, err := NewEngine(strictConfig(1, 4, 600))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Run(&fixed{deploy: func(v *View, act Control) error {
		if err := deployEven(v, act); err != nil {
			return err
		}
		e.migratedBytes = -4
		return nil
	}})
	if err == nil {
		t.Fatal("no violation")
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("violation mistaken for cancellation")
	}
	if v, ok := invariant.As(err); !ok || v.Law != invariant.LawQueues {
		t.Fatalf("err = %v", err)
	}
}
