package sim

import (
	"encoding/json"
	"fmt"

	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/monitor"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/state"
)

// StatefulScheduler is a Scheduler whose adaptation decisions depend on
// accumulated internal state (tick counters, circuit breakers, ...).
// Checkpointing captures that state alongside the engine's so a restored
// run resumes with the policy mid-thought rather than amnesiac; stateless
// policies simply don't implement it and restore as themselves.
type StatefulScheduler interface {
	Scheduler
	// CheckpointState serializes the scheduler's mutable state. The blob is
	// opaque to the engine; it only needs to be deterministic for a given
	// state so snapshots of identical runs are byte-identical.
	CheckpointState() ([]byte, error)
	// RestoreState replaces the scheduler's mutable state with a blob
	// produced by CheckpointState.
	RestoreState([]byte) error
}

// Checkpoint captures the engine's complete mutable state as a canonical
// snapshot. Call it between intervals — after RunUntil returns — never from
// inside a scheduler callback. The engine is not consumed: the run can
// continue with another RunUntil or RunContext, and the snapshot can seed
// any number of Restore'd engines (it shares no memory with the engine).
func (e *Engine) Checkpoint() (*state.Snapshot, error) {
	s := &state.Snapshot{
		GraphPEs:    e.cfg.Graph.N(),
		IntervalSec: e.cfg.IntervalSec,
		HorizonSec:  e.cfg.HorizonSec,
		Seed:        e.cfg.Seed,
		ClockSec:    e.clock,
		Deployed:    e.deployed,
		Stepped:     e.stepped,
		Selection:   append([]int(nil), e.sel...),
		Routing:     append([]int(nil), e.routing...),
		Fleet:       e.fleet.Export(),

		LastOmega:   e.lastOmega,
		OmegaSum:    e.omegaSum,
		OmegaN:      e.omegaN,
		LastPEOut:   append([]float64(nil), e.lastPEOut...),
		LastPEExp:   append([]float64(nil), e.lastPEExp...),
		LastPEIn:    append([]float64(nil), e.lastPEIn...),
		LastLatency: e.lastLatency,

		MigratedBytes:   e.migratedBytes,
		CrashCount:      e.crashCount,
		Preemptions:     e.preemptions,
		LostMessages:    e.lostMessages,
		AcquireAttempts: e.acquireAttempts,
		AcquireFailures: e.acquireFailures,
		StaleProbes:     e.staleProbes,
		CrashEvents:     e.crashEvents,
		PreemptEvents:   e.preemptEvents,
		PrevCostUSD:     e.prevCost,
		Violations:      e.InvariantViolations(),

		Metrics: e.collector.Points(),
		Audit:   append([]obs.Event(nil), e.auditLog...),
	}
	// Arena slots are ascending by VM id (-1 first), the same order the
	// map engine's sorted-key export produced.
	for pe := range e.pes {
		p := &e.pes[pe]
		for sl, vmID := range p.vms {
			if p.cores[sl] > 0 {
				s.Cores = append(s.Cores, state.CoreCell{PE: pe, VM: vmID, Cores: p.cores[sl]})
			}
		}
	}
	for pe := range e.pes {
		p := &e.pes[pe]
		for sl, vmID := range p.vms {
			if p.hasQ[sl] {
				s.Queues = append(s.Queues, state.QueueCell{PE: pe, VM: vmID, Queue: p.queue[sl]})
			}
		}
	}
	s.RateEst = e.rateEst.Export()
	s.VMCPU = e.vmMon.Export()
	s.NetLat, s.NetBW = e.netMon.Export()

	if nt := len(e.cfg.Tenants); nt > 0 {
		s.TenantOmega = append([]float64(nil), e.tenLastOmega...)
		s.TenantOmegaSum = append([]float64(nil), e.tenOmegaSum...)
		s.TenantSpendUSD = append([]float64(nil), e.tenSpend...)
		s.TenantPrevCostUSD = e.tenPrevCost
		s.TenantSeriesOmega, s.TenantSeriesGamma, s.TenantSeriesSpend = e.collector.TenantSeries()
	}

	if e.sched != nil {
		s.SchedulerName = e.sched.Name()
	}
	switch {
	case e.pendingSchedState != nil:
		// Restored but not yet resumed: the stashed blob is still the truth.
		s.SchedulerState = append(json.RawMessage(nil), e.pendingSchedState...)
	default:
		if ss, ok := e.sched.(StatefulScheduler); ok {
			blob, err := ss.CheckpointState()
			if err != nil {
				return nil, fmt.Errorf("sim: checkpoint scheduler state (%s): %w", e.sched.Name(), err)
			}
			s.SchedulerState = blob
		}
	}
	return s, nil
}

// Restore builds a fresh engine from a snapshot and a config. The config
// must agree with the snapshot on the identity guards (graph size, interval,
// seed) — everything deterministic about the world — while observer wiring
// (tracer, gauges, checker, audit) comes from the config, so a restored run
// can be observed differently than the original. Driving the restored
// engine with RunUntil/RunContext and the same scheduler continues the run
// bit-identically to one that was never checkpointed; multiple engines may
// be restored from one snapshot (for forked what-if runs) since no state is
// shared with the snapshot or between restores.
func Restore(snap *state.Snapshot, cfg Config) (*Engine, error) {
	if snap == nil {
		return nil, fmt.Errorf("sim: restore nil snapshot")
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	c := e.cfg // normalized
	n := c.Graph.N()
	switch {
	case snap.GraphPEs != n:
		return nil, fmt.Errorf("sim: restore: snapshot has %d PEs, graph has %d", snap.GraphPEs, n)
	case snap.IntervalSec != c.IntervalSec:
		return nil, fmt.Errorf("sim: restore: snapshot interval %ds, config %ds", snap.IntervalSec, c.IntervalSec)
	case snap.Seed != c.Seed:
		return nil, fmt.Errorf("sim: restore: snapshot seed %d, config %d", snap.Seed, c.Seed)
	case snap.ClockSec < 0 || snap.ClockSec%c.IntervalSec != 0:
		return nil, fmt.Errorf("sim: restore: clock %ds is not an interval boundary", snap.ClockSec)
	case snap.ClockSec > c.HorizonSec:
		return nil, fmt.Errorf("sim: restore: clock %ds past horizon %ds", snap.ClockSec, c.HorizonSec)
	case len(snap.Selection) != n:
		return nil, fmt.Errorf("sim: restore: selection covers %d PEs, want %d", len(snap.Selection), n)
	}
	e.clock = snap.ClockSec
	e.deployed = snap.Deployed
	e.stepped = snap.Stepped
	e.sel = append(dataflow.Selection(nil), snap.Selection...)
	if err := e.sel.Validate(c.Graph); err != nil {
		return nil, fmt.Errorf("sim: restore: %w", err)
	}
	if snap.Routing != nil {
		e.routing = append(dataflow.Routing(nil), snap.Routing...)
		if err := e.routing.Validate(c.Graph); err != nil {
			return nil, fmt.Errorf("sim: restore: %w", err)
		}
	}
	if err := e.fleet.Import(snap.Fleet); err != nil {
		return nil, fmt.Errorf("sim: restore: %w", err)
	}
	for _, cell := range snap.Cores {
		if cell.PE < 0 || cell.PE >= n {
			return nil, fmt.Errorf("sim: restore: core cell for PE %d outside graph", cell.PE)
		}
		if cell.Cores <= 0 {
			return nil, fmt.Errorf("sim: restore: core cell (%d,%d) has %d cores", cell.PE, cell.VM, cell.Cores)
		}
		if _, err := e.fleet.Get(cell.VM); err != nil {
			return nil, fmt.Errorf("sim: restore: core cell for unknown VM %d", cell.VM)
		}
		p := &e.pes[cell.PE]
		p.cores[p.ensureSlot(cell.VM)] = cell.Cores
	}
	for _, cell := range snap.Queues {
		if cell.PE < 0 || cell.PE >= n {
			return nil, fmt.Errorf("sim: restore: queue cell for PE %d outside graph", cell.PE)
		}
		if cell.VM < -1 || cell.Queue < 0 {
			return nil, fmt.Errorf("sim: restore: bad queue cell (%d,%d,%g)", cell.PE, cell.VM, cell.Queue)
		}
		p := &e.pes[cell.PE]
		sl := p.ensureSlot(cell.VM)
		p.queue[sl] = cell.Queue
		p.hasQ[sl] = true
	}
	// The dense monitor pools size themselves by the largest imported id, so
	// reject ids a legitimate snapshot cannot contain (the fleet export covers
	// every VM that ever existed) before they can inflate the pools.
	for _, en := range snap.RateEst {
		if en.Key < 0 || en.Key >= n {
			return nil, fmt.Errorf("sim: restore: rate-estimator key %d outside graph", en.Key)
		}
	}
	for _, en := range snap.VMCPU {
		if _, err := e.fleet.Get(en.VM); err != nil {
			return nil, fmt.Errorf("sim: restore: cpu-monitor entry for unknown VM %d", en.VM)
		}
	}
	for _, list := range [][]monitor.NetEntry{snap.NetLat, snap.NetBW} {
		for _, en := range list {
			if en.A == en.B {
				return nil, fmt.Errorf("sim: restore: net-monitor entry with A == B == %d", en.A)
			}
			for _, id := range [2]int{en.A, en.B} {
				if _, err := e.fleet.Get(id); err != nil {
					return nil, fmt.Errorf("sim: restore: net-monitor entry for unknown VM %d", id)
				}
			}
		}
	}
	e.rateEst.Import(snap.RateEst)
	e.vmMon.Import(snap.VMCPU)
	e.netMon.Import(snap.NetLat, snap.NetBW)
	e.rebuildFlowCaches()

	e.lastOmega = snap.LastOmega
	e.omegaSum = snap.OmegaSum
	e.omegaN = snap.OmegaN
	if len(snap.LastPEOut) == n {
		copy(e.lastPEOut, snap.LastPEOut)
	}
	if len(snap.LastPEExp) == n {
		copy(e.lastPEExp, snap.LastPEExp)
	}
	if len(snap.LastPEIn) == n {
		copy(e.lastPEIn, snap.LastPEIn)
	}
	e.lastLatency = snap.LastLatency

	e.migratedBytes = snap.MigratedBytes
	e.crashCount = snap.CrashCount
	e.preemptions = snap.Preemptions
	e.lostMessages = snap.LostMessages
	e.acquireAttempts = snap.AcquireAttempts
	e.acquireFailures = snap.AcquireFailures
	e.staleProbes = snap.StaleProbes
	e.crashEvents = snap.CrashEvents
	e.preemptEvents = snap.PreemptEvents
	e.prevCost = snap.PrevCostUSD
	e.restoredViolations = snap.Violations

	for _, p := range snap.Metrics {
		if err := e.collector.Add(p); err != nil {
			return nil, fmt.Errorf("sim: restore: %w", err)
		}
	}
	if nt := len(c.Tenants); nt > 0 {
		if len(snap.TenantOmega) != nt || len(snap.TenantOmegaSum) != nt || len(snap.TenantSpendUSD) != nt {
			return nil, fmt.Errorf("sim: restore: snapshot carries %d/%d/%d tenant tallies, config has %d tenants",
				len(snap.TenantOmega), len(snap.TenantOmegaSum), len(snap.TenantSpendUSD), nt)
		}
		copy(e.tenLastOmega, snap.TenantOmega)
		copy(e.tenOmegaSum, snap.TenantOmegaSum)
		copy(e.tenSpend, snap.TenantSpendUSD)
		e.tenPrevCost = snap.TenantPrevCostUSD
		if err := e.collector.ImportTenantSeries(
			snap.TenantSeriesOmega, snap.TenantSeriesGamma, snap.TenantSeriesSpend); err != nil {
			return nil, fmt.Errorf("sim: restore: %w", err)
		}
	} else if len(snap.TenantOmega) > 0 {
		return nil, fmt.Errorf("sim: restore: snapshot carries %d tenant tallies, config has none",
			len(snap.TenantOmega))
	}
	e.auditLog = append([]obs.Event(nil), snap.Audit...)
	if snap.SchedulerState != nil {
		e.pendingSchedState = append([]byte(nil), snap.SchedulerState...)
	}
	return e, nil
}
