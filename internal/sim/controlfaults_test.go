package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dynamicdf/internal/trace"
)

func TestControlFaultsNormalizeDefaults(t *testing.T) {
	cf := &ControlFaults{
		Provisioning: &ProvisioningFaults{MeanBootSec: 120},
		Acquisition:  &AcquisitionFaults{BurstEverySec: 600},
	}
	if err := cf.normalize(); err != nil {
		t.Fatal(err)
	}
	if cf.Provisioning.MaxBootSec != 480 {
		t.Fatalf("MaxBootSec default = %d, want 4x mean", cf.Provisioning.MaxBootSec)
	}
	if cf.Acquisition.BurstLenSec != 100 {
		t.Fatalf("BurstLenSec default = %d, want spacing/6", cf.Acquisition.BurstLenSec)
	}
	if cf.Acquisition.BurstFailProb != 0.95 {
		t.Fatalf("BurstFailProb default = %v", cf.Acquisition.BurstFailProb)
	}
	var nilCF *ControlFaults
	if err := nilCF.normalize(); err != nil {
		t.Fatalf("nil ControlFaults rejected: %v", err)
	}
}

func TestControlFaultsNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		cf   ControlFaults
	}{
		{"negative mean boot", ControlFaults{Provisioning: &ProvisioningFaults{MeanBootSec: -1}}},
		{"negative max boot", ControlFaults{Provisioning: &ProvisioningFaults{MeanBootSec: 10, MaxBootSec: -5}}},
		{"max below mean", ControlFaults{Provisioning: &ProvisioningFaults{MeanBootSec: 100, MaxBootSec: 50}}},
		{"fail prob above 1", ControlFaults{Acquisition: &AcquisitionFaults{FailProb: 1.5}}},
		{"fail prob NaN", ControlFaults{Acquisition: &AcquisitionFaults{FailProb: math.NaN()}}},
		{"per-class prob negative", ControlFaults{Acquisition: &AcquisitionFaults{PerClass: map[string]float64{"m1.small": -0.1}}}},
		{"negative burst spacing", ControlFaults{Acquisition: &AcquisitionFaults{BurstEverySec: -60}}},
		{"burst longer than spacing", ControlFaults{Acquisition: &AcquisitionFaults{BurstEverySec: 60, BurstLenSec: 61}}},
		{"negative onset", ControlFaults{Acquisition: &AcquisitionFaults{AfterSec: -1}}},
		{"stale prob above 1", ControlFaults{Monitoring: &MonitoringFaults{StaleProb: 2}}},
		{"noise frac at 1", ControlFaults{Monitoring: &MonitoringFaults{NoiseFrac: 1}}},
		{"noise frac NaN", ControlFaults{Monitoring: &MonitoringFaults{NoiseFrac: math.NaN()}}},
	}
	for _, tc := range cases {
		if err := tc.cf.normalize(); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func TestBootDelayBoundedAndDeterministic(t *testing.T) {
	cf := &ControlFaults{Provisioning: &ProvisioningFaults{MeanBootSec: 100}, Seed: 3}
	if err := cf.normalize(); err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for attempt := int64(0); attempt < 200; attempt++ {
		d := cf.bootDelaySec(attempt)
		if d < 0 || d > cf.Provisioning.MaxBootSec {
			t.Fatalf("attempt %d: delay %d outside [0, %d]", attempt, d, cf.Provisioning.MaxBootSec)
		}
		if d != cf.bootDelaySec(attempt) {
			t.Fatalf("attempt %d: non-deterministic delay", attempt)
		}
		if d > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("every drawn delay was zero")
	}
	var off *ControlFaults
	if off.bootDelaySec(0) != 0 {
		t.Fatal("nil faults produced a delay")
	}
}

func TestAcquireFailsOnsetPerClassAndBursts(t *testing.T) {
	cf := &ControlFaults{Acquisition: &AcquisitionFaults{
		FailProb: 0,
		PerClass: map[string]float64{"m1.small": 1},
		AfterSec: 1000,
	}, Seed: 9}
	if err := cf.normalize(); err != nil {
		t.Fatal(err)
	}
	if cf.acquireFails("m1.small", 0, 999) {
		t.Fatal("fault fired before the onset time")
	}
	if !cf.acquireFails("m1.small", 0, 1000) {
		t.Fatal("per-class probability 1 did not fail")
	}
	if cf.acquireFails("m1.large", 0, 1000) {
		t.Fatal("baseline probability 0 failed")
	}
	// Bursts: with probability 1 inside the burst and 0 outside, exactly
	// BurstLenSec seconds of each window must fail.
	burst := &ControlFaults{Acquisition: &AcquisitionFaults{
		BurstEverySec: 600, BurstLenSec: 120, BurstFailProb: 1,
	}, Seed: 4}
	if err := burst.normalize(); err != nil {
		t.Fatal(err)
	}
	for window := int64(0); window < 3; window++ {
		n := 0
		for s := window * 600; s < (window+1)*600; s++ {
			if burst.acquireFails("m1.small", 0, s) {
				n++
			}
		}
		if n != 120 {
			t.Fatalf("window %d: %d failing seconds, want 120", window, n)
		}
	}
}

func TestCapacityErrorDetection(t *testing.T) {
	err := &CapacityError{Class: "m1.small", Sec: 42}
	if !IsCapacityError(err) {
		t.Fatal("direct CapacityError not detected")
	}
	if !strings.Contains(err.Error(), "m1.small") {
		t.Fatalf("error message %q lacks the class", err.Error())
	}
	if IsCapacityError(nil) {
		t.Fatal("nil detected as capacity error")
	}
}

// pendingSeed returns a ControlFaults whose first boot draw is at least
// minDelay, so tests can rely on the VM spanning whole intervals pending.
func pendingSeed(t *testing.T, meanBoot, minDelay int64) *ControlFaults {
	t.Helper()
	for seed := int64(1); seed < 10000; seed++ {
		cf := &ControlFaults{Provisioning: &ProvisioningFaults{MeanBootSec: meanBoot}, Seed: seed}
		if err := cf.normalize(); err != nil {
			t.Fatal(err)
		}
		if cf.bootDelaySec(0) >= minDelay {
			return cf
		}
	}
	t.Fatal("no seed with a long enough first boot draw")
	return nil
}

func TestPendingVMLifecycleInEngine(t *testing.T) {
	cf := pendingSeed(t, 300, 150)
	boot := cf.bootDelaySec(0)
	g := chainGraph(0.5)
	cfg := baseConfig(g, 2, 3600)
	cfg.ControlFaults = cf
	cfg.Audit = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
		id, err := act.AcquireVM("m1.large")
		if err != nil {
			return err
		}
		// Cores are reservable while the VM is still provisioning.
		if err := act.AssignCores(0, id, 1); err != nil {
			return err
		}
		if err := act.AssignCores(1, id, 1); err != nil {
			return err
		}
		if len(v.PendingVMs()) != 1 {
			t.Fatalf("pending VMs = %d right after delayed acquire", len(v.PendingVMs()))
		}
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	// While pending, the VM contributed nothing and cost nothing.
	for _, p := range e.Collector().Points() {
		if p.PendingVMs > 0 {
			if p.CostUSD != 0 {
				t.Fatalf("t=%d: pending VM billed $%v", p.Sec, p.CostUSD)
			}
			if p.Omega != 0 {
				t.Fatalf("t=%d: omega %v while the only VM is pending", p.Sec, p.Omega)
			}
		}
	}
	if e.Fleet().ActiveCount() != 1 || e.Fleet().PendingCount() != 0 {
		t.Fatalf("fleet at end: %d active, %d pending", e.Fleet().ActiveCount(), e.Fleet().PendingCount())
	}
	if cost := e.Fleet().TotalCost(3600); cost <= 0 {
		t.Fatal("booted VM never billed")
	}
	var sawPending, sawReady bool
	for _, a := range e.AuditLog() {
		switch a.Action {
		case "pending-vm":
			sawPending = true
			if int64(a.N) != boot {
				t.Fatalf("pending-vm boot %d, want %d", a.N, boot)
			}
		case "vm-ready":
			sawReady = true
			if a.Sec < boot {
				t.Fatalf("vm-ready at %d before boot %d", a.Sec, boot)
			}
		}
	}
	if !sawPending || !sawReady {
		t.Fatalf("audit lacks pending-vm/vm-ready: pending=%v ready=%v", sawPending, sawReady)
	}
}

func TestCrashWhilePendingNeverBoots(t *testing.T) {
	cf := pendingSeed(t, 600, 300)
	g := chainGraph(0.5)
	cfg := baseConfig(g, 2, 1800)
	cfg.ControlFaults = cf
	cfg.Failures = fixedDeath{age: 120} // dies before its boot completes
	cfg.Audit = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
		_, err := act.AcquireVM("m1.small")
		return err
	}}); err != nil {
		t.Fatal(err)
	}
	if e.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", e.Crashes())
	}
	if cost := e.Fleet().TotalCost(1800); cost != 0 {
		t.Fatalf("crashed-while-pending VM billed $%v", cost)
	}
	var sawCrash bool
	for _, a := range e.AuditLog() {
		if a.Action == "vm-ready" {
			t.Fatal("VM became ready despite dying while pending")
		}
		if a.Action == "crash" {
			sawCrash = true
			if !strings.Contains(a.Detail, "(pending)") {
				t.Fatalf("crash detail %q not marked pending", a.Detail)
			}
		}
	}
	if !sawCrash {
		t.Fatal("no crash audit entry")
	}
}

func TestMonitorsStaleAcrossWholeRound(t *testing.T) {
	// With StaleProb 1 every probe is dropped for the entire run: monitors
	// never leave their last-known-good (initial) state while on a variable
	// cloud the clean run's coefficients drift away from rated.
	run := func(stale float64) *Engine {
		g := chainGraph(0.5)
		cfg := baseConfig(g, 2, 3600)
		perf, err := trace.NewReplayed(trace.ReplayedConfig{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Perf = perf
		if stale > 0 {
			cfg.ControlFaults = &ControlFaults{Monitoring: &MonitoringFaults{StaleProb: stale}, Seed: 2}
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
			t.Fatal(err)
		}
		return e
	}
	faulty := run(1)
	if faulty.StaleProbes() == 0 {
		t.Fatal("no probes dropped at StaleProb 1")
	}
	for _, vm := range NewView(faulty).ActiveVMs() {
		if vm.CPUCoeff != 1.0 {
			t.Fatalf("VM %d coeff %v moved despite every probe dropped", vm.ID, vm.CPUCoeff)
		}
	}
	clean := run(0)
	if clean.StaleProbes() != 0 {
		t.Fatal("clean run dropped probes")
	}
	moved := false
	for _, vm := range NewView(clean).ActiveVMs() {
		if vm.CPUCoeff != 1.0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("clean run's monitors never updated — staleness test is vacuous")
	}
}

func TestMonitorNoiseStaysBounded(t *testing.T) {
	cf := &ControlFaults{Monitoring: &MonitoringFaults{NoiseFrac: 0.2}, Seed: 6}
	if err := cf.normalize(); err != nil {
		t.Fatal(err)
	}
	for sec := int64(0); sec < 1000; sec += 7 {
		n := cf.probeNoise(drawNoiseCPU, 3, sec)
		if n < 0.8 || n >= 1.2 {
			t.Fatalf("noise factor %v outside [0.8, 1.2)", n)
		}
	}
}

// chaosConfig is a scenario exercising every fault class at once, used by
// the determinism test.
func chaosConfig(t *testing.T) Config {
	t.Helper()
	g := chainGraph(0.5)
	cfg := baseConfig(g, 4, 2*3600)
	cfg.Audit = true
	cfg.Seed = 21
	cfg.Failures = fixedDeath{age: 1500}
	cfg.ControlFaults = &ControlFaults{
		Provisioning: &ProvisioningFaults{MeanBootSec: 90},
		Acquisition:  &AcquisitionFaults{FailProb: 0.4, AfterSec: 60},
		Monitoring:   &MonitoringFaults{StaleProb: 0.3, NoiseFrac: 0.1},
		Seed:         5,
	}
	return cfg
}

// chaosRepair keeps two cores per PE, riding out capacity errors by simply
// trying again next interval.
func chaosRepair(v *View, act Control) error {
	for pe := 0; pe < v.Graph().N(); pe++ {
		if v.AssignedCores(pe) >= 2 {
			continue
		}
		id, err := act.AcquireVM("m1.large")
		if err != nil {
			if IsCapacityError(err) {
				continue
			}
			return err
		}
		if err := act.AssignCores(pe, id, 2); err != nil {
			return err
		}
	}
	return nil
}

func TestAuditLogByteIdenticalAcrossRuns(t *testing.T) {
	run := func() []byte {
		e, err := NewEngine(chaosConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(&fixed{deploy: chaosRepair, adapt: chaosRepair}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.WriteAuditJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical configs produced different audit logs")
	}
	log := string(a)
	for _, want := range []string{"pending-vm", "acquire-failed", "crash"} {
		if !strings.Contains(log, want) {
			t.Fatalf("chaos audit log lacks %q entries:\n%s", want, log)
		}
	}
}

func FuzzControlFaultsConfigNormalize(f *testing.F) {
	f.Add(int64(120), int64(480), 0.2, 0.95, 0.1, 0.05, int64(600), int64(100), int64(0), int64(7), false, false, false)
	f.Add(int64(-5), int64(0), 0.0, 0.0, 0.0, 0.0, int64(0), int64(0), int64(0), int64(0), false, true, true)
	f.Add(int64(0), int64(0), 1.5, -0.1, 2.0, 1.0, int64(-60), int64(90), int64(-1), int64(3), true, false, true)
	f.Add(int64(10), int64(5), 0.5, 0.5, 0.5, 0.5, int64(60), int64(61), int64(30), int64(1), true, true, false)
	f.Fuzz(func(t *testing.T, meanBoot, maxBoot int64, failProb, burstProb, staleProb, noiseFrac float64,
		burstEvery, burstLen, afterSec, seed int64, nilProv, nilAcq, nilMon bool) {
		cf := &ControlFaults{Seed: seed}
		if !nilProv {
			cf.Provisioning = &ProvisioningFaults{MeanBootSec: meanBoot, MaxBootSec: maxBoot}
		}
		if !nilAcq {
			cf.Acquisition = &AcquisitionFaults{
				FailProb: failProb, BurstEverySec: burstEvery, BurstLenSec: burstLen,
				BurstFailProb: burstProb, AfterSec: afterSec,
				PerClass: map[string]float64{"m1.small": failProb},
			}
		}
		if !nilMon {
			cf.Monitoring = &MonitoringFaults{StaleProb: staleProb, NoiseFrac: noiseFrac}
		}
		cfg := baseConfig(chainGraph(1), 2, 3600)
		cfg.ControlFaults = cf
		e, err := NewEngine(cfg)
		if err != nil {
			return // rejected configs must not panic; nothing more to check
		}
		// Accepted configs must produce sane draws.
		ncf := e.cfg.ControlFaults
		for sec := int64(0); sec < 200; sec += 13 {
			if d := ncf.bootDelaySec(sec); d < 0 {
				t.Fatalf("negative boot delay %d", d)
			}
			ncf.acquireFails("m1.small", sec, sec)
			if n := ncf.probeNoise(drawNoiseRate, uint64(sec), sec); n <= 0 {
				t.Fatalf("non-positive noise factor %v", n)
			}
			ncf.probeStale(drawStaleCPU, uint64(sec), sec)
		}
	})
}
