package sim_test

// Metamorphic relations: reference-free oracles for the simulator. Each
// relation transforms a scenario in a way whose effect on the output is
// known a priori (double the cost-aversion, scale the input rates, add
// faults that can never fire) and asserts the implication — plus a
// differential replay of one scenario through both paper heuristics. All
// runs execute with the invariant checker in strict mode, so the relations
// and the conservation laws are verified together.

import (
	"bytes"
	"math"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
)

// deployer is a minimal scheduler for fixed deployments.
type deployer struct {
	name   string
	deploy func(v *sim.View, act sim.Control) error
}

func (d *deployer) Name() string                              { return d.name }
func (d *deployer) Deploy(v *sim.View, act sim.Control) error { return d.deploy(v, act) }
func (d *deployer) Adapt(_ *sim.View, _ sim.Control) error    { return nil }

// evenDeploy assigns n cores of the class to every PE.
func evenDeploy(class string, n int) *deployer {
	return &deployer{name: "even", deploy: func(v *sim.View, act sim.Control) error {
		for pe := 0; pe < v.Graph().N(); pe++ {
			id, err := act.AcquireVM(class)
			if err != nil {
				return err
			}
			if err := act.AssignCores(pe, id, n); err != nil {
				return err
			}
		}
		return nil
	}}
}

// unitChain builds in -> mid -> out with unit selectivity everywhere.
func unitChain() *dataflow.Graph {
	return dataflow.NewBuilder().
		AddPE("in", dataflow.Alt("e", 1, 0.2, 1)).
		AddPE("mid", dataflow.Alt("e", 1, 1.0, 1)).
		AddPE("out", dataflow.Alt("e", 1, 0.3, 1)).
		Connect("in", "mid").Connect("mid", "out").
		MustBuild()
}

// runChecked executes one strict-checked run and returns the summary.
func runChecked(t *testing.T, g *dataflow.Graph, rate float64, horizon int64, s sim.Scheduler) metrics.Summary {
	t.Helper()
	prof, err := rates.NewConstant(rate)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.NewEngine(sim.Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:     map[int]rates.Profile{g.Inputs()[0]: prof},
		HorizonSec: horizon,
		Checker:    invariant.NewStrict(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// heuristic builds the paper's heuristic for the objective.
func heuristic(t *testing.T, strategy core.Strategy, obj core.Objective) sim.Scheduler {
	t.Helper()
	h, err := core.NewHeuristic(core.Options{
		Strategy: strategy, Dynamic: true, Adaptive: true, Objective: obj})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestMetamorphicSigmaMonotone: doubling sigma (the objective's cost
// aversion) never increases the cost the heuristic chooses to spend.
func TestMetamorphicSigmaMonotone(t *testing.T) {
	g := dataflow.EvalGraph()
	const rate, hours = 10.0, 2.0
	baseObj, err := core.PaperSigma(g, rate, hours)
	if err != nil {
		t.Fatal(err)
	}
	for _, mult := range []float64{2, 4, 16} {
		obj2 := baseObj
		obj2.Sigma = baseObj.Sigma * mult
		cost1 := runChecked(t, g, rate, int64(hours*3600), heuristic(t, core.Global, baseObj)).TotalCostUSD
		cost2 := runChecked(t, g, rate, int64(hours*3600), heuristic(t, core.Global, obj2)).TotalCostUSD
		if cost2 > cost1+1e-9 {
			t.Fatalf("sigma x%v increased chosen cost: $%v -> $%v", mult, cost1, cost2)
		}
	}
}

// TestMetamorphicRateScaling: with unit selectivity, scaling all input
// rates by k scales delivered throughput by at most k, and with ample
// capacity Omega is invariant (stays 1) while throughput scales exactly.
func TestMetamorphicRateScaling(t *testing.T) {
	g := unitChain()
	const base = 2.0
	cases := []struct {
		name  string
		sched func() sim.Scheduler
		ample bool
	}{
		// One m1.xlarge (8 ECU) per PE covers mid's cost 1 up to 8 msg/s.
		{"ample", func() sim.Scheduler { return evenDeploy("m1.xlarge", 4) }, true},
		// One m1.small core (1 ECU) saturates mid beyond 1 msg/s.
		{"saturated", func() sim.Scheduler { return evenDeploy("m1.small", 1) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := runChecked(t, g, base, 3600, tc.sched())
			for _, k := range []float64{2, 3} {
				scaled := runChecked(t, g, base*k, 3600, tc.sched())
				if tc.ample {
					if math.Abs(scaled.MeanOmega-1) > 1e-9 || math.Abs(ref.MeanOmega-1) > 1e-9 {
						t.Fatalf("k=%v: omega not invariant under ample capacity: %v -> %v",
							k, ref.MeanOmega, scaled.MeanOmega)
					}
				} else {
					if scaled.MeanOmega > ref.MeanOmega+1e-9 {
						t.Fatalf("k=%v: omega rose under scaling with fixed capacity: %v -> %v",
							k, ref.MeanOmega, scaled.MeanOmega)
					}
				}
			}
		})
	}
}

// TestMetamorphicRateScalingThroughput pins the throughput half of the
// relation on the per-interval series: output(k·r) <= k·output(r), with
// equality under ample capacity.
func TestMetamorphicRateScalingThroughput(t *testing.T) {
	g := unitChain()
	const base, k = 2.0, 3.0
	run := func(rate float64, sched sim.Scheduler) float64 {
		prof, err := rates.NewConstant(rate)
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.NewEngine(sim.Config{
			Graph:      g,
			Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
			Inputs:     map[int]rates.Profile{g.Inputs()[0]: prof},
			HorizonSec: 3600,
			Checker:    invariant.NewStrict(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(sched); err != nil {
			t.Fatal(err)
		}
		pts := e.Collector().Points()
		total := 0.0
		for _, p := range pts {
			total += p.OutputRate
		}
		return total
	}
	ampleRef := run(base, evenDeploy("m1.xlarge", 4))
	ampleScaled := run(base*k, evenDeploy("m1.xlarge", 4))
	if math.Abs(ampleScaled-k*ampleRef) > 1e-6*(1+k*ampleRef) {
		t.Fatalf("ample: output(k·r)=%v, want exactly k·output(r)=%v", ampleScaled, k*ampleRef)
	}
	satRef := run(base, evenDeploy("m1.small", 1))
	satScaled := run(base*k, evenDeploy("m1.small", 1))
	if satScaled > k*satRef+1e-6*(1+k*satRef) {
		t.Fatalf("saturated: output(k·r)=%v exceeds k·output(r)=%v", satScaled, k*satRef)
	}
}

// TestMetamorphicZeroProbFaultsIdentical: a run with every fault knob
// present but at zero probability must be byte-for-byte identical to the
// fault-free run — trace stream, audit log, and per-interval CSV.
func TestMetamorphicZeroProbFaultsIdentical(t *testing.T) {
	g := unitChain()
	run := func(withZeroFaults bool) (trace, audit, csv string) {
		prof, err := rates.NewConstant(3)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{
			Graph:      g,
			Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
			Inputs:     map[int]rates.Profile{g.Inputs()[0]: prof},
			HorizonSec: 1800,
			Seed:       7,
			Audit:      true,
			Checker:    invariant.NewStrict(),
		}
		var sink bytes.Buffer
		cfg.Tracer = obs.NewTracer(&sink)
		if withZeroFaults {
			cfg.Failures = sim.NoFailures{}
			cfg.Preemption = sim.NoFailures{}
			cfg.ControlFaults = &sim.ControlFaults{
				Seed:         99,
				Provisioning: &sim.ProvisioningFaults{MeanBootSec: 0},
				Acquisition:  &sim.AcquisitionFaults{FailProb: 0},
				Monitoring:   &sim.MonitoringFaults{StaleProb: 0, NoiseFrac: 0},
			}
		}
		e, err := sim.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(evenDeploy("m1.large", 2)); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Tracer.Flush(); err != nil {
			t.Fatal(err)
		}
		var auditBuf, csvBuf bytes.Buffer
		if err := e.WriteAuditJSONL(&auditBuf); err != nil {
			t.Fatal(err)
		}
		if err := e.Collector().WriteCSV(&csvBuf); err != nil {
			t.Fatal(err)
		}
		return sink.String(), auditBuf.String(), csvBuf.String()
	}
	trace1, audit1, csv1 := run(false)
	trace2, audit2, csv2 := run(true)
	if trace1 != trace2 {
		t.Fatalf("trace streams differ:\n--- fault-free ---\n%s\n--- zero-prob ---\n%s", trace1, trace2)
	}
	if audit1 != audit2 {
		t.Fatalf("audit logs differ:\n%s\nvs\n%s", audit1, audit2)
	}
	if csv1 != csv2 {
		t.Fatalf("metric series differ:\n%s\nvs\n%s", csv1, csv2)
	}
	if len(trace1) == 0 || len(audit1) == 0 || len(csv1) == 0 {
		t.Fatal("comparison vacuous: empty artifacts")
	}
}

// TestDifferentialLocalVsGlobal replays one scenario through the paper's
// local and global heuristics: both must satisfy every invariant, and the
// two audit streams may differ only in decision events — the scheduler
// actions — never in engine-internal event types.
func TestDifferentialLocalVsGlobal(t *testing.T) {
	g := dataflow.EvalGraph()
	const rate, hours = 10.0, 2.0
	obj, err := core.PaperSigma(g, rate, hours)
	if err != nil {
		t.Fatal(err)
	}
	decisionEvents := map[string]bool{
		obs.EventDecision:        true,
		obs.EventSelectAlternate: true,
		obs.EventSelectRoute:     true,
		obs.EventAcquireVM:       true,
		obs.EventPendingVM:       true,
		obs.EventVMReady:         true,
		obs.EventReleaseVM:       true,
		obs.EventAssignCores:     true,
		obs.EventUnassignCores:   true,
	}
	run := func(strategy core.Strategy) (metrics.Summary, []sim.AuditEntry, *invariant.Checker) {
		prof, err := rates.NewConstant(rate)
		if err != nil {
			t.Fatal(err)
		}
		checker := invariant.New()
		e, err := sim.NewEngine(sim.Config{
			Graph:      g,
			Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
			Inputs:     map[int]rates.Profile{g.Inputs()[0]: prof},
			HorizonSec: int64(hours * 3600),
			Audit:      true,
			Checker:    checker,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := e.Run(heuristic(t, strategy, obj))
		if err != nil {
			t.Fatal(err)
		}
		return sum, e.AuditLog(), checker
	}
	sumL, auditL, checkL := run(core.Local)
	sumG, auditG, checkG := run(core.Global)
	if n := checkL.Count(); n != 0 {
		t.Fatalf("local heuristic violated %d invariants: %v", n, checkL.Violations())
	}
	if n := checkG.Count(); n != 0 {
		t.Fatalf("global heuristic violated %d invariants: %v", n, checkG.Violations())
	}
	if sumL.Intervals != sumG.Intervals {
		t.Fatalf("interval counts differ: %d vs %d", sumL.Intervals, sumG.Intervals)
	}
	for _, a := range append(append([]sim.AuditEntry(nil), auditL...), auditG...) {
		if !decisionEvents[a.Action] {
			t.Fatalf("audit stream contains non-decision event %q (%s)", a.Action, a)
		}
	}
	if len(auditL) == 0 || len(auditG) == 0 {
		t.Fatal("heuristic run produced no audit entries")
	}
}
