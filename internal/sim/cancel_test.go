package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestRunContextCancelMidHorizon cancels a run partway and checks it stops
// at the cancellation interval with a typed error instead of simulating the
// full horizon.
func TestRunContextCancelMidHorizon(t *testing.T) {
	g := chainGraph(1)
	cfg := baseConfig(g, 5, 100*60)

	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	sched := &fixed{
		deploy: deployEven,
		adapt: func(v *View, act Control) error {
			steps++
			if steps == 10 {
				cancel()
			}
			return nil
		},
	}

	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RunContext(ctx, sched)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := e.Collector().Len(); got >= 100 {
		t.Fatalf("run completed %d intervals despite cancellation", got)
	}
	if got := e.Collector().Len(); got < 10 {
		t.Fatalf("run stopped after only %d intervals, before cancellation", got)
	}
}

// TestRunContextPreCancelled checks a run never starts stepping when the
// context is already cancelled (deploy still runs: cancellation is checked
// at interval boundaries).
func TestRunContextPreCancelled(t *testing.T) {
	g := chainGraph(1)
	cfg := baseConfig(g, 5, 10*60)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RunContext(ctx, &fixed{deploy: deployEven})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := e.Collector().Len(); got != 0 {
		t.Fatalf("stepped %d intervals under a pre-cancelled context", got)
	}
}

// TestRunEquivalentToRunContext keeps the plain Run path byte-identical to
// an uncancelled RunContext run.
func TestRunEquivalentToRunContext(t *testing.T) {
	mk := func() *Engine {
		e, err := NewEngine(baseConfig(chainGraph(1), 5, 20*60))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, err := mk().Run(&fixed{deploy: deployEven})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().RunContext(context.Background(), &fixed{deploy: deployEven})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Run summary %+v != RunContext summary %+v", a, b)
	}
}
