package sim

import (
	"math"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/trace"
)

// fixed is a test scheduler: deploy with a callback, never adapt.
type fixed struct {
	deploy func(v *View, act Control) error
	adapt  func(v *View, act Control) error
}

func (f *fixed) Name() string { return "fixed" }
func (f *fixed) Deploy(v *View, act Control) error {
	if f.deploy == nil {
		return nil
	}
	return f.deploy(v, act)
}
func (f *fixed) Adapt(v *View, act Control) error {
	if f.adapt == nil {
		return nil
	}
	return f.adapt(v, act)
}

// chainGraph returns src -> work with configurable work cost.
func chainGraph(workCost float64) *dataflow.Graph {
	return dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("work", dataflow.Alt("e", 1, workCost, 1)).
		Connect("src", "work").
		MustBuild()
}

func baseConfig(g *dataflow.Graph, rate float64, horizon int64) Config {
	c, err := rates.NewConstant(rate)
	if err != nil {
		panic(err)
	}
	return Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:     map[int]rates.Profile{0: c},
		HorizonSec: horizon,
	}
}

// deployEven gives each PE one dedicated m1.large core pair (2 cores).
func deployEven(v *View, act Control) error {
	for pe := 0; pe < v.Graph().N(); pe++ {
		id, err := act.AcquireVM("m1.large")
		if err != nil {
			return err
		}
		if err := act.AssignCores(pe, id, 2); err != nil {
			return err
		}
	}
	return nil
}

func TestConfigValidation(t *testing.T) {
	g := chainGraph(1)
	menu := cloud.MustMenu(cloud.AWS2013Classes())
	c, _ := rates.NewConstant(5)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"nil menu", func(c *Config) { c.Menu = nil }},
		{"zero horizon", func(c *Config) { c.HorizonSec = 0 }},
		{"horizon not multiple", func(c *Config) { c.HorizonSec = 90 }},
		{"negative interval", func(c *Config) { c.IntervalSec = -1 }},
		{"missing input", func(c *Config) { c.Inputs = map[int]rates.Profile{} }},
		{"profile on non-input", func(c *Config) { c.Inputs[1] = c.Inputs[0] }},
		{"bad alpha", func(c *Config) { c.MonitorAlpha = 2 }},
		{"bad max vms", func(c *Config) { c.MaxVMs = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Graph: g, Menu: menu, Inputs: map[int]rates.Profile{0: c}, HorizonSec: 3600}
			tc.mut(&cfg)
			if _, err := NewEngine(cfg); err == nil {
				t.Fatal("bad config accepted")
			}
		})
	}
}

func TestRunRequiresScheduler(t *testing.T) {
	e, err := NewEngine(baseConfig(chainGraph(1), 5, 600))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestAdequateAllocationGivesFullThroughput(t *testing.T) {
	// work cost 1 core-sec/msg at 5 msg/s needs 5 ECU; one m1.large (4 ECU)
	// per PE is plenty for src (0.1) and short for work... use 2 larges.
	g := chainGraph(0.5)
	cfg := baseConfig(g, 5, 3600)
	e, _ := NewEngine(cfg)
	s, err := e.Run(&fixed{deploy: deployEven})
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanOmega < 0.999 {
		t.Fatalf("omega = %v, want ~1 (capacity 8 msg/s vs 5)", s.MeanOmega)
	}
	if s.MeanGamma != 1 {
		t.Fatalf("gamma = %v", s.MeanGamma)
	}
	// 2 m1.large for 1 hour = $0.48.
	if math.Abs(s.TotalCostUSD-0.48) > 1e-9 {
		t.Fatalf("cost = %v", s.TotalCostUSD)
	}
	if s.PeakVMs != 2 {
		t.Fatalf("peak VMs = %d", s.PeakVMs)
	}
}

func TestUnderprovisionedThrottlesThroughput(t *testing.T) {
	// work needs 10 msg/s * 2 core-sec = 20 ECU; give it one m1.small
	// (1 ECU) -> capacity 0.5 msg/s -> omega ~ 0.05 at the sink.
	g := chainGraph(2)
	cfg := baseConfig(g, 10, 3600)
	e, _ := NewEngine(cfg)
	s, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
		for pe := 0; pe < 2; pe++ {
			id, err := act.AcquireVM("m1.small")
			if err != nil {
				return err
			}
			if err := act.AssignCores(pe, id, 1); err != nil {
				return err
			}
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanOmega > 0.2 {
		t.Fatalf("omega = %v, expected heavy throttling", s.MeanOmega)
	}
	// Backlog must accumulate.
	if s.MeanBacklog <= 0 {
		t.Fatal("no backlog despite underprovisioning")
	}
}

func TestNoCoresBuffersMessages(t *testing.T) {
	g := chainGraph(1)
	cfg := baseConfig(g, 5, 600)
	e, _ := NewEngine(cfg)
	s, err := e.Run(&fixed{}) // no deployment at all
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanOmega != 0 {
		t.Fatalf("omega = %v with no cores", s.MeanOmega)
	}
	if s.TotalCostUSD != 0 {
		t.Fatalf("cost = %v with no VMs", s.TotalCostUSD)
	}
	if s.MeanBacklog <= 0 {
		t.Fatal("messages were lost instead of buffered")
	}
}

func TestBacklogDrainsAfterScaleUp(t *testing.T) {
	// Start with nothing; after 10 intervals assign ample cores; backlog
	// must drain and omega recover within the hour.
	g := chainGraph(0.5)
	cfg := baseConfig(g, 5, 7200)
	e, _ := NewEngine(cfg)
	scaled := false
	_, err := e.Run(&fixed{adapt: func(v *View, act Control) error {
		if v.Now() >= 600 && !scaled {
			scaled = true
			return deployEven(v, act)
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Collector().Points()
	last := pts[len(pts)-1]
	if last.Omega < 0.999 {
		t.Fatalf("final omega = %v", last.Omega)
	}
	if last.Backlog > 1 {
		t.Fatalf("final backlog = %v, should have drained", last.Backlog)
	}
}

func TestAlternateSwitchChangesGammaAndCapacity(t *testing.T) {
	g := dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("work",
			dataflow.Alt("heavy", 1.0, 2.0, 1),
			dataflow.Alt("light", 0.5, 0.2, 1)).
		Connect("src", "work").
		MustBuild()
	cfg := baseConfig(g, 5, 3600)
	e, _ := NewEngine(cfg)
	switched := false
	_, err := e.Run(&fixed{
		deploy: func(v *View, act Control) error {
			// One large for src, one medium (2 ECU) for work: heavy
			// needs 10 ECU -> throttled; light needs 1 -> fine.
			a, _ := act.AcquireVM("m1.large")
			if err := act.AssignCores(0, a, 2); err != nil {
				return err
			}
			b, err := act.AcquireVM("m1.medium")
			if err != nil {
				return err
			}
			return act.AssignCores(1, b, 1)
		},
		adapt: func(v *View, act Control) error {
			if v.Now() >= 1800 && !switched {
				switched = true
				return act.SelectAlternate(1, 1)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Collector().Points()
	first, last := pts[10], pts[len(pts)-1]
	if first.Gamma != 1.0 {
		t.Fatalf("gamma before switch = %v", first.Gamma)
	}
	if last.Gamma != 0.75 {
		t.Fatalf("gamma after switch = %v", last.Gamma)
	}
	if first.Omega > 0.5 {
		t.Fatalf("heavy alternate omega = %v, expected throttled", first.Omega)
	}
	if last.Omega < 0.99 {
		t.Fatalf("light alternate omega = %v, expected recovered", last.Omega)
	}
}

func TestSelectivityAffectsExpectedOutput(t *testing.T) {
	g := dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("e", 1, 0.1, 1)).
		AddPE("filter", dataflow.Alt("e", 1, 0.1, 0.5)).
		Connect("src", "filter").
		MustBuild()
	cfg := baseConfig(g, 10, 600)
	e, _ := NewEngine(cfg)
	s, err := e.Run(&fixed{deploy: deployEven})
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Collector().Points()
	last := pts[len(pts)-1]
	// Output rate at sink = 10 * 0.5 = 5; omega still 1.
	if math.Abs(last.OutputRate-5) > 0.01 {
		t.Fatalf("output rate = %v, want 5", last.OutputRate)
	}
	if s.MeanOmega < 0.999 {
		t.Fatalf("omega = %v", s.MeanOmega)
	}
}

func TestHourBoundaryBilling(t *testing.T) {
	g := chainGraph(0.5)
	cfg := baseConfig(g, 2, 2*3600)
	e, _ := NewEngine(cfg)
	released := false
	_, err := e.Run(&fixed{
		deploy: deployEven,
		adapt: func(v *View, act Control) error {
			// Release the work PE's VM after 10 minutes; billed a full hour.
			if v.Now() >= 600 && !released {
				released = true
				as := v.Assignments(1)
				for _, a := range as {
					if err := act.UnassignCores(1, a.VMID, a.Cores); err != nil {
						return err
					}
					if err := act.ReleaseVM(a.VMID); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// VM0 runs 2 hours ($0.48), VM1 billed 1 hour ($0.24).
	want := 2*0.24 + 0.24
	if got := e.Fleet().TotalCost(e.Now()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

func TestReleaseMigratesBuffers(t *testing.T) {
	// Two VMs host "work"; one underprovisioned so its queue builds; then
	// release it — queue must move to the survivor, not vanish.
	g := chainGraph(4) // heavy: 2 msg/s * 4 = 8 ECU needed
	cfg := baseConfig(g, 2, 3600)
	e, _ := NewEngine(cfg)
	var vmA, vmB int
	released := false
	_, err := e.Run(&fixed{
		deploy: func(v *View, act Control) error {
			s, err := act.AcquireVM("m1.large")
			if err != nil {
				return err
			}
			if err := act.AssignCores(0, s, 1); err != nil {
				return err
			}
			vmA, err = act.AcquireVM("m1.small")
			if err != nil {
				return err
			}
			if err := act.AssignCores(1, vmA, 1); err != nil {
				return err
			}
			vmB, err = act.AcquireVM("m1.small")
			if err != nil {
				return err
			}
			return act.AssignCores(1, vmB, 1)
		},
		adapt: func(v *View, act Control) error {
			if v.Now() >= 1200 && !released {
				released = true
				if err := act.UnassignCores(1, vmA, 1); err != nil {
					return err
				}
				return act.ReleaseVM(vmA)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.MigratedBytes() <= 0 {
		t.Fatal("no migration bytes recorded")
	}
}

func TestActionsValidation(t *testing.T) {
	g := chainGraph(1)
	cfg := baseConfig(g, 5, 600)
	e, _ := NewEngine(cfg)
	act := &Actions{e: e}
	if err := act.SelectAlternate(99, 0); err == nil {
		t.Fatal("bad PE accepted")
	}
	if err := act.SelectAlternate(0, 99); err == nil {
		t.Fatal("bad alternate accepted")
	}
	if _, err := act.AcquireVM("ghost"); err == nil {
		t.Fatal("ghost class accepted")
	}
	id, err := act.AcquireVM("m1.small")
	if err != nil {
		t.Fatal(err)
	}
	if err := act.AssignCores(99, id, 1); err == nil {
		t.Fatal("assign to bad PE accepted")
	}
	if err := act.AssignCores(0, id, 5); err == nil {
		t.Fatal("oversubscription accepted")
	}
	if err := act.AssignCores(0, id, 1); err != nil {
		t.Fatal(err)
	}
	if err := act.UnassignCores(0, id, 2); err == nil {
		t.Fatal("unassign too many accepted")
	}
	if err := act.UnassignCores(99, id, 1); err == nil {
		t.Fatal("unassign bad PE accepted")
	}
	if err := act.ReleaseVM(id); err == nil {
		t.Fatal("release with cores accepted")
	}
	if err := act.MovePE(0, id, id, 1); err == nil {
		t.Fatal("move onto same VM accepted")
	}
}

func TestMaxVMsEnforced(t *testing.T) {
	g := chainGraph(1)
	cfg := baseConfig(g, 5, 600)
	cfg.MaxVMs = 2
	e, _ := NewEngine(cfg)
	act := &Actions{e: e}
	for i := 0; i < 2; i++ {
		if _, err := act.AcquireVM("m1.small"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := act.AcquireVM("m1.small"); err == nil {
		t.Fatal("MaxVMs not enforced")
	}
}

func TestMovePE(t *testing.T) {
	g := chainGraph(0.5)
	cfg := baseConfig(g, 2, 1200)
	e, _ := NewEngine(cfg)
	moved := false
	_, err := e.Run(&fixed{
		deploy: deployEven,
		adapt: func(v *View, act Control) error {
			if moved {
				return nil
			}
			moved = true
			// Move PE 1 to a new VM.
			nv, err := act.AcquireVM("m1.large")
			if err != nil {
				return err
			}
			as := v.Assignments(1)
			return act.MovePE(1, as[0].VMID, nv, as[0].Cores)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	view := &View{e: e}
	as := view.Assignments(1)
	if len(as) != 1 || as[0].Cores != 2 {
		t.Fatalf("assignments after move = %+v", as)
	}
}

func TestVariableInfrastructureDegradesThroughput(t *testing.T) {
	// Tight provisioning (capacity == demand) is fine on an ideal cloud but
	// must violate throughput under degraded CPU coefficients.
	g := chainGraph(1)
	mk := func(p trace.Provider) float64 {
		cfg := baseConfig(g, 4, 4*3600)
		cfg.Perf = p
		e, _ := NewEngine(cfg)
		s, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
			// src: 0.4 ECU needed -> 1 small; work: 4 ECU exactly -> 1 large.
			a, _ := act.AcquireVM("m1.small")
			if err := act.AssignCores(0, a, 1); err != nil {
				return err
			}
			b, err := act.AcquireVM("m1.large")
			if err != nil {
				return err
			}
			return act.AssignCores(1, b, 2)
		}})
		if err != nil {
			t.Fatal(err)
		}
		return s.MeanOmega
	}
	ideal := mk(trace.NewIdeal())
	varied := mk(trace.MustReplayed(trace.ReplayedConfig{Seed: 3}))
	if ideal < 0.999 {
		t.Fatalf("ideal omega = %v", ideal)
	}
	if varied >= ideal-0.01 {
		t.Fatalf("variability did not hurt: ideal %v vs varied %v", ideal, varied)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		g := chainGraph(1)
		cfg := baseConfig(g, 5, 3600)
		cfg.Perf = trace.MustReplayed(trace.ReplayedConfig{Seed: 11})
		cfg.Seed = 4
		e, _ := NewEngine(cfg)
		if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
			t.Fatal(err)
		}
		return e.Collector().OmegaSeries()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at interval %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestViewBeforeFirstInterval(t *testing.T) {
	g := chainGraph(1)
	cfg := baseConfig(g, 7, 600)
	e, _ := NewEngine(cfg)
	v := &View{e: e}
	if v.Omega() != 1 || v.MeanOmega() != 1 || v.PEThroughput(0) != 1 {
		t.Fatal("pre-t0 view should report optimistic defaults")
	}
	if got := v.EstimatedInputRate(0); got != 7 {
		t.Fatalf("estimated rate = %v, want profile value 7", got)
	}
	if v.ObservedArrivalRate(1) != 0 {
		t.Fatal("pre-t0 arrival rate should be 0")
	}
}
