package sim

import (
	"dynamicdf/internal/dataflow"
)

// This file is the flow arena: the engine's per-(PE, VM) state laid out as
// struct-of-arrays slices instead of per-PE maps. Every slice of a peState
// is indexed by a dense slot; slot 0 is always the virtual unassigned queue
// (VM id -1), and the remaining slots are the VMs the PE has ever touched,
// ascending by id. Slots are created on the control path (core assignment,
// queue writes, checkpoint restore) and never removed — a VM that leaves
// keeps a zombie slot with zeroed state — so the steady-state step pipeline
// iterates and mutates flow state without a single map operation or heap
// allocation.
//
// Two invariants keep the arena byte-compatible with the map engine:
//
//   - Entry existence is tracked explicitly. The old maps distinguished "no
//     entry" from "entry with value 0" (checkpoint encoding and the drain
//     phase both depend on it): hasQ mirrors queue-map entry existence and
//     hasArr mirrors the per-interval arrivals-map entry set. cores needs no
//     flag — the map engine deleted core entries at zero.
//   - Every float accumulation the map engine performed over sorted keys now
//     runs over slots in ascending-VM order, which is the same sequence of
//     additions, so results are bit-identical.
type peState struct {
	vms   []int // slot -> VM id, ascending; vms[0] == -1
	cores []int // assigned cores (0 = no entry)

	queue []float64 // buffered messages
	hasQ  []bool    // queue-map entry existence

	// Per-interval scratch, valid only inside one step.
	arr    []float64 // arriving msg/s this interval
	hasArr []bool    // arrivals-map entry existence
	capa   []float64 // instantaneous capacity (msg/s)
	host   []bool    // cores > 0 and the VM is active (the perVM key set)
	rshare []float64 // rated share (>0 exactly on host slots)

	// Output split, read by successors' gather while the level barrier
	// guarantees this PE's flow already ran.
	oshare   []float64
	srcEmpty bool

	// latTerms collects this PE's queueing-latency terms in phase order so
	// the global latency fold can replay them serially in topological order.
	latTerms []float64
}

// newPEState returns an arena row holding only the virtual unassigned slot.
func newPEState() peState {
	return peState{
		vms:    []int{-1},
		cores:  []int{0},
		queue:  []float64{0},
		hasQ:   []bool{false},
		arr:    []float64{0},
		hasArr: []bool{false},
		capa:   []float64{0},
		host:   []bool{false},
		rshare: []float64{0},
		oshare: []float64{0},
	}
}

// slotOf returns the VM's slot, or -1 if the PE never touched it.
func (p *peState) slotOf(vmID int) int {
	lo, hi := 0, len(p.vms)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.vms[mid] < vmID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.vms) && p.vms[lo] == vmID {
		return lo
	}
	return -1
}

// ensureSlot returns the VM's slot, inserting one (keeping ids ascending)
// if needed. Control-path only.
func (p *peState) ensureSlot(vmID int) int {
	lo, hi := 0, len(p.vms)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.vms[mid] < vmID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.vms) && p.vms[lo] == vmID {
		return lo
	}
	p.vms = insertAt(p.vms, lo, vmID)
	p.cores = insertAt(p.cores, lo, 0)
	p.queue = insertAt(p.queue, lo, 0)
	p.hasQ = insertAt(p.hasQ, lo, false)
	p.arr = insertAt(p.arr, lo, 0)
	p.hasArr = insertAt(p.hasArr, lo, false)
	p.capa = insertAt(p.capa, lo, 0)
	p.host = insertAt(p.host, lo, false)
	p.rshare = insertAt(p.rshare, lo, 0)
	p.oshare = insertAt(p.oshare, lo, 0)
	return lo
}

func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// coresOf returns the cores assigned to the PE on a VM (0 when none).
func (p *peState) coresOf(vmID int) int {
	if s := p.slotOf(vmID); s >= 0 {
		return p.cores[s]
	}
	return 0
}

// totalQueue sums the PE's buffered messages across all slots (ascending,
// like the map engine's sorted-key fold; zombie slots add exact zeros).
func (p *peState) totalQueue() float64 {
	tot := 0.0
	for s := range p.queue {
		tot += p.queue[s]
	}
	return tot
}

// computeCapacity fills host and capa for the interval — host marks the
// perVM-capacity key set (cores assigned and VM active), capa the msg/s each
// such slot can process — and returns the total, accumulating in slot order
// exactly like peCapacity's sorted-key fold did.
func (p *peState) computeCapacity(e *Engine, sec int64, alt dataflow.Alternate) float64 {
	total := 0.0
	for s := 0; s < len(p.vms); s++ {
		p.host[s] = false
		p.capa[s] = 0
		n := p.cores[s]
		if n == 0 {
			continue
		}
		vm, err := e.fleet.Get(p.vms[s])
		if err != nil || !vm.Active() {
			continue
		}
		speed := float64(n) * vm.Class.CoreSpeed * e.coeff(p.vms[s], sec)
		c := speed / alt.Cost
		p.host[s] = true
		p.capa[s] = c
		total += c
	}
	return total
}

// computeRatedShares fills rshare with each hosting VM's share of the PE's
// rated capacity and returns the unnormalized total. The load balancer
// splits messages by rated shares — it has no visibility into instantaneous
// coefficients — so a degraded VM becomes a straggler whose queue grows, one
// of the ways infrastructure variability hurts QoS (§1). rshare > 0 exactly
// on hosting slots (a hosting VM always has rated capacity > 0).
func (p *peState) computeRatedShares(e *Engine) float64 {
	total := 0.0
	for s := 0; s < len(p.vms); s++ {
		p.rshare[s] = 0
		n := p.cores[s]
		if n == 0 {
			continue
		}
		vm, err := e.fleet.Get(p.vms[s])
		if err != nil || !vm.Active() {
			continue
		}
		r := float64(n) * vm.Class.CoreSpeed
		p.rshare[s] = r
		total += r
	}
	if total > 0 {
		for s := 0; s < len(p.vms); s++ {
			if p.rshare[s] != 0 {
				p.rshare[s] /= total
			}
		}
	}
	return total
}

// migrateQueue moves any buffered messages for pe at fromVM onto the PE's
// other hosting VMs (proportional to capacity), recording the bytes
// transferred (§5: network cost paid for the transfer).
func (e *Engine) migrateQueue(pe, fromVM int) {
	p := &e.pes[pe]
	s := p.slotOf(fromVM)
	if s < 0 {
		return
	}
	q := p.queue[s]
	p.queue[s] = 0
	p.hasQ[s] = false
	if q <= 0 {
		return
	}
	alt := e.sel.Alt(e.cfg.Graph, pe)
	p.computeCapacity(e, e.clock, alt)
	total := 0.0
	for t := 0; t < len(p.vms); t++ {
		if p.host[t] && p.vms[t] != fromVM {
			total += p.capa[t]
		}
	}
	if total <= 0 {
		// Nowhere to go: hold at the unassigned queue.
		p.queue[0] += q
		p.hasQ[0] = true
	} else {
		for t := 0; t < len(p.vms); t++ {
			if p.host[t] && p.vms[t] != fromVM {
				p.queue[t] += q * p.capa[t] / total
				p.hasQ[t] = true
			}
		}
	}
	e.migratedBytes += q * float64(e.cfg.Graph.MsgBytes(pe))
}

// rebuildFlowCaches recomputes the routing-dependent flow topology: each
// PE's active successors and — the gather side of the same edges — each PE's
// active predecessors in topological order, which is exactly the order the
// push-based engine delivered in. Runs at construction, on SelectRoute, and
// on restore; also invalidates the cached application value.
func (e *Engine) rebuildFlowCaches() {
	g := e.cfg.Graph
	n := g.N()
	if e.activeSucc == nil {
		e.activeSucc = make([][]int, n)
	}
	if e.flowPreds == nil {
		e.flowPreds = make([][]int, n)
	}
	for pe := 0; pe < n; pe++ {
		e.flowPreds[pe] = e.flowPreds[pe][:0]
	}
	for _, pe := range e.topoOrder {
		e.activeSucc[pe] = g.ActiveSuccessors(pe, e.routing)
		for _, succ := range e.activeSucc[pe] {
			e.flowPreds[succ] = append(e.flowPreds[succ], pe)
		}
	}
	e.gammaDirty = true
}

// buildLevels groups PEs by depth (longest predecessor chain) over the full
// graph — routing-independent, so it is computed once. PEs within a level
// share no flow dependencies and may run concurrently; levels execute in
// order, each behind a barrier.
func (e *Engine) buildLevels() {
	g := e.cfg.Graph
	depth := make([]int, g.N())
	maxd := 0
	for _, v := range e.topoOrder {
		d := 0
		for _, u := range g.Predecessors(v) {
			if depth[u]+1 > d {
				d = depth[u] + 1
			}
		}
		depth[v] = d
		if d > maxd {
			maxd = d
		}
	}
	e.levels = make([][]int, maxd+1)
	for _, v := range e.topoOrder {
		e.levels[depth[v]] = append(e.levels[depth[v]], v)
	}
}
