package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/state"
)

// flowRunOutputs is every consumer-visible byte surface of one finished run:
// the event trace, the audit log, the per-interval metrics, and the encoded
// checkpoint. The parallel flow stage claims byte-identity, so identity is
// asserted on all four, not on a summary.
type flowRunOutputs struct {
	trace []byte
	audit []byte
	csv   []byte
	snap  []byte
}

// runFlowDifferential executes the property-test scenario for one seed with
// the given worker count and captures every output surface. Odd seeds crash
// VMs mid-run; all seeds deploy scarce (queues build) and scale up halfway
// (queues drain), so the run crosses rehome, migration, and multi-VM
// delivery — the flow paths a parallelism bug would perturb.
func runFlowDifferential(t *testing.T, seed int64, workers int) flowRunOutputs {
	t.Helper()
	rng := rand.New(rand.NewSource(1000 + seed))
	g := randomPipelineDAG(rng)
	rate := 1 + rng.Float64()*8
	profiles := map[int]rates.Profile{}
	for _, pe := range g.Inputs() {
		c, err := rates.NewConstant(rate)
		if err != nil {
			t.Fatal(err)
		}
		profiles[pe] = c
	}
	var traceBuf bytes.Buffer
	cfg := Config{
		Graph:       g,
		Menu:        cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:      profiles,
		HorizonSec:  3600,
		Seed:        seed,
		MaxVMs:      256,
		Audit:       true,
		Tracer:      obs.NewTracer(&traceBuf),
		FlowWorkers: workers,
	}
	if seed%2 == 1 {
		cfg.Failures = ExponentialFailures{MTBFSec: 1200, Seed: seed}
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scaledUp := false
	sched := &fixed{
		deploy: func(v *View, act Control) error {
			for pe := 0; pe < g.N(); pe++ {
				id, err := act.AcquireVM("m1.small")
				if err != nil {
					return err
				}
				if err := act.AssignCores(pe, id, 1); err != nil {
					return err
				}
			}
			return nil
		},
		adapt: func(v *View, act Control) error {
			if !scaledUp && v.Now() >= 1800 {
				scaledUp = true
				for pe := 0; pe < g.N(); pe++ {
					id, err := act.AcquireVM("m1.xlarge")
					if err != nil {
						return err
					}
					if err := act.AssignCores(pe, id, 4); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
	if _, err := e.Run(sched); err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	var out flowRunOutputs
	out.trace = traceBuf.Bytes()
	var auditBuf bytes.Buffer
	if err := e.WriteAuditJSONL(&auditBuf); err != nil {
		t.Fatal(err)
	}
	out.audit = auditBuf.Bytes()
	var csvBuf bytes.Buffer
	if err := e.Collector().WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	out.csv = csvBuf.Bytes()
	snap, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	out.snap, err = state.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFlowParallelByteIdentical is the differential battery for the sharded
// flow stage: across random faulted DAGs, a run at any FlowWorkers setting
// must produce byte-for-byte the trace, audit log, metrics CSV, and
// state/v1 checkpoint of the serial engine.
func TestFlowParallelByteIdentical(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%02d", seed), func(t *testing.T) {
			serial := runFlowDifferential(t, seed, 0)
			if len(serial.trace) == 0 || len(serial.audit) == 0 || len(serial.csv) == 0 || len(serial.snap) == 0 {
				t.Fatal("serial run produced an empty output surface; the differential would be vacuous")
			}
			for _, w := range workerCounts {
				got := runFlowDifferential(t, seed, w)
				for _, surface := range []struct {
					name         string
					want, gotlen []byte
				}{
					{"trace", serial.trace, got.trace},
					{"audit", serial.audit, got.audit},
					{"csv", serial.csv, got.csv},
					{"checkpoint", serial.snap, got.snap},
				} {
					if !bytes.Equal(surface.want, surface.gotlen) {
						t.Errorf("workers=%d: %s differs from serial (%d vs %d bytes)",
							w, surface.name, len(surface.gotlen), len(surface.want))
					}
				}
			}
		})
	}
}

// TestFlowParallelRaceStress steps a wide multi-level DAG with FlowWorkers=8
// and every observer attached — strict invariant checker, tracer, profiler —
// so the race detector sees the parallel flow stage interleaved with all the
// hook paths that read engine state. The run itself must also stay clean.
func TestFlowParallelRaceStress(t *testing.T) {
	cfg := largeDAGConfig(4, 12)
	cfg.HorizonSec = 30 * 60
	cfg.FlowWorkers = 8
	cfg.Checker = invariant.NewStrict()
	cfg.StageSpans = true
	var traceBuf bytes.Buffer
	cfg.Tracer = obs.NewTracer(&traceBuf)
	cfg.Profiler = obs.NewStageProfiler(nil)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(&fixed{deploy: deployLargeDAG})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Intervals != 30 {
		t.Fatalf("ran %d intervals, want 30", sum.Intervals)
	}
	if n := e.InvariantViolations(); n != 0 {
		t.Fatalf("%d invariant violations under parallel flow", n)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	if traceBuf.Len() == 0 {
		t.Fatal("tracer captured nothing")
	}
	if stats := cfg.Profiler.Snapshot(); len(stats) == 0 || stats[0].Count != int64(sum.Intervals) {
		t.Fatalf("profiler stats inconsistent: %+v", stats)
	}
}
