package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/monitor"
	"dynamicdf/internal/obs"
)

// ErrCanceled is returned (wrapped) by RunContext when the context is
// cancelled before the horizon is reached. Detect it with
// errors.Is(err, ErrCanceled); the run's partial metrics remain readable
// through Collector().
var ErrCanceled = errors.New("sim: run canceled")

// Engine executes a configured scenario.
type Engine struct {
	cfg     Config
	clock   int64
	fleet   *cloud.Fleet
	sel     dataflow.Selection
	routing dataflow.Routing

	// pes is the flow arena: per-PE struct-of-arrays state (cores, queues,
	// per-interval arrivals/capacity/share scratch) replacing the old
	// per-PE maps. See arena.go.
	pes []peState

	// Monitoring state exposed through View.
	rateEst   *monitor.RateEstimator
	vmMon     *monitor.VMMonitor
	netMon    *monitor.NetMonitor
	lastOmega float64
	omegaSum  float64
	omegaN    int
	lastPEOut []float64 // observed output rate per PE, last interval
	lastPEExp []float64 // expected output rate per PE, last interval
	lastPEIn  []float64 // observed arrival rate per PE, last interval

	migratedBytes float64
	crashCount    int
	preemptions   int
	lostMessages  float64
	lastLatency   float64
	auditLog      []obs.Event
	tracer        *obs.Tracer
	gauges        *obs.RunGauges
	collector     *metrics.Collector
	stepped       bool

	// Per-stage profiling: profIdx maps the pipeline's stage positions to
	// the attached profiler's dense indices; nil profiler = zero overhead.
	profiler *obs.StageProfiler
	profIdx  []int

	// Cached at NewEngine: the graph's topological order, the sorted
	// input-PE key list (and its membership mask), and the output-PE list —
	// loop invariants of every interval.
	topoOrder []int
	inputKeys []int
	isInput   []bool
	outputs   []int

	// Routing-dependent flow topology (rebuilt by rebuildFlowCaches) and the
	// static level schedule for the sharded flow stage (buildLevels).
	activeSucc [][]int
	flowPreds  [][]int
	levels     [][]int

	// gammaV caches dataflow.RoutedValue, which only changes when the
	// selection or routing does; gammaDirty forces a recompute.
	gammaV     float64
	gammaDirty bool

	// ctx is the reused per-interval stage context; flowPool is the level
	// sharding pool, non-nil only while a FlowWorkers > 0 run is active.
	ctx      stepContext
	flowPool *flowPool

	// Run lifecycle. deployed flips once the scheduler's Deploy phase has
	// run, so a restored engine resumes without redeploying; sched is the
	// scheduler driving the current run (checkpointed when stateful);
	// pendingSchedState carries a restored snapshot's scheduler blob until
	// RunUntil hands it to the scheduler; restoredViolations preserves the
	// violation count a restored snapshot was taken with.
	deployed           bool
	sched              Scheduler
	pendingSchedState  []byte
	restoredViolations int

	// Control-plane fault bookkeeping: a monotone acquisition-attempt
	// counter keys the deterministic failure/boot draws; the tallies are
	// exposed for tests and tools.
	acquireAttempts int64
	acquireFailures int
	staleProbes     int

	// Invariant checking: checkStep hands invState (a reused snapshot
	// buffer) to the checker at the end of every interval. crashEvents and
	// preemptEvents tally audited crash/preempt events on the audit path so
	// the audit-consistency law can cross-check them against the counters
	// incremented where VMs actually die.
	checker       *invariant.Checker
	invState      *invariant.State
	prevCost      float64
	gammaMin      float64
	gammaMax      float64
	crashEvents   int
	preemptEvents int

	// Dense per-tenant dimension, all nil/zero outside multi-tenant runs:
	// tenOutputs holds each tenant's output PEs as composite-graph indices,
	// tenLastOmega/tenOmegaSum mirror the global Ω tallies, tenGamma caches
	// per-tenant RoutedValue under the same dirty flag as gammaV, tenSpend
	// accumulates attributed dollars (tenPrevCost marks the last attributed
	// cost level), and tenGauges caches the labeled gauge handles so the
	// observe stage never allocates.
	tenOutputs   [][]int
	tenLastOmega []float64
	tenOmegaSum  []float64
	tenGamma     []float64
	tenSpend     []float64
	tenPrevCost  float64
	tenGauges    [][3]*obs.Gauge
}

// NewEngine validates the config and prepares an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	e := &Engine{
		cfg:       cfg,
		fleet:     cloud.NewFleet(cfg.Menu),
		sel:       dataflow.DefaultSelection(cfg.Graph),
		routing:   dataflow.DefaultRouting(cfg.Graph),
		pes:       make([]peState, n),
		lastPEOut: make([]float64, n),
		lastPEExp: make([]float64, n),
		lastPEIn:  make([]float64, n),
		collector: metrics.NewCollector(),
	}
	for i := 0; i < n; i++ {
		e.pes[i] = newPEState()
	}
	order, err := cfg.Graph.TopoOrder()
	if err != nil {
		return nil, err
	}
	e.topoOrder = order
	e.inputKeys = sortedKeys(cfg.Inputs)
	e.isInput = make([]bool, n)
	for _, pe := range e.inputKeys {
		e.isInput[pe] = true
	}
	e.outputs = cfg.Graph.Outputs()
	e.rebuildFlowCaches()
	e.buildLevels()
	e.ctx = stepContext{
		extRate:     make([]float64, n),
		inRate:      make([]float64, n),
		expOut:      make([]float64, n),
		observedOut: make([]float64, n),
		observedIn:  make([]float64, n),
	}
	if nt := len(cfg.Tenants); nt > 0 {
		e.tenOutputs = make([][]int, nt)
		names := make([]string, nt)
		for i, t := range cfg.Tenants {
			names[i] = t.Name
			outs := t.Graph.Outputs()
			global := make([]int, len(outs))
			for j, pe := range outs {
				global[j] = t.LoPE + pe
			}
			e.tenOutputs[i] = global
		}
		e.tenLastOmega = make([]float64, nt)
		e.tenOmegaSum = make([]float64, nt)
		e.tenGamma = make([]float64, nt)
		e.tenSpend = make([]float64, nt)
		e.ctx.tenOmega = make([]float64, nt)
		e.ctx.tenGamma = make([]float64, nt)
		e.ctx.tenSpend = make([]float64, nt)
		e.ctx.tenCores = make([]int, nt)
		if err := e.collector.SetTenants(names); err != nil {
			return nil, err
		}
	}
	e.rateEst, _ = monitor.NewRateEstimator(cfg.MonitorAlpha)
	e.vmMon, _ = monitor.NewVMMonitor(cfg.MonitorAlpha)
	e.netMon, _ = monitor.NewNetMonitor(cfg.MonitorAlpha)
	e.tracer = cfg.Tracer
	e.gauges = cfg.Gauges
	e.bindTenantGauges()
	e.profiler = cfg.Profiler
	e.registerStages()
	if cfg.Checker != nil {
		e.checker = cfg.Checker
		e.invState = &invariant.State{
			In:          make([]float64, n),
			Processed:   make([]float64, n),
			QueueBefore: make([]float64, n),
			QueueAfter:  make([]float64, n),
		}
		if nt := len(cfg.Tenants); nt > 0 {
			e.invState.TenantOmega = make([]float64, nt)
		}
		e.gammaMin, e.gammaMax = alternateValueRange(cfg.Graph)
	}
	return e, nil
}

// bindTenantGauges caches one labeled gauge handle per tenant and series so
// the observe stage sets them without going through GaugeVec.With (which
// allocates a wrapper per call). No-op unless both tenants and a gauge set
// with tenant vecs are present.
func (e *Engine) bindTenantGauges() {
	nt := len(e.cfg.Tenants)
	if nt == 0 || e.gauges == nil ||
		e.gauges.TenantOmega == nil || e.gauges.TenantGamma == nil || e.gauges.TenantSpend == nil {
		e.tenGauges = nil
		return
	}
	e.tenGauges = make([][3]*obs.Gauge, nt)
	for i, t := range e.cfg.Tenants {
		e.tenGauges[i] = [3]*obs.Gauge{
			e.gauges.TenantOmega.With(t.Name),
			e.gauges.TenantGamma.With(t.Name),
			e.gauges.TenantSpend.With(t.Name),
		}
	}
}

// Now returns the simulation clock in seconds.
func (e *Engine) Now() int64 { return e.clock }

// Collector returns the per-interval metrics recorded so far.
func (e *Engine) Collector() *metrics.Collector { return e.collector }

// Selection returns the live alternate selection (shared; do not mutate).
func (e *Engine) Selection() dataflow.Selection { return e.sel }

// Fleet exposes the VM fleet for inspection (tests, experiments).
func (e *Engine) Fleet() *cloud.Fleet { return e.fleet }

// Run drives the scenario to the horizon under the scheduler and returns
// the period summary. Scheduler errors abort the run.
func (e *Engine) Run(s Scheduler) (metrics.Summary, error) {
	return e.RunContext(context.Background(), s)
}

// RunContext is Run with cooperative cancellation: the context is checked
// before every interval, so a cancelled sweep job stops mid-horizon instead
// of simulating to completion. A cancelled run returns an error wrapping
// both ErrCanceled and the context's cause.
func (e *Engine) RunContext(ctx context.Context, s Scheduler) (metrics.Summary, error) {
	if err := e.RunUntil(ctx, s, e.cfg.HorizonSec); err != nil {
		return metrics.Summary{}, err
	}
	sum := e.collector.Summarize()
	e.trace(obs.Event{Type: obs.EventRun, Phase: obs.PhaseEnd, Detail: s.Name(),
		Value: sum.MeanOmega})
	return sum, nil
}

// RunUntil advances the simulation to untilSec (an interval boundary at or
// before the horizon) under the scheduler, without summarizing or closing
// the run span. On a fresh engine it emits the run-start span and drives the
// scheduler's Deploy phase; on an engine restored from a checkpoint it
// resumes mid-run — hands the snapshot's scheduler state to s if it is a
// StatefulScheduler, skips Deploy, and continues stepping — so the
// concatenated event streams of a checkpointed prefix run and its resumption
// are byte-identical to one uninterrupted run. Call it repeatedly with
// growing horizons to interleave stepping with checkpoints, then finish with
// RunContext (which runs any remaining intervals).
func (e *Engine) RunUntil(ctx context.Context, s Scheduler, untilSec int64) error {
	if s == nil {
		return fmt.Errorf("sim: nil scheduler")
	}
	if untilSec < e.clock || untilSec > e.cfg.HorizonSec || untilSec%e.cfg.IntervalSec != 0 {
		return fmt.Errorf("sim: run-until %ds: want a multiple of interval %ds in [clock %ds, horizon %ds]",
			untilSec, e.cfg.IntervalSec, e.clock, e.cfg.HorizonSec)
	}
	e.sched = s
	if e.cfg.FlowWorkers > 0 && e.flowPool == nil {
		pool := newFlowPool(e, e.cfg.FlowWorkers)
		e.flowPool = pool
		defer func() {
			pool.close()
			e.flowPool = nil
		}()
	}
	view := &View{e: e}
	act := &Actions{e: e}
	if !e.deployed {
		e.trace(obs.Event{Type: obs.EventRun, Phase: obs.PhaseStart, Detail: s.Name(),
			N: int(e.cfg.HorizonSec)})
		if e.tracer != nil {
			// Snapshot the initial alternate selection so occupancy analysis
			// knows what each PE ran before the first explicit switch.
			for pe := 0; pe < e.cfg.Graph.N(); pe++ {
				alt := e.sel.Alt(e.cfg.Graph, pe)
				e.trace(obs.Event{Type: obs.EventSelectAlternate, Phase: obs.PhaseInit,
					PE: pe, N: e.sel[pe], Detail: alt.Name})
			}
		}
		if err := s.Deploy(view, act); err != nil {
			return fmt.Errorf("sim: deploy (%s): %w", s.Name(), err)
		}
		e.deployed = true
	} else if e.pendingSchedState != nil {
		if ss, ok := s.(StatefulScheduler); ok {
			if err := ss.RestoreState(e.pendingSchedState); err != nil {
				return fmt.Errorf("sim: restore scheduler state (%s): %w", s.Name(), err)
			}
		}
		e.pendingSchedState = nil
	}
	for e.clock < untilSec {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w at t=%ds: %v", ErrCanceled, e.clock, err)
		}
		// Adapt runs before every interval except the very first of the run
		// (clock 0 right after Deploy) — the same cadence on a resumed
		// engine, whose clock is past 0, as on an uninterrupted one.
		if e.clock > 0 {
			if err := s.Adapt(view, act); err != nil {
				return fmt.Errorf("sim: adapt (%s) at %d: %w", s.Name(), e.clock, err)
			}
		}
		if err := e.step(); err != nil {
			return err
		}
	}
	return nil
}

// vmTraceID derives the stable trace id for a VM.
func (e *Engine) vmTraceID(vmID int) int64 {
	return e.cfg.Seed*1_000_003 + int64(vmID)
}

// coeff returns the true instantaneous CPU coefficient for a VM (the
// engine's ground truth; the monitored estimate is what schedulers see).
func (e *Engine) coeff(vmID int, sec int64) float64 {
	return e.cfg.Perf.CPUCoeff(e.vmTraceID(vmID), sec)
}

// linkMsgCap converts pairwise bandwidth into a message rate cap for an
// edge whose messages are msgBytes large. Colocated VMs short-circuit.
func (e *Engine) linkMsgCap(srcVM, dstVM int, msgBytes int, sec int64) float64 {
	if srcVM == dstVM {
		return inf
	}
	bwMbps := e.cfg.Perf.BandwidthMbps(e.vmTraceID(srcVM), e.vmTraceID(dstVM), sec)
	bytesPerSec := bwMbps * 1e6 / 8
	return bytesPerSec / float64(msgBytes)
}

const inf = 1e18

// sortedKeys returns a map's keys ascending so float accumulation and
// tie-breaking are order-stable across runs.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// AcquireFailures reports how many AcquireVM attempts hit a transient
// insufficient-capacity error so far.
func (e *Engine) AcquireFailures() int { return e.acquireFailures }

// StaleProbes reports how many monitor probes were dropped by degraded
// monitoring so far.
func (e *Engine) StaleProbes() int { return e.staleProbes }

// MigratedBytes reports the cumulative message-buffer bytes moved by core
// unassignments and VM releases.
func (e *Engine) MigratedBytes() float64 { return e.migratedBytes }
