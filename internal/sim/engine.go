package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/monitor"
	"dynamicdf/internal/obs"
)

// ErrCanceled is returned (wrapped) by RunContext when the context is
// cancelled before the horizon is reached. Detect it with
// errors.Is(err, ErrCanceled); the run's partial metrics remain readable
// through Collector().
var ErrCanceled = errors.New("sim: run canceled")

// Engine executes a configured scenario.
type Engine struct {
	cfg     Config
	clock   int64
	fleet   *cloud.Fleet
	sel     dataflow.Selection
	routing dataflow.Routing

	// cores[pe][vmID] = number of the VM's cores assigned to the PE.
	cores []map[int]int
	// queue[pe][vmID] = messages buffered for the PE at the VM.
	queue []map[int]float64

	// Monitoring state exposed through View.
	rateEst   *monitor.RateEstimator
	vmMon     *monitor.VMMonitor
	netMon    *monitor.NetMonitor
	lastOmega float64
	omegaSum  float64
	omegaN    int
	lastPEOut []float64 // observed output rate per PE, last interval
	lastPEExp []float64 // expected output rate per PE, last interval
	lastPEIn  []float64 // observed arrival rate per PE, last interval

	migratedBytes float64
	crashCount    int
	preemptions   int
	lostMessages  float64
	lastLatency   float64
	auditLog      []obs.Event
	tracer        *obs.Tracer
	gauges        *obs.RunGauges
	collector     *metrics.Collector
	stepped       bool

	// Control-plane fault bookkeeping: a monotone acquisition-attempt
	// counter keys the deterministic failure/boot draws; the tallies are
	// exposed for tests and tools.
	acquireAttempts int64
	acquireFailures int
	staleProbes     int

	// Invariant checking: checkStep hands invState (a reused snapshot
	// buffer) to the checker at the end of every interval. crashEvents and
	// preemptEvents tally audited crash/preempt events on the audit path so
	// the audit-consistency law can cross-check them against the counters
	// incremented where VMs actually die.
	checker       *invariant.Checker
	invState      *invariant.State
	prevCost      float64
	gammaMin      float64
	gammaMax      float64
	crashEvents   int
	preemptEvents int
}

// NewEngine validates the config and prepares an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	n := cfg.Graph.N()
	e := &Engine{
		cfg:       cfg,
		fleet:     cloud.NewFleet(cfg.Menu),
		sel:       dataflow.DefaultSelection(cfg.Graph),
		routing:   dataflow.DefaultRouting(cfg.Graph),
		cores:     make([]map[int]int, n),
		queue:     make([]map[int]float64, n),
		lastPEOut: make([]float64, n),
		lastPEExp: make([]float64, n),
		lastPEIn:  make([]float64, n),
		collector: metrics.NewCollector(),
	}
	for i := 0; i < n; i++ {
		e.cores[i] = map[int]int{}
		e.queue[i] = map[int]float64{}
	}
	e.rateEst, _ = monitor.NewRateEstimator(cfg.MonitorAlpha)
	e.vmMon, _ = monitor.NewVMMonitor(cfg.MonitorAlpha)
	e.netMon, _ = monitor.NewNetMonitor(cfg.MonitorAlpha)
	e.tracer = cfg.Tracer
	e.gauges = cfg.Gauges
	if cfg.Checker != nil {
		e.checker = cfg.Checker
		e.invState = &invariant.State{
			In:          make([]float64, n),
			Processed:   make([]float64, n),
			QueueBefore: make([]float64, n),
			QueueAfter:  make([]float64, n),
		}
		e.gammaMin, e.gammaMax = alternateValueRange(cfg.Graph)
	}
	return e, nil
}

// Now returns the simulation clock in seconds.
func (e *Engine) Now() int64 { return e.clock }

// Collector returns the per-interval metrics recorded so far.
func (e *Engine) Collector() *metrics.Collector { return e.collector }

// Selection returns the live alternate selection (shared; do not mutate).
func (e *Engine) Selection() dataflow.Selection { return e.sel }

// Fleet exposes the VM fleet for inspection (tests, experiments).
func (e *Engine) Fleet() *cloud.Fleet { return e.fleet }

// Run drives the scenario to the horizon under the scheduler and returns
// the period summary. Scheduler errors abort the run.
func (e *Engine) Run(s Scheduler) (metrics.Summary, error) {
	return e.RunContext(context.Background(), s)
}

// RunContext is Run with cooperative cancellation: the context is checked
// before every interval, so a cancelled sweep job stops mid-horizon instead
// of simulating to completion. A cancelled run returns an error wrapping
// both ErrCanceled and the context's cause.
func (e *Engine) RunContext(ctx context.Context, s Scheduler) (metrics.Summary, error) {
	if s == nil {
		return metrics.Summary{}, fmt.Errorf("sim: nil scheduler")
	}
	view := &View{e: e}
	act := &Actions{e: e}
	e.trace(obs.Event{Type: obs.EventRun, Phase: obs.PhaseStart, Detail: s.Name(),
		N: int(e.cfg.HorizonSec)})
	if e.tracer != nil {
		// Snapshot the initial alternate selection so occupancy analysis
		// knows what each PE ran before the first explicit switch.
		for pe := 0; pe < e.cfg.Graph.N(); pe++ {
			alt := e.sel.Alt(e.cfg.Graph, pe)
			e.trace(obs.Event{Type: obs.EventSelectAlternate, Phase: obs.PhaseInit,
				PE: pe, N: e.sel[pe], Detail: alt.Name})
		}
	}
	if err := s.Deploy(view, act); err != nil {
		return metrics.Summary{}, fmt.Errorf("sim: deploy (%s): %w", s.Name(), err)
	}
	steps := e.cfg.HorizonSec / e.cfg.IntervalSec
	for i := int64(0); i < steps; i++ {
		if err := ctx.Err(); err != nil {
			return metrics.Summary{}, fmt.Errorf("%w at t=%ds: %v", ErrCanceled, e.clock, err)
		}
		if i > 0 {
			if err := s.Adapt(view, act); err != nil {
				return metrics.Summary{}, fmt.Errorf("sim: adapt (%s) at %d: %w", s.Name(), e.clock, err)
			}
		}
		if err := e.step(); err != nil {
			return metrics.Summary{}, err
		}
	}
	sum := e.collector.Summarize()
	e.trace(obs.Event{Type: obs.EventRun, Phase: obs.PhaseEnd, Detail: s.Name(),
		Value: sum.MeanOmega})
	return sum, nil
}

// vmTraceID derives the stable trace id for a VM.
func (e *Engine) vmTraceID(vmID int) int64 {
	return e.cfg.Seed*1_000_003 + int64(vmID)
}

// coeff returns the true instantaneous CPU coefficient for a VM (the
// engine's ground truth; the monitored estimate is what schedulers see).
func (e *Engine) coeff(vmID int, sec int64) float64 {
	return e.cfg.Perf.CPUCoeff(e.vmTraceID(vmID), sec)
}

// peCapacity returns the PE's total processing capacity in msg/s at sec,
// plus the per-VM capacity split.
func (e *Engine) peCapacity(pe int, sec int64) (total float64, perVM map[int]float64) {
	alt := e.sel.Alt(e.cfg.Graph, pe)
	perVM = make(map[int]float64, len(e.cores[pe]))
	for _, vmID := range sortedKeys(e.cores[pe]) {
		n := e.cores[pe][vmID]
		vm, err := e.fleet.Get(vmID)
		if err != nil || !vm.Active() {
			continue
		}
		speed := float64(n) * vm.Class.CoreSpeed * e.coeff(vmID, sec)
		cap := speed / alt.Cost
		perVM[vmID] = cap
		total += cap
	}
	return total, perVM
}

// peRatedShares returns each hosting VM's share of the PE's *rated*
// capacity. The load balancer splits messages by rated shares — it has no
// visibility into instantaneous coefficients — so a degraded VM becomes a
// straggler whose queue grows, one of the ways infrastructure variability
// hurts QoS (§1).
func (e *Engine) peRatedShares(pe int) map[int]float64 {
	shares := make(map[int]float64, len(e.cores[pe]))
	total := 0.0
	for _, vmID := range sortedKeys(e.cores[pe]) {
		n := e.cores[pe][vmID]
		vm, err := e.fleet.Get(vmID)
		if err != nil || !vm.Active() {
			continue
		}
		r := float64(n) * vm.Class.CoreSpeed
		shares[vmID] = r
		total += r
	}
	if total <= 0 {
		return nil
	}
	for vmID := range shares {
		shares[vmID] /= total
	}
	return shares
}

// linkMsgCap converts pairwise bandwidth into a message rate cap for an
// edge whose messages are msgBytes large. Colocated VMs short-circuit.
func (e *Engine) linkMsgCap(srcVM, dstVM int, msgBytes int, sec int64) float64 {
	if srcVM == dstVM {
		return inf
	}
	bwMbps := e.cfg.Perf.BandwidthMbps(e.vmTraceID(srcVM), e.vmTraceID(dstVM), sec)
	bytesPerSec := bwMbps * 1e6 / 8
	return bytesPerSec / float64(msgBytes)
}

const inf = 1e18

// sortedKeys returns a map's keys ascending so float accumulation and
// tie-breaking are order-stable across runs.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// step simulates one interval [clock, clock+interval).
func (e *Engine) step() error {
	g := e.cfg.Graph
	dt := float64(e.cfg.IntervalSec)
	sec := e.clock
	e.trace(obs.Event{Type: obs.EventStep, Phase: obs.PhaseStart})

	// Complete provisioning for pending VMs whose boot time arrived, so
	// this interval runs on the newly booted capacity.
	for _, vm := range e.fleet.MakeReady(sec) {
		e.audit(AuditEntry{Action: "vm-ready", VM: vm.ID, N: int(sec - vm.StartSec),
			Detail: vm.Class.Name})
	}

	// Crash VMs whose lifetime expired before this interval's flow runs,
	// so the interval executes on the surviving capacity.
	if err := e.crashDueVMs(sec); err != nil {
		return err
	}

	// External arrival rates this interval.
	extRate := make(map[int]float64, len(e.cfg.Inputs))
	totalIn := 0.0
	for _, pe := range sortedKeys(e.cfg.Inputs) {
		r := e.cfg.Inputs[pe].Rate(sec)
		if r < 0 {
			return fmt.Errorf("sim: profile for PE %d returned negative rate %v", pe, r)
		}
		extRate[pe] = r
		totalIn += r
	}

	// Expected (uncapped) propagation for Def. 4's denominator.
	inRates := dataflow.InputRates{}
	for pe, r := range extRate {
		inRates[pe] = r
	}
	_, expOut, err := dataflow.PropagateRatesRouted(g, e.sel, e.routing, inRates)
	if err != nil {
		return err
	}

	order, err := g.TopoOrder()
	if err != nil {
		return err
	}

	// Messages that buffered while a PE had no cores (virtual VM -1) move
	// onto real hosting VMs as soon as capacity exists.
	for pe := 0; pe < g.N(); pe++ {
		if q := e.queue[pe][-1]; q > 0 {
			total, perVM := e.peCapacity(pe, sec)
			if total > 0 {
				delete(e.queue[pe], -1)
				for _, vmID := range sortedKeys(perVM) {
					e.queue[pe][vmID] += q * perVM[vmID] / total
				}
			}
		}
	}

	// Snapshot per-PE queue totals for the conservation law. This point —
	// after crash cleanup and unassigned-queue rehoming, both of which move
	// or destroy messages outside the interval's flow accounting — is where
	// QueueBefore + In·dt = Processed·dt + QueueAfter holds exactly.
	if e.invState != nil {
		for pe := 0; pe < g.N(); pe++ {
			tot := 0.0
			for _, vmID := range sortedKeys(e.queue[pe]) {
				tot += e.queue[pe][vmID]
			}
			e.invState.QueueBefore[pe] = tot
		}
	}

	// arrivals[pe][vmID]: msg/s arriving at each hosting VM this interval.
	arrivals := make([]map[int]float64, g.N())
	for i := range arrivals {
		arrivals[i] = map[int]float64{}
	}
	observedOut := make([]float64, g.N())
	observedIn := make([]float64, g.N())

	// Seed external arrivals, split across the input PE's VMs.
	for pe, r := range extRate {
		e.splitArrival(pe, r, arrivals[pe])
	}

	totalBacklog := 0.0
	latencyAccum := 0.0
	latencyN := 0

	for _, pe := range order {
		alt := e.sel.Alt(g, pe)
		_, perVMcap := e.peCapacity(pe, sec)
		// Process per hosting VM: arrivals plus backlog drain, bounded by
		// capacity.
		processed := 0.0
		arrivalTotal := 0.0
		for _, vmID := range sortedKeys(arrivals[pe]) {
			arr := arrivals[pe][vmID]
			arrivalTotal += arr
			cap := perVMcap[vmID]
			q := e.queue[pe][vmID]
			avail := arr + q/dt
			p := avail
			if p > cap {
				p = cap
			}
			newQ := q + (arr-p)*dt
			if newQ < 1e-9 {
				newQ = 0
			}
			e.queue[pe][vmID] = newQ
			processed += p
			if cap > 0 {
				latencyAccum += newQ / cap
				latencyN++
			}
		}
		// Backlog on VMs with no arrivals this interval still drains.
		for _, vmID := range sortedKeys(e.queue[pe]) {
			q := e.queue[pe][vmID]
			if _, seen := arrivals[pe][vmID]; seen || q == 0 {
				continue
			}
			cap := perVMcap[vmID]
			p := q / dt
			if p > cap {
				p = cap
			}
			newQ := q - p*dt
			if newQ < 1e-9 {
				newQ = 0
			}
			e.queue[pe][vmID] = newQ
			processed += p
			if cap > 0 {
				latencyAccum += newQ / cap
				latencyN++
			}
		}
		observedIn[pe] = arrivalTotal
		out := processed * alt.Selectivity
		observedOut[pe] = out
		if e.invState != nil {
			e.invState.In[pe] = arrivalTotal
			e.invState.Processed[pe] = processed
		}

		// Deliver to successors: duplicate the full output onto each
		// outgoing edge (and-split), splitting across destination VMs by
		// capacity and capping each VM-pair sub-flow by bandwidth.
		if out > 0 {
			msgBytes := g.MsgBytes(pe)
			srcShare := e.outputShares(pe, perVMcap, processed)
			for _, succ := range g.ActiveSuccessors(pe, e.routing) {
				e.deliver(pe, succ, out, msgBytes, srcShare, sec, arrivals[succ])
			}
		}
		for _, vmID := range sortedKeys(e.queue[pe]) {
			totalBacklog += e.queue[pe][vmID]
		}
	}

	// Relative application throughput (Def. 4): mean over output PEs of
	// observed/expected, clamped to [0, 1].
	omega := 0.0
	outs := g.Outputs()
	for _, pe := range outs {
		exp := expOut[pe]
		if exp <= 0 {
			omega += 1
			continue
		}
		r := observedOut[pe] / exp
		if r > 1 {
			r = 1
		}
		omega += r
	}
	omega /= float64(len(outs))

	totalOut := 0.0
	for _, pe := range outs {
		totalOut += observedOut[pe]
	}

	// Advance the clock before billing so the interval is paid for.
	e.clock += e.cfg.IntervalSec

	// Update monitors with this interval's observations. Under degraded
	// monitoring a probe may be dropped (the estimator keeps its
	// last-known-good value) or perturbed with multiplicative noise before
	// smoothing — what the heuristics then consume via View is exactly as
	// wrong as a real monitoring framework's would be.
	cf := e.cfg.ControlFaults
	for pe, r := range extRate {
		if cf.probeStale(drawStaleRate, uint64(pe), e.clock) {
			e.staleProbes++
			continue
		}
		e.rateEst.Observe(pe, r*cf.probeNoise(drawNoiseRate, uint64(pe), e.clock))
	}
	for _, vm := range e.fleet.Active() {
		if cf.probeStale(drawStaleCPU, uint64(vm.ID), e.clock) {
			e.staleProbes++
			continue
		}
		coeff := e.coeff(vm.ID, sec) * cf.probeNoise(drawNoiseCPU, uint64(vm.ID), e.clock)
		_ = e.vmMon.ObserveCPU(vm.ID, monitor.Probe{Sec: e.clock, CPUCoeff: coeff})
	}
	active := e.fleet.Active()
	for i := 0; i < len(active); i++ {
		for j := i + 1; j < len(active); j++ {
			a, b := active[i], active[j]
			pair := uint64(a.ID)<<32 | uint64(b.ID)
			if cf.probeStale(drawStaleNet, pair, e.clock) {
				e.staleProbes++
				continue
			}
			lat := e.cfg.Perf.LatencySec(e.vmTraceID(a.ID), e.vmTraceID(b.ID), sec)
			bw := e.cfg.Perf.BandwidthMbps(e.vmTraceID(a.ID), e.vmTraceID(b.ID), sec)
			noise := cf.probeNoise(drawNoiseNet, pair, e.clock)
			_ = e.netMon.Observe(a.ID, b.ID, lat*noise, bw*noise)
		}
	}

	e.lastOmega = omega
	e.omegaSum += omega
	e.omegaN++
	copy(e.lastPEOut, observedOut)
	copy(e.lastPEExp, expOut)
	copy(e.lastPEIn, observedIn)
	e.stepped = true

	usedCores := 0
	for _, vm := range active {
		usedCores += vm.UsedCores
	}
	meanLatency := 0.0
	if latencyN > 0 {
		meanLatency = latencyAccum / float64(latencyN)
	}
	e.lastLatency = meanLatency
	gamma, err := dataflow.RoutedValue(g, e.sel, e.routing)
	if err != nil {
		return err
	}
	costUSD := e.fleet.TotalCost(e.clock)
	pendingVMs := e.fleet.PendingCount()
	viol := e.checkStep(omega, gamma, costUSD, totalBacklog)
	if e.cfg.OmegaFloor > 0 && omega < e.cfg.OmegaFloor {
		e.trace(obs.Event{Type: obs.EventOmegaViolation, Value: omega,
			Detail: fmt.Sprintf("floor=%g", e.cfg.OmegaFloor)})
	}
	e.trace(obs.Event{Type: obs.EventStep, Phase: obs.PhaseEnd, Value: omega,
		N: usedCores})
	if e.gauges != nil {
		e.gauges.Omega.Set(omega)
		e.gauges.UsedCores.Set(float64(usedCores))
		e.gauges.PendingVMs.Set(float64(pendingVMs))
		e.gauges.ActiveVMs.Set(float64(len(active)))
		e.gauges.Backlog.Set(totalBacklog)
		e.gauges.CostUSD.Set(costUSD)
	}
	if err := e.collector.Add(metrics.Point{
		Sec:        e.clock,
		Omega:      omega,
		Gamma:      gamma,
		CostUSD:    costUSD,
		ActiveVMs:  len(active),
		PendingVMs: pendingVMs,
		UsedCores:  usedCores,
		InputRate:  totalIn,
		OutputRate: totalOut,
		Backlog:    totalBacklog,
		LatencySec: meanLatency,
	}); err != nil {
		return err
	}
	// A strict checker aborts after the violating interval's point is
	// recorded, so the partial metrics remain inspectable.
	return viol
}

// AcquireFailures reports how many AcquireVM attempts hit a transient
// insufficient-capacity error so far.
func (e *Engine) AcquireFailures() int { return e.acquireFailures }

// StaleProbes reports how many monitor probes were dropped by degraded
// monitoring so far.
func (e *Engine) StaleProbes() int { return e.staleProbes }

// splitArrival distributes rate across the PE's hosting VMs by rated share
// (the load balancer of §5 cannot see instantaneous coefficients). With no
// cores assigned the messages buffer at a virtual unassigned queue (vmID
// -1) so they are not silently lost.
func (e *Engine) splitArrival(pe int, rate float64, dst map[int]float64) {
	shares := e.peRatedShares(pe)
	if len(shares) == 0 {
		dst[-1] += rate
		return
	}
	for vmID, s := range shares {
		dst[vmID] += rate * s
	}
}

// outputShares returns each source VM's share of the PE's processed output.
func (e *Engine) outputShares(pe int, perVMcap map[int]float64, processed float64) map[int]float64 {
	shares := make(map[int]float64, len(perVMcap))
	if processed <= 0 {
		return shares
	}
	total := 0.0
	for _, vmID := range sortedKeys(perVMcap) {
		total += perVMcap[vmID]
	}
	if total <= 0 {
		return shares
	}
	for vmID, c := range perVMcap {
		shares[vmID] = c / total
	}
	return shares
}

// deliver moves out msg/s from PE src (split across srcShare VMs) to PE dst,
// splitting across dst's hosting VMs by capacity and capping every
// cross-VM sub-flow at the pairwise bandwidth. Messages in excess of link
// capacity are lost in transit (network backpressure shows up as reduced
// downstream throughput, as in the paper's QoS degradation).
func (e *Engine) deliver(src, dst int, out float64, msgBytes int, srcShare map[int]float64, sec int64, arrivals map[int]float64) {
	dstShares := e.peRatedShares(dst)
	if len(dstShares) == 0 {
		// No cores downstream: buffer at the unassigned queue.
		arrivals[-1] += out
		return
	}
	for _, dstVM := range sortedKeys(dstShares) {
		want := out * dstShares[dstVM]
		if want <= 0 {
			continue
		}
		if len(srcShare) == 0 {
			// Source processed nothing yet output > 0 cannot happen, but
			// stay safe: treat as colocated.
			arrivals[dstVM] += want
			continue
		}
		for _, srcVM := range sortedKeys(srcShare) {
			flow := want * srcShare[srcVM]
			cap := e.linkMsgCap(srcVM, dstVM, msgBytes, sec)
			if flow > cap {
				flow = cap
			}
			arrivals[dstVM] += flow
		}
	}
}

// migrateQueue moves any buffered messages for pe at fromVM onto the PE's
// other hosting VMs (proportional to capacity), recording the bytes
// transferred (§5: network cost paid for the transfer).
func (e *Engine) migrateQueue(pe, fromVM int) {
	q := e.queue[pe][fromVM]
	if q <= 0 {
		delete(e.queue[pe], fromVM)
		return
	}
	delete(e.queue[pe], fromVM)
	_, perVM := e.peCapacity(pe, e.clock)
	total := 0.0
	for _, vmID := range sortedKeys(perVM) {
		if vmID != fromVM {
			total += perVM[vmID]
		}
	}
	if total <= 0 {
		// Nowhere to go: hold at the unassigned queue.
		e.queue[pe][-1] += q
	} else {
		for _, vmID := range sortedKeys(perVM) {
			if vmID == fromVM {
				continue
			}
			e.queue[pe][vmID] += q * perVM[vmID] / total
		}
	}
	e.migratedBytes += q * float64(e.cfg.Graph.MsgBytes(pe))
}

// MigratedBytes reports the cumulative message-buffer bytes moved by core
// unassignments and VM releases.
func (e *Engine) MigratedBytes() float64 { return e.migratedBytes }
