package sim

import (
	"sync"
	"sync/atomic"
)

// flowPool is the bounded worker pool the flow stage shards PEs over when
// Config.FlowWorkers > 0. RunUntil owns its lifecycle: the workers start
// when a run begins and exit when it returns, so an idle engine holds no
// goroutines. Within a run the same workers serve every interval.
//
// Safety: workers only run processPE, which touches its own PE's arena row,
// reads predecessor rows finalized in earlier levels (the WaitGroup barrier
// between levels publishes them), and writes per-PE cells of the step
// context — no two workers ever write the same memory.
type flowPool struct {
	e      *Engine
	c      *stepContext
	level  []int
	cursor atomic.Int64
	wg     sync.WaitGroup
	start  chan struct{}
	n      int
}

// newFlowPool starts workers goroutines that wait for level batches.
func newFlowPool(e *Engine, workers int) *flowPool {
	fp := &flowPool{e: e, n: workers, start: make(chan struct{})}
	for i := 0; i < workers; i++ {
		go fp.worker()
	}
	return fp
}

func (fp *flowPool) worker() {
	for range fp.start {
		for {
			i := int(fp.cursor.Add(1)) - 1
			if i >= len(fp.level) {
				break
			}
			fp.e.processPE(fp.c, fp.level[i])
		}
		fp.wg.Done()
	}
}

// run processes one topological level across the pool and blocks until every
// PE in it finished. The token sends publish the batch to the workers; the
// WaitGroup wait publishes their writes back — and to the next level.
func (fp *flowPool) run(c *stepContext, level []int) {
	fp.c = c
	fp.level = level
	fp.cursor.Store(0)
	fp.wg.Add(fp.n)
	for i := 0; i < fp.n; i++ {
		fp.start <- struct{}{}
	}
	fp.wg.Wait()
}

// close terminates the workers. Must not overlap a run call.
func (fp *flowPool) close() { close(fp.start) }
