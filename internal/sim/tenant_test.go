package sim

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/rates"
)

// twoTenantConfig composes two 2-PE chain tenants ("a", "b") onto one
// graph. Each tenant's standalone graph is chainGraph(0.5), matching the
// prefixed composite copies.
func twoTenantConfig(rateA, rateB float64, horizon int64) Config {
	b := dataflow.NewBuilder()
	for _, p := range []string{"a", "b"} {
		b.AddPE(p+"/src", dataflow.Alt("e", 1, 0.1, 1))
		b.AddPE(p+"/work", dataflow.Alt("e", 1, 0.5, 1))
		b.Connect(p+"/src", p+"/work")
	}
	ca, err := rates.NewConstant(rateA)
	if err != nil {
		panic(err)
	}
	cb, err := rates.NewConstant(rateB)
	if err != nil {
		panic(err)
	}
	return Config{
		Graph:      b.MustBuild(),
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:     map[int]rates.Profile{0: ca, 2: cb},
		HorizonSec: horizon,
		Tenants: []Tenant{
			{Name: "a", LoPE: 0, HiPE: 2, OmegaFloor: 0.7, Graph: chainGraph(0.5)},
			{Name: "b", LoPE: 2, HiPE: 4, OmegaFloor: 0.7, Priority: 1, Graph: chainGraph(0.5)},
		},
	}
}

func TestTenantConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"empty name", func(c *Config) { c.Tenants[0].Name = "" }},
		{"duplicate name", func(c *Config) { c.Tenants[1].Name = "a" }},
		{"overlapping ranges", func(c *Config) { c.Tenants[1].LoPE = 1 }},
		{"inverted range", func(c *Config) { c.Tenants[0].HiPE = 0 }},
		{"range past graph", func(c *Config) { c.Tenants[1].HiPE = 5 }},
		{"nil tenant graph", func(c *Config) { c.Tenants[0].Graph = nil }},
		{"graph size mismatch", func(c *Config) { c.Tenants[0].Graph = chainGraph(0.5); c.Tenants[0].HiPE = 1; c.Tenants[1].LoPE = 1 }},
		{"floor above one", func(c *Config) { c.Tenants[0].OmegaFloor = 1.5 }},
		{"negative floor", func(c *Config) { c.Tenants[0].OmegaFloor = -0.1 }},
		{"choice range on choiceless graph", func(c *Config) { c.Tenants[0].HiChoice = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := twoTenantConfig(5, 5, 600)
			tc.mut(&cfg)
			if _, err := NewEngine(cfg); err == nil {
				t.Fatal("bad tenant config accepted")
			}
		})
	}
	if _, err := NewEngine(twoTenantConfig(5, 5, 600)); err != nil {
		t.Fatalf("good tenant config rejected: %v", err)
	}
}

// TestMultiTenantOmegaAndSpend: with adequate capacity both tenants run at
// Ω=1, the per-tenant spend attribution sums to the total bill, and the
// metrics CSV grows per-tenant columns.
func TestMultiTenantOmegaAndSpend(t *testing.T) {
	cfg := twoTenantConfig(5, 5, 3600)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(&fixed{deploy: deployEven})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Tenants) != 2 || sum.Tenants[0].Name != "a" || sum.Tenants[1].Name != "b" {
		t.Fatalf("tenant summaries = %+v", sum.Tenants)
	}
	for _, ts := range sum.Tenants {
		if ts.MeanOmega < 0.999 || ts.MinOmega < 0.999 {
			t.Fatalf("tenant %s omega = %v / %v, want ~1", ts.Name, ts.MeanOmega, ts.MinOmega)
		}
		if ts.MeanGamma <= 0 {
			t.Fatalf("tenant %s gamma = %v", ts.Name, ts.MeanGamma)
		}
	}
	spend := sum.Tenants[0].SpendUSD + sum.Tenants[1].SpendUSD
	if math.Abs(spend-sum.TotalCostUSD) > 1e-9*(1+sum.TotalCostUSD) {
		t.Fatalf("tenant spend %v != total cost %v", spend, sum.TotalCostUSD)
	}
	var buf bytes.Buffer
	if err := e.Collector().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, col := range []string{"omega_a", "gamma_a", "spend_usd_a", "omega_b", "gamma_b", "spend_usd_b"} {
		if !strings.Contains(header, col) {
			t.Fatalf("CSV header %q missing %s", header, col)
		}
	}
}

// TestTenantViewScoping: a tenant-scoped view reports the tenant's own
// graph and translates PE indices to composite numbering under the hood.
func TestTenantViewScoping(t *testing.T) {
	cfg := twoTenantConfig(5, 3, 1200)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
		t.Fatal(err)
	}
	v := NewView(e)
	if v.TenantCount() != 2 {
		t.Fatalf("tenant count = %d", v.TenantCount())
	}
	vb := v.Tenant(1)
	if vb.Graph().N() != 2 || vb.Graph().PEs[0].Name != "src" {
		t.Fatalf("tenant view graph = %v", vb.Graph().PEs)
	}
	// Tenant b's input rate (composite PE 2) must surface at local PE 0.
	in := vb.EstimatedInputRates()
	if len(in) != 1 {
		t.Fatalf("tenant input rates = %v", in)
	}
	if r := in[0]; math.Abs(r-3) > 0.5 {
		t.Fatalf("tenant b input rate = %v, want ~3", r)
	}
	// Composite PE 2 ("b/src") assignments == tenant-local PE 0 assignments.
	if got, want := vb.AssignedCores(0), v.AssignedCores(2); got != want {
		t.Fatalf("scoped cores = %d, global = %d", got, want)
	}
	if o := vb.Omega(); o < 0.999 {
		t.Fatalf("tenant b omega = %v", o)
	}
	if o := v.TenantMeanOmega(1); o < 0.999 {
		t.Fatalf("tenant b mean omega = %v", o)
	}
}

// TestTenantOmegaFloorViolation: a tenant left without capacity reports
// Ω=0, breaches its floor, and the violation lands in the trace stream
// tagged with the tenant's name.
func TestTenantOmegaFloorViolation(t *testing.T) {
	cfg := twoTenantConfig(5, 5, 600)
	var traced bytes.Buffer
	tracer := obs.NewTracer(&traced)
	cfg.Tracer = tracer
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deploy only tenant a; tenant b starves.
	deployA := func(v *View, act Control) error {
		for pe := 0; pe < 2; pe++ {
			id, err := act.AcquireVM("m1.large")
			if err != nil {
				return err
			}
			if err := act.AssignCores(pe, id, 2); err != nil {
				return err
			}
		}
		return nil
	}
	sum, err := e.Run(&fixed{deploy: deployA})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tenants[0].MeanOmega < 0.999 || sum.Tenants[1].MeanOmega != 0 {
		t.Fatalf("tenant omegas = %v / %v", sum.Tenants[0].MeanOmega, sum.Tenants[1].MeanOmega)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(traced.String(), "\n") {
		if !strings.Contains(line, obs.EventOmegaViolation) {
			continue
		}
		if strings.Contains(line, `"tenant":"b"`) {
			found = true
		}
		if strings.Contains(line, `"tenant":"a"`) {
			t.Fatalf("healthy tenant flagged: %s", line)
		}
	}
	if !found {
		t.Fatal("no omega-floor violation traced for starving tenant b")
	}
}

// TestTenantCheckpointRestoreByteIdentical: the tenant dimension survives a
// checkpoint round trip — a run interrupted and restored produces the same
// per-tenant series and summary as the uninterrupted run.
func TestTenantCheckpointRestoreByteIdentical(t *testing.T) {
	mkSched := func() Scheduler { return &fixed{deploy: deployEven} }
	coldCfg := twoTenantConfig(5, 5, 1800)
	cold, err := NewEngine(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	coldSum, err := cold.Run(mkSched())
	if err != nil {
		t.Fatal(err)
	}

	warmCfg := twoTenantConfig(5, 5, 1800)
	prefix, err := NewEngine(warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := prefix.RunUntil(context.Background(), mkSched(), 600); err != nil {
		t.Fatal(err)
	}
	snap, err := prefix.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.TenantOmega) != 2 || len(snap.TenantSeriesOmega) != 2*10 {
		t.Fatalf("snapshot tenant tallies: omega %d, series %d", len(snap.TenantOmega), len(snap.TenantSeriesOmega))
	}
	warm, err := Restore(snap, warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	warmSum, err := warm.Run(mkSched())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldSum, warmSum) {
		t.Fatalf("summaries diverged:\ncold %+v\nwarm %+v", coldSum, warmSum)
	}
	var coldCSV, warmCSV bytes.Buffer
	if err := cold.Collector().WriteCSV(&coldCSV); err != nil {
		t.Fatal(err)
	}
	if err := warm.Collector().WriteCSV(&warmCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldCSV.Bytes(), warmCSV.Bytes()) {
		t.Fatal("per-tenant metric CSVs diverged after restore")
	}
}

// TestTenantSnapshotOntoTenantlessConfig: a snapshot carrying tenant
// tallies must not restore onto a config without tenants.
func TestTenantSnapshotOntoTenantlessConfig(t *testing.T) {
	cfg := twoTenantConfig(5, 5, 600)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(context.Background(), &fixed{deploy: deployEven}, 120); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	bare := cfg
	bare.Tenants = nil
	if _, err := Restore(snap, bare); err == nil {
		t.Fatal("tenant snapshot restored onto tenantless config")
	}
}
