package sim

import (
	"fmt"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/obs"
)

// Control is the interface of the control surface a scheduler acts through
// (§5's runtime controls): switch a PE's alternate or route, acquire or
// release VMs, and move CPU cores between PEs and VMs. The engine's Actions
// implements it directly; middleware such as resilient.Actions wraps one
// Control in another to add retries, circuit breaking and fallbacks without
// the policy noticing.
type Control interface {
	// SelectAlternate activates alternate alt for PE pe.
	SelectAlternate(pe, alt int) error
	// SelectRoute activates target index target of choice group group.
	SelectRoute(group, target int) error
	// AcquireVM starts a new VM of the named class and returns its id. With
	// control-plane faults enabled the VM may come up pending (schedulable
	// only after its boot delay) or the call may fail with a CapacityError.
	AcquireVM(className string) (int, error)
	// ReleaseVM stops (or, while pending, cancels) a VM.
	ReleaseVM(vmID int) error
	// AssignCores gives PE pe n additional cores on VM vmID.
	AssignCores(pe, vmID, n int) error
	// UnassignCores takes n cores of PE pe on VM vmID back.
	UnassignCores(pe, vmID, n int) error
	// MovePE migrates n of the PE's cores from one VM to another.
	MovePE(pe, fromVM, toVM, n int) error
	// Menu is a convenience passthrough for policies constructing class
	// names.
	Menu() *cloud.Menu
	// Log appends a free-form entry to the audit log (no-op unless
	// Config.Audit), so middleware decisions — breaker trips, fallbacks,
	// degradations — land in the same decision trace as the actions.
	Log(action, detail string)
}

// DecisionSink is the optional provenance side-channel of a Control: a
// policy that explains its elasticity decisions type-asserts its Control to
// this interface and, when DecisionsObserved reports true, hands each
// decision's structured provenance to Decide. Middleware wrapping a Control
// should forward both methods to the inner surface (annotating the
// decision on the way through, e.g. with open-breaker state).
type DecisionSink interface {
	// Decide records one structured elasticity decision in the audit/trace
	// stream as an obs.EventDecision entry.
	Decide(d obs.Decision)
	// DecisionsObserved reports whether Decide lands anywhere (a tracer is
	// attached or auditing is on), so policies can skip assembling
	// provenance nobody will see.
	DecisionsObserved() bool
}

// Actions is the engine's own control surface (§5's runtime controls). The
// engine enforces every billing and consistency consequence — hour-boundary
// charges, buffer migration on release, no oversubscription — so a buggy
// policy cannot corrupt the run.
type Actions struct {
	e *Engine
}

var _ Control = (*Actions)(nil)

// NewActions builds a control surface over an engine, for tools and tests
// that act outside a Scheduler callback.
func NewActions(e *Engine) *Actions { return &Actions{e: e} }

// SelectAlternate activates alternate alt for PE pe. Switching is legal at
// any interval boundary because PEs are stateless across messages (§5).
func (a *Actions) SelectAlternate(pe, alt int) error {
	g := a.e.cfg.Graph
	if pe < 0 || pe >= g.N() {
		return fmt.Errorf("sim: select alternate on unknown PE %d", pe)
	}
	if alt < 0 || alt >= len(g.PEs[pe].Alternates) {
		return fmt.Errorf("sim: PE %q has no alternate %d", g.PEs[pe].Name, alt)
	}
	a.e.sel[pe] = alt
	a.e.gammaDirty = true
	a.e.audit(AuditEntry{Action: "select-alternate", PE: pe, N: alt,
		Detail: g.PEs[pe].Alternates[alt].Name})
	return nil
}

// SelectRoute activates target index target of choice group group — the
// dynamic-paths control (§9): the whole sub-path behind the previous route
// stops receiving messages, the newly routed one starts.
func (a *Actions) SelectRoute(group, target int) error {
	g := a.e.cfg.Graph
	if group < 0 || group >= len(g.Choices) {
		return fmt.Errorf("sim: unknown choice group %d", group)
	}
	if target < 0 || target >= len(g.Choices[group].Targets) {
		return fmt.Errorf("sim: choice group %q has no target %d", g.Choices[group].Name, target)
	}
	a.e.routing[group] = target
	a.e.rebuildFlowCaches()
	a.e.audit(AuditEntry{Action: "select-route", PE: g.Choices[group].From, N: target,
		Detail: g.Choices[group].Name})
	return nil
}

// AcquireVM starts a new VM of the named class and returns its id. Without
// control-plane faults the VM is schedulable and billed from the current
// interval. Under ControlFaults the attempt may fail with a transient
// CapacityError, and a successful acquisition may return a pending VM that
// becomes schedulable — and billable — only after its randomized boot time
// (cores may still be reserved on it meanwhile).
func (a *Actions) AcquireVM(className string) (int, error) {
	class, ok := a.e.cfg.Menu.ByName(className)
	if !ok {
		return 0, fmt.Errorf("sim: unknown VM class %q", className)
	}
	if a.e.fleet.ActiveCount()+a.e.fleet.PendingCount() >= a.e.cfg.MaxVMs {
		return 0, fmt.Errorf("sim: fleet at MaxVMs=%d", a.e.cfg.MaxVMs)
	}
	cf := a.e.cfg.ControlFaults
	attempt := a.e.acquireAttempts
	a.e.acquireAttempts++
	if cf.acquireFails(class.Name, attempt, a.e.clock) {
		a.e.acquireFailures++
		a.e.audit(AuditEntry{Action: "acquire-failed", Detail: class.Name})
		return 0, &CapacityError{Class: class.Name, Sec: a.e.clock}
	}
	boot := cf.bootDelaySec(attempt)
	vm, err := a.e.fleet.AcquireDelayed(class, a.e.clock, a.e.clock+boot)
	if err != nil {
		return 0, err
	}
	vm.TraceID = a.e.vmTraceID(vm.ID)
	if boot > 0 {
		a.e.audit(AuditEntry{Action: "pending-vm", VM: vm.ID, N: int(boot), Detail: class.Name})
	} else {
		a.e.audit(AuditEntry{Action: "acquire-vm", VM: vm.ID, Detail: class.Name})
	}
	return vm.ID, nil
}

// ReleaseVM stops a VM. All cores must have been unassigned first;
// remaining message buffers were already migrated by UnassignCores.
func (a *Actions) ReleaseVM(vmID int) error {
	// Migrate any residual buffered messages before the VM disappears.
	for pe := range a.e.pes {
		p := &a.e.pes[pe]
		if s := p.slotOf(vmID); s >= 0 && p.queue[s] > 0 {
			a.e.migrateQueue(pe, vmID)
		}
	}
	if err := a.e.fleet.Release(vmID, a.e.clock); err != nil {
		return err
	}
	a.e.vmMon.Forget(vmID)
	a.e.netMon.ForgetVM(vmID)
	a.e.audit(AuditEntry{Action: "release-vm", VM: vmID})
	return nil
}

// AssignCores gives PE pe n additional cores on VM vmID.
func (a *Actions) AssignCores(pe, vmID, n int) error {
	g := a.e.cfg.Graph
	if pe < 0 || pe >= g.N() {
		return fmt.Errorf("sim: assign cores to unknown PE %d", pe)
	}
	if err := a.e.fleet.AssignCores(vmID, n, a.e.clock); err != nil {
		return err
	}
	p := &a.e.pes[pe]
	p.cores[p.ensureSlot(vmID)] += n
	a.e.audit(AuditEntry{Action: "assign-cores", PE: pe, VM: vmID, N: n})
	return nil
}

// UnassignCores takes n cores of PE pe on VM vmID back. If the PE no longer
// runs on that VM, its buffered messages there migrate to its remaining
// VMs, paying the network transfer (§5).
func (a *Actions) UnassignCores(pe, vmID, n int) error {
	g := a.e.cfg.Graph
	if pe < 0 || pe >= g.N() {
		return fmt.Errorf("sim: unassign cores from unknown PE %d", pe)
	}
	p := &a.e.pes[pe]
	s := p.slotOf(vmID)
	have := 0
	if s >= 0 {
		have = p.cores[s]
	}
	if n <= 0 || n > have {
		return fmt.Errorf("sim: PE %q has %d cores on VM %d, cannot unassign %d",
			g.PEs[pe].Name, have, vmID, n)
	}
	if err := a.e.fleet.UnassignCores(vmID, n); err != nil {
		return err
	}
	if have == n {
		p.cores[s] = 0
		if p.queue[s] > 0 {
			a.e.migrateQueue(pe, vmID)
		}
	} else {
		p.cores[s] = have - n
	}
	a.e.audit(AuditEntry{Action: "unassign-cores", PE: pe, VM: vmID, N: n})
	return nil
}

// MovePE migrates all of the PE's cores from one VM to another (scale
// out/in across instances, §5's PE migration control). The destination must
// have enough free cores.
func (a *Actions) MovePE(pe, fromVM, toVM, n int) error {
	if fromVM == toVM {
		return fmt.Errorf("sim: move PE %d onto the same VM %d", pe, fromVM)
	}
	if err := a.AssignCores(pe, toVM, n); err != nil {
		return err
	}
	if err := a.UnassignCores(pe, fromVM, n); err != nil {
		// Roll back the assignment to stay consistent.
		_ = a.UnassignCores(pe, toVM, n)
		return err
	}
	return nil
}

// Menu is a convenience passthrough for policies constructing class names.
func (a *Actions) Menu() *cloud.Menu { return a.e.cfg.Menu }

// Log implements Control: it appends a free-form audit entry (no-op unless
// Config.Audit is set).
func (a *Actions) Log(action, detail string) {
	a.e.audit(AuditEntry{Action: action, Detail: detail})
}

var _ DecisionSink = (*Actions)(nil)

// Decide implements DecisionSink: the decision lands in the audit log and
// the trace stream through the same path as control actions, so the two
// views of a run stay 1:1.
func (a *Actions) Decide(d obs.Decision) {
	a.e.audit(AuditEntry{Action: obs.EventDecision, PE: d.PE, Decision: &d})
}

// DecisionsObserved implements DecisionSink.
func (a *Actions) DecisionsObserved() bool {
	return a.e.tracer != nil || a.e.cfg.Audit
}
