package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// AuditEntry records one control action a scheduler took, with the
// simulation time it took effect — the decision trace an operator of such
// a system would want when asking "why did the bill spike at 3am".
type AuditEntry struct {
	Sec    int64  `json:"sec"`
	Action string `json:"action"`
	PE     int    `json:"pe,omitempty"`
	VM     int    `json:"vm,omitempty"`
	N      int    `json:"n,omitempty"`
	// Lost counts the messages destroyed by this event (crash/preempt
	// entries), so replays show why throughput dipped.
	Lost   float64 `json:"lost,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// String renders the entry as one log line.
func (a AuditEntry) String() string {
	s := fmt.Sprintf("t=%ds %s pe=%d vm=%d n=%d", a.Sec, a.Action, a.PE, a.VM, a.N)
	if a.Lost > 0 {
		s += fmt.Sprintf(" lost=%.0f", a.Lost)
	}
	if a.Detail != "" {
		s += " " + a.Detail
	}
	return s
}

// audit appends an entry when auditing is enabled.
func (e *Engine) audit(entry AuditEntry) {
	if !e.cfg.Audit {
		return
	}
	entry.Sec = e.clock
	e.auditLog = append(e.auditLog, entry)
}

// AuditLog returns the recorded actions (empty unless Config.Audit).
func (e *Engine) AuditLog() []AuditEntry { return e.auditLog }

// WriteAuditJSONL streams the audit log as JSON lines.
func (e *Engine) WriteAuditJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, entry := range e.auditLog {
		if err := enc.Encode(entry); err != nil {
			return err
		}
	}
	return nil
}
