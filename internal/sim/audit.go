package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"dynamicdf/internal/obs"
)

// AuditEntry records one control action a scheduler took, with the
// simulation time it took effect — the decision trace an operator of such
// a system would want when asking "why did the bill spike at 3am".
//
// It is a thin adapter over the obs.Event model: the engine records
// obs.Events internally (and streams them through an attached tracer), and
// this type preserves the original audit JSON encoding byte-for-byte.
type AuditEntry struct {
	Sec    int64  `json:"sec"`
	Action string `json:"action"`
	PE     int    `json:"pe,omitempty"`
	VM     int    `json:"vm,omitempty"`
	N      int    `json:"n,omitempty"`
	// Lost counts the messages destroyed by this event (crash/preempt
	// entries), so replays show why throughput dipped.
	Lost   float64 `json:"lost,omitempty"`
	Detail string  `json:"detail,omitempty"`
	// Tenant names the dataflow the action concerns in multi-tenant runs;
	// empty otherwise, keeping single-tenant logs byte-identical.
	Tenant string `json:"tenant,omitempty"`
	// Decision carries the structured provenance of "decision" entries.
	// Nil for every legacy action, so pre-provenance audit logs encode
	// byte-identically.
	Decision *obs.Decision `json:"decision,omitempty"`
}

// String renders the entry as one log line.
func (a AuditEntry) String() string {
	s := fmt.Sprintf("t=%ds %s pe=%d vm=%d n=%d", a.Sec, a.Action, a.PE, a.VM, a.N)
	if a.Lost > 0 {
		s += fmt.Sprintf(" lost=%.0f", a.Lost)
	}
	if a.Detail != "" {
		s += " " + a.Detail
	}
	if a.Decision != nil {
		s += " " + a.Decision.String()
	}
	return s
}

// event converts the entry to its obs.Event form (the fields map 1:1; the
// audit action name is the event type).
func (a AuditEntry) event() obs.Event {
	return obs.Event{Sec: a.Sec, Type: a.Action, PE: a.PE, VM: a.VM, N: a.N,
		Lost: a.Lost, Detail: a.Detail, Tenant: a.Tenant, Decision: a.Decision}
}

// auditFromEvent converts an event back to the legacy audit form.
func auditFromEvent(ev obs.Event) AuditEntry {
	return AuditEntry{Sec: ev.Sec, Action: ev.Type, PE: ev.PE, VM: ev.VM, N: ev.N,
		Lost: ev.Lost, Detail: ev.Detail, Tenant: ev.Tenant, Decision: ev.Decision}
}

// audit records one control action: it is stamped with the current clock,
// streamed to the attached tracer (if any), and — when Config.Audit is set
// — retained for AuditLog/WriteAuditJSONL.
func (e *Engine) audit(entry AuditEntry) {
	// Tally crash/preempt events before the fast-path return: the
	// audit-consistency invariant cross-checks these against the counters
	// maintained where VMs die, regardless of whether a tracer is attached.
	switch entry.Action {
	case obs.EventCrash:
		e.crashEvents++
	case obs.EventPreempt:
		e.preemptEvents++
	}
	if e.tracer == nil && !e.cfg.Audit {
		return
	}
	entry.Sec = e.clock
	ev := entry.event()
	e.tracer.Emit(ev)
	if e.cfg.Audit {
		e.auditLog = append(e.auditLog, ev)
	}
}

// trace emits an engine-internal trace event (step spans, run spans, QoS
// violations) that does not belong to the audit log. Nil-safe and
// allocation-free while no tracer is attached.
func (e *Engine) trace(ev obs.Event) {
	if e.tracer == nil {
		return
	}
	ev.Sec = e.clock
	e.tracer.Emit(ev)
}

// SetTracer attaches (or, with nil, detaches) an event tracer. Attach
// before Run: the tracer receives every control action plus step and run
// spans, independent of Config.Audit.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// SetGauges attaches (or, with nil, detaches) the live metric gauge set the
// engine updates at the end of every interval.
func (e *Engine) SetGauges(g *obs.RunGauges) {
	e.gauges = g
	e.bindTenantGauges()
}

// SetProfiler attaches (or, with nil, detaches) the per-stage profiler the
// step pipeline feeds. Attach before Run.
func (e *Engine) SetProfiler(p *obs.StageProfiler) {
	e.profiler = p
	e.registerStages()
}

// AuditLog returns the recorded actions (empty unless Config.Audit).
func (e *Engine) AuditLog() []AuditEntry {
	out := make([]AuditEntry, 0, len(e.auditLog))
	for _, ev := range e.auditLog {
		out = append(out, auditFromEvent(ev))
	}
	return out
}

// WriteAuditJSONL streams the audit log as JSON lines.
func (e *Engine) WriteAuditJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range e.auditLog {
		if err := enc.Encode(auditFromEvent(ev)); err != nil {
			return err
		}
	}
	return nil
}
