// Package sim is a discrete-interval simulator for continuous dataflows on
// an elastic IaaS cloud — the substrate the paper's evaluation runs on
// (§8.1). It advances a fluid-flow model of the dataflow in fixed intervals:
// external messages arrive at input PEs according to rate profiles, PEs
// process messages on the CPU cores assigned to them (scaled by replayed
// per-VM performance coefficients), inter-VM edges are capped by replayed
// pairwise bandwidth, unprocessed messages queue in per-VM buffers, and VM
// usage is billed at hour boundaries. A Scheduler drives deployment and
// runtime adaptation through a monitored View and a constrained Actions API,
// exactly mirroring the control surface the paper's heuristics assume.
package sim

import (
	"errors"
	"fmt"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/trace"
)

// Config assembles a simulation scenario.
type Config struct {
	// Graph is the dynamic dataflow to execute.
	Graph *dataflow.Graph
	// Menu lists the VM classes available for acquisition.
	Menu *cloud.Menu
	// Perf supplies runtime infrastructure behaviour (trace replay or
	// ideal). Nil defaults to trace.NewIdeal().
	Perf trace.Provider
	// Inputs maps every input PE index to its external rate profile.
	Inputs map[int]rates.Profile
	// IntervalSec is the adaptation interval length (default 60).
	IntervalSec int64
	// HorizonSec is the total simulated time (must be a positive multiple
	// of IntervalSec).
	HorizonSec int64
	// Seed decorrelates VM trace-window assignment between runs.
	Seed int64
	// MonitorAlpha is the EWMA smoothing for monitored rates and
	// coefficients (default 0.5).
	MonitorAlpha float64
	// MaxVMs bounds fleet growth as a safety net against runaway policies
	// (default 512).
	MaxVMs int
	// Failures injects VM crashes (default: none). Applies to every VM.
	Failures FailureModel
	// Preemption additionally reclaims preemptible-class (spot) VMs; it is
	// ignored for on-demand classes. Typical spot markets preempt far more
	// often than hardware fails.
	Preemption FailureModel
	// ControlFaults degrades the control plane itself: provisioning delays,
	// transient acquisition failures, and stale/noisy monitoring (default:
	// a perfectly reliable control plane).
	ControlFaults *ControlFaults
	// Audit records every scheduler action (AuditLog / WriteAuditJSONL).
	Audit bool
	// Tracer, when non-nil, receives a structured obs event for every
	// control action plus run/step spans and QoS violations. Equivalent to
	// calling Engine.SetTracer before Run.
	Tracer *obs.Tracer
	// Gauges, when non-nil, is updated with live run state (omega, cores,
	// fleet, backlog, cost) at the end of every interval. Equivalent to
	// calling Engine.SetGauges before Run.
	Gauges *obs.RunGauges
	// StageSpans additionally emits a stage-span pair (obs.EventStage) around
	// every pipeline stage of every interval when a tracer is attached —
	// provision, faults, arrivals, rehome, flow, billing, observe, check.
	// Off by default to keep existing trace streams byte-stable.
	StageSpans bool
	// Profiler, when non-nil, records per-stage wall time and allocation
	// deltas for every interval (obs.StageProfiler). Wall-clock readings
	// never enter the trace stream, so determinism is unaffected; nil costs
	// zero allocations on the hot path, like the tracer and checker hooks.
	// Equivalent to calling Engine.SetProfiler before Run.
	Profiler *obs.StageProfiler
	// OmegaFloor, when positive, is the QoS constraint Ω̃: intervals whose
	// relative throughput falls below it emit an omega-violation trace
	// event. Purely observational — it never alters the simulation.
	OmegaFloor float64
	// Checker, when non-nil, asserts conservation-style invariants over
	// engine state at the end of every interval (behind a nil-check hook,
	// like the tracer). A strict checker aborts the run with a typed
	// *invariant.Violation; a lenient one records violations (readable via
	// Engine.Checker) and emits an invariant-violation trace event.
	Checker *invariant.Checker
	// FlowWorkers shards the flow stage's per-PE computation across a worker
	// pool, one topological level at a time. 0 (the default) runs the stage
	// serially on the stepping goroutine. Any worker count produces results
	// byte-identical to the serial engine: the order-sensitive float folds
	// always run serially after the parallel section.
	FlowWorkers int
	// Tenants partitions Graph into independent dataflows sharing the fleet:
	// each entry scopes a contiguous PE (and choice-group) range of the
	// composite graph to one tenant with its own Ω floor and priority. Empty
	// means the classic single-tenant run, whose behaviour and output bytes
	// are unchanged.
	Tenants []Tenant
}

// Tenant scopes one dataflow of a multi-tenant run to a contiguous slice of
// the composite graph. The scenario builder lowers a tenants block onto one
// shared graph and fills these ranges; the engine keeps dense per-tenant
// tallies (Ω, Γ, attributed spend) indexed by position in Config.Tenants.
type Tenant struct {
	// Name labels the tenant in metrics columns, gauge labels, trace events,
	// and decisions.
	Name string
	// LoPE/HiPE bound the tenant's PEs in the composite graph: [LoPE, HiPE).
	LoPE, HiPE int
	// LoChoice/HiChoice bound the tenant's choice groups (routing slots) in
	// the composite graph: [LoChoice, HiChoice).
	LoChoice, HiChoice int
	// OmegaFloor is the tenant's QoS constraint Ω̃: intervals where the
	// tenant's relative throughput falls below it emit a tenant-tagged
	// omega-violation event. 0 disables the check.
	OmegaFloor float64
	// Priority ranks the tenant for fairness arbitration (higher wins).
	Priority int
	// Graph is the tenant's standalone dataflow — the same shape as the
	// composite PEs [LoPE, HiPE), with local indices. Per-tenant Γ is
	// computed against it.
	Graph *dataflow.Graph
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if c.Graph == nil {
		return errors.New("sim: config needs a graph")
	}
	if c.Menu == nil {
		return errors.New("sim: config needs a VM class menu")
	}
	if c.Perf == nil {
		c.Perf = trace.NewIdeal()
	}
	if c.IntervalSec == 0 {
		c.IntervalSec = 60
	}
	if c.IntervalSec <= 0 {
		return fmt.Errorf("sim: interval %d <= 0", c.IntervalSec)
	}
	if c.HorizonSec <= 0 || c.HorizonSec%c.IntervalSec != 0 {
		return fmt.Errorf("sim: horizon %d must be a positive multiple of interval %d", c.HorizonSec, c.IntervalSec)
	}
	if c.MonitorAlpha == 0 {
		c.MonitorAlpha = 0.5
	}
	if !(c.MonitorAlpha > 0 && c.MonitorAlpha <= 1) {
		return fmt.Errorf("sim: monitor alpha %v outside (0,1]", c.MonitorAlpha)
	}
	if c.MaxVMs == 0 {
		c.MaxVMs = 512
	}
	if c.MaxVMs < 1 {
		return fmt.Errorf("sim: max VMs %d < 1", c.MaxVMs)
	}
	inputs := c.Graph.Inputs()
	if len(c.Inputs) != len(inputs) {
		return fmt.Errorf("sim: %d input profiles for %d input PEs", len(c.Inputs), len(inputs))
	}
	for _, pe := range inputs {
		if c.Inputs[pe] == nil {
			return fmt.Errorf("sim: missing rate profile for input PE %q", c.Graph.PEs[pe].Name)
		}
	}
	for pe := range c.Inputs {
		if pe < 0 || pe >= c.Graph.N() || len(c.Graph.Predecessors(pe)) != 0 {
			return fmt.Errorf("sim: profile attached to non-input PE %d", pe)
		}
	}
	if c.OmegaFloor < 0 || c.OmegaFloor > 1 {
		return fmt.Errorf("sim: omega floor %v outside [0,1]", c.OmegaFloor)
	}
	if c.FlowWorkers < 0 {
		return fmt.Errorf("sim: flow workers %d < 0", c.FlowWorkers)
	}
	if err := c.validateTenants(); err != nil {
		return err
	}
	return c.ControlFaults.normalize()
}

// validateTenants checks that the tenant ranges tile cleanly onto the
// composite graph: ascending, non-overlapping, with standalone graphs whose
// shape matches their composite slice.
func (c *Config) validateTenants() error {
	if len(c.Tenants) == 0 {
		return nil
	}
	seen := map[string]bool{}
	prevPE, prevChoice := 0, 0
	for i, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("sim: tenant %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("sim: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
		if t.LoPE < prevPE || t.LoPE >= t.HiPE || t.HiPE > c.Graph.N() {
			return fmt.Errorf("sim: tenant %q PE range [%d,%d) invalid or overlapping", t.Name, t.LoPE, t.HiPE)
		}
		nChoices := len(c.Graph.Choices)
		if t.LoChoice < prevChoice || t.LoChoice > t.HiChoice || t.HiChoice > nChoices {
			return fmt.Errorf("sim: tenant %q choice range [%d,%d) invalid or overlapping", t.Name, t.LoChoice, t.HiChoice)
		}
		if t.Graph == nil {
			return fmt.Errorf("sim: tenant %q has no standalone graph", t.Name)
		}
		if t.Graph.N() != t.HiPE-t.LoPE {
			return fmt.Errorf("sim: tenant %q graph has %d PEs, range holds %d", t.Name, t.Graph.N(), t.HiPE-t.LoPE)
		}
		if len(t.Graph.Choices) != t.HiChoice-t.LoChoice {
			return fmt.Errorf("sim: tenant %q graph has %d choices, range holds %d", t.Name, len(t.Graph.Choices), t.HiChoice-t.LoChoice)
		}
		if t.OmegaFloor < 0 || t.OmegaFloor > 1 {
			return fmt.Errorf("sim: tenant %q omega floor %v outside [0,1]", t.Name, t.OmegaFloor)
		}
		prevPE, prevChoice = t.HiPE, t.HiChoice
	}
	return nil
}

// Scheduler decides deployment and runtime adaptation. Deploy runs once
// before the first interval; Adapt runs at the start of every subsequent
// interval (the paper's periodic re-evaluation, §5). Policies receive the
// control surface as the Control interface so that middleware — such as
// resilient.Wrap's retrying, circuit-breaking layer — can interpose on
// every action without the policy knowing.
type Scheduler interface {
	// Name labels the policy in experiment output.
	Name() string
	// Deploy performs initial alternate selection and resource allocation
	// using estimated rates and rated VM performance.
	Deploy(v *View, act Control) error
	// Adapt reacts to the monitored state. It is first invoked after one
	// full interval has executed.
	Adapt(v *View, act Control) error
}
