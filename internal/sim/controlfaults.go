package sim

import (
	"errors"
	"fmt"
	"math"
)

// ControlFaults injects control-plane misbehaviour into a scenario: real
// IaaS clouds violate the seed model's three implicit assumptions that
// AcquireVM succeeds instantly, that an acquired VM is schedulable in the
// same interval, and that monitoring is noiseless and fresh. Like
// ExponentialFailures, every draw is a pure hash of the seed and the
// request's identity, so two runs with an identical Config produce
// byte-identical behaviour (and audit logs).
//
// All sub-configs are optional; a nil sub-config disables that fault class.
type ControlFaults struct {
	// Provisioning delays VM boot: acquired VMs enter a pending state and
	// only become schedulable — and billable — after a randomized boot time.
	Provisioning *ProvisioningFaults
	// Acquisition makes AcquireVM fail transiently with "insufficient
	// capacity" errors, optionally in bursts.
	Acquisition *AcquisitionFaults
	// Monitoring degrades View readings: probes are dropped (the monitor
	// holds its last-known-good value) or perturbed with multiplicative
	// noise before smoothing.
	Monitoring *MonitoringFaults
	// Seed decorrelates control-plane draws from the crash/preemption
	// models and between scenarios.
	Seed int64
}

// ProvisioningFaults parameterizes VM boot delays.
type ProvisioningFaults struct {
	// MeanBootSec is the mean provisioning delay, drawn exponentially per
	// acquisition. Zero disables delays.
	MeanBootSec int64
	// MaxBootSec caps a single draw (the long tail of stuck provisioning
	// requests). Defaults to 4x MeanBootSec.
	MaxBootSec int64
}

// AcquisitionFaults parameterizes transient acquisition failures.
type AcquisitionFaults struct {
	// FailProb is the baseline per-attempt probability that AcquireVM
	// returns a CapacityError.
	FailProb float64
	// PerClass overrides FailProb for specific class names (a provider can
	// be out of one instance type while others acquire fine).
	PerClass map[string]float64
	// BurstEverySec spaces error bursts: each window of this length
	// contains one burst at a seed-determined offset. Zero disables bursts.
	BurstEverySec int64
	// BurstLenSec is the burst duration. Defaults to BurstEverySec/6.
	BurstLenSec int64
	// BurstFailProb is the per-attempt failure probability during a burst.
	// Defaults to 0.95.
	BurstFailProb float64
	// AfterSec delays the onset of acquisition faults: attempts before this
	// simulation time always succeed. Lets a scenario deploy cleanly and
	// then degrade.
	AfterSec int64
}

// MonitoringFaults parameterizes degraded View readings.
type MonitoringFaults struct {
	// StaleProb is the per-probe probability that an observation is
	// dropped, leaving the monitor at its last-known-good estimate.
	StaleProb float64
	// NoiseFrac perturbs surviving observations multiplicatively by a
	// factor uniform in [1-NoiseFrac, 1+NoiseFrac). Must be < 1 so probes
	// stay positive.
	NoiseFrac float64
}

// CapacityError is the transient "insufficient capacity" failure an IaaS
// control plane returns when a class is temporarily unavailable. Detect it
// with IsCapacityError (or errors.As) to distinguish retryable failures
// from programming errors like an unknown class name or the MaxVMs quota.
type CapacityError struct {
	Class string
	Sec   int64
}

// Error implements error.
func (e *CapacityError) Error() string {
	return fmt.Sprintf("sim: insufficient %s capacity at t=%ds", e.Class, e.Sec)
}

// IsCapacityError reports whether err is (or wraps) a CapacityError.
func IsCapacityError(err error) bool {
	var ce *CapacityError
	return errors.As(err, &ce)
}

// normalize fills defaults and validates; safe on a nil receiver.
func (c *ControlFaults) normalize() error {
	if c == nil {
		return nil
	}
	if p := c.Provisioning; p != nil {
		if p.MeanBootSec < 0 {
			return fmt.Errorf("sim: mean boot delay %d < 0", p.MeanBootSec)
		}
		if p.MaxBootSec < 0 {
			return fmt.Errorf("sim: max boot delay %d < 0", p.MaxBootSec)
		}
		if p.MaxBootSec == 0 {
			p.MaxBootSec = 4 * p.MeanBootSec
		}
		if p.MaxBootSec < p.MeanBootSec {
			return fmt.Errorf("sim: max boot delay %d < mean %d", p.MaxBootSec, p.MeanBootSec)
		}
	}
	if a := c.Acquisition; a != nil {
		if !(a.FailProb >= 0 && a.FailProb <= 1) { // also rejects NaN
			return fmt.Errorf("sim: acquisition failure probability %v outside [0,1]", a.FailProb)
		}
		for name, p := range a.PerClass {
			if !(p >= 0 && p <= 1) {
				return fmt.Errorf("sim: acquisition failure probability %v for class %q outside [0,1]", p, name)
			}
		}
		if a.BurstEverySec < 0 || a.BurstLenSec < 0 {
			return fmt.Errorf("sim: burst timing (%d, %d) negative", a.BurstEverySec, a.BurstLenSec)
		}
		if a.AfterSec < 0 {
			return fmt.Errorf("sim: acquisition fault onset %d < 0", a.AfterSec)
		}
		if a.BurstEverySec > 0 {
			if a.BurstLenSec == 0 {
				a.BurstLenSec = a.BurstEverySec / 6
				if a.BurstLenSec < 1 {
					a.BurstLenSec = 1
				}
			}
			if a.BurstLenSec > a.BurstEverySec {
				return fmt.Errorf("sim: burst length %d exceeds spacing %d", a.BurstLenSec, a.BurstEverySec)
			}
			if a.BurstFailProb == 0 {
				a.BurstFailProb = 0.95
			}
		}
		if !(a.BurstFailProb >= 0 && a.BurstFailProb <= 1) {
			return fmt.Errorf("sim: burst failure probability %v outside [0,1]", a.BurstFailProb)
		}
	}
	if m := c.Monitoring; m != nil {
		if !(m.StaleProb >= 0 && m.StaleProb <= 1) {
			return fmt.Errorf("sim: monitor staleness probability %v outside [0,1]", m.StaleProb)
		}
		if !(m.NoiseFrac >= 0 && m.NoiseFrac < 1) {
			return fmt.Errorf("sim: monitor noise fraction %v outside [0,1)", m.NoiseFrac)
		}
	}
	return nil
}

// Draw-domain tags keep the fault streams independent of one another even
// when their keys collide.
const (
	drawBoot = iota + 1
	drawAcquire
	drawBurstOffset
	drawStaleRate
	drawStaleCPU
	drawStaleNet
	drawNoiseRate
	drawNoiseCPU
	drawNoiseNet
)

// unit maps a draw identity to a deterministic uniform value in [0,1).
func (c *ControlFaults) unit(domain int, key uint64, sec int64) float64 {
	h := splitmix64(uint64(c.Seed)*0x9e3779b97f4a7c15 ^ uint64(domain)<<56 ^ key*0x94d049bb133111eb ^ uint64(sec)*0xbf58476d1ce4e5b9)
	return float64(h>>11) / (1 << 53)
}

// hashString folds a class name into a draw key (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// bootDelaySec draws the provisioning delay for the attempt-th acquisition,
// or 0 when provisioning faults are disabled.
func (c *ControlFaults) bootDelaySec(attempt int64) int64 {
	if c == nil || c.Provisioning == nil || c.Provisioning.MeanBootSec <= 0 {
		return 0
	}
	u := c.unit(drawBoot, uint64(attempt), 0)
	if u <= 0 {
		u = 0.5 / (1 << 53)
	}
	d := int64(-math.Log(u) * float64(c.Provisioning.MeanBootSec))
	if d > c.Provisioning.MaxBootSec {
		d = c.Provisioning.MaxBootSec
	}
	return d
}

// inBurst reports whether time sec falls inside an error burst.
func (c *ControlFaults) inBurst(sec int64) bool {
	a := c.Acquisition
	if a.BurstEverySec <= 0 {
		return false
	}
	window := sec / a.BurstEverySec
	span := a.BurstEverySec - a.BurstLenSec + 1
	off := int64(c.unit(drawBurstOffset, uint64(window), 0) * float64(span))
	rel := sec % a.BurstEverySec
	return rel >= off && rel < off+a.BurstLenSec
}

// acquireFails decides whether the attempt-th AcquireVM call, for the named
// class at time sec, hits an insufficient-capacity error.
func (c *ControlFaults) acquireFails(class string, attempt, sec int64) bool {
	if c == nil || c.Acquisition == nil {
		return false
	}
	a := c.Acquisition
	if sec < a.AfterSec {
		return false
	}
	p := a.FailProb
	if over, ok := a.PerClass[class]; ok {
		p = over
	}
	if c.inBurst(sec) && a.BurstFailProb > p {
		p = a.BurstFailProb
	}
	if p <= 0 {
		return false
	}
	return c.unit(drawAcquire, hashString(class)^uint64(attempt)*0x9e3779b97f4a7c15, sec) < p
}

// probeStale reports whether the probe identified by (domain, key) at time
// sec is dropped, leaving the monitor at its last-known-good value.
func (c *ControlFaults) probeStale(domain int, key uint64, sec int64) bool {
	if c == nil || c.Monitoring == nil || c.Monitoring.StaleProb <= 0 {
		return false
	}
	return c.unit(domain, key, sec) < c.Monitoring.StaleProb
}

// probeNoise returns the multiplicative perturbation applied to the probe
// identified by (domain, key) at time sec, in [1-NoiseFrac, 1+NoiseFrac).
func (c *ControlFaults) probeNoise(domain int, key uint64, sec int64) float64 {
	if c == nil || c.Monitoring == nil || c.Monitoring.NoiseFrac <= 0 {
		return 1
	}
	return 1 + c.Monitoring.NoiseFrac*(2*c.unit(domain, key, sec)-1)
}
