package sim

import (
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/obs"
)

// Checker returns the attached invariant checker (nil when checking is off),
// for reading recorded violations after a lenient run.
func (e *Engine) Checker() *invariant.Checker { return e.checker }

// InvariantViolations reports how many invariant violations this run has
// recorded: the attached checker's count, plus — on an engine restored from
// a checkpoint — the violations the snapshot was taken with, so the total
// matches an uninterrupted run's.
func (e *Engine) InvariantViolations() int {
	if e.checker == nil {
		return e.restoredViolations
	}
	return e.restoredViolations + e.checker.Count()
}

// checkStep hands the end-of-interval engine state to the attached invariant
// checker. It is the nil-safe hook step() calls unconditionally: with no
// checker attached it returns immediately and costs zero allocations, like
// the disabled tracer hook. With a checker it fills the reused State buffer
// (flow fields were populated during the step), runs every law, mirrors the
// violation count into the gauges, traces the first violation of the step,
// and — for a strict checker — returns the typed *invariant.Violation that
// aborts the run.
func (e *Engine) checkStep(omega, gamma, costUSD, backlog float64) error {
	if e.checker == nil {
		return nil
	}
	st := e.invState
	st.Sec = e.clock
	st.IntervalSec = e.cfg.IntervalSec
	st.Omega = omega
	st.Gamma = gamma
	st.GammaMin = e.gammaMin
	st.GammaMax = e.gammaMax
	st.CostUSD = costUSD
	st.PrevCostUSD = e.prevCost
	st.Backlog = backlog
	st.LostMessages = e.lostMessages
	st.MigratedBytes = e.migratedBytes
	st.Crashes = e.crashCount
	st.Preemptions = e.preemptions
	st.CrashEvents = e.crashEvents
	st.PreemptEvents = e.preemptEvents
	if len(st.TenantOmega) > 0 {
		copy(st.TenantOmega, e.tenLastOmega)
	}

	minQ := 0.0
	for pe := range e.pes {
		p := &e.pes[pe]
		tot := 0.0
		for s := range p.queue {
			q := p.queue[s]
			tot += q
			if q < minQ {
				minQ = q
			}
		}
		st.QueueAfter[pe] = tot
	}
	st.MinQueue = minQ

	st.VMs = st.VMs[:0]
	for _, vm := range e.fleet.All() {
		st.VMs = append(st.VMs, invariant.VMState{
			ID:         vm.ID,
			RatedCores: vm.Class.Cores,
			UsedCores:  vm.UsedCores,
			Stopped:    vm.Stopped(),
			Pending:    vm.Pending(),
			BilledUSD:  vm.AccruedCost(e.clock),
		})
	}
	st.Placements = st.Placements[:0]
	for pe := range e.pes {
		p := &e.pes[pe]
		for s, vmID := range p.vms {
			if p.cores[s] > 0 {
				st.Placements = append(st.Placements, invariant.Placement{
					PE: pe, VM: vmID, Cores: p.cores[s]})
			}
		}
	}

	v := e.checker.Check(st)
	e.prevCost = costUSD
	if e.gauges != nil {
		e.gauges.Violations.Set(float64(e.InvariantViolations()))
	}
	if v == nil {
		return nil
	}
	e.trace(obs.Event{Type: obs.EventInvariantViolation, Value: omega,
		Detail: v.Law + ": " + v.Msg})
	if e.checker.Strict {
		return v
	}
	return nil
}

// alternateValueRange returns the global [min, max] alternate value across
// every PE — the bound Γ must respect, since RoutedValue is a mean of
// selected alternates' values over the routing-reachable PEs.
func alternateValueRange(g *dataflow.Graph) (lo, hi float64) {
	first := true
	for i := range g.PEs {
		for _, a := range g.PEs[i].Alternates {
			if first || a.Value < lo {
				lo = a.Value
			}
			if first || a.Value > hi {
				hi = a.Value
			}
			first = false
		}
	}
	return lo, hi
}
