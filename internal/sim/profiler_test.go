package sim

import (
	"testing"

	"dynamicdf/internal/obs"
)

// TestProfilerRecordsStages runs an engine with the stage profiler attached
// and asserts every pipeline stage was sampled once per interval, in
// pipeline order.
func TestProfilerRecordsStages(t *testing.T) {
	cfg := baseConfig(chainGraph(1), 4, 3600)
	cfg.Profiler = obs.NewStageProfiler(nil)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Run(&fixed{deploy: deployEven})
	if err != nil {
		t.Fatal(err)
	}
	stats := cfg.Profiler.Snapshot()
	if len(stats) != len(stepStages) {
		t.Fatalf("profiled %d stages, pipeline has %d", len(stats), len(stepStages))
	}
	for i, s := range stats {
		if s.Name != stepStages[i].name {
			t.Fatalf("stage %d profiled as %q, pipeline names it %q", i, s.Name, stepStages[i].name)
		}
		if s.Count != int64(sum.Intervals) {
			t.Fatalf("stage %q sampled %d times over %d intervals", s.Name, s.Count, sum.Intervals)
		}
	}
}

// TestProfilerAttachedLate covers SetProfiler: attaching after construction
// (dftrace profile, restored engines) must register the stages too.
func TestProfilerAttachedLate(t *testing.T) {
	e, err := NewEngine(baseConfig(chainGraph(1), 4, 3600))
	if err != nil {
		t.Fatal(err)
	}
	p := obs.NewStageProfiler(nil)
	e.SetProfiler(p)
	if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
		t.Fatal(err)
	}
	if stats := p.Snapshot(); len(stats) != len(stepStages) || stats[0].Count == 0 {
		t.Fatalf("late-attached profiler recorded nothing: %+v", stats)
	}
}

// TestDetachedProfilerZeroAlloc guards the hot path: with no profiler
// attached the per-stage hook must not allocate.
func TestDetachedProfilerZeroAlloc(t *testing.T) {
	e, err := NewEngine(baseConfig(chainGraph(1), 4, 3600))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.profEnd(0, e.profBegin())
	})
	if allocs != 0 {
		t.Fatalf("detached profiler hook allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkEngineStepProfiler measures the per-stage profiling hook. The
// hook/disabled case must report 0 allocs/op — enforced by ci.sh alongside
// the disabled-tracer and disabled-checker guarantees.
func BenchmarkEngineStepProfiler(b *testing.B) {
	b.Run("hook/disabled", func(b *testing.B) {
		e, err := NewEngine(baseConfig(chainGraph(1), 4, 3600))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.profEnd(0, e.profBegin())
		}
	})
	for _, profiled := range []bool{false, true} {
		name := "run/profiler=off"
		if profiled {
			name = "run/profiler=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := baseConfig(chainGraph(1), 4, 3600)
				if profiled {
					cfg.Profiler = obs.NewStageProfiler(nil)
				}
				e, err := NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
