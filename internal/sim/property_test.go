package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/rates"
)

// randomPipelineDAG builds a random layered DAG with unit selectivities.
func randomPipelineDAG(rng *rand.Rand) *dataflow.Graph {
	n := 3 + rng.Intn(6)
	pes := make([]*dataflow.PE, n)
	for i := range pes {
		pes[i] = &dataflow.PE{
			Name: "pe" + string(rune('A'+i)),
			Alternates: []dataflow.Alternate{
				dataflow.Alt("only", 1, 0.05+rng.Float64()*0.4, 1),
			},
		}
	}
	var edges []dataflow.Edge
	for i := 1; i < n; i++ {
		// Every PE after the first gets at least one upstream edge, so
		// there is exactly one input component and no orphans.
		from := rng.Intn(i)
		edges = append(edges, dataflow.Edge{From: from, To: i})
		if rng.Float64() < 0.3 && i >= 2 {
			other := rng.Intn(i)
			if other != from {
				edges = append(edges, dataflow.Edge{From: other, To: i})
			}
		}
	}
	g, err := dataflow.NewGraph(pes, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// TestPropertyAmpleCapacityGivesFullThroughput: for random DAGs with ample
// per-PE capacity on an ideal cloud, every interval must report omega = 1
// and zero backlog — the conservation invariant of the flow computation.
func TestPropertyAmpleCapacityGivesFullThroughput(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomPipelineDAG(rng)
		rate := 1 + rng.Float64()*5
		profiles := map[int]rates.Profile{}
		for _, pe := range g.Inputs() {
			c, err := rates.NewConstant(rate)
			if err != nil {
				t.Fatal(err)
			}
			profiles[pe] = c
		}
		cfg := Config{
			Graph:      g,
			Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
			Inputs:     profiles,
			HorizonSec: 1800,
			MaxVMs:     256,
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
			// One xlarge per PE: 8 ECU each, far beyond any demand here.
			for pe := 0; pe < g.N(); pe++ {
				id, err := act.AcquireVM("m1.xlarge")
				if err != nil {
					return err
				}
				if err := act.AssignCores(pe, id, 4); err != nil {
					return err
				}
			}
			return nil
		}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(sum.MeanOmega-1) > 1e-9 {
			t.Fatalf("seed %d (%s): omega %v with ample capacity", seed, g, sum.MeanOmega)
		}
		if sum.MeanBacklog > 1e-9 {
			t.Fatalf("seed %d: backlog %v with ample capacity", seed, sum.MeanBacklog)
		}
		// Output rate at sinks equals the propagated expectation.
		sel := dataflow.DefaultSelection(g)
		in := dataflow.InputRates{}
		for pe := range profiles {
			in[pe] = rate
		}
		_, expOut, err := dataflow.PropagateRates(g, sel, in)
		if err != nil {
			t.Fatal(err)
		}
		wantOut := 0.0
		for _, pe := range g.Outputs() {
			wantOut += expOut[pe]
		}
		pts := e.Collector().Points()
		got := pts[len(pts)-1].OutputRate
		if math.Abs(got-wantOut) > 1e-6*(1+wantOut) {
			t.Fatalf("seed %d: output %v, expected %v", seed, got, wantOut)
		}
	}
}

// TestPropertyInvariantsHoldAcrossSeeds runs every randomized DAG with the
// invariant checker in strict mode across 36 seeds, cycling the simulator's
// harder paths: scarce capacity (queues build), VM crashes, a mid-run
// scale-up that drains backlog, and cooperative cancellation. Any violated
// conservation law aborts the run and fails the seed.
func TestPropertyInvariantsHoldAcrossSeeds(t *testing.T) {
	const interval = int64(60)
	for seed := int64(0); seed < 36; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%02d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1000 + seed))
			g := randomPipelineDAG(rng)
			rate := 1 + rng.Float64()*8
			profiles := map[int]rates.Profile{}
			for _, pe := range g.Inputs() {
				c, err := rates.NewConstant(rate)
				if err != nil {
					t.Fatal(err)
				}
				profiles[pe] = c
			}
			cfg := Config{
				Graph:      g,
				Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
				Inputs:     profiles,
				HorizonSec: 3600,
				Seed:       seed,
				MaxVMs:     256,
				Checker:    invariant.NewStrict(),
			}
			faulty := seed%2 == 1
			if faulty {
				cfg.Failures = ExponentialFailures{MTBFSec: 1200, Seed: seed}
			}
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Deploy scarce: one m1.small core per PE, so expensive PEs
			// backlog. Halfway through, the drain path kicks in: an
			// m1.xlarge per PE clears the queues.
			scaledUp := false
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			canceling := seed%8 == 3
			sched := &fixed{
				deploy: func(v *View, act Control) error {
					for pe := 0; pe < g.N(); pe++ {
						id, err := act.AcquireVM("m1.small")
						if err != nil {
							return err
						}
						if err := act.AssignCores(pe, id, 1); err != nil {
							return err
						}
					}
					return nil
				},
				adapt: func(v *View, act Control) error {
					if canceling && e.Now() >= 10*interval {
						cancel()
						return nil
					}
					if !scaledUp && e.Now() >= 1800 {
						scaledUp = true
						for pe := 0; pe < g.N(); pe++ {
							id, err := act.AcquireVM("m1.xlarge")
							if err != nil {
								return err
							}
							if err := act.AssignCores(pe, id, 4); err != nil {
								return err
							}
						}
					}
					return nil
				},
			}
			_, err = e.RunContext(ctx, sched)
			switch {
			case canceling:
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("canceled run returned %v", err)
				}
			case err != nil:
				if v, ok := invariant.As(err); ok {
					t.Fatalf("law %q violated at t=%ds: %s", v.Law, v.Sec, v.Msg)
				}
				t.Fatal(err)
			}
			if n := e.InvariantViolations(); n != 0 {
				t.Fatalf("%d violations recorded: %v", n, e.Checker().Violations())
			}
			if faulty && !canceling && e.Crashes() == 0 {
				t.Logf("seed %d: fault model produced no crashes this horizon", seed)
			}
		})
	}
}
