package sim

import (
	"math"
	"math/rand"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
)

// randomPipelineDAG builds a random layered DAG with unit selectivities.
func randomPipelineDAG(rng *rand.Rand) *dataflow.Graph {
	n := 3 + rng.Intn(6)
	pes := make([]*dataflow.PE, n)
	for i := range pes {
		pes[i] = &dataflow.PE{
			Name: "pe" + string(rune('A'+i)),
			Alternates: []dataflow.Alternate{
				dataflow.Alt("only", 1, 0.05+rng.Float64()*0.4, 1),
			},
		}
	}
	var edges []dataflow.Edge
	for i := 1; i < n; i++ {
		// Every PE after the first gets at least one upstream edge, so
		// there is exactly one input component and no orphans.
		from := rng.Intn(i)
		edges = append(edges, dataflow.Edge{From: from, To: i})
		if rng.Float64() < 0.3 && i >= 2 {
			other := rng.Intn(i)
			if other != from {
				edges = append(edges, dataflow.Edge{From: other, To: i})
			}
		}
	}
	g, err := dataflow.NewGraph(pes, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// TestPropertyAmpleCapacityGivesFullThroughput: for random DAGs with ample
// per-PE capacity on an ideal cloud, every interval must report omega = 1
// and zero backlog — the conservation invariant of the flow computation.
func TestPropertyAmpleCapacityGivesFullThroughput(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomPipelineDAG(rng)
		rate := 1 + rng.Float64()*5
		profiles := map[int]rates.Profile{}
		for _, pe := range g.Inputs() {
			c, err := rates.NewConstant(rate)
			if err != nil {
				t.Fatal(err)
			}
			profiles[pe] = c
		}
		cfg := Config{
			Graph:      g,
			Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
			Inputs:     profiles,
			HorizonSec: 1800,
			MaxVMs:     256,
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
			// One xlarge per PE: 8 ECU each, far beyond any demand here.
			for pe := 0; pe < g.N(); pe++ {
				id, err := act.AcquireVM("m1.xlarge")
				if err != nil {
					return err
				}
				if err := act.AssignCores(pe, id, 4); err != nil {
					return err
				}
			}
			return nil
		}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(sum.MeanOmega-1) > 1e-9 {
			t.Fatalf("seed %d (%s): omega %v with ample capacity", seed, g, sum.MeanOmega)
		}
		if sum.MeanBacklog > 1e-9 {
			t.Fatalf("seed %d: backlog %v with ample capacity", seed, sum.MeanBacklog)
		}
		// Output rate at sinks equals the propagated expectation.
		sel := dataflow.DefaultSelection(g)
		in := dataflow.InputRates{}
		for pe := range profiles {
			in[pe] = rate
		}
		_, expOut, err := dataflow.PropagateRates(g, sel, in)
		if err != nil {
			t.Fatal(err)
		}
		wantOut := 0.0
		for _, pe := range g.Outputs() {
			wantOut += expOut[pe]
		}
		pts := e.Collector().Points()
		got := pts[len(pts)-1].OutputRate
		if math.Abs(got-wantOut) > 1e-6*(1+wantOut) {
			t.Fatalf("seed %d: output %v, expected %v", seed, got, wantOut)
		}
	}
}
