package sim

import (
	"context"
	"fmt"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
)

// multiTenantBenchConfig composes `tenants` copies of a levels x width
// layered DAG onto one engine, one tenant per copy, each with its own
// constant trickle on every input.
func multiTenantBenchConfig(tenants, levels, width int) Config {
	b := dataflow.NewBuilder()
	name := func(tn, level, col int) string { return fmt.Sprintf("t%d/pe_%d_%d", tn, level, col) }
	for tn := 0; tn < tenants; tn++ {
		for level := 0; level < levels; level++ {
			for col := 0; col < width; col++ {
				b.AddPE(name(tn, level, col), dataflow.Alt("only", 1, 0.05, 1))
			}
		}
		for level := 1; level < levels; level++ {
			for col := 0; col < width; col++ {
				b.Connect(name(tn, level-1, col), name(tn, level, col))
				if col%2 == 0 {
					b.Connect(name(tn, level-1, (col+1)%width), name(tn, level, col))
				}
			}
		}
	}
	g := b.MustBuild()
	inputs := make(map[int]rates.Profile, tenants*width)
	for _, pe := range g.Inputs() {
		c, err := rates.NewConstant(1)
		if err != nil {
			panic(err)
		}
		inputs[pe] = c
	}
	// One standalone per-tenant graph serves every tenant: all copies are
	// structurally identical and the engine only reads it.
	tg := largeLayeredDAG(levels, width)
	per := levels * width
	cfg := Config{
		Graph:      g,
		Menu:       cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:     inputs,
		HorizonSec: 60 << 32,
	}
	for tn := 0; tn < tenants; tn++ {
		cfg.Tenants = append(cfg.Tenants, Tenant{
			Name: fmt.Sprintf("t%d", tn), LoPE: tn * per, HiPE: (tn + 1) * per,
			OmegaFloor: 0.7, Graph: tg,
		})
	}
	return cfg
}

// BenchmarkEngineStepMultiTenant measures steady-state stepping with the
// tenant dimension hot: 8 tenants x 125 PEs (1000 PEs total), per-tenant
// Ω/Γ/spend folds and floor checks every interval. Must stay 0 allocs/op
// like the single-tenant arena path.
func BenchmarkEngineStepMultiTenant(b *testing.B) {
	cfg := multiTenantBenchConfig(8, 25, 5)
	e, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.RunUntil(context.Background(), &fixed{deploy: deployLargeDAG}, 0); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.step(); err != nil {
			b.Fatal(err)
		}
	}
	e.Collector().Reserve(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.step(); err != nil {
			b.Fatal(err)
		}
	}
}
