package sim

import (
	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
)

// View is the read-only window a scheduler gets onto the running system. It
// exposes exactly what the paper's monitoring framework provides (§4-§5):
// measured data rates, smoothed per-VM performance coefficients, pairwise
// network behaviour, current allocation, queue lengths and throughput — not
// the engine's internal ground truth.
type View struct {
	e *Engine
	// ten scopes the view to one tenant of a multi-tenant run: 0 is the
	// global (whole-graph) view, i+1 the view of cfg.Tenants[i]. A scoped
	// view translates PE and choice indices to the tenant's local numbering
	// and reports the tenant's own graph, Ω, and rates; fleet-level methods
	// (ActiveVMs, TotalCost, MaxVMs, ...) stay global — the fleet is shared.
	ten int
}

// NewView builds a read-only view over an engine, for tools and tests that
// inspect state outside a Scheduler callback.
func NewView(e *Engine) *View { return &View{e: e} }

// tenantScope returns the scoping tenant, or nil for the global view.
func (v *View) tenantScope() *Tenant {
	if v.ten == 0 {
		return nil
	}
	return &v.e.cfg.Tenants[v.ten-1]
}

// gpe translates a view-local PE index to the composite graph's numbering.
func (v *View) gpe(pe int) int {
	if t := v.tenantScope(); t != nil {
		return pe + t.LoPE
	}
	return pe
}

// Now returns the simulation time in seconds.
func (v *View) Now() int64 { return v.e.clock }

// IntervalSec returns the adaptation interval length.
func (v *View) IntervalSec() int64 { return v.e.cfg.IntervalSec }

// Graph returns the dataflow being executed — the scoping tenant's own
// graph on a tenant view.
func (v *View) Graph() *dataflow.Graph {
	if t := v.tenantScope(); t != nil {
		return t.Graph
	}
	return v.e.cfg.Graph
}

// Menu returns the VM class menu.
func (v *View) Menu() *cloud.Menu { return v.e.cfg.Menu }

// Selection returns a copy of the current alternate selection (the tenant's
// slice on a tenant view).
func (v *View) Selection() dataflow.Selection {
	if t := v.tenantScope(); t != nil {
		return append(dataflow.Selection(nil), v.e.sel[t.LoPE:t.HiPE]...)
	}
	return v.e.sel.Clone()
}

// Routing returns a copy of the current choice-group routing (the tenant's
// slice on a tenant view).
func (v *View) Routing() dataflow.Routing {
	if t := v.tenantScope(); t != nil {
		return append(dataflow.Routing(nil), v.e.routing[t.LoChoice:t.HiChoice]...)
	}
	return v.e.routing.Clone()
}

// EstimatedInputRate returns the best current estimate of the external rate
// at an input PE: the smoothed measured rate once the dataflow has run, or
// the profile's declared initial rate before t0 (the paper's "estimated
// input data rates at each input PE" given at submission).
func (v *View) EstimatedInputRate(pe int) float64 {
	pe = v.gpe(pe)
	var initial float64
	if prof, ok := v.e.cfg.Inputs[pe]; ok {
		initial = prof.Rate(v.e.clock)
	}
	return v.e.rateEst.Estimate(pe, initial)
}

// EstimatedInputRates returns estimates for every input PE — on a tenant
// view, the tenant's own inputs under its local numbering.
func (v *View) EstimatedInputRates() dataflow.InputRates {
	in := dataflow.InputRates{}
	if t := v.tenantScope(); t != nil {
		for pe := range v.e.cfg.Inputs {
			if pe >= t.LoPE && pe < t.HiPE {
				in[pe-t.LoPE] = v.EstimatedInputRate(pe - t.LoPE)
			}
		}
		return in
	}
	for pe := range v.e.cfg.Inputs {
		in[pe] = v.EstimatedInputRate(pe)
	}
	return in
}

// VMInfo describes one active VM as the scheduler sees it.
type VMInfo struct {
	ID        int
	Class     *cloud.Class
	UsedCores int
	FreeCores int
	// CPUCoeff is the monitored (EWMA) normalized performance coefficient;
	// 1.0 for a VM never probed (assumed rated).
	CPUCoeff float64
	// SecsToHourBoundary is the time until the next paid hour.
	SecsToHourBoundary int64
	// StartSec is when the VM was acquired.
	StartSec int64
}

// ActiveVMs lists the running VMs.
func (v *View) ActiveVMs() []VMInfo {
	var out []VMInfo
	for _, vm := range v.e.fleet.Active() {
		out = append(out, VMInfo{
			ID:                 vm.ID,
			Class:              vm.Class,
			UsedCores:          vm.UsedCores,
			FreeCores:          vm.FreeCores(),
			CPUCoeff:           v.e.vmMon.CPUCoeff(vm.ID, 1.0),
			SecsToHourBoundary: vm.SecondsToHourBoundary(v.e.clock),
			StartSec:           vm.StartSec,
		})
	}
	return out
}

// PendingVM describes one VM still provisioning: acquired (and possibly
// carrying reserved cores), but not yet schedulable or billable.
type PendingVM struct {
	ID    int
	Class *cloud.Class
	// UsedCores counts cores already reserved on the provisioning VM; they
	// start processing the moment it boots.
	UsedCores int
	// ReadySec is when provisioning completes and the VM becomes
	// schedulable.
	ReadySec int64
	// StartSec is when the acquisition was issued.
	StartSec int64
}

// PendingVMs lists the VMs still provisioning, in id order. Policies use it
// to avoid double-provisioning while capacity is already on the way.
func (v *View) PendingVMs() []PendingVM {
	var out []PendingVM
	for _, vm := range v.e.fleet.Pending() {
		out = append(out, PendingVM{ID: vm.ID, Class: vm.Class, UsedCores: vm.UsedCores,
			ReadySec: vm.ReadySec, StartSec: vm.StartSec})
	}
	return out
}

// VM returns info for one active VM.
func (v *View) VM(id int) (VMInfo, bool) {
	vm, err := v.e.fleet.Get(id)
	if err != nil || !vm.Active() {
		return VMInfo{}, false
	}
	return VMInfo{
		ID:                 vm.ID,
		Class:              vm.Class,
		UsedCores:          vm.UsedCores,
		FreeCores:          vm.FreeCores(),
		CPUCoeff:           v.e.vmMon.CPUCoeff(vm.ID, 1.0),
		SecsToHourBoundary: vm.SecondsToHourBoundary(v.e.clock),
		StartSec:           vm.StartSec,
	}, true
}

// Assignment is one (VM, cores) slice of a PE's data-parallel allocation.
type Assignment struct {
	VMID  int
	Cores int
}

// Assignments returns the PE's current core allocation, in VM id order.
func (v *View) Assignments(pe int) []Assignment {
	var out []Assignment
	p := &v.e.pes[v.gpe(pe)]
	for s, vmID := range p.vms {
		n := p.cores[s]
		if n <= 0 {
			continue
		}
		vm, err := v.e.fleet.Get(vmID)
		if err != nil || !vm.Active() {
			continue
		}
		out = append(out, Assignment{VMID: vmID, Cores: n})
	}
	return out
}

// AssignedCores returns the PE's total core count.
func (v *View) AssignedCores(pe int) int {
	total := 0
	for _, n := range v.e.pes[v.gpe(pe)].cores {
		total += n
	}
	return total
}

// MonitoredCapacity returns the PE's processing capacity in msg/s computed
// from monitored coefficients (what the heuristics believe, not ground
// truth).
func (v *View) MonitoredCapacity(pe int) float64 {
	pe = v.gpe(pe)
	alt := v.e.sel.Alt(v.e.cfg.Graph, pe)
	total := 0.0
	p := &v.e.pes[pe]
	for s, vmID := range p.vms {
		n := p.cores[s]
		if n <= 0 {
			continue
		}
		vm, err := v.e.fleet.Get(vmID)
		if err != nil || !vm.Active() {
			continue
		}
		coeff := v.e.vmMon.CPUCoeff(vmID, 1.0)
		total += float64(n) * vm.Class.CoreSpeed * coeff / alt.Cost
	}
	return total
}

// EstimatedLatencySec returns the mean queueing latency observed over the
// last interval (backlog over capacity, averaged across hosting VMs), or 0
// before any interval has run.
func (v *View) EstimatedLatencySec() float64 {
	if !v.e.stepped {
		return 0
	}
	return v.e.lastLatency
}

// Omega returns the relative application throughput observed over the last
// interval — the scoping tenant's own Ω on a tenant view — or 1 before any
// interval has run.
func (v *View) Omega() float64 {
	if !v.e.stepped {
		return 1
	}
	if v.ten > 0 {
		return v.e.tenLastOmega[v.ten-1]
	}
	return v.e.lastOmega
}

// MeanOmega returns the average relative throughput over the optimization
// period so far (the constraint's left-hand side), or 1 before t0. Scoped
// to the tenant on a tenant view.
func (v *View) MeanOmega() float64 {
	if v.e.omegaN == 0 {
		return 1
	}
	if v.ten > 0 {
		return v.e.tenOmegaSum[v.ten-1] / float64(v.e.omegaN)
	}
	return v.e.omegaSum / float64(v.e.omegaN)
}

// PEThroughput returns the PE's own last-interval relative throughput
// (observed output / expected output), 1 before any interval. The
// deployment heuristics use the lowest value to find the bottleneck.
func (v *View) PEThroughput(pe int) float64 {
	if !v.e.stepped {
		return 1
	}
	pe = v.gpe(pe)
	exp := v.e.lastPEExp[pe]
	if exp <= 0 {
		return 1
	}
	r := v.e.lastPEOut[pe] / exp
	if r > 1 {
		r = 1
	}
	return r
}

// ObservedArrivalRate returns the PE's measured arrival rate (msg/s) over
// the last interval.
func (v *View) ObservedArrivalRate(pe int) float64 {
	if !v.e.stepped {
		return 0
	}
	return v.e.lastPEIn[v.gpe(pe)]
}

// Backlog returns the messages queued for the PE across all VMs.
func (v *View) Backlog(pe int) float64 {
	return v.e.pes[v.gpe(pe)].totalQueue()
}

// Bandwidth returns the monitored bandwidth (Mbps) between two VMs, falling
// back to the rated 100 Mbps deployment assumption.
func (v *View) Bandwidth(a, b int) float64 {
	return v.e.netMon.Bandwidth(a, b, 100)
}

// Latency returns the monitored latency (seconds) between two VMs.
func (v *View) Latency(a, b int) float64 {
	return v.e.netMon.Latency(a, b, 0.0005)
}

// TotalCost returns mu(t): dollars billed so far.
func (v *View) TotalCost() float64 { return v.e.fleet.TotalCost(v.e.clock) }

// MaxVMs returns the acquisition quota (the elasticity limit policies must
// plan within).
func (v *View) MaxVMs() int { return v.e.cfg.MaxVMs }

// HourlyBurnRate returns the active fleet's $/hour.
func (v *View) HourlyBurnRate() float64 { return v.e.fleet.HourlyBurnRate() }

// TenantCount returns the number of tenants (0 for single-tenant runs).
func (v *View) TenantCount() int { return len(v.e.cfg.Tenants) }

// TenantInfo returns tenant i's descriptor (name, ranges, floor, priority).
func (v *View) TenantInfo(i int) Tenant { return v.e.cfg.Tenants[i] }

// Tenant returns a view scoped to tenant i: PE and choice indices become the
// tenant's local numbering, Graph/Selection/Routing/Omega/rates report the
// tenant's own dataflow, and fleet-level methods stay global.
func (v *View) Tenant(i int) *View { return &View{e: v.e, ten: i + 1} }

// TenantMeanOmega returns tenant i's mean relative throughput over the
// period so far, or 1 before t0.
func (v *View) TenantMeanOmega(i int) float64 {
	if v.e.omegaN == 0 {
		return 1
	}
	return v.e.tenOmegaSum[i] / float64(v.e.omegaN)
}

// TenantSpendUSD returns the cumulative dollars attributed to tenant i.
func (v *View) TenantSpendUSD(i int) float64 { return v.e.tenSpend[i] }
