package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/invariant"
	"dynamicdf/internal/obs"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/state"
)

// ckptSched is a deterministic, stateful test policy: its decisions depend
// on an internal tick counter, so a restore that forgot scheduler state
// would visibly diverge from the uninterrupted run.
type ckptSched struct {
	ticks int
	vms   []int
}

func (s *ckptSched) Name() string { return "ckpt-test" }

func (s *ckptSched) Deploy(v *View, act Control) error {
	for pe := 0; pe < v.Graph().N(); pe++ {
		// Bounded retry over injected transient acquisition failures.
		var id int
		var err error
		for try := 0; try < 10; try++ {
			if id, err = act.AcquireVM("m1.large"); err == nil {
				break
			}
			if !IsCapacityError(err) {
				return err
			}
		}
		if err != nil {
			return err
		}
		s.vms = append(s.vms, id)
		if err := act.AssignCores(pe, id, 2); err != nil {
			return err
		}
	}
	return nil
}

func (s *ckptSched) Adapt(v *View, act Control) error {
	s.ticks++
	pe := s.ticks % v.Graph().N()
	switch {
	case s.ticks%3 == 1:
		// Grow: transient acquisition failures are tolerated, like a real
		// policy under control-plane faults.
		if id, err := act.AcquireVM("m1.medium"); err == nil {
			s.vms = append(s.vms, id)
			if err := act.AssignCores(pe, id, 1); err != nil && !IsCapacityError(err) {
				return err
			}
		} else if !IsCapacityError(err) {
			return err
		}
	case s.ticks%7 == 2 && len(s.vms) > v.Graph().N():
		// Shrink from the tail; a VM that already crashed is fine to skip.
		id := s.vms[len(s.vms)-1]
		s.vms = s.vms[:len(s.vms)-1]
		_ = act.ReleaseVM(id)
	}
	return nil
}

type ckptSchedState struct {
	Ticks int   `json:"ticks"`
	VMs   []int `json:"vms"`
}

func (s *ckptSched) CheckpointState() ([]byte, error) {
	return json.Marshal(ckptSchedState{Ticks: s.ticks, VMs: s.vms})
}

func (s *ckptSched) RestoreState(blob []byte) error {
	var st ckptSchedState
	if err := json.Unmarshal(blob, &st); err != nil {
		return err
	}
	s.ticks, s.vms = st.Ticks, st.VMs
	return nil
}

var _ StatefulScheduler = (*ckptSched)(nil)

func ckptConfig(t *testing.T, seed int64, tracer *obs.Tracer) Config {
	rng := rand.New(rand.NewSource(seed))
	g := randomPipelineDAG(rng)
	profiles := map[int]rates.Profile{}
	for _, pe := range g.Inputs() {
		w, err := rates.NewWave(4+rng.Float64()*6, 3, 600)
		if err != nil {
			t.Fatal(err)
		}
		profiles[pe] = w
	}
	return Config{
		Graph:       g,
		Menu:        cloud.MustMenu(cloud.AWS2013Classes()),
		Inputs:      profiles,
		IntervalSec: 60,
		HorizonSec:  1800,
		Seed:        seed,
		MaxVMs:      256,
		Failures:    ExponentialFailures{MTBFSec: 3 * 3600, Seed: seed},
		ControlFaults: &ControlFaults{
			Provisioning: &ProvisioningFaults{MeanBootSec: 90},
			Acquisition:  &AcquisitionFaults{FailProb: 0.1},
			Monitoring:   &MonitoringFaults{StaleProb: 0.1, NoiseFrac: 0.05},
			Seed:         seed,
		},
		Audit:   true,
		Tracer:  tracer,
		Checker: invariant.New(),
	}
}

// TestCheckpointRestoreByteIdentical is the round-trip property: for random
// scenarios (random DAGs, wave inputs, crashes, control-plane faults), a run
// interrupted at a random interval — checkpoint, Encode, Decode, Restore
// onto a fresh engine and a fresh scheduler — produces byte-identical trace
// and audit streams, the same metric points, and the same summary as the
// uninterrupted run.
func TestCheckpointRestoreByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		var coldTrace bytes.Buffer
		coldCfg := ckptConfig(t, seed, obs.NewTracer(&coldTrace))
		coldEng, err := NewEngine(coldCfg)
		if err != nil {
			t.Fatal(err)
		}
		coldSum, err := coldEng.Run(&ckptSched{})
		if err != nil {
			t.Fatalf("seed %d: cold run: %v", seed, err)
		}

		// Warm: same scenario, paused at a seed-dependent boundary. The
		// prefix and the resumed run share one trace buffer, so the
		// concatenated stream must equal the cold one byte for byte.
		var warmTrace bytes.Buffer
		warmCfg := ckptConfig(t, seed, obs.NewTracer(&warmTrace))
		prefixEng, err := NewEngine(warmCfg)
		if err != nil {
			t.Fatal(err)
		}
		intervals := warmCfg.HorizonSec / warmCfg.IntervalSec
		k := 1 + seed%(intervals-1)
		if err := prefixEng.RunUntil(context.Background(), &ckptSched{}, k*warmCfg.IntervalSec); err != nil {
			t.Fatalf("seed %d: prefix: %v", seed, err)
		}
		snap, err := prefixEng.Checkpoint()
		if err != nil {
			t.Fatalf("seed %d: checkpoint: %v", seed, err)
		}
		blob, err := state.Encode(snap)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := state.Decode(blob)
		if err != nil {
			t.Fatalf("seed %d: decode own snapshot: %v", seed, err)
		}
		warmEng, err := Restore(decoded, warmCfg)
		if err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		warmSum, err := warmEng.Run(&ckptSched{})
		if err != nil {
			t.Fatalf("seed %d: resumed run: %v", seed, err)
		}

		if !reflect.DeepEqual(warmSum, coldSum) {
			t.Errorf("seed %d: summary diverged after restore at t=%ds:\ncold %+v\nwarm %+v",
				seed, k*60, coldSum, warmSum)
		}
		if !bytes.Equal(coldTrace.Bytes(), warmTrace.Bytes()) {
			t.Errorf("seed %d: trace streams diverged after restore at t=%ds", seed, k*60)
		}
		coldAudit, warmAudit := coldEng.AuditLog(), warmEng.AuditLog()
		if len(coldAudit) != len(warmAudit) {
			t.Fatalf("seed %d: audit lengths %d vs %d", seed, len(coldAudit), len(warmAudit))
		}
		for i := range coldAudit {
			if coldAudit[i] != warmAudit[i] {
				t.Fatalf("seed %d: audit entry %d: %v vs %v", seed, i, coldAudit[i], warmAudit[i])
			}
		}
		var coldCSV, warmCSV bytes.Buffer
		if err := coldEng.Collector().WriteCSV(&coldCSV); err != nil {
			t.Fatal(err)
		}
		if err := warmEng.Collector().WriteCSV(&warmCSV); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(coldCSV.Bytes(), warmCSV.Bytes()) {
			t.Errorf("seed %d: metric CSVs diverged", seed)
		}
		if coldEng.InvariantViolations() != warmEng.InvariantViolations() {
			t.Errorf("seed %d: violations %d vs %d", seed,
				coldEng.InvariantViolations(), warmEng.InvariantViolations())
		}
	}
}

// TestCheckpointDoesNotPerturbRun: taking a checkpoint mid-run must not
// change the continuing run's behaviour — the engine is observed, not
// consumed.
func TestCheckpointDoesNotPerturbRun(t *testing.T) {
	var plain, observed bytes.Buffer
	cfgA := ckptConfig(t, 3, obs.NewTracer(&plain))
	a, err := NewEngine(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	sumA, err := a.Run(&ckptSched{})
	if err != nil {
		t.Fatal(err)
	}

	cfgB := ckptConfig(t, 3, obs.NewTracer(&observed))
	b, err := NewEngine(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	sched := &ckptSched{}
	for _, at := range []int64{300, 600, 1200} {
		if err := b.RunUntil(context.Background(), sched, at); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	sumB, err := b.RunContext(context.Background(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sumA, sumB) || !bytes.Equal(plain.Bytes(), observed.Bytes()) {
		t.Fatal("mid-run checkpoints perturbed the run")
	}
}

// TestRestoreRejectsMismatchedConfig: a snapshot only restores onto a config
// that agrees on the deterministic world.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	cfg := ckptConfig(t, 1, nil)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(context.Background(), &ckptSched{}, 300); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	badSeed := cfg
	badSeed.Seed = cfg.Seed + 1
	if _, err := Restore(snap, badSeed); err == nil {
		t.Error("restore accepted a different seed")
	}
	badInterval := cfg
	badInterval.IntervalSec = 30
	if _, err := Restore(snap, badInterval); err == nil {
		t.Error("restore accepted a different interval")
	}
	badGraph := ckptConfig(t, 6, nil) // different random DAG size with high probability
	if badGraph.Graph.N() != cfg.Graph.N() {
		if _, err := Restore(snap, badGraph); err == nil {
			t.Error("restore accepted a different graph")
		}
	}
	if _, err := Restore(nil, cfg); err == nil {
		t.Error("restore accepted a nil snapshot")
	}
	// The original config still works.
	if _, err := Restore(snap, cfg); err != nil {
		t.Errorf("restore onto the original config failed: %v", err)
	}
}

// TestRestoreSharedSnapshotIsolated: two engines restored from one snapshot
// do not share mutable state.
func TestRestoreSharedSnapshotIsolated(t *testing.T) {
	cfg := ckptConfig(t, 2, nil)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(context.Background(), &ckptSched{}, 600); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Restore(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Restore(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum1, err := r1.Run(&ckptSched{})
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := r2.Run(&ckptSched{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum1, sum2) {
		t.Fatalf("forked runs diverged: %+v vs %+v", sum1, sum2)
	}
}
