package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestAuditLogRecordsActions(t *testing.T) {
	g := chainGraph(0.5)
	cfg := baseConfig(g, 5, 1800)
	cfg.Audit = true
	e, _ := NewEngine(cfg)
	released := false
	_, err := e.Run(&fixed{
		deploy: deployEven,
		adapt: func(v *View, act Control) error {
			if released {
				return nil
			}
			released = true
			as := v.Assignments(1)
			if err := act.UnassignCores(1, as[0].VMID, 1); err != nil {
				return err
			}
			return act.SelectAlternate(0, 0)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	log := e.AuditLog()
	if len(log) == 0 {
		t.Fatal("no audit entries")
	}
	counts := map[string]int{}
	for _, entry := range log {
		counts[entry.Action]++
	}
	if counts["acquire-vm"] != 2 {
		t.Fatalf("acquire-vm entries = %d", counts["acquire-vm"])
	}
	if counts["assign-cores"] != 2 || counts["unassign-cores"] != 1 {
		t.Fatalf("core entries = %v", counts)
	}
	if counts["select-alternate"] != 1 {
		t.Fatalf("alternate entries = %d", counts["select-alternate"])
	}
	// Entries carry the simulation time: deployment at t=0, adaptation
	// after the first interval.
	if log[0].Sec != 0 {
		t.Fatalf("first entry at t=%d", log[0].Sec)
	}
	last := log[len(log)-1]
	if last.Sec == 0 {
		t.Fatal("adaptation entry missing its timestamp")
	}
	if !strings.Contains(last.String(), "select-alternate") {
		t.Fatalf("String() = %q", last.String())
	}
}

func TestAuditDisabledByDefault(t *testing.T) {
	g := chainGraph(0.5)
	cfg := baseConfig(g, 5, 600)
	e, _ := NewEngine(cfg)
	if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
		t.Fatal(err)
	}
	if len(e.AuditLog()) != 0 {
		t.Fatal("audit recorded without opt-in")
	}
}

func TestWriteAuditJSONL(t *testing.T) {
	g := chainGraph(0.5)
	cfg := baseConfig(g, 5, 600)
	cfg.Audit = true
	e, _ := NewEngine(cfg)
	if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteAuditJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(e.AuditLog()) {
		t.Fatalf("jsonl lines = %d, entries = %d", len(lines), len(e.AuditLog()))
	}
	var entry AuditEntry
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Action != "acquire-vm" {
		t.Fatalf("first action = %q", entry.Action)
	}
}
