package sim

import (
	"fmt"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/monitor"
	"dynamicdf/internal/obs"
)

// This file is the interval pipeline: Engine.step() executes one simulated
// interval [clock, clock+interval) as an ordered sequence of named stages,
// each a method over the shared stepContext. The order is load-bearing —
// every stage documents what engine state it may mutate, and the
// invariant-checker's conservation law depends on the rehome stage's
// snapshot point. With Config.StageSpans set (and a tracer attached) every
// stage is bracketed by a stage-span pair for per-stage latency analysis.
//
//	provision  complete pending VMs whose boot time arrived
//	faults     crash VMs whose sampled lifetime expired
//	arrivals   read rate profiles; expected (uncapped) propagation
//	rehome     move unassigned-queue messages onto hosting VMs;
//	           snapshot QueueBefore for the conservation law
//	flow       the fluid-flow computation: process, queue, deliver; Omega
//	billing    advance the clock; bill the interval; census the fleet
//	observe    feed the monitors; publish last-interval observations,
//	           gauges, and the metrics point
//	check      run the invariant checker; close the step span
type stepStage struct {
	name string
	run  func(*Engine, *stepContext) error
}

// stepStages is the pipeline, in execution order.
var stepStages = []stepStage{
	{"provision", (*Engine).stageProvision},
	{"faults", (*Engine).stageFaults},
	{"arrivals", (*Engine).stageArrivals},
	{"rehome", (*Engine).stageRehome},
	{"flow", (*Engine).stageFlow},
	{"billing", (*Engine).stageBilling},
	{"observe", (*Engine).stageObserve},
	{"check", (*Engine).stageCheck},
}

// stepContext carries one interval's intermediate values between stages.
type stepContext struct {
	sec int64   // clock at the interval's start (the clock advances in billing)
	dt  float64 // interval length in seconds

	// arrivals.
	extRate map[int]float64 // external msg/s per input PE
	totalIn float64
	expOut  []float64 // expected (uncapped) output rate per PE

	// flow.
	arrivals     []map[int]float64 // msg/s arriving per (PE, hosting VM)
	observedOut  []float64
	observedIn   []float64
	totalBacklog float64
	latencyAccum float64
	latencyN     int
	omega        float64
	totalOut     float64

	// billing.
	costUSD    float64
	active     []*cloud.VM
	usedCores  int
	pendingVMs int

	// observe.
	meanLatency float64
	gamma       float64
}

// step simulates one interval [clock, clock+interval) by running the stage
// pipeline in order. A stage error aborts the interval (and the run).
func (e *Engine) step() error {
	c := stepContext{sec: e.clock, dt: float64(e.cfg.IntervalSec)}
	spans := e.cfg.StageSpans && e.tracer != nil
	for i, st := range stepStages {
		if spans {
			e.trace(obs.Event{Type: obs.EventStage, Phase: obs.PhaseStart, Detail: st.name})
		}
		mark := e.profBegin()
		err := st.run(e, &c)
		e.profEnd(i, mark)
		if spans {
			e.trace(obs.Event{Type: obs.EventStage, Phase: obs.PhaseEnd, Detail: st.name})
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// registerStages maps the pipeline's stage positions onto the attached
// profiler's dense indices. Idempotent; a no-op with no profiler.
func (e *Engine) registerStages() {
	if e.profiler == nil {
		e.profIdx = nil
		return
	}
	e.profIdx = make([]int, len(stepStages))
	for i, st := range stepStages {
		e.profIdx[i] = e.profiler.StageIndex(st.name)
	}
}

// profBegin/profEnd are the per-stage profiler hook. Like the tracer and
// checker hooks they are nil-guarded so a detached profiler costs zero
// allocations on the step hot path (the mark lives on the caller's stack).
func (e *Engine) profBegin() obs.StageMark {
	if e.profiler == nil {
		return obs.StageMark{}
	}
	return e.profiler.Begin()
}

func (e *Engine) profEnd(i int, m obs.StageMark) {
	if e.profiler == nil {
		return
	}
	e.profiler.End(e.profIdx[i], m)
}

// stageProvision opens the step span and completes provisioning for pending
// VMs whose boot time arrived, so this interval runs on the newly booted
// capacity. Mutates: fleet pending flags, audit log.
func (e *Engine) stageProvision(c *stepContext) error {
	e.trace(obs.Event{Type: obs.EventStep, Phase: obs.PhaseStart})
	for _, vm := range e.fleet.MakeReady(c.sec) {
		e.audit(AuditEntry{Action: "vm-ready", VM: vm.ID, N: int(c.sec - vm.StartSec),
			Detail: vm.Class.Name})
	}
	return nil
}

// stageFaults crashes VMs whose lifetime expired before this interval's
// flow runs, so the interval executes on the surviving capacity. Mutates:
// fleet, cores, queues, loss/crash counters, monitors, audit log.
func (e *Engine) stageFaults(c *stepContext) error {
	return e.crashDueVMs(c.sec)
}

// stageArrivals reads the external arrival rates for this interval and
// computes the expected (uncapped) propagation for Def. 4's denominator.
// Mutates: nothing on the engine (pure reads into the context).
func (e *Engine) stageArrivals(c *stepContext) error {
	c.extRate = make(map[int]float64, len(e.cfg.Inputs))
	for _, pe := range e.inputKeys {
		r := e.cfg.Inputs[pe].Rate(c.sec)
		if r < 0 {
			return fmt.Errorf("sim: profile for PE %d returned negative rate %v", pe, r)
		}
		c.extRate[pe] = r
		c.totalIn += r
	}
	inRates := dataflow.InputRates{}
	for pe, r := range c.extRate {
		inRates[pe] = r
	}
	var err error
	_, c.expOut, err = dataflow.PropagateRatesRouted(e.cfg.Graph, e.sel, e.routing, inRates)
	return err
}

// stageRehome moves messages that buffered while a PE had no cores (virtual
// VM -1) onto real hosting VMs as soon as capacity exists, then snapshots
// per-PE queue totals for the conservation law. This point — after crash
// cleanup and unassigned-queue rehoming, both of which move or destroy
// messages outside the interval's flow accounting — is where
// QueueBefore + In·dt = Processed·dt + QueueAfter holds exactly. Mutates:
// queues, invState.QueueBefore.
func (e *Engine) stageRehome(c *stepContext) error {
	g := e.cfg.Graph
	for pe := 0; pe < g.N(); pe++ {
		if q := e.queue[pe][-1]; q > 0 {
			total, perVM := e.peCapacity(pe, c.sec)
			if total > 0 {
				delete(e.queue[pe], -1)
				e.keyBuf = sortedKeysInto(perVM, e.keyBuf)
				for _, vmID := range e.keyBuf {
					e.queue[pe][vmID] += q * perVM[vmID] / total
				}
			}
		}
		if e.invState != nil {
			tot := 0.0
			e.keyBuf = sortedKeysInto(e.queue[pe], e.keyBuf)
			for _, vmID := range e.keyBuf {
				tot += e.queue[pe][vmID]
			}
			e.invState.QueueBefore[pe] = tot
		}
	}
	return nil
}

// stageFlow runs the fluid-flow computation in topological order: per-VM
// processing bounded by capacity, backlog drain, queueing-latency
// accumulation, and delivery to successors capped by pairwise bandwidth —
// then derives Omega (Def. 4). Mutates: queues, invState.In/Processed.
func (e *Engine) stageFlow(c *stepContext) error {
	g := e.cfg.Graph
	c.arrivals = make([]map[int]float64, g.N())
	for i := range c.arrivals {
		c.arrivals[i] = map[int]float64{}
	}
	c.observedOut = make([]float64, g.N())
	c.observedIn = make([]float64, g.N())

	// Seed external arrivals, split across the input PE's VMs.
	for pe, r := range c.extRate {
		e.splitArrival(pe, r, c.arrivals[pe])
	}

	for _, pe := range e.topoOrder {
		alt := e.sel.Alt(g, pe)
		_, perVMcap := e.peCapacity(pe, c.sec)
		// Process per hosting VM: arrivals plus backlog drain, bounded by
		// capacity.
		processed := 0.0
		arrivalTotal := 0.0
		for _, vmID := range sortedKeys(c.arrivals[pe]) {
			arr := c.arrivals[pe][vmID]
			arrivalTotal += arr
			cap := perVMcap[vmID]
			q := e.queue[pe][vmID]
			avail := arr + q/c.dt
			p := avail
			if p > cap {
				p = cap
			}
			newQ := q + (arr-p)*c.dt
			if newQ < 1e-9 {
				newQ = 0
			}
			e.queue[pe][vmID] = newQ
			processed += p
			if cap > 0 {
				c.latencyAccum += newQ / cap
				c.latencyN++
			}
		}
		// Backlog on VMs with no arrivals this interval still drains.
		for _, vmID := range sortedKeys(e.queue[pe]) {
			q := e.queue[pe][vmID]
			if _, seen := c.arrivals[pe][vmID]; seen || q == 0 {
				continue
			}
			cap := perVMcap[vmID]
			p := q / c.dt
			if p > cap {
				p = cap
			}
			newQ := q - p*c.dt
			if newQ < 1e-9 {
				newQ = 0
			}
			e.queue[pe][vmID] = newQ
			processed += p
			if cap > 0 {
				c.latencyAccum += newQ / cap
				c.latencyN++
			}
		}
		c.observedIn[pe] = arrivalTotal
		out := processed * alt.Selectivity
		c.observedOut[pe] = out
		if e.invState != nil {
			e.invState.In[pe] = arrivalTotal
			e.invState.Processed[pe] = processed
		}

		// Deliver to successors: duplicate the full output onto each
		// outgoing edge (and-split), splitting across destination VMs by
		// capacity and capping each VM-pair sub-flow by bandwidth.
		if out > 0 {
			msgBytes := g.MsgBytes(pe)
			srcShare := e.outputShares(pe, perVMcap, processed)
			for _, succ := range g.ActiveSuccessors(pe, e.routing) {
				e.deliver(pe, succ, out, msgBytes, srcShare, c.sec, c.arrivals[succ])
			}
		}
		for _, vmID := range sortedKeys(e.queue[pe]) {
			c.totalBacklog += e.queue[pe][vmID]
		}
	}

	// Relative application throughput (Def. 4): mean over output PEs of
	// observed/expected, clamped to [0, 1].
	outs := g.Outputs()
	for _, pe := range outs {
		exp := c.expOut[pe]
		if exp <= 0 {
			c.omega += 1
			continue
		}
		r := c.observedOut[pe] / exp
		if r > 1 {
			r = 1
		}
		c.omega += r
	}
	c.omega /= float64(len(outs))
	for _, pe := range outs {
		c.totalOut += c.observedOut[pe]
	}
	return nil
}

// stageBilling advances the clock past the interval so the elapsed time is
// paid for, then takes the post-interval fleet census: cumulative cost,
// active and pending VM counts, and cores in use. Mutates: clock.
func (e *Engine) stageBilling(c *stepContext) error {
	e.clock += e.cfg.IntervalSec
	c.costUSD = e.fleet.TotalCost(e.clock)
	c.active = e.fleet.Active()
	c.pendingVMs = e.fleet.PendingCount()
	for _, vm := range c.active {
		c.usedCores += vm.UsedCores
	}
	return nil
}

// stageObserve feeds the monitors with this interval's observations and
// publishes the interval to every consumer-facing surface: the View's
// last-interval fields, the live gauges, and the metrics collector. Under
// degraded monitoring a probe may be dropped (the estimator keeps its
// last-known-good value) or perturbed with multiplicative noise before
// smoothing — what the heuristics then consume via View is exactly as
// wrong as a real monitoring framework's would be. Mutates: monitors,
// lastOmega/omegaSum/omegaN, lastPE* copies, lastLatency, stepped, gauges,
// collector.
func (e *Engine) stageObserve(c *stepContext) error {
	cf := e.cfg.ControlFaults
	for pe, r := range c.extRate {
		if cf.probeStale(drawStaleRate, uint64(pe), e.clock) {
			e.staleProbes++
			continue
		}
		e.rateEst.Observe(pe, r*cf.probeNoise(drawNoiseRate, uint64(pe), e.clock))
	}
	for _, vm := range c.active {
		if cf.probeStale(drawStaleCPU, uint64(vm.ID), e.clock) {
			e.staleProbes++
			continue
		}
		coeff := e.coeff(vm.ID, c.sec) * cf.probeNoise(drawNoiseCPU, uint64(vm.ID), e.clock)
		_ = e.vmMon.ObserveCPU(vm.ID, monitor.Probe{Sec: e.clock, CPUCoeff: coeff})
	}
	for i := 0; i < len(c.active); i++ {
		for j := i + 1; j < len(c.active); j++ {
			a, b := c.active[i], c.active[j]
			pair := uint64(a.ID)<<32 | uint64(b.ID)
			if cf.probeStale(drawStaleNet, pair, e.clock) {
				e.staleProbes++
				continue
			}
			lat := e.cfg.Perf.LatencySec(e.vmTraceID(a.ID), e.vmTraceID(b.ID), c.sec)
			bw := e.cfg.Perf.BandwidthMbps(e.vmTraceID(a.ID), e.vmTraceID(b.ID), c.sec)
			noise := cf.probeNoise(drawNoiseNet, pair, e.clock)
			_ = e.netMon.Observe(a.ID, b.ID, lat*noise, bw*noise)
		}
	}

	e.lastOmega = c.omega
	e.omegaSum += c.omega
	e.omegaN++
	copy(e.lastPEOut, c.observedOut)
	copy(e.lastPEExp, c.expOut)
	copy(e.lastPEIn, c.observedIn)
	e.stepped = true
	if c.latencyN > 0 {
		c.meanLatency = c.latencyAccum / float64(c.latencyN)
	}
	e.lastLatency = c.meanLatency
	var err error
	c.gamma, err = dataflow.RoutedValue(e.cfg.Graph, e.sel, e.routing)
	if err != nil {
		return err
	}
	if e.gauges != nil {
		e.gauges.Omega.Set(c.omega)
		e.gauges.Gamma.Set(c.gamma)
		e.gauges.InputRate.Set(c.totalIn)
		e.gauges.UsedCores.Set(float64(c.usedCores))
		e.gauges.PendingVMs.Set(float64(c.pendingVMs))
		e.gauges.ActiveVMs.Set(float64(len(c.active)))
		e.gauges.Backlog.Set(c.totalBacklog)
		e.gauges.CostUSD.Set(c.costUSD)
	}
	// The point is recorded before the check stage so that even an interval
	// a strict checker aborts on remains inspectable in the partial metrics.
	return e.collector.Add(metrics.Point{
		Sec:        e.clock,
		Omega:      c.omega,
		Gamma:      c.gamma,
		CostUSD:    c.costUSD,
		ActiveVMs:  len(c.active),
		PendingVMs: c.pendingVMs,
		UsedCores:  c.usedCores,
		InputRate:  c.totalIn,
		OutputRate: c.totalOut,
		Backlog:    c.totalBacklog,
		LatencySec: c.meanLatency,
	})
}

// stageCheck hands the end-of-interval state to the invariant checker,
// emits the QoS-violation event when Omega fell below the configured floor,
// and closes the step span. A strict checker's violation is the stage
// error, aborting the run. Mutates: prevCost (via checkStep), gauges
// violation count.
func (e *Engine) stageCheck(c *stepContext) error {
	viol := e.checkStep(c.omega, c.gamma, c.costUSD, c.totalBacklog)
	if e.cfg.OmegaFloor > 0 && c.omega < e.cfg.OmegaFloor {
		e.trace(obs.Event{Type: obs.EventOmegaViolation, Value: c.omega,
			Detail: fmt.Sprintf("floor=%g", e.cfg.OmegaFloor)})
	}
	e.trace(obs.Event{Type: obs.EventStep, Phase: obs.PhaseEnd, Value: c.omega,
		N: c.usedCores})
	return viol
}
