package sim

import (
	"fmt"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/monitor"
	"dynamicdf/internal/obs"
)

// This file is the interval pipeline: Engine.step() executes one simulated
// interval [clock, clock+interval) as an ordered sequence of named stages,
// each a method over the shared stepContext. The order is load-bearing —
// every stage documents what engine state it may mutate, and the
// invariant-checker's conservation law depends on the rehome stage's
// snapshot point. With Config.StageSpans set (and a tracer attached) every
// stage is bracketed by a stage-span pair for per-stage latency analysis.
//
//	provision  complete pending VMs whose boot time arrived
//	faults     crash VMs whose sampled lifetime expired
//	arrivals   read rate profiles; expected (uncapped) propagation
//	rehome     move unassigned-queue messages onto hosting VMs;
//	           snapshot QueueBefore for the conservation law
//	flow       the fluid-flow computation: process, queue, deliver; Omega
//	billing    advance the clock; bill the interval; census the fleet
//	observe    feed the monitors; publish last-interval observations,
//	           gauges, and the metrics point
//	check      run the invariant checker; close the step span
type stepStage struct {
	name string
	run  func(*Engine, *stepContext) error
}

// stepStages is the pipeline, in execution order.
var stepStages = []stepStage{
	{"provision", (*Engine).stageProvision},
	{"faults", (*Engine).stageFaults},
	{"arrivals", (*Engine).stageArrivals},
	{"rehome", (*Engine).stageRehome},
	{"flow", (*Engine).stageFlow},
	{"billing", (*Engine).stageBilling},
	{"observe", (*Engine).stageObserve},
	{"check", (*Engine).stageCheck},
}

// stepContext carries one interval's intermediate values between stages. The
// engine owns a single instance whose buffers are reset (not reallocated)
// every interval, so the steady-state step performs no heap allocation.
type stepContext struct {
	sec int64   // clock at the interval's start (the clock advances in billing)
	dt  float64 // interval length in seconds

	// arrivals.
	extRate []float64 // external msg/s per input PE (valid at input indices)
	totalIn float64
	inRate  []float64 // propagation scratch
	expOut  []float64 // expected (uncapped) output rate per PE

	// flow.
	observedOut  []float64
	observedIn   []float64
	totalBacklog float64
	latencyAccum float64
	latencyN     int
	omega        float64
	totalOut     float64

	// billing.
	costUSD    float64
	active     []*cloud.VM
	usedCores  int
	pendingVMs int

	// observe.
	meanLatency float64
	gamma       float64

	// Per-tenant accumulators (length = len(cfg.Tenants); nil outside
	// multi-tenant runs). tenOmega/tenCores are rebuilt each interval;
	// tenGamma/tenSpend are filled from engine tallies in observe so the
	// collector sees one consistent row.
	tenOmega []float64
	tenGamma []float64
	tenSpend []float64
	tenCores []int
}

// resetStepContext rewinds the engine's reusable context for a new interval.
// extRate/expOut/observedOut/observedIn are fully overwritten by their
// producing stages before any read, so only the accumulators need clearing.
func (e *Engine) resetStepContext() *stepContext {
	c := &e.ctx
	c.sec = e.clock
	c.dt = float64(e.cfg.IntervalSec)
	c.totalIn = 0
	for i := range c.inRate {
		c.inRate[i] = 0
	}
	c.totalBacklog = 0
	c.latencyAccum = 0
	c.latencyN = 0
	c.omega = 0
	c.totalOut = 0
	c.costUSD = 0
	c.active = c.active[:0]
	c.usedCores = 0
	c.pendingVMs = 0
	c.meanLatency = 0
	c.gamma = 0
	for i := range c.tenOmega {
		c.tenOmega[i] = 0
		c.tenGamma[i] = 0
		c.tenSpend[i] = 0
		c.tenCores[i] = 0
	}
	return c
}

// step simulates one interval [clock, clock+interval) by running the stage
// pipeline in order. A stage error aborts the interval (and the run).
func (e *Engine) step() error {
	c := e.resetStepContext()
	spans := e.cfg.StageSpans && e.tracer != nil
	for i, st := range stepStages {
		if spans {
			e.trace(obs.Event{Type: obs.EventStage, Phase: obs.PhaseStart, Detail: st.name})
		}
		mark := e.profBegin()
		err := st.run(e, c)
		e.profEnd(i, mark)
		if spans {
			e.trace(obs.Event{Type: obs.EventStage, Phase: obs.PhaseEnd, Detail: st.name})
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// registerStages maps the pipeline's stage positions onto the attached
// profiler's dense indices. Idempotent; a no-op with no profiler.
func (e *Engine) registerStages() {
	if e.profiler == nil {
		e.profIdx = nil
		return
	}
	e.profIdx = make([]int, len(stepStages))
	for i, st := range stepStages {
		e.profIdx[i] = e.profiler.StageIndex(st.name)
	}
}

// profBegin/profEnd are the per-stage profiler hook. Like the tracer and
// checker hooks they are nil-guarded so a detached profiler costs zero
// allocations on the step hot path (the mark lives on the caller's stack).
func (e *Engine) profBegin() obs.StageMark {
	if e.profiler == nil {
		return obs.StageMark{}
	}
	return e.profiler.Begin()
}

func (e *Engine) profEnd(i int, m obs.StageMark) {
	if e.profiler == nil {
		return
	}
	e.profiler.End(e.profIdx[i], m)
}

// stageProvision opens the step span and completes provisioning for pending
// VMs whose boot time arrived, so this interval runs on the newly booted
// capacity. Mutates: fleet pending flags, audit log.
func (e *Engine) stageProvision(c *stepContext) error {
	e.trace(obs.Event{Type: obs.EventStep, Phase: obs.PhaseStart})
	for _, vm := range e.fleet.MakeReady(c.sec) {
		e.audit(AuditEntry{Action: "vm-ready", VM: vm.ID, N: int(c.sec - vm.StartSec),
			Detail: vm.Class.Name})
	}
	return nil
}

// stageFaults crashes VMs whose lifetime expired before this interval's
// flow runs, so the interval executes on the surviving capacity. Mutates:
// fleet, arena cores/queues, loss/crash counters, monitors, audit log.
func (e *Engine) stageFaults(c *stepContext) error {
	return e.crashDueVMs(c.sec)
}

// stageArrivals reads the external arrival rates for this interval and
// computes the expected (uncapped) propagation for Def. 4's denominator —
// PropagateRatesRouted inlined over the cached topological order and
// active-successor lists into reused buffers (selection and routing are
// validated wherever they change, so the checks the library routine repeats
// per call hold by construction; the fold order is identical). Mutates:
// nothing on the engine (pure reads into the context).
func (e *Engine) stageArrivals(c *stepContext) error {
	g := e.cfg.Graph
	for _, pe := range e.inputKeys {
		r := e.cfg.Inputs[pe].Rate(c.sec)
		if r < 0 {
			return fmt.Errorf("sim: profile for PE %d returned negative rate %v", pe, r)
		}
		c.extRate[pe] = r
		c.totalIn += r
	}
	for _, pe := range e.inputKeys {
		c.inRate[pe] = c.extRate[pe]
	}
	for _, v := range e.topoOrder {
		c.expOut[v] = c.inRate[v] * e.sel.Alt(g, v).Selectivity
		for _, w := range e.activeSucc[v] {
			c.inRate[w] += c.expOut[v]
		}
	}
	return nil
}

// stageRehome moves messages that buffered while a PE had no cores (the
// virtual slot 0, VM -1) onto real hosting VMs as soon as capacity exists,
// then snapshots per-PE queue totals for the conservation law. This point —
// after crash cleanup and unassigned-queue rehoming, both of which move or
// destroy messages outside the interval's flow accounting — is where
// QueueBefore + In·dt = Processed·dt + QueueAfter holds exactly. Mutates:
// arena queues, invState.QueueBefore.
func (e *Engine) stageRehome(c *stepContext) error {
	n := e.cfg.Graph.N()
	for pe := 0; pe < n; pe++ {
		p := &e.pes[pe]
		if q := p.queue[0]; q > 0 {
			alt := e.sel.Alt(e.cfg.Graph, pe)
			total := p.computeCapacity(e, c.sec, alt)
			if total > 0 {
				p.queue[0] = 0
				p.hasQ[0] = false
				for s := 1; s < len(p.vms); s++ {
					if p.host[s] {
						p.queue[s] += q * p.capa[s] / total
						p.hasQ[s] = true
					}
				}
			}
		}
		if e.invState != nil {
			e.invState.QueueBefore[pe] = p.totalQueue()
		}
	}
	return nil
}

// stageFlow runs the fluid-flow computation — per-VM processing bounded by
// capacity, backlog drain, queueing-latency accumulation, and delivery to
// successors capped by pairwise bandwidth — then derives Omega (Def. 4).
//
// Each PE's computation (processPE) is independent of its level peers: it
// pulls arrivals from predecessor output finalized in earlier levels rather
// than pushing to successors, so with FlowWorkers > 0 the PEs of one
// topological level shard across the pool, level by level. The
// order-sensitive float folds (latency, backlog, Omega) run serially
// afterwards in topological order, making parallel runs byte-identical to
// serial ones. Mutates: arena queues/shares, invState.In/Processed.
func (e *Engine) stageFlow(c *stepContext) error {
	if e.flowPool != nil {
		for _, level := range e.levels {
			e.flowPool.run(c, level)
		}
	} else {
		for _, pe := range e.topoOrder {
			e.processPE(c, pe)
		}
	}

	for _, pe := range e.topoOrder {
		p := &e.pes[pe]
		for _, t := range p.latTerms {
			c.latencyAccum += t
		}
		c.latencyN += len(p.latTerms)
		for s := range p.queue {
			c.totalBacklog += p.queue[s]
		}
	}

	// Relative application throughput (Def. 4): mean over output PEs of
	// observed/expected, clamped to [0, 1].
	for _, pe := range e.outputs {
		exp := c.expOut[pe]
		if exp <= 0 {
			c.omega += 1
			continue
		}
		r := c.observedOut[pe] / exp
		if r > 1 {
			r = 1
		}
		c.omega += r
	}
	c.omega /= float64(len(e.outputs))
	for _, pe := range e.outputs {
		c.totalOut += c.observedOut[pe]
	}
	// Per-tenant Omega: the same Def. 4 fold, restricted to each tenant's
	// own output PEs.
	for t, outs := range e.tenOutputs {
		var omega float64
		for _, pe := range outs {
			exp := c.expOut[pe]
			if exp <= 0 {
				omega += 1
				continue
			}
			r := c.observedOut[pe] / exp
			if r > 1 {
				r = 1
			}
			omega += r
		}
		c.tenOmega[t] = omega / float64(len(outs))
	}
	return nil
}

// processPE runs one PE's slice of the flow stage: gather this interval's
// arrivals (external feed, then each active predecessor's delivery — the
// same accumulation sequence the push-based engine produced), process
// per-VM bounded by capacity, drain backlog, and publish the output split
// for successors. Writes only this PE's arena row and per-PE cells of the
// context, so level peers can run it concurrently.
func (e *Engine) processPE(c *stepContext, pe int) {
	g := e.cfg.Graph
	p := &e.pes[pe]
	alt := e.sel.Alt(g, pe)
	ratedTotal := p.computeRatedShares(e)
	nslots := len(p.vms)

	for s := 0; s < nslots; s++ {
		p.arr[s] = 0
		p.hasArr[s] = false
	}
	if e.isInput[pe] {
		// External arrivals split across hosting VMs by rated share; with no
		// capacity they buffer at the virtual unassigned slot (not lost).
		rate := c.extRate[pe]
		if ratedTotal <= 0 {
			p.arr[0] += rate
			p.hasArr[0] = true
		} else {
			for s := 1; s < nslots; s++ {
				if sh := p.rshare[s]; sh > 0 {
					p.arr[s] += rate * sh
					p.hasArr[s] = true
				}
			}
		}
	}
	for _, u := range e.flowPreds[pe] {
		out := c.observedOut[u]
		if out <= 0 {
			continue
		}
		if ratedTotal <= 0 {
			// No cores downstream: buffer at the unassigned queue.
			p.arr[0] += out
			p.hasArr[0] = true
			continue
		}
		src := &e.pes[u]
		msgBytes := g.MsgBytes(u)
		for t := 1; t < nslots; t++ {
			sh := p.rshare[t]
			if sh <= 0 {
				continue
			}
			want := out * sh
			if want <= 0 {
				continue
			}
			p.hasArr[t] = true
			if src.srcEmpty {
				// Source processed nothing yet output > 0 cannot happen, but
				// stay safe: treat as colocated.
				p.arr[t] += want
				continue
			}
			dstVM := p.vms[t]
			for s := 0; s < len(src.vms); s++ {
				if !src.host[s] {
					continue
				}
				flow := want * src.oshare[s]
				if lcap := e.linkMsgCap(src.vms[s], dstVM, msgBytes, c.sec); flow > lcap {
					flow = lcap
				}
				p.arr[t] += flow
			}
		}
	}

	p.computeCapacity(e, c.sec, alt)
	// Process per hosting VM: arrivals plus backlog drain, bounded by
	// capacity; then backlog on VMs with no arrivals this interval.
	processed := 0.0
	arrivalTotal := 0.0
	p.latTerms = p.latTerms[:0]
	for s := 0; s < nslots; s++ {
		if !p.hasArr[s] {
			continue
		}
		arr := p.arr[s]
		arrivalTotal += arr
		vcap := p.capa[s]
		q := p.queue[s]
		pr := arr + q/c.dt
		if pr > vcap {
			pr = vcap
		}
		newQ := q + (arr-pr)*c.dt
		if newQ < 1e-9 {
			newQ = 0
		}
		p.queue[s] = newQ
		p.hasQ[s] = true
		processed += pr
		if vcap > 0 {
			p.latTerms = append(p.latTerms, newQ/vcap)
		}
	}
	for s := 0; s < nslots; s++ {
		q := p.queue[s]
		if p.hasArr[s] || q == 0 {
			continue
		}
		vcap := p.capa[s]
		pr := q / c.dt
		if pr > vcap {
			pr = vcap
		}
		newQ := q - pr*c.dt
		if newQ < 1e-9 {
			newQ = 0
		}
		p.queue[s] = newQ
		processed += pr
		if vcap > 0 {
			p.latTerms = append(p.latTerms, newQ/vcap)
		}
	}
	c.observedIn[pe] = arrivalTotal
	out := processed * alt.Selectivity
	c.observedOut[pe] = out
	if e.invState != nil {
		e.invState.In[pe] = arrivalTotal
		e.invState.Processed[pe] = processed
	}

	// Publish the output split (each source VM's share of processed output,
	// by instantaneous capacity) for the successors' gather.
	p.srcEmpty = true
	if out > 0 {
		total := 0.0
		for s := 0; s < nslots; s++ {
			if p.host[s] {
				total += p.capa[s]
			}
		}
		if total > 0 {
			for s := 0; s < nslots; s++ {
				if p.host[s] {
					p.oshare[s] = p.capa[s] / total
				}
			}
			p.srcEmpty = false
		}
	}
}

// stageBilling advances the clock past the interval so the elapsed time is
// paid for, then takes the post-interval fleet census: cumulative cost,
// active and pending VM counts, and cores in use. Mutates: clock.
func (e *Engine) stageBilling(c *stepContext) error {
	e.clock += e.cfg.IntervalSec
	c.costUSD = e.fleet.TotalCost(e.clock)
	c.active = e.fleet.ActiveInto(c.active)
	c.pendingVMs = e.fleet.PendingCount()
	for _, vm := range c.active {
		c.usedCores += vm.UsedCores
	}
	// Per-tenant core census for spend attribution: sum each tenant's cores
	// on active VMs (the arena's host flag marks active hosting slots, set
	// by computeCapacity during this interval's flow).
	for t := range e.cfg.Tenants {
		tn := &e.cfg.Tenants[t]
		cores := 0
		for pe := tn.LoPE; pe < tn.HiPE; pe++ {
			p := &e.pes[pe]
			for s := 1; s < len(p.vms); s++ {
				if p.host[s] {
					cores += p.cores[s]
				}
			}
		}
		c.tenCores[t] = cores
	}
	return nil
}

// stageObserve feeds the monitors with this interval's observations and
// publishes the interval to every consumer-facing surface: the View's
// last-interval fields, the live gauges, and the metrics collector. Under
// degraded monitoring a probe may be dropped (the estimator keeps its
// last-known-good value) or perturbed with multiplicative noise before
// smoothing — what the heuristics then consume via View is exactly as
// wrong as a real monitoring framework's would be. Mutates: monitors,
// lastOmega/omegaSum/omegaN, lastPE* copies, lastLatency, stepped, gauges,
// collector.
func (e *Engine) stageObserve(c *stepContext) error {
	cf := e.cfg.ControlFaults
	for _, pe := range e.inputKeys {
		if cf.probeStale(drawStaleRate, uint64(pe), e.clock) {
			e.staleProbes++
			continue
		}
		e.rateEst.Observe(pe, c.extRate[pe]*cf.probeNoise(drawNoiseRate, uint64(pe), e.clock))
	}
	for _, vm := range c.active {
		if cf.probeStale(drawStaleCPU, uint64(vm.ID), e.clock) {
			e.staleProbes++
			continue
		}
		coeff := e.coeff(vm.ID, c.sec) * cf.probeNoise(drawNoiseCPU, uint64(vm.ID), e.clock)
		_ = e.vmMon.ObserveCPU(vm.ID, monitor.Probe{Sec: e.clock, CPUCoeff: coeff})
	}
	for i := 0; i < len(c.active); i++ {
		for j := i + 1; j < len(c.active); j++ {
			a, b := c.active[i], c.active[j]
			pair := uint64(a.ID)<<32 | uint64(b.ID)
			if cf.probeStale(drawStaleNet, pair, e.clock) {
				e.staleProbes++
				continue
			}
			lat := e.cfg.Perf.LatencySec(e.vmTraceID(a.ID), e.vmTraceID(b.ID), c.sec)
			bw := e.cfg.Perf.BandwidthMbps(e.vmTraceID(a.ID), e.vmTraceID(b.ID), c.sec)
			noise := cf.probeNoise(drawNoiseNet, pair, e.clock)
			_ = e.netMon.Observe(a.ID, b.ID, lat*noise, bw*noise)
		}
	}

	e.lastOmega = c.omega
	e.omegaSum += c.omega
	e.omegaN++
	copy(e.lastPEOut, c.observedOut)
	copy(e.lastPEExp, c.expOut)
	copy(e.lastPEIn, c.observedIn)
	e.stepped = true
	if c.latencyN > 0 {
		c.meanLatency = c.latencyAccum / float64(c.latencyN)
	}
	e.lastLatency = c.meanLatency
	// The application value only changes when the selection or routing does;
	// recompute lazily instead of re-walking the graph every interval.
	if e.gammaDirty {
		gv, err := dataflow.RoutedValue(e.cfg.Graph, e.sel, e.routing)
		if err != nil {
			return err
		}
		e.gammaV = gv
		if err := e.recomputeTenantGamma(); err != nil {
			return err
		}
		e.gammaDirty = false
	}
	c.gamma = e.gammaV
	if nt := len(e.cfg.Tenants); nt > 0 {
		// Attribute this interval's cost delta to tenants by their share of
		// assigned cores; with no cores anywhere the delta stays unattributed
		// (idle-fleet burn belongs to no tenant).
		delta := c.costUSD - e.tenPrevCost
		totalCores := 0
		for _, n := range c.tenCores {
			totalCores += n
		}
		if delta > 0 {
			if totalCores > 0 {
				for t := 0; t < nt; t++ {
					e.tenSpend[t] += delta * float64(c.tenCores[t]) / float64(totalCores)
				}
			}
			e.tenPrevCost = c.costUSD
		}
		for t := 0; t < nt; t++ {
			e.tenLastOmega[t] = c.tenOmega[t]
			e.tenOmegaSum[t] += c.tenOmega[t]
			c.tenGamma[t] = e.tenGamma[t]
			c.tenSpend[t] = e.tenSpend[t]
		}
		for t, g := range e.tenGauges {
			g[0].Set(c.tenOmega[t])
			g[1].Set(c.tenGamma[t])
			g[2].Set(c.tenSpend[t])
		}
	}
	if e.gauges != nil {
		e.gauges.Omega.Set(c.omega)
		e.gauges.Gamma.Set(c.gamma)
		e.gauges.InputRate.Set(c.totalIn)
		e.gauges.UsedCores.Set(float64(c.usedCores))
		e.gauges.PendingVMs.Set(float64(c.pendingVMs))
		e.gauges.ActiveVMs.Set(float64(len(c.active)))
		e.gauges.Backlog.Set(c.totalBacklog)
		e.gauges.CostUSD.Set(c.costUSD)
	}
	// The point is recorded before the check stage so that even an interval
	// a strict checker aborts on remains inspectable in the partial metrics.
	if err := e.collector.Add(metrics.Point{
		Sec:        e.clock,
		Omega:      c.omega,
		Gamma:      c.gamma,
		CostUSD:    c.costUSD,
		ActiveVMs:  len(c.active),
		PendingVMs: c.pendingVMs,
		UsedCores:  c.usedCores,
		InputRate:  c.totalIn,
		OutputRate: c.totalOut,
		Backlog:    c.totalBacklog,
		LatencySec: c.meanLatency,
	}); err != nil {
		return err
	}
	if len(e.cfg.Tenants) > 0 {
		return e.collector.AddTenant(c.tenOmega, c.tenGamma, c.tenSpend)
	}
	return nil
}

// recomputeTenantGamma refreshes each tenant's cached application value
// against its standalone graph, slicing the composite selection and routing
// to the tenant's ranges. Called under the same dirty flag as the global Γ.
func (e *Engine) recomputeTenantGamma() error {
	for t := range e.cfg.Tenants {
		tn := &e.cfg.Tenants[t]
		gv, err := dataflow.RoutedValue(tn.Graph,
			dataflow.Selection(e.sel[tn.LoPE:tn.HiPE]),
			dataflow.Routing(e.routing[tn.LoChoice:tn.HiChoice]))
		if err != nil {
			return fmt.Errorf("sim: tenant %q gamma: %w", tn.Name, err)
		}
		e.tenGamma[t] = gv
	}
	return nil
}

// stageCheck hands the end-of-interval state to the invariant checker,
// emits the QoS-violation event when Omega fell below the configured floor,
// and closes the step span. A strict checker's violation is the stage
// error, aborting the run. Mutates: prevCost (via checkStep), gauges
// violation count.
func (e *Engine) stageCheck(c *stepContext) error {
	viol := e.checkStep(c.omega, c.gamma, c.costUSD, c.totalBacklog)
	if e.cfg.OmegaFloor > 0 && c.omega < e.cfg.OmegaFloor {
		e.trace(obs.Event{Type: obs.EventOmegaViolation, Value: c.omega,
			Detail: fmt.Sprintf("floor=%g", e.cfg.OmegaFloor)})
	}
	for t := range e.cfg.Tenants {
		tn := &e.cfg.Tenants[t]
		if tn.OmegaFloor > 0 && c.tenOmega[t] < tn.OmegaFloor {
			e.trace(obs.Event{Type: obs.EventOmegaViolation, Value: c.tenOmega[t],
				Tenant: tn.Name, Detail: fmt.Sprintf("floor=%g", tn.OmegaFloor)})
		}
	}
	e.trace(obs.Event{Type: obs.EventStep, Phase: obs.PhaseEnd, Value: c.omega,
		N: c.usedCores})
	return viol
}
