package sim

import (
	"bytes"
	"strings"
	"testing"

	"dynamicdf/internal/obs"
)

// traceChaos runs the chaos scenario with a tracer attached and returns the
// raw NDJSON stream.
func traceChaos(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := chaosConfig(t)
	cfg.Tracer = obs.NewTracer(&buf)
	cfg.OmegaFloor = 0.99 // the chaos scenario degrades; force violations
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&fixed{deploy: chaosRepair, adapt: chaosRepair}); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceByteIdenticalAcrossRuns is the tracing analogue of the audit-log
// determinism test: under a fixed seed the full event stream — spans,
// scheduler actions, fault consequences, QoS violations — must render to
// identical bytes every run.
func TestTraceByteIdenticalAcrossRuns(t *testing.T) {
	a, b := traceChaos(t), traceChaos(t)
	if !bytes.Equal(a, b) {
		t.Fatal("identical configs produced different event streams")
	}
	events, err := obs.ReadEvents(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("stream does not parse: %v", err)
	}
	byType := map[string]int{}
	for _, ev := range events {
		byType[ev.Type+":"+ev.Phase]++
	}
	// With provisioning delays every acquisition goes pending first, so the
	// stream carries pending-vm/vm-ready pairs rather than acquire-vm.
	for _, want := range []string{
		"run:start", "run:end", "step:start", "step:end",
		"select-alternate:init", "pending-vm:", "vm-ready:",
		"acquire-failed:", "crash:", "omega-violation:",
	} {
		if byType[want] == 0 {
			t.Fatalf("stream lacks %q events; counts: %v", want, byType)
		}
	}
	intervals := chaosConfig(t).HorizonSec / 60 // default IntervalSec
	if got := byType["step:start"]; int64(got) != intervals {
		t.Fatalf("%d step spans for %d intervals", got, intervals)
	}
}

// TestTracerAndAuditAgree: the audit log must be the scheduler-action
// subset of the trace, so the two views of one run stay correlatable.
func TestTracerAndAuditAgree(t *testing.T) {
	var buf bytes.Buffer
	cfg := chaosConfig(t)
	cfg.Tracer = obs.NewTracer(&buf)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&fixed{deploy: chaosRepair, adapt: chaosRepair}); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var traced []string
	for _, ev := range events {
		switch ev.Type {
		case obs.EventRun, obs.EventStep, obs.EventOmegaViolation:
			continue
		}
		if ev.Phase == obs.PhaseInit {
			continue
		}
		traced = append(traced, ev.String())
	}
	audit := e.AuditLog()
	if len(audit) == 0 {
		t.Fatal("audit log empty")
	}
	if len(traced) != len(audit) {
		t.Fatalf("%d traced actions vs %d audit entries", len(traced), len(audit))
	}
	for i, entry := range audit {
		if got := entry.event().String(); traced[i] != got {
			t.Fatalf("action %d: trace %q vs audit %q", i, traced[i], got)
		}
	}
}

// TestAuditJSONLUnchangedByMigration pins the legacy audit wire format: the
// obs.Event-backed storage must encode exactly the bytes the original
// AuditEntry encoder produced.
func TestAuditJSONLUnchangedByMigration(t *testing.T) {
	cfg := baseConfig(chainGraph(1), 4, 3600)
	cfg.Audit = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteAuditJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	if !strings.Contains(first, `"action":"acquire-vm"`) {
		t.Fatalf("audit JSONL missing acquire-vm action:\n%s", first)
	}
	if strings.Contains(first, `"type"`) || strings.Contains(first, `"v"`) {
		t.Fatalf("audit JSONL leaks obs.Event fields:\n%s", first)
	}
}

// TestDisabledTracerZeroAlloc guards the hot path: with no tracer attached,
// the engine's trace hook must not allocate.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	e, err := NewEngine(baseConfig(chainGraph(1), 4, 3600))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.trace(obs.Event{Type: obs.EventStep, Phase: obs.PhaseStart, Value: 0.5})
		e.audit(AuditEntry{Action: "assign-cores", PE: 1, VM: 2, N: 3})
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer hooks allocate %.1f/op, want 0", allocs)
	}
}

// BenchmarkEngineStep measures engine stepping with tracing disabled and
// enabled. The hook/disabled case must report 0 allocs/op — the guarantee
// ci.sh enforces.
func BenchmarkEngineStep(b *testing.B) {
	b.Run("hook/disabled", func(b *testing.B) {
		e, err := NewEngine(baseConfig(chainGraph(1), 4, 3600))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.trace(obs.Event{Type: obs.EventStep, Phase: obs.PhaseStart, Value: 0.5})
		}
	})
	for _, traced := range []bool{false, true} {
		name := "run/tracer=off"
		if traced {
			name = "run/tracer=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := baseConfig(chainGraph(1), 4, 3600)
				var sink bytes.Buffer
				if traced {
					cfg.Tracer = obs.NewTracer(&sink)
				}
				e, err := NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := e.Run(&fixed{deploy: deployEven}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
