package sim

import (
	"math"
	"testing"

	"dynamicdf/internal/queueing"
)

// TestFluidDrainMatchesAnalyticModel cross-validates the engine's queue
// dynamics against internal/queueing's fluid-drain formula: a backlog
// built during an undersized phase must drain in the time the analytic
// model predicts once capacity is added.
func TestFluidDrainMatchesAnalyticModel(t *testing.T) {
	g := chainGraph(1) // work: 1 core-sec/msg
	const rate = 4.0
	cfg := baseConfig(g, rate, 2*3600)
	e, _ := NewEngine(cfg)
	var scaledAt int64 = -1
	_, err := e.Run(&fixed{
		deploy: func(v *View, act Control) error {
			// src amply provisioned; work on 1 small core: capacity 1
			// msg/s vs 4 arriving -> backlog grows 3 msg/s.
			a, err := act.AcquireVM("m1.large")
			if err != nil {
				return err
			}
			if err := act.AssignCores(0, a, 2); err != nil {
				return err
			}
			b, err := act.AcquireVM("m1.small")
			if err != nil {
				return err
			}
			return act.AssignCores(1, b, 1)
		},
		adapt: func(v *View, act Control) error {
			if v.Now() >= 1200 && scaledAt < 0 {
				scaledAt = v.Now()
				// Replace the starved core with an xlarge (8 ECU =
				// 8 msg/s): unassigning the small core migrates its
				// buffered messages onto the new host (§5), so the
				// whole backlog drains at capacity - arrival = 4 msg/s.
				id, err := act.AcquireVM("m1.xlarge")
				if err != nil {
					return err
				}
				if err := act.AssignCores(1, id, 4); err != nil {
					return err
				}
				as := v.Assignments(1)
				for _, a := range as {
					if a.VMID != id {
						if err := act.UnassignCores(1, a.VMID, a.Cores); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find backlog at scale-up and when it first hits ~0 after.
	pts := e.Collector().Points()
	var backlogAtScale float64
	var drainedAt int64 = -1
	for _, p := range pts {
		if p.Sec == scaledAt {
			backlogAtScale = p.Backlog
		}
		if p.Sec > scaledAt && drainedAt < 0 && p.Backlog < 1 {
			drainedAt = p.Sec
		}
	}
	if backlogAtScale < 1000 {
		t.Fatalf("backlog at scale-up = %v, expected ~3600 (3 msg/s x 1200 s)", backlogAtScale)
	}
	want, err := queueing.FluidDrainSec(backlogAtScale, rate, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(drainedAt - scaledAt)
	// Interval granularity (60 s) bounds the agreement.
	if math.Abs(got-want) > 120 {
		t.Fatalf("drain took %vs, analytic model predicts %vs", got, want)
	}
}

// TestSteadyStateUtilization checks the engine realizes exactly the
// utilization the queueing model defines: at capacity c*mu and arrival
// lambda, throughput is min(1, 1/rho_inverse)... i.e. omega equals
// capacity/arrival when saturated.
func TestSteadyStateUtilization(t *testing.T) {
	g := chainGraph(1)
	const rate = 8.0
	cfg := baseConfig(g, rate, 3600)
	e, _ := NewEngine(cfg)
	_, err := e.Run(&fixed{deploy: func(v *View, act Control) error {
		a, err := act.AcquireVM("m1.large")
		if err != nil {
			return err
		}
		if err := act.AssignCores(0, a, 2); err != nil {
			return err
		}
		// work capacity: 2 medium cores = 4 ECU -> 4 msg/s of 8.
		b, err := act.AcquireVM("m1.medium")
		if err != nil {
			return err
		}
		if err := act.AssignCores(1, b, 1); err != nil {
			return err
		}
		c, err := act.AcquireVM("m1.medium")
		if err != nil {
			return err
		}
		return act.AssignCores(1, c, 1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	sum := e.Collector().Summarize()
	m := queueing.MMC{Lambda: rate, Mu: 2, C: 2} // two 2-ECU cores at cost 1
	if m.Stable() {
		t.Fatal("setup: system should be saturated")
	}
	// Saturated fluid system: omega = capacity/lambda = 4/8.
	if math.Abs(sum.MeanOmega-0.5) > 0.01 {
		t.Fatalf("omega = %v, want 0.5 (= capacity/arrival)", sum.MeanOmega)
	}
}
