// Package state defines the canonical, deterministic-serializable snapshot
// of a simulation engine — the externalized dataflow state that checkpoint,
// restore, and warm-start forking are built on. A Snapshot captures the
// complete mutable state of internal/sim's Engine between intervals: the
// clock, the VM fleet (including pending, unbilled instances), the alternate
// selection and routing, core placements, per-VM message queues, monitor
// estimators, fault counters, omega/gamma tallies, the recorded metric
// series and audit log, and an opaque scheduler-state blob.
//
// Encoding is versioned ("state/v1"): canonical JSON — struct fields in
// declaration order, map-free collections pre-sorted by their exporters —
// with a SHA-256 digest over the digest-free document embedded in the
// "digest" field. Encode/Decode round-trip byte-exactly (Go's float64 JSON
// encoding is shortest-round-trippable), so a restored engine continues
// bit-identically to an uninterrupted run.
package state

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/monitor"
	"dynamicdf/internal/obs"
)

// Version names the snapshot encoding. Bump it whenever a field changes
// meaning; Decode rejects snapshots written by any other version.
const Version = "state/v1"

// CoreCell is one (PE, VM) core assignment.
type CoreCell struct {
	PE    int `json:"pe"`
	VM    int `json:"vm"`
	Cores int `json:"cores"`
}

// QueueCell is one (PE, VM) message buffer. VM -1 is the virtual unassigned
// queue messages buffer at while a PE has no cores.
type QueueCell struct {
	PE    int     `json:"pe"`
	VM    int     `json:"vm"`
	Queue float64 `json:"queue"`
}

// Snapshot is the full engine state at an interval boundary. All collections
// are slices in a deterministic order (no maps), so the canonical JSON of a
// given engine state is unique.
type Snapshot struct {
	// Version is always the package Version; Encode fills it.
	Version string `json:"version"`
	// Digest is the hex SHA-256 of the snapshot's canonical JSON with this
	// field empty; Encode fills it and Decode verifies it.
	Digest string `json:"digest,omitempty"`

	// Identity guards: a snapshot only restores onto a config that agrees
	// on these.
	GraphPEs    int   `json:"graphPEs"`
	IntervalSec int64 `json:"intervalSec"`
	HorizonSec  int64 `json:"horizonSec"`
	Seed        int64 `json:"seed"`

	// ClockSec is the simulation clock (an interval boundary).
	ClockSec int64 `json:"clockSec"`
	// Deployed records that the scheduler's Deploy phase has run.
	Deployed bool `json:"deployed,omitempty"`
	// Stepped records that at least one interval has executed.
	Stepped bool `json:"stepped,omitempty"`

	// Selection and Routing are the live dataflow configuration.
	Selection []int `json:"selection"`
	Routing   []int `json:"routing,omitempty"`

	// Fleet is every VM ever acquired, in id order, including pending and
	// stopped instances (billing history depends on them).
	Fleet []cloud.VMRecord `json:"fleet,omitempty"`

	// Cores and Queues are the placement and buffer state, sorted by
	// (PE, VM).
	Cores  []CoreCell  `json:"cores,omitempty"`
	Queues []QueueCell `json:"queues,omitempty"`

	// Monitor estimator state, sorted by key.
	RateEst []monitor.RateEntry  `json:"rateEst,omitempty"`
	VMCPU   []monitor.VMCPUEntry `json:"vmCpu,omitempty"`
	NetLat  []monitor.NetEntry   `json:"netLat,omitempty"`
	NetBW   []monitor.NetEntry   `json:"netBw,omitempty"`

	// Last-interval observations and period tallies.
	LastOmega   float64   `json:"lastOmega,omitempty"`
	OmegaSum    float64   `json:"omegaSum,omitempty"`
	OmegaN      int       `json:"omegaN,omitempty"`
	LastPEOut   []float64 `json:"lastPeOut,omitempty"`
	LastPEExp   []float64 `json:"lastPeExp,omitempty"`
	LastPEIn    []float64 `json:"lastPeIn,omitempty"`
	LastLatency float64   `json:"lastLatency,omitempty"`

	// Fault and accounting counters.
	MigratedBytes   float64 `json:"migratedBytes,omitempty"`
	CrashCount      int     `json:"crashCount,omitempty"`
	Preemptions     int     `json:"preemptions,omitempty"`
	LostMessages    float64 `json:"lostMessages,omitempty"`
	AcquireAttempts int64   `json:"acquireAttempts,omitempty"`
	AcquireFailures int     `json:"acquireFailures,omitempty"`
	StaleProbes     int     `json:"staleProbes,omitempty"`
	CrashEvents     int     `json:"crashEvents,omitempty"`
	PreemptEvents   int     `json:"preemptEvents,omitempty"`
	PrevCostUSD     float64 `json:"prevCostUsd,omitempty"`
	Violations      int     `json:"violations,omitempty"`

	// Metrics is the per-interval series recorded so far; Audit is the
	// retained action log (empty unless auditing was on).
	Metrics []metrics.Point `json:"metrics,omitempty"`
	Audit   []obs.Event     `json:"audit,omitempty"`

	// SchedulerName labels the policy that was driving the run;
	// SchedulerState is its opaque checkpoint blob (nil for stateless
	// policies).
	SchedulerName  string          `json:"schedulerName,omitempty"`
	SchedulerState json.RawMessage `json:"schedulerState,omitempty"`

	// Per-tenant tallies and recorded series of a multi-tenant run, indexed
	// like the config's tenant list. The Tenant*Series slices are row-major
	// with stride = tenant count, one row per recorded metrics point. All
	// empty for single-tenant runs, so those snapshots keep the exact byte
	// encoding they had before tenants existed.
	TenantOmega       []float64 `json:"tenantOmega,omitempty"`
	TenantOmegaSum    []float64 `json:"tenantOmegaSum,omitempty"`
	TenantSpendUSD    []float64 `json:"tenantSpendUsd,omitempty"`
	TenantPrevCostUSD float64   `json:"tenantPrevCostUsd,omitempty"`
	TenantSeriesOmega []float64 `json:"tenantSeriesOmega,omitempty"`
	TenantSeriesGamma []float64 `json:"tenantSeriesGamma,omitempty"`
	TenantSeriesSpend []float64 `json:"tenantSeriesSpend,omitempty"`
}

// Encode serializes the snapshot as canonical JSON with the digest filled
// in. The input's Version and Digest fields are overwritten.
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil {
		return nil, errors.New("state: encode nil snapshot")
	}
	s.Version = Version
	s.Digest = ""
	body, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("state: encode: %w", err)
	}
	sum := sha256.Sum256(body)
	s.Digest = hex.EncodeToString(sum[:])
	out, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("state: encode: %w", err)
	}
	return out, nil
}

// Decode parses and verifies an encoded snapshot: the version must match,
// unknown fields are rejected, and the embedded digest must equal the
// SHA-256 of the re-canonicalized digest-free document. Any corruption —
// truncation, bit flips, injected fields, non-canonical rewrites — yields
// an error, never a panic.
func Decode(data []byte) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("state: decode: %w", err)
	}
	if dec.More() {
		return nil, errors.New("state: decode: trailing data after snapshot")
	}
	if s.Version != Version {
		return nil, fmt.Errorf("state: snapshot version %q, want %q", s.Version, Version)
	}
	if s.Digest == "" {
		return nil, errors.New("state: snapshot has no digest")
	}
	want := s.Digest
	s.Digest = ""
	body, err := json.Marshal(&s)
	if err != nil {
		return nil, fmt.Errorf("state: decode: %w", err)
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, fmt.Errorf("state: digest mismatch: snapshot says %s, content is %s", want, got)
	}
	s.Digest = want
	return &s, nil
}
