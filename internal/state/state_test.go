package state

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/monitor"
	"dynamicdf/internal/obs"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		GraphPEs:    3,
		IntervalSec: 60,
		HorizonSec:  3600,
		Seed:        42,
		ClockSec:    1800,
		Deployed:    true,
		Stepped:     true,
		Selection:   []int{0, 1, 0},
		Routing:     []int{-1, -1, -1},
		Fleet: []cloud.VMRecord{
			{ID: 0, Class: "m1.small", StartSec: 0, StopSec: -1, TraceID: 7},
			{ID: 1, Class: "m1.large", StartSec: 60, StopSec: 900, UsedCores: 0},
		},
		Cores:  []CoreCell{{PE: 0, VM: 0, Cores: 1}},
		Queues: []QueueCell{{PE: 1, VM: -1, Queue: 12.5}, {PE: 1, VM: 0, Queue: 0.25}},
		RateEst: []monitor.RateEntry{
			{Key: 0, E: monitor.EWMAState{Value: 9.75, Primed: true}},
		},
		VMCPU: []monitor.VMCPUEntry{
			{VM: 0, E: monitor.EWMAState{Value: 0.93, Primed: true}, LastSec: 1740},
		},
		NetLat:         []monitor.NetEntry{{A: 0, B: 1, E: monitor.EWMAState{Value: 0.01, Primed: true}}},
		NetBW:          []monitor.NetEntry{{A: 0, B: 1, E: monitor.EWMAState{Value: 800, Primed: true}}},
		LastOmega:      0.875,
		OmegaSum:       26.25,
		OmegaN:         30,
		LastPEOut:      []float64{10, 9.5, 9.5},
		PrevCostUSD:    1.25,
		Metrics:        []metrics.Point{{Sec: 60, Omega: 1, Gamma: 0.9, CostUSD: 0.5, ActiveVMs: 1}},
		Audit:          []obs.Event{{Sec: 0, Type: "acquire-vm", VM: 0, Detail: "m1.small"}},
		SchedulerName:  "global-greedy",
		SchedulerState: json.RawMessage(`{"ticks":29}`),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != Version || s.Digest == "" {
		t.Fatalf("encode did not stamp version/digest: %q %q", s.Version, s.Digest)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Decoded snapshot re-encodes to the identical bytes: the encoding is
	// canonical, so snapshot identity is byte identity.
	blob2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("round trip not byte-identical:\n%s\n%s", blob, blob2)
	}
	if got.ClockSec != 1800 || got.Fleet[1].StopSec != 900 || got.Queues[0].VM != -1 {
		t.Fatalf("fields lost in round trip: %+v", got)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, _ := Encode(sampleSnapshot())
	b, _ := Encode(sampleSnapshot())
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of equal snapshots differ")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	blob, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"not json":     []byte("state/v1"),
		"truncated":    blob[:len(blob)/2],
		"trailing":     append(append([]byte{}, blob...), []byte("{}")...),
		"bit flip":     bytes.Replace(blob, []byte(`"clockSec":1800`), []byte(`"clockSec":1801`), 1),
		"field inject": bytes.Replace(blob, []byte(`"graphPEs"`), []byte(`"bogus":1,"graphPEs"`), 1),
		"wrong version": bytes.Replace(blob, []byte(`"version":"state/v1"`),
			[]byte(`"version":"state/v0"`), 1),
		"no digest": func() []byte {
			s := sampleSnapshot()
			s.Version = Version
			s.Digest = ""
			b, _ := json.Marshal(s)
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupted input", name)
		}
	}
}

func TestDecodeErrorNamesDigest(t *testing.T) {
	blob, _ := Encode(sampleSnapshot())
	tampered := bytes.Replace(blob, []byte(`"seed":42`), []byte(`"seed":43`), 1)
	_, err := Decode(tampered)
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("tampered snapshot: got %v, want digest mismatch", err)
	}
}

func TestEncodeNil(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("Encode(nil) succeeded")
	}
}

// FuzzDecode asserts Decode never panics: arbitrary input must yield either
// a verified snapshot or an error. Seeded with a valid snapshot so mutations
// explore the version/digest/unknown-field rejection paths.
func FuzzDecode(f *testing.F) {
	blob, err := Encode(sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":"state/v1","digest":"00"}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err == nil {
			// Anything Decode accepts must re-encode byte-identically —
			// acceptance means canonical.
			blob2, err2 := Encode(s)
			if err2 != nil {
				t.Fatalf("accepted snapshot fails to re-encode: %v", err2)
			}
			if !bytes.Equal(bytes.TrimSpace(data), blob2) {
				t.Fatalf("accepted non-canonical input:\n%s\n%s", data, blob2)
			}
		}
	})
}
