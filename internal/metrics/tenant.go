package metrics

import "fmt"

// TenantSummary is the per-tenant slice of a Summary for multi-tenant runs:
// the same period-level quantities, computed per dataflow, plus the dollar
// spend the engine attributed to the tenant's core usage.
type TenantSummary struct {
	Name      string  `json:"name"`
	MeanOmega float64 `json:"meanOmega"`
	MinOmega  float64 `json:"minOmega"`
	MeanGamma float64 `json:"meanGamma"`
	// SpendUSD is the tenant's cumulative attributed spend at the final
	// interval.
	SpendUSD float64 `json:"spendUsd"`
}

// SetTenants declares the tenant dimension before the first point arrives.
// Per-tenant rows are appended with AddTenant; WriteCSV then emits
// omega_<name>/gamma_<name>/spend_usd_<name> columns after the fixed set.
func (c *Collector) SetTenants(names []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.points) > 0 || len(c.tOmega) > 0 {
		return fmt.Errorf("metrics: SetTenants after points were collected")
	}
	c.tenants = append([]string(nil), names...)
	return nil
}

// TenantNames returns the declared tenant dimension (nil single-tenant).
func (c *Collector) TenantNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.tenants...)
}

// AddTenant appends one interval's per-tenant row. Call it once after each
// Add, with slices indexed like the names given to SetTenants.
func (c *Collector) AddTenant(omega, gamma, spend []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := len(c.tenants)
	if t == 0 {
		return fmt.Errorf("metrics: AddTenant without SetTenants")
	}
	if len(omega) != t || len(gamma) != t || len(spend) != t {
		return fmt.Errorf("metrics: AddTenant row width %d/%d/%d, want %d",
			len(omega), len(gamma), len(spend), t)
	}
	if len(c.tOmega) != (len(c.points)-1)*t {
		return fmt.Errorf("metrics: AddTenant out of step with Add (%d tenant rows, %d points)",
			len(c.tOmega)/t, len(c.points))
	}
	c.tOmega = append(c.tOmega, omega...)
	c.tGamma = append(c.tGamma, gamma...)
	c.tSpend = append(c.tSpend, spend...)
	return nil
}

// TenantSeries returns copies of the flattened per-tenant series (row-major:
// interval-by-interval, stride len(TenantNames)). Used by checkpointing.
func (c *Collector) TenantSeries() (omega, gamma, spend []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]float64(nil), c.tOmega...),
		append([]float64(nil), c.tGamma...),
		append([]float64(nil), c.tSpend...)
}

// ImportTenantSeries replaces the per-tenant series wholesale — the restore
// path's counterpart to TenantSeries.
func (c *Collector) ImportTenantSeries(omega, gamma, spend []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := len(c.tenants)
	if t == 0 {
		return fmt.Errorf("metrics: ImportTenantSeries without SetTenants")
	}
	if len(omega) != len(gamma) || len(omega) != len(spend) {
		return fmt.Errorf("metrics: tenant series lengths differ: %d/%d/%d",
			len(omega), len(gamma), len(spend))
	}
	if len(omega) != len(c.points)*t {
		return fmt.Errorf("metrics: tenant series length %d, want %d points x %d tenants",
			len(omega), len(c.points), t)
	}
	c.tOmega = append([]float64(nil), omega...)
	c.tGamma = append([]float64(nil), gamma...)
	c.tSpend = append([]float64(nil), spend...)
	return nil
}

// reserveFloats grows s so n more appends stay allocation-free.
func reserveFloats(s []float64, n int) []float64 {
	if free := cap(s) - len(s); free < n {
		grown := make([]float64, len(s), len(s)+n)
		copy(grown, s)
		return grown
	}
	return s
}

// summarizeTenantsLocked reduces the per-tenant series; callers hold c.mu.
func (c *Collector) summarizeTenantsLocked() []TenantSummary {
	t := len(c.tenants)
	rows := 0
	if t > 0 {
		rows = len(c.tOmega) / t
	}
	if rows == 0 {
		return nil
	}
	out := make([]TenantSummary, t)
	for i, name := range c.tenants {
		ts := TenantSummary{Name: name, MinOmega: c.tOmega[i]}
		for r := 0; r < rows; r++ {
			o := c.tOmega[r*t+i]
			ts.MeanOmega += o
			ts.MeanGamma += c.tGamma[r*t+i]
			if o < ts.MinOmega {
				ts.MinOmega = o
			}
		}
		ts.MeanOmega /= float64(rows)
		ts.MeanGamma /= float64(rows)
		ts.SpendUSD = c.tSpend[(rows-1)*t+i]
		out[i] = ts
	}
	return out
}
