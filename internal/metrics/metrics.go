// Package metrics collects per-interval simulation measurements — the
// quantities the paper's evaluation plots: relative application throughput
// Omega(t), normalized application value Gamma(t), cumulative dollar cost
// mu(t), VM and core counts — and summarizes them over an optimization
// period.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Point is one interval's worth of measurements.
type Point struct {
	Sec        int64
	Omega      float64 // relative application throughput in [0, 1]
	Gamma      float64 // normalized application value in (0, 1]
	CostUSD    float64 // cumulative cost mu up to this interval
	ActiveVMs  int
	PendingVMs int // VMs still provisioning (acquired, not yet schedulable)
	UsedCores  int
	InputRate  float64 // aggregate external input rate, msg/s
	OutputRate float64 // aggregate output rate at sinks, msg/s
	Backlog    float64 // total queued messages
	LatencySec float64 // mean end-to-end latency estimate
}

// Collector accumulates points in time order. It is safe for concurrent
// use: the simulator appends single-threaded, but live samplers (floe)
// write from their own goroutine while observers read.
type Collector struct {
	mu     sync.Mutex
	points []Point
	// Multi-tenant runs declare a tenant dimension with SetTenants and
	// append one flattened row per interval with AddTenant (stride
	// len(tenants), row-major). All nil/empty for single-tenant runs.
	tenants []string
	tOmega  []float64
	tGamma  []float64
	tSpend  []float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends a point. Points must arrive in non-decreasing time order.
func (c *Collector) Add(p Point) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.points); n > 0 && p.Sec < c.points[n-1].Sec {
		return fmt.Errorf("metrics: out-of-order point at %d after %d", p.Sec, c.points[n-1].Sec)
	}
	c.points = append(c.points, p)
	return nil
}

// Reserve grows the collector's backing array so the next n Adds append
// without reallocating — lets zero-alloc benchmarks and long fixed-horizon
// runs pre-size the series.
func (c *Collector) Reserve(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if free := cap(c.points) - len(c.points); free < n {
		grown := make([]Point, len(c.points), len(c.points)+n)
		copy(grown, c.points)
		c.points = grown
	}
	if t := len(c.tenants); t > 0 {
		c.tOmega = reserveFloats(c.tOmega, n*t)
		c.tGamma = reserveFloats(c.tGamma, n*t)
		c.tSpend = reserveFloats(c.tSpend, n*t)
	}
}

// Points returns a snapshot of the collected points.
func (c *Collector) Points() []Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Point(nil), c.points...)
}

// Len returns the number of points.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.points)
}

// Summary aggregates a run the way §6 defines period-level quantities.
type Summary struct {
	Intervals int
	// MeanOmega is the average relative throughput over the period
	// (the constraint compares this against Omega-hat).
	MeanOmega float64
	// MinOmega is the worst interval.
	MinOmega float64
	// MeanGamma is the average application value Gamma-bar.
	MeanGamma float64
	// TotalCostUSD is mu at the final interval.
	TotalCostUSD float64
	// PeakVMs and MeanVMs characterize fleet size.
	PeakVMs int
	MeanVMs float64
	// MeanLatencySec averages the latency estimate.
	MeanLatencySec float64
	// MeanBacklog averages queued messages.
	MeanBacklog float64
	// MeanUsedCores averages the cores actually assigned to PEs — the
	// utilization quantity sweep aggregation reports alongside cost.
	MeanUsedCores float64
	// Tenants carries the per-tenant reductions of a multi-tenant run, in
	// SetTenants order; nil for single-tenant runs.
	Tenants []TenantSummary
}

// Summarize reduces the collected points.
func (c *Collector) Summarize() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.points) == 0 {
		// A zero-interval run summarizes to the zero value: no division by
		// the point count below, and no infinity leaking out of MinOmega.
		return Summary{}
	}
	s := Summary{Intervals: len(c.points), MinOmega: math.Inf(1)}
	for _, p := range c.points {
		s.MeanOmega += p.Omega
		s.MeanGamma += p.Gamma
		s.MeanVMs += float64(p.ActiveVMs)
		s.MeanLatencySec += p.LatencySec
		s.MeanBacklog += p.Backlog
		s.MeanUsedCores += float64(p.UsedCores)
		if p.Omega < s.MinOmega {
			s.MinOmega = p.Omega
		}
		if p.ActiveVMs > s.PeakVMs {
			s.PeakVMs = p.ActiveVMs
		}
	}
	n := float64(len(c.points))
	s.MeanOmega /= n
	s.MeanGamma /= n
	s.MeanVMs /= n
	s.MeanLatencySec /= n
	s.MeanBacklog /= n
	s.MeanUsedCores /= n
	s.TotalCostUSD = c.points[len(c.points)-1].CostUSD
	s.Tenants = c.summarizeTenantsLocked()
	return s
}

// OmegaSeries extracts the Omega(t) series for plotting.
func (c *Collector) OmegaSeries() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, len(c.points))
	for i, p := range c.points {
		out[i] = p.Omega
	}
	return out
}

// Quantile returns the q-quantile (0..1) of an arbitrary per-point metric.
// An empty collector yields 0, never NaN: quantiles feed JSON results and
// Prometheus gauges, and encoding/json refuses NaN.
func (c *Collector) Quantile(q float64, get func(Point) float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.points) == 0 {
		return 0
	}
	vals := make([]float64, len(c.points))
	for i, p := range c.points {
		vals[i] = get(p)
	}
	sort.Float64s(vals)
	return quantileSorted(vals, q)
}

// quantileSorted interpolates the q-quantile (0..1) of ascending vals.
// Empty input yields 0.
func quantileSorted(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	if len(vals) == 1 {
		return vals[0]
	}
	pos := q * float64(len(vals)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return vals[lo]
	}
	frac := pos - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}

// Distribution summarizes replica samples of one metric the way the sweep
// engine aggregates seeds: mean plus the P50/P95 order statistics.
type Distribution struct {
	N    int
	Mean float64
	P50  float64
	P95  float64
}

// NewDistribution reduces samples (any order) to a Distribution. The input
// slice is not modified. Empty input yields the zero Distribution — zero
// mean and quantiles, never NaN, so an all-failed sweep group still
// marshals to valid JSON.
func NewDistribution(samples []float64) Distribution {
	d := Distribution{N: len(samples)}
	if len(samples) == 0 {
		return d
	}
	vals := append([]float64(nil), samples...)
	sort.Float64s(vals)
	for _, v := range vals {
		d.Mean += v
	}
	d.Mean /= float64(len(vals))
	d.P50 = quantileSorted(vals, 0.5)
	d.P95 = quantileSorted(vals, 0.95)
	return d
}

// WriteCSV streams the points for external plotting.
func (c *Collector) WriteCSV(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cw := csv.NewWriter(w)
	header := []string{"sec", "omega", "gamma", "cost_usd", "vms", "cores", "in_rate", "out_rate", "backlog", "latency_sec", "pending_vms"}
	// Multi-tenant runs append per-tenant columns after the fixed set;
	// single-tenant output keeps the exact historical header and rows.
	nt := len(c.tenants)
	for _, name := range c.tenants {
		header = append(header, "omega_"+name, "gamma_"+name, "spend_usd_"+name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, p := range c.points {
		rec := []string{
			strconv.FormatInt(p.Sec, 10),
			f(p.Omega), f(p.Gamma), f(p.CostUSD),
			strconv.Itoa(p.ActiveVMs), strconv.Itoa(p.UsedCores),
			f(p.InputRate), f(p.OutputRate), f(p.Backlog), f(p.LatencySec),
			strconv.Itoa(p.PendingVMs),
		}
		if nt > 0 && (i+1)*nt <= len(c.tOmega) {
			for t := 0; t < nt; t++ {
				rec = append(rec, f(c.tOmega[i*nt+t]), f(c.tGamma[i*nt+t]), f(c.tSpend[i*nt+t]))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses points written by WriteCSV back into a slice — the inverse
// used by the calibration importer to treat a recorded run as an observed
// system. The header row must match WriteCSV's column set exactly (order
// included), so schema drift fails loudly instead of silently misreading.
func ReadCSV(r io.Reader) ([]Point, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("metrics: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("metrics: csv is empty")
	}
	want := []string{"sec", "omega", "gamma", "cost_usd", "vms", "cores", "in_rate", "out_rate", "backlog", "latency_sec", "pending_vms"}
	if len(rows[0]) != len(want) {
		return nil, fmt.Errorf("metrics: csv header has %d columns, want %d", len(rows[0]), len(want))
	}
	for i, col := range want {
		if rows[0][i] != col {
			return nil, fmt.Errorf("metrics: csv header column %d is %q, want %q", i+1, rows[0][i], col)
		}
	}
	points := make([]Point, 0, len(rows)-1)
	for i, row := range rows[1:] {
		fl := func(j int) (float64, error) {
			v, err := strconv.ParseFloat(row[j], 64)
			if err != nil {
				return 0, fmt.Errorf("metrics: csv row %d column %s: %w", i+2, want[j], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("metrics: csv row %d column %s: non-finite %v", i+2, want[j], v)
			}
			return v, nil
		}
		in := func(j int) (int, error) {
			v, err := strconv.Atoi(row[j])
			if err != nil {
				return 0, fmt.Errorf("metrics: csv row %d column %s: %w", i+2, want[j], err)
			}
			return v, nil
		}
		var p Point
		var errs [11]error
		p.Sec, errs[0] = strconv.ParseInt(row[0], 10, 64)
		if errs[0] != nil {
			errs[0] = fmt.Errorf("metrics: csv row %d column sec: %w", i+2, errs[0])
		}
		p.Omega, errs[1] = fl(1)
		p.Gamma, errs[2] = fl(2)
		p.CostUSD, errs[3] = fl(3)
		p.ActiveVMs, errs[4] = in(4)
		p.UsedCores, errs[5] = in(5)
		p.InputRate, errs[6] = fl(6)
		p.OutputRate, errs[7] = fl(7)
		p.Backlog, errs[8] = fl(8)
		p.LatencySec, errs[9] = fl(9)
		p.PendingVMs, errs[10] = in(10)
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		points = append(points, p)
	}
	return points, nil
}

// SummarizePoints reduces an arbitrary point slice the same way a Collector
// summarizes its own run — so imported observations and simulated runs are
// compared through identical arithmetic.
func SummarizePoints(points []Point) Summary {
	c := &Collector{points: points}
	return c.Summarize()
}

// String renders the summary as one line.
func (s Summary) String() string {
	return fmt.Sprintf("intervals=%d omega=%.3f (min %.3f) gamma=%.3f cost=$%.2f vms(mean/peak)=%.1f/%d",
		s.Intervals, s.MeanOmega, s.MinOmega, s.MeanGamma, s.TotalCostUSD, s.MeanVMs, s.PeakVMs)
}
