package metrics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReadCSVRoundTrip(t *testing.T) {
	c := NewCollector()
	pts := []Point{
		{Sec: 0, Omega: 0.91, Gamma: 1, CostUSD: 0.06, ActiveVMs: 3, PendingVMs: 1,
			UsedCores: 7, InputRate: 120.5, OutputRate: 118.25, Backlog: 42, LatencySec: 0.015},
		{Sec: 60, Omega: 0.97, Gamma: 0.8, CostUSD: 0.12, ActiveVMs: 4,
			UsedCores: 9, InputRate: 130, OutputRate: 131, Backlog: 0, LatencySec: 0.011},
	}
	for _, p := range pts {
		if err := c.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("parsed %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d = %+v, want %+v", i, got[i], pts[i])
		}
	}
	// Summarizing imported points matches summarizing the live collector.
	if !reflect.DeepEqual(SummarizePoints(got), c.Summarize()) {
		t.Fatal("summaries diverge between imported and live points")
	}
}

func TestReadCSVErrors(t *testing.T) {
	header := "sec,omega,gamma,cost_usd,vms,cores,in_rate,out_rate,backlog,latency_sec,pending_vms\n"
	cases := map[string]string{
		"empty":            "",
		"wrong header":     "sec,omega\n0,1\n",
		"renamed column":   strings.Replace(header, "gamma", "value", 1) + "0,1,1,0,1,1,1,1,0,0,0\n",
		"bad sec":          header + "x,1,1,0,1,1,1,1,0,0,0\n",
		"bad float":        header + "0,x,1,0,1,1,1,1,0,0,0\n",
		"nan":              header + "0,NaN,1,0,1,1,1,1,0,0,0\n",
		"bad int":          header + "0,1,1,0,1.5,1,1,1,0,0,0\n",
		"short row":        header + "0,1\n",
		"mismatched quote": header + "0,\"1,1,0,1,1,1,1,0,0,0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Header alone is a valid, empty run.
	got, err := ReadCSV(strings.NewReader(header))
	if err != nil {
		t.Fatalf("header-only: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("header-only: %d points", len(got))
	}
}
