package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestCollectorAddOrdering(t *testing.T) {
	c := NewCollector()
	if err := c.Add(Point{Sec: 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Point{Sec: 60}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Point{Sec: 60}); err != nil {
		t.Fatal(err) // equal timestamps allowed
	}
	if err := c.Add(Point{Sec: 30}); err == nil {
		t.Fatal("out-of-order point accepted")
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	pts := []Point{
		{Sec: 0, Omega: 1.0, Gamma: 1.0, CostUSD: 1, ActiveVMs: 2, LatencySec: 0.1, Backlog: 0},
		{Sec: 60, Omega: 0.5, Gamma: 0.8, CostUSD: 2, ActiveVMs: 4, LatencySec: 0.3, Backlog: 10},
	}
	for _, p := range pts {
		if err := c.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Summarize()
	if s.Intervals != 2 {
		t.Fatalf("intervals = %d", s.Intervals)
	}
	if s.MeanOmega != 0.75 || s.MinOmega != 0.5 {
		t.Fatalf("omega = %v / %v", s.MeanOmega, s.MinOmega)
	}
	if math.Abs(s.MeanGamma-0.9) > 1e-12 {
		t.Fatalf("gamma = %v", s.MeanGamma)
	}
	if s.TotalCostUSD != 2 {
		t.Fatalf("cost = %v", s.TotalCostUSD)
	}
	if s.PeakVMs != 4 || s.MeanVMs != 3 {
		t.Fatalf("vms = %v / %v", s.MeanVMs, s.PeakVMs)
	}
	if math.Abs(s.MeanLatencySec-0.2) > 1e-12 || s.MeanBacklog != 5 {
		t.Fatalf("lat/backlog = %v / %v", s.MeanLatencySec, s.MeanBacklog)
	}
	if !strings.Contains(s.String(), "omega=0.750") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	// A zero-interval run must summarize to the exact zero value: every
	// mean well-defined (no 0/0 NaNs), MinOmega 0 rather than +Inf, so the
	// invariant checker and aggregation can assert on empty runs.
	s := NewCollector().Summarize()
	if !reflect.DeepEqual(s, Summary{}) {
		t.Fatalf("empty summary = %+v, want zero value", s)
	}
	if math.IsNaN(s.MeanOmega) || math.IsInf(s.MinOmega, 0) {
		t.Fatalf("empty summary leaks NaN/Inf: %+v", s)
	}
}

func TestOmegaSeries(t *testing.T) {
	c := NewCollector()
	_ = c.Add(Point{Sec: 0, Omega: 0.9})
	_ = c.Add(Point{Sec: 60, Omega: 0.7})
	got := c.OmegaSeries()
	if len(got) != 2 || got[0] != 0.9 || got[1] != 0.7 {
		t.Fatalf("series = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	c := NewCollector()
	for i, v := range []float64{1, 2, 3, 4, 5} {
		_ = c.Add(Point{Sec: int64(i), Omega: v})
	}
	get := func(p Point) float64 { return p.Omega }
	if q := c.Quantile(0.5, get); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := c.Quantile(0, get); q != 1 {
		t.Fatalf("min = %v", q)
	}
	if q := c.Quantile(1, get); q != 5 {
		t.Fatalf("max = %v", q)
	}
	if q := NewCollector().Quantile(0.5, get); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	one := NewCollector()
	_ = one.Add(Point{Omega: 7})
	if q := one.Quantile(0.9, get); q != 7 {
		t.Fatalf("singleton quantile = %v", q)
	}
}

func TestNewDistribution(t *testing.T) {
	d := NewDistribution([]float64{5, 1, 3, 2, 4})
	if d.N != 5 || d.Mean != 3 || d.P50 != 3 {
		t.Fatalf("distribution = %+v", d)
	}
	if math.Abs(d.P95-4.8) > 1e-12 {
		t.Fatalf("p95 = %v", d.P95)
	}
	empty := NewDistribution(nil)
	if empty != (Distribution{}) {
		t.Fatalf("empty distribution = %+v, want zero value", empty)
	}
	one := NewDistribution([]float64{7})
	if one.Mean != 7 || one.P50 != 7 || one.P95 != 7 {
		t.Fatalf("singleton distribution = %+v", one)
	}
	// Input must not be reordered.
	in := []float64{9, 1}
	_ = NewDistribution(in)
	if in[0] != 9 {
		t.Fatal("input mutated")
	}
}

// Empty-input reductions must stay NaN-free: their values flow into JSON
// sweep results (encoding/json rejects NaN) and Prometheus gauges.
func TestEmptyReductionsMarshalToJSON(t *testing.T) {
	d := NewDistribution(nil)
	if math.IsNaN(d.Mean) || math.IsNaN(d.P50) || math.IsNaN(d.P95) {
		t.Fatalf("empty distribution has NaN fields: %+v", d)
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("empty distribution does not marshal: %v", err)
	}
	q := NewCollector().Quantile(0.95, func(p Point) float64 { return p.Omega })
	if math.IsNaN(q) {
		t.Fatal("empty collector quantile is NaN")
	}
	if _, err := json.Marshal(struct{ Q float64 }{q}); err != nil {
		t.Fatalf("empty quantile does not marshal: %v", err)
	}
}

func TestSummarizeMeanUsedCores(t *testing.T) {
	c := NewCollector()
	_ = c.Add(Point{Sec: 0, UsedCores: 2})
	_ = c.Add(Point{Sec: 60, UsedCores: 6})
	if s := c.Summarize(); s.MeanUsedCores != 4 {
		t.Fatalf("mean used cores = %v", s.MeanUsedCores)
	}
}

func TestWriteCSV(t *testing.T) {
	c := NewCollector()
	_ = c.Add(Point{Sec: 0, Omega: 0.9, Gamma: 1, CostUSD: 0.06, ActiveVMs: 1, UsedCores: 2, InputRate: 5, OutputRate: 9, Backlog: 0, LatencySec: 0.01})
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "sec,omega,gamma") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0.9,1,0.06,1,2,5,9,0,0.01") {
		t.Fatalf("row = %q", lines[1])
	}
}
