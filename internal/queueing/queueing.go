// Package queueing provides analytic M/M/c queueing formulas. The
// simulator models PEs as fluid queues; this package supplies the
// corresponding steady-state analytics — utilization, Erlang-C waiting
// probability, expected queue length and waiting time — used to validate
// the engine's latency estimator, size worker pools in the floe runtime,
// and reason about how much headroom a throughput target leaves
// (capacity = demand/omega-hat implies utilization = omega-hat at the
// constraint, and the wait grows without bound as omega-hat approaches 1).
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// MMC describes an M/M/c system: Poisson arrivals at rate Lambda, c
// identical servers each completing work at rate Mu.
type MMC struct {
	// Lambda is the arrival rate (msg/s).
	Lambda float64
	// Mu is one server's service rate (msg/s).
	Mu float64
	// C is the number of servers (cores / workers).
	C int
}

// Validate reports whether the system is well-formed.
func (m MMC) Validate() error {
	if m.Lambda < 0 {
		return fmt.Errorf("queueing: lambda %v < 0", m.Lambda)
	}
	if m.Mu <= 0 {
		return fmt.Errorf("queueing: mu %v <= 0", m.Mu)
	}
	if m.C < 1 {
		return fmt.Errorf("queueing: c %d < 1", m.C)
	}
	return nil
}

// Utilization returns rho = lambda / (c*mu), the fraction of server
// capacity in use. Stable systems have rho < 1.
func (m MMC) Utilization() float64 {
	return m.Lambda / (float64(m.C) * m.Mu)
}

// Stable reports whether the queue has a steady state.
func (m MMC) Stable() bool {
	return m.Utilization() < 1
}

// ErrUnstable marks a saturated system with no steady state.
var ErrUnstable = errors.New("queueing: utilization >= 1, no steady state")

// ErlangC returns the probability an arriving message must wait (all c
// servers busy), the Erlang-C formula. Computed with a numerically stable
// iterative form.
func (m MMC) ErlangC() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if !m.Stable() {
		return 0, ErrUnstable
	}
	if m.Lambda == 0 {
		return 0, nil
	}
	a := m.Lambda / m.Mu // offered load in Erlangs
	// Iteratively compute the Erlang-B blocking probability, then convert
	// to Erlang C: stable for large a and c.
	b := 1.0
	for k := 1; k <= m.C; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := m.Utilization()
	c := b / (1 - rho + rho*b)
	return c, nil
}

// ExpectedWaitSec returns Wq, the mean time a message spends queued before
// service begins.
func (m MMC) ExpectedWaitSec() (float64, error) {
	pWait, err := m.ErlangC()
	if err != nil {
		return 0, err
	}
	if m.Lambda == 0 {
		return 0, nil
	}
	return pWait / (float64(m.C)*m.Mu - m.Lambda), nil
}

// ExpectedQueueLen returns Lq, the mean number of queued messages
// (Little's law: Lq = lambda * Wq).
func (m MMC) ExpectedQueueLen() (float64, error) {
	wq, err := m.ExpectedWaitSec()
	if err != nil {
		return 0, err
	}
	return m.Lambda * wq, nil
}

// ExpectedSojournSec returns W, the mean total time in system (wait plus
// service).
func (m MMC) ExpectedSojournSec() (float64, error) {
	wq, err := m.ExpectedWaitSec()
	if err != nil {
		return 0, err
	}
	return wq + 1/m.Mu, nil
}

// MinServers returns the smallest c for which the system is stable AND the
// expected wait stays within maxWaitSec — the worker-pool sizing question
// the floe controller answers by feedback, answered analytically. The
// search is linear from the stability bound; maxC caps it (0 means 4096).
func MinServers(lambda, mu, maxWaitSec float64, maxC int) (int, error) {
	if lambda < 0 || mu <= 0 || maxWaitSec <= 0 {
		return 0, fmt.Errorf("queueing: bad inputs lambda=%v mu=%v maxWait=%v", lambda, mu, maxWaitSec)
	}
	if maxC <= 0 {
		maxC = 4096
	}
	start := int(math.Floor(lambda/mu)) + 1
	if start < 1 {
		start = 1
	}
	for c := start; c <= maxC; c++ {
		m := MMC{Lambda: lambda, Mu: mu, C: c}
		wq, err := m.ExpectedWaitSec()
		if err != nil {
			continue
		}
		if wq <= maxWaitSec {
			return c, nil
		}
	}
	return 0, fmt.Errorf("queueing: no c <= %d meets wait %vs", maxC, maxWaitSec)
}

// FluidDrainSec returns how long a fluid (deterministic-rate) backlog of q
// messages takes to drain when capacity exceeds arrivals — the model the
// simulator's queues follow, provided for comparison against the
// stochastic wait.
func FluidDrainSec(backlog, lambda, capacity float64) (float64, error) {
	if backlog < 0 || lambda < 0 || capacity <= 0 {
		return 0, fmt.Errorf("queueing: bad inputs backlog=%v lambda=%v capacity=%v", backlog, lambda, capacity)
	}
	if capacity <= lambda {
		return math.Inf(1), nil
	}
	return backlog / (capacity - lambda), nil
}
