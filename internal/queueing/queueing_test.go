package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := MMC{Lambda: 5, Mu: 2, C: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MMC{
		{Lambda: -1, Mu: 2, C: 3},
		{Lambda: 5, Mu: 0, C: 3},
		{Lambda: 5, Mu: 2, C: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("bad %d accepted", i)
		}
	}
}

func TestUtilizationAndStability(t *testing.T) {
	m := MMC{Lambda: 5, Mu: 2, C: 3}
	if got := m.Utilization(); math.Abs(got-5.0/6.0) > 1e-12 {
		t.Fatalf("rho = %v", got)
	}
	if !m.Stable() {
		t.Fatal("stable system reported unstable")
	}
	sat := MMC{Lambda: 6, Mu: 2, C: 3}
	if sat.Stable() {
		t.Fatal("saturated system reported stable")
	}
	if _, err := sat.ErlangC(); err != ErrUnstable {
		t.Fatalf("want ErrUnstable, got %v", err)
	}
}

func TestMM1ClosedForm(t *testing.T) {
	// For c=1 the Erlang C equals rho and Wq = rho/(mu - lambda).
	m := MMC{Lambda: 3, Mu: 5, C: 1}
	rho := 0.6
	pw, err := m.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pw-rho) > 1e-12 {
		t.Fatalf("ErlangC = %v, want rho %v", pw, rho)
	}
	wq, _ := m.ExpectedWaitSec()
	want := rho / (5 - 3)
	if math.Abs(wq-want) > 1e-12 {
		t.Fatalf("Wq = %v, want %v", wq, want)
	}
	w, _ := m.ExpectedSojournSec()
	// M/M/1: W = 1/(mu - lambda).
	if math.Abs(w-1.0/2.0) > 1e-12 {
		t.Fatalf("W = %v, want 0.5", w)
	}
	lq, _ := m.ExpectedQueueLen()
	// Lq = rho^2/(1-rho) = 0.36/0.4 = 0.9.
	if math.Abs(lq-0.9) > 1e-12 {
		t.Fatalf("Lq = %v, want 0.9", lq)
	}
}

func TestKnownErlangCValue(t *testing.T) {
	// Classic reference case: a = 2 Erlangs, c = 3 -> P(wait) = 4/9 * P0
	// terms; textbook value ~0.4444/ ... compute directly against the
	// closed form: C(3, 2) = (2^3/3!)*(3/(3-2)) / (sum_{k=0}^{2} 2^k/k! +
	// (2^3/3!)*(3/(3-2))) = (4/3*... )
	m := MMC{Lambda: 2, Mu: 1, C: 3}
	pw, err := m.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	num := math.Pow(2, 3) / 6 * (3.0 / (3.0 - 2.0))
	den := 1 + 2 + 2 + num // 2^0/0! + 2^1/1! + 2^2/2! + num
	want := num / den
	if math.Abs(pw-want) > 1e-12 {
		t.Fatalf("ErlangC = %v, want %v", pw, want)
	}
}

func TestZeroArrivals(t *testing.T) {
	m := MMC{Lambda: 0, Mu: 2, C: 2}
	pw, err := m.ErlangC()
	if err != nil || pw != 0 {
		t.Fatalf("pw = %v err %v", pw, err)
	}
	wq, _ := m.ExpectedWaitSec()
	if wq != 0 {
		t.Fatalf("Wq = %v", wq)
	}
}

func TestMinServers(t *testing.T) {
	// lambda 10, mu 2: stability needs c >= 6; a tight wait bound needs
	// more.
	c, err := MinServers(10, 2, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c < 6 {
		t.Fatalf("c = %d below stability bound", c)
	}
	m := MMC{Lambda: 10, Mu: 2, C: c}
	wq, _ := m.ExpectedWaitSec()
	if wq > 0.01 {
		t.Fatalf("c = %d gives Wq %v > bound", c, wq)
	}
	if c > 6 {
		// One fewer server must violate the bound (minimality).
		prev := MMC{Lambda: 10, Mu: 2, C: c - 1}
		if wqPrev, err := prev.ExpectedWaitSec(); err == nil && wqPrev <= 0.01 {
			t.Fatalf("c-1 = %d already meets the bound (Wq %v)", c-1, wqPrev)
		}
	}
	if _, err := MinServers(10, 2, 0.000001, 7); err == nil {
		t.Fatal("impossible bound accepted")
	}
	if _, err := MinServers(-1, 2, 1, 0); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestFluidDrain(t *testing.T) {
	d, err := FluidDrainSec(100, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d != 20 {
		t.Fatalf("drain = %v, want 20", d)
	}
	d, _ = FluidDrainSec(100, 10, 10)
	if !math.IsInf(d, 1) {
		t.Fatalf("saturated drain = %v, want +inf", d)
	}
	if _, err := FluidDrainSec(-1, 5, 10); err == nil {
		t.Fatal("negative backlog accepted")
	}
}

func TestPropertyErlangCInUnitInterval(t *testing.T) {
	f := func(lr, mr uint16, cr uint8) bool {
		lambda := float64(lr%500) / 10
		mu := 0.1 + float64(mr%100)/10
		c := 1 + int(cr%32)
		m := MMC{Lambda: lambda, Mu: mu, C: c}
		pw, err := m.ErlangC()
		if err != nil {
			return !m.Stable() // only saturation may error
		}
		return pw >= 0 && pw <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMoreServersNeverSlower(t *testing.T) {
	f := func(lr, mr uint16, cr uint8) bool {
		lambda := 0.1 + float64(lr%300)/10
		mu := 0.1 + float64(mr%100)/10
		c := 1 + int(cr%16)
		a := MMC{Lambda: lambda, Mu: mu, C: c}
		b := MMC{Lambda: lambda, Mu: mu, C: c + 1}
		wa, errA := a.ExpectedWaitSec()
		wb, errB := b.ExpectedWaitSec()
		if errA != nil {
			return true // a saturated; nothing to compare
		}
		if errB != nil {
			return false // more servers can't lose stability
		}
		return wb <= wa+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLittlesLaw(t *testing.T) {
	f := func(lr, mr uint16, cr uint8) bool {
		lambda := 0.1 + float64(lr%200)/10
		mu := 0.1 + float64(mr%100)/10
		c := 1 + int(cr%16)
		m := MMC{Lambda: lambda, Mu: mu, C: c}
		if !m.Stable() {
			return true
		}
		wq, err1 := m.ExpectedWaitSec()
		lq, err2 := m.ExpectedQueueLen()
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(lq-lambda*wq) < 1e-9*(1+lq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
