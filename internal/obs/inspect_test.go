package obs

import (
	"strings"
	"testing"
)

func sampleRun() []Event {
	return []Event{
		{Sec: 0, Type: EventRun, Phase: PhaseStart, Detail: "global"},
		{Sec: 0, Type: EventSelectAlternate, Phase: PhaseInit, PE: 0, Detail: "full"},
		{Sec: 0, Type: EventStep, Phase: PhaseStart},
		{Sec: 60, Type: EventStep, Phase: PhaseEnd, Value: 0.9},
		{Sec: 60, Type: EventSelectAlternate, PE: 0, N: 1, Detail: "lite"},
		{Sec: 180, Type: EventSelectAlternate, PE: 0, N: 0, Detail: "full"},
		{Sec: 240, Type: EventRun, Phase: PhaseEnd, Value: 0.88},
	}
}

func TestTimelineFiltersBookkeeping(t *testing.T) {
	out := Timeline(sampleRun(), false)
	want := "t=60s select-alternate pe=0 n=1 (lite)\n" +
		"t=180s select-alternate pe=0 (full)\n"
	if out != want {
		t.Fatalf("timeline = %q, want %q", out, want)
	}
	all := Timeline(sampleRun(), true)
	if !strings.Contains(all, "step:start") || !strings.Contains(all, "run:end") {
		t.Fatalf("full timeline missing bookkeeping:\n%s", all)
	}
}

func TestOccupancy(t *testing.T) {
	// full for 60s, lite for 120s, full again for 60s of a 240s horizon.
	out := Occupancy(sampleRun())
	want := "pe=0: full=50.0% lite=50.0%\n"
	if out != want {
		t.Fatalf("occupancy = %q, want %q", out, want)
	}
}

func TestOccupancyMultiplePEsSorted(t *testing.T) {
	events := []Event{
		{Sec: 0, Type: EventSelectAlternate, Phase: PhaseInit, PE: 2, Detail: "b"},
		{Sec: 0, Type: EventSelectAlternate, Phase: PhaseInit, PE: 0, Detail: "a"},
		{Sec: 100, Type: EventRun, Phase: PhaseEnd},
	}
	out := Occupancy(events)
	want := "pe=0: a=100.0%\npe=2: b=100.0%\n"
	if out != want {
		t.Fatalf("occupancy = %q, want %q", out, want)
	}
}

func TestDiffDecisions(t *testing.T) {
	a := sampleRun()
	b := sampleRun()
	report, same := DiffDecisions(a, b)
	if !same || !strings.HasPrefix(report, "decisions: 2 common, 0 only in A, 0 only in B") {
		t.Fatalf("identical runs diff: %q", report)
	}

	// Perturb run b: drop one decision, add another.
	b = append(b[:4], b[5:]...) // remove the t=60s switch to lite
	b = append(b, Event{Sec: 240, Type: EventReleaseVM, VM: 7})
	report, same = DiffDecisions(a, b)
	if same {
		t.Fatal("differing runs reported identical")
	}
	if !strings.Contains(report, "- t=60s select-alternate pe=0 n=1 (lite)") {
		t.Fatalf("missing A-only line:\n%s", report)
	}
	if !strings.Contains(report, "+ t=240s release-vm vm=7") {
		t.Fatalf("missing B-only line:\n%s", report)
	}
	if !strings.HasPrefix(report, "decisions: 1 common, 1 only in A, 1 only in B") {
		t.Fatalf("bad header:\n%s", report)
	}
}

func TestDiffDecisionsIgnoresBookkeeping(t *testing.T) {
	a := []Event{{Sec: 0, Type: EventStep, Phase: PhaseStart}}
	b := []Event{{Sec: 999, Type: EventRun, Phase: PhaseEnd}}
	if _, same := DiffDecisions(a, b); !same {
		t.Fatal("bookkeeping-only streams should diff as identical")
	}
}
