package obs

import (
	"strings"
	"testing"
)

func explainFixture() []Event {
	return []Event{
		{Sec: 60, Type: EventStep, Phase: PhaseEnd, Value: 0.62},
		{Sec: 120, Type: EventDecision, PE: 1, Decision: &Decision{
			Kind: "scale-up", PE: 1,
			Chosen: "acquire m1.medium (vm-4)",
			Reason: "smallest on-demand class covering the deficit",
			Inputs: map[string]float64{"meanOmega": 0.62, "requiredEcu": 3.1},
			Options: []DecisionOption{
				{Name: "m1.small", Score: 1, Rejected: "below the remaining deficit"},
				{Name: "m1.medium", Score: 2},
			},
			Notes: []string{"breaker open: m1.large until t=300s"},
		}},
		{Sec: 120, Type: EventAcquireVM, VM: 4, Detail: "m1.medium"},
		{Sec: 180, Type: EventDecision, Decision: &Decision{Kind: "scale-down", Chosen: "unassign-cores vm-2"}},
	}
}

func TestExplainRendersDecision(t *testing.T) {
	out := Explain(explainFixture(), 120)
	for _, want := range []string{
		"t=120s decision scale-up pe=1",
		"context: omega at last step end = 0.6200",
		"inputs: meanOmega=0.6200 requiredEcu=3.1000",
		"- m1.small",
		"below the remaining deficit",
		"+ m1.medium",
		"chosen: acquire m1.medium (vm-4)",
		"reason: smallest on-demand class covering the deficit",
		"note: breaker open: m1.large until t=300s",
		"actions at t=120s:",
		"acquire-vm vm=4 (m1.medium)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainListsDecisionSeconds(t *testing.T) {
	out := Explain(explainFixture(), 90)
	if !strings.Contains(out, "no decisions at t=90s") {
		t.Fatalf("missing no-decision header:\n%s", out)
	}
	if !strings.Contains(out, "decision seconds: 120 180") {
		t.Fatalf("missing sorted decision seconds:\n%s", out)
	}
}

func TestExplainEmptyStream(t *testing.T) {
	out := Explain(nil, 60)
	if !strings.Contains(out, "carries no decision events") {
		t.Fatalf("missing empty-stream hint:\n%s", out)
	}
}
