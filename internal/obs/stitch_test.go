package obs

import (
	"reflect"
	"testing"
)

func types(events []Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = ev.Type
		if ev.Phase != "" {
			out[i] += ":" + ev.Phase
		}
	}
	return out
}

// TestStitchLeaseBeforeWorkerEvents: a worker capture listed first still
// stitches after the coordinator's lease for its span.
func TestStitchLeaseBeforeWorkerEvents(t *testing.T) {
	worker := []Event{
		{Type: EventSweepJob, Phase: PhaseStart, Span: "j#0"},
		{Type: EventSweepJob, Phase: PhaseEnd, Span: "j#0"},
	}
	coord := []Event{
		{Type: EventLease, Span: "j#0"},
		{Type: EventResultAck, Span: "j#0"},
	}
	got := types(StitchTimeline(worker, coord))
	want := []string{"lease", "sweep-job:start", "sweep-job:end", "result-ack"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestStitchAckWaitsForEveryJobEnd: a requeued span delivers several
// job-end events; the ack must follow all of them.
func TestStitchAckWaitsForEveryJobEnd(t *testing.T) {
	coord := []Event{
		{Type: EventLease, Span: "j#0"},
		{Type: EventResultDup, Span: "j#0"},
	}
	w1 := []Event{{Type: EventSweepJob, Phase: PhaseEnd, Span: "j#0"}}
	w2 := []Event{{Type: EventSweepJob, Phase: PhaseEnd, Span: "j#0"}}
	got := types(StitchTimeline(coord, w1, w2))
	want := []string{"lease", "sweep-job:end", "sweep-job:end", "result-dup"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestStitchWaivesMissingWitness: a partial capture set (no stream holds
// the span's lease) must not block the worker's events.
func TestStitchWaivesMissingWitness(t *testing.T) {
	worker := []Event{
		{Type: EventSweepJob, Phase: PhaseStart, Span: "j#0"},
		{Type: EventSweepJob, Phase: PhaseEnd, Span: "j#0"},
	}
	got := StitchTimeline(worker)
	if len(got) != 2 {
		t.Fatalf("waived merge dropped events: %v", types(got))
	}
}

// TestStitchMalformedCapturesTerminate: an ack ordered before its own
// stream's job-end is unsatisfiable; the merge must fall back to stream
// order instead of deadlocking, and keep every event.
func TestStitchMalformedCapturesTerminate(t *testing.T) {
	bad := []Event{
		{Type: EventLease, Span: "j#0"},
		{Type: EventResultAck, Span: "j#0"},
		{Type: EventSweepJob, Phase: PhaseEnd, Span: "j#0"},
	}
	got := StitchTimeline(bad)
	if len(got) != 3 {
		t.Fatalf("fallback merge lost events: %v", types(got))
	}
}

// TestStitchTieBreaksByStreamIndex: events with no cross-stream constraint
// interleave deterministically, lowest argument index first.
func TestStitchTieBreaksByStreamIndex(t *testing.T) {
	a := []Event{{Type: EventWorkerJoin, Detail: "a"}}
	b := []Event{{Type: EventWorkerJoin, Detail: "b"}}
	got := StitchTimeline(a, b)
	if got[0].Detail != "a" || got[1].Detail != "b" {
		t.Fatalf("tie-break not by stream index: %v, %v", got[0], got[1])
	}
	rev := StitchTimeline(b, a)
	if rev[0].Detail != "b" || rev[1].Detail != "a" {
		t.Fatalf("tie-break not by stream index when reversed: %v, %v", rev[0], rev[1])
	}
}
