package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriteTextExact locks the full exposition down to exact bytes:
// HELP/TYPE comments, family ordering, label rendering, and histogram
// cumulative buckets with +Inf, _sum and _count.
func TestWriteTextExact(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("zz_last", "Sorts last despite being registered first.").Set(2.5)
	reg.Counter("jobs_total", "Jobs processed.").Add(3)
	v := reg.CounterVec("requests_total", "Requests by method and code.", "method", "code")
	v.With("GET", "200").Add(2)
	v.With("DELETE", "404").Inc()
	h := reg.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(3)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total 3
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 4.05
latency_seconds_count 4
# HELP requests_total Requests by method and code.
# TYPE requests_total counter
requests_total{method="DELETE",code="404"} 1
requests_total{method="GET",code="200"} 2
# HELP zz_last Sorts last despite being registered first.
# TYPE zz_last gauge
zz_last 2.5
`
	if b.String() != want {
		t.Fatalf("exposition mismatch\n-- got --\n%s-- want --\n%s", b.String(), want)
	}
}

func TestWriteTextEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeVec("g", "Help with \\ backslash\nand newline.", "l").
		With("quote \" slash \\ nl \n end").Set(1)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP g Help with \\ backslash\nand newline.
# TYPE g gauge
g{l="quote \" slash \\ nl \n end"} 1
`
	if b.String() != want {
		t.Fatalf("escaping mismatch\n-- got --\n%q\n-- want --\n%q", b.String(), want)
	}
}

// TestWriteTextDeterministic asserts repeated renders produce identical
// bytes regardless of map iteration order.
func TestWriteTextDeterministic(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("multi", "Many children.", "k")
	for _, k := range []string{"delta", "alpha", "echo", "bravo", "charlie"} {
		v.With(k).Set(1)
	}
	var first strings.Builder
	if err := reg.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again strings.Builder
		if err := reg.WriteText(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, again.String(), first.String())
		}
	}
}

// TestWriteTextSkipsEmptyFamilies: a Vec with no children yet must not
// emit orphan HELP/TYPE comments.
func TestWriteTextSkipsEmptyFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("unused_total", "Never incremented.", "x")
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("empty family rendered: %q", b.String())
	}
}

func TestHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "C.").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 1") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestInstrumentHandler(t *testing.T) {
	reg := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		if _, ok := w.(http.Flusher); !ok {
			t.Error("instrumented writer lost the Flusher interface")
		}
		_, _ = w.Write([]byte("ok"))
	})
	h := InstrumentHandler(reg, "svc", inner)
	for _, path := range []string{"/", "/", "/missing"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`svc_requests_total{method="GET",code="200"} 2`,
		`svc_requests_total{method="GET",code="404"} 1`,
		`svc_request_seconds_count{method="GET"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "A.")
	// Same shape: fine, idempotent.
	reg.Counter("a_total", "A.").Inc()
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind did not panic")
		}
	}()
	reg.Gauge("a_total", "A.")
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{0.1: "0.1", 1: "1", 1e9: "1e+09"}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
