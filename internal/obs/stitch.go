package obs

// StitchTimeline merges NDJSON captures from a fabric campaign — one
// coordinator stream plus any number of worker streams — into a single
// causally ordered event sequence. Each input stream's internal order is
// preserved; across streams the merge enforces the span lifecycle:
//
//   - a span's lease event (coordinator) precedes every event carrying
//     that span from other streams (the worker can only have run the job
//     after the lease was granted);
//   - a span's result ack (result-ack / result-dup, coordinator) follows
//     the span's sweep-job end event from other streams when one exists
//     (the coordinator can only have journaled a result the worker sent).
//
// Ties are broken by input-stream index, so the output is deterministic
// for a given argument order regardless of wall-clock interleaving —
// equal-timestamp events from different captures always stitch the same
// way. Streams with missing endpoints (partial captures) degrade
// gracefully: a constraint whose witness event appears in no stream is
// waived, and if the constraint graph is unsatisfiable the merge falls
// back to stream order rather than deadlocking.
func StitchTimeline(streams ...[]Event) []Event {
	total := 0
	// leases[s] counts lease events for span s across all streams;
	// jobEnds[s] counts sweep-job end events for span s.
	leases := map[string]int{}
	jobEnds := map[string]int{}
	for _, st := range streams {
		total += len(st)
		for _, ev := range st {
			if ev.Span == "" {
				continue
			}
			switch {
			case ev.Type == EventLease:
				leases[ev.Span]++
			case ev.Type == EventSweepJob && ev.Phase == PhaseEnd:
				jobEnds[ev.Span]++
			}
		}
	}

	out := make([]Event, 0, total)
	pos := make([]int, len(streams))
	leasedOut := map[string]bool{} // span -> lease already emitted
	endedOut := map[string]int{}   // span -> job-end events emitted

	eligible := func(ev Event) bool {
		if ev.Span == "" {
			return true
		}
		switch ev.Type {
		case EventLease:
			return true
		case EventResultAck, EventResultDup:
			// The ack closes the span: wait for every job-end the
			// captures contain (requeued spans can have several).
			return endedOut[ev.Span] >= jobEnds[ev.Span]
		default:
			// Worker-side (and expiry-side) span events wait for the
			// lease that granted the span, when any capture has it.
			return leases[ev.Span] == 0 || leasedOut[ev.Span]
		}
	}
	emit := func(i int) {
		ev := streams[i][pos[i]]
		pos[i]++
		out = append(out, ev)
		if ev.Span == "" {
			return
		}
		switch {
		case ev.Type == EventLease:
			leasedOut[ev.Span] = true
		case ev.Type == EventSweepJob && ev.Phase == PhaseEnd:
			endedOut[ev.Span]++
		}
	}

	for len(out) < total {
		progressed := false
		for i := range streams {
			if pos[i] < len(streams[i]) && eligible(streams[i][pos[i]]) {
				emit(i)
				progressed = true
				break
			}
		}
		if progressed {
			continue
		}
		// Unsatisfiable constraints (malformed captures): fall back to the
		// first non-exhausted stream so the merge always terminates.
		for i := range streams {
			if pos[i] < len(streams[i]) {
				emit(i)
				break
			}
		}
	}
	return out
}
