package obs

import (
	"fmt"
	"sort"
	"strings"
)

// decision reports whether an event is an adaptation decision (or its
// consequence) rather than bookkeeping — the records a run diff and the
// default timeline care about. Step spans and run spans are bookkeeping;
// init-phase snapshots are state, not decisions.
func decision(ev Event) bool {
	switch ev.Type {
	case EventStep, EventRun, EventSweepJob:
		return false
	}
	return ev.Phase != PhaseInit
}

// Timeline renders the decision timeline of one run, one deterministic line
// per event in stream order. With all set, bookkeeping events (step and run
// spans, init snapshots) are included too.
func Timeline(events []Event, all bool) string {
	var b strings.Builder
	for _, ev := range events {
		if !all && !decision(ev) {
			continue
		}
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// occSeg tracks one PE's time on one alternate.
type occSeg struct {
	alt string
	sec int64
}

// Occupancy summarizes how long each PE spent on each alternate, derived
// from init-phase selection snapshots, select-alternate events, and the
// stream's horizon (its maximum timestamp). Output is deterministic: PEs
// ascending, alternates by first activation.
func Occupancy(events []Event) string {
	horizon := int64(0)
	for _, ev := range events {
		if ev.Sec > horizon {
			horizon = ev.Sec
		}
	}
	current := map[int]string{} // pe -> active alternate name
	since := map[int]int64{}    // pe -> activation time
	order := map[int][]string{} // pe -> alternates in first-activation order
	total := map[int]map[string]int64{}

	charge := func(pe int, until int64) {
		alt, ok := current[pe]
		if !ok {
			return
		}
		if total[pe] == nil {
			total[pe] = map[string]int64{}
		}
		if _, seen := total[pe][alt]; !seen {
			order[pe] = append(order[pe], alt)
		}
		total[pe][alt] += until - since[pe]
	}

	for _, ev := range events {
		if ev.Type != EventSelectAlternate {
			continue
		}
		alt := ev.Detail
		if alt == "" {
			alt = fmt.Sprintf("alt-%d", ev.N)
		}
		charge(ev.PE, ev.Sec)
		current[ev.PE] = alt
		since[ev.PE] = ev.Sec
	}
	pes := make([]int, 0, len(current))
	for pe := range current {
		charge(pe, horizon)
		pes = append(pes, pe)
	}
	sort.Ints(pes)

	var b strings.Builder
	for _, pe := range pes {
		fmt.Fprintf(&b, "pe=%d:", pe)
		for _, alt := range order[pe] {
			share := 0.0
			if horizon > 0 {
				share = 100 * float64(total[pe][alt]) / float64(horizon)
			}
			fmt.Fprintf(&b, " %s=%.1f%%", alt, share)
		}
		if horizon == 0 {
			// Zero-length stream: the selection existed but no time passed.
			fmt.Fprintf(&b, " %s=-", current[pe])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DiffDecisions compares two runs' adaptation decisions as timestamped
// multisets. It returns a deterministic report — lines prefixed "-" appear
// only in run a, "+" only in run b — and whether the decision streams are
// identical.
func DiffDecisions(a, b []Event) (string, bool) {
	counts := map[string]int{} // rendering -> (count in a) - (count in b)
	for _, ev := range a {
		if decision(ev) {
			counts[ev.String()]++
		}
	}
	common := 0
	for _, ev := range b {
		if !decision(ev) {
			continue
		}
		k := ev.String()
		if counts[k] > 0 {
			common++
		}
		counts[k]--
	}
	var onlyA, onlyB []string
	for k, d := range counts {
		for ; d > 0; d-- {
			onlyA = append(onlyA, "- "+k)
		}
		for ; d < 0; d++ {
			onlyB = append(onlyB, "+ "+k)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)

	var out strings.Builder
	fmt.Fprintf(&out, "decisions: %d common, %d only in A, %d only in B\n",
		common, len(onlyA), len(onlyB))
	for _, l := range onlyA {
		out.WriteString(l)
		out.WriteByte('\n')
	}
	for _, l := range onlyB {
		out.WriteString(l)
		out.WriteByte('\n')
	}
	return out.String(), len(onlyA) == 0 && len(onlyB) == 0
}
