package obs

// RunGauges is the per-run simulation gauge set the exposition handler
// serves: the live quantities an operator watches while a scenario runs.
// The engine updates them at the end of every interval when attached; a
// nil *RunGauges (or nil individual gauge) is a no-op.
type RunGauges struct {
	// Omega is the last interval's relative application throughput.
	Omega *Gauge
	// Gamma is the last interval's normalized application value.
	Gamma *Gauge
	// InputRate is the aggregate external input rate, msg/s.
	InputRate *Gauge
	// Theta is the run's objective value (set by the runner at completion;
	// the engine itself does not know the objective).
	Theta *Gauge
	// UsedCores is the cores currently assigned to PEs.
	UsedCores *Gauge
	// PendingVMs is the VMs still provisioning.
	PendingVMs *Gauge
	// ActiveVMs is the running fleet size.
	ActiveVMs *Gauge
	// Backlog is the total queued messages.
	Backlog *Gauge
	// CostUSD is the cumulative dollar cost.
	CostUSD *Gauge
	// Violations is the invariant violations recorded so far (stays 0 when
	// no checker is attached).
	Violations *Gauge
	// TenantOmega, TenantGamma, and TenantSpend break Omega, Gamma, and
	// attributed spend out per tenant dataflow ("tenant" label). The
	// families stay empty — and invisible in the exposition — outside
	// multi-tenant runs.
	TenantOmega *GaugeVec
	TenantGamma *GaugeVec
	TenantSpend *GaugeVec
}

// NewRunGauges registers the sim_* gauge set on a registry.
func NewRunGauges(reg *Registry) *RunGauges {
	return &RunGauges{
		Omega:      reg.Gauge("sim_omega", "Relative application throughput over the last interval."),
		Gamma:      reg.Gauge("sim_gamma", "Normalized application value over the last interval."),
		InputRate:  reg.Gauge("sim_input_rate", "Aggregate external input rate in messages per second."),
		Theta:      reg.Gauge("sim_theta", "Objective value of the most recently completed run."),
		UsedCores:  reg.Gauge("sim_used_cores", "CPU cores currently assigned to PEs."),
		PendingVMs: reg.Gauge("sim_pending_vms", "VMs acquired but still provisioning."),
		ActiveVMs:  reg.Gauge("sim_active_vms", "VMs running and schedulable."),
		Backlog:    reg.Gauge("sim_backlog_messages", "Messages queued across all PEs."),
		CostUSD:    reg.Gauge("sim_cost_usd", "Cumulative dollars billed this run."),
		Violations: reg.Gauge("sim_invariant_violations", "Invariant violations recorded this run."),
		TenantOmega: reg.GaugeVec("sim_tenant_omega",
			"Per-tenant relative throughput over the last interval.", "tenant"),
		TenantGamma: reg.GaugeVec("sim_tenant_gamma",
			"Per-tenant normalized application value over the last interval.", "tenant"),
		TenantSpend: reg.GaugeVec("sim_tenant_spend_usd",
			"Cumulative dollars attributed to the tenant this run.", "tenant"),
	}
}

// PoolMetrics instruments the sweep worker pool. The sweep engine updates
// them as jobs move through the pool; counters accumulate across campaigns
// sharing the set. A nil *PoolMetrics is a no-op.
type PoolMetrics struct {
	// JobsQueued is the jobs expanded but not yet started (or cached).
	JobsQueued *Gauge
	// JobsRunning is the jobs currently executing.
	JobsRunning *Gauge
	// JobsDone counts completed job executions.
	JobsDone *Counter
	// JobsErrors counts completed jobs that failed deterministically.
	JobsErrors *Counter
	// CacheHits counts jobs served from the journal.
	CacheHits *Counter
}

// NewPoolMetrics registers the sweep_jobs_* metric set on a registry.
func NewPoolMetrics(reg *Registry) *PoolMetrics {
	return &PoolMetrics{
		JobsQueued:  reg.Gauge("sweep_jobs_queued", "Sweep jobs waiting for a worker."),
		JobsRunning: reg.Gauge("sweep_jobs_running", "Sweep jobs currently executing."),
		JobsDone:    reg.Counter("sweep_jobs_done_total", "Sweep jobs executed to completion."),
		JobsErrors:  reg.Counter("sweep_jobs_errors_total", "Sweep jobs that failed deterministically."),
		CacheHits:   reg.Counter("sweep_jobs_cache_hits_total", "Sweep jobs served from the journal."),
	}
}

// FabricMetrics instruments the distributed sweep fabric coordinator: the
// worker fleet, the lease state machine, and the exactly-once ack path.
// A nil *FabricMetrics is a no-op.
type FabricMetrics struct {
	// WorkersLive is the workers seen within one lease TTL.
	WorkersLive *Gauge
	// LeasesActive is the jobs currently leased to workers.
	LeasesActive *Gauge
	// LeasesTotal counts leases granted (first attempts and retries alike).
	LeasesTotal *Counter
	// LeaseExpiries counts leases that reached their TTL without renewal.
	LeaseExpiries *Counter
	// Requeues counts expired jobs sent back to the queue with backoff.
	Requeues *Counter
	// Quarantined counts jobs retired as poison after repeated lease
	// failures.
	Quarantined *Counter
	// Heartbeats counts worker heartbeat calls.
	Heartbeats *Counter
	// DupResults counts duplicate result deliveries ignored by the
	// idempotent ack path.
	DupResults *Counter
}

// NewFabricMetrics registers the fabric_* metric set on a registry.
func NewFabricMetrics(reg *Registry) *FabricMetrics {
	return &FabricMetrics{
		WorkersLive:   reg.Gauge("fabric_workers_live", "Fabric workers seen within one lease TTL."),
		LeasesActive:  reg.Gauge("fabric_leases_active", "Sweep jobs currently leased to fabric workers."),
		LeasesTotal:   reg.Counter("fabric_leases_total", "Job leases granted by the fabric coordinator."),
		LeaseExpiries: reg.Counter("fabric_lease_expiries_total", "Leases that reached their TTL without renewal."),
		Requeues:      reg.Counter("fabric_requeues_total", "Expired jobs requeued with backoff."),
		Quarantined:   reg.Counter("fabric_quarantined_total", "Jobs quarantined after repeated lease failures."),
		Heartbeats:    reg.Counter("fabric_heartbeats_total", "Worker heartbeats processed."),
		DupResults:    reg.Counter("fabric_duplicate_results_total", "Duplicate result deliveries ignored."),
	}
}
