package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestStageProfilerAccumulates(t *testing.T) {
	p := NewStageProfiler(nil)
	flow := p.StageIndex("flow")
	if again := p.StageIndex("flow"); again != flow {
		t.Fatalf("StageIndex not idempotent: %d then %d", flow, again)
	}
	billing := p.StageIndex("billing")

	for i := 0; i < 3; i++ {
		m := p.Begin()
		_ = make([]byte, 1<<10)
		p.End(flow, m)
	}
	p.End(billing, p.Begin())

	stats := p.Snapshot()
	if len(stats) != 2 || stats[0].Name != "flow" || stats[1].Name != "billing" {
		t.Fatalf("snapshot not in registration order: %+v", stats)
	}
	if stats[0].Count != 3 || stats[1].Count != 1 {
		t.Fatalf("counts wrong: %+v", stats)
	}
	if stats[0].WallNs <= 0 || stats[0].MinNs > stats[0].MaxNs {
		t.Fatalf("wall-time aggregates inconsistent: %+v", stats[0])
	}

	report := p.Report()
	for _, want := range []string{"flow", "billing", "where did the step go", "allocs/call"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestStageProfilerSamplesAllocs pins the allocation-sampling cadence: the
// heap-objects counter is read only on every allocSampleEvery-th Begin
// (starting with the first), while wall time and counts cover every call.
// Reading the counter on every call is the overhead regression this guards
// against — it once tripled a profiled engine's step time.
func TestStageProfilerSamplesAllocs(t *testing.T) {
	p := NewStageProfiler(nil)
	i := p.StageIndex("flow")
	const cycles = 2*allocSampleEvery + 1
	for c := 0; c < cycles; c++ {
		p.End(i, p.Begin())
	}
	s := p.Snapshot()[0]
	if s.Count != cycles {
		t.Fatalf("Count = %d, want %d (every call counted)", s.Count, cycles)
	}
	if s.AllocSamples != 3 {
		t.Fatalf("AllocSamples = %d over %d calls, want 3 (calls 0, %d, %d)",
			s.AllocSamples, cycles, allocSampleEvery, 2*allocSampleEvery)
	}
}

func TestStageProfilerNilSafe(t *testing.T) {
	var p *StageProfiler
	m := p.Begin()
	p.End(0, m)
	if p.Snapshot() != nil {
		t.Fatal("nil profiler snapshot not nil")
	}
}

func TestStageProfilerPublishesHistograms(t *testing.T) {
	reg := NewRegistry()
	p := NewStageProfiler(reg)
	i := p.StageIndex("flow")
	p.End(i, p.Begin())

	var b bytes.Buffer
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sim_stage_seconds histogram",
		"# TYPE sim_stage_allocs histogram",
		`sim_stage_seconds_count{stage="flow"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
