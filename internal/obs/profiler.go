package obs

import (
	"fmt"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StageProfiler records per-stage wall time and heap-allocation deltas for
// the engine's named-stage step pipeline. It is a measurement instrument,
// not a trace source: wall-clock readings are non-deterministic and must
// never enter an NDJSON event stream, so the profiler accumulates in
// memory (and, when bound to a Registry, into sim_stage_* series) and
// renders reports directly.
//
// Like the tracer and checker hooks, a nil *StageProfiler is a no-op and
// the detached hook costs zero allocations on the engine hot path: Begin
// returns a stack StageMark and End returns immediately. Allocation deltas
// come from the runtime/metrics heap-objects counter; because the counter
// is process-global, attach one profiler to one single-threaded engine at a
// time for faithful attribution (concurrent use is safe, just blurs the
// numbers). Wall time is recorded on every call, but the counter is read
// only on sampled calls: a runtime/metrics read costs far more than a fast
// stage's body, and reading it twice per stage nearly tripled the step time
// of a profiled engine.
type StageProfiler struct {
	mu      sync.Mutex
	names   []string
	index   map[string]int
	stats   []stageAcc
	sample  []metrics.Sample
	calls   atomic.Uint64
	seconds *HistogramVec
	allocs  *HistogramVec
}

// allocSampleEvery is the allocation-sampling period in Begin calls. It is
// coprime to the pipeline length (8 stages), so the sampled call rotates
// through every stage instead of pinning to one; the first call is sampled,
// so even a single-shot profile reports allocation data.
const allocSampleEvery = 33

// stageAcc accumulates one stage's samples.
type stageAcc struct {
	count        int64
	wallNs       int64
	minNs        int64
	maxNs        int64
	allocs       uint64
	allocSamples int64
	started      bool
}

// StageMark is the begin-of-stage reading End consumes; it lives on the
// caller's stack so the hook allocates nothing.
type StageMark struct {
	t       time.Time
	allocs  uint64
	sampled bool
}

// StageSecondsBuckets is the histogram ladder for per-stage wall time
// (seconds); stages run in the microsecond range.
var StageSecondsBuckets = []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2}

// StageAllocsBuckets is the histogram ladder for per-stage heap objects
// allocated.
var StageAllocsBuckets = []float64{0, 1, 4, 16, 64, 256, 1024, 4096}

// NewStageProfiler returns a profiler with no stages registered. Pass a
// non-nil registry to also publish sim_stage_seconds / sim_stage_allocs
// histograms labeled by stage.
func NewStageProfiler(reg *Registry) *StageProfiler {
	p := &StageProfiler{
		index:  map[string]int{},
		sample: []metrics.Sample{{Name: "/gc/heap/allocs:objects"}},
	}
	if reg != nil {
		p.seconds = reg.HistogramVec("sim_stage_seconds", "Wall time per engine pipeline stage.", StageSecondsBuckets, "stage")
		p.allocs = reg.HistogramVec("sim_stage_allocs", "Heap objects allocated per engine pipeline stage.", StageAllocsBuckets, "stage")
	}
	return p
}

// StageIndex registers a stage name (idempotently) and returns its dense
// index for End.
func (p *StageProfiler) StageIndex(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.index[name]; ok {
		return i
	}
	i := len(p.names)
	p.index[name] = i
	p.names = append(p.names, name)
	p.stats = append(p.stats, stageAcc{})
	return i
}

// Begin samples the clocks at stage entry. Nil-safe: a nil profiler
// returns the zero mark.
func (p *StageProfiler) Begin() StageMark {
	if p == nil {
		return StageMark{}
	}
	var m StageMark
	m.sampled = (p.calls.Add(1)-1)%allocSampleEvery == 0
	if m.sampled {
		p.mu.Lock()
		metrics.Read(p.sample)
		m.allocs = p.sample[0].Value.Uint64()
		p.mu.Unlock()
	}
	m.t = time.Now()
	return m
}

// End records one stage sample against index i (from StageIndex). Nil-safe.
func (p *StageProfiler) End(i int, m StageMark) {
	if p == nil {
		return
	}
	ns := time.Since(m.t).Nanoseconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	var da uint64
	if m.sampled {
		metrics.Read(p.sample)
		da = p.sample[0].Value.Uint64() - m.allocs
	}
	a := &p.stats[i]
	if !a.started || ns < a.minNs {
		a.minNs = ns
	}
	if ns > a.maxNs {
		a.maxNs = ns
	}
	a.started = true
	a.count++
	a.wallNs += ns
	if m.sampled {
		a.allocs += da
		a.allocSamples++
	}
	if p.seconds != nil {
		p.seconds.With(p.names[i]).Observe(float64(ns) / 1e9)
		if m.sampled {
			p.allocs.With(p.names[i]).Observe(float64(da))
		}
	}
}

// StageStats is one stage's aggregate profile. Allocs covers only the
// AllocSamples sampled calls, not all Count calls.
type StageStats struct {
	Name         string
	Count        int64
	WallNs       int64
	MinNs        int64
	MaxNs        int64
	Allocs       uint64
	AllocSamples int64
}

// Snapshot returns per-stage aggregates in registration (pipeline) order.
func (p *StageProfiler) Snapshot() []StageStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StageStats, len(p.names))
	for i, name := range p.names {
		a := p.stats[i]
		out[i] = StageStats{Name: name, Count: a.count, WallNs: a.wallNs, MinNs: a.minNs,
			MaxNs: a.maxNs, Allocs: a.allocs, AllocSamples: a.allocSamples}
	}
	return out
}

// Report renders the per-stage cost table in pipeline order followed by a
// cumulative "where did the step go" breakdown sorted by share of total
// wall time. The numbers are wall-clock measurements and vary run to run;
// only the layout is stable.
func (p *StageProfiler) Report() string {
	stats := p.Snapshot()
	var b strings.Builder
	var totalNs int64
	var totalAllocs uint64
	for _, s := range stats {
		totalNs += s.WallNs
		totalAllocs += s.Allocs
	}
	fmt.Fprintf(&b, "%-12s %8s %12s %10s %10s %10s %10s %12s\n",
		"stage", "calls", "total", "mean", "min", "max", "allocs", "allocs/call")
	for _, s := range stats {
		var mean time.Duration
		var perCall float64
		if s.Count > 0 {
			mean = time.Duration(s.WallNs / s.Count)
		}
		if s.AllocSamples > 0 {
			perCall = float64(s.Allocs) / float64(s.AllocSamples)
		}
		fmt.Fprintf(&b, "%-12s %8d %12s %10s %10s %10s %10d %12.1f\n",
			s.Name, s.Count, time.Duration(s.WallNs), mean,
			time.Duration(s.MinNs), time.Duration(s.MaxNs), s.Allocs, perCall)
	}
	fmt.Fprintf(&b, "%-12s %8s %12s %41s %10d\n", "total", "", time.Duration(totalNs), "", totalAllocs)

	b.WriteString("\n-- where did the step go --\n")
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool { return stats[order[a]].WallNs > stats[order[c]].WallNs })
	var cum float64
	for _, i := range order {
		s := stats[i]
		share := 0.0
		if totalNs > 0 {
			share = 100 * float64(s.WallNs) / float64(totalNs)
		}
		cum += share
		fmt.Fprintf(&b, "%-12s %6.1f%%  cum %6.1f%%  %12s %10d allocs\n",
			s.Name, share, cum, time.Duration(s.WallNs), s.Allocs)
	}
	return b.String()
}
