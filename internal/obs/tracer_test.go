package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	in := []Event{
		{Sec: 0, Type: EventRun, Phase: PhaseStart, Detail: "global"},
		{Sec: 60, Type: EventSelectAlternate, PE: 1, N: 2, Detail: "lite"},
		{Sec: 120, Type: EventCrash, VM: 3, Lost: 41},
		{Sec: 240, Type: EventStep, Phase: PhaseEnd, Value: 0.875},
	}
	for _, ev := range in {
		tr.Emit(ev)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != int64(len(in)) {
		t.Fatalf("count = %d", tr.Count())
	}
	out, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, wrote %d", len(out), len(in))
	}
	for i := range in {
		want := in[i]
		want.V = SchemaVersion
		if out[i] != want {
			t.Fatalf("event %d = %+v, want %+v", i, out[i], want)
		}
	}
}

func TestTracerDeterministicBytes(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		tr.Emit(Event{Sec: 5, Type: EventAcquireVM, VM: 7, Detail: "m1.large"})
		tr.Emit(Event{Sec: 10, Type: EventOmegaViolation, Value: 0.5})
		_ = tr.Flush()
		return buf.String()
	}
	if render() != render() {
		t.Fatal("identical emissions produced different bytes")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Type: EventRun})
	if tr.Count() != 0 || tr.Err() != nil || tr.Flush() != nil {
		t.Fatal("nil tracer is not inert")
	}
}

// TestNilTracerZeroAlloc guards the disabled-tracer hot path: emitting to a
// nil tracer must not allocate, so an uninstrumented Engine.step pays
// nothing.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Sec: 1, Type: EventStep, Phase: PhaseStart, Value: 0.9})
	})
	if allocs != 0 {
		t.Fatalf("nil tracer Emit allocates %.1f/op, want 0", allocs)
	}
}

// TestTracerWithStamping: a With child fills empty trace-context fields,
// inherits the parent's stamps, never overrides explicit fields, and
// shares the parent's sink and count.
func TestTracerWithStamping(t *testing.T) {
	var buf bytes.Buffer
	parent := NewTracer(&buf)
	child := parent.With("campaign-1", "job#0", "w1")
	grandchild := child.With("", "job#1", "")

	parent.Emit(Event{Type: EventStep})
	child.Emit(Event{Type: EventStep})
	child.Emit(Event{Type: EventStep, Worker: "explicit"})
	grandchild.Emit(Event{Type: EventStep})
	if err := parent.Flush(); err != nil {
		t.Fatal(err)
	}
	if parent.Count() != 4 {
		t.Fatalf("children must count on the shared sink: %d", parent.Count())
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Trace: "", Span: "", Worker: ""},
		{Trace: "campaign-1", Span: "job#0", Worker: "w1"},
		{Trace: "campaign-1", Span: "job#0", Worker: "explicit"},
		{Trace: "campaign-1", Span: "job#1", Worker: "w1"},
	}
	for i, w := range want {
		ev := events[i]
		if ev.Trace != w.Trace || ev.Span != w.Span || ev.Worker != w.Worker {
			t.Fatalf("event %d stamped (%q,%q,%q), want (%q,%q,%q)",
				i, ev.Trace, ev.Span, ev.Worker, w.Trace, w.Span, w.Worker)
		}
	}
}

func TestNilTracerWith(t *testing.T) {
	var tr *Tracer
	if child := tr.With("a", "b", "c"); child != nil {
		t.Fatal("nil tracer's With must return nil")
	}
}

func TestReadEventsRejectsBadStreams(t *testing.T) {
	cases := map[string]string{
		"bad json":       "{not json}\n",
		"wrong schema":   `{"v":"obs/v99","sec":0,"type":"run"}` + "\n",
		"missing schema": `{"sec":0,"type":"run"}` + "\n",
		"missing type":   `{"v":"obs/v1","sec":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadEvents(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestReadEventsSkipsBlankLines(t *testing.T) {
	in := `{"v":"obs/v1","sec":0,"type":"run","phase":"start"}` + "\n\n" +
		`{"v":"obs/v1","sec":60,"type":"step","phase":"start"}` + "\n"
	events, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Sec: 60, Type: EventSelectAlternate, PE: 0, N: 1, Detail: "lite"},
			"t=60s select-alternate pe=0 n=1 (lite)"},
		{Event{Sec: 0, Type: EventCrash, VM: 2, Lost: 10},
			"t=0s crash vm=2 lost=10"},
		{Event{Sec: 120, Type: EventStep, Phase: PhaseEnd, Value: 0.5},
			"t=120s step:end value=0.5000"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Fatalf("String() = %q, want %q", got, c.want)
		}
	}
}
