// Package obs is the unified observability layer: structured event tracing
// (typed, sim-timestamped events streamed as NDJSON), a zero-dependency
// metrics registry with Prometheus text-format exposition, and trace
// inspection (timelines, alternate occupancy, run diffs). Every other layer
// plugs into it — sim.Engine emits step spans and control-action events,
// internal/resilient's middleware decisions arrive through the engine's
// audit path, internal/sweep emits job spans and worker-pool metrics, and
// cmd/dfserve mounts the exposition handler at /metrics. The package
// depends only on the standard library, and every hook is nil-safe: a nil
// *Tracer or nil gauge set adds zero allocations to the hot path.
package obs

import "fmt"

// SchemaVersion names the event schema. Every emitted event carries it in
// the "v" field; readers reject streams written by an incompatible schema.
// Bump it whenever an event field changes meaning.
const SchemaVersion = "obs/v1"

// Span phases. Point events leave Phase empty; "init" marks state recorded
// at run start (e.g. the initial alternate selection) rather than a
// decision taken during the run.
const (
	PhaseStart = "start"
	PhaseEnd   = "end"
	PhaseInit  = "init"
)

// Event types emitted by the simulator and its middleware. Scheduler
// actions reuse the audit-log action names so the two views of one run
// stay correlatable.
const (
	// Spans.
	EventRun      = "run"       // one simulation run (start/end)
	EventStep     = "step"      // one sim interval; end carries Omega in Value
	EventStage    = "stage"     // one pipeline stage of an interval (start/end); Detail names it
	EventSweepJob = "sweep-job" // one sweep job (start/end)

	// Point events: scheduler and control-plane actions.
	EventSelectAlternate = "select-alternate"
	EventSelectRoute     = "select-route"
	EventAcquireVM       = "acquire-vm"
	EventPendingVM       = "pending-vm"
	EventVMReady         = "vm-ready"
	EventReleaseVM       = "release-vm"
	EventAssignCores     = "assign-cores"
	EventUnassignCores   = "unassign-cores"
	EventCrash           = "crash"
	EventPreempt         = "preempt"
	EventAcquireFailed   = "acquire-failed"

	// Point events: resilience middleware decisions.
	EventBreakerOpen     = "breaker-open"
	EventFallbackAcquire = "fallback-acquire"
	EventDegrade         = "degrade"

	// Point events: QoS and correctness.
	EventOmegaViolation     = "omega-violation"
	EventInvariantViolation = "invariant-violation"

	// Point events: distributed sweep fabric (coordinator side). Detail
	// carries "job -> worker" coordinates; N is the lease attempt or
	// failure count at the emitting site.
	EventWorkerJoin  = "worker-join"  // worker registered with the coordinator
	EventLease       = "lease"        // job leased to a worker
	EventHeartbeat   = "heartbeat"    // worker heartbeat renewed its leases
	EventLeaseExpire = "lease-expire" // lease TTL elapsed without renewal
	EventRequeue     = "requeue"      // expired job requeued with backoff
	EventQuarantine  = "quarantine"   // job retired as poison after repeated lease failures
	EventResultDup   = "result-dup"   // duplicate result delivery ignored
	EventResultAck   = "result-ack"   // result accepted and journaled (closes a job span)

	// Point event: structured elasticity-decision provenance. The Decision
	// payload carries the inputs, candidates, and rejected alternatives.
	EventDecision = "decision"
)

// Decision is the structured provenance attached to an EventDecision event:
// everything the scheduler looked at when it made one elasticity decision.
// Inputs is marshaled with sorted keys (encoding/json map behavior), so a
// decision renders byte-deterministically under a seed.
type Decision struct {
	// Kind classifies the decision: "scale-up", "scale-down", "release",
	// "alternate", "fallback", ...
	Kind string `json:"kind"`
	// PE is the processing element the decision concerns (-1 when none).
	PE int `json:"pe,omitempty"`
	// Tenant names the dataflow the decision concerns; empty outside
	// multi-tenant runs, so single-tenant streams keep their byte encoding.
	Tenant string `json:"tenant,omitempty"`
	// Chosen names the action taken ("acquire m1.large", "unassign-core
	// vm-3", ...); empty when the decision concluded with no action.
	Chosen string `json:"chosen,omitempty"`
	// Reason explains the outcome in one clause.
	Reason string `json:"reason,omitempty"`
	// Inputs are the monitored quantities the decision was computed from
	// (omega, gamma, target, required/effective ECU, ...).
	Inputs map[string]float64 `json:"inputs,omitempty"`
	// Options are the candidates considered, with scores and — for the ones
	// not taken — the rejection reason.
	Options []DecisionOption `json:"options,omitempty"`
	// Notes carries middleware annotations (e.g. open circuit breakers).
	Notes []string `json:"notes,omitempty"`
}

// DecisionOption is one candidate a decision weighed.
type DecisionOption struct {
	// Name identifies the candidate (a VM class, a core slot, an alternate).
	Name string `json:"name"`
	// Score is the candidate's rank value at the decision site.
	Score float64 `json:"score,omitempty"`
	// Rejected explains why the candidate was not chosen; empty for the
	// chosen one.
	Rejected string `json:"rejected,omitempty"`
}

// String renders the decision as one deterministic clause.
func (d Decision) String() string {
	s := d.Kind
	if d.Tenant != "" {
		s += "@" + d.Tenant
	}
	if d.Chosen != "" {
		s += " -> " + d.Chosen
	}
	if d.Reason != "" {
		s += ": " + d.Reason
	}
	if n := len(d.Options); n > 0 {
		s += fmt.Sprintf(" [%d options]", n)
	}
	return s
}

// Event is one structured trace record. Sec is simulation time (seconds),
// never wall-clock, so a run's event stream is byte-deterministic under a
// seed. Integer fields use -1-is-never-valid conventions from the
// simulator (PE and VM ids are >= 0), with zero values omitted from the
// JSON encoding to keep streams compact.
type Event struct {
	// V is the schema version (SchemaVersion); Emit fills it.
	V string `json:"v"`
	// Sec is the simulation time the event took effect.
	Sec int64 `json:"sec"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Phase is empty for point events, PhaseStart/PhaseEnd for spans,
	// PhaseInit for run-start state snapshots.
	Phase string `json:"phase,omitempty"`
	// PE is the processing-element index the event concerns.
	PE int `json:"pe,omitempty"`
	// VM is the VM id the event concerns.
	VM int `json:"vm,omitempty"`
	// N is a small integer payload (alternate index, core count, boot
	// seconds, job index — see the emitting site).
	N int `json:"n,omitempty"`
	// Lost counts messages destroyed by this event (crash/preempt).
	Lost float64 `json:"lost,omitempty"`
	// Value is a float payload (Omega for step ends and violations).
	Value float64 `json:"value,omitempty"`
	// Detail is free-form context (class names, alternate names, job ids).
	Detail string `json:"detail,omitempty"`
	// Trace identifies the campaign this event belongs to (fabric runs);
	// Span identifies one job attempt within it, and Worker the worker that
	// emitted the event. All empty outside the fabric, so single-run streams
	// are byte-identical to schema obs/v1 before these fields existed.
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Worker string `json:"worker,omitempty"`
	// Tenant names the dataflow the event concerns in multi-tenant runs;
	// empty otherwise, so single-tenant streams keep their byte encoding.
	Tenant string `json:"tenant,omitempty"`
	// Decision is the structured provenance payload of EventDecision events.
	Decision *Decision `json:"decision,omitempty"`
}

// String renders the event as one deterministic log line.
func (e Event) String() string {
	s := fmt.Sprintf("t=%ds %s", e.Sec, e.Type)
	if e.Phase != "" {
		s += ":" + e.Phase
	}
	if e.PE != 0 || e.Type == EventSelectAlternate || e.Type == EventAssignCores || e.Type == EventUnassignCores {
		s += fmt.Sprintf(" pe=%d", e.PE)
	}
	if e.VM != 0 || e.Type == EventAcquireVM || e.Type == EventReleaseVM || e.Type == EventVMReady ||
		e.Type == EventPendingVM || e.Type == EventCrash || e.Type == EventPreempt ||
		e.Type == EventAssignCores || e.Type == EventUnassignCores {
		s += fmt.Sprintf(" vm=%d", e.VM)
	}
	if e.N != 0 {
		s += fmt.Sprintf(" n=%d", e.N)
	}
	if e.Lost > 0 {
		s += fmt.Sprintf(" lost=%.0f", e.Lost)
	}
	if e.Value != 0 {
		s += fmt.Sprintf(" value=%.4f", e.Value)
	}
	if e.Tenant != "" {
		s += " tenant=" + e.Tenant
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	if e.Decision != nil {
		s += " " + e.Decision.String()
	}
	if e.Span != "" || e.Worker != "" {
		s += " ["
		s += e.Span
		if e.Worker != "" {
			s += "@" + e.Worker
		}
		s += "]"
	}
	return s
}
