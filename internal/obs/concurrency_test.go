package obs

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistryConcurrentScrapeAndWrite hammers one registry from writer
// goroutines — updating counters, gauges, and histograms, and minting new
// labeled series mid-flight — while scrapers render the exposition. Run
// under -race (ci.sh does) this pins the registry's locking discipline;
// the final scrape must also reflect every write that happened-before it.
func TestRegistryConcurrentScrapeAndWrite(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("stress_total", "writes")
	gauge := reg.Gauge("stress_level", "level")
	hist := reg.Histogram("stress_seconds", "latency", nil)
	vec := reg.CounterVec("stress_by_worker_total", "writes by worker", "worker")

	const writers, rounds = 8, 200
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < rounds; i++ {
				ctr.Inc()
				gauge.Set(float64(i))
				hist.Observe(float64(i) / rounds)
				vec.With(name).Inc()
			}
		}(w)
	}
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for !stop.Load() {
			var b bytes.Buffer
			if err := reg.WriteText(&b); err != nil {
				t.Errorf("WriteText during writes: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	<-scraperDone

	var b bytes.Buffer
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "stress_total 1600") {
		t.Fatalf("final scrape lost counter writes:\n%s", out)
	}
	if !strings.Contains(out, `stress_seconds_count 1600`) {
		t.Fatalf("final scrape lost histogram observations:\n%s", out)
	}
	for w := 0; w < writers; w++ {
		series := `stress_by_worker_total{worker="` + string(rune('a'+w)) + `"} 200`
		if !strings.Contains(out, series) {
			t.Fatalf("final scrape missing %q:\n%s", series, out)
		}
	}
}

// TestWriteTextStableWhileWritersActive scrapes repeatedly while writer
// goroutines keep storing the SAME values: every scrape must render to
// identical bytes, proving exposition order does not depend on write
// interleaving (families sorted, series sorted, no map-order leakage).
func TestWriteTextStableWhileWritersActive(t *testing.T) {
	reg := NewRegistry()
	gauge := reg.Gauge("steady_level", "level")
	vec := reg.GaugeVec("steady_by_stage", "per stage", "stage")
	stages := []string{"flow", "observe", "billing"}
	gauge.Set(7)
	for _, s := range stages {
		vec.With(s).Set(1)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				gauge.Set(7)
				for _, s := range stages {
					vec.With(s).Set(1)
				}
			}
		}()
	}

	var first bytes.Buffer
	if err := reg.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		var b bytes.Buffer
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), b.Bytes()) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("scrape %d diverged while constant-value writers were active\n-- first --\n%s-- got --\n%s",
				i, first.String(), b.String())
		}
	}
	stop.Store(true)
	wg.Wait()
}
