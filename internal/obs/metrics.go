package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent: asking for a family that
// already exists with the same shape returns the existing one; a shape
// conflict (different kind, help, labels or buckets) panics, as it is a
// programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

type family struct {
	name    string
	help    string
	kind    string // "counter" | "gauge" | "histogram"
	labels  []string
	buckets []float64 // histograms only, ascending, no +Inf

	mu       sync.Mutex
	children map[string]*series
}

// series is one labeled child of a family.
type series struct {
	labelValues []string

	mu    sync.Mutex
	value float64  // counter/gauge
	count uint64   // histogram observations
	sum   float64  // histogram sum
	hist  []uint64 // histogram per-bucket (non-cumulative) counts, +Inf last
}

func (r *Registry) register(name, help, kind string, buckets []float64, labels []string) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l))
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: metric %q: buckets not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.help != help || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), buckets: append([]float64(nil), buckets...),
		children: map[string]*series{}}
	r.families[name] = f
	return f
}

// child returns (creating if needed) the series for the label values.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.children[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.kind == "histogram" {
			s.hist = make([]uint64, len(f.buckets)+1)
		}
		f.children[key] = s
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.value += v
	c.s.mu.Unlock()
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add shifts the gauge value.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.s.mu.Lock()
	g.s.value += v
	g.s.mu.Unlock()
}

// Value returns the current gauge value (tests, adaptive consumers).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.value
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.s.mu.Lock()
	h.s.count++
	h.s.sum += v
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.s.hist[i]++
	h.s.mu.Unlock()
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// With returns the counter for the label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter { return &Counter{s: v.f.child(values)} }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{s: v.f.child(values)} }

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values (created on first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{s: v.f.child(values), buckets: v.f.buckets}
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{s: r.register(name, help, "counter", nil, nil).child(nil)}
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", nil, labels)}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{s: r.register(name, help, "gauge", nil, nil).child(nil)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", nil, labels)}
}

// DefBuckets is the default latency bucket ladder (seconds).
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// Histogram registers (or returns) an unlabeled histogram. Nil buckets use
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, "histogram", buckets, nil)
	return &Histogram{s: f.child(nil), buckets: f.buckets}
}

// HistogramVec registers (or returns) a labeled histogram family. Nil
// buckets use DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, "histogram", buckets, labels)}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
