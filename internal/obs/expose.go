package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteText renders every registered metric in Prometheus text exposition
// format (version 0.0.4). Output is deterministic for a given registry
// state: families sort by name, children by label values, and floats use
// shortest round-trip formatting.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*series, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return nil
	}

	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for _, s := range children {
		s.mu.Lock()
		value, count, sum := s.value, s.count, s.sum
		hist := append([]uint64(nil), s.hist...)
		s.mu.Unlock()

		switch f.kind {
		case "histogram":
			cum := uint64(0)
			for i, bound := range f.buckets {
				cum += hist[i]
				if err := writeSample(w, f.name+"_bucket", f.labels, s.labelValues,
					"le", formatValue(bound), float64(cum)); err != nil {
					return err
				}
			}
			cum += hist[len(f.buckets)]
			if err := writeSample(w, f.name+"_bucket", f.labels, s.labelValues, "le", "+Inf", float64(cum)); err != nil {
				return err
			}
			if err := writeSample(w, f.name+"_sum", f.labels, s.labelValues, "", "", sum); err != nil {
				return err
			}
			if err := writeSample(w, f.name+"_count", f.labels, s.labelValues, "", "", float64(count)); err != nil {
				return err
			}
		default:
			if err := writeSample(w, f.name, f.labels, s.labelValues, "", "", value); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one sample line, appending an extra label (the
// histogram "le") when extraName is non-empty.
func writeSample(w io.Writer, name string, labels, values []string, extraName, extraValue string, v float64) error {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraValue))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry in text exposition format (mount at
// /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// statusWriter captures the response code while preserving the Flusher
// contract the NDJSON watch endpoint relies on.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (s *statusWriter) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// InstrumentHandler wraps an HTTP handler with request counting and latency
// observation: <prefix>_requests_total{method,code} and
// <prefix>_request_seconds{method}.
func InstrumentHandler(reg *Registry, prefix string, next http.Handler) http.Handler {
	requests := reg.CounterVec(prefix+"_requests_total",
		"HTTP requests served, by method and status code.", "method", "code")
	latency := reg.HistogramVec(prefix+"_request_seconds",
		"HTTP request latency in seconds, by method.", nil, "method")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		requests.With(r.Method, strconv.Itoa(sw.code)).Inc()
		latency.With(r.Method).Observe(time.Since(start).Seconds())
	})
}
