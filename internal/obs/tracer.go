package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Tracer streams events as NDJSON to a sink. It is safe for concurrent use
// (sweep workers emit from many goroutines) and nil-safe: every method on a
// nil *Tracer is a no-op, so instrumentation sites pass events by value and
// pay zero allocations while tracing is disabled.
//
// Events are written in arrival order. A single-threaded emitter (the
// simulation engine) therefore produces a byte-deterministic stream for a
// given seed; concurrent emitters (sweep workers) interleave arbitrarily.
type Tracer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	n   int64
	err error
}

// NewTracer returns a tracer writing NDJSON events to w. Call Flush (or
// Close) before reading the sink: writes are buffered.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event, stamping the schema version. After the first sink
// error the tracer goes quiet; check Err.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	ev.V = SchemaVersion
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(ev); err != nil {
		t.err = fmt.Errorf("obs: emit: %w", err)
		return
	}
	t.n++
}

// Count returns how many events were successfully encoded.
func (t *Tracer) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Err returns the first sink error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Flush forces buffered events to the sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if err := t.bw.Flush(); err != nil {
		t.err = fmt.Errorf("obs: flush: %w", err)
	}
	return t.err
}

// ReadEvents parses an NDJSON event stream, rejecting lines from an
// incompatible schema version. Blank lines are skipped.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		if ev.V != SchemaVersion {
			return nil, fmt.Errorf("obs: line %d: schema %q, want %q", line, ev.V, SchemaVersion)
		}
		if ev.Type == "" {
			return nil, fmt.Errorf("obs: line %d: event without a type", line)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read events: %w", err)
	}
	return out, nil
}
