package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Tracer streams events as NDJSON to a sink. It is safe for concurrent use
// (sweep workers emit from many goroutines) and nil-safe: every method on a
// nil *Tracer is a no-op, so instrumentation sites pass events by value and
// pay zero allocations while tracing is disabled.
//
// Events are written in arrival order. A single-threaded emitter (the
// simulation engine) therefore produces a byte-deterministic stream for a
// given seed; concurrent emitters (sweep workers) interleave arbitrarily.
//
// With derives stamping children that share the parent's sink: a child
// fills empty Trace/Span/Worker fields on every event it emits, which is
// how fabric workers attribute their job runs to a campaign's trace
// context without the instrumented code knowing about spans.
type Tracer struct {
	core                *tracerCore
	trace, span, worker string
}

// tracerCore is the sink state shared by a tracer and all its With
// children: one writer, one mutex, one error latch, one event count.
type tracerCore struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	n   int64
	err error
}

// NewTracer returns a tracer writing NDJSON events to w. Call Flush (or
// Close) before reading the sink: writes are buffered.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{core: &tracerCore{bw: bw, enc: json.NewEncoder(bw)}}
}

// With returns a child tracer sharing t's sink that stamps the given
// trace/span/worker onto every event whose corresponding field is empty.
// Empty arguments inherit t's own stamps; a nil receiver returns nil.
func (t *Tracer) With(trace, span, worker string) *Tracer {
	if t == nil {
		return nil
	}
	child := &Tracer{core: t.core, trace: t.trace, span: t.span, worker: t.worker}
	if trace != "" {
		child.trace = trace
	}
	if span != "" {
		child.span = span
	}
	if worker != "" {
		child.worker = worker
	}
	return child
}

// Emit writes one event, stamping the schema version and any trace context
// this tracer carries. After the first sink error the tracer goes quiet;
// check Err.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	ev.V = SchemaVersion
	if ev.Trace == "" {
		ev.Trace = t.trace
	}
	if ev.Span == "" {
		ev.Span = t.span
	}
	if ev.Worker == "" {
		ev.Worker = t.worker
	}
	c := t.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	if err := c.enc.Encode(ev); err != nil {
		c.err = fmt.Errorf("obs: emit: %w", err)
		return
	}
	c.n++
}

// Count returns how many events were successfully encoded on the shared
// sink (children count toward their parent).
func (t *Tracer) Count() int64 {
	if t == nil {
		return 0
	}
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	return t.core.n
}

// Err returns the first sink error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.core.mu.Lock()
	defer t.core.mu.Unlock()
	return t.core.err
}

// Flush forces buffered events to the sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	c := t.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if err := c.bw.Flush(); err != nil {
		c.err = fmt.Errorf("obs: flush: %w", err)
	}
	return c.err
}

// ReadEvents parses an NDJSON event stream, rejecting lines from an
// incompatible schema version. Blank lines are skipped.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		if ev.V != SchemaVersion {
			return nil, fmt.Errorf("obs: line %d: schema %q, want %q", line, ev.V, SchemaVersion)
		}
		if ev.Type == "" {
			return nil, fmt.Errorf("obs: line %d: event without a type", line)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read events: %w", err)
	}
	return out, nil
}
