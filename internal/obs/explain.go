package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Explain reconstructs the causal chain behind the elasticity decisions
// taken at one simulation second: the monitored inputs the scheduler saw,
// every candidate it weighed with its score and rejection reason, the
// middleware notes (open breakers), and the control actions recorded at
// the same second. When no decision happened at sec, it lists the seconds
// that do carry decisions. Output is deterministic for a deterministic
// stream.
func Explain(events []Event, sec int64) string {
	var b strings.Builder
	var decisions []Event
	var actions []Event
	var secs []int64
	seenSec := map[int64]bool{}
	var omegaBefore float64
	haveOmega := false
	for _, ev := range events {
		if ev.Type == EventDecision && ev.Decision != nil {
			if !seenSec[ev.Sec] {
				seenSec[ev.Sec] = true
				secs = append(secs, ev.Sec)
			}
			if ev.Sec == sec {
				decisions = append(decisions, ev)
			}
		}
		if ev.Sec == sec && ev.Type != EventDecision && decision(ev) {
			actions = append(actions, ev)
		}
		if ev.Type == EventStep && ev.Phase == PhaseEnd && ev.Sec <= sec {
			omegaBefore = ev.Value
			haveOmega = true
		}
	}
	if len(decisions) == 0 {
		fmt.Fprintf(&b, "no decisions at t=%ds\n", sec)
		if len(secs) > 0 {
			sort.Slice(secs, func(i, j int) bool { return secs[i] < secs[j] })
			parts := make([]string, len(secs))
			for i, s := range secs {
				parts[i] = fmt.Sprintf("%d", s)
			}
			fmt.Fprintf(&b, "decision seconds: %s\n", strings.Join(parts, " "))
		} else {
			b.WriteString("the stream carries no decision events (run with auditing or tracing through a provenance-aware scheduler)\n")
		}
		return b.String()
	}

	for _, ev := range decisions {
		d := ev.Decision
		fmt.Fprintf(&b, "t=%ds decision %s", ev.Sec, d.Kind)
		if d.Tenant != "" {
			fmt.Fprintf(&b, " tenant=%s", d.Tenant)
		} else if ev.Tenant != "" {
			fmt.Fprintf(&b, " tenant=%s", ev.Tenant)
		}
		if d.PE != 0 || ev.PE != 0 {
			pe := d.PE
			if pe == 0 {
				pe = ev.PE
			}
			fmt.Fprintf(&b, " pe=%d", pe)
		}
		b.WriteByte('\n')
		if haveOmega {
			fmt.Fprintf(&b, "  context: omega at last step end = %.4f\n", omegaBefore)
		}
		if len(d.Inputs) > 0 {
			keys := make([]string, 0, len(d.Inputs))
			for k := range d.Inputs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString("  inputs:")
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%.4f", k, d.Inputs[k])
			}
			b.WriteByte('\n')
		}
		if len(d.Options) > 0 {
			b.WriteString("  options:\n")
			for _, o := range d.Options {
				mark := "+"
				if o.Rejected != "" {
					mark = "-"
				}
				fmt.Fprintf(&b, "    %s %-24s score=%.4f", mark, o.Name, o.Score)
				if o.Rejected != "" {
					fmt.Fprintf(&b, "  %s", o.Rejected)
				}
				b.WriteByte('\n')
			}
		}
		if d.Chosen != "" {
			fmt.Fprintf(&b, "  chosen: %s\n", d.Chosen)
		} else {
			b.WriteString("  chosen: (no action)\n")
		}
		if d.Reason != "" {
			fmt.Fprintf(&b, "  reason: %s\n", d.Reason)
		}
		for _, n := range d.Notes {
			fmt.Fprintf(&b, "  note: %s\n", n)
		}
	}
	if len(actions) > 0 {
		fmt.Fprintf(&b, "actions at t=%ds:\n", sec)
		for _, ev := range actions {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}
	return b.String()
}
