package experiments

import (
	"strings"
	"testing"
)

func TestLatencyQoSSweepShapes(t *testing.T) {
	c := Quick()
	c.HorizonSec = 4 * 3600
	r, err := RunLatencyQoS(c, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	unbounded := r.Rows[0]
	if unbounded.BoundSec != 0 {
		t.Fatal("first row should be unconstrained")
	}
	// Tighter bounds monotonically reduce mean latency and raise cost.
	for i := 1; i < len(r.Rows); i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		if cur.MeanLatency > prev.MeanLatency+1 {
			t.Fatalf("bound %v raised mean latency: %v -> %v",
				cur.BoundSec, prev.MeanLatency, cur.MeanLatency)
		}
		if cur.CostUSD < prev.CostUSD-0.5 {
			t.Fatalf("bound %v lowered cost: %v -> %v (no trade-off visible)",
				cur.BoundSec, prev.CostUSD, cur.CostUSD)
		}
	}
	// The tightest bound must cut the unconstrained latency drastically.
	tightest := r.Rows[len(r.Rows)-1]
	if tightest.MeanLatency > unbounded.MeanLatency/5 {
		t.Fatalf("tightest bound barely helped: %v vs %v",
			tightest.MeanLatency, unbounded.MeanLatency)
	}
	if !strings.Contains(r.Table(), "Latency QoS") {
		t.Fatal("table header missing")
	}
}
