package experiments

import (
	"strings"
	"testing"
)

func TestCheckClaimsAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation; skipped with -short")
	}
	c := Quick()
	sc, err := CheckClaims(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Claims) != 12 {
		t.Fatalf("claims = %d", len(sc.Claims))
	}
	for _, claim := range sc.Claims {
		if !claim.Pass {
			t.Errorf("claim %s failed: %s (%s)", claim.ID, claim.Statement, claim.Detail)
		}
	}
	tbl := sc.Table()
	if !strings.Contains(tbl, "Reproduction scorecard") {
		t.Fatal("table header missing")
	}
	if sc.Passed() != len(sc.Claims) && !t.Failed() {
		t.Fatal("Passed() inconsistent with per-claim results")
	}
}

func TestMinMaxOf(t *testing.T) {
	if minOf(nil) != 0 || maxOf(nil) != 0 {
		t.Fatal("empty slices")
	}
	if minOf([]float64{3, 1, 2}) != 1 || maxOf([]float64{3, 1, 2}) != 3 {
		t.Fatal("wrong extremes")
	}
}
