package experiments

import (
	"fmt"
	"strings"
)

// Claim is one qualitative statement from the paper's evaluation that the
// reproduction must uphold.
type Claim struct {
	ID        string
	Statement string
	Pass      bool
	Detail    string
}

// Scorecard is the outcome of checking every claim.
type Scorecard struct {
	Claims []Claim
}

// Passed counts satisfied claims.
func (s Scorecard) Passed() int {
	n := 0
	for _, c := range s.Claims {
		if c.Pass {
			n++
		}
	}
	return n
}

// CheckClaims runs the evaluation and verifies the paper's qualitative
// claims programmatically — a reproduction scorecard. It reuses the figure
// runners, so one invocation costs roughly one full dfbench run.
func CheckClaims(c Config) (Scorecard, error) {
	var sc Scorecard
	add := func(id, statement string, pass bool, detail string, args ...any) {
		sc.Claims = append(sc.Claims, Claim{
			ID: id, Statement: statement, Pass: pass, Detail: fmt.Sprintf(detail, args...),
		})
	}

	// Fig. 4 claims.
	f4, err := RunFig4(c)
	if err != nil {
		return sc, err
	}
	noVarAllMeet, anyVarAllMiss := true, true
	var bfTheta, bestOtherTheta float64
	for _, row := range f4.Rows {
		switch row.Scenario {
		case NoVariability:
			if !row.MeetsOmega {
				noVarAllMeet = false
			}
			if row.Policy == "bruteforce-static" {
				bfTheta = row.Theta
			} else if row.Theta > bestOtherTheta {
				bestOtherTheta = row.Theta
			}
		case BothVariability:
			if row.MeetsOmega {
				anyVarAllMiss = false
			}
		}
	}
	add("fig4-static-ok-stable",
		"without variability every static deployment satisfies the throughput constraint",
		noVarAllMeet, "no-variability rows all MET: %v", noVarAllMeet)
	add("fig4-bruteforce-best",
		"without variability the brute-force optimum has the highest objective value",
		bfTheta >= bestOtherTheta, "theta %.4f vs best heuristic %.4f", bfTheta, bestOtherTheta)
	add("fig4-variability-breaks-static",
		"with data and infrastructure variability no static deployment satisfies the constraint",
		anyVarAllMiss, "both-variability rows all MISS: %v", anyVarAllMiss)

	// Fig. 5 claim: static headroom erodes with data rate.
	f5, err := RunFig5(c)
	if err != nil {
		return sc, err
	}
	lowRate, highRate := c.Rates[0], c.Rates[len(c.Rates)-1]
	eroded := true
	for _, policy := range []string{"local-static", "global-static"} {
		var lo, hi float64
		for _, row := range f5.Rows {
			if row.Policy == policy && row.Rate == lowRate {
				lo = row.Summary.MeanOmega
			}
			if row.Policy == policy && row.Rate == highRate {
				hi = row.Summary.MeanOmega
			}
		}
		if hi > lo+1e-9 {
			eroded = false
		}
	}
	add("fig5-static-erodes",
		"static deployments' throughput headroom shrinks as the data rate grows",
		eroded, "omega at %.0f vs %.0f msg/s non-increasing for both heuristics", lowRate, highRate)

	// Figs. 6-7 claims.
	for _, figCase := range []struct {
		name string
		run  func(Config) (FigAdaptiveResult, error)
	}{{"fig6", RunFig6}, {"fig7", RunFig7}} {
		r, err := figCase.run(c)
		if err != nil {
			return sc, err
		}
		allMeet := true
		theta := map[string]map[float64]float64{"local": {}, "global": {}}
		for _, row := range r.Rows {
			if !row.MeetsOmega {
				allMeet = false
			}
			theta[row.Policy][row.Rate] = row.Theta
		}
		add(figCase.name+"-adaptive-holds",
			"both adaptive heuristics keep the constraint under "+r.Scenario.String()+" variability",
			allMeet, "all rows MET: %v", allMeet)
		globalWins := true
		for _, rate := range c.Rates {
			if rate >= 10 && theta["global"][rate] < theta["local"][rate]-1e-9 {
				globalWins = false
			}
		}
		add(figCase.name+"-global-theta",
			"the global heuristic's objective value is at least the local one's from 10 msg/s up",
			globalWins, "theta(global) >= theta(local) at rates >= 10: %v", globalWins)
	}

	// Figs. 8-9 claims.
	f8, err := RunFig8(c)
	if err != nil {
		return sc, err
	}
	allMeet8 := true
	for _, row := range f8.Rows {
		if !row.MeetsOmega {
			allMeet8 = false
		}
	}
	add("fig8-all-meet",
		"every adaptive variant satisfies the QoS constraint across the rate sweep",
		allMeet8, "all rows MET: %v", allMeet8)
	f9, err := DeriveFig9(f8)
	if err != nil {
		return sc, err
	}
	neverCostsMore, material := true, false
	for _, s := range f9.GlobalSavings {
		if s < -1e-9 {
			neverCostsMore = false
		}
		if s >= 5 {
			material = true
		}
	}
	add("fig9-dynamism-free",
		"application dynamism never increases the global heuristic's dollar cost",
		neverCostsMore, "min saving %.1f%%", minOf(f9.GlobalSavings))
	add("fig9-dynamism-saves",
		"application dynamism saves a material fraction of dollars (paper: ~15%)",
		material, "peak global saving %.1f%%, mean %.1f%%", maxOf(f9.GlobalSavings), f9.MeanGlobalSavings())
	alwaysBeatsExtreme := true
	for _, s := range f9.GlobalVsLocalNoDyn {
		if s < 0 {
			alwaysBeatsExtreme = false
		}
	}
	add("fig9-extreme-direction",
		"global with dynamism is cheaper than local without it at every rate (paper: up to ~70%)",
		alwaysBeatsExtreme, "max gap %.1f%%", f9.MaxGlobalVsLocalNoDyn())

	return sc, nil
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table renders the scorecard.
func (s Scorecard) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reproduction scorecard — %d/%d of the paper's qualitative claims hold\n",
		s.Passed(), len(s.Claims))
	for _, c := range s.Claims {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-28s %s (%s)\n", mark, c.ID, c.Statement, c.Detail)
	}
	return b.String()
}
