package experiments

import (
	"strings"
	"testing"
)

func TestAblationsShapes(t *testing.T) {
	c := Quick()
	c.HorizonSec = 4 * 3600
	r, err := RunAblations(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
	}
	base := byName["baseline (paper defaults)"]
	if !base.Meets {
		t.Fatalf("baseline missed constraint: %.3f", base.Summary.MeanOmega)
	}
	// Boundary-aware release must not be costlier than releasing idle VMs
	// immediately: early releases waste the already-paid hour remainder
	// and re-acquisitions pay fresh hours.
	immediate := byName["release immediately (no boundary wait)"]
	if base.Summary.TotalCostUSD > immediate.Summary.TotalCostUSD+1e-9 {
		t.Fatalf("boundary-aware release costlier: $%.2f vs $%.2f",
			base.Summary.TotalCostUSD, immediate.Summary.TotalCostUSD)
	}
	// Wide hysteresis keeps more headroom: omega at least the baseline's.
	wide := byName["wide hysteresis (0.35)"]
	if wide.Summary.MeanOmega < base.Summary.MeanOmega-0.02 {
		t.Fatalf("wide hysteresis lowered omega: %.3f vs %.3f",
			wide.Summary.MeanOmega, base.Summary.MeanOmega)
	}
	if !strings.Contains(r.Table(), "Ablations") {
		t.Fatal("table header missing")
	}
}
