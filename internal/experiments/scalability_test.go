package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestScalabilityShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("large fleets; skipped with -short")
	}
	c := Quick()
	r, err := RunScalability(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The sweep must actually reach the paper's "100's of VMs".
	peak := 0
	for _, row := range r.Rows {
		if row.PeakVMs > peak {
			peak = row.PeakVMs
		}
		// Constraint held at every size.
		if row.MeanOmega < 0.65 {
			t.Fatalf("%d PEs: omega %.3f", row.PEs, row.MeanOmega)
		}
		if row.MeanAdapt <= 0 {
			t.Fatalf("%d PEs: no adapt timing recorded", row.PEs)
		}
	}
	if peak < 100 {
		t.Fatalf("peak fleet %d VMs — sweep never reached 100s of VMs", peak)
	}
	// "Near real time": mean decision latency stays far below the 60 s
	// adaptation interval even on the largest instance.
	last := r.Rows[len(r.Rows)-1]
	if last.MeanAdapt > 5*time.Second {
		t.Fatalf("mean adapt %v on %d VMs — not near-real-time", last.MeanAdapt, last.PeakVMs)
	}
	if !strings.Contains(r.Table(), "Scalability") {
		t.Fatal("table header missing")
	}
}
