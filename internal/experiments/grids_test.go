package experiments

import (
	"context"
	"testing"

	"dynamicdf/internal/sweep"
)

// gridConfig keeps grid tests fast: tiny horizon, two rates.
func gridConfig() Config {
	c := Quick()
	c.HorizonSec = 600
	c.Rates = []float64{3, 8}
	return c
}

func TestNamedGridsExpand(t *testing.T) {
	c := gridConfig()
	for _, name := range GridNames() {
		spec, err := NamedGrid(name, c, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		jobs, err := spec.Expand()
		if err != nil {
			t.Fatalf("%s expand: %v", name, err)
		}
		if len(jobs) == 0 {
			t.Fatalf("%s: no jobs", name)
		}
		// Replica structure: every group has exactly 2 seeds.
		perGroup := map[string]int{}
		for _, j := range jobs {
			perGroup[j.Group]++
		}
		for g, n := range perGroup {
			if n != 2 {
				t.Fatalf("%s group %s has %d replicas", name, g, n)
			}
		}
	}
	if _, err := NamedGrid("ghost", c, 1); err == nil {
		t.Fatal("unknown grid accepted")
	}
}

// TestGridFig5Runs executes a reduced Fig. 5 grid end to end through the
// sweep engine, proving the figure runners are expressible as campaigns.
func TestGridFig5Runs(t *testing.T) {
	c := gridConfig()
	c.Rates = []float64{3}
	spec, err := GridFig5(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drop bruteforce to keep the test fast; local/global static remain.
	spec.Axes[0].Values = spec.Axes[0].Values[1:]
	rep, err := (&sweep.Engine{Workers: 2}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Total != 2 {
		t.Fatalf("report = %+v", rep)
	}
	for _, row := range rep.Rows {
		if !(row.Omega.Mean > 0 && row.Omega.Mean <= 1) {
			t.Fatalf("row %s omega = %v", row.Group, row.Omega.Mean)
		}
		if row.CostUSD.Mean <= 0 {
			t.Fatalf("row %s cost = %v", row.Group, row.CostUSD.Mean)
		}
	}
}

// TestGridFaultsRuns executes one cell of the fault matrix to confirm the
// control block survives the merge-patch path into a running engine.
func TestGridFaultsRuns(t *testing.T) {
	c := gridConfig()
	spec, err := GridFaults(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only (global, boot) for speed.
	spec.Axes[0].Values = spec.Axes[0].Values[:1]
	spec.Axes[1].Values = spec.Axes[1].Values[1:2]
	rep, err := (&sweep.Engine{Workers: 1}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Total != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestGridFairnessRuns executes the scarce/tiered corner of the fairness
// grid: tenants survive the merge-patch path, and per-tenant results come
// back through the sweep engine.
func TestGridFairnessRuns(t *testing.T) {
	c := gridConfig()
	spec, err := GridFairness(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only (tiered, strict, scarce) — the cell where arbitration bites.
	spec.Axes[0].Values = spec.Axes[0].Values[1:2]
	spec.Axes[1].Values = spec.Axes[1].Values[1:2]
	spec.Axes[2].Values = spec.Axes[2].Values[1:2]
	rep, err := (&sweep.Engine{Workers: 1}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Total != 1 {
		t.Fatalf("report = %+v", rep)
	}
	res := rep.Results[0]
	if len(res.Tenants) != 2 || res.Tenants[0].Name != "front" || res.Tenants[1].Name != "batch" {
		t.Fatalf("tenants = %+v", res.Tenants)
	}
	if len(rep.Rows) != 1 || len(rep.Rows[0].Tenants) != 2 {
		t.Fatalf("aggregate rows = %+v", rep.Rows)
	}
}
