package experiments

import (
	"strings"
	"testing"
)

func TestFaultToleranceShapes(t *testing.T) {
	c := Quick()
	c.HorizonSec = 4 * 3600
	r, err := RunFaultTolerance(c, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byPolicy := map[string]FaultRow{}
	for _, row := range r.Rows {
		byPolicy[row.Policy] = row
	}
	static := byPolicy["global-static"]
	dyn := byPolicy["global"]
	nodyn := byPolicy["global-nodyn"]

	// Crashes must actually occur for everyone.
	for name, row := range byPolicy {
		if row.Crashes == 0 {
			t.Fatalf("%s: no crashes injected", name)
		}
	}
	// The static deployment cannot replace dead VMs: it ends far below the
	// adaptive policies and misses the constraint.
	if static.MeetsOmega {
		t.Fatalf("static met the constraint through crashes: omega %.3f", static.Summary.MeanOmega)
	}
	if static.Summary.MeanOmega >= dyn.Summary.MeanOmega {
		t.Fatalf("static omega %.3f not below adaptive %.3f", static.Summary.MeanOmega, dyn.Summary.MeanOmega)
	}
	// Adaptive policies re-provision and keep the constraint.
	if !dyn.MeetsOmega || !nodyn.MeetsOmega {
		t.Fatalf("adaptive missed under failures: dyn %.3f nodyn %.3f",
			dyn.Summary.MeanOmega, nodyn.Summary.MeanOmega)
	}
	// Dynamism keeps recovery no more expensive.
	if dyn.Summary.TotalCostUSD > nodyn.Summary.TotalCostUSD+1e-9 {
		t.Fatalf("dynamism made recovery costlier: $%.2f vs $%.2f",
			dyn.Summary.TotalCostUSD, nodyn.Summary.TotalCostUSD)
	}
	if !strings.Contains(r.Table(), "Fault tolerance") {
		t.Fatal("table header missing")
	}
}

func TestFaultToleranceValidation(t *testing.T) {
	if _, err := RunFaultTolerance(Quick(), 20, 0); err == nil {
		t.Fatal("zero MTBF accepted")
	}
}
