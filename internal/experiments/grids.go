package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/scenario"
	"dynamicdf/internal/sweep"
)

// This file re-expresses the figure runners as sweep grids: the same
// evaluation dataflow and policy matrix, but as declarative sweep specs
// the campaign engine can execute in parallel, cache, and resume. dfbench
// -sweep and cmd/dfserve consume them; RunFig* remain the serial
// single-process reference.

// evalBase builds the sweep base scenario: the §8 evaluation dataflow at
// the given mean rate on an ideal cloud with the config's horizon. Every
// grid job runs with the invariant checker in strict mode, so a
// conservation bug in the engine fails the campaign instead of skewing a
// figure.
func (c Config) evalBase(rate float64) ([]byte, error) {
	gs, choices := scenario.FromGraph(dataflow.EvalGraph())
	base := scenario.Scenario{
		Graph:        gs,
		Choices:      choices,
		Rate:         scenario.RateSpec{Kind: "constant", Mean: rate},
		Infra:        scenario.InfraSpec{Kind: "ideal"},
		Policy:       scenario.PolicySpec{Kind: "global"},
		HorizonHours: float64(c.HorizonSec) / 3600,
		IntervalSec:  c.IntervalSec,
		Seed:         c.Seed,
		Check:        &scenario.CheckSpec{Enabled: true, Strict: true},
	}
	b, err := json.Marshal(&base)
	if err != nil {
		return nil, fmt.Errorf("experiments: eval base: %w", err)
	}
	return b, nil
}

// patch formats a merge patch from a JSON literal.
func patch(doc string) json.RawMessage { return json.RawMessage(doc) }

// rateAxis sweeps the data-rate ladder.
func rateAxis(rates []float64) sweep.Axis {
	ax := sweep.Axis{Name: "rate"}
	for _, r := range rates {
		ax.Values = append(ax.Values, sweep.AxisValue{
			Label: fmt.Sprintf("%g", r),
			Patch: patch(fmt.Sprintf(`{"rate": {"mean": %g}}`, r)),
		})
	}
	return ax
}

// seedLadder derives n replica seeds from the config seed.
func seedLadder(base int64, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// GridFig5 is Fig. 5 as a campaign: static policies across the data-rate
// sweep on an ideal cloud, n seed replicas per cell.
func GridFig5(c Config, replicas int) (*sweep.Spec, error) {
	base, err := c.evalBase(c.Rates[0])
	if err != nil {
		return nil, err
	}
	return &sweep.Spec{
		Name: "fig5-static-vs-rate",
		Base: base,
		Axes: []sweep.Axis{
			{Name: "policy", Values: []sweep.AxisValue{
				{Label: "bruteforce", Patch: patch(`{"policy": {"kind": "bruteforce"}}`)},
				{Label: "local-static", Patch: patch(`{"policy": {"kind": "local", "static": true}}`)},
				{Label: "global-static", Patch: patch(`{"policy": {"kind": "global", "static": true}}`)},
			}},
			rateAxis(c.Rates),
		},
		Seeds: seedLadder(c.Seed, replicas),
	}, nil
}

// GridAdaptive is Figs. 6-7 as one campaign: local vs global adaptive
// heuristics under infrastructure variability (replayed traces) and data
// variability (the wave+walk profile), across the rate sweep.
func GridAdaptive(c Config, replicas int) (*sweep.Spec, error) {
	base, err := c.evalBase(c.Rates[0])
	if err != nil {
		return nil, err
	}
	return &sweep.Spec{
		Name: "fig67-adaptive",
		Base: base,
		Axes: []sweep.Axis{
			{Name: "policy", Values: []sweep.AxisValue{
				{Label: "local", Patch: patch(`{"policy": {"kind": "local"}}`)},
				{Label: "global", Patch: patch(`{"policy": {"kind": "global"}}`)},
			}},
			{Name: "var", Values: []sweep.AxisValue{
				{Label: "infra", Patch: patch(fmt.Sprintf(`{"infra": {"kind": "replayed", "seed": %d}}`, c.Seed))},
				{Label: "data", Patch: patch(`{"rate": {"kind": "wavewalk"}}`)},
			}},
			rateAxis(c.Rates),
		},
		Seeds: seedLadder(c.Seed, replicas),
	}, nil
}

// GridFaults is the chaoscloud fault matrix as a campaign: the global
// policy, bare and wrapped in the resilient middleware, against escalating
// control-plane fault profiles on a variable cloud.
func GridFaults(c Config, replicas int) (*sweep.Spec, error) {
	base, err := c.evalBase(10)
	if err != nil {
		return nil, err
	}
	base, err = sweep.MergePatch(base, patch(fmt.Sprintf(
		`{"infra": {"kind": "replayed", "seed": %d}, "rate": {"kind": "wavewalk", "mean": 10}}`, c.Seed)))
	if err != nil {
		return nil, err
	}
	return &sweep.Spec{
		Name: "chaoscloud-fault-matrix",
		Base: base,
		Axes: []sweep.Axis{
			{Name: "policy", Values: []sweep.AxisValue{
				{Label: "global", Patch: patch(`{"policy": {"kind": "global"}}`)},
				{Label: "global-resilient", Patch: patch(`{"policy": {"kind": "global", "resilient": true, "degradeOmega": 0.5}}`)},
			}},
			{Name: "faults", Values: []sweep.AxisValue{
				{Label: "none", Patch: patch(`{}`)},
				{Label: "boot", Patch: patch(`{"control": {"meanBootSec": 120}}`)},
				{Label: "capacity", Patch: patch(`{"control": {"acquireFailProb": 0.2, "burstEverySec": 3600, "faultFreeSec": 600}}`)},
				{Label: "monitor", Patch: patch(`{"control": {"monitorStaleProb": 0.3, "monitorNoiseFrac": 0.2}}`)},
				{Label: "all", Patch: patch(`{"control": {"meanBootSec": 120, "acquireFailProb": 0.2, "burstEverySec": 3600, "faultFreeSec": 600, "monitorStaleProb": 0.3, "monitorNoiseFrac": 0.2}}`)},
			}},
		},
		Seeds: seedLadder(c.Seed, replicas),
	}, nil
}

// fairTenants builds the fairness grid's two-tenant block: "front" (the
// user-facing dataflow, optionally prioritized) and "batch" (a throughput
// workload at the same rate). Ω floors are left zero so each tenant's floor
// follows its objective OmegaHat — which the grid's floor axis sweeps via
// the scenario-level override.
func fairTenants(frontPriority int) []scenario.TenantSpec {
	gs, _ := scenario.FromGraph(dataflow.NewBuilder().
		AddPE("src", dataflow.Alt("e", 1, 0.2, 1)).
		AddPE("work",
			dataflow.Alt("full", 1, 1.0, 1),
			dataflow.Alt("lite", 0.8, 0.5, 1)).
		Connect("src", "work").
		MustBuild())
	return []scenario.TenantSpec{
		{Name: "front", Graph: gs, Rate: scenario.RateSpec{Kind: "constant", Mean: 8}, Priority: frontPriority},
		{Name: "batch", Graph: gs, Rate: scenario.RateSpec{Kind: "constant", Mean: 8}},
	}
}

// GridFairness probes the multi-tenant arbiter: priority (flat vs tiered)
// x Ω floor (lax vs strict, via the scenario-level OmegaHat override every
// tenant's floor defaults to) x fleet scarcity (ample vs scarce MaxVMs).
// Merge patches replace arrays wholesale (RFC 7386), so the priority axis
// carries the complete tenants array; the other axes stay scalar.
func GridFairness(c Config, replicas int) (*sweep.Spec, error) {
	base := scenario.Scenario{
		Tenants:      fairTenants(0),
		Infra:        scenario.InfraSpec{Kind: "ideal"},
		HorizonHours: float64(c.HorizonSec) / 3600,
		IntervalSec:  c.IntervalSec,
		Seed:         c.Seed,
		MaxVMs:       12,
		Check:        &scenario.CheckSpec{Enabled: true, Strict: true},
	}
	baseDoc, err := json.Marshal(&base)
	if err != nil {
		return nil, fmt.Errorf("experiments: fairness base: %w", err)
	}
	priorityPatch := func(p int) (json.RawMessage, error) {
		return json.Marshal(map[string][]scenario.TenantSpec{"tenants": fairTenants(p)})
	}
	flat, err := priorityPatch(0)
	if err != nil {
		return nil, err
	}
	tiered, err := priorityPatch(2)
	if err != nil {
		return nil, err
	}
	return &sweep.Spec{
		Name: "fairness-arbitration",
		Base: baseDoc,
		Axes: []sweep.Axis{
			{Name: "priority", Values: []sweep.AxisValue{
				{Label: "flat", Patch: flat},
				{Label: "tiered", Patch: tiered},
			}},
			{Name: "floor", Values: []sweep.AxisValue{
				{Label: "lax", Patch: patch(`{"omegaHat": 0.6}`)},
				{Label: "strict", Patch: patch(`{"omegaHat": 0.85}`)},
			}},
			{Name: "fleet", Values: []sweep.AxisValue{
				{Label: "ample", Patch: patch(`{"maxVMs": 12}`)},
				{Label: "scarce", Patch: patch(`{"maxVMs": 5}`)},
			}},
		},
		Seeds: seedLadder(c.Seed, replicas),
	}, nil
}

// namedGrids maps the -sweep names to their builders.
var namedGrids = map[string]func(Config, int) (*sweep.Spec, error){
	"fig5":     GridFig5,
	"fig67":    GridAdaptive,
	"faults":   GridFaults,
	"fairness": GridFairness,
}

// GridNames lists the named grids, sorted.
func GridNames() []string {
	out := make([]string, 0, len(namedGrids))
	for name := range namedGrids {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NamedGrid resolves a grid by name with the given replica count.
func NamedGrid(name string, c Config, replicas int) (*sweep.Spec, error) {
	build, ok := namedGrids[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown grid %q (have %s)",
			name, strings.Join(GridNames(), ", "))
	}
	if replicas < 1 {
		replicas = 1
	}
	return build(c, replicas)
}
