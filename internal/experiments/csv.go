package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV streams the run rows of a figure for external plotting:
// one row per (policy, rate, scenario) with the summary columns.
func writeRunRows(w io.Writer, rows []RunResult) error {
	cw := csv.NewWriter(w)
	header := []string{"policy", "rate", "scenario", "omega", "omega_min", "gamma", "cost_usd", "theta", "meets", "peak_vms"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range rows {
		rec := []string{
			r.Policy,
			f(r.Rate),
			r.Scenario.String(),
			f(r.Summary.MeanOmega),
			f(r.Summary.MinOmega),
			f(r.Summary.MeanGamma),
			f(r.Summary.TotalCostUSD),
			f(r.Theta),
			strconv.FormatBool(r.MeetsOmega),
			strconv.Itoa(r.Summary.PeakVMs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits Fig. 4's rows.
func (r Fig4Result) WriteCSV(w io.Writer) error { return writeRunRows(w, r.Rows) }

// WriteCSV emits Fig. 5's rows.
func (r Fig5Result) WriteCSV(w io.Writer) error { return writeRunRows(w, r.Rows) }

// WriteCSV emits Figs. 6/7's rows.
func (r FigAdaptiveResult) WriteCSV(w io.Writer) error { return writeRunRows(w, r.Rows) }

// WriteCSV emits Fig. 8's rows.
func (r Fig8Result) WriteCSV(w io.Writer) error { return writeRunRows(w, r.Rows) }

// WriteCSV emits Fig. 9's derived savings series.
func (r Fig9Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rate", "global_vs_nodyn_pct", "local_vs_nodyn_pct", "global_vs_local_nodyn_pct"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, rate := range r.Rates {
		rec := []string{f(rate), f(r.GlobalSavings[i]), f(r.LocalSavings[i]), f(r.GlobalVsLocalNoDyn[i])}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the scalability sweep.
func (r ScalabilityResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pes", "alternates", "rate", "peak_vms", "omega", "adapt_mean_us", "adapt_max_us"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.PEs),
			strconv.Itoa(row.Alternates),
			strconv.FormatFloat(row.Rate, 'g', -1, 64),
			strconv.Itoa(row.PeakVMs),
			strconv.FormatFloat(row.MeanOmega, 'g', -1, 64),
			strconv.FormatInt(row.MeanAdapt.Microseconds(), 10),
			strconv.FormatInt(row.MaxAdapt.Microseconds(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the ablation comparison.
func (r AblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"variant", "omega", "gamma", "cost_usd", "theta", "meets"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, row := range r.Rows {
		rec := []string{
			row.Variant,
			f(row.Summary.MeanOmega),
			f(row.Summary.MeanGamma),
			f(row.Summary.TotalCostUSD),
			f(row.Theta),
			strconv.FormatBool(row.Meets),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the fault-tolerance comparison.
func (r FaultToleranceResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"policy", "omega", "gamma", "cost_usd", "theta", "meets", "crashes", "lost_messages"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, row := range r.Rows {
		rec := []string{
			row.Policy,
			f(row.Summary.MeanOmega),
			f(row.Summary.MeanGamma),
			f(row.Summary.TotalCostUSD),
			f(row.Theta),
			strconv.FormatBool(row.MeetsOmega),
			strconv.Itoa(row.Crashes),
			f(row.LostMessages),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Ensure the interface is satisfied uniformly.
type csvWriter interface{ WriteCSV(io.Writer) error }

var _ = []csvWriter{
	Fig4Result{}, Fig5Result{}, FigAdaptiveResult{}, Fig8Result{},
	Fig9Result{}, ScalabilityResult{}, AblationResult{}, FaultToleranceResult{},
}

// WriteAllCSVs runs the full evaluation and writes one CSV per figure via
// open, which maps a short name ("fig4", "fig9", "scalability", ...) to a
// writer. It lets cmd/dfbench dump a plot-ready directory.
func WriteAllCSVs(c Config, open func(name string) (io.WriteCloser, error)) error {
	emit := func(name string, r csvWriter) error {
		w, err := open(name)
		if err != nil {
			return err
		}
		if err := r.WriteCSV(w); err != nil {
			_ = w.Close()
			return fmt.Errorf("experiments: csv %s: %w", name, err)
		}
		return w.Close()
	}
	f4, err := RunFig4(c)
	if err != nil {
		return err
	}
	if err := emit("fig4", f4); err != nil {
		return err
	}
	f5, err := RunFig5(c)
	if err != nil {
		return err
	}
	if err := emit("fig5", f5); err != nil {
		return err
	}
	f6, err := RunFig6(c)
	if err != nil {
		return err
	}
	if err := emit("fig6", f6); err != nil {
		return err
	}
	f7, err := RunFig7(c)
	if err != nil {
		return err
	}
	if err := emit("fig7", f7); err != nil {
		return err
	}
	f8, err := RunFig8(c)
	if err != nil {
		return err
	}
	if err := emit("fig8", f8); err != nil {
		return err
	}
	f9, err := DeriveFig9(f8)
	if err != nil {
		return err
	}
	if err := emit("fig9", f9); err != nil {
		return err
	}
	ab, err := RunAblations(c)
	if err != nil {
		return err
	}
	if err := emit("ablations", ab); err != nil {
		return err
	}
	ft, err := RunFaultTolerance(c, 20, 2)
	if err != nil {
		return err
	}
	return emit("fault_tolerance", ft)
}
