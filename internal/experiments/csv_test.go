package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

func TestFigureCSVWriters(t *testing.T) {
	c := Quick()
	c.HorizonSec = 3600
	c.Rates = []float64{5}

	f4, err := RunFig4(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f4.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(f4.Rows) {
		t.Fatalf("fig4 csv lines = %d, want %d", len(lines), 1+len(f4.Rows))
	}
	if !strings.HasPrefix(lines[0], "policy,rate,scenario,omega") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != strings.Count(lines[0], ",") {
			t.Fatalf("ragged row %q", l)
		}
	}

	f8, err := RunFig8(c)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := DeriveFig9(f8)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f9.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "global_vs_nodyn_pct") {
		t.Fatalf("fig9 csv = %q", buf.String())
	}

	ft, err := RunFaultTolerance(c, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ft.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crashes") {
		t.Fatal("ft csv missing crashes column")
	}
}

func TestWriteAllCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped with -short")
	}
	c := Quick()
	c.HorizonSec = 3600
	c.Rates = []float64{5, 20}
	got := map[string]*bytes.Buffer{}
	err := WriteAllCSVs(c, func(name string) (io.WriteCloser, error) {
		b := &bytes.Buffer{}
		got[name] = b
		return nopCloser{b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablations", "fault_tolerance"} {
		b, ok := got[want]
		if !ok || b.Len() == 0 {
			t.Fatalf("missing or empty csv %q", want)
		}
	}
}
