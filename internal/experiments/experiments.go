// Package experiments reproduces the paper's evaluation (§8): every figure
// has a runner that builds the scenario — the Fig. 1 dataflow scaled to the
// evaluation's alternate ladders, AWS-like VM classes, FutureGrid-calibrated
// performance traces, and the three data-rate profiles — executes the
// policies under comparison, and returns the same rows/series the paper
// plots. cmd/dfbench prints them; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
	"dynamicdf/internal/trace"
)

// Config holds the evaluation-wide knobs; Default() mirrors §8.
type Config struct {
	// HorizonSec is the optimization period per run. The paper's dollar
	// figures use 10 hours; shorter horizons keep tests fast.
	HorizonSec int64
	// IntervalSec is the adaptation interval.
	IntervalSec int64
	// Seed drives every stochastic input deterministically.
	Seed int64
	// Rates is the data-rate sweep (msg/s).
	Rates []float64
	// WaveAmplitudeFrac sizes the periodic wave relative to the mean.
	WaveAmplitudeFrac float64
	// WavePeriodSec is the wave period.
	WavePeriodSec int64
}

// Default returns the paper's evaluation settings.
func Default() Config {
	return Config{
		HorizonSec:        10 * 3600,
		IntervalSec:       60,
		Seed:              42,
		Rates:             rates.PaperDataRates(),
		WaveAmplitudeFrac: 0.4,
		WavePeriodSec:     1800,
	}
}

// Quick returns a reduced configuration for tests and smoke runs: shorter
// horizon, sparser rate sweep.
func Quick() Config {
	c := Default()
	c.HorizonSec = 2 * 3600
	c.Rates = []float64{2, 10, 35}
	return c
}

// Variability selects which §8 dynamism sources a scenario enables.
type Variability int

const (
	// NoVariability: constant data rate, ideal infrastructure.
	NoVariability Variability = iota
	// DataVariability: periodic wave + random-walk input, ideal cloud.
	DataVariability
	// InfraVariability: constant rate, replayed performance traces.
	InfraVariability
	// BothVariability: variable input on a variable cloud.
	BothVariability
)

// String implements fmt.Stringer.
func (v Variability) String() string {
	switch v {
	case NoVariability:
		return "none"
	case DataVariability:
		return "data"
	case InfraVariability:
		return "infra"
	case BothVariability:
		return "both"
	}
	return "unknown"
}

// profile builds the input profile a scenario uses at the given mean rate.
// Data-varying scenarios superimpose the paper's periodic wave on a random
// walk (both §8.1 workloads); constant scenarios use the flat profile.
func (c Config) profile(v Variability, mean float64) (rates.Profile, error) {
	switch v {
	case DataVariability, BothVariability:
		w, err := rates.NewWave(mean, c.WaveAmplitudeFrac*mean, c.WavePeriodSec)
		if err != nil {
			return nil, err
		}
		// Start at the trough: the initial rate estimate a static
		// deployment provisions for is genuinely below what arrives later,
		// as with any stream whose volume grows after submission.
		w.PhaseSec = 3 * c.WavePeriodSec / 4
		rw, err := rates.NewRandomWalk(mean, 0.08, c.IntervalSec, c.Seed+int64(mean*100))
		if err != nil {
			return nil, err
		}
		// Average the two so the mean stays at the requested rate while
		// both periodic and stochastic variation are present.
		return &mixed{a: w, b: rw}, nil
	default:
		return rates.NewConstant(mean)
	}
}

// mixed averages two profiles.
type mixed struct{ a, b rates.Profile }

func (m *mixed) Rate(sec int64) float64 { return (m.a.Rate(sec) + m.b.Rate(sec)) / 2 }
func (m *mixed) Mean() float64          { return (m.a.Mean() + m.b.Mean()) / 2 }
func (m *mixed) Name() string           { return "wave+walk" }

// perf builds the infrastructure provider for a scenario.
func (c Config) perf(v Variability) trace.Provider {
	switch v {
	case InfraVariability, BothVariability:
		return trace.MustReplayed(trace.ReplayedConfig{Seed: c.Seed})
	default:
		return trace.NewIdeal()
	}
}

// RunResult is one (policy, scenario) execution.
type RunResult struct {
	Policy       string
	Rate         float64
	Scenario     Variability
	Summary      metrics.Summary
	Theta        float64
	MeetsOmega   bool
	ObjSigma     float64
	HorizonHours float64
}

// String renders the run as one table row.
func (r RunResult) String() string {
	met := "MET "
	if !r.MeetsOmega {
		met = "MISS"
	}
	return fmt.Sprintf("%-22s rate=%4.0f var=%-5s omega=%.3f %s gamma=%.3f cost=$%7.2f theta=%+.4f",
		r.Policy, r.Rate, r.Scenario, r.Summary.MeanOmega, met, r.Summary.MeanGamma,
		r.Summary.TotalCostUSD, r.Theta)
}

// PolicyKind enumerates the evaluation's policies.
type PolicyKind int

const (
	// LocalAdaptive is the local heuristic with runtime adaptation and
	// dynamism.
	LocalAdaptive PolicyKind = iota
	// GlobalAdaptive is the global heuristic with runtime adaptation and
	// dynamism.
	GlobalAdaptive
	// LocalAdaptiveNoDyn disables alternate selection (ablation).
	LocalAdaptiveNoDyn
	// GlobalAdaptiveNoDyn disables alternate selection (ablation).
	GlobalAdaptiveNoDyn
	// LocalStatic deploys once with the local heuristic.
	LocalStatic
	// GlobalStatic deploys once with the global heuristic.
	GlobalStatic
	// BruteForceStatic is the exhaustive static baseline.
	BruteForceStatic
)

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	switch p {
	case LocalAdaptive:
		return "local"
	case GlobalAdaptive:
		return "global"
	case LocalAdaptiveNoDyn:
		return "local-nodyn"
	case GlobalAdaptiveNoDyn:
		return "global-nodyn"
	case LocalStatic:
		return "local-static"
	case GlobalStatic:
		return "global-static"
	case BruteForceStatic:
		return "bruteforce-static"
	}
	return "unknown"
}

// build constructs the scheduler for a policy kind.
func (c Config) build(p PolicyKind, obj core.Objective) (sim.Scheduler, error) {
	hours := float64(c.HorizonSec) / 3600
	switch p {
	case BruteForceStatic:
		return core.NewBruteForce(obj, hours)
	case LocalStatic:
		return core.NewHeuristic(core.Options{Strategy: core.Local, Dynamic: true, Adaptive: false, Objective: obj})
	case GlobalStatic:
		return core.NewHeuristic(core.Options{Strategy: core.Global, Dynamic: true, Adaptive: false, Objective: obj})
	case LocalAdaptive:
		return core.NewHeuristic(core.Options{Strategy: core.Local, Dynamic: true, Adaptive: true, Objective: obj})
	case GlobalAdaptive:
		return core.NewHeuristic(core.Options{Strategy: core.Global, Dynamic: true, Adaptive: true, Objective: obj})
	case LocalAdaptiveNoDyn:
		return core.NewHeuristic(core.Options{Strategy: core.Local, Dynamic: false, Adaptive: true, Objective: obj})
	case GlobalAdaptiveNoDyn:
		return core.NewHeuristic(core.Options{Strategy: core.Global, Dynamic: false, Adaptive: true, Objective: obj})
	}
	return nil, fmt.Errorf("experiments: unknown policy %d", p)
}

// Run executes one (policy, rate, variability) scenario on the evaluation
// dataflow and returns the result row.
func (c Config) Run(p PolicyKind, rate float64, v Variability) (RunResult, error) {
	g := dataflow.EvalGraph()
	hours := float64(c.HorizonSec) / 3600
	obj, err := core.PaperSigma(g, rate, hours)
	if err != nil {
		return RunResult{}, err
	}
	sched, err := c.build(p, obj)
	if err != nil {
		return RunResult{}, err
	}
	prof, err := c.profile(v, rate)
	if err != nil {
		return RunResult{}, err
	}
	cfg := sim.Config{
		Graph:       g,
		Menu:        cloud.MustMenu(cloud.AWS2013Classes()),
		Perf:        c.perf(v),
		Inputs:      map[int]rates.Profile{g.Inputs()[0]: prof},
		IntervalSec: c.IntervalSec,
		HorizonSec:  c.HorizonSec,
		Seed:        c.Seed,
	}
	engine, err := sim.NewEngine(cfg)
	if err != nil {
		return RunResult{}, err
	}
	sum, err := engine.Run(sched)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Policy:       sched.Name(),
		Rate:         rate,
		Scenario:     v,
		Summary:      sum,
		Theta:        obj.Theta(sum.MeanGamma, sum.TotalCostUSD),
		MeetsOmega:   obj.MeetsConstraint(sum.MeanOmega),
		ObjSigma:     obj.Sigma,
		HorizonHours: hours,
	}, nil
}
