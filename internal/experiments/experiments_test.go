package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestVariabilityAndPolicyStrings(t *testing.T) {
	if NoVariability.String() != "none" || DataVariability.String() != "data" ||
		InfraVariability.String() != "infra" || BothVariability.String() != "both" {
		t.Fatal("variability names wrong")
	}
	if Variability(99).String() != "unknown" {
		t.Fatal("unknown variability")
	}
	names := map[PolicyKind]string{
		LocalAdaptive:       "local",
		GlobalAdaptive:      "global",
		LocalAdaptiveNoDyn:  "local-nodyn",
		GlobalAdaptiveNoDyn: "global-nodyn",
		LocalStatic:         "local-static",
		GlobalStatic:        "global-static",
		BruteForceStatic:    "bruteforce-static",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d = %q, want %q", k, k.String(), want)
		}
	}
	if PolicyKind(99).String() != "unknown" {
		t.Fatal("unknown policy")
	}
}

func TestRunPolicyNameMatchesKind(t *testing.T) {
	c := Quick()
	c.HorizonSec = 3600
	for _, k := range []PolicyKind{LocalAdaptive, GlobalAdaptive, LocalStatic, BruteForceStatic, GlobalAdaptiveNoDyn} {
		r, err := c.Run(k, 5, NoVariability)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if r.Policy != k.String() {
			t.Fatalf("policy name %q != kind %q", r.Policy, k.String())
		}
		if r.Summary.Intervals != int(c.HorizonSec/c.IntervalSec) {
			t.Fatalf("intervals = %d", r.Summary.Intervals)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	c := Quick()
	c.HorizonSec = 3600
	a, err := c.Run(GlobalAdaptive, 10, BothVariability)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Run(GlobalAdaptive, 10, BothVariability)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) || a.Theta != b.Theta {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestFig2Characterization(t *testing.T) {
	r, err := RunFig2(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.VMs) != 4 {
		t.Fatalf("VMs = %d", len(r.VMs))
	}
	for i, s := range r.VMs {
		if s.CoV < 0.005 {
			t.Fatalf("vm %d: CoV %v — no variability generated", i, s.CoV)
		}
		if s.Mean < 0.5 || s.Mean > 1.0 {
			t.Fatalf("vm %d: mean %v implausible", i, s.Mean)
		}
	}
	// The pooled deviation should show the paper's headline: double-digit
	// percentage swings around the mean.
	if r.Deviation.Max < 0.10 && -r.Deviation.Min < 0.10 {
		t.Fatalf("relative deviation extremes [%v, %v] below 10%%", r.Deviation.Min, r.Deviation.Max)
	}
	if !strings.Contains(r.Table(), "Fig 2") {
		t.Fatal("table header missing")
	}
}

func TestFig3Characterization(t *testing.T) {
	r, err := RunFig3(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency.Mean <= 0 || r.Latency.Mean > 0.01 {
		t.Fatalf("latency mean %v out of millisecond range", r.Latency.Mean)
	}
	if r.Bandwidth.Mean < 20 || r.Bandwidth.Mean > 100 {
		t.Fatalf("bandwidth mean %v out of range", r.Bandwidth.Mean)
	}
	if r.Bandwidth.CoV < 0.01 {
		t.Fatal("bandwidth shows no variability")
	}
	if !strings.Contains(r.Table(), "Fig 3") {
		t.Fatal("table header missing")
	}
}

func TestFig4Shape(t *testing.T) {
	c := Quick()
	r, err := RunFig4(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byScenario := map[Variability][]RunResult{}
	for _, row := range r.Rows {
		byScenario[row.Scenario] = append(byScenario[row.Scenario], row)
	}
	// Without variability every static deployment meets the constraint.
	for _, row := range byScenario[NoVariability] {
		if !row.MeetsOmega {
			t.Fatalf("no-variability %s missed: omega %.3f", row.Policy, row.Summary.MeanOmega)
		}
	}
	// With both variabilities none does (the paper's headline).
	for _, row := range byScenario[BothVariability] {
		if row.MeetsOmega {
			t.Fatalf("both-variability %s unexpectedly met: omega %.3f", row.Policy, row.Summary.MeanOmega)
		}
	}
	// Variability strictly degrades each policy's throughput.
	for i, none := range byScenario[NoVariability] {
		both := byScenario[BothVariability][i]
		if both.Summary.MeanOmega >= none.Summary.MeanOmega {
			t.Fatalf("%s: omega did not degrade (%.3f -> %.3f)",
				none.Policy, none.Summary.MeanOmega, both.Summary.MeanOmega)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	c := Quick()
	r, err := RunFig5(c)
	if err != nil {
		t.Fatal(err)
	}
	// Static throughput headroom shrinks as the data rate grows: compare
	// each policy at the lowest vs highest rate.
	first := map[string]float64{}
	last := map[string]float64{}
	for _, row := range r.Rows {
		if row.Rate == c.Rates[0] {
			first[row.Policy] = row.Summary.MeanOmega
		}
		if row.Rate == c.Rates[len(c.Rates)-1] {
			last[row.Policy] = row.Summary.MeanOmega
		}
	}
	for p, lo := range first {
		if hi := last[p]; hi > lo+1e-9 {
			t.Fatalf("%s: omega grew with rate (%.3f -> %.3f)", p, lo, hi)
		}
	}
	// All meet the constraint without variability.
	for _, row := range r.Rows {
		if !row.MeetsOmega {
			t.Fatalf("%s@%v missed without variability: %.3f", row.Policy, row.Rate, row.Summary.MeanOmega)
		}
	}
}

func TestFig6AdaptiveMeetsConstraint(t *testing.T) {
	c := Quick()
	r, err := RunFig6(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if !row.MeetsOmega {
			t.Fatalf("%s@%v missed under infra variability: %.3f", row.Policy, row.Rate, row.Summary.MeanOmega)
		}
	}
	if r.Scenario != InfraVariability {
		t.Fatal("wrong scenario")
	}
}

func TestFig7ShapeGlobalWinsHighRates(t *testing.T) {
	c := Quick()
	r, err := RunFig7(c)
	if err != nil {
		t.Fatal(err)
	}
	theta := map[string]map[float64]float64{"local": {}, "global": {}}
	for _, row := range r.Rows {
		if !row.MeetsOmega {
			t.Fatalf("%s@%v missed under data variability: %.3f", row.Policy, row.Rate, row.Summary.MeanOmega)
		}
		theta[row.Policy][row.Rate] = row.Theta
	}
	hi := c.Rates[len(c.Rates)-1]
	if theta["global"][hi] < theta["local"][hi] {
		t.Fatalf("at %v msg/s: global theta %.4f below local %.4f (paper: global wins above ~10 msg/s)",
			hi, theta["global"][hi], theta["local"][hi])
	}
}

func TestFig8And9DynamismSaves(t *testing.T) {
	c := Quick()
	f8, err := RunFig8(c)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := DeriveFig9(f8)
	if err != nil {
		t.Fatal(err)
	}
	// At every rate, global with dynamism must cost no more than without.
	for i, s := range f9.GlobalSavings {
		if s < -1e-9 {
			t.Fatalf("rate %v: dynamism cost extra (%.1f%%)", f9.Rates[i], s)
		}
	}
	// Somewhere in the sweep the savings are material (paper: ~15%).
	best := 0.0
	for _, s := range f9.GlobalSavings {
		if s > best {
			best = s
		}
	}
	if best < 5 {
		t.Fatalf("peak global dynamism savings %.1f%% — too small to reproduce Fig 9", best)
	}
	// The extreme comparison favours global everywhere.
	for i, s := range f9.GlobalVsLocalNoDyn {
		if s < 0 {
			t.Fatalf("rate %v: global costlier than local-nodyn by %.1f%%", f9.Rates[i], -s)
		}
	}
	if !strings.Contains(f9.Table(), "Fig 9") {
		t.Fatal("table header missing")
	}
}

func TestVMClassTable(t *testing.T) {
	tbl := VMClassTable()
	for _, want := range []string{"m1.small", "m1.xlarge", "0.48"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestDeriveFig9MissingData(t *testing.T) {
	if _, err := DeriveFig9(Fig8Result{Rows: []RunResult{{Policy: "global", Rate: 5}}}); err == nil {
		t.Fatal("missing policies accepted")
	}
}
