package experiments

import (
	"fmt"
	"strings"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
)

// AblationRow is one variant's outcome.
type AblationRow struct {
	Variant string
	Summary metrics.Summary
	Theta   float64
	Meets   bool
}

// AblationResult compares design-choice variants of the global adaptive
// heuristic on one scenario (20 msg/s, both variabilities). These are the
// knobs DESIGN.md calls out: hour-boundary release window, scale-down
// hysteresis, alternate-stage cadence, runtime consolidation, and
// monitoring smoothing.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblations executes every variant.
func RunAblations(c Config) (AblationResult, error) {
	g := dataflow.EvalGraph()
	hours := float64(c.HorizonSec) / 3600
	obj, err := core.PaperSigma(g, 20, hours)
	if err != nil {
		return AblationResult{}, err
	}
	base := core.Options{Strategy: core.Global, Dynamic: true, Adaptive: true, Objective: obj}

	variants := []struct {
		name  string
		opts  func() core.Options
		alpha float64
	}{
		{"baseline (paper defaults)", func() core.Options { return base }, 0},
		{"release immediately (no boundary wait)", func() core.Options {
			o := base
			o.ReleaseWindowSec = cloud.SecondsPerHour // any idle VM goes at once
			return o
		}, 0},
		{"no scale-down hysteresis", func() core.Options {
			o := base
			o.Hysteresis = 0.005
			return o
		}, 0},
		{"wide hysteresis (0.35)", func() core.Options {
			o := base
			o.Hysteresis = 0.35
			return o
		}, 0},
		{"alternate stage every interval", func() core.Options {
			o := base
			o.AlternatePeriod = 1
			return o
		}, 0},
		{"alternate stage every 15 intervals", func() core.Options {
			o := base
			o.AlternatePeriod = 15
			return o
		}, 0},
		{"no consolidation", func() core.Options {
			o := base
			o.NoConsolidate = true
			return o
		}, 0},
		{"jumpy monitoring (alpha 0.95)", func() core.Options { return base }, 0.95},
		{"sluggish monitoring (alpha 0.1)", func() core.Options { return base }, 0.1},
	}

	var out AblationResult
	for _, vnt := range variants {
		h, err := core.NewHeuristic(vnt.opts())
		if err != nil {
			return AblationResult{}, fmt.Errorf("ablation %q: %w", vnt.name, err)
		}
		prof, err := c.profile(BothVariability, 20)
		if err != nil {
			return AblationResult{}, err
		}
		cfg := sim.Config{
			Graph:        g,
			Menu:         cloud.MustMenu(cloud.AWS2013Classes()),
			Perf:         c.perf(BothVariability),
			Inputs:       map[int]rates.Profile{g.Inputs()[0]: prof},
			IntervalSec:  c.IntervalSec,
			HorizonSec:   c.HorizonSec,
			Seed:         c.Seed,
			MonitorAlpha: vnt.alpha,
		}
		engine, err := sim.NewEngine(cfg)
		if err != nil {
			return AblationResult{}, err
		}
		sum, err := engine.Run(h)
		if err != nil {
			return AblationResult{}, fmt.Errorf("ablation %q: %w", vnt.name, err)
		}
		out.Rows = append(out.Rows, AblationRow{
			Variant: vnt.name,
			Summary: sum,
			Theta:   obj.Theta(sum.MeanGamma, sum.TotalCostUSD),
			Meets:   obj.MeetsConstraint(sum.MeanOmega),
		})
	}
	return out, nil
}

// Table renders the ablation comparison.
func (r AblationResult) Table() string {
	var b strings.Builder
	b.WriteString("Ablations — global adaptive heuristic, 20 msg/s, both variabilities\n")
	b.WriteString(fmt.Sprintf("%-40s %-6s %-5s %-6s %-9s %s\n", "variant", "omega", "met", "gamma", "cost($)", "theta"))
	for _, row := range r.Rows {
		met := "yes"
		if !row.Meets {
			met = "NO"
		}
		fmt.Fprintf(&b, "%-40s %.3f  %-4s  %.3f  %8.2f  %+.4f\n",
			row.Variant, row.Summary.MeanOmega, met, row.Summary.MeanGamma,
			row.Summary.TotalCostUSD, row.Theta)
	}
	return b.String()
}
