package experiments

import (
	"fmt"
	"strings"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
)

// FaultToleranceResult extends the evaluation along the paper's §9 future
// work: VM crashes are injected (exponential lifetimes) and the policies'
// ability to keep the throughput constraint is compared. The dynamic
// policies may switch to cheaper alternates to restore throughput with
// surviving capacity while replacements spin up.
type FaultToleranceResult struct {
	MTBFHours float64
	Rows      []FaultRow
}

// FaultRow is one policy's outcome under failures.
type FaultRow struct {
	RunResult
	Crashes      int
	LostMessages float64
}

// RunFaultTolerance compares static and adaptive policies (with and
// without dynamism) under VM crashes at the given data rate.
func RunFaultTolerance(c Config, rate float64, mtbfHours float64) (FaultToleranceResult, error) {
	if mtbfHours <= 0 {
		return FaultToleranceResult{}, fmt.Errorf("experiments: mtbf %v <= 0", mtbfHours)
	}
	g := dataflow.EvalGraph()
	hours := float64(c.HorizonSec) / 3600
	obj, err := core.PaperSigma(g, rate, hours)
	if err != nil {
		return FaultToleranceResult{}, err
	}
	out := FaultToleranceResult{MTBFHours: mtbfHours}
	for _, p := range []PolicyKind{GlobalStatic, GlobalAdaptiveNoDyn, GlobalAdaptive} {
		sched, err := c.build(p, obj)
		if err != nil {
			return FaultToleranceResult{}, err
		}
		prof, err := rates.NewConstant(rate)
		if err != nil {
			return FaultToleranceResult{}, err
		}
		engine, err := sim.NewEngine(sim.Config{
			Graph:       g,
			Menu:        cloud.MustMenu(cloud.AWS2013Classes()),
			Perf:        c.perf(NoVariability),
			Inputs:      map[int]rates.Profile{g.Inputs()[0]: prof},
			IntervalSec: c.IntervalSec,
			HorizonSec:  c.HorizonSec,
			Seed:        c.Seed,
			Failures:    sim.ExponentialFailures{MTBFSec: int64(mtbfHours * 3600), Seed: c.Seed},
		})
		if err != nil {
			return FaultToleranceResult{}, err
		}
		sum, err := engine.Run(sched)
		if err != nil {
			return FaultToleranceResult{}, err
		}
		out.Rows = append(out.Rows, FaultRow{
			RunResult: RunResult{
				Policy:       sched.Name(),
				Rate:         rate,
				Scenario:     NoVariability,
				Summary:      sum,
				Theta:        obj.Theta(sum.MeanGamma, sum.TotalCostUSD),
				MeetsOmega:   obj.MeetsConstraint(sum.MeanOmega),
				ObjSigma:     obj.Sigma,
				HorizonHours: hours,
			},
			Crashes:      engine.Crashes(),
			LostMessages: engine.LostMessages(),
		})
	}
	return out, nil
}

// Table renders the fault-tolerance comparison.
func (r FaultToleranceResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault tolerance (§9 extension) — VM crashes with MTBF %.1f h\n", r.MTBFHours)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s crashes=%d lost=%.0f msgs\n", row.RunResult.String(), row.Crashes, row.LostMessages)
	}
	return b.String()
}
