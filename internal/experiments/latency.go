package experiments

import (
	"fmt"
	"strings"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/metrics"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
)

// LatencyRow is one latency-bound setting's outcome.
type LatencyRow struct {
	BoundSec    float64 // 0 = unconstrained
	MeanLatency float64
	P95Latency  float64
	MeanOmega   float64
	CostUSD     float64
}

// LatencyQoSResult sweeps the optional mean-latency bound (the extension of
// §6's QoS dimensions beyond throughput) under a spiky workload that builds
// backlogs a pure-throughput controller tolerates: tighter bounds force the
// resource stage to size capacity for backlog drain, trading dollars for
// tail latency.
type LatencyQoSResult struct {
	Rate float64
	Rows []LatencyRow
}

// RunLatencyQoS executes the sweep at the given rate.
func RunLatencyQoS(c Config, rate float64) (LatencyQoSResult, error) {
	g := dataflow.EvalGraph()
	hours := float64(c.HorizonSec) / 3600
	out := LatencyQoSResult{Rate: rate}
	for _, bound := range []float64{0, 120, 30, 10} {
		obj, err := core.PaperSigma(g, rate, hours)
		if err != nil {
			return LatencyQoSResult{}, err
		}
		obj.LatencyHatSec = bound
		h, err := core.NewHeuristic(core.Options{
			Strategy: core.Global, Dynamic: true, Adaptive: true, Objective: obj,
		})
		if err != nil {
			return LatencyQoSResult{}, err
		}
		base, err := rates.NewConstant(rate)
		if err != nil {
			return LatencyQoSResult{}, err
		}
		prof, err := rates.NewSpike(base, 3, 1800, 300)
		if err != nil {
			return LatencyQoSResult{}, err
		}
		engine, err := sim.NewEngine(sim.Config{
			Graph:       g,
			Menu:        cloud.MustMenu(cloud.AWS2013Classes()),
			Perf:        c.perf(NoVariability),
			Inputs:      map[int]rates.Profile{g.Inputs()[0]: prof},
			IntervalSec: c.IntervalSec,
			HorizonSec:  c.HorizonSec,
			Seed:        c.Seed,
		})
		if err != nil {
			return LatencyQoSResult{}, err
		}
		sum, err := engine.Run(h)
		if err != nil {
			return LatencyQoSResult{}, err
		}
		out.Rows = append(out.Rows, LatencyRow{
			BoundSec:    bound,
			MeanLatency: sum.MeanLatencySec,
			P95Latency:  engine.Collector().Quantile(0.95, func(p metrics.Point) float64 { return p.LatencySec }),
			MeanOmega:   sum.MeanOmega,
			CostUSD:     sum.TotalCostUSD,
		})
	}
	return out, nil
}

// Table renders the sweep.
func (r LatencyQoSResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Latency QoS (extension) — mean-latency bound sweep at %.0f msg/s, 3x spikes every 30 min\n", r.Rate)
	b.WriteString("bound(s)   mean-lat(s)   p95-lat(s)   omega   cost($)\n")
	for _, row := range r.Rows {
		bound := "none"
		if row.BoundSec > 0 {
			bound = fmt.Sprintf("%.0f", row.BoundSec)
		}
		fmt.Fprintf(&b, "%-8s   %11.1f   %10.1f   %.3f   %7.2f\n",
			bound, row.MeanLatency, row.P95Latency, row.MeanOmega, row.CostUSD)
	}
	return b.String()
}
