package experiments

import (
	"fmt"
	"strings"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
)

// SpotRow is one policy's outcome on a cloud with a spot market.
type SpotRow struct {
	RunResult
	Preemptions int
}

// SpotMarketResult compares the global heuristic with and without spot
// spilling on a cloud offering preemptible twins of every class at a
// fraction of the on-demand price. The constraint-critical base stays
// on-demand; only headroom rides the spot market, so preemptions cost
// re-provisioning churn, not the QoS constraint. (Extension beyond the
// paper's on-demand-only §4 model.)
type SpotMarketResult struct {
	PriceFraction float64
	MTBFHours     float64
	Rows          []SpotRow
}

// RunSpotMarket executes the comparison at the given rate.
func RunSpotMarket(c Config, rate, priceFraction, preemptMTBFHours float64) (SpotMarketResult, error) {
	if priceFraction <= 0 || priceFraction >= 1 {
		return SpotMarketResult{}, fmt.Errorf("experiments: spot price fraction %v outside (0,1)", priceFraction)
	}
	if preemptMTBFHours <= 0 {
		return SpotMarketResult{}, fmt.Errorf("experiments: preemption MTBF %v <= 0", preemptMTBFHours)
	}
	g := dataflow.EvalGraph()
	hours := float64(c.HorizonSec) / 3600
	obj, err := core.PaperSigma(g, rate, hours)
	if err != nil {
		return SpotMarketResult{}, err
	}
	menu := cloud.MustMenu(cloud.WithSpotMarket(cloud.AWS2013Classes(), priceFraction))
	out := SpotMarketResult{PriceFraction: priceFraction, MTBFHours: preemptMTBFHours}
	for _, useSpot := range []bool{false, true} {
		h, err := core.NewHeuristic(core.Options{
			Strategy: core.Global, Dynamic: true, Adaptive: true,
			Objective: obj, UseSpot: useSpot,
		})
		if err != nil {
			return SpotMarketResult{}, err
		}
		prof, err := c.profile(BothVariability, rate)
		if err != nil {
			return SpotMarketResult{}, err
		}
		engine, err := sim.NewEngine(sim.Config{
			Graph:       g,
			Menu:        menu,
			Perf:        c.perf(BothVariability),
			Inputs:      map[int]rates.Profile{g.Inputs()[0]: prof},
			IntervalSec: c.IntervalSec,
			HorizonSec:  c.HorizonSec,
			Seed:        c.Seed,
			Preemption:  sim.ExponentialFailures{MTBFSec: int64(preemptMTBFHours * 3600), Seed: c.Seed},
		})
		if err != nil {
			return SpotMarketResult{}, err
		}
		sum, err := engine.Run(h)
		if err != nil {
			return SpotMarketResult{}, err
		}
		name := "global (on-demand only)"
		if useSpot {
			name = "global + spot spill"
		}
		out.Rows = append(out.Rows, SpotRow{
			RunResult: RunResult{
				Policy:       name,
				Rate:         rate,
				Scenario:     BothVariability,
				Summary:      sum,
				Theta:        obj.Theta(sum.MeanGamma, sum.TotalCostUSD),
				MeetsOmega:   obj.MeetsConstraint(sum.MeanOmega),
				ObjSigma:     obj.Sigma,
				HorizonHours: hours,
			},
			Preemptions: engine.Preemptions(),
		})
	}
	return out, nil
}

// Table renders the comparison.
func (r SpotMarketResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Spot market (extension) — preemptible twins at %.0f%% price, preemption MTBF %.1f h\n",
		r.PriceFraction*100, r.MTBFHours)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s preemptions=%d\n", row.RunResult.String(), row.Preemptions)
	}
	return b.String()
}
