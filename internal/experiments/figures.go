package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/trace"
)

// Fig2Result characterizes per-VM CPU performance variability over four
// days (paper Fig. 2): the coefficient series statistics and its relative
// deviation from the mean.
type Fig2Result struct {
	VMs []trace.Stats
	// Deviation summarizes the pooled relative-deviation distribution.
	Deviation trace.Stats
}

// RunFig2 generates the four-day CPU traces for n VMs and characterizes
// them.
func RunFig2(seed int64, n int) (Fig2Result, error) {
	if n <= 0 {
		n = 8
	}
	cfg := trace.DefaultCPUConfig()
	rng := rand.New(rand.NewSource(seed))
	var out Fig2Result
	var pooled []float64
	for i := 0; i < n; i++ {
		s, err := cfg.Generate(rng, trace.FourDays)
		if err != nil {
			return Fig2Result{}, err
		}
		out.VMs = append(out.VMs, trace.Characterize(s))
		pooled = append(pooled, trace.RelativeDeviation(s).Samples...)
	}
	dev, err := trace.NewSeries(cfg.PeriodSec, pooled)
	if err != nil {
		return Fig2Result{}, err
	}
	out.Deviation = trace.Characterize(dev)
	return out, nil
}

// Table renders Fig. 2 as text rows.
func (r Fig2Result) Table() string {
	var b strings.Builder
	b.WriteString("Fig 2 — VM CPU performance variability (4-day synthetic traces)\n")
	b.WriteString("vm   mean    sd      CoV    min    p50    max    maxRelDev\n")
	for i, s := range r.VMs {
		fmt.Fprintf(&b, "%-4d %.4f  %.4f  %.3f  %.3f  %.3f  %.3f  %5.1f%%\n",
			i, s.Mean, s.Stddev, s.CoV, s.Min, s.P50, s.Max, s.MaxAbsRelDev*100)
	}
	extreme := r.Deviation.Max
	if -r.Deviation.Min > extreme {
		extreme = -r.Deviation.Min
	}
	fmt.Fprintf(&b, "pooled relative deviation: p5=%+.1f%% p50=%+.1f%% p95=%+.1f%% extreme=%.1f%%\n",
		r.Deviation.P5*100, r.Deviation.P50*100, r.Deviation.P95*100, extreme*100)
	return b.String()
}

// Fig3Result characterizes pairwise network latency and bandwidth
// variability (paper Fig. 3).
type Fig3Result struct {
	Latency   trace.Stats
	Bandwidth trace.Stats
}

// RunFig3 generates the four-day network traces for one VM pair.
func RunFig3(seed int64) (Fig3Result, error) {
	rng := rand.New(rand.NewSource(seed))
	lat, err := trace.DefaultLatencyConfig().Generate(rng, trace.FourDays)
	if err != nil {
		return Fig3Result{}, err
	}
	bw, err := trace.DefaultBandwidthConfig().Generate(rng, trace.FourDays)
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{Latency: trace.Characterize(lat), Bandwidth: trace.Characterize(bw)}, nil
}

// Table renders Fig. 3 as text rows.
func (r Fig3Result) Table() string {
	var b strings.Builder
	b.WriteString("Fig 3 — network variability between a VM pair (4-day synthetic traces)\n")
	fmt.Fprintf(&b, "latency:   mean=%.2fms sd=%.2fms p95=%.2fms max=%.2fms\n",
		r.Latency.Mean*1000, r.Latency.Stddev*1000, r.Latency.P95*1000, r.Latency.Max*1000)
	fmt.Fprintf(&b, "bandwidth: mean=%.1fMbps sd=%.1fMbps p5=%.1fMbps min=%.1fMbps\n",
		r.Bandwidth.Mean, r.Bandwidth.Stddev, r.Bandwidth.P5, r.Bandwidth.Min)
	return b.String()
}

// Fig4Result compares static deployments under the four variability
// scenarios at a fixed 5 msg/s (paper Fig. 4).
type Fig4Result struct {
	Rows []RunResult
}

// RunFig4 executes {bruteforce, local-static, global-static} x {none, data,
// infra, both} at 5 msg/s.
func RunFig4(c Config) (Fig4Result, error) {
	policies := []PolicyKind{BruteForceStatic, LocalStatic, GlobalStatic}
	scenarios := []Variability{NoVariability, DataVariability, InfraVariability, BothVariability}
	var out Fig4Result
	for _, v := range scenarios {
		for _, p := range policies {
			r, err := c.Run(p, 5, v)
			if err != nil {
				return Fig4Result{}, fmt.Errorf("fig4 %v/%v: %w", p, v, err)
			}
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// Table renders Fig. 4.
func (r Fig4Result) Table() string {
	var b strings.Builder
	b.WriteString("Fig 4 — relative throughput of static deployments under variability (5 msg/s, omega-hat 0.7)\n")
	for _, row := range r.Rows {
		b.WriteString(row.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig5Result shows static deployments across data rates without
// variability (paper Fig. 5).
type Fig5Result struct {
	Rows []RunResult
}

// RunFig5 sweeps the configured rates for the three static policies.
func RunFig5(c Config) (Fig5Result, error) {
	policies := []PolicyKind{BruteForceStatic, LocalStatic, GlobalStatic}
	var out Fig5Result
	for _, rate := range c.Rates {
		for _, p := range policies {
			r, err := c.Run(p, rate, NoVariability)
			if err != nil {
				return Fig5Result{}, fmt.Errorf("fig5 %v@%v: %w", p, rate, err)
			}
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// Table renders Fig. 5.
func (r Fig5Result) Table() string {
	var b strings.Builder
	b.WriteString("Fig 5 — relative throughput of static deployments vs data rate (no variability)\n")
	for _, row := range r.Rows {
		b.WriteString(row.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FigAdaptiveResult compares the adaptive local and global heuristics
// across data rates under one variability scenario (paper Figs. 6 and 7).
type FigAdaptiveResult struct {
	Scenario Variability
	Rows     []RunResult
}

// RunFig6 compares local vs global adaptation under infrastructure
// variability.
func RunFig6(c Config) (FigAdaptiveResult, error) {
	return runAdaptive(c, InfraVariability)
}

// RunFig7 compares local vs global adaptation under data-rate variability
// on a steady cloud ("a local cluster or an exclusive private cloud").
func RunFig7(c Config) (FigAdaptiveResult, error) {
	return runAdaptive(c, DataVariability)
}

func runAdaptive(c Config, v Variability) (FigAdaptiveResult, error) {
	out := FigAdaptiveResult{Scenario: v}
	for _, rate := range c.Rates {
		for _, p := range []PolicyKind{LocalAdaptive, GlobalAdaptive} {
			r, err := c.Run(p, rate, v)
			if err != nil {
				return FigAdaptiveResult{}, fmt.Errorf("adaptive %v@%v: %w", p, rate, err)
			}
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// Table renders Figs. 6/7.
func (r FigAdaptiveResult) Table() string {
	var b strings.Builder
	fig := "Fig 6"
	if r.Scenario == DataVariability {
		fig = "Fig 7"
	}
	fmt.Fprintf(&b, "%s — local vs global adaptive heuristics (%s variability): omega and theta vs rate\n", fig, r.Scenario)
	for _, row := range r.Rows {
		b.WriteString(row.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig8Result records dollars spent over the horizon per heuristic per rate
// (paper Fig. 8).
type Fig8Result struct {
	Rows []RunResult
}

// RunFig8 sweeps {global, global-nodyn, local, local-nodyn} across rates
// with both variabilities active, as the paper's 10-hour cost comparison.
func RunFig8(c Config) (Fig8Result, error) {
	policies := []PolicyKind{GlobalAdaptive, GlobalAdaptiveNoDyn, LocalAdaptive, LocalAdaptiveNoDyn}
	var out Fig8Result
	for _, rate := range c.Rates {
		for _, p := range policies {
			r, err := c.Run(p, rate, BothVariability)
			if err != nil {
				return Fig8Result{}, fmt.Errorf("fig8 %v@%v: %w", p, rate, err)
			}
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// Table renders Fig. 8.
func (r Fig8Result) Table() string {
	var b strings.Builder
	b.WriteString("Fig 8 — dollar cost over the optimization period vs data rate (both variabilities)\n")
	for _, row := range r.Rows {
		b.WriteString(row.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig9Result derives the cost benefit of application dynamism (paper
// Fig. 9): percentage savings of each strategy with dynamism against the
// same strategy without it.
type Fig9Result struct {
	Rates         []float64
	GlobalSavings []float64 // percent
	LocalSavings  []float64 // percent
	// GlobalVsLocalNoDyn is the paper's headline extreme comparison.
	GlobalVsLocalNoDyn []float64 // percent
}

// RunFig9 derives the savings from a Fig. 8 sweep.
func RunFig9(c Config) (Fig9Result, error) {
	f8, err := RunFig8(c)
	if err != nil {
		return Fig9Result{}, err
	}
	return DeriveFig9(f8)
}

// DeriveFig9 computes savings percentages from Fig. 8 rows.
func DeriveFig9(f8 Fig8Result) (Fig9Result, error) {
	cost := map[string]map[float64]float64{}
	var rs []float64
	seen := map[float64]bool{}
	for _, row := range f8.Rows {
		if cost[row.Policy] == nil {
			cost[row.Policy] = map[float64]float64{}
		}
		cost[row.Policy][row.Rate] = row.Summary.TotalCostUSD
		if !seen[row.Rate] {
			seen[row.Rate] = true
			rs = append(rs, row.Rate)
		}
	}
	out := Fig9Result{Rates: rs}
	for _, rate := range rs {
		g, gn := cost["global"][rate], cost["global-nodyn"][rate]
		l, ln := cost["local"][rate], cost["local-nodyn"][rate]
		if gn <= 0 || ln <= 0 {
			return Fig9Result{}, fmt.Errorf("experiments: fig9 missing costs at rate %v", rate)
		}
		out.GlobalSavings = append(out.GlobalSavings, 100*(gn-g)/gn)
		out.LocalSavings = append(out.LocalSavings, 100*(ln-l)/ln)
		out.GlobalVsLocalNoDyn = append(out.GlobalVsLocalNoDyn, 100*(ln-g)/ln)
	}
	return out, nil
}

// MeanGlobalSavings averages the global-strategy dynamism savings — the
// paper reports ~15%.
func (r Fig9Result) MeanGlobalSavings() float64 {
	if len(r.GlobalSavings) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.GlobalSavings {
		s += v
	}
	return s / float64(len(r.GlobalSavings))
}

// MaxGlobalVsLocalNoDyn is the paper's "savings of up to 70%" comparison.
func (r Fig9Result) MaxGlobalVsLocalNoDyn() float64 {
	best := 0.0
	for _, v := range r.GlobalVsLocalNoDyn {
		if v > best {
			best = v
		}
	}
	return best
}

// Table renders Fig. 9.
func (r Fig9Result) Table() string {
	var b strings.Builder
	b.WriteString("Fig 9 — dollar-cost benefit of application dynamism with continuous re-deployment\n")
	b.WriteString("rate   global-vs-nodyn   local-vs-nodyn   global-vs-local-nodyn\n")
	for i, rate := range r.Rates {
		fmt.Fprintf(&b, "%4.0f   %+14.1f%%   %+13.1f%%   %+20.1f%%\n",
			rate, r.GlobalSavings[i], r.LocalSavings[i], r.GlobalVsLocalNoDyn[i])
	}
	fmt.Fprintf(&b, "mean global dynamism savings: %.1f%% (paper: ~15%%); max vs local-nodyn: %.1f%% (paper: up to ~70%%)\n",
		r.MeanGlobalSavings(), r.MaxGlobalVsLocalNoDyn())
	return b.String()
}

// VMClassTable renders the VM menu the evaluation uses (§8.1's instance
// types).
func VMClassTable() string {
	var b strings.Builder
	b.WriteString("VM classes (2013 AWS on-demand menu)\n")
	b.WriteString("class       cores  ECU/core  net(Mbps)  $/hour\n")
	for _, c := range cloud.AWS2013Classes() {
		fmt.Fprintf(&b, "%-11s %5d  %8.1f  %9.0f  %6.2f\n",
			c.Name, c.Cores, c.CoreSpeed, c.NetMbps, c.PricePerHour)
	}
	return b.String()
}
