package experiments

import (
	"strings"
	"testing"
)

func TestSpotMarketShapes(t *testing.T) {
	c := Quick()
	c.HorizonSec = 6 * 3600
	r, err := RunSpotMarket(c, 20, 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	onDemand, spot := r.Rows[0], r.Rows[1]
	if onDemand.Preemptions != 0 {
		t.Fatalf("on-demand run saw %d preemptions", onDemand.Preemptions)
	}
	if spot.Preemptions == 0 {
		t.Fatal("spot run saw no preemptions — market unused?")
	}
	// Both hold the constraint; spot must be cheaper.
	if !onDemand.MeetsOmega || !spot.MeetsOmega {
		t.Fatalf("constraint missed: ondemand %.3f spot %.3f",
			onDemand.Summary.MeanOmega, spot.Summary.MeanOmega)
	}
	if spot.Summary.TotalCostUSD >= onDemand.Summary.TotalCostUSD {
		t.Fatalf("spot $%.2f not cheaper than on-demand $%.2f",
			spot.Summary.TotalCostUSD, onDemand.Summary.TotalCostUSD)
	}
	if !strings.Contains(r.Table(), "Spot market") {
		t.Fatal("table header missing")
	}
}

func TestSpotMarketValidation(t *testing.T) {
	if _, err := RunSpotMarket(Quick(), 20, 0, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := RunSpotMarket(Quick(), 20, 1.5, 1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := RunSpotMarket(Quick(), 20, 0.3, 0); err == nil {
		t.Fatal("zero MTBF accepted")
	}
}
