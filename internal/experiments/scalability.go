package experiments

import (
	"fmt"
	"strings"
	"time"

	"dynamicdf/internal/cloud"
	"dynamicdf/internal/core"
	"dynamicdf/internal/dataflow"
	"dynamicdf/internal/rates"
	"dynamicdf/internal/sim"
)

// ScalabilityRow measures heuristic decision latency on one instance size.
type ScalabilityRow struct {
	PEs        int
	Alternates int
	Rate       float64
	PeakVMs    int
	MeanOmega  float64
	// MeanAdapt and MaxAdapt are the wall-clock costs of one runtime
	// adaptation decision (Alg. 2), the quantity §7 argues must stay
	// "near real time" for continuous adaptation to beat slow optimal
	// solvers.
	MeanAdapt time.Duration
	MaxAdapt  time.Duration
}

// ScalabilityResult backs the paper's scalability claim (§8.1: the
// dataflow "is scaled up to 10's of alternates and 100's of VMs") with
// decision-latency measurements across instance sizes.
type ScalabilityResult struct {
	Rows []ScalabilityRow
}

// timedScheduler wraps a scheduler and records Adapt durations.
type timedScheduler struct {
	inner sim.Scheduler
	n     int
	total time.Duration
	max   time.Duration
}

func (t *timedScheduler) Name() string { return t.inner.Name() }
func (t *timedScheduler) Deploy(v *sim.View, act sim.Control) error {
	return t.inner.Deploy(v, act)
}
func (t *timedScheduler) Adapt(v *sim.View, act sim.Control) error {
	start := time.Now()
	err := t.inner.Adapt(v, act)
	d := time.Since(start)
	t.n++
	t.total += d
	if d > t.max {
		t.max = d
	}
	return err
}

// RunScalability sweeps instance sizes: (width, depth, rate) tuples chosen
// so the largest instance drives the fleet into the hundreds of VMs.
func RunScalability(c Config) (ScalabilityResult, error) {
	shapes := []struct {
		width, depth, alts int
		rate               float64
	}{
		{2, 1, 5, 10},
		{2, 2, 5, 25},
		{4, 2, 5, 50},
		{4, 4, 8, 100},
		{8, 4, 10, 150},
	}
	// Decision latency stabilizes within the first hour; a fixed horizon
	// keeps the big-fleet instances affordable (the engine's pairwise
	// network monitoring is O(VMs^2) per interval).
	c.HorizonSec = 3600
	var out ScalabilityResult
	for _, s := range shapes {
		g := dataflow.LayeredGraph(s.width, s.depth, s.alts)
		hours := float64(c.HorizonSec) / 3600
		obj, err := core.PaperSigma(g, s.rate, hours)
		if err != nil {
			return ScalabilityResult{}, err
		}
		h, err := core.NewHeuristic(core.Options{
			Strategy: core.Global, Dynamic: true, Adaptive: true, Objective: obj,
			MaxGrowPerInterval: 512,
		})
		if err != nil {
			return ScalabilityResult{}, err
		}
		timed := &timedScheduler{inner: h}
		prof, err := rates.NewConstant(s.rate)
		if err != nil {
			return ScalabilityResult{}, err
		}
		engine, err := sim.NewEngine(sim.Config{
			Graph:       g,
			Menu:        cloud.MustMenu(cloud.AWS2013Classes()),
			Perf:        c.perf(InfraVariability),
			Inputs:      map[int]rates.Profile{g.Inputs()[0]: prof},
			IntervalSec: c.IntervalSec,
			HorizonSec:  c.HorizonSec,
			Seed:        c.Seed,
			MaxVMs:      2048,
		})
		if err != nil {
			return ScalabilityResult{}, err
		}
		sum, err := engine.Run(timed)
		if err != nil {
			return ScalabilityResult{}, err
		}
		row := ScalabilityRow{
			PEs:        g.N(),
			Alternates: s.alts,
			Rate:       s.rate,
			PeakVMs:    sum.PeakVMs,
			MeanOmega:  sum.MeanOmega,
			MaxAdapt:   timed.max,
		}
		if timed.n > 0 {
			row.MeanAdapt = timed.total / time.Duration(timed.n)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders the scalability sweep.
func (r ScalabilityResult) Table() string {
	var b strings.Builder
	b.WriteString("Scalability — heuristic decision latency vs instance size (global adaptive, infra variability)\n")
	b.WriteString("PEs  alts/PE  rate   peakVMs  omega   adapt(mean)   adapt(max)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%3d  %7d  %4.0f   %7d  %.3f   %11v   %10v\n",
			row.PEs, row.Alternates, row.Rate, row.PeakVMs, row.MeanOmega,
			row.MeanAdapt.Round(time.Microsecond), row.MaxAdapt.Round(time.Microsecond))
	}
	return b.String()
}
