// Package sweep is the campaign engine between the simulator and its
// consumers: it expands a sweep spec — a base scenario template crossed
// with parameter axes and replica seeds — into content-addressed jobs,
// executes them on a bounded worker pool with per-job isolation and
// cooperative cancellation, caches completed results in a crash-safe JSONL
// journal keyed by a canonical scenario hash (so a resumed campaign re-runs
// only the missing jobs), and aggregates replicas into mean/P50/P95 rows
// for Theta, Omega, utilization, and cost. cmd/dfserve exposes it over
// HTTP; dfbench -sweep drives it from the command line.
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"dynamicdf/internal/scenario"
)

// SchemaVersion names the simulator semantics a cached result depends on.
// It is folded into every job key, so bumping it — whenever an engine,
// policy, or scenario-schema change alters what a run would produce —
// invalidates all previously journaled results at once.
const SchemaVersion = "sweep/v1"

// MaxJobs caps a single spec's expansion as a guard against accidental
// combinatorial explosions.
const MaxJobs = 100000

// Spec describes one campaign: a base scenario document, parameter axes
// whose values are RFC 7386 merge patches over that document, and the
// replica seeds. Expansion is the full cartesian product axes x seeds.
type Spec struct {
	// Name labels the campaign in reports and service listings.
	Name string `json:"name"`
	// Base is the scenario template (see internal/scenario for the schema).
	Base json.RawMessage `json:"base"`
	// Axes are crossed in order; each value patches the base document.
	Axes []Axis `json:"axes"`
	// Seeds are the replica seeds; each grid point runs once per seed and
	// the replicas aggregate into one row. Empty defaults to the base
	// scenario's seed.
	Seeds []int64 `json:"seeds"`
	// WarmStart, when set, lets jobs that differ only along warm axes share
	// a checkpointed prefix run instead of each simulating from zero.
	WarmStart *WarmStartSpec `json:"warmStart,omitempty"`
}

// WarmStartSpec configures prefix sharing. Jobs whose resolved scenarios
// agree on everything except warm-axis patches share one prefix run: the
// prefix scenario (base + non-warm patches + seed) is simulated for
// PrefixSec, checkpointed, and each job of the group forks from the
// snapshot. Correctness requires warm axes to be prefix-neutral — their
// patches must not change behaviour before PrefixSec (e.g. acquisition
// faults gated on a fault-free lead-in at least PrefixSec long). The
// engine verifies nothing about neutrality; declaring an axis warm is the
// spec author's assertion.
type WarmStartSpec struct {
	// PrefixSec is the shared prefix length in simulated seconds; it must
	// be a positive multiple of the scenario interval and less than the
	// horizon.
	PrefixSec int64 `json:"prefixSec"`
}

// Axis is one swept dimension.
type Axis struct {
	// Name labels the axis (unique within the spec).
	Name string `json:"name"`
	// Values are the points along the axis.
	Values []AxisValue `json:"values"`
	// Warm marks the axis's patches as prefix-neutral for warm-starting
	// (see WarmStartSpec); requires the spec to set warmStart.
	Warm bool `json:"warm,omitempty"`
}

// AxisValue is one point of an axis: a label for reports plus the merge
// patch that realizes it.
type AxisValue struct {
	// Label identifies the value in job IDs and aggregated rows (unique
	// within its axis).
	Label string `json:"label"`
	// Patch is an RFC 7386 merge patch applied to the scenario document.
	Patch json.RawMessage `json:"patch"`
}

// Job is one fully resolved simulation of the campaign.
type Job struct {
	// ID is the human-readable coordinate, e.g. "policy=global/rate=20/seed=7".
	ID string
	// Group is the ID without the seed coordinate; replicas share a group.
	Group string
	// Seed is the replica seed.
	Seed int64
	// Scenario is the resolved, validated scenario.
	Scenario *scenario.Scenario
	// Canonical is the scenario's canonical JSON (the hashed identity).
	Canonical []byte
	// Key is the content-addressed cache key (hex SHA-256 over
	// SchemaVersion + canonical scenario bytes, which embed seed and
	// policy).
	Key string
	// Prefix is the resolved warm-start prefix scenario — the job with
	// every warm-axis patch dropped — and PrefixKey its content key. Jobs
	// sharing a PrefixKey can fork one checkpointed prefix run. Nil/empty
	// unless the spec sets warmStart.
	Prefix    *scenario.Scenario
	PrefixKey string
}

// ParseSpec decodes and validates a sweep spec document.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural invariants without expanding the grid.
func (s *Spec) Validate() error {
	if len(s.Base) == 0 {
		return fmt.Errorf("sweep: spec %q has no base scenario", s.Name)
	}
	if _, err := scenario.ParseBytes(s.Base); err != nil {
		return fmt.Errorf("sweep: spec %q base: %w", s.Name, err)
	}
	axisSeen := map[string]bool{}
	jobs := 1
	warmAxes := false
	for _, ax := range s.Axes {
		if ax.Warm {
			warmAxes = true
		}
		if ax.Name == "" {
			return fmt.Errorf("sweep: spec %q has an unnamed axis", s.Name)
		}
		if strings.ContainsAny(ax.Name, "=/") {
			return fmt.Errorf("sweep: axis name %q contains '=' or '/'", ax.Name)
		}
		if axisSeen[ax.Name] {
			return fmt.Errorf("sweep: duplicate axis %q", ax.Name)
		}
		axisSeen[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("sweep: axis %q has no values", ax.Name)
		}
		valSeen := map[string]bool{}
		for _, v := range ax.Values {
			if v.Label == "" {
				return fmt.Errorf("sweep: axis %q has an unlabeled value", ax.Name)
			}
			if strings.ContainsAny(v.Label, "=/") {
				return fmt.Errorf("sweep: axis %q label %q contains '=' or '/'", ax.Name, v.Label)
			}
			if valSeen[v.Label] {
				return fmt.Errorf("sweep: axis %q has duplicate label %q", ax.Name, v.Label)
			}
			valSeen[v.Label] = true
		}
		jobs *= len(ax.Values)
	}
	seedSeen := map[int64]bool{}
	for _, seed := range s.Seeds {
		if seedSeen[seed] {
			return fmt.Errorf("sweep: duplicate seed %d", seed)
		}
		seedSeen[seed] = true
	}
	if n := len(s.Seeds); n > 0 {
		jobs *= n
	}
	if jobs > MaxJobs {
		return fmt.Errorf("sweep: spec %q expands to %d jobs (max %d)", s.Name, jobs, MaxJobs)
	}
	if warmAxes && s.WarmStart == nil {
		return fmt.Errorf("sweep: spec %q marks axes warm without a warmStart block", s.Name)
	}
	if ws := s.WarmStart; ws != nil {
		base, _ := scenario.ParseBytes(s.Base) // validated above
		interval := base.IntervalSec
		if interval == 0 {
			interval = 60
		}
		hours := base.HorizonHours
		if hours == 0 {
			hours = 4
		}
		horizon := int64(hours * 3600)
		if ws.PrefixSec <= 0 || ws.PrefixSec%interval != 0 {
			return fmt.Errorf("sweep: warm-start prefix %ds must be a positive multiple of interval %ds",
				ws.PrefixSec, interval)
		}
		if ws.PrefixSec >= horizon {
			return fmt.Errorf("sweep: warm-start prefix %ds must be shorter than horizon %ds",
				ws.PrefixSec, horizon)
		}
	}
	return nil
}

// ID derives the campaign's content-addressed identity: the first 12 hex
// digits of the SHA-256 of the spec's canonical JSON. Submitting the same
// spec twice names the same campaign (and therefore the same journal).
func (s *Spec) ID() (string, error) {
	base, err := scenario.ParseBytes(s.Base)
	if err != nil {
		return "", err
	}
	canonical, err := base.CanonicalJSON()
	if err != nil {
		return "", err
	}
	norm := *s
	norm.Base = canonical
	b, err := json.Marshal(&norm)
	if err != nil {
		return "", fmt.Errorf("sweep: spec id: %w", err)
	}
	sum := sha256.Sum256(append([]byte(SchemaVersion+"\n"), b...))
	return hex.EncodeToString(sum[:])[:12], nil
}

// Expand resolves the full grid into jobs, in deterministic order: axes
// vary slowest-first in declaration order, seeds fastest.
func (s *Spec) Expand() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		base, err := scenario.ParseBytes(s.Base)
		if err != nil {
			return nil, err
		}
		seeds = []int64{base.Seed}
	}

	var jobs []Job
	idx := make([]int, len(s.Axes))
	for {
		doc := append([]byte(nil), s.Base...)
		prefixDoc := append([]byte(nil), s.Base...)
		var labels []string
		for a, ax := range s.Axes {
			v := ax.Values[idx[a]]
			var err error
			doc, err = MergePatch(doc, v.Patch)
			if err != nil {
				return nil, fmt.Errorf("sweep: axis %q value %q: %w", ax.Name, v.Label, err)
			}
			if s.WarmStart != nil && !ax.Warm {
				// The prefix identity is the job with warm-axis patches
				// dropped: jobs differing only along warm axes converge on
				// one prefix document.
				prefixDoc, err = MergePatch(prefixDoc, v.Patch)
				if err != nil {
					return nil, fmt.Errorf("sweep: axis %q value %q: %w", ax.Name, v.Label, err)
				}
			}
			labels = append(labels, ax.Name+"="+v.Label)
		}
		group := strings.Join(labels, "/")
		for _, seed := range seeds {
			seedPatch := []byte(fmt.Sprintf(`{"seed": %d}`, seed))
			seeded, err := MergePatch(doc, seedPatch)
			if err != nil {
				return nil, err
			}
			sc, err := scenario.ParseBytes(seeded)
			if err != nil {
				id := group
				if id != "" {
					id += "/"
				}
				return nil, fmt.Errorf("sweep: job %sseed=%d: %w", id, seed, err)
			}
			canonical, err := sc.CanonicalJSON()
			if err != nil {
				return nil, err
			}
			id := fmt.Sprintf("seed=%d", seed)
			if group != "" {
				id = group + "/" + id
			}
			job := Job{
				ID:        id,
				Group:     group,
				Seed:      seed,
				Scenario:  sc,
				Canonical: canonical,
				Key:       JobKey(canonical),
			}
			if s.WarmStart != nil {
				seededPrefix, err := MergePatch(prefixDoc, seedPatch)
				if err != nil {
					return nil, err
				}
				psc, err := scenario.ParseBytes(seededPrefix)
				if err != nil {
					return nil, fmt.Errorf("sweep: job %s prefix: %w", id, err)
				}
				pCanonical, err := psc.CanonicalJSON()
				if err != nil {
					return nil, err
				}
				job.Prefix = psc
				job.PrefixKey = JobKey(pCanonical)
			}
			jobs = append(jobs, job)
		}
		// Advance the mixed-radix axis counter, fastest at the end.
		a := len(idx) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(s.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			break
		}
	}
	keySeen := map[string]string{}
	for _, j := range jobs {
		if prev, dup := keySeen[j.Key]; dup {
			return nil, fmt.Errorf("sweep: jobs %q and %q resolve to the same scenario (key %s)", prev, j.ID, j.Key)
		}
		keySeen[j.Key] = j.ID
	}
	return jobs, nil
}

// JobKey computes the content-addressed cache key for a canonical scenario
// document: hex SHA-256 over the sweep schema version and the scenario
// bytes. The scenario document embeds everything result-relevant — graph,
// profile, infrastructure, policy, control faults, horizon, and seed — so
// editing any of them (or bumping SchemaVersion) yields a different key,
// while cosmetic spec changes (axis labels, JSON whitespace, key order)
// do not.
func JobKey(canonical []byte) string {
	h := sha256.New()
	h.Write([]byte(SchemaVersion))
	h.Write([]byte{'\n'})
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil))
}

// MergePatch applies an RFC 7386 JSON merge patch to a document: objects
// merge recursively, nulls delete members, and every other patch value
// replaces the target wholesale. Numbers pass through as json.Number, so
// 64-bit seeds survive unmangled.
func MergePatch(target, patch []byte) ([]byte, error) {
	if len(bytes.TrimSpace(patch)) == 0 {
		return target, nil
	}
	var pv interface{}
	if err := decodeNumbers(patch, &pv); err != nil {
		return nil, fmt.Errorf("merge patch: %w", err)
	}
	pObj, ok := pv.(map[string]interface{})
	if !ok {
		// A non-object patch replaces the whole document.
		return json.Marshal(pv)
	}
	var tv interface{}
	if len(bytes.TrimSpace(target)) > 0 {
		if err := decodeNumbers(target, &tv); err != nil {
			return nil, fmt.Errorf("merge target: %w", err)
		}
	}
	tObj, ok := tv.(map[string]interface{})
	if !ok {
		tObj = map[string]interface{}{}
	}
	return json.Marshal(mergeObjects(tObj, pObj))
}

// mergeObjects merges patch into target per RFC 7386, mutating target.
func mergeObjects(target, patch map[string]interface{}) map[string]interface{} {
	for k, pv := range patch {
		if pv == nil {
			delete(target, k)
			continue
		}
		if pObj, ok := pv.(map[string]interface{}); ok {
			if tObj, ok := target[k].(map[string]interface{}); ok {
				target[k] = mergeObjects(tObj, pObj)
				continue
			}
			target[k] = mergeObjects(map[string]interface{}{}, pObj)
			continue
		}
		target[k] = pv
	}
	return target
}

// decodeNumbers unmarshals with json.Number so integer fields keep full
// precision through the patch round trip.
func decodeNumbers(data []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// GroupsInOrder returns the distinct job groups in first-occurrence order.
func GroupsInOrder(jobs []Job) []string {
	seen := map[string]bool{}
	var out []string
	for _, j := range jobs {
		if !seen[j.Group] {
			seen[j.Group] = true
			out = append(out, j.Group)
		}
	}
	return out
}
