package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// twoJobSpec is the smoke sweep: 1 grid point x 2 seeds.
func twoJobSpec() string {
	return fmt.Sprintf(`{
	  "name": "smoke",
	  "base": %s,
	  "axes": [{"name": "policy", "values": [{"label": "global", "patch": {"policy": {"kind": "global"}}}]}],
	  "seeds": [1, 2]
	}`, testBase)
}

func waitDone(t *testing.T, ts *httptest.Server, id string) status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State != "running" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("sweep did not finish in time")
	return status{}
}

func TestServerSubmitPollResults(t *testing.T) {
	srv := NewServer(ServerConfig{Workers: 2, JournalDir: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(twoJobSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var sub struct {
		ID      string `json:"id"`
		Created bool   `json:"created"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" || !sub.Created {
		t.Fatalf("submit = %+v", sub)
	}

	st := waitDone(t, ts, sub.ID)
	if st.State != "done" || st.Progress.Done != 2 || st.Progress.Errors != 0 {
		t.Fatalf("status = %+v", st)
	}

	// Aggregated CSV.
	resp, err = http.Get(ts.URL + "/sweeps/" + sub.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	resp.Body.Close()
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "group,seeds") {
		t.Fatalf("csv = %q", lines)
	}
	if !strings.HasPrefix(lines[1], "policy=global,2,") {
		t.Fatalf("row = %q", lines[1])
	}

	// JSON form carries the full report.
	resp, err = http.Get(ts.URL + "/sweeps/" + sub.ID + "/results?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Total != 2 || len(rep.Results) != 2 || len(rep.Rows) != 1 {
		t.Fatalf("report = %+v", rep)
	}

	// Idempotent resubmission attaches to the done campaign.
	resp, err = http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(twoJobSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status = %d", resp.StatusCode)
	}
	var again struct {
		ID      string `json:"id"`
		Created bool   `json:"created"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if again.ID != sub.ID || again.Created {
		t.Fatalf("resubmit = %+v", again)
	}
}

func TestServerJournalResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	run := func() (string, Report) {
		srv := NewServer(ServerConfig{Workers: 2, JournalDir: dir})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(twoJobSpec()))
		if err != nil {
			t.Fatal(err)
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		waitDone(t, ts, sub.ID)
		resp, err = http.Get(ts.URL + "/sweeps/" + sub.ID + "/results?format=json")
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		return sub.ID, rep
	}

	id1, rep1 := run()
	id2, rep2 := run() // fresh server, same journal dir

	if id1 != id2 {
		t.Fatalf("content-addressed ids differ: %s vs %s", id1, id2)
	}
	if rep1.CacheHits != 0 || rep1.Executed != 2 {
		t.Fatalf("first run: %+v", rep1)
	}
	if rep2.CacheHits != 2 || rep2.Executed != 0 {
		t.Fatalf("restarted run did not resume from journal: hits=%d executed=%d",
			rep2.CacheHits, rep2.Executed)
	}
}

func TestServerWatchStreams(t *testing.T) {
	srv := NewServer(ServerConfig{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(twoJobSpec()))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	watch, err := http.Get(ts.URL + "/sweeps/" + sub.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Body.Close()
	sc := bufio.NewScanner(watch.Body)
	var last status
	n := 0
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("watch line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("watch produced no lines")
	}
	if last.State != "done" || last.Progress.Done != 2 {
		t.Fatalf("final watch line = %+v", last)
	}
}

func TestServerErrors(t *testing.T) {
	srv := NewServer(ServerConfig{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// Malformed spec.
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(`{"nope`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit = %d", resp.StatusCode)
	}
	// Unknown sweep.
	resp, err = http.Get(ts.URL + "/sweeps/deadbeef0000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep = %d", resp.StatusCode)
	}
	// Results for a running sweep conflict. Use a bigger spec so it is
	// still running when we poll.
	big := fmt.Sprintf(`{"name": "big", "base": %s, "seeds": [1,2,3,4,5,6,7,8]}`, testBase)
	resp, err = http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/sweeps/" + sub.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Fatalf("running results = %d", resp.StatusCode)
	}
	waitDone(t, ts, sub.ID)
}

func TestServerShutdownDrains(t *testing.T) {
	srv := NewServer(ServerConfig{Workers: 1, JournalDir: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := fmt.Sprintf(`{"name": "drainme", "base": %s, "seeds": [1,2,3,4,5,6,7,8,9,10]}`, testBase)
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Post-shutdown submissions are refused.
	resp, err = http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(twoJobSpec()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit = %d", resp.StatusCode)
	}
}
