package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dynamicdf/internal/obs"
)

// ServerConfig tunes the sweep results service.
type ServerConfig struct {
	// Workers bounds concurrent jobs per campaign (default GOMAXPROCS).
	Workers int
	// JournalDir, when set, persists one journal per campaign
	// (sweep-<id>.jsonl) so campaigns resume across service restarts.
	// Empty keeps campaigns in memory only.
	JournalDir string
	// MaxBodyBytes caps submitted spec documents (default 4 MiB).
	MaxBodyBytes int64
	// Metrics, when set, instruments every campaign's worker pool and the
	// per-job sim runs; serve it via obs.Registry.Handler at /metrics.
	Metrics *obs.Registry
	// Runner, when set, executes campaigns instead of the in-process pool
	// (e.g. the distributed fabric coordinator). The journal, progress
	// sink, and drain channel are still owned by the server and passed via
	// RunOpts.
	Runner CampaignRunner
}

// Server runs sweep campaigns behind an HTTP API:
//
//	POST   /sweeps              submit a spec; returns the campaign id
//	GET    /sweeps              list campaigns
//	GET    /sweeps/{id}         poll status and progress
//	GET    /sweeps/{id}/watch   stream progress lines until completion
//	GET    /sweeps/{id}/results fetch aggregated results (CSV or JSON)
//	DELETE /sweeps/{id}         cancel a running campaign
//	GET    /healthz             liveness
//
// Campaign ids are content-addressed (Spec.ID), so resubmitting a spec is
// idempotent: it attaches to the running campaign or, with a journal
// directory configured, resumes from cached results.
type Server struct {
	cfg ServerConfig

	// pool and gauges are shared by every campaign (registered once).
	pool   *obs.PoolMetrics
	gauges *obs.RunGauges

	mu       sync.Mutex
	sweeps   map[string]*sweepRun
	order    []string
	draining bool
	wg       sync.WaitGroup
}

// sweepRun is one campaign's lifecycle.
type sweepRun struct {
	id     string
	spec   *Spec
	cancel context.CancelFunc
	drain  chan struct{}

	mu       sync.Mutex
	state    string // "running" | "done" | "failed" | "canceled"
	progress Progress
	report   *Report
	errMsg   string
	started  time.Time
	notify   chan struct{} // closed+replaced on every update
	done     chan struct{} // closed once terminal
}

// NewServer returns an idle service.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	s := &Server{cfg: cfg, sweeps: map[string]*sweepRun{}}
	if cfg.Metrics != nil {
		s.pool = obs.NewPoolMetrics(cfg.Metrics)
		s.gauges = obs.NewRunGauges(cfg.Metrics)
	}
	return s
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /sweeps", s.handleSubmit)
	mux.HandleFunc("GET /sweeps", s.handleList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /sweeps/{id}/watch", s.handleWatch)
	mux.HandleFunc("GET /sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /sweeps/{id}", s.handleCancel)
	return mux
}

// Shutdown stops the service gracefully: new submissions are refused,
// every campaign is drained (in-flight jobs finish and are journaled,
// queued jobs are abandoned), and once ctx expires any still-running jobs
// are cancelled mid-horizon. Returns after all campaign goroutines exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	runs := make([]*sweepRun, 0, len(s.sweeps))
	for _, run := range s.sweeps {
		runs = append(runs, run)
	}
	s.mu.Unlock()

	for _, run := range runs {
		run.requestDrain()
	}
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
	}
	for _, run := range runs {
		run.cancel()
	}
	<-finished
	return ctx.Err()
}

// Submit registers (or attaches to) the campaign for a spec and starts it
// if new. It returns the campaign id and whether a new run was started.
func (s *Server) Submit(spec *Spec) (string, bool, error) {
	id, err := spec.ID()
	if err != nil {
		return "", false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", false, fmt.Errorf("sweep: service is shutting down")
	}
	if _, ok := s.sweeps[id]; ok {
		return id, false, nil
	}
	jobs, err := spec.Expand()
	if err != nil {
		return "", false, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	run := &sweepRun{
		id:      id,
		spec:    spec,
		cancel:  cancel,
		drain:   make(chan struct{}),
		state:   "running",
		started: time.Now(),
		notify:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	run.progress.Total = len(jobs)
	s.sweeps[id] = run
	s.order = append(s.order, id)
	s.wg.Add(1)
	go s.execute(ctx, run)
	return id, true, nil
}

// execute drives one campaign to completion.
func (s *Server) execute(ctx context.Context, run *sweepRun) {
	defer s.wg.Done()
	defer run.cancel()

	var journal *Journal
	if s.cfg.JournalDir != "" {
		j, err := OpenJournal(filepath.Join(s.cfg.JournalDir, "sweep-"+run.id+".jsonl"))
		if err != nil {
			run.finish(nil, "failed", err.Error())
			return
		}
		journal = j
		defer journal.Close()
	}
	runner := s.cfg.Runner
	if runner == nil {
		runner = &Engine{Workers: s.cfg.Workers, Pool: s.pool, Gauges: s.gauges}
	}
	report, err := runner.RunCampaign(ctx, run.spec, RunOpts{
		Journal:    journal,
		OnProgress: run.update,
		Drain:      run.drain,
	})
	switch {
	case err == nil:
		run.finish(report, "done", "")
	case ctx.Err() != nil:
		run.finish(report, "canceled", err.Error())
	case report != nil && report.Missing > 0:
		// Drained shutdown: journaled progress survives for the next run.
		run.finish(report, "canceled", err.Error())
	default:
		run.finish(report, "failed", err.Error())
	}
}

// update publishes engine progress to watchers.
func (r *sweepRun) update(p Progress) {
	r.mu.Lock()
	r.progress = p
	close(r.notify)
	r.notify = make(chan struct{})
	r.mu.Unlock()
}

// finish records the terminal state.
func (r *sweepRun) finish(report *Report, state, errMsg string) {
	r.mu.Lock()
	r.report = report
	r.state = state
	r.errMsg = errMsg
	if report != nil {
		r.progress = Progress{
			Total:       report.Total,
			Done:        report.CacheHits + report.Executed + report.Quarantined,
			CacheHits:   report.CacheHits,
			Executed:    report.Executed,
			Errors:      report.Errors,
			ForkHits:    report.ForkHits,
			Requeues:    report.Requeues,
			Quarantined: report.Quarantined,
		}
	}
	close(r.notify)
	r.notify = make(chan struct{})
	close(r.done)
	r.mu.Unlock()
}

// requestDrain asks the campaign to stop dispatching new jobs.
func (r *sweepRun) requestDrain() {
	r.mu.Lock()
	select {
	case <-r.drain:
	default:
		close(r.drain)
	}
	r.mu.Unlock()
}

// status is the wire form of a campaign's state.
type status struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	State    string   `json:"state"`
	Error    string   `json:"error,omitempty"`
	Progress Progress `json:"progress"`
	HitRate  float64  `json:"hitRate"`
}

func (r *sweepRun) snapshot() status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := status{ID: r.id, Name: r.spec.Name, State: r.state, Error: r.errMsg, Progress: r.progress}
	if r.progress.Total > 0 {
		st.HitRate = float64(r.progress.CacheHits) / float64(r.progress.Total)
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "spec too large")
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, created, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if s.isDraining() {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err.Error())
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, map[string]interface{}{
		"id":      id,
		"created": created,
		"status":  "/sweeps/" + id,
		"results": "/sweeps/" + id + "/results",
	})
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) lookup(id string) *sweepRun {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]status, 0, len(ids))
	for _, id := range ids {
		if run := s.lookup(id); run != nil {
			out = append(out, run.snapshot())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "unknown sweep")
		return
	}
	writeJSON(w, http.StatusOK, run.snapshot())
}

// handleWatch streams one JSON progress line per update until the campaign
// finishes or the client goes away.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "unknown sweep")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		run.mu.Lock()
		notify := run.notify
		run.mu.Unlock()
		st := run.snapshot()
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State != "running" {
			return
		}
		select {
		case <-notify:
		case <-run.done:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "unknown sweep")
		return
	}
	run.mu.Lock()
	state, report, errMsg := run.state, run.report, run.errMsg
	run.mu.Unlock()
	switch state {
	case "running":
		httpError(w, http.StatusConflict, "sweep still running; poll /sweeps/"+run.id)
		return
	case "failed":
		httpError(w, http.StatusInternalServerError, errMsg)
		return
	}
	if report == nil {
		httpError(w, http.StatusInternalServerError, "no report recorded")
		return
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, report)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = report.WriteCSV(w)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run := s.lookup(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "unknown sweep")
		return
	}
	run.cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": run.id, "state": "canceling"})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
